// Example multilink builds a small star network on the netsim layer — three
// leaves attached to a centre node, each over its own heralded link — drives
// it with Poisson measure-directly traffic, and prints what each link
// delivered plus how the centre node's link registry demultiplexed the
// classical protocol traffic.
package main

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/nv"
	"repro/internal/sim"
)

func main() {
	cfg := netsim.DefaultConfig(netsim.Star(4), nv.ScenarioLab)
	cfg.Seed = 42
	nw, err := netsim.NewNetwork(cfg)
	if err != nil {
		panic(err)
	}
	nw.AttachTraffic(netsim.TrafficConfig{Load: 0.9, MaxPairs: 2, MinFidelity: 0.64})

	fmt.Printf("running %s for 1 simulated second...\n\n", nw.Describe())
	nw.Run(sim.DurationSeconds(1))

	perLink, agg := nw.Stats()
	for _, ls := range perLink {
		fmt.Printf("link %-6s  %3d pairs  %6.2f pairs/s  fidelity %.3f  p50 latency %.1f ms\n",
			ls.Link, ls.Pairs, ls.OKRate, ls.Fidelity, ls.LatencyP50*1e3)
	}
	fmt.Printf("\naggregate   %3d pairs  %6.2f pairs/s  fidelity %.3f\n", agg.Pairs, agg.OKRate, agg.Fidelity)

	centre := nw.Nodes[0]
	routed, dropped := centre.Mux.Stats()
	fmt.Printf("\ncentre node %s terminates %d links; its registry routed %d frames (%d dropped)\n",
		centre.Name, centre.Degree(), routed, dropped)
}
