// Example repeater builds a 5-node repeater chain on the network layer and
// requests end-to-end entangled pairs between the chain's ends: each hop's
// EGP stack generates create-and-keep link pairs, the intermediate nodes
// join adjacent pairs by entanglement swapping (Bell-state measurements with
// classical Pauli-frame signalling), and the ends receive pairs whose
// fidelity composes across the hops. The printout compares each delivered
// pair's true fidelity with the closed-form Werner-composition prediction —
// the gap is the storage decoherence accumulated while pairs waited for
// their neighbours.
package main

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/network"
	"repro/internal/nv"
	"repro/internal/sim"
	"repro/internal/wire"
)

func main() {
	cfg := netsim.DefaultConfig(netsim.Chain(5), nv.ScenarioLab)
	cfg.Seed = 7
	cfg.HoldPairs = true // the swap engine owns delivered link pairs
	nw, err := netsim.NewNetwork(cfg)
	if err != nil {
		panic(err)
	}
	svc, err := network.NewService(nw, network.DefaultConfig())
	if err != nil {
		panic(err)
	}

	path, err := svc.Router().Path(0, 4)
	if err != nil {
		panic(err)
	}
	fmt.Printf("routing n0 to n4 over %s (%d hops)\n", path, path.Hops())

	svc.OnOK = func(ev network.OKEvent) {
		fmt.Printf("  pair %d: fidelity %.4f (predicted %.4f), end-to-end latency %.1f ms, swap overhead %.1f us\n",
			3-ev.PairsRemaining, ev.Fidelity, ev.Predicted,
			ev.PairLatency.Seconds()*1e3, ev.SwapLatency.Seconds()*1e6)
	}
	svc.OnError = func(ev network.ErrorEvent) {
		fmt.Printf("  request failed: %v\n", ev.Code)
	}

	const fmin = 0.35
	if _, code := svc.Create(network.CreateRequest{
		SrcNode: 0, DstNode: 4, NumPairs: 3, MinFidelity: fmin,
	}); code != wire.ErrNone {
		panic(code)
	}
	fmt.Printf("requested 3 end-to-end pairs at Fmin=%.2f (per-hop floor %.3f)...\n",
		fmin, network.PerHopFidelityFloor(fmin, path.Hops(), 1))

	nw.Run(sim.DurationSeconds(3))
	svc.FinishAt(nw.Sim.Now())

	_, agg := svc.Stats()
	fmt.Printf("\ndelivered %d pairs with %d entanglement swaps: mean fidelity %.4f vs %.4f predicted\n",
		agg.Pairs, svc.Swaps(), agg.Fidelity, agg.Predicted)
	fmt.Println("the delivered-vs-predicted gap is the memory decoherence the closed form ignores")
}
