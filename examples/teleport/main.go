// Teleport: the send-qubit (SQ) use case. Node A prepares a data qubit in an
// arbitrary state, requests one create-and-keep entangled pair from the link
// layer, and teleports the data qubit to node B by consuming the pair: a
// local Bell measurement at A plus two classical bits instructing B's
// correction (Figure 1a of the paper). The example reports the fidelity of
// the state that arrives at B, which is bounded by the fidelity of the
// entangled link the EGP delivered.
package main

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/egp"
	"repro/internal/nv"
	"repro/internal/quantum"
	"repro/internal/sim"
)

func main() {
	cfg := core.DefaultConfig(nv.ScenarioLab)
	cfg.Seed = 77
	cfg.HoldPairs = true // keep the delivered pair in memory so we can consume it
	// The teleportation circuit below needs the full density matrix, so pin
	// the dense backend even when $REPRO_BACKEND selects the fast path.
	cfg.Backend = quantum.BackendDense
	net := core.NewNetwork(cfg)

	sim.Schedule(net.Sim, 0, func() {
		net.Submit(core.NodeA, egp.CreateRequest{
			NumPairs:    1,
			Keep:        true,
			MinFidelity: 0.7,
			Priority:    egp.PriorityCK,
			PurposeID:   9,
		})
	})
	net.Run(3 * sim.Second)

	if len(net.OKs) == 0 {
		fmt.Println("no entangled pair was delivered — run longer")
		return
	}
	// Fetch the stored pair from node A's device.
	var pair *nv.EntangledPair
	for _, p := range net.DeviceA.OccupiedPairs() {
		pair = p
	}
	if pair == nil {
		fmt.Println("pair not found in memory")
		return
	}
	fmt.Printf("entangled link delivered with fidelity %.3f (heralded as %v)\n", pair.Fidelity(), pair.HeraldedAs)

	// The data qubit |ψ⟩ = cos(θ/2)|0⟩ + e^{iφ} sin(θ/2)|1⟩ to send.
	theta, phi := math.Pi/3, math.Pi/5
	dataKet := quantum.Ket{
		complex(math.Cos(theta/2), 0),
		complex(math.Cos(phi)*math.Sin(theta/2), math.Sin(phi)*math.Sin(theta/2)),
	}
	data := quantum.NewStateFromKet(dataKet)

	// Joint system: data qubit (0), A's half of the pair (1), B's half (2).
	// The teleportation circuit needs the full density matrix, so this
	// example runs on the (default) dense pair backend.
	joint := data.Tensor(pair.State.Dense())

	// Teleportation circuit at A: CNOT(data→A), H(data), then measure both.
	joint.ApplyUnitary(quantum.CNOT(), 0, 1)
	joint.ApplyUnitary(quantum.Hadamard(), 0)
	rng := net.Sim.RNG()
	m0 := measureQubit(joint, 0, rng.Float64())
	m1 := measureQubit(joint, 1, rng.Float64())
	fmt.Printf("Bell measurement at A: m0=%d m1=%d (two classical bits sent to B)\n", m0, m1)

	// Corrections at B. The link pair is |Ψ+⟩ = (|01⟩+|10⟩)/√2 rather than
	// |Φ+⟩, which contributes an extra X correction.
	if m1 == 0 {
		joint.ApplyUnitary(quantum.PauliX(), 2)
	}
	if m0 == 1 {
		joint.ApplyUnitary(quantum.PauliZ(), 2)
	}

	received := joint.PartialTrace(0, 1)
	fidelity := received.Fidelity(dataKet)
	fmt.Printf("state received at B has fidelity %.3f with the original data qubit\n", fidelity)
	fmt.Printf("(bounded by the link fidelity %.3f — a perfect link would teleport perfectly)\n",
		net.Collector.Fidelity(egp.PriorityCK).Mean())
}

// measureQubit measures one qubit of the state in the computational basis,
// collapsing it, and returns the outcome. u is a uniform random sample.
func measureQubit(s *quantum.State, qubit int, u float64) int {
	p0 := s.Probability(quantum.ProjectorZ(0), qubit)
	if u < p0 {
		s.Collapse(quantum.ProjectorZ(0), qubit)
		return 0
	}
	s.Collapse(quantum.ProjectorZ(1), qubit)
	return 1
}
