// Quickstart: bring up the two-node Lab link, request a handful of
// create-and-keep entangled pairs through the link layer's CREATE interface,
// and print the OKs as they are delivered — the "hello world" of the
// reproduced link layer service.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/egp"
	"repro/internal/nv"
	"repro/internal/sim"
)

func main() {
	// Build the Lab scenario: two NV nodes two metres apart, connected to a
	// heralding station, with the default FCFS scheduler.
	cfg := core.DefaultConfig(nv.ScenarioLab)
	cfg.Seed = 42
	net := core.NewNetwork(cfg)

	// Submit one CREATE request from node A: three create-and-keep pairs
	// with a minimum fidelity of 0.6, tagged for application purpose 7.
	sim.Schedule(net.Sim, 0, func() {
		id, code := net.Submit(core.NodeA, egp.CreateRequest{
			NumPairs:    3,
			Keep:        true,
			MinFidelity: 0.6,
			Priority:    egp.PriorityCK,
			PurposeID:   7,
		})
		fmt.Printf("CREATE submitted: id=%d response=%v\n", id, code)
	})

	// Run two seconds of simulated time; the link layer polls the physical
	// layer every MHP cycle (10.12 µs) until the request completes.
	net.Run(2 * sim.Second)

	fmt.Printf("\nDelivered OKs (%d events, both nodes see each pair):\n", len(net.OKs))
	for _, ok := range net.OKs {
		fmt.Printf("  node %s: pair #%d  qubit=%d  fidelity=%.3f  goodness=%.3f  t=%.3fs\n",
			ok.Node, ok.EntanglementID, ok.LogicalQubit, ok.Fidelity, ok.Goodness, ok.At.Seconds())
	}
	c := net.Collector
	fmt.Printf("\nSummary: %d pairs, throughput %.2f pairs/s, mean fidelity %.3f, request latency %.3f s\n",
		c.OKCount(egp.PriorityCK), c.Throughput(egp.PriorityCK),
		c.Fidelity(egp.PriorityCK).Mean(), c.RequestLatency(egp.PriorityCK).Mean())
}
