// Scheduling: the network-layer (NL) use case competing with application
// traffic. A mixed workload of NL, CK and MD requests is run twice — once
// under first-come-first-serve and once under the strict-priority + weighted
// fair queuing scheduler — showing the Table 1 effect: strict priority
// slashes the NL scaled latency at a modest cost to MD latency, with little
// impact on throughput.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/egp"
	"repro/internal/nv"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	const seconds = 8.0
	for _, scheduler := range []string{"FCFS", "HigherWFQ"} {
		cfg := core.DefaultConfig(nv.ScenarioQL2020)
		cfg.Seed = 5
		cfg.Scheduler = scheduler
		net := core.NewNetwork(cfg)
		gen := workload.NewGenerator(net, workload.OriginRandom, workload.Table1Pattern(true))
		net.Start()
		gen.Start()
		net.Run(sim.DurationSeconds(seconds))
		gen.Stop()

		fmt.Printf("=== scheduler %s (QL2020, uniform NL/CK/MD load, %.0f s simulated) ===\n", scheduler, seconds)
		c := net.Collector
		for _, p := range []int{egp.PriorityNL, egp.PriorityCK, egp.PriorityMD} {
			fmt.Printf("  %-3s throughput %.3f pairs/s   scaled latency %.3f s   pairs %d\n",
				egp.PriorityName(p), c.Throughput(p), c.ScaledLatency(p).Mean(), c.OKCount(p))
		}
		fmt.Printf("  total throughput %.3f pairs/s\n\n", c.TotalThroughput())
	}
	fmt.Println("Expected shape (Table 1): WFQ reduces NL scaled latency by roughly 3x versus FCFS,")
	fmt.Println("CK improves somewhat, MD latency grows, and total throughput changes only slightly.")
}
