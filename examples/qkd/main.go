// QKD: the measure-directly (MD) use case of the paper driven end to end.
// The application requests a stream of measure-directly pairs, both nodes
// measure in shared pseudo-random bases, and the resulting correlated bit
// strings are sifted into raw key material. The example then estimates the
// QBER per basis and the asymptotic BB84-style secret key fraction,
// illustrating why the link layer exposes fidelity (not just throughput) as
// a service parameter (Section 4.2).
package main

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/egp"
	"repro/internal/nv"
	"repro/internal/quantum"
	"repro/internal/sim"
)

func main() {
	cfg := core.DefaultConfig(nv.ScenarioQL2020)
	cfg.Seed = 2026
	net := core.NewNetwork(cfg)

	const pairsRequested = 200
	sim.Schedule(net.Sim, 0, func() {
		net.Submit(core.NodeA, egp.CreateRequest{
			NumPairs:    pairsRequested,
			Keep:        false,
			MinFidelity: 0.64,
			Priority:    egp.PriorityMD,
			PurposeID:   443,
			Consecutive: true,
		})
	})
	net.Run(30 * sim.Second)

	// Collect both nodes' outcomes per pair (keyed by entanglement ID).
	type half struct {
		outcome int
		basis   quantum.BasisLabel
		psiMin  bool
	}
	alice := map[uint16]half{}
	bob := map[uint16]half{}
	for _, ok := range net.OKs {
		h := half{outcome: ok.MeasureOutcome, basis: ok.MeasureBasis, psiMin: ok.HeraldedPsiMinus}
		if ok.Node == core.NodeA {
			alice[ok.EntanglementID] = h
		} else {
			bob[ok.EntanglementID] = h
		}
	}

	// Sift: keep pairs where both outcomes exist and bases match; apply the
	// classical |Ψ−⟩ correction and flip Bob's Z outcomes so "equal bits"
	// becomes the key convention for the |Ψ+⟩ target.
	var keyBitsA, keyBitsB []int
	errorsByBasis := map[quantum.BasisLabel][2]int{}
	for id, a := range alice {
		b, ok := bob[id]
		if !ok || a.basis != b.basis {
			continue
		}
		bitA := a.outcome
		if a.psiMin && a.basis != quantum.BasisZ {
			bitA = 1 - bitA
		}
		bitB := b.outcome
		if a.basis == quantum.BasisZ {
			// Ψ+ is anti-correlated in Z: flip Bob's bit so matching bits
			// mean no error.
			bitB = 1 - bitB
		}
		keyBitsA = append(keyBitsA, bitA)
		keyBitsB = append(keyBitsB, bitB)
		counts := errorsByBasis[a.basis]
		counts[1]++
		if bitA != bitB {
			counts[0]++
		}
		errorsByBasis[a.basis] = counts
	}

	fmt.Printf("pairs delivered:   %d (requested %d)\n", net.Collector.OKCount(egp.PriorityMD), pairsRequested)
	fmt.Printf("sifted key length: %d bits\n", len(keyBitsA))
	totalErr, totalBits := 0, 0
	for _, basis := range []quantum.BasisLabel{quantum.BasisZ, quantum.BasisX, quantum.BasisY} {
		c := errorsByBasis[basis]
		if c[1] == 0 {
			continue
		}
		qber := float64(c[0]) / float64(c[1])
		fmt.Printf("  QBER %s basis:    %.3f (%d/%d)\n", basis, qber, c[0], c[1])
		totalErr += c[0]
		totalBits += c[1]
	}
	if totalBits == 0 {
		fmt.Println("no sifted bits — run longer")
		return
	}
	qber := float64(totalErr) / float64(totalBits)
	rate := secretKeyFraction(qber)
	fmt.Printf("overall QBER:      %.3f\n", qber)
	fmt.Printf("secret fraction:   %.3f (asymptotic BB84 bound, 0 when QBER > 11%%)\n", rate)
	fmt.Printf("key throughput:    %.2f raw sifted bits/s, %.2f secret bits/s\n",
		float64(len(keyBitsA))/net.Collector.DurationSeconds(),
		rate*float64(len(keyBitsA))/net.Collector.DurationSeconds())
	fmt.Printf("\nThe link delivered %.1f pairs/s; a lower requested fidelity would raise that rate\n"+
		"but push the QBER toward the 11%% threshold where no key can be distilled (Sec. 4.2).\n",
		net.Collector.Throughput(egp.PriorityMD))
}

// secretKeyFraction returns the asymptotic BB84 secret key fraction
// 1 − 2·h(Q) for QBER Q, clamped at zero.
func secretKeyFraction(q float64) float64 {
	if q <= 0 {
		return 1
	}
	if q >= 0.5 {
		return 0
	}
	h := -q*math.Log2(q) - (1-q)*math.Log2(1-q)
	r := 1 - 2*h
	if r < 0 {
		return 0
	}
	return r
}
