// Package-level benchmarks: one testing.B benchmark per table/figure of the
// paper's evaluation (driving the experiment runners at reduced scale), plus
// micro-benchmarks of the substrates and ablation benchmarks for the design
// choices called out in DESIGN.md (emission multiplexing, the min_time
// guard, dense vs closed-form optical sampling, DQP windowing).
//
// Run with: go test -bench=. -benchmem
package main

import (
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/egp"
	"repro/internal/experiments"
	"repro/internal/nv"
	"repro/internal/photonics"
	"repro/internal/quantum"
	"repro/internal/sim"
	"repro/internal/workload"
)

// benchOptions keeps every experiment benchmark short enough for routine
// benchmarking while still exercising the full protocol stack. Parallelism
// is pinned to 1 so the per-experiment numbers stay comparable across
// machines and with pre-engine baselines; the BenchmarkEngine* pair below
// measures the parallel speedup explicitly.
func benchOptions() experiments.Options {
	opt := experiments.QuickOptions()
	opt.SimulatedSeconds = 0.5
	opt.Parallelism = 1
	return opt
}

func runExperiment(b *testing.B, name string) {
	b.Helper()
	runner, ok := experiments.ByName(name)
	if !ok {
		b.Fatalf("unknown experiment %q", name)
	}
	opt := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opt.Seed = int64(i + 1)
		tables := runner.Run(opt)
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			b.Fatal("experiment produced no data")
		}
	}
}

// --- One benchmark per paper table/figure -------------------------------

func BenchmarkFig8Validation(b *testing.B)   { runExperiment(b, "fig8") }
func BenchmarkFig9Decoherence(b *testing.B)  { runExperiment(b, "fig9") }
func BenchmarkFig6Tradeoffs(b *testing.B)    { runExperiment(b, "fig6a") }
func BenchmarkFig6Fidelity(b *testing.B)     { runExperiment(b, "fig6bc") }
func BenchmarkTable5Robustness(b *testing.B) { runExperiment(b, "table5") }
func BenchmarkSec62Metrics(b *testing.B)     { runExperiment(b, "metrics") }
func BenchmarkTable1Scheduling(b *testing.B) { runExperiment(b, "table1") }
func BenchmarkTable3Mixed(b *testing.B)      { runExperiment(b, "table3") }
func BenchmarkTable4Mixed(b *testing.B)      { runExperiment(b, "table4") }

// --- Trial-engine parallelism benchmarks ---------------------------------

// benchmarkEngine drives a protocol-heavy subset of the suite at a fixed
// parallelism level so the sequential-vs-parallel wall-time ratio quantifies
// the worker-pool speedup.
func benchmarkEngine(b *testing.B, parallelism int) {
	b.Helper()
	names := []string{"fig6a", "table1", "metrics"}
	opt := benchOptions()
	opt.Parallelism = parallelism
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opt.Seed = int64(i + 1)
		for _, name := range names {
			runner, ok := experiments.ByName(name)
			if !ok {
				b.Fatalf("unknown experiment %q", name)
			}
			if tables := runner.Run(opt); len(tables) == 0 {
				b.Fatal("experiment produced no data")
			}
		}
	}
}

func BenchmarkEngineSequential(b *testing.B) { benchmarkEngine(b, 1) }

func BenchmarkEngineParallel(b *testing.B) { benchmarkEngine(b, runtime.GOMAXPROCS(0)) }

// --- Protocol-stack throughput benchmarks --------------------------------

// benchmarkScenario runs the full stack for a fixed simulated duration and
// reports delivered pairs per wall-second of benchmarking.
func benchmarkScenario(b *testing.B, scenario nv.ScenarioID, priority int, multiplex bool, minTimeMargin uint64) {
	b.Helper()
	b.ReportAllocs()
	pairs := 0
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig(scenario)
		cfg.Seed = int64(i + 1)
		cfg.EmissionMultiplexing = multiplex
		cfg.MinTimeMarginCycles = minTimeMargin
		net := core.NewNetwork(cfg)
		gen := workload.NewGenerator(net, workload.OriginRandom, workload.SingleKind(priority, workload.LoadUltra, 3))
		net.Start()
		gen.Start()
		net.Run(sim.DurationSeconds(0.5))
		gen.Stop()
		pairs += net.Collector.OKCount(priority)
	}
	b.ReportMetric(float64(pairs)/float64(b.N), "pairs/run")
}

func BenchmarkLabMeasureDirectly(b *testing.B) {
	benchmarkScenario(b, nv.ScenarioLab, egp.PriorityMD, true, 0)
}

func BenchmarkLabCreateKeep(b *testing.B) {
	benchmarkScenario(b, nv.ScenarioLab, egp.PriorityCK, true, 0)
}

func BenchmarkQL2020MeasureDirectly(b *testing.B) {
	benchmarkScenario(b, nv.ScenarioQL2020, egp.PriorityMD, true, 0)
}

func BenchmarkQL2020CreateKeep(b *testing.B) {
	benchmarkScenario(b, nv.ScenarioQL2020, egp.PriorityCK, true, 0)
}

// --- Ablation benchmarks (design choices from DESIGN.md) -----------------

// Emission multiplexing on vs off for the MD use case on QL2020, where reply
// latency (145 µs) far exceeds the attempt cycle (10.12 µs).
func BenchmarkAblationMultiplexingOn(b *testing.B) {
	benchmarkScenario(b, nv.ScenarioQL2020, egp.PriorityMD, true, 0)
}

func BenchmarkAblationMultiplexingOff(b *testing.B) {
	benchmarkScenario(b, nv.ScenarioQL2020, egp.PriorityMD, false, 0)
}

// min_time guard widened by 1000 cycles vs the propagation-derived default.
func BenchmarkAblationMinTimeDefault(b *testing.B) {
	benchmarkScenario(b, nv.ScenarioLab, egp.PriorityMD, true, 0)
}

func BenchmarkAblationMinTimeWide(b *testing.B) {
	benchmarkScenario(b, nv.ScenarioLab, egp.PriorityMD, true, 1000)
}

// --- Substrate micro-benchmarks -------------------------------------------

func BenchmarkDenseOpticalAttempt(b *testing.B) {
	platform := nv.LabPlatform()
	rng := sim.NewRNG(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		platform.Optics.Attempt(0.3, 0.3, rng)
	}
}

func BenchmarkCachedOpticalSample(b *testing.B) {
	platform := nv.LabPlatform()
	sampler := photonics.NewLinkSampler(platform.Optics)
	rng := sim.NewRNG(1)
	sampler.Sample(0.3, 0.3, rng) // warm the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sampler.Sample(0.3, 0.3, rng)
	}
}

// The pair-backend micro-benchmarks measure one full pair lifecycle —
// herald, storage decoherence on both sides, per-attempt dephasing, swap
// with BSM gate noise, Pauli-frame correction, fidelity read — on each
// PairState implementation. The Bell-diagonal fast path replaces every
// complex matrix operation with O(1) coefficient arithmetic.
func pairLifecycle(left, right quantum.PairState) float64 {
	electron := quantum.T1T2Params{T1: 2.86e-3, T2: 1.00e-3}
	left.ApplyMemoryNoise(0, 50e-6, electron)
	left.ApplyMemoryNoise(1, 20e-6, electron)
	left.ApplyDephasing(1, 0.002)
	right.ApplyMemoryNoise(0, 30e-6, electron)
	far, outcome := left.SwapWith(right, 1, 0, 0.98, 0.42)
	far.ApplyPauli(1, quantum.CorrectionPauliOp(quantum.SwappedBell(quantum.PsiPlus, quantum.PsiPlus, outcome), quantum.PsiPlus))
	return far.BellFidelity(quantum.PsiPlus)
}

func BenchmarkPairLifecycleDense(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		left := quantum.WernerState(quantum.PsiPlus, 0.9)
		right := quantum.WernerState(quantum.PsiPlus, 0.87)
		_ = pairLifecycle(left, right)
	}
}

func BenchmarkPairLifecycleBellDiag(b *testing.B) {
	b.ReportAllocs()
	left := quantum.NewBellDiagWerner(quantum.PsiPlus, 0.9)
	right := quantum.NewBellDiagWerner(quantum.PsiPlus, 0.87)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		left.SetCoefficients([4]float64{0.1 / 3, 0.1 / 3, 0.9, 0.1 / 3})
		right.SetCoefficients([4]float64{0.13 / 3, 0.13 / 3, 0.87, 0.13 / 3})
		_ = pairLifecycle(left, right)
	}
}

func BenchmarkTwoQubitKraus(b *testing.B) {
	kraus := quantum.DephasingKraus(0.1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := quantum.NewBellState(quantum.PsiPlus)
		s.ApplyKraus(kraus, 0)
	}
}

func BenchmarkFourQubitPartialTrace(b *testing.B) {
	bell := quantum.NewBellState(quantum.PsiPlus)
	joint := bell.Tensor(quantum.NewBellState(quantum.PhiPlus))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		joint.PartialTrace(1, 3)
	}
}

func BenchmarkEventLoop(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := sim.New(1)
		count := 0
		sim.Ticker(s, 10*sim.Microsecond, func() { count++ })
		_ = s.RunFor(100 * sim.Millisecond)
	}
}

func BenchmarkMemoryDecoherence(b *testing.B) {
	params := quantum.T1T2Params{T1: 2.86e-3, T2: 1e-3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := quantum.NewBellState(quantum.PsiPlus)
		quantum.ApplyMemoryNoise(s, 0, 0.5e-3, params)
	}
}
