// Command benchsuite regenerates the paper's evaluation tables and figures
// from the reproduced system. Each runner corresponds to one table or figure
// (see DESIGN.md's per-experiment index); the output is plain-text tables
// whose rows mirror the series the paper reports.
//
// Examples:
//
//	benchsuite -list
//	benchsuite -run fig8
//	benchsuite -run fig6a,fig6bc -parallel 8
//	benchsuite -run table -seconds 8 > results.txt   # every table* runner
//	benchsuite -run all -seconds 8 > results.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
)

// selectRunners resolves the -run filter: "all" (or empty) selects every
// runner; otherwise each comma-separated term selects runners whose name
// matches exactly or contains the term as a substring. A term matching no
// runner is an error so typos cannot silently drop results.
func selectRunners(filter string) ([]experiments.Runner, error) {
	if filter == "" || filter == "all" {
		return experiments.All(), nil
	}
	selected := make(map[string]bool)
	var out []experiments.Runner
	for _, raw := range strings.Split(filter, ",") {
		term := strings.TrimSpace(raw)
		if term == "" {
			continue
		}
		if term == "all" {
			return experiments.All(), nil
		}
		matched := false
		for _, r := range experiments.All() {
			if r.Name == term || strings.Contains(r.Name, term) {
				matched = true
				if !selected[r.Name] {
					selected[r.Name] = true
					out = append(out, r)
				}
			}
		}
		if !matched {
			return nil, fmt.Errorf("no experiment matches %q (use -list)", term)
		}
	}
	return out, nil
}

func main() {
	var (
		run      = flag.String("run", "all", "name filter: comma-separated runner names or substrings (see -list), or 'all'")
		list     = flag.Bool("list", false, "list available experiments and exit")
		seconds  = flag.Float64("seconds", 6, "simulated seconds per protocol scenario")
		seed     = flag.Int64("seed", 1, "base random seed")
		quick    = flag.Bool("quick", false, "reduced sweep resolution for a fast smoke run")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker goroutines per experiment (tables are identical at any level; 1 = sequential)")
	)
	flag.Parse()
	if *parallel <= 0 {
		*parallel = runtime.GOMAXPROCS(0)
	}

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-10s %s\n", r.Name, r.Description)
		}
		return
	}

	opt := experiments.Options{
		SimulatedSeconds: *seconds,
		Seed:             *seed,
		Quick:            *quick,
		Parallelism:      *parallel,
	}

	runners, err := selectRunners(*run)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	suiteStart := time.Now()
	for _, r := range runners {
		start := time.Now()
		fmt.Printf("# %s — %s\n", r.Name, r.Description)
		for _, table := range r.Run(opt) {
			fmt.Println(table.String())
		}
		fmt.Printf("(%s completed in %.1fs wall time)\n\n", r.Name, time.Since(start).Seconds())
	}
	fmt.Printf("(suite: %d runner(s) in %.1fs wall time at parallelism %d)\n",
		len(runners), time.Since(suiteStart).Seconds(), opt.Parallelism)
}
