// Command benchsuite regenerates the paper's evaluation tables and figures
// from the reproduced system. Each runner corresponds to one table or figure
// (see DESIGN.md's per-experiment index); the output is plain-text tables
// whose rows mirror the series the paper reports.
//
// Examples:
//
//	benchsuite -list
//	benchsuite -run fig8
//	benchsuite -run all -seconds 8 > results.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		run     = flag.String("run", "all", "experiment to run (see -list) or 'all'")
		list    = flag.Bool("list", false, "list available experiments and exit")
		seconds = flag.Float64("seconds", 6, "simulated seconds per protocol scenario")
		seed    = flag.Int64("seed", 1, "base random seed")
		quick   = flag.Bool("quick", false, "reduced sweep resolution for a fast smoke run")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-10s %s\n", r.Name, r.Description)
		}
		return
	}

	opt := experiments.Options{SimulatedSeconds: *seconds, Seed: *seed, Quick: *quick}

	var runners []experiments.Runner
	if *run == "all" {
		runners = experiments.All()
	} else {
		r, ok := experiments.ByName(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *run)
			os.Exit(2)
		}
		runners = []experiments.Runner{r}
	}

	for _, r := range runners {
		start := time.Now()
		fmt.Printf("# %s — %s\n", r.Name, r.Description)
		for _, table := range r.Run(opt) {
			fmt.Println(table.String())
		}
		fmt.Printf("(%s completed in %.1fs wall time)\n\n", r.Name, time.Since(start).Seconds())
	}
}
