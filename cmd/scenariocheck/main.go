// Command scenariocheck validates declarative scenario specs: each file must
// parse strictly (unknown fields rejected), compile into a runnable
// configuration, and sit in the canonical encoding so parse → re-emit is
// byte-stable. CI runs it over every committed spec; -w rewrites files into
// canonical form instead of failing on them.
//
// Examples:
//
//	scenariocheck scenarios/*.json        # validate (CI mode)
//	scenariocheck -w scenarios/new.json   # canonicalize in place
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"repro/internal/scenario"
)

func main() {
	write := flag.Bool("w", false, "rewrite files into canonical form instead of failing on drift")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: scenariocheck [-w] <spec.json>...")
		os.Exit(2)
	}

	failed := false
	for _, path := range flag.Args() {
		if err := check(path, *write); err != nil {
			fmt.Fprintln(os.Stderr, err)
			failed = true
		} else {
			fmt.Printf("ok %s\n", path)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// check validates one spec file; with write, non-canonical files are
// rewritten instead of reported.
func check(path string, write bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	sp, err := scenario.Parse(data, path)
	if err != nil {
		return err
	}
	if _, err := sp.Compile(); err != nil {
		return err
	}
	canon, err := sp.Canonical()
	if err != nil {
		return err
	}
	if bytes.Equal(data, canon) {
		return nil
	}
	if write {
		return os.WriteFile(path, canon, 0o644)
	}
	return fmt.Errorf("%s: not in canonical form (run scenariocheck -w to rewrite)", path)
}
