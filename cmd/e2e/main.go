// Command e2e runs the network layer end to end: it instantiates a topology
// of heralded quantum links, routes a source–destination pair over it with a
// selectable cost function, drives it with Poisson end-to-end entanglement
// requests, and prints per-path and aggregate performance tables (end-to-end
// throughput, delivered vs predicted fidelity, swap-latency and end-to-end
// latency percentiles).
//
// Repetitions (-trials) fan out across a worker pool (-parallel); each trial
// derives its seed from the base seed and its index, so the printed tables
// are byte-identical at every parallelism level.
//
// Examples:
//
//	e2e -nodes 5                                   # 4-hop repeater chain
//	e2e -nodes 7 -fmin 0.45 -seconds 4             # longer chain, higher floor
//	e2e -topology grid -nodes 9 -src 0 -dst 8      # corner-to-corner grid
//	e2e -cost fidelity -gate 0.99                  # fidelity-aware routing, noisy BSM
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/experiments"
	"repro/internal/netsim"
	"repro/internal/network"
	"repro/internal/nv"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/quantum"
	"repro/internal/sim"
)

// trialStats holds one trial's per-path rows plus the aggregate row.
type trialStats struct {
	perPath []network.PathStats
	agg     network.PathStats
	swaps   uint64
	path    string
	end     sim.Time
}

// runTrial builds and runs one network + service with a trial-derived seed.
// trace and registry (normally non-nil only for trial 0) attach the
// observability layer; they never change the simulated trajectory.
func runTrial(spec netsim.Spec, scenario nv.ScenarioID, backend quantum.Backend, queue sim.QueueKind, loss float64, cost string, gate float64,
	traffic network.TrafficConfig, seed int64, trial int, seconds float64, trace *obs.Tracer, registry *obs.Registry) (trialStats, error) {
	cfg := netsim.DefaultConfig(spec, scenario)
	cfg.Seed = experiments.DeriveSeed(seed, uint64(trial))
	cfg.Backend = backend
	cfg.Queue = queue
	cfg.ClassicalLossProb = loss
	cfg.HoldPairs = true
	cfg.Trace = trace
	cfg.Metrics = registry
	nw, err := netsim.NewNetwork(cfg)
	if err != nil {
		return trialStats{}, err
	}
	ncfg := network.DefaultConfig()
	ncfg.SwapGateFidelity = gate
	ncfg.Trace = trace
	ncfg.Metrics = registry
	costFn, ok := network.CostByName(nw, cost)
	if !ok {
		return trialStats{}, fmt.Errorf("unknown cost %q (hops|fidelity|rate)", cost)
	}
	ncfg.Cost = costFn
	svc, err := network.NewService(nw, ncfg)
	if err != nil {
		return trialStats{}, err
	}
	p, err := svc.Router().Path(traffic.Pairs[0][0], traffic.Pairs[0][1])
	if err != nil {
		return trialStats{}, err
	}
	tr := svc.AttachTraffic(traffic)
	tr.Start()
	nw.Run(sim.DurationSeconds(seconds))
	svc.FinishAt(nw.Sim.Now())
	perPath, agg := svc.Stats()
	return trialStats{perPath: perPath, agg: agg, swaps: svc.Swaps(), path: p.String(), end: nw.Sim.Now()}, nil
}

// statsRow renders one averaged row.
func statsRow(s network.PathStats) []string {
	return []string{
		s.Path,
		fmt.Sprintf("%d", s.Hops),
		fmt.Sprintf("%d", s.Requests),
		fmt.Sprintf("%d", s.Completed),
		fmt.Sprintf("%d", s.Failed),
		fmt.Sprintf("%d", s.Pairs),
		fmt.Sprintf("%.3f", s.OKRate),
		fmt.Sprintf("%.4f", s.Fidelity),
		fmt.Sprintf("%.4f", s.Predicted),
		fmt.Sprintf("%.4f", s.SwapP50),
		fmt.Sprintf("%.4f", s.SwapP99),
		fmt.Sprintf("%.4f", s.E2EP50),
		fmt.Sprintf("%.4f", s.E2EP99),
		fmt.Sprintf("%.4f", s.TTPP99),
	}
}

var statsColumns = []string{"path", "hops", "requests", "completed", "failed", "pairs", "throughput(1/s)", "fidelity", "predicted", "swap_p50(s)", "swap_p99(s)", "e2e_p50(s)", "e2e_p99(s)", "ttp_p99(s)"}

func main() {
	var (
		topology = flag.String("topology", "chain", "topology: chain|star|grid|edges")
		nodes    = flag.Int("nodes", 5, "node count (grid requires a perfect square)")
		edgeList = flag.String("edges", "", "explicit edge list for -topology edges, e.g. 0-1,1-2,2-0")
		scenario = flag.String("scenario", "Lab", "hardware scenario: Lab or QL2020")
		src      = flag.Int("src", 0, "source node of the end-to-end pair stream")
		dst      = flag.Int("dst", -1, "destination node (default: last node)")
		cost     = flag.String("cost", "hops", "routing cost function: hops|fidelity|rate")
		backend  = flag.String("backend", "", "pair-state backend: dense (exact, default) or belldiag (O(1) fast path); $REPRO_BACKEND sets the default")
		load     = flag.Float64("load", 0.3, "offered end-to-end load fraction of the bottleneck link rate")
		kmax     = flag.Int("kmax", 1, "maximum end-to-end pairs per request")
		fmin     = flag.Float64("fmin", 0.35, "end-to-end minimum delivered fidelity")
		deadline = flag.Float64("deadline", 0, "per-request deadline in seconds (0 = none)")
		gate     = flag.Float64("gate", 1, "swap (Bell-state measurement) gate fidelity at repeater nodes")
		loss     = flag.Float64("loss", 0, "classical per-frame loss probability")
		seed     = flag.Int64("seed", 1, "base random seed")
		seconds  = flag.Float64("seconds", 2, "simulated seconds per trial")
		trials   = flag.Int("trials", 3, "independent repetitions (seeds derived from -seed)")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker goroutines across trials (tables are identical at any level)")
		queue    = flag.String("queue", "", "event-queue discipline: heap (exact binary heap, default) or wheel (hierarchical timing wheel); $REPRO_QUEUE sets the default")

		traceOut   = flag.String("trace", "", "write a Chrome trace-event JSON flight recording of trial 0 to this file (view in ui.perfetto.dev)")
		traceCap   = flag.Int("tracecap", 1<<16, "per-ring record capacity of the flight recorder (rounded up to a power of two)")
		metricsOut = flag.String("metrics", "", "write a JSON metrics snapshot of trial 0 to this file")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile taken at exit to this file")
	)
	flag.Parse()

	spec, err := netsim.SpecFromFlags(*topology, *nodes, *edgeList)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := spec.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	switch nv.ScenarioID(*scenario) {
	case nv.ScenarioLab, nv.ScenarioQL2020:
	default:
		fmt.Fprintf(os.Stderr, "unknown scenario %q (Lab|QL2020)\n", *scenario)
		os.Exit(2)
	}
	if *dst < 0 {
		*dst = spec.Nodes - 1
	}
	if *src < 0 || *src >= spec.Nodes || *dst >= spec.Nodes || *src == *dst {
		fmt.Fprintf(os.Stderr, "bad src/dst pair %d-%d for %d nodes\n", *src, *dst, spec.Nodes)
		os.Exit(2)
	}
	if *gate <= 0 || *gate > 1 {
		fmt.Fprintln(os.Stderr, "gate fidelity must be in (0,1]")
		os.Exit(2)
	}
	be, err := quantum.ResolveBackend(*backend)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	qk, err := sim.ResolveQueue(*queue)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *trials <= 0 {
		*trials = 1
	}
	if *parallel <= 0 {
		*parallel = 1
	}
	traffic := network.TrafficConfig{
		Pairs:       [][2]int{{*src, *dst}},
		Load:        *load,
		MaxPairs:    *kmax,
		MinFidelity: *fmin,
		MaxTime:     sim.DurationSeconds(*deadline),
	}

	// Observability attaches to trial 0 only: the remaining trials stay on
	// the uninstrumented production path (tracing would not change their
	// trajectory either way, but one recorded trial is all the files need).
	var tracer *obs.Tracer
	var registry *obs.Registry
	if *traceOut != "" {
		tracer = obs.NewTracer(1, *traceCap)
	}
	if *metricsOut != "" {
		registry = obs.NewRegistry()
	}
	stopCPU, err := prof.StartCPU(*cpuProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	results := make([]trialStats, *trials)
	errs := make([]error, *trials)
	experiments.RunIndexed(*trials, *parallel, func(i int) {
		var tr *obs.Tracer
		var reg *obs.Registry
		if i == 0 {
			tr, reg = tracer, registry
		}
		results[i], errs[i] = runTrial(spec, nv.ScenarioID(*scenario), be, qk, *loss, *cost, *gate, traffic, *seed, i, *seconds, tr, reg)
	})
	for _, err := range errs {
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	stopCPU()
	if err := prof.WriteTrace(*traceOut, tracer); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if registry != nil {
		if err := prof.WriteMetrics(*metricsOut, registry, results[0].end); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if err := prof.WriteHeap(*memProfile); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var swaps uint64
	for _, r := range results {
		swaps += r.swaps
	}
	fmt.Printf("# e2e %s on %s: path %s cost=%s load=%.2f kmax=%d Fmin=%.2f gate=%g loss=%g seed=%d %.1fs simulated, %d trial(s), %d swaps total\n",
		spec, *scenario, results[0].path, *cost, *load, *kmax, *fmin, *gate, *loss, *seed, *seconds, *trials, swaps)

	perPath := experiments.Table{
		ID:      "e2e-paths",
		Caption: fmt.Sprintf("Per-path end-to-end performance, averaged over %d trial(s)", *trials),
		Columns: statsColumns,
	}
	// Collect the union of paths across trials in first-seen order: a trial
	// whose Poisson stream fired no request contributes a zero row for the
	// missing path instead of skewing the average.
	var pathOrder []string
	seen := map[string]bool{}
	for _, r := range results {
		for _, ps := range r.perPath {
			if !seen[ps.Path] {
				seen[ps.Path] = true
				pathOrder = append(pathOrder, ps.Path)
			}
		}
	}
	for _, name := range pathOrder {
		rows := make([]network.PathStats, *trials)
		for ti := range results {
			rows[ti] = network.PathStats{Path: name}
			for _, ps := range results[ti].perPath {
				if ps.Path == name {
					rows[ti] = ps
					break
				}
			}
		}
		perPath.Rows = append(perPath.Rows, statsRow(network.MeanPathStats(rows)))
	}
	fmt.Println(perPath.String())

	aggRows := make([]network.PathStats, *trials)
	for ti := range results {
		aggRows[ti] = results[ti].agg
	}
	aggregate := experiments.Table{
		ID:      "e2e-aggregate",
		Caption: fmt.Sprintf("Network aggregate, averaged over %d trial(s)", *trials),
		Columns: statsColumns,
		Rows:    [][]string{statsRow(network.MeanPathStats(aggRows))},
	}
	fmt.Println(aggregate.String())
}
