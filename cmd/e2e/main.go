// Command e2e runs the network layer end to end: it instantiates a topology
// of heralded quantum links, routes a source–destination pair over it with a
// selectable cost function, drives it with Poisson end-to-end entanglement
// requests, and prints per-path and aggregate performance tables (end-to-end
// throughput, delivered vs predicted fidelity, swap-latency and end-to-end
// latency percentiles).
//
// Runs are described declaratively: -scenario <file>.json loads a scenario
// spec (see internal/scenario) whose service section carries the
// source/destination pair, routing cost, swap-gate fidelity and the
// end-to-end stream; the classic flags remain as thin shims assembling the
// equivalent spec internally.
//
// Migration note: -scenario used to name only the hardware scenario (Lab or
// QL2020). Those two values still select the hardware for flag-driven runs;
// any other value is taken as the path of a scenario spec file, which then
// replaces the topology/hardware/service flags entirely (setting one of them
// alongside a spec file is an error). -seed, -seconds, -trials, -backend and
// -queue stay usable as overrides on top of a spec.
//
// Repetitions (-trials) fan out across a worker pool (-parallel); each trial
// derives its seed from the base seed and its index, so the printed tables
// are byte-identical at every parallelism level.
//
// Examples:
//
//	e2e -nodes 5                                   # 4-hop repeater chain
//	e2e -nodes 7 -fmin 0.45 -seconds 4             # longer chain, higher floor
//	e2e -topology grid -nodes 9 -src 0 -dst 8      # corner-to-corner grid
//	e2e -scenario scenarios/e2e-chain5.json -parallel 4
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/cli"
	"repro/internal/experiments"
	"repro/internal/netsim"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/wire"
)

// trialStats holds one trial's per-path rows plus the aggregate row.
type trialStats struct {
	perPath []network.PathStats
	agg     network.PathStats
	swaps   uint64
	path    string
	end     sim.Time
}

// runTrial builds and runs one network + service from the compiled scenario
// with a trial-derived seed. trace and registry (normally non-nil only for
// trial 0) attach the observability layer; they never change the simulated
// trajectory.
func runTrial(c *scenario.Compiled, trial int, trace *obs.Tracer, registry *obs.Registry) (trialStats, error) {
	sv := c.Service
	cfg := c.Config
	cfg.Seed = experiments.DeriveSeed(c.Config.Seed, uint64(trial))
	cfg.Trace = trace
	cfg.Metrics = registry
	nw, err := netsim.NewNetwork(cfg)
	if err != nil {
		return trialStats{}, err
	}
	ncfg := network.DefaultConfig()
	ncfg.SwapGateFidelity = sv.SwapGateFidelity
	ncfg.Trace = trace
	ncfg.Metrics = registry
	costFn, ok := network.CostByName(nw, sv.Cost)
	if !ok {
		return trialStats{}, fmt.Errorf("unknown cost %q (hops|fidelity|rate)", sv.Cost)
	}
	ncfg.Cost = costFn
	svc, err := network.NewService(nw, ncfg)
	if err != nil {
		return trialStats{}, err
	}
	if c.Faults != nil {
		if err := c.Faults.Schedule(nw); err != nil {
			return trialStats{}, err
		}
	}
	p, err := svc.Router().Path(sv.Src, sv.Dst)
	if err != nil {
		return trialStats{}, err
	}
	if sv.StandingPairs > 0 {
		if _, code := svc.Create(network.CreateRequest{
			SrcNode:     sv.Src,
			DstNode:     sv.Dst,
			NumPairs:    sv.StandingPairs,
			MinFidelity: sv.Traffic.MinFidelity,
		}); code != wire.ErrNone {
			return trialStats{}, fmt.Errorf("standing end-to-end request rejected: %s", code)
		}
	}
	tr := svc.AttachTraffic(sv.Traffic)
	tr.Start()
	nw.Run(sim.DurationSeconds(c.Seconds))
	svc.FinishAt(nw.Sim.Now())
	perPath, agg := svc.Stats()
	return trialStats{perPath: perPath, agg: agg, swaps: svc.Swaps(), path: p.String(), end: nw.Sim.Now()}, nil
}

// statsRow renders one averaged row.
func statsRow(s network.PathStats) []string {
	return []string{
		s.Path,
		fmt.Sprintf("%d", s.Hops),
		fmt.Sprintf("%d", s.Requests),
		fmt.Sprintf("%d", s.Completed),
		fmt.Sprintf("%d", s.Failed),
		fmt.Sprintf("%d", s.NoRoute),
		fmt.Sprintf("%d", s.Reroutes),
		fmt.Sprintf("%d", s.Retries),
		fmt.Sprintf("%d", s.Pairs),
		fmt.Sprintf("%.3f", s.OKRate),
		fmt.Sprintf("%.4f", s.Fidelity),
		fmt.Sprintf("%.4f", s.Predicted),
		fmt.Sprintf("%.4f", s.SwapP50),
		fmt.Sprintf("%.4f", s.SwapP99),
		fmt.Sprintf("%.4f", s.E2EP50),
		fmt.Sprintf("%.4f", s.E2EP99),
		fmt.Sprintf("%.4f", s.TTPP99),
	}
}

var statsColumns = []string{"path", "hops", "requests", "completed", "failed", "noroute", "reroutes", "retries", "pairs", "throughput(1/s)", "fidelity", "predicted", "swap_p50(s)", "swap_p99(s)", "e2e_p50(s)", "e2e_p99(s)", "ttp_p99(s)"}

// fail prints to stderr and exits with a usage error.
func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}

func main() {
	var (
		topology = flag.String("topology", "chain", "topology: chain|star|grid|edges")
		nodes    = flag.Int("nodes", 5, "node count (grid requires a perfect square)")
		edgeList = flag.String("edges", "", "explicit edge list for -topology edges, e.g. 0-1,1-2,2-0")
		scen     = flag.String("scenario", "Lab", "hardware scenario (Lab or QL2020), or the path of a declarative scenario spec file with a service section")
		src      = flag.Int("src", 0, "source node of the end-to-end pair stream")
		dst      = flag.Int("dst", -1, "destination node (default: last node)")
		cost     = flag.String("cost", "hops", "routing cost function: hops|fidelity|rate")
		load     = flag.Float64("load", 0.3, "offered end-to-end load fraction of the bottleneck link rate")
		kmax     = flag.Int("kmax", 1, "maximum end-to-end pairs per request")
		fmin     = flag.Float64("fmin", 0.35, "end-to-end minimum delivered fidelity")
		deadline = flag.Float64("deadline", 0, "per-request deadline in seconds (0 = none)")
		gate     = flag.Float64("gate", 1, "swap (Bell-state measurement) gate fidelity at repeater nodes")
		loss     = flag.Float64("loss", 0, "classical per-frame loss probability")
		seed     = flag.Int64("seed", 1, "base random seed")
		seconds  = flag.Float64("seconds", 2, "simulated seconds per trial")
		trials   = flag.Int("trials", 3, "independent repetitions (seeds derived from -seed)")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker goroutines across trials (tables are identical at any level)")

		shared = cli.Register(flag.CommandLine, cli.Config{})
	)
	flag.Parse()

	visited := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { visited[f.Name] = true })

	if *trials <= 0 {
		*trials = 1
	}

	var compiled *scenario.Compiled
	switch *scen {
	case "Lab", "QL2020":
		// Flag-driven run: assemble the equivalent spec and compile it, so
		// both paths share one runner and one semantics.
		sp := &scenario.Spec{
			Name:     "cli",
			Topology: scenario.Topology{Kind: *topology, Nodes: *nodes, Edges: *edgeList},
			Hardware: &scenario.Hardware{Scenario: *scen, Backend: *shared.Backend},
			Engine:   &scenario.Engine{Seed: *seed, Queue: *shared.Queue},
			Protocol: &scenario.Protocol{ClassicalLoss: *loss},
			Run:      &scenario.Run{Seconds: *seconds, Trials: *trials},
			Service: &scenario.Service{
				Src:              *src,
				Dst:              dst,
				Cost:             *cost,
				SwapGateFidelity: *gate,
				Load:             *load,
				MaxPairs:         *kmax,
				MinFidelity:      *fmin,
				DeadlineS:        *deadline,
			},
		}
		c, err := sp.Compile()
		if err != nil {
			fail(err)
		}
		compiled = c
	default:
		// Spec-file run: the file is authoritative for topology, hardware and
		// service; engine/run flags act as explicit overrides.
		for _, name := range []string{"topology", "nodes", "edges", "src", "dst", "cost", "load", "kmax", "fmin", "deadline", "gate", "loss"} {
			if visited[name] {
				fail(fmt.Errorf("-%s conflicts with -scenario %s: set it in the spec file", name, *scen))
			}
		}
		sp, err := scenario.Load(*scen)
		if err != nil {
			fail(err)
		}
		if sp.Service == nil {
			fail(fmt.Errorf("scenario %q has no service section; e2e runs end-to-end specs only (use netsim for link-layer specs)", sp.Name))
		}
		if visited["seed"] || visited["queue"] {
			if sp.Engine == nil {
				sp.Engine = &scenario.Engine{}
			}
			if visited["seed"] {
				sp.Engine.Seed = *seed
			}
			if visited["queue"] {
				sp.Engine.Queue = *shared.Queue
			}
		}
		if visited["backend"] {
			if sp.Hardware == nil {
				sp.Hardware = &scenario.Hardware{}
			}
			sp.Hardware.Backend = *shared.Backend
		}
		if visited["seconds"] || visited["trials"] {
			if sp.Run == nil {
				sp.Run = &scenario.Run{}
			}
			if visited["seconds"] {
				sp.Run.Seconds = *seconds
			}
			if visited["trials"] {
				sp.Run.Trials = *trials
			}
		}
		c, err := sp.Compile()
		if err != nil {
			fail(err)
		}
		compiled = c
	}
	if *parallel <= 0 {
		*parallel = 1
	}

	// Observability attaches to trial 0 only: the remaining trials stay on
	// the uninstrumented production path (tracing would not change their
	// trajectory either way, but one recorded trial is all the files need).
	tracer, registry := shared.Observability()
	stopCPU, err := shared.StartCPU()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	nTrials := compiled.Trials
	results := make([]trialStats, nTrials)
	errs := make([]error, nTrials)
	experiments.RunIndexed(nTrials, *parallel, func(i int) {
		var tr *obs.Tracer
		var reg *obs.Registry
		if i == 0 {
			tr, reg = tracer, registry
		}
		results[i], errs[i] = runTrial(compiled, i, tr, reg)
	})
	for _, err := range errs {
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	stopCPU()
	if err := shared.WriteArtifacts(tracer, registry, results[0].end); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var swaps uint64
	for _, r := range results {
		swaps += r.swaps
	}
	sv := compiled.Service
	fmt.Printf("# e2e %s on %s: path %s cost=%s load=%.2f kmax=%d Fmin=%.2f gate=%g loss=%g seed=%d %.1fs simulated, %d trial(s), %d swaps total\n",
		compiled.Topology, compiled.Config.Scenario, results[0].path, sv.Cost, sv.Traffic.Load, sv.Traffic.MaxPairs, sv.Traffic.MinFidelity,
		sv.SwapGateFidelity, compiled.Config.ClassicalLossProb, compiled.Config.Seed, compiled.Seconds, nTrials, swaps)

	perPath := experiments.Table{
		ID:      "e2e-paths",
		Caption: fmt.Sprintf("Per-path end-to-end performance, averaged over %d trial(s)", nTrials),
		Columns: statsColumns,
	}
	// Collect the union of paths across trials in first-seen order: a trial
	// whose Poisson stream fired no request contributes a zero row for the
	// missing path instead of skewing the average.
	var pathOrder []string
	seen := map[string]bool{}
	for _, r := range results {
		for _, ps := range r.perPath {
			if !seen[ps.Path] {
				seen[ps.Path] = true
				pathOrder = append(pathOrder, ps.Path)
			}
		}
	}
	for _, name := range pathOrder {
		rows := make([]network.PathStats, nTrials)
		for ti := range results {
			rows[ti] = network.PathStats{Path: name}
			for _, ps := range results[ti].perPath {
				if ps.Path == name {
					rows[ti] = ps
					break
				}
			}
		}
		perPath.Rows = append(perPath.Rows, statsRow(network.MeanPathStats(rows)))
	}
	fmt.Println(perPath.String())

	aggRows := make([]network.PathStats, nTrials)
	for ti := range results {
		aggRows[ti] = results[ti].agg
	}
	aggregate := experiments.Table{
		ID:      "e2e-aggregate",
		Caption: fmt.Sprintf("Network aggregate, averaged over %d trial(s)", nTrials),
		Columns: statsColumns,
		Rows:    [][]string{statsRow(network.MeanPathStats(aggRows))},
	}
	fmt.Println(aggregate.String())
}
