// Command qnetinfo prints the hardware platform parameters of the evaluated
// scenarios: the NV gate/coherence table, the MHP cycle timings, the optical
// link characteristics and the derived quantities (success probability and
// expected fidelity as a function of the bright-state population) that the
// link layer's fidelity estimation unit works from.
package main

import (
	"flag"
	"fmt"

	"repro/internal/classical"
	"repro/internal/nv"
	"repro/internal/photonics"
)

func main() {
	scenario := flag.String("scenario", "both", "Lab, QL2020 or both")
	flag.Parse()

	var ids []nv.ScenarioID
	switch *scenario {
	case "Lab", "lab":
		ids = []nv.ScenarioID{nv.ScenarioLab}
	case "QL2020", "ql2020":
		ids = []nv.ScenarioID{nv.ScenarioQL2020}
	default:
		ids = []nv.ScenarioID{nv.ScenarioLab, nv.ScenarioQL2020}
	}

	for _, id := range ids {
		p := nv.NewPlatform(id)
		sampler := photonics.NewLinkSampler(p.Optics)
		fmt.Printf("=== %s ===\n", id)
		fmt.Printf("memory qubits per node:   %d\n", p.MemoryQubits)
		fmt.Printf("MHP cycle (M / K):        %v / %v\n", p.CycleTime[nv.RequestMeasure], p.CycleTime[nv.RequestKeep])
		fmt.Printf("attempt duration (M / K): %v / %v\n", p.AttemptDuration[nv.RequestMeasure], p.AttemptDuration[nv.RequestKeep])
		fmt.Printf("expected cycles/attempt:  M=%.1f K=%.1f\n", p.ExpectedCyclesPerAttempt[nv.RequestMeasure], p.ExpectedCyclesPerAttempt[nv.RequestKeep])
		fmt.Printf("comm delay A-H / B-H:     %v / %v\n", p.CommDelayAH, p.CommDelayBH)
		g := p.Gates
		fmt.Printf("electron T1/T2:           %.3g s / %.3g s\n", g.ElectronT1, g.ElectronT2)
		fmt.Printf("carbon T1/T2:             %.3g s / %.3g s\n", g.CarbonT1, g.CarbonT2)
		fmt.Printf("electron init:            %v (F=%.3f)\n", g.ElectronInit.Duration, g.ElectronInit.Fidelity)
		fmt.Printf("carbon init:              %v (F=%.3f)\n", g.CarbonInit.Duration, g.CarbonInit.Fidelity)
		fmt.Printf("E-C controlled-sqrt(X):   %v (F=%.3f)\n", g.ECControlledSqrtX.Duration, g.ECControlledSqrtX.Fidelity)
		fmt.Printf("move to carbon:           %v (F=%.3f)\n", g.MoveToCarbon.Duration, g.MoveToCarbon.Fidelity)
		fmt.Printf("electron readout:         %v (F0=%.3f F1=%.3f)\n", g.ElectronReadout.Duration, g.ElectronReadout.Fidelity0, g.ElectronReadout.Fidelity1)
		fmt.Printf("fibre loss A / B:         %.3f / %.3f\n", p.Optics.FiberA.TransmissionLossProb(), p.Optics.FiberB.TransmissionLossProb())
		fmt.Printf("photon visibility:        %.2f\n", p.Optics.Visibility)
		fmt.Println("alpha -> expected fidelity / herald success probability:")
		for _, alpha := range []float64{0.05, 0.1, 0.2, 0.3, 0.5} {
			fmt.Printf("  alpha=%.2f  F=%.4f  psucc=%.3e\n", alpha,
				sampler.ExpectedSuccessFidelity(alpha, alpha),
				p.SuccessProbability(sampler, alpha))
		}
		budget := classical.DefaultLinkBudget(p.Optics.FiberA.LengthKM+p.Optics.FiberB.LengthKM, 0)
		fmt.Printf("classical link margin:    %.1f dB, frame error %.2e\n\n", budget.MarginDB(), budget.FrameErrorProbability())
	}
}
