// Command netsim runs the multi-link network layer: it instantiates a
// topology (chain, star, grid or an explicit edge list) of heralded quantum
// links on one deterministic simulator, drives every link with the
// configured traffic, and prints per-link and aggregate performance tables
// (throughput, fidelity, latency percentiles, queue occupancy) — plus a
// per-class SLO table when the workload has traffic classes.
//
// Runs are described declaratively: -scenario <file>.json loads a scenario
// spec (see internal/scenario and the committed scenarios/ library) carrying
// topology, hardware, engine, protocol and traffic. The classic topology and
// traffic flags (-topology/-nodes/-edges/-load/-kmax/-fmin/-keep/...) remain
// as thin shims that assemble the equivalent spec internally and produce
// byte-identical tables; prefer spec files for anything kept under version
// control.
//
// Migration note: -scenario used to name only the hardware scenario (Lab or
// QL2020). Those two values still select the hardware for flag-driven runs;
// any other value is taken as the path of a scenario spec file, which then
// replaces the topology/hardware/protocol/traffic flags entirely (setting
// one of them alongside a spec file is an error). -seed, -seconds, -trials,
// -shards, -backend and -queue stay usable as overrides on top of a spec.
//
// Repetitions (-trials) fan out across a worker pool (-parallel); each trial
// derives its seed from the base seed and its index, so the printed tables
// are byte-identical at every parallelism level.
//
// Examples:
//
//	netsim -topology chain -nodes 8
//	netsim -topology grid -nodes 9 -load 0.99 -seconds 2
//	netsim -scenario scenarios/chain8-mixed-classes.json -parallel 4
//	netsim -scenario scenarios/chain16-bench.json -shards 4
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/cli"
	"repro/internal/experiments"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/workload"
)

// trialStats holds one trial's per-link rows, the aggregate row and (for
// class workloads) the per-class accounts.
type trialStats struct {
	perLink  []netsim.LinkStats
	agg      netsim.LinkStats
	end      sim.Time
	accounts []*workload.ClassAccount
	oldest   []float64
}

// runTrial builds and runs one network from the compiled scenario with a
// trial-derived seed. trace and registry (normally non-nil only for trial 0)
// attach the observability layer; they never change the simulated
// trajectory.
func runTrial(c *scenario.Compiled, trial int, trace *obs.Tracer, registry *obs.Registry) (trialStats, error) {
	cfg := c.Config
	cfg.Seed = experiments.DeriveSeed(c.Config.Seed, uint64(trial))
	cfg.Trace = trace
	cfg.Metrics = registry
	nw, err := netsim.NewNetwork(cfg)
	if err != nil {
		return trialStats{}, err
	}
	mt, err := c.Attach(nw)
	if err != nil {
		return trialStats{}, err
	}
	nw.Run(sim.DurationSeconds(c.Seconds))
	perLink, agg := nw.Stats()
	st := trialStats{perLink: perLink, agg: agg, end: nw.Sim.Now()}
	if mt != nil {
		st.accounts = mt.Accounts()
		st.oldest = mt.OldestWaits()
	}
	return st, nil
}

// statsRow renders one averaged row.
func statsRow(s netsim.LinkStats) []string {
	return []string{
		s.Link,
		fmt.Sprintf("%d", s.Requests),
		fmt.Sprintf("%d", s.Errors),
		fmt.Sprintf("%d", s.Pairs),
		fmt.Sprintf("%.3f", s.OKRate),
		fmt.Sprintf("%.4f", s.Fidelity),
		fmt.Sprintf("%.4f", s.LatencyP50),
		fmt.Sprintf("%.4f", s.LatencyP90),
		fmt.Sprintf("%.4f", s.LatencyP99),
		fmt.Sprintf("%.2f", s.QueueMean),
		fmt.Sprintf("%.0f", s.QueueMax),
		fmt.Sprintf("%d", s.Downs),
		fmt.Sprintf("%.4f", s.DowntimeSeconds),
		fmt.Sprintf("%.4f", s.RecoverySeconds),
	}
}

var statsColumns = []string{"link", "requests", "errors", "pairs", "throughput(1/s)", "fidelity", "lat_p50(s)", "lat_p90(s)", "lat_p99(s)", "queue(avg)", "queue(max)", "downs", "downtime(s)", "recover(s)"}

// fail prints to stderr and exits with a usage error.
func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}

func main() {
	var (
		topology  = flag.String("topology", "chain", "topology: chain|star|grid|dragonfly|edges")
		nodes     = flag.Int("nodes", 8, "node count (grid requires a perfect square)")
		edgeList  = flag.String("edges", "", "explicit edge list for -topology edges, e.g. 0-1,1-2,2-0")
		scen      = flag.String("scenario", "Lab", "hardware scenario (Lab or QL2020), or the path of a declarative scenario spec file that replaces the topology/traffic flags")
		scheduler = flag.String("scheduler", "FCFS", "per-link EGP scheduler: FCFS, LowerWFQ or HigherWFQ")
		load      = flag.Float64("load", 0.7, "per-link offered load fraction f")
		kmax      = flag.Int("kmax", 2, "maximum pairs per request")
		fmin      = flag.Float64("fmin", 0.64, "requested minimum fidelity")
		keep      = flag.Bool("keep", false, "issue create-and-keep (K) requests instead of measure-directly (M)")
		loss      = flag.Float64("loss", 0, "classical per-frame loss probability")
		seed      = flag.Int64("seed", 1, "base random seed")
		seconds   = flag.Float64("seconds", 1, "simulated seconds per trial")
		trials    = flag.Int("trials", 3, "independent repetitions (seeds derived from -seed)")
		parallel  = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker goroutines across trials (tables are identical at any level)")

		shared = cli.Register(flag.CommandLine, cli.Config{ShardsHelp: cli.ShardsTablesHelp})
	)
	flag.Parse()

	visited := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { visited[f.Name] = true })

	if *trials <= 0 {
		*trials = 1
	}

	var compiled *scenario.Compiled
	switch *scen {
	case "Lab", "QL2020":
		// Flag-driven run: assemble the equivalent spec and compile it, so
		// both paths share one runner and one semantics.
		sp := &scenario.Spec{
			Name:     "cli",
			Topology: scenario.Topology{Kind: *topology, Nodes: *nodes, Edges: *edgeList},
			Hardware: &scenario.Hardware{Scenario: *scen, Backend: *shared.Backend},
			Engine:   &scenario.Engine{Seed: *seed, Queue: *shared.Queue, Shards: *shared.Shards},
			Protocol: &scenario.Protocol{Scheduler: *scheduler, ClassicalLoss: *loss},
			Run:      &scenario.Run{Seconds: *seconds, Trials: *trials},
			Traffic: &scenario.Traffic{Poisson: &scenario.Poisson{
				Load:        *load,
				MaxPairs:    *kmax,
				MinFidelity: *fmin,
				Keep:        *keep,
			}},
		}
		c, err := sp.Compile()
		if err != nil {
			fail(err)
		}
		compiled = c
	default:
		// Spec-file run: the file is authoritative for topology, hardware,
		// protocol and traffic; engine/run flags act as explicit overrides.
		for _, name := range []string{"topology", "nodes", "edges", "scheduler", "load", "kmax", "fmin", "keep", "loss"} {
			if visited[name] {
				fail(fmt.Errorf("-%s conflicts with -scenario %s: set it in the spec file", name, *scen))
			}
		}
		sp, err := scenario.Load(*scen)
		if err != nil {
			fail(err)
		}
		if visited["seed"] {
			if sp.Engine == nil {
				sp.Engine = &scenario.Engine{}
			}
			sp.Engine.Seed = *seed
		}
		if visited["backend"] || visited["queue"] || visited["shards"] {
			if sp.Engine == nil {
				sp.Engine = &scenario.Engine{}
			}
			if visited["backend"] {
				sp.Hardware.Backend = *shared.Backend
			}
			if visited["queue"] {
				sp.Engine.Queue = *shared.Queue
			}
			if visited["shards"] {
				sp.Engine.Shards = *shared.Shards
			}
		}
		if visited["seconds"] || visited["trials"] {
			if sp.Run == nil {
				sp.Run = &scenario.Run{}
			}
			if visited["seconds"] {
				sp.Run.Seconds = *seconds
			}
			if visited["trials"] {
				sp.Run.Trials = *trials
			}
		}
		c, err := sp.Compile()
		if err != nil {
			fail(err)
		}
		compiled = c
	}
	if *parallel <= 0 {
		*parallel = 1
	}

	// Observability attaches to trial 0 only; the remaining trials stay on
	// the uninstrumented production path.
	tracer, registry := shared.Observability()
	stopCPU, err := shared.StartCPU()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Fan the trials out over the worker pool; results land at their own
	// index so the aggregation below is order-independent.
	nTrials := compiled.Trials
	results := make([]trialStats, nTrials)
	errs := make([]error, nTrials)
	experiments.RunIndexed(nTrials, *parallel, func(i int) {
		var tr *obs.Tracer
		var reg *obs.Registry
		if i == 0 {
			tr, reg = tracer, registry
		}
		results[i], errs[i] = runTrial(compiled, i, tr, reg)
	})
	for _, err := range errs {
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	stopCPU()
	if err := shared.WriteArtifacts(tracer, registry, results[0].end); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	printHeader(compiled)

	perLink := experiments.Table{
		ID:      "netsim-links",
		Caption: fmt.Sprintf("Per-link performance, averaged over %d trial(s)", nTrials),
		Columns: statsColumns,
	}
	for li := range results[0].perLink {
		rows := make([]netsim.LinkStats, nTrials)
		for ti := range results {
			rows[ti] = results[ti].perLink[li]
		}
		perLink.Rows = append(perLink.Rows, statsRow(netsim.MeanStats(rows)))
	}
	fmt.Println(perLink.String())

	aggRows := make([]netsim.LinkStats, nTrials)
	for ti := range results {
		aggRows[ti] = results[ti].agg
	}
	aggregate := experiments.Table{
		ID:      "netsim-aggregate",
		Caption: fmt.Sprintf("Network aggregate, averaged over %d trial(s)", nTrials),
		Columns: statsColumns,
		Rows:    [][]string{statsRow(netsim.MeanStats(aggRows))},
	}
	fmt.Println(aggregate.String())

	if len(compiled.Classes) > 0 {
		printSLO(compiled, results)
	}
}

// printHeader summarises the run; the wording for Poisson runs matches the
// historical flag-era header byte for byte.
func printHeader(c *scenario.Compiled) {
	cfg := c.Config
	if p := c.Poisson; p != nil {
		kind := "M"
		if p.Keep {
			kind = "K"
		}
		fmt.Printf("# netsim %s on %s: load=%.2f kind=%s kmax=%d Fmin=%.2f loss=%g seed=%d %.1fs simulated, %d trial(s)\n",
			c.Topology, cfg.Scenario, p.Load, kind, p.MaxPairs, p.MinFidelity, cfg.ClassicalLossProb, cfg.Seed, c.Seconds, c.Trials)
		return
	}
	fmt.Printf("# netsim %s on %s: %d workload class(es) loss=%g seed=%d %.1fs simulated, %d trial(s)\n",
		c.Topology, cfg.Scenario, len(c.Classes), cfg.ClassicalLossProb, cfg.Seed, c.Seconds, c.Trials)
}

// printSLO merges the per-trial class accounts in trial order and prints the
// per-class SLO table; the merge and the max folds are deterministic, so the
// table is identical at any -parallel or -shards level.
func printSLO(c *scenario.Compiled, results []trialStats) {
	merged := make([]*workload.ClassAccount, len(c.Classes))
	for i := range merged {
		merged[i] = &workload.ClassAccount{}
	}
	oldest := make([]float64, len(c.Classes))
	for _, r := range results {
		for ci, a := range r.accounts {
			merged[ci].Merge(a)
		}
		for ci, w := range r.oldest {
			if w > oldest[ci] {
				oldest[ci] = w
			}
		}
	}
	duration := c.Seconds * float64(len(results))
	table := experiments.Table{
		ID:      "netsim-classes",
		Caption: fmt.Sprintf("Per-class service levels, %d trial(s) merged", len(results)),
		Columns: workload.SLOColumns,
	}
	for _, s := range workload.BuildSLO(c.Classes, merged, oldest, duration) {
		table.Rows = append(table.Rows, s.Row())
	}
	fmt.Println(table.String())
}
