// Command netsim runs the multi-link network layer: it instantiates a
// topology (chain, star, grid or an explicit edge list) of heralded quantum
// links on one deterministic simulator, drives every link with Poisson
// CREATE traffic, and prints per-link and aggregate performance tables
// (throughput, fidelity, latency percentiles, queue occupancy).
//
// Repetitions (-trials) fan out across a worker pool (-parallel); each trial
// derives its seed from the base seed and its index, so the printed tables
// are byte-identical at every parallelism level.
//
// Examples:
//
//	netsim -topology chain -nodes 8
//	netsim -topology grid -nodes 9 -load 0.99 -seconds 2
//	netsim -topology star -nodes 5 -trials 8 -parallel 4
//	netsim -topology edges -edges 0-1,1-2,2-0 -keep
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/experiments"
	"repro/internal/netsim"
	"repro/internal/nv"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/quantum"
	"repro/internal/sim"
)

// trialStats holds one trial's per-link rows plus the aggregate row.
type trialStats struct {
	perLink []netsim.LinkStats
	agg     netsim.LinkStats
	end     sim.Time
}

// runTrial builds and runs one network with a trial-derived seed. trace and
// registry (normally non-nil only for trial 0) attach the observability
// layer; they never change the simulated trajectory.
func runTrial(spec netsim.Spec, scenario nv.ScenarioID, scheduler string, backend quantum.Backend, queue sim.QueueKind, loss float64,
	traffic netsim.TrafficConfig, seed int64, trial int, seconds float64, shards int, trace *obs.Tracer, registry *obs.Registry) (trialStats, error) {
	cfg := netsim.DefaultConfig(spec, scenario)
	cfg.Seed = experiments.DeriveSeed(seed, uint64(trial))
	cfg.Scheduler = scheduler
	cfg.Backend = backend
	cfg.Queue = queue
	cfg.ClassicalLossProb = loss
	cfg.Shards = shards
	cfg.Trace = trace
	cfg.Metrics = registry
	nw, err := netsim.NewNetwork(cfg)
	if err != nil {
		return trialStats{}, err
	}
	nw.AttachTraffic(traffic)
	nw.Run(sim.DurationSeconds(seconds))
	perLink, agg := nw.Stats()
	return trialStats{perLink: perLink, agg: agg, end: nw.Sim.Now()}, nil
}

// statsRow renders one averaged row.
func statsRow(s netsim.LinkStats) []string {
	return []string{
		s.Link,
		fmt.Sprintf("%d", s.Requests),
		fmt.Sprintf("%d", s.Errors),
		fmt.Sprintf("%d", s.Pairs),
		fmt.Sprintf("%.3f", s.OKRate),
		fmt.Sprintf("%.4f", s.Fidelity),
		fmt.Sprintf("%.4f", s.LatencyP50),
		fmt.Sprintf("%.4f", s.LatencyP90),
		fmt.Sprintf("%.4f", s.LatencyP99),
		fmt.Sprintf("%.2f", s.QueueMean),
		fmt.Sprintf("%.0f", s.QueueMax),
	}
}

var statsColumns = []string{"link", "requests", "errors", "pairs", "throughput(1/s)", "fidelity", "lat_p50(s)", "lat_p90(s)", "lat_p99(s)", "queue(avg)", "queue(max)"}

func main() {
	var (
		topology  = flag.String("topology", "chain", "topology: chain|star|grid|dragonfly|edges")
		nodes     = flag.Int("nodes", 8, "node count (grid requires a perfect square)")
		edgeList  = flag.String("edges", "", "explicit edge list for -topology edges, e.g. 0-1,1-2,2-0")
		scenario  = flag.String("scenario", "Lab", "hardware scenario: Lab or QL2020")
		scheduler = flag.String("scheduler", "FCFS", "per-link EGP scheduler: FCFS, LowerWFQ or HigherWFQ")
		backend   = flag.String("backend", "", "pair-state backend: dense (exact, default) or belldiag (O(1) fast path); $REPRO_BACKEND sets the default")
		load      = flag.Float64("load", 0.7, "per-link offered load fraction f")
		kmax      = flag.Int("kmax", 2, "maximum pairs per request")
		fmin      = flag.Float64("fmin", 0.64, "requested minimum fidelity")
		keep      = flag.Bool("keep", false, "issue create-and-keep (K) requests instead of measure-directly (M)")
		loss      = flag.Float64("loss", 0, "classical per-frame loss probability")
		seed      = flag.Int64("seed", 1, "base random seed")
		seconds   = flag.Float64("seconds", 1, "simulated seconds per trial")
		trials    = flag.Int("trials", 3, "independent repetitions (seeds derived from -seed)")
		parallel  = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker goroutines across trials (tables are identical at any level)")
		shards    = flag.Int("shards", 0, "worker shards of the simulation engine (<=1 serial; tables are identical at any shard count)")
		queue     = flag.String("queue", "", "event-queue discipline: heap (exact binary heap, default) or wheel (hierarchical timing wheel); $REPRO_QUEUE sets the default")

		traceOut   = flag.String("trace", "", "write a Chrome trace-event JSON flight recording of trial 0 to this file (view in ui.perfetto.dev)")
		traceCap   = flag.Int("tracecap", 1<<16, "per-ring record capacity of the flight recorder (rounded up to a power of two)")
		metricsOut = flag.String("metrics", "", "write a JSON metrics snapshot of trial 0 to this file")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile taken at exit to this file")
	)
	flag.Parse()

	spec, err := netsim.SpecFromFlags(*topology, *nodes, *edgeList)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := spec.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	switch nv.ScenarioID(*scenario) {
	case nv.ScenarioLab, nv.ScenarioQL2020:
	default:
		fmt.Fprintf(os.Stderr, "unknown scenario %q (Lab|QL2020)\n", *scenario)
		os.Exit(2)
	}
	switch *scheduler {
	case "FCFS", "LowerWFQ", "HigherWFQ":
	default:
		fmt.Fprintf(os.Stderr, "unknown scheduler %q (FCFS|LowerWFQ|HigherWFQ)\n", *scheduler)
		os.Exit(2)
	}
	be, err := quantum.ResolveBackend(*backend)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	qk, err := sim.ResolveQueue(*queue)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *trials <= 0 {
		*trials = 1
	}
	if *parallel <= 0 {
		*parallel = 1
	}
	traffic := netsim.TrafficConfig{
		Load:        *load,
		MaxPairs:    *kmax,
		MinFidelity: *fmin,
		Keep:        *keep,
	}

	// Observability attaches to trial 0 only; the remaining trials stay on
	// the uninstrumented production path.
	var tracer *obs.Tracer
	var registry *obs.Registry
	if *traceOut != "" {
		shardCount := *shards
		if shardCount < 1 {
			shardCount = 1
		}
		tracer = obs.NewTracer(shardCount, *traceCap)
	}
	if *metricsOut != "" {
		registry = obs.NewRegistry()
	}
	stopCPU, err := prof.StartCPU(*cpuProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Fan the trials out over the worker pool; results land at their own
	// index so the aggregation below is order-independent.
	results := make([]trialStats, *trials)
	errs := make([]error, *trials)
	experiments.RunIndexed(*trials, *parallel, func(i int) {
		var tr *obs.Tracer
		var reg *obs.Registry
		if i == 0 {
			tr, reg = tracer, registry
		}
		results[i], errs[i] = runTrial(spec, nv.ScenarioID(*scenario), *scheduler, be, qk, *loss, traffic, *seed, i, *seconds, *shards, tr, reg)
	})
	for _, err := range errs {
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	stopCPU()
	if err := prof.WriteTrace(*traceOut, tracer); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if registry != nil {
		if err := prof.WriteMetrics(*metricsOut, registry, results[0].end); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if err := prof.WriteHeap(*memProfile); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	kind := "M"
	if *keep {
		kind = "K"
	}
	fmt.Printf("# netsim %s on %s: load=%.2f kind=%s kmax=%d Fmin=%.2f loss=%g seed=%d %.1fs simulated, %d trial(s)\n",
		spec, *scenario, *load, kind, *kmax, *fmin, *loss, *seed, *seconds, *trials)

	perLink := experiments.Table{
		ID:      "netsim-links",
		Caption: fmt.Sprintf("Per-link performance, averaged over %d trial(s)", *trials),
		Columns: statsColumns,
	}
	for li := range results[0].perLink {
		rows := make([]netsim.LinkStats, *trials)
		for ti := range results {
			rows[ti] = results[ti].perLink[li]
		}
		perLink.Rows = append(perLink.Rows, statsRow(netsim.MeanStats(rows)))
	}
	fmt.Println(perLink.String())

	aggRows := make([]netsim.LinkStats, *trials)
	for ti := range results {
		aggRows[ti] = results[ti].agg
	}
	aggregate := experiments.Table{
		ID:      "netsim-aggregate",
		Caption: fmt.Sprintf("Network aggregate, averaged over %d trial(s)", *trials),
		Columns: statsColumns,
		Rows:    [][]string{statsRow(netsim.MeanStats(aggRows))},
	}
	fmt.Println(aggregate.String())
}
