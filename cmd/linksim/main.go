// Command linksim runs a single link layer scenario and prints its
// performance metrics: a quick way to explore one configuration of the
// system (scenario, scheduler, load, request kind, fidelity target,
// classical loss) without the full benchmark suite.
//
// Example:
//
//	linksim -scenario QL2020 -kind MD -load 0.99 -kmax 3 -fmin 0.64 -seconds 10
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/egp"
	"repro/internal/nv"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	var (
		scenario  = flag.String("scenario", "Lab", "hardware scenario: Lab or QL2020")
		kind      = flag.String("kind", "MD", "request kind: NL, CK or MD")
		scheduler = flag.String("scheduler", "FCFS", "scheduler: FCFS, LowerWFQ or HigherWFQ")
		load      = flag.Float64("load", 0.99, "offered load fraction f_P")
		kmax      = flag.Int("kmax", 3, "maximum pairs per request")
		fmin      = flag.Float64("fmin", 0.64, "requested minimum fidelity")
		seconds   = flag.Float64("seconds", 5, "simulated seconds")
		seed      = flag.Int64("seed", 1, "random seed")
		loss      = flag.Float64("loss", 0, "classical frame loss probability")
		origin    = flag.String("origin", "random", "request origin: A, B or random")
	)
	flag.Parse()

	priority, ok := map[string]int{"NL": egp.PriorityNL, "CK": egp.PriorityCK, "MD": egp.PriorityMD}[*kind]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown kind %q\n", *kind)
		os.Exit(2)
	}
	var sid nv.ScenarioID
	switch *scenario {
	case "Lab", "lab":
		sid = nv.ScenarioLab
	case "QL2020", "ql2020":
		sid = nv.ScenarioQL2020
	default:
		fmt.Fprintf(os.Stderr, "unknown scenario %q\n", *scenario)
		os.Exit(2)
	}
	var org workload.Origin
	switch *origin {
	case "A":
		org = workload.OriginA
	case "B":
		org = workload.OriginB
	default:
		org = workload.OriginRandom
	}

	cfg := core.DefaultConfig(sid)
	cfg.Seed = *seed
	cfg.Scheduler = *scheduler
	cfg.ClassicalLossProb = *loss

	net := core.NewNetwork(cfg)
	gen := workload.NewGenerator(net, org, []workload.Class{{
		Priority:    priority,
		Fraction:    *load,
		MaxPairs:    *kmax,
		MinFidelity: *fmin,
	}})
	net.Start()
	gen.Start()
	stopSampling := sim.Ticker(net.Sim, 50*sim.Millisecond, net.SampleQueueLength)
	net.Run(sim.DurationSeconds(*seconds))
	stopSampling()

	c := net.Collector
	fmt.Printf("scenario:          %s\n", net.Describe())
	fmt.Printf("kind / load:       %s / %.2f (kmax=%d, Fmin=%.2f)\n", *kind, *load, *kmax, *fmin)
	fmt.Printf("simulated time:    %.2f s\n", c.DurationSeconds())
	fmt.Printf("requests issued:   %d\n", gen.Submitted()[priority])
	fmt.Printf("pairs delivered:   %d\n", c.OKCount(priority))
	fmt.Printf("throughput:        %.3f pairs/s\n", c.Throughput(priority))
	fmt.Printf("avg fidelity:      %.3f\n", c.Fidelity(priority).Mean())
	if q := c.QBER(priority); q != nil && q.Samples() > 0 {
		z, x, y := q.Rates()
		fmt.Printf("QBER (Z/X/Y):      %.3f / %.3f / %.3f  (F_est %.3f, %d samples)\n", z, x, y, q.FidelityEstimate(), q.Samples())
	}
	fmt.Printf("request latency:   %.3f s (per request), %.3f s (scaled)\n",
		c.RequestLatency(priority).Mean(), c.ScaledLatency(priority).Mean())
	fmt.Printf("avg queue length:  %.2f\n", c.QueueLength().Mean())
	fmt.Printf("timeouts/unsupp:   %d / %d\n", c.ErrorCount("TIMEOUT"), c.ErrorCount("UNSUPP"))
	fmt.Printf("expire events:     %d\n", c.ExpireCount())
	rep := c.Fairness(core.NodeA, core.NodeB)
	fmt.Printf("fairness (A vs B): fidelity %.3f, throughput %.3f, latency %.3f\n",
		rep.FidelityRelDiff, rep.ThroughputRelDiff, rep.LatencyRelDiff)
	matched, successes, timeMis, queueMis, noOther := net.Mid.Stats()
	fmt.Printf("midpoint:          matched=%d success=%d timeMismatch=%d queueMismatch=%d noMsgOther=%d\n",
		matched, successes, timeMis, queueMis, noOther)
}
