// Command bench runs the structured benchmark scenarios of internal/bench
// and reports the repo's performance trajectory: deterministic work counters
// (events, attempts, delivered pairs), heap cost per entanglement attempt,
// and — with -wallclock — host throughput.
//
// Besides the registered scenarios (-scenarios, -list), -scenario <file>.json
// benches a declarative scenario spec (see internal/scenario): the spec's
// topology, hardware, protocol and traffic define the workload while the
// bench flags keep control of seed, backend, shards and queue.
//
// The human-readable table always prints to stdout. With -json, every
// scenario additionally writes BENCH_<scenario>.json into -out; those files
// are byte-identical across runs and -parallel levels unless -wallclock adds
// the host-dependent section. With -baseline, the fresh results are gated
// against the committed baseline directory and the process exits non-zero on
// regression.
//
// Examples:
//
//	bench                                    # all scenarios, table only
//	bench -scenarios single-link,e2e-4hop
//	bench -scenario scenarios/chain16-bench.json
//	bench -json -out bench/baseline -wallclock   # refresh the committed baseline
//	bench -json -baseline bench/baseline -gate 0.20   # the CI alloc gate
//
// Gating wall-clock throughput (-wallclock together with -baseline) is only
// meaningful when both sides were measured on the same machine; CI does it
// by re-measuring the PR's merge-base on the same runner.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/bench"
	"repro/internal/cli"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	var (
		scenarios = flag.String("scenarios", "all", "comma-separated registered scenario names, or 'all'")
		specFile  = flag.String("scenario", "", "bench a declarative scenario spec file instead of the registered scenarios")
		list      = flag.Bool("list", false, "list registered scenarios and exit")
		seconds   = flag.Float64("seconds", 0, "simulated seconds per trial (0 = each scenario's own default)")
		trials    = flag.Int("trials", 3, "independently seeded repetitions feeding the deterministic counters")
		seed      = flag.Int64("seed", 1, "base random seed (trial seeds are derived from it)")
		parallel  = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker goroutines for the trial fan-out (never changes any reported number)")
		jsonOut   = flag.Bool("json", false, "write BENCH_<scenario>.json files into -out")
		outDir    = flag.String("out", ".", "directory for -json output")
		wallclock = flag.Bool("wallclock", false, "add the host-dependent wall-clock section (makes the JSON machine-specific)")
		baseline  = flag.String("baseline", "", "baseline directory to gate against (fails on regression)")
		gate      = flag.Float64("gate", 0.20, "allowed relative regression vs the baseline (0.20 = 20%)")

		shared = cli.Register(flag.CommandLine, cli.Config{
			BackendHelp: "pair-state backend: dense (exact, default) or belldiag (O(1) Bell-diagonal fast path); $REPRO_BACKEND sets the default",
			ShardsHelp:  "worker shards of the simulation engine (<=1 serial; counters are identical at any shard count)",
			TraceHelp:   "write a Chrome trace-event JSON flight recording of trial 0 to this file (single scenario only; view in ui.perfetto.dev)",
			MetricsHelp: "write a JSON metrics snapshot of trial 0 to this file (single scenario only)",
		})
	)
	flag.Parse()

	resolved, err := shared.Resolve()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	be, qk := resolved.Backend, resolved.Queue

	if *list {
		for _, sc := range bench.Scenarios() {
			fmt.Printf("%-12s %s\n", sc.Name, sc.Description)
		}
		return
	}

	var selected []bench.Scenario
	switch {
	case *specFile != "":
		if *scenarios != "all" {
			fmt.Fprintln(os.Stderr, "-scenario and -scenarios are mutually exclusive")
			os.Exit(2)
		}
		sp, err := scenario.Load(*specFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		compiled, err := sp.Compile()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		sc, err := bench.FromSpec(compiled)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		selected = append(selected, sc)
	case *scenarios == "all":
		selected = bench.Scenarios()
	default:
		for _, name := range strings.Split(*scenarios, ",") {
			name = strings.TrimSpace(name)
			sc, ok := bench.ScenarioByName(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown scenario %q (use -list)\n", name)
				os.Exit(2)
			}
			selected = append(selected, sc)
		}
	}

	opts := bench.Options{
		SimSeconds:  *seconds,
		Trials:      *trials,
		Seed:        *seed,
		Parallelism: *parallel,
		WallClock:   *wallclock,
		Backend:     be,
		Shards:      resolved.Shards,
		Queue:       qk,
	}

	// Observability attaches to trial 0 of a single selected scenario, so the
	// emitted files unambiguously describe one workload. The counter pass is
	// unperturbed by it; the alloc and wall-clock passes never see it.
	var tracer *obs.Tracer
	var registry *obs.Registry
	if *shared.TraceOut != "" || *shared.MetricsOut != "" {
		if len(selected) != 1 {
			fmt.Fprintln(os.Stderr, "-trace/-metrics require exactly one scenario (use -scenarios <name>)")
			os.Exit(2)
		}
		tracer, registry = shared.Observability()
		opts.Instrument = func(trial int) (*obs.Tracer, *obs.Registry) {
			if trial == 0 {
				return tracer, registry
			}
			return nil, nil
		}
	}
	stopCPU, err := shared.StartCPU()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	engine := "serial engine"
	if resolved.Shards > 1 {
		engine = fmt.Sprintf("%d-shard engine", resolved.Shards)
	}
	duration := "per-scenario duration"
	if *seconds > 0 {
		duration = fmt.Sprintf("%.2f simulated second(s)", *seconds)
	}
	columns := []string{"scenario", "events", "attempts", "pairs", "events/sim-s", "pairs/sim-s", "allocs/attempt", "bytes/attempt"}
	if *wallclock {
		columns = append(columns, "events/wall-s", "sim-s/wall-s")
	}
	table := experiments.Table{
		ID:      "bench",
		Caption: fmt.Sprintf("%d trial(s) x %s, seed %d, %s backend, %s", opts.Trials, duration, opts.Seed, be, engine),
		Columns: columns,
	}

	var regressions []string
	var trialSimSeconds float64
	for _, sc := range selected {
		res, err := bench.Run(sc, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		trialSimSeconds = res.Config.SimSeconds
		row := []string{
			res.Scenario,
			fmt.Sprintf("%d", res.Totals.Events),
			fmt.Sprintf("%d", res.Totals.Attempts),
			fmt.Sprintf("%d", res.Totals.Pairs),
			fmt.Sprintf("%.0f", res.Rates.EventsPerSimSec),
			fmt.Sprintf("%.1f", res.Rates.PairsPerSimSec),
			fmt.Sprintf("%.3f", res.AllocsPerAttempt),
			fmt.Sprintf("%.1f", res.BytesPerAttempt),
		}
		if *wallclock && res.WallClock != nil {
			row = append(row,
				fmt.Sprintf("%.0f", res.WallClock.EventsPerWallSec),
				fmt.Sprintf("%.2f", res.WallClock.SimSecPerWallSec))
		}
		table.Rows = append(table.Rows, row)

		if *jsonOut {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			path, err := res.WriteFile(*outDir)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
		if *baseline != "" {
			base, err := bench.ReadFile(*baseline + "/" + bench.FileName(res.Scenario))
			switch {
			case errors.Is(err, os.ErrNotExist):
				// A scenario with no baseline yet (e.g. added by this very
				// change) is reported, not failed; the refresh commits it.
				fmt.Fprintf(os.Stderr, "note: no baseline for %s in %s; skipping comparison\n", res.Scenario, *baseline)
			case err != nil:
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			default:
				regs, err := bench.Compare(base, res, *gate)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				regressions = append(regressions, regs...)
			}
		}
	}

	stopCPU()
	if tracer != nil || registry != nil {
		end := sim.Time(sim.DurationSeconds(trialSimSeconds))
		if err := shared.WriteArtifacts(tracer, registry, end); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else if err := shared.WriteArtifacts(nil, nil, 0); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println(table.String())

	if *baseline != "" {
		if len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Fprintln(os.Stderr, "REGRESSION: "+r)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "baseline gate passed (tolerance %.0f%%)\n", *gate*100)
	}
}
