// Command bench runs the structured benchmark scenarios of internal/bench
// and reports the repo's performance trajectory: deterministic work counters
// (events, attempts, delivered pairs), heap cost per entanglement attempt,
// and — with -wallclock — host throughput.
//
// The human-readable table always prints to stdout. With -json, every
// scenario additionally writes BENCH_<scenario>.json into -out; those files
// are byte-identical across runs and -parallel levels unless -wallclock adds
// the host-dependent section. With -baseline, the fresh results are gated
// against the committed baseline directory and the process exits non-zero on
// regression.
//
// Examples:
//
//	bench                                    # all scenarios, table only
//	bench -scenarios single-link,e2e-4hop
//	bench -json -out bench/baseline -wallclock   # refresh the committed baseline
//	bench -json -baseline bench/baseline -gate 0.20   # the CI alloc gate
//
// Gating wall-clock throughput (-wallclock together with -baseline) is only
// meaningful when both sides were measured on the same machine; CI does it
// by re-measuring the PR's merge-base on the same runner.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/bench"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/quantum"
	"repro/internal/sim"
)

func main() {
	var (
		scenarios = flag.String("scenarios", "all", "comma-separated scenario names, or 'all'")
		list      = flag.Bool("list", false, "list registered scenarios and exit")
		seconds   = flag.Float64("seconds", 0, "simulated seconds per trial (0 = each scenario's own default)")
		trials    = flag.Int("trials", 3, "independently seeded repetitions feeding the deterministic counters")
		seed      = flag.Int64("seed", 1, "base random seed (trial seeds are derived from it)")
		parallel  = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker goroutines for the trial fan-out (never changes any reported number)")
		jsonOut   = flag.Bool("json", false, "write BENCH_<scenario>.json files into -out")
		outDir    = flag.String("out", ".", "directory for -json output")
		wallclock = flag.Bool("wallclock", false, "add the host-dependent wall-clock section (makes the JSON machine-specific)")
		baseline  = flag.String("baseline", "", "baseline directory to gate against (fails on regression)")
		gate      = flag.Float64("gate", 0.20, "allowed relative regression vs the baseline (0.20 = 20%)")
		backend   = flag.String("backend", "", "pair-state backend: dense (exact, default) or belldiag (O(1) Bell-diagonal fast path); $REPRO_BACKEND sets the default")
		shards    = flag.Int("shards", 0, "worker shards of the simulation engine (<=1 serial; counters are identical at any shard count)")
		queue     = flag.String("queue", "", "event-queue discipline: heap (exact binary heap, default) or wheel (hierarchical timing wheel); $REPRO_QUEUE sets the default")

		traceOut   = flag.String("trace", "", "write a Chrome trace-event JSON flight recording of trial 0 to this file (single scenario only; view in ui.perfetto.dev)")
		traceCap   = flag.Int("tracecap", 1<<16, "per-ring record capacity of the flight recorder (rounded up to a power of two)")
		metricsOut = flag.String("metrics", "", "write a JSON metrics snapshot of trial 0 to this file (single scenario only)")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile taken at exit to this file")
	)
	flag.Parse()

	be, err := quantum.ResolveBackend(*backend)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	qk, err := sim.ResolveQueue(*queue)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *list {
		for _, sc := range bench.Scenarios() {
			fmt.Printf("%-12s %s\n", sc.Name, sc.Description)
		}
		return
	}

	var selected []bench.Scenario
	if *scenarios == "all" {
		selected = bench.Scenarios()
	} else {
		for _, name := range strings.Split(*scenarios, ",") {
			name = strings.TrimSpace(name)
			sc, ok := bench.ScenarioByName(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown scenario %q (use -list)\n", name)
				os.Exit(2)
			}
			selected = append(selected, sc)
		}
	}

	opts := bench.Options{
		SimSeconds:  *seconds,
		Trials:      *trials,
		Seed:        *seed,
		Parallelism: *parallel,
		WallClock:   *wallclock,
		Backend:     be,
		Shards:      *shards,
		Queue:       qk,
	}

	// Observability attaches to trial 0 of a single selected scenario, so the
	// emitted files unambiguously describe one workload. The counter pass is
	// unperturbed by it; the alloc and wall-clock passes never see it.
	var tracer *obs.Tracer
	var registry *obs.Registry
	if *traceOut != "" || *metricsOut != "" {
		if len(selected) != 1 {
			fmt.Fprintln(os.Stderr, "-trace/-metrics require exactly one scenario (use -scenarios <name>)")
			os.Exit(2)
		}
		if *traceOut != "" {
			shardCount := *shards
			if shardCount < 1 {
				shardCount = 1
			}
			tracer = obs.NewTracer(shardCount, *traceCap)
		}
		if *metricsOut != "" {
			registry = obs.NewRegistry()
		}
		opts.Instrument = func(trial int) (*obs.Tracer, *obs.Registry) {
			if trial == 0 {
				return tracer, registry
			}
			return nil, nil
		}
	}
	stopCPU, err := prof.StartCPU(*cpuProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	engine := "serial engine"
	if *shards > 1 {
		engine = fmt.Sprintf("%d-shard engine", *shards)
	}
	duration := "per-scenario duration"
	if *seconds > 0 {
		duration = fmt.Sprintf("%.2f simulated second(s)", *seconds)
	}
	columns := []string{"scenario", "events", "attempts", "pairs", "events/sim-s", "pairs/sim-s", "allocs/attempt", "bytes/attempt"}
	if *wallclock {
		columns = append(columns, "events/wall-s", "sim-s/wall-s")
	}
	table := experiments.Table{
		ID:      "bench",
		Caption: fmt.Sprintf("%d trial(s) x %s, seed %d, %s backend, %s", opts.Trials, duration, opts.Seed, be, engine),
		Columns: columns,
	}

	var regressions []string
	var trialSimSeconds float64
	for _, sc := range selected {
		res, err := bench.Run(sc, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		trialSimSeconds = res.Config.SimSeconds
		row := []string{
			res.Scenario,
			fmt.Sprintf("%d", res.Totals.Events),
			fmt.Sprintf("%d", res.Totals.Attempts),
			fmt.Sprintf("%d", res.Totals.Pairs),
			fmt.Sprintf("%.0f", res.Rates.EventsPerSimSec),
			fmt.Sprintf("%.1f", res.Rates.PairsPerSimSec),
			fmt.Sprintf("%.3f", res.AllocsPerAttempt),
			fmt.Sprintf("%.1f", res.BytesPerAttempt),
		}
		if *wallclock && res.WallClock != nil {
			row = append(row,
				fmt.Sprintf("%.0f", res.WallClock.EventsPerWallSec),
				fmt.Sprintf("%.2f", res.WallClock.SimSecPerWallSec))
		}
		table.Rows = append(table.Rows, row)

		if *jsonOut {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			path, err := res.WriteFile(*outDir)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
		if *baseline != "" {
			base, err := bench.ReadFile(*baseline + "/" + bench.FileName(res.Scenario))
			switch {
			case errors.Is(err, os.ErrNotExist):
				// A scenario with no baseline yet (e.g. added by this very
				// change) is reported, not failed; the refresh commits it.
				fmt.Fprintf(os.Stderr, "note: no baseline for %s in %s; skipping comparison\n", res.Scenario, *baseline)
			case err != nil:
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			default:
				regs, err := bench.Compare(base, res, *gate)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				regressions = append(regressions, regs...)
			}
		}
	}

	stopCPU()
	if err := prof.WriteTrace(*traceOut, tracer); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if registry != nil {
		end := sim.Time(sim.DurationSeconds(trialSimSeconds))
		if err := prof.WriteMetrics(*metricsOut, registry, end); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if err := prof.WriteHeap(*memProfile); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println(table.String())

	if *baseline != "" {
		if len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Fprintln(os.Stderr, "REGRESSION: "+r)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "baseline gate passed (tolerance %.0f%%)\n", *gate*100)
	}
}
