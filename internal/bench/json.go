package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// SchemaVersion identifies the BENCH_*.json layout; bump it when a field
// changes meaning so downstream tooling can refuse mixed comparisons.
const SchemaVersion = 1

// RunConfig records the knobs that shaped a result; comparisons across
// different configs are rejected.
type RunConfig struct {
	Seed       int64   `json:"seed"`
	Trials     int     `json:"trials"`
	SimSeconds float64 `json:"simulated_seconds"`
	// Backend is the pair-state backend the run used. Empty means the
	// dense default, so dense results (and pre-existing baselines) carry
	// no backend field at all.
	Backend string `json:"backend,omitempty"`
	// Shards is the engine's worker shard count; absent for serial runs,
	// so serial baselines carry no shards field. The deterministic
	// counters sections are identical at any shard count — CI compares a
	// sharded run's totals/rates against the committed serial baseline.
	Shards int `json:"shards,omitempty"`
	// Queue is the event-queue discipline the run used. Empty means the
	// binary-heap default, so heap results (and pre-existing baselines)
	// carry no queue field. The deterministic counters sections are
	// identical under either discipline — CI compares a wheel run's
	// totals/rates against the committed heap baseline.
	Queue string `json:"queue,omitempty"`
}

// Rates are throughput figures in simulated time: fully deterministic for a
// given seed and code version, so a change signals a behavioural difference,
// not host noise.
type Rates struct {
	EventsPerSimSec   float64 `json:"events_per_sim_sec"`
	AttemptsPerSimSec float64 `json:"attempts_per_sim_sec"`
	PairsPerSimSec    float64 `json:"pairs_per_sim_sec"`
}

// WallClock is the host-dependent section, emitted only when requested: two
// runs of the same binary produce slightly different numbers, and different
// machines produce very different ones.
type WallClock struct {
	WallSeconds      float64 `json:"wall_seconds"`
	EventsPerWallSec float64 `json:"events_per_wall_sec"`
	SimSecPerWallSec float64 `json:"sim_sec_per_wall_sec"`
}

// Result is the machine-readable outcome of one scenario run — the schema of
// BENCH_<scenario>.json. Everything outside WallClock is deterministic:
// byte-identical across repeated runs and across -parallel levels.
type Result struct {
	Schema      int       `json:"schema"`
	Scenario    string    `json:"scenario"`
	Description string    `json:"description"`
	Config      RunConfig `json:"config"`
	Totals      Counters  `json:"totals"`
	Rates       Rates     `json:"rates"`
	// AllocsPerAttempt and BytesPerAttempt are heap cost per entanglement
	// attempt over the steady-state window of a serial trial (GC paused).
	AllocsPerAttempt float64 `json:"allocs_per_attempt"`
	BytesPerAttempt  float64 `json:"bytes_per_attempt"`
	// WallClock is present only when the run was asked to time itself
	// (cmd/bench -wallclock); the committed baselines include it so CI can
	// gate on events per wall-second.
	WallClock *WallClock `json:"wall_clock,omitempty"`
}

// FileName returns the canonical file name for a scenario's result.
func FileName(scenario string) string { return "BENCH_" + scenario + ".json" }

// Marshal renders the result as stable, indented JSON (trailing newline
// included) suitable for committing.
func (r Result) Marshal() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// WriteFile writes BENCH_<scenario>.json into dir.
func (r Result) WriteFile(dir string) (string, error) {
	data, err := r.Marshal()
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, FileName(r.Scenario))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// ReadFile loads a previously written result.
func ReadFile(path string) (Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Result{}, err
	}
	var r Result
	if err := json.Unmarshal(data, &r); err != nil {
		return Result{}, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	if r.Schema != SchemaVersion {
		return Result{}, fmt.Errorf("bench: %s has schema %d, this binary speaks %d", path, r.Schema, SchemaVersion)
	}
	return r, nil
}

// Compare checks a fresh result against a committed baseline and returns the
// list of regressions (empty when the gate passes). tolerance is the allowed
// relative slack, e.g. 0.20 for 20%:
//
//   - allocations per attempt must not rise by more than tolerance
//     (deterministic, so this gate is reliable on any machine), and
//   - events per wall-second must not drop by more than tolerance, checked
//     only when both results carry a wall-clock section (host-dependent, so
//     the baseline should be refreshed from the machine that runs the gate).
//
// Informational differences (pair throughput, bytes/attempt) are not gated.
func Compare(baseline, fresh Result, tolerance float64) ([]string, error) {
	if baseline.Scenario != fresh.Scenario {
		return nil, fmt.Errorf("bench: comparing %q against %q", fresh.Scenario, baseline.Scenario)
	}
	if baseline.Config != fresh.Config {
		return nil, fmt.Errorf("bench: %s: config mismatch (baseline %+v, fresh %+v); refresh the baseline",
			fresh.Scenario, baseline.Config, fresh.Config)
	}
	var regressions []string
	if base := baseline.AllocsPerAttempt; base > 0 && fresh.AllocsPerAttempt > base*(1+tolerance) {
		regressions = append(regressions, fmt.Sprintf(
			"%s: allocs/attempt rose %.3f -> %.3f (more than %.0f%% over baseline)",
			fresh.Scenario, base, fresh.AllocsPerAttempt, tolerance*100))
	}
	if baseline.WallClock != nil && fresh.WallClock != nil {
		if base := baseline.WallClock.EventsPerWallSec; base > 0 && fresh.WallClock.EventsPerWallSec < base*(1-tolerance) {
			regressions = append(regressions, fmt.Sprintf(
				"%s: events/wall-sec dropped %.0f -> %.0f (more than %.0f%% below baseline)",
				fresh.Scenario, base, fresh.WallClock.EventsPerWallSec, tolerance*100))
		}
	}
	return regressions, nil
}
