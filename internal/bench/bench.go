// Package bench is the repo's structured benchmark subsystem: a registry of
// end-to-end simulation scenarios (single link, 8-node chain, 3×3 grid,
// 4-hop repeater path) that are run for a fixed amount of simulated time and
// measured along two independent axes:
//
//   - deterministic work counters — simulator events executed, entanglement
//     attempts sampled, pairs delivered — which are byte-identical for a
//     given seed at any trial parallelism, and
//   - host-dependent cost — heap allocations and bytes per entanglement
//     attempt (measured on a dedicated serial pass with the GC paused) and,
//     optionally, wall-clock throughput (events per wall-second, simulated
//     seconds per wall-second).
//
// Results serialise to a stable JSON schema (BENCH_<scenario>.json, see
// Result) so CI can diff a fresh run against the committed baseline and fail
// on regressions; cmd/bench is the CLI front end.
package bench

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"time"

	"repro/internal/egp"
	"repro/internal/experiments"
	"repro/internal/netsim"
	"repro/internal/network"
	"repro/internal/nv"
	"repro/internal/obs"
	"repro/internal/quantum"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Counters are the deterministic work counters of one running scenario
// instance, cumulative since construction.
type Counters struct {
	// Events is how many discrete-event callbacks the simulator has fired.
	Events uint64 `json:"events"`
	// Attempts is how many entanglement generation attempts were sampled at
	// the heralding midpoints.
	Attempts uint64 `json:"attempts"`
	// Pairs is how many entangled pairs the scenario's top layer delivered
	// (link-layer OKs for link scenarios, end-to-end pairs for e2e ones).
	Pairs uint64 `json:"pairs"`
	// Requests is how many CREATE requests the traffic source submitted.
	Requests uint64 `json:"requests"`
}

// add accumulates other into c.
func (c *Counters) add(other Counters) {
	c.Events += other.Events
	c.Attempts += other.Attempts
	c.Pairs += other.Pairs
	c.Requests += other.Requests
}

// sub returns c - other, field by field.
func (c Counters) sub(other Counters) Counters {
	return Counters{
		Events:   c.Events - other.Events,
		Attempts: c.Attempts - other.Attempts,
		Pairs:    c.Pairs - other.Pairs,
		Requests: c.Requests - other.Requests,
	}
}

// Instance is one live, seeded realisation of a scenario. Advance drives the
// simulation forward; Counters can be read at any point between advances.
type Instance interface {
	// Advance runs the simulation for d more simulated time.
	Advance(d sim.Duration)
	// Counters reports the cumulative work counters.
	Counters() Counters
}

// BuildConfig parameterises one scenario instantiation.
type BuildConfig struct {
	// Seed drives every random choice of the instance.
	Seed int64
	// Backend selects the pair-state representation the instance's quantum
	// stack runs on (dense or Bell-diagonal).
	Backend quantum.Backend
	// Shards selects the simulation engine: ≤1 serial, >1 a sharded engine
	// with that many worker shards. Deterministic counters are identical
	// either way.
	Shards int
	// Queue selects the event-queue discipline (heap or timing wheel).
	// Deterministic counters are identical under either.
	Queue sim.QueueKind
	// Trace, when non-nil, flight-records the instance's activity. It must
	// have at least max(1, Shards) shards. Tracing never perturbs the
	// simulation trajectory, so the deterministic counters are unchanged.
	Trace *obs.Tracer
	// Metrics, when non-nil, receives the instance's per-layer counters and
	// time-to-pair histograms.
	Metrics *obs.Registry
}

// Scenario is a registered benchmark workload.
type Scenario struct {
	// Name identifies the scenario; it is embedded in BENCH_<name>.json.
	Name string
	// Description is a one-line summary for the CLI listing.
	Description string
	// SimSeconds is the scenario's default trial duration; 0 means the
	// harness default of 1 simulated second. Large topologies set it lower
	// so a trial stays affordable.
	SimSeconds float64
	// Build constructs a fresh instance of the scenario.
	Build func(cfg BuildConfig) (Instance, error)
}

// netsimInstance adapts a netsim.Network (link-layer scenarios).
type netsimInstance struct {
	nw *netsim.Network
}

func (in *netsimInstance) Advance(d sim.Duration) { in.nw.Run(d) }

func (in *netsimInstance) Counters() Counters {
	c := Counters{
		Events:   in.nw.Sim.Executed(),
		Attempts: in.nw.Attempts(),
	}
	for _, l := range in.nw.Links {
		c.Requests += l.Submitted
		// OKs fire at both endpoints; count delivered pairs once.
		c.Pairs += l.OKs / 2
	}
	return c
}

// primerPairs keeps every link saturated for the whole measurement window:
// a standing request this large outlives any realistic benchmark duration
// (the Lab link delivers under ten pairs per simulated second), so the
// attempt hot path runs from the very first MHP cycle instead of waiting on
// Poisson arrival luck.
const primerPairs = 4096

// buildNetsim wires a link-layer scenario: the given topology on the Lab
// hardware, every link saturated by a standing measure-directly request with
// moderate-load Poisson request churn on top.
func buildNetsim(spec netsim.Spec) func(build BuildConfig) (Instance, error) {
	return func(build BuildConfig) (Instance, error) {
		cfg := netsim.DefaultConfig(spec, nv.ScenarioLab)
		cfg.Seed = build.Seed
		cfg.Backend = build.Backend
		cfg.Shards = build.Shards
		cfg.Queue = build.Queue
		cfg.Trace = build.Trace
		cfg.Metrics = build.Metrics
		nw, err := netsim.NewNetwork(cfg)
		if err != nil {
			return nil, err
		}
		nw.AttachTraffic(netsim.TrafficConfig{
			Load:        0.7,
			MaxPairs:    2,
			MinFidelity: 0.64,
		})
		for _, l := range nw.Links {
			_, code := nw.Submit(l, "A", egp.CreateRequest{
				NumPairs:    primerPairs,
				MinFidelity: 0.64,
				Priority:    egp.PriorityMD,
				PurposeID:   1,
				Consecutive: true,
			})
			if code != wire.ErrNone {
				return nil, fmt.Errorf("bench: priming link %s failed: %s", l.Name, code)
			}
		}
		return &netsimInstance{nw: nw}, nil
	}
}

// e2eInstance adapts a network.Service over a repeater chain.
type e2eInstance struct {
	nw  *netsim.Network
	svc *network.Service
}

func (in *e2eInstance) Advance(d sim.Duration) {
	in.nw.Run(d)
	in.svc.FinishAt(in.nw.Sim.Now())
}

func (in *e2eInstance) Counters() Counters {
	c := Counters{
		Events:   in.nw.Sim.Executed(),
		Attempts: in.nw.Attempts(),
	}
	_, agg := in.svc.Stats()
	c.Requests = agg.Requests
	c.Pairs = uint64(agg.Pairs)
	return c
}

// buildE2E wires the 4-hop end-to-end scenario: a 5-node repeater chain with
// entanglement swapping, driven by Poisson end-to-end requests.
func buildE2E(nodes int) func(build BuildConfig) (Instance, error) {
	return func(build BuildConfig) (Instance, error) {
		if build.Shards > 1 {
			return nil, fmt.Errorf("bench: the e2e scenario runs the network layer, which is serial-only (got -shards %d)", build.Shards)
		}
		cfg := netsim.DefaultConfig(netsim.Chain(nodes), nv.ScenarioLab)
		cfg.Seed = build.Seed
		cfg.Backend = build.Backend
		cfg.Queue = build.Queue
		cfg.HoldPairs = true
		cfg.Trace = build.Trace
		cfg.Metrics = build.Metrics
		nw, err := netsim.NewNetwork(cfg)
		if err != nil {
			return nil, err
		}
		svcCfg := network.DefaultConfig()
		svcCfg.Trace = build.Trace
		svcCfg.Metrics = build.Metrics
		svc, err := network.NewService(nw, svcCfg)
		if err != nil {
			return nil, err
		}
		tr := svc.AttachTraffic(network.TrafficConfig{
			Pairs:       [][2]int{{0, nodes - 1}},
			Load:        0.3,
			MaxPairs:    1,
			MinFidelity: 0.35,
		})
		// A standing end-to-end request keeps every hop generating and the
		// swap engine busy for the whole window (see primerPairs).
		if _, code := svc.Create(network.CreateRequest{
			SrcNode:     0,
			DstNode:     nodes - 1,
			NumPairs:    primerPairs,
			MinFidelity: 0.35,
		}); code != wire.ErrNone {
			return nil, fmt.Errorf("bench: priming e2e request failed: %s", code)
		}
		tr.Start()
		return &e2eInstance{nw: nw, svc: svc}, nil
	}
}

// Scenarios returns the scenario registry in canonical order.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name:        "single-link",
			Description: "one heralded link (2-node chain) under MD Poisson traffic, Lab hardware",
			Build:       buildNetsim(netsim.Chain(2)),
		},
		{
			Name:        "chain-8",
			Description: "8-node chain: 7 concurrent links on one simulator",
			Build:       buildNetsim(netsim.Chain(8)),
		},
		{
			Name:        "grid-3x3",
			Description: "3×3 grid: 12 concurrent links on one simulator",
			Build:       buildNetsim(netsim.Grid(3, 3)),
		},
		{
			Name:        "chain-16",
			Description: "16-node chain: 15 concurrent links on one simulator",
			Build:       buildNetsim(netsim.Chain(16)),
		},
		{
			Name:        "e2e-4hop",
			Description: "4-hop repeater chain with entanglement swapping and e2e delivery",
			Build:       buildE2E(5),
		},
		{
			Name:        "chain-256",
			Description: "256-node chain: 255 concurrent links, the shard-scaling stress chain",
			SimSeconds:  0.05,
			Build:       buildNetsim(netsim.Chain(256)),
		},
		{
			Name:        "dragonfly-d3",
			Description: "D3(4,5) dragonfly: 5 groups of 4 routers, 40 links (30 local + 10 global)",
			SimSeconds:  0.1,
			Build:       buildNetsim(netsim.Dragonfly(4, 5)),
		},
	}
}

// ScenarioByName looks a scenario up in the registry.
func ScenarioByName(name string) (Scenario, bool) {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// Options configures a harness run.
type Options struct {
	// SimSeconds is the simulated duration of every trial; 0 uses the
	// scenario's own default (1 when the scenario sets none).
	SimSeconds float64
	// Trials is how many independently seeded repetitions feed the
	// deterministic counters (default 3).
	Trials int
	// Seed is the base seed; trial i uses experiments.DeriveSeed(Seed, i).
	Seed int64
	// Parallelism is the worker count for the trial fan-out. It does not
	// affect any reported number: the counters are deterministic and the
	// allocation and wall-clock passes always run serially.
	Parallelism int
	// WallClock adds the host-dependent wall-clock section to the result.
	// It is off by default so that the emitted JSON is byte-identical
	// across runs and machines.
	WallClock bool
	// Backend selects the pair-state representation every scenario runs
	// on (dense by default; cmd/bench resolves $REPRO_BACKEND into it).
	Backend quantum.Backend
	// Shards selects the engine every trial runs on (≤1 serial). The
	// deterministic counters are independent of it; only wall-clock
	// throughput changes.
	Shards int
	// Queue selects the event-queue discipline every trial's engine runs
	// on (heap by default; cmd/bench resolves -queue / $REPRO_QUEUE into
	// it). The deterministic counters are independent of it.
	Queue sim.QueueKind
	// Instrument, when set, is called once per counter-pass trial and may
	// return a tracer and/or metrics registry to attach to that trial
	// (typically non-nil only for trial 0). It applies to pass 1 only; the
	// allocation and wall-clock passes always run uninstrumented so the
	// host-cost numbers keep measuring the production hot path. Because the
	// observability layer never perturbs the trajectory, the deterministic
	// counters are identical with and without it.
	Instrument func(trial int) (*obs.Tracer, *obs.Registry)
}

// withDefaults fills in unset options (SimSeconds is resolved per scenario
// in Run, since scenarios may carry their own default duration).
func (o Options) withDefaults() Options {
	if o.Trials <= 0 {
		o.Trials = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// allocWarmupFraction is the fraction of a trial's simulated time used to
// warm the allocation pass before the measured window opens: it populates
// the sampler's distribution cache, grows the event queue and steadies the
// protocol pipelines so allocs/attempt reflects the steady state, not setup.
const allocWarmupFraction = 0.25

// Run executes one scenario under the given options and returns its result.
func Run(sc Scenario, opts Options) (Result, error) {
	opts = opts.withDefaults()
	if opts.SimSeconds <= 0 {
		opts.SimSeconds = sc.SimSeconds
	}
	if opts.SimSeconds <= 0 {
		opts.SimSeconds = 1
	}
	res := Result{
		Schema:      SchemaVersion,
		Scenario:    sc.Name,
		Description: sc.Description,
		Config: RunConfig{
			Seed:       opts.Seed,
			Trials:     opts.Trials,
			SimSeconds: opts.SimSeconds,
		},
	}
	// The backend is recorded only when it is not the dense default, so
	// pre-existing dense baselines stay byte-compatible; likewise the shard
	// count is recorded only for sharded runs.
	if opts.Backend != quantum.BackendDense {
		res.Config.Backend = opts.Backend.String()
	}
	if opts.Shards > 1 {
		res.Config.Shards = opts.Shards
	}
	if opts.Queue != sim.QueueHeap {
		res.Config.Queue = opts.Queue.String()
	}

	// Pass 1 — deterministic counters: fan the trials out over the worker
	// pool; every trial is an independent simulation, so the summed counters
	// are identical at any parallelism level.
	counters := make([]Counters, opts.Trials)
	errs := make([]error, opts.Trials)
	experiments.RunIndexed(opts.Trials, opts.Parallelism, func(i int) {
		var tracer *obs.Tracer
		var registry *obs.Registry
		if opts.Instrument != nil {
			tracer, registry = opts.Instrument(i)
		}
		inst, err := sc.Build(BuildConfig{Seed: experiments.DeriveSeed(opts.Seed, uint64(i)), Backend: opts.Backend, Shards: opts.Shards, Queue: opts.Queue, Trace: tracer, Metrics: registry})
		if err != nil {
			errs[i] = err
			return
		}
		inst.Advance(sim.DurationSeconds(opts.SimSeconds))
		counters[i] = inst.Counters()
	})
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	for _, c := range counters {
		res.Totals.add(c)
	}
	simTotal := opts.SimSeconds * float64(opts.Trials)
	res.Rates = Rates{
		EventsPerSimSec:   round3(float64(res.Totals.Events) / simTotal),
		AttemptsPerSimSec: round3(float64(res.Totals.Attempts) / simTotal),
		PairsPerSimSec:    round3(float64(res.Totals.Pairs) / simTotal),
	}

	// Pass 2 — allocations: a dedicated serial trial with the GC paused, so
	// the malloc counter deltas are attributable to the hot path and
	// reproducible. The warmup window absorbs one-time setup cost.
	allocs, bytes, err := measureAllocs(sc, opts)
	if err != nil {
		return Result{}, err
	}
	res.AllocsPerAttempt = allocs
	res.BytesPerAttempt = bytes

	// Pass 3 — wall clock (optional): a dedicated serial trial so the
	// number means the same thing at any -parallel level.
	if opts.WallClock {
		wc, err := measureWallClock(sc, opts)
		if err != nil {
			return Result{}, err
		}
		res.WallClock = &wc
	}
	return res, nil
}

// measureAllocs runs one serial trial and reports heap allocations and bytes
// per entanglement attempt over the steady-state window.
func measureAllocs(sc Scenario, opts Options) (allocsPerAttempt, bytesPerAttempt float64, err error) {
	inst, err := sc.Build(BuildConfig{Seed: experiments.DeriveSeed(opts.Seed, 0), Backend: opts.Backend, Shards: opts.Shards, Queue: opts.Queue})
	if err != nil {
		return 0, 0, err
	}
	warmup := opts.SimSeconds * allocWarmupFraction
	inst.Advance(sim.DurationSeconds(warmup))
	before := inst.Counters()

	// Settle the heap, then pause the GC for the measured window: background
	// collection would otherwise interleave its own bookkeeping with the
	// workload and make the malloc deltas depend on heap history (and thus
	// on whatever ran before this pass).
	runtime.GC()
	restore := debug.SetGCPercent(-1)
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	inst.Advance(sim.DurationSeconds(opts.SimSeconds - warmup))
	runtime.ReadMemStats(&m1)
	debug.SetGCPercent(restore)

	after := inst.Counters()
	window := after.sub(before)
	if window.Attempts == 0 {
		return 0, 0, fmt.Errorf("bench: scenario %s made no entanglement attempts in the measured window", sc.Name)
	}
	allocsPerAttempt = round3(float64(m1.Mallocs-m0.Mallocs) / float64(window.Attempts))
	bytesPerAttempt = round3(float64(m1.TotalAlloc-m0.TotalAlloc) / float64(window.Attempts))
	return allocsPerAttempt, bytesPerAttempt, nil
}

// wallClockPasses is how many timed repetitions measureWallClock runs. The
// fastest pass is reported: scheduler jitter and noisy neighbours only ever
// add time, so the minimum is the most faithful (and most stable) sample —
// a single sub-second measurement would be far too noisy to gate at 20%.
const wallClockPasses = 3

// measureWallClock times serial end-to-end trials and reports the fastest.
func measureWallClock(sc Scenario, opts Options) (WallClock, error) {
	best := WallClock{}
	for pass := 0; pass < wallClockPasses; pass++ {
		inst, err := sc.Build(BuildConfig{Seed: experiments.DeriveSeed(opts.Seed, 0), Backend: opts.Backend, Shards: opts.Shards, Queue: opts.Queue})
		if err != nil {
			return WallClock{}, err
		}
		start := time.Now()
		inst.Advance(sim.DurationSeconds(opts.SimSeconds))
		elapsed := time.Since(start).Seconds()
		c := inst.Counters()
		if elapsed <= 0 {
			elapsed = 1e-9
		}
		if pass == 0 || elapsed < best.WallSeconds {
			best = WallClock{
				WallSeconds:      elapsed,
				EventsPerWallSec: round3(float64(c.Events) / elapsed),
				SimSecPerWallSec: round3(opts.SimSeconds / elapsed),
			}
		}
	}
	best.WallSeconds = round3(best.WallSeconds)
	return best, nil
}

// round3 rounds to three decimal places so serialised rates do not carry
// meaningless trailing precision.
func round3(v float64) float64 {
	return float64(int64(v*1000+0.5)) / 1000
}
