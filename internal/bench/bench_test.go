package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/quantum"
)

// quickOpts keeps harness tests fast: a short simulated window is enough to
// exercise every measurement pass.
func quickOpts(parallel int) Options {
	return Options{SimSeconds: 0.04, Trials: 2, Seed: 1, Parallelism: parallel}
}

func TestRegistryHasAllScenarios(t *testing.T) {
	want := []string{"single-link", "chain-8", "grid-3x3", "chain-16", "e2e-4hop", "chain-256", "dragonfly-d3"}
	got := Scenarios()
	if len(got) != len(want) {
		t.Fatalf("registry has %d scenarios, want %d", len(got), len(want))
	}
	for i, name := range want {
		if got[i].Name != name {
			t.Fatalf("scenario %d is %q, want %q", i, got[i].Name, name)
		}
		if _, ok := ScenarioByName(name); !ok {
			t.Fatalf("ScenarioByName(%q) not found", name)
		}
	}
	if _, ok := ScenarioByName("nope"); ok {
		t.Fatal("ScenarioByName returned a scenario for an unknown name")
	}
}

// The emitted JSON must be byte-identical at any -parallel level: every
// deterministic field depends only on the seed, and the host-dependent
// wall-clock section is opt-in.
func TestResultDeterministicAcrossParallelism(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			serial, err := Run(sc, quickOpts(1))
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := Run(sc, quickOpts(4))
			if err != nil {
				t.Fatal(err)
			}
			a, err := serial.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			b, err := parallel.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("JSON differs between parallel levels:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
			}
			if serial.Totals.Events == 0 || serial.Totals.Attempts == 0 {
				t.Fatalf("scenario did no work: %+v", serial.Totals)
			}
			if serial.AllocsPerAttempt <= 0 {
				t.Fatalf("allocs/attempt = %v, expected a positive measurement", serial.AllocsPerAttempt)
			}
		})
	}
}

func TestResultJSONValidAndStable(t *testing.T) {
	sc, _ := ScenarioByName("single-link")
	res, err := Run(sc, quickOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	data, err := res.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	for _, key := range []string{"schema", "scenario", "config", "totals", "rates", "allocs_per_attempt", "bytes_per_attempt"} {
		if _, ok := decoded[key]; !ok {
			t.Fatalf("emitted JSON lacks %q:\n%s", key, data)
		}
	}
	if _, ok := decoded["wall_clock"]; ok {
		t.Fatal("wall_clock present without opting in")
	}

	dir := t.TempDir()
	path, err := res.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_single-link.json" {
		t.Fatalf("wrote %s, want BENCH_single-link.json", path)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back != res {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", back, res)
	}
}

func TestWallClockOptIn(t *testing.T) {
	sc, _ := ScenarioByName("single-link")
	opts := quickOpts(1)
	opts.WallClock = true
	res, err := Run(sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.WallClock == nil || res.WallClock.EventsPerWallSec <= 0 {
		t.Fatalf("wall-clock section missing or empty: %+v", res.WallClock)
	}
}

func baselinePair() (Result, Result) {
	base := Result{
		Schema:           SchemaVersion,
		Scenario:         "single-link",
		Config:           RunConfig{Seed: 1, Trials: 3, SimSeconds: 1},
		AllocsPerAttempt: 20,
		WallClock:        &WallClock{EventsPerWallSec: 1e6},
	}
	fresh := base
	fresh.WallClock = &WallClock{EventsPerWallSec: 1e6}
	return base, fresh
}

func TestCompareGate(t *testing.T) {
	t.Run("pass within tolerance", func(t *testing.T) {
		base, fresh := baselinePair()
		fresh.AllocsPerAttempt = 23                         // +15%
		fresh.WallClock = &WallClock{EventsPerWallSec: 9e5} // -10%
		regs, err := Compare(base, fresh, 0.20)
		if err != nil || len(regs) != 0 {
			t.Fatalf("want clean pass, got regs=%v err=%v", regs, err)
		}
	})
	t.Run("alloc regression fails", func(t *testing.T) {
		base, fresh := baselinePair()
		fresh.AllocsPerAttempt = 25 // +25%
		regs, err := Compare(base, fresh, 0.20)
		if err != nil || len(regs) != 1 || !strings.Contains(regs[0], "allocs/attempt") {
			t.Fatalf("want one alloc regression, got regs=%v err=%v", regs, err)
		}
	})
	t.Run("throughput regression fails", func(t *testing.T) {
		base, fresh := baselinePair()
		fresh.WallClock = &WallClock{EventsPerWallSec: 7e5} // -30%
		regs, err := Compare(base, fresh, 0.20)
		if err != nil || len(regs) != 1 || !strings.Contains(regs[0], "events/wall-sec") {
			t.Fatalf("want one throughput regression, got regs=%v err=%v", regs, err)
		}
	})
	t.Run("missing wall clock skips throughput gate", func(t *testing.T) {
		base, fresh := baselinePair()
		fresh.WallClock = nil
		regs, err := Compare(base, fresh, 0.20)
		if err != nil || len(regs) != 0 {
			t.Fatalf("want skip, got regs=%v err=%v", regs, err)
		}
	})
	t.Run("config mismatch is an error", func(t *testing.T) {
		base, fresh := baselinePair()
		fresh.Config.SimSeconds = 2
		if _, err := Compare(base, fresh, 0.20); err == nil {
			t.Fatal("want config-mismatch error")
		}
	})
	t.Run("scenario mismatch is an error", func(t *testing.T) {
		base, fresh := baselinePair()
		fresh.Scenario = "chain-8"
		if _, err := Compare(base, fresh, 0.20); err == nil {
			t.Fatal("want scenario-mismatch error")
		}
	})
}

// The deterministic counters must be identical on both pair-state backends:
// the backend changes how a pair's state is represented, never which events
// fire, which attempts are sampled or which pairs are delivered. This is the
// whole-stack parity check behind "-backend=belldiag leaves the committed
// counters unchanged".
func TestBackendCountersParity(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			dense := quickOpts(2)
			dense.Backend = quantum.BackendDense
			bell := quickOpts(2)
			bell.Backend = quantum.BackendBellDiagonal
			dres, err := Run(sc, dense)
			if err != nil {
				t.Fatal(err)
			}
			bres, err := Run(sc, bell)
			if err != nil {
				t.Fatal(err)
			}
			if dres.Totals != bres.Totals {
				t.Fatalf("deterministic counters differ across backends:\ndense    %+v\nbelldiag %+v", dres.Totals, bres.Totals)
			}
			if dres.Rates != bres.Rates {
				t.Fatalf("rates differ across backends:\ndense    %+v\nbelldiag %+v", dres.Rates, bres.Rates)
			}
			if bres.Config.Backend != "belldiag" {
				t.Fatalf("belldiag result does not record its backend: %+v", bres.Config)
			}
			if dres.Config.Backend != "" {
				t.Fatalf("dense result must omit the backend field for baseline compatibility: %+v", dres.Config)
			}
		})
	}
}

func TestReadFileRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	res := Result{Schema: SchemaVersion, Scenario: "single-link"}
	path, err := res.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	data, err := res.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	bad := bytes.Replace(data, []byte(`"schema": 1`), []byte(`"schema": 99`), 1)
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("want schema-mismatch error")
	}
}
