package bench

import (
	"reflect"
	"testing"

	"repro/internal/scenario"
)

// TestFromSpecMatchesRegistryChain16 is the bench-side parity gate: the
// committed chain-16 spec, run through FromSpec, must produce byte-identical
// deterministic counters to the registered chain-16 scenario under the same
// build configuration.
func TestFromSpecMatchesRegistryChain16(t *testing.T) {
	sp, err := scenario.Load("../../scenarios/chain16-bench.json")
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := sp.Compile()
	if err != nil {
		t.Fatal(err)
	}
	specSc, err := FromSpec(compiled)
	if err != nil {
		t.Fatal(err)
	}
	regSc, ok := ScenarioByName("chain-16")
	if !ok {
		t.Fatal("registry has no chain-16 scenario")
	}
	if specSc.Name != regSc.Name {
		t.Fatalf("spec scenario is named %q, registry %q", specSc.Name, regSc.Name)
	}

	opts := Options{SimSeconds: 0.2, Trials: 2, Seed: 1, Parallelism: 2}
	specRes, err := Run(specSc, opts)
	if err != nil {
		t.Fatal(err)
	}
	regRes, err := Run(regSc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(specRes.Totals, regRes.Totals) {
		t.Errorf("totals differ: spec %+v != registry %+v", specRes.Totals, regRes.Totals)
	}
	if !reflect.DeepEqual(specRes.Rates, regRes.Rates) {
		t.Errorf("rates differ: spec %+v != registry %+v", specRes.Rates, regRes.Rates)
	}
}

// TestFromSpecRejectsServiceSpecs keeps bench link-layer only.
func TestFromSpecRejectsServiceSpecs(t *testing.T) {
	sp, err := scenario.Load("../../scenarios/e2e-chain5.json")
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := sp.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromSpec(compiled); err == nil {
		t.Fatal("service spec accepted by FromSpec")
	}
}
