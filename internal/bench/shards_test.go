package bench

import "testing"

// TestShardCountersMatchSerial: the bench counters a baseline commits are the
// same numbers a sharded run reports — only the recorded engine config may
// differ. This is the in-repo version of the CI gate that jq-diffs a
// -shards 4 run against the committed serial baselines.
func TestShardCountersMatchSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-engine bench sweep in short mode")
	}
	for _, name := range []string{"chain-16", "dragonfly-d3"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			sc, ok := ScenarioByName(name)
			if !ok {
				t.Fatalf("scenario %s not registered", name)
			}
			serial, err := Run(sc, quickOpts(2))
			if err != nil {
				t.Fatal(err)
			}
			opts := quickOpts(2)
			opts.Shards = 4
			sharded, err := Run(sc, opts)
			if err != nil {
				t.Fatal(err)
			}
			if sharded.Totals != serial.Totals {
				t.Errorf("totals differ:\nserial  %+v\nsharded %+v", serial.Totals, sharded.Totals)
			}
			if sharded.Rates != serial.Rates {
				t.Errorf("rates differ:\nserial  %+v\nsharded %+v", serial.Rates, sharded.Rates)
			}
			if serial.Config.Shards != 0 {
				t.Errorf("serial result must omit the shard count for baseline compatibility: %+v", serial.Config)
			}
			if sharded.Config.Shards != 4 {
				t.Errorf("sharded result does not record its shard count: %+v", sharded.Config)
			}
		})
	}
}

// TestE2EScenarioRejectsShards: the end-to-end service is serial-only; asking
// for shards must fail loudly instead of silently running serial.
func TestE2EScenarioRejectsShards(t *testing.T) {
	sc, ok := ScenarioByName("e2e-4hop")
	if !ok {
		t.Fatal("e2e-4hop not registered")
	}
	opts := quickOpts(1)
	opts.Shards = 2
	if _, err := Run(sc, opts); err == nil {
		t.Fatal("e2e scenario accepted a sharded engine")
	}
}
