package bench

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/scenario"
)

// NetworkInstance adapts a wired link-layer network into a benchmark
// Instance: events and attempts from the engine, submitted requests and
// delivered pairs (link OKs fire at both endpoints, so halved) from the
// links.
func NetworkInstance(nw *netsim.Network) Instance { return &netsimInstance{nw: nw} }

// FromSpec turns a compiled declarative scenario into a benchmark scenario,
// so any committed spec file can join the bench suite without a registry
// entry. The harness's per-trial BuildConfig (seed, backend, shards, queue,
// observability) overrides the spec's engine section — the bench CLI stays
// in charge of those axes — while topology, hardware, protocol and traffic
// come from the spec.
func FromSpec(c *scenario.Compiled) (Scenario, error) {
	if c.Service != nil {
		return Scenario{}, fmt.Errorf("bench: scenario %q has a service section; bench runs link-layer specs only", c.Spec.Name)
	}
	return Scenario{
		Name:        c.Spec.Name,
		Description: c.Spec.Description,
		SimSeconds:  c.Seconds,
		Build: func(build BuildConfig) (Instance, error) {
			cfg := c.Config
			cfg.Seed = build.Seed
			cfg.Backend = build.Backend
			cfg.Shards = build.Shards
			cfg.Queue = build.Queue
			cfg.Trace = build.Trace
			cfg.Metrics = build.Metrics
			nw, err := netsim.NewNetwork(cfg)
			if err != nil {
				return nil, err
			}
			if _, err := c.Attach(nw); err != nil {
				return nil, err
			}
			return NetworkInstance(nw), nil
		},
	}, nil
}
