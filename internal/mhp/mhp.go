// Package mhp implements the physical-layer Midpoint Heralding Protocol of
// Section 5.1: the node-side protocol that polls the link layer every MHP
// cycle, triggers entanglement generation attempts and forwards midpoint
// replies upwards, and the midpoint (heralding station) service that matches
// GEN frames from the two nodes, performs the optical Bell-state
// measurement, and announces the outcome.
//
// The package is deliberately stateless on the node side (beyond the pending
// attempt bookkeeping required to route replies), mirroring the paper's
// requirement that the physical layer holds no protocol state.
package mhp

import (
	"fmt"

	"repro/internal/classical"
	"repro/internal/nv"
	"repro/internal/obs"
	"repro/internal/photonics"
	"repro/internal/quantum"
	"repro/internal/sim"
	"repro/internal/wire"
)

// PollDecision is the link layer's answer to the per-cycle trigger poll
// (the "yes/no + parameters" of Figure 4).
type PollDecision struct {
	Attempt bool
	// QueueID identifies the distributed-queue item this attempt serves; it
	// is transmitted to the midpoint for consistency checking.
	QueueID wire.AbsoluteQueueID
	// Keep is true for create-and-keep (K) attempts, false for
	// measure-directly (M).
	Keep bool
	// Alpha is the bright-state population to use.
	Alpha float64
	// MeasureBasis is the basis for M attempts (0=Z,1=X,2=Y).
	MeasureBasis quantum.BasisLabel
	// StorageQubit is the memory qubit to move the pair to for K attempts
	// (CommQubitID to keep it in the communication qubit).
	StorageQubit nv.QubitID
}

// Result is what the node-side MHP passes back up to the link layer after a
// reply (or local failure), corresponding to the RESULT of Protocol 1.
type Result struct {
	Outcome   wire.MHPOutcome
	MHPSeq    uint16
	QueueID   wire.AbsoluteQueueID // this node's submitted queue ID
	PeerQueue wire.AbsoluteQueueID // the peer's submitted queue ID as echoed by H
	// Keep/MeasureBasis/StorageQubit/Alpha echo the attempt parameters so the
	// link layer can complete post-processing.
	Keep         bool
	MeasureBasis quantum.BasisLabel
	StorageQubit nv.QubitID
	Alpha        float64
	// Pair is this node's view of the freshly generated entangled pair when
	// Outcome.Success() is true (claimed from the shared pair registry).
	Pair *nv.EntangledPair
	// AttemptCycle is the MHP cycle in which the attempt was triggered.
	AttemptCycle uint64
}

// Generator is implemented by the link layer (EGP): it is polled once per
// MHP cycle and receives results asynchronously.
type Generator interface {
	// PollTrigger is called at the start of every MHP cycle.
	PollTrigger(cycle uint64) PollDecision
	// HandleResult delivers the outcome of a previously triggered attempt.
	HandleResult(r Result)
}

// PairRegistry shares freshly generated entangled pairs between the midpoint
// (which creates them) and the two nodes' link layers (which claim their
// side upon receiving the REPLY). It stands in for "the qubit is already
// physically at the node" — only classical information travels in REPLY.
type PairRegistry struct {
	pairs map[uint16]*nv.EntangledPair
	// newest is the most recently assigned sequence number; Sweep measures
	// staleness against it in circular uint16 distance.
	newest    uint16
	hasNewest bool
	evicted   uint64
}

// Registry eviction parameters: a sweep runs whenever the registry exceeds
// the high-water mark, and unconditionally from the node-side maintenance
// pass; entries lagging the newest sequence number by more than the lag are
// dropped. The lag comfortably exceeds the deepest reply pipeline (the EGP
// caps outstanding multiplexed attempts at 64).
const (
	registryHighWater = 2048
	registryMaxLag    = 1024
)

// NewPairRegistry creates an empty registry.
func NewPairRegistry() *PairRegistry {
	return &PairRegistry{pairs: make(map[uint16]*nv.EntangledPair)}
}

// Put stores the pair generated for the given midpoint sequence number. The
// registry keeps a bounded history: once it exceeds the high-water mark,
// entries far behind the newest sequence number are swept out, since both
// nodes have long since processed (or expired) them.
func (r *PairRegistry) Put(seq uint16, pair *nv.EntangledPair) {
	r.pairs[seq] = pair
	r.newest = seq
	r.hasNewest = true
	if len(r.pairs) > registryHighWater {
		r.Sweep(registryMaxLag)
	}
}

// Sweep evicts entries whose sequence number lags the newest assigned
// sequence by more than maxLag in circular uint16 distance, returning how
// many were dropped. Without it the registry would retain pairs forever when
// REPLY frames are lost (the nodes never claim them), so the node-side MHP
// calls Sweep from the same periodic maintenance pass that drops stale
// pending attempts.
func (r *PairRegistry) Sweep(maxLag uint16) int {
	if !r.hasNewest {
		return 0
	}
	evicted := 0
	for s := range r.pairs {
		if r.newest-s > maxLag { // circular distance behind newest
			delete(r.pairs, s)
			evicted++
		}
	}
	r.evicted += uint64(evicted)
	return evicted
}

// Evicted returns how many entries sweeps have dropped so far.
func (r *PairRegistry) Evicted() uint64 { return r.evicted }

// Get returns the pair for a midpoint sequence number, or nil.
func (r *PairRegistry) Get(seq uint16) *nv.EntangledPair { return r.pairs[seq] }

// Forget drops a pair from the registry once both sides have claimed it (or
// it expired).
func (r *PairRegistry) Forget(seq uint16) { delete(r.pairs, seq) }

// Len returns how many pairs are registered.
func (r *PairRegistry) Len() int { return len(r.pairs) }

// genPayload is the payload travelling from a node to the midpoint: the
// encoded GEN frame plus the physical "photon" (its emission parameters).
// The photon cannot be lost independently of the frame here because photon
// loss is already part of the optical model sampled at the midpoint; what
// matters for protocol robustness is losing the classical frame.
type genPayload struct {
	frame []byte
	alpha float64
	node  string
	cycle uint64
}

// replyPayload carries the encoded REPLY frame from the midpoint to a node.
type replyPayload struct {
	frame []byte
}

// Node is the node-side MHP instance.
type Node struct {
	Name string

	simul    sim.Engine
	gen      Generator
	device   *nv.Device
	registry *PairRegistry
	side     nv.PairSide

	toMidpoint *classical.Channel

	cycle        uint64
	cycleTimeK   sim.Duration
	cycleTimeM   sim.Duration
	pending      map[uint64]PollDecision // attempts awaiting a REPLY, by cycle
	attemptCount uint64
	localFails   uint64

	// Flight-recorder hooks; all nil-safe, nil when observability is off.
	trace   *obs.Ring
	traceID uint64
	metrics *obs.MHPMetrics

	// paused stops attempt generation (the link-admin Down state): the cycle
	// clock keeps ticking and maintenance sweeps keep running, but the
	// generator is no longer polled. rateDivisor, when >1, throttles a
	// Degraded link to polling only every Nth cycle. Both cost one branch per
	// cycle when inactive, keeping fault plumbing zero-cost when off.
	paused      bool
	rateDivisor uint64

	// CommBusy tracks whether the communication qubit is mid-attempt for a
	// K request (the EGP uses this to avoid double-triggering).
	awaitingReply bool
}

// NodeConfig collects the parameters needed to construct a node-side MHP.
type NodeConfig struct {
	Name       string
	Sim        sim.Engine
	Generator  Generator
	Device     *nv.Device
	Registry   *PairRegistry
	Side       nv.PairSide
	ToMidpoint *classical.Channel
	CycleTimeK sim.Duration
	CycleTimeM sim.Duration

	// Trace, when non-nil, records attempt/REPLY lifecycle events under
	// track TraceID (the link ID); Metrics publishes attempt counters. Both
	// are nil-safe and nil by default.
	Trace   *obs.Ring
	TraceID uint64
	Metrics *obs.MHPMetrics
}

// NewNode builds a node-side MHP instance.
func NewNode(cfg NodeConfig) *Node {
	if cfg.Sim == nil || cfg.Generator == nil || cfg.Device == nil || cfg.Registry == nil || cfg.ToMidpoint == nil {
		panic("mhp: incomplete node configuration")
	}
	return &Node{
		Name:       cfg.Name,
		simul:      cfg.Sim,
		gen:        cfg.Generator,
		device:     cfg.Device,
		registry:   cfg.Registry,
		side:       cfg.Side,
		toMidpoint: cfg.ToMidpoint,
		cycleTimeK: cfg.CycleTimeK,
		cycleTimeM: cfg.CycleTimeM,
		pending:    make(map[uint64]PollDecision),
		trace:      cfg.Trace,
		traceID:    cfg.TraceID,
		metrics:    cfg.Metrics,
	}
}

// Cycle returns the current MHP cycle number.
func (n *Node) Cycle() uint64 { return n.cycle }

// SetPaused pauses (or resumes) attempt generation. While paused the cycle
// clock and registry maintenance keep running so a repaired link resumes on
// the same deterministic cycle grid.
func (n *Node) SetPaused(p bool) { n.paused = p }

// Paused reports whether attempt generation is paused.
func (n *Node) Paused() bool { return n.paused }

// SetRateDivisor throttles attempt generation to one poll every d cycles
// (the Degraded reduced-rate mode); d <= 1 restores the full rate.
func (n *Node) SetRateDivisor(d uint64) { n.rateDivisor = d }

// ClearPending discards every attempt still awaiting a REPLY — the dying
// link's in-flight attempts, whose replies (if any) will find no matching
// queue item anyway.
func (n *Node) ClearPending() {
	for c := range n.pending {
		delete(n.pending, c)
	}
}

// Attempts returns how many attempts this node has triggered.
func (n *Node) Attempts() uint64 { return n.attemptCount }

// Start begins the periodic MHP cycle using the M-type cycle period as the
// base clock (the finest granularity at which the EGP can be polled); the
// EGP's scheduler is responsible for not triggering K attempts faster than
// the hardware allows.
func (n *Node) Start() (stop func()) {
	period := n.cycleTimeM
	if period <= 0 {
		period = n.cycleTimeK
	}
	if period <= 0 {
		panic("mhp: node has no positive cycle time")
	}
	return sim.Ticker(n.simul, period, n.runCycle)
}

// runCycle executes one MHP cycle: poll the EGP and trigger if requested.
func (n *Node) runCycle() {
	n.cycle++
	// Periodically discard pending-attempt state whose REPLY was evidently
	// lost, so the map stays bounded during long lossy runs; sweep the shared
	// pair registry in the same pass, since lost REPLYs also strand pairs
	// that neither node will ever claim.
	if n.cycle%1024 == 0 {
		if len(n.pending) > 0 && n.cycle > 4096 {
			n.DropPending(n.cycle - 4096)
		}
		n.registry.Sweep(registryMaxLag)
	}
	if n.paused {
		return
	}
	if n.rateDivisor > 1 && n.cycle%n.rateDivisor != 0 {
		return
	}
	decision := n.gen.PollTrigger(n.cycle)
	if !decision.Attempt {
		return
	}
	// Local hardware failure path (GEN_FAIL): initialising the communication
	// qubit can fail; modelled as an immediate local error result. The
	// electron initialisation infidelity is already part of the optical
	// model, so here GEN_FAIL only fires when the communication qubit is
	// unavailable (should not happen if the EGP tracks state correctly).
	if decision.Keep && !n.device.CommFree() {
		n.localFails++
		n.gen.HandleResult(Result{
			Outcome:      wire.ErrGeneralFailure,
			QueueID:      decision.QueueID,
			Keep:         decision.Keep,
			Alpha:        decision.Alpha,
			AttemptCycle: n.cycle,
		})
		return
	}
	n.attemptCount++
	keep := int64(0)
	if decision.Keep {
		keep = 1
	}
	n.trace.Record(n.simul.Now(), obs.KindMHPAttempt, n.traceID, int64(n.cycle), keep)
	if n.metrics != nil {
		n.metrics.Attempts.Inc()
	}
	// Triggering an attempt dephases carbon-stored pairs at this node
	// (Appendix D.4.1).
	n.device.ApplyAttemptDephasing(decision.Alpha)

	frame := wire.GENFrame{QueueID: decision.QueueID, Timestamp: n.cycle}
	n.pending[n.cycle] = decision
	n.toMidpoint.Send(genPayload{
		frame: frame.Encode(),
		alpha: decision.Alpha,
		node:  n.Name,
		cycle: n.cycle,
	})
}

// HandleReply processes a REPLY frame delivered from the midpoint.
func (n *Node) HandleReply(msg classical.Message) {
	payload, ok := msg.Payload.(replyPayload)
	if !ok {
		return
	}
	reply, err := wire.DecodeREPLY(payload.frame)
	if err != nil {
		return
	}
	n.trace.Record(n.simul.Now(), obs.KindMHPReply, n.traceID, int64(reply.Outcome), int64(reply.MHPSeq))
	// Match the reply to the pending attempt by the echoed queue ID; the
	// cycle association is recovered from the pending map (oldest first).
	var cycle uint64
	var decision PollDecision
	found := false
	for c, d := range n.pending {
		if d.QueueID == reply.QueueID && (!found || c < cycle) {
			cycle, decision, found = c, d, true
		}
	}
	if found {
		delete(n.pending, cycle)
	}
	result := Result{
		Outcome:      reply.Outcome,
		MHPSeq:       reply.MHPSeq,
		QueueID:      reply.QueueID,
		PeerQueue:    reply.PeerQueue,
		Keep:         decision.Keep,
		MeasureBasis: decision.MeasureBasis,
		StorageQubit: decision.StorageQubit,
		Alpha:        decision.Alpha,
		AttemptCycle: cycle,
	}
	if reply.Outcome.Success() {
		result.Pair = n.registry.Get(reply.MHPSeq)
	}
	n.gen.HandleResult(result)
}

// PendingAttempts returns how many attempts are awaiting a REPLY (used by
// tests and by the EGP's emission-multiplexing logic).
func (n *Node) PendingAttempts() int { return len(n.pending) }

// DropPending discards pending attempt state older than the given cycle;
// used by the EGP when it declares attempts lost.
func (n *Node) DropPending(olderThan uint64) {
	for c := range n.pending {
		if c < olderThan {
			delete(n.pending, c)
		}
	}
}

// Midpoint is the heralding-station service: it pairs up GEN frames arriving
// from A and B in the same detection time window, consults the optical model
// for the measurement outcome, and sends REPLY frames to both nodes.
type Midpoint struct {
	simul    sim.Engine
	sampler  *photonics.LinkSampler
	registry *PairRegistry

	toA *classical.Channel
	toB *classical.Channel

	// windowCycles is how many MHP cycles apart two GEN messages may be and
	// still be considered the same attempt (the detection time window).
	windowCycles uint64
	// holdTime is how long an unmatched GEN is held waiting for the peer's
	// GEN of the same cycle before the attempt is reported back as
	// NO_MESSAGE_OTHER. It must exceed the propagation asymmetry of the two
	// arms plus scheduling jitter.
	holdTime sim.Duration

	// depolarize, when in (0,1), applies a single-qubit depolarising channel
	// of that fidelity to every freshly heralded pair — the Degraded link
	// state's lowered-fidelity mode. 0 (the default) is off at the cost of
	// one comparison per heralded success.
	depolarize float64

	seq uint16
	// waiting holds unmatched GEN frames per node, keyed by the attempt
	// cycle carried in the frame's timestamp: the station links messages to
	// detection windows by timestamp, not by arrival order, so emission
	// multiplexing over asymmetric fibre arms pairs the right attempts.
	waiting map[string]map[uint64]genPayload

	// Statistics.
	matched       uint64
	successes     uint64
	timeMismatch  uint64
	queueMismatch uint64
	noOther       uint64

	// Flight-recorder hooks; all nil-safe, nil when observability is off.
	trace   *obs.Ring
	traceID uint64
	metrics *obs.MHPMetrics
}

// MidpointConfig collects the construction parameters of a Midpoint.
type MidpointConfig struct {
	Sim          sim.Engine
	Sampler      *photonics.LinkSampler
	Registry     *PairRegistry
	ToA          *classical.Channel
	ToB          *classical.Channel
	WindowCycles uint64
	// HoldTime bounds how long an unmatched GEN waits for its counterpart;
	// it defaults to 500 µs which covers the QL2020 arm asymmetry with ample
	// margin.
	HoldTime sim.Duration

	// Trace, when non-nil, records heralding decisions under track TraceID
	// (the link ID); Metrics publishes match/success counters.
	Trace   *obs.Ring
	TraceID uint64
	Metrics *obs.MHPMetrics
}

// NewMidpoint builds the heralding-station service.
func NewMidpoint(cfg MidpointConfig) *Midpoint {
	if cfg.Sim == nil || cfg.Sampler == nil || cfg.Registry == nil || cfg.ToA == nil || cfg.ToB == nil {
		panic("mhp: incomplete midpoint configuration")
	}
	w := cfg.WindowCycles
	if w == 0 {
		w = 1
	}
	hold := cfg.HoldTime
	if hold <= 0 {
		hold = 500 * sim.Microsecond
	}
	return &Midpoint{
		simul:        cfg.Sim,
		sampler:      cfg.Sampler,
		registry:     cfg.Registry,
		toA:          cfg.ToA,
		toB:          cfg.ToB,
		windowCycles: w,
		holdTime:     hold,
		waiting:      map[string]map[uint64]genPayload{"A": {}, "B": {}},
		trace:        cfg.Trace,
		traceID:      cfg.TraceID,
		metrics:      cfg.Metrics,
	}
}

// Stats reports the midpoint's counters: matched attempt pairs, heralded
// successes, and the three error classes.
func (m *Midpoint) Stats() (matched, successes, timeMismatch, queueMismatch, noOther uint64) {
	return m.matched, m.successes, m.timeMismatch, m.queueMismatch, m.noOther
}

// Sequence returns the next MHP sequence number to be assigned.
func (m *Midpoint) Sequence() uint16 { return m.seq }

// SetDepolarizing applies a single-qubit depolarising channel of the given
// fidelity to every future heralded pair (the Degraded lowered-fidelity
// mode); f <= 0 or f >= 1 turns the channel off.
func (m *Midpoint) SetDepolarizing(f float64) {
	if f <= 0 || f >= 1 {
		m.depolarize = 0
		return
	}
	m.depolarize = f
}

// HandleGEN processes a GEN frame (and accompanying photon) from either node.
func (m *Midpoint) HandleGEN(msg classical.Message) {
	payload, ok := msg.Payload.(genPayload)
	if !ok {
		return
	}
	// Decode once on arrival; the decoded frame serves validation, the
	// timeout path and the matching path below.
	genSelf, err := wire.DecodeGEN(payload.frame)
	if err != nil {
		return
	}
	other := "A"
	if payload.node == "A" {
		other = "B"
	}
	// Link the message to a detection window by its timestamp: look for a
	// waiting peer GEN whose cycle lies within the detection window.
	peer, haveMatch := m.findPeerGEN(other, payload.cycle)
	if !haveMatch {
		// Hold this GEN waiting for the peer's; if it never arrives the
		// attempt is reported back as NO_MESSAGE_OTHER (or TIME_MISMATCH
		// when the peer was attempting different cycles).
		m.waiting[payload.node][payload.cycle] = payload
		sim.Schedule(m.simul, m.holdTime, func() {
			if held, still := m.waiting[payload.node][payload.cycle]; still && held.cycle == payload.cycle {
				delete(m.waiting[payload.node], payload.cycle)
				if len(m.waiting[other]) > 0 {
					m.timeMismatch++
					m.trace.Record(m.simul.Now(), obs.KindHeraldDrop, m.traceID, 0, int64(payload.cycle))
					m.sendError(payload.node, genSelf.QueueID, wire.ErrTimeMismatch)
				} else {
					m.noOther++
					m.trace.Record(m.simul.Now(), obs.KindHeraldDrop, m.traceID, 1, int64(payload.cycle))
					m.sendError(payload.node, genSelf.QueueID, wire.ErrNoMessageOther)
				}
			}
		})
		return
	}
	delete(m.waiting[other], peer.cycle)

	// The peer frame was validated when it arrived, so its decode cannot fail.
	genPeer, _ := wire.DecodeGEN(peer.frame)

	// Queue-ID consistency check.
	if genSelf.QueueID != genPeer.QueueID {
		m.queueMismatch++
		m.trace.Record(m.simul.Now(), obs.KindHeraldDrop, m.traceID, 2, int64(payload.cycle))
		m.sendErrorBoth(payload, peer, wire.ErrQueueMismatch, genSelf.QueueID, genPeer.QueueID)
		return
	}
	m.matched++
	if m.metrics != nil {
		m.metrics.Matched.Inc()
	}

	// Perform the optical Bell-state measurement. By convention A is the
	// first argument.
	alphaA, alphaB := payload.alpha, peer.alpha
	if payload.node == "B" {
		alphaA, alphaB = peer.alpha, payload.alpha
	}
	res := m.sampler.Sample(alphaA, alphaB, m.simul.RNG())

	outcome := wire.OutcomeFailure
	switch res.Outcome {
	case photonics.OutcomePsiPlus:
		outcome = wire.OutcomeStateOne
	case photonics.OutcomePsiMinus:
		outcome = wire.OutcomeStateTwo
	}
	var seq uint16
	if outcome.Success() {
		m.seq++
		seq = m.seq
		m.successes++
		heralded := quantum.PsiPlus
		if outcome == wire.OutcomeStateTwo {
			heralded = quantum.PsiMinus
		}
		pair := nv.NewEntangledPair(res.State, heralded, m.simul.Now())
		if m.depolarize > 0 {
			pair.State.ApplyDepolarizing(0, m.depolarize)
		}
		m.registry.Put(seq, pair)
		if m.metrics != nil {
			m.metrics.Successes.Inc()
		}
	}
	m.trace.Record(m.simul.Now(), obs.KindHerald, m.traceID, int64(outcome), int64(seq))

	// Send REPLY to both nodes, echoing each node's own queue ID first.
	m.sendReply("A", outcome, seq, genQueueForNode("A", payload, peer, genSelf, genPeer), genQueueForNode("B", payload, peer, genSelf, genPeer))
	m.sendReply("B", outcome, seq, genQueueForNode("B", payload, peer, genSelf, genPeer), genQueueForNode("A", payload, peer, genSelf, genPeer))
}

// findPeerGEN returns a waiting GEN from the named node whose cycle is
// within the detection window of the given cycle.
func (m *Midpoint) findPeerGEN(node string, cycle uint64) (genPayload, bool) {
	if p, ok := m.waiting[node][cycle]; ok {
		return p, true
	}
	for d := uint64(1); d < m.windowCycles; d++ {
		if p, ok := m.waiting[node][cycle-d]; ok {
			return p, true
		}
		if p, ok := m.waiting[node][cycle+d]; ok {
			return p, true
		}
	}
	return genPayload{}, false
}

// genQueueForNode returns the queue ID submitted by the named node, given
// the two payloads and their decoded frames.
func genQueueForNode(node string, p1, p2 genPayload, f1, f2 wire.GENFrame) wire.AbsoluteQueueID {
	if p1.node == node {
		return f1.QueueID
	}
	if p2.node == node {
		return f2.QueueID
	}
	return wire.AbsoluteQueueID{}
}

// sendReply transmits a REPLY frame to the named node.
func (m *Midpoint) sendReply(node string, outcome wire.MHPOutcome, seq uint16, own, peer wire.AbsoluteQueueID) {
	frame := wire.REPLYFrame{Outcome: outcome, MHPSeq: seq, QueueID: own, PeerQueue: peer}
	ch := m.toA
	if node == "B" {
		ch = m.toB
	}
	ch.Send(replyPayload{frame: frame.Encode()})
}

// sendError sends an error REPLY to the single node that sent a GEN.
func (m *Midpoint) sendError(node string, queueID wire.AbsoluteQueueID, code wire.MHPOutcome) {
	m.sendReply(node, code, 0, queueID, wire.AbsoluteQueueID{})
}

// sendErrorBoth sends an error REPLY to both nodes.
func (m *Midpoint) sendErrorBoth(p1, p2 genPayload, code wire.MHPOutcome, q1, q2 wire.AbsoluteQueueID) {
	m.sendReplyFor(p1.node, code, q1, q2)
	m.sendReplyFor(p2.node, code, q2, q1)
}

func (m *Midpoint) sendReplyFor(node string, code wire.MHPOutcome, own, peer wire.AbsoluteQueueID) {
	m.sendReply(node, code, 0, own, peer)
}

// String summarises midpoint statistics for diagnostics.
func (m *Midpoint) String() string {
	return fmt.Sprintf("midpoint{matched=%d success=%d timeMismatch=%d queueMismatch=%d noOther=%d}",
		m.matched, m.successes, m.timeMismatch, m.queueMismatch, m.noOther)
}

// NewGENPayload builds the channel payload for a GEN frame; exported for the
// core network wiring and tests.
func NewGENPayload(frame []byte, alpha float64, node string, cycle uint64) any {
	return genPayload{frame: frame, alpha: alpha, node: node, cycle: cycle}
}

// NewREPLYPayload builds the channel payload for a REPLY frame; exported for
// tests.
func NewREPLYPayload(frame []byte) any { return replyPayload{frame: frame} }
