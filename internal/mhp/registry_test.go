package mhp

import (
	"testing"

	"repro/internal/nv"
	"repro/internal/quantum"
	"repro/internal/sim"
)

func testPair() *nv.EntangledPair {
	return nv.NewEntangledPair(quantum.NewBellState(quantum.PsiPlus), quantum.PsiPlus, 0)
}

// TestPairRegistrySweep pins down the eviction rule: entries lagging the
// newest sequence number by more than maxLag (in circular uint16 distance)
// are dropped, everything newer survives — including across the wraparound.
func TestPairRegistrySweep(t *testing.T) {
	r := NewPairRegistry()
	pair := testPair()
	// Straddle the uint16 wraparound: 65530..65535 then 0..5.
	for seq := uint16(65530); seq != 6; seq++ {
		r.Put(seq, pair)
	}
	if r.Len() != 12 {
		t.Fatalf("expected 12 entries, got %d", r.Len())
	}
	// Generous lag: nothing is old enough to evict.
	if n := r.Sweep(100); n != 0 {
		t.Fatalf("sweep with generous lag evicted %d entries", n)
	}
	// Lag 5 keeps newest=5 and the 5 sequences behind it (4,3,2,1,0),
	// evicting the six pre-wrap entries.
	if n := r.Sweep(5); n != 6 {
		t.Fatalf("sweep(5) evicted %d entries, want 6", n)
	}
	if r.Len() != 6 {
		t.Fatalf("expected 6 survivors, got %d", r.Len())
	}
	for seq := uint16(0); seq != 6; seq++ {
		if r.Get(seq) == nil {
			t.Fatalf("recent entry %d was evicted", seq)
		}
	}
	if r.Get(65535) != nil {
		t.Fatal("stale pre-wrap entry survived the sweep")
	}
	if r.Evicted() != 6 {
		t.Fatalf("Evicted() = %d, want 6", r.Evicted())
	}
}

// TestPairRegistrySweepEmpty checks sweeping before any Put is a no-op.
func TestPairRegistrySweepEmpty(t *testing.T) {
	r := NewPairRegistry()
	if n := r.Sweep(0); n != 0 {
		t.Fatalf("sweep of empty registry evicted %d", n)
	}
}

// TestPairRegistryBoundedUnderLostReplies simulates the leak scenario of the
// fix: the midpoint keeps registering pairs but the nodes never claim
// (Forget) them because every REPLY is lost. The registry must stay bounded
// purely through Put-triggered sweeps.
func TestPairRegistryBoundedUnderLostReplies(t *testing.T) {
	r := NewPairRegistry()
	pair := testPair()
	seq := uint16(0)
	for i := 0; i < 200000; i++ {
		seq++
		r.Put(seq, pair)
		if r.Len() > registryHighWater+1 {
			t.Fatalf("registry grew to %d entries after %d lost replies", r.Len(), i+1)
		}
	}
	if r.Evicted() == 0 {
		t.Fatal("no entries were ever evicted")
	}
}

// TestNodeMaintenanceSweepsRegistry checks the node-side periodic
// maintenance pass sweeps the shared registry even when no new pairs are
// being produced (no Put-triggered sweeps can fire).
func TestNodeMaintenanceSweepsRegistry(t *testing.T) {
	h := newHarness(t, 0)
	pair := testPair()
	for seq := uint16(1); seq <= 10; seq++ {
		h.registry.Put(seq, pair)
	}
	// Jump the newest sequence far ahead so the seeded entries are stale.
	h.registry.Put(2000, pair)
	if h.registry.Len() != 11 {
		t.Fatalf("expected 11 entries before the sweep, got %d", h.registry.Len())
	}
	// Run past cycle 1024 (the maintenance period) with no attempts.
	stopA := h.nodeA.Start()
	_ = h.s.RunFor(11 * sim.Millisecond)
	stopA()
	if h.registry.Len() != 1 {
		t.Fatalf("maintenance sweep left %d entries, want 1", h.registry.Len())
	}
	if h.registry.Get(2000) == nil {
		t.Fatal("the newest entry must survive the maintenance sweep")
	}
}
