package mhp

import (
	"testing"

	"repro/internal/classical"
	"repro/internal/nv"
	"repro/internal/photonics"
	"repro/internal/quantum"
	"repro/internal/sim"
	"repro/internal/wire"
)

// stubGenerator is a scripted link layer: it answers polls from a queue of
// decisions and records every result it receives.
type stubGenerator struct {
	decisions []PollDecision
	results   []Result
}

func (s *stubGenerator) PollTrigger(cycle uint64) PollDecision {
	if len(s.decisions) == 0 {
		return PollDecision{}
	}
	d := s.decisions[0]
	s.decisions = s.decisions[1:]
	return d
}

func (s *stubGenerator) HandleResult(r Result) { s.results = append(s.results, r) }

// harness wires two MHP nodes and a midpoint over zero-loss channels.
type harness struct {
	s        *sim.Simulator
	genA     *stubGenerator
	genB     *stubGenerator
	nodeA    *Node
	nodeB    *Node
	mid      *Midpoint
	registry *PairRegistry
}

func newHarness(t *testing.T, loss float64) *harness {
	t.Helper()
	h := &harness{s: sim.New(9), genA: &stubGenerator{}, genB: &stubGenerator{}}
	platform := nv.LabPlatform()
	h.registry = NewPairRegistry()
	sampler := photonics.NewLinkSampler(platform.Optics)
	devA := nv.NewDevice("A", platform.Gates, platform.CarbonCoupling, 1)
	devB := nv.NewDevice("B", platform.Gates, platform.CarbonCoupling, 1)

	chanAtoH := classical.NewChannel("a->h", h.s, 10*sim.Nanosecond, loss, func(m classical.Message) { h.mid.HandleGEN(m) })
	chanBtoH := classical.NewChannel("b->h", h.s, 10*sim.Nanosecond, loss, func(m classical.Message) { h.mid.HandleGEN(m) })
	chanHtoA := classical.NewChannel("h->a", h.s, 10*sim.Nanosecond, loss, func(m classical.Message) { h.nodeA.HandleReply(m) })
	chanHtoB := classical.NewChannel("h->b", h.s, 10*sim.Nanosecond, loss, func(m classical.Message) { h.nodeB.HandleReply(m) })

	h.nodeA = NewNode(NodeConfig{
		Name: "A", Sim: h.s, Generator: h.genA, Device: devA, Registry: h.registry, Side: nv.SideA,
		ToMidpoint: chanAtoH, CycleTimeM: sim.DurationMicroseconds(10.12), CycleTimeK: sim.DurationMicroseconds(11),
	})
	h.nodeB = NewNode(NodeConfig{
		Name: "B", Sim: h.s, Generator: h.genB, Device: devB, Registry: h.registry, Side: nv.SideB,
		ToMidpoint: chanBtoH, CycleTimeM: sim.DurationMicroseconds(10.12), CycleTimeK: sim.DurationMicroseconds(11),
	})
	h.mid = NewMidpoint(MidpointConfig{
		Sim: h.s, Sampler: sampler, Registry: h.registry,
		ToA: chanHtoA, ToB: chanHtoB, WindowCycles: 1, HoldTime: 100 * sim.Microsecond,
	})
	return h
}

func attemptDecision(qid wire.AbsoluteQueueID, alpha float64) PollDecision {
	return PollDecision{Attempt: true, QueueID: qid, Keep: false, Alpha: alpha, MeasureBasis: quantum.BasisZ}
}

func TestMatchedAttemptProducesReplies(t *testing.T) {
	h := newHarness(t, 0)
	qid := wire.AbsoluteQueueID{QueueID: 2, QueueSeq: 1}
	// Use alpha = 0.5 repeatedly so a success shows up quickly; run many
	// cycles and check that both nodes receive one result per attempt.
	const cycles = 400
	for i := 0; i < cycles; i++ {
		h.genA.decisions = append(h.genA.decisions, attemptDecision(qid, 0.5))
		h.genB.decisions = append(h.genB.decisions, attemptDecision(qid, 0.5))
	}
	stopA := h.nodeA.Start()
	stopB := h.nodeB.Start()
	_ = h.s.RunFor(sim.Duration(cycles+10) * sim.DurationMicroseconds(10.12))
	stopA()
	stopB()

	if len(h.genA.results) == 0 || len(h.genB.results) == 0 {
		t.Fatal("both nodes should receive results")
	}
	if len(h.genA.results) != len(h.genB.results) {
		t.Fatalf("result counts differ: %d vs %d", len(h.genA.results), len(h.genB.results))
	}
	matched, _, timeMis, queueMis, _ := h.mid.Stats()
	if matched == 0 {
		t.Fatal("midpoint should match attempts")
	}
	if timeMis != 0 || queueMis != 0 {
		t.Fatalf("synchronised attempts should not mismatch: time=%d queue=%d", timeMis, queueMis)
	}
	// Every result must echo the submitted queue ID.
	for _, r := range h.genA.results {
		if r.QueueID != qid {
			t.Fatalf("result echoes wrong queue ID: %v", r.QueueID)
		}
		if r.Outcome.IsError() {
			t.Fatalf("unexpected protocol error: %v", r.Outcome)
		}
	}
}

func TestSuccessRegistersPairForBothNodes(t *testing.T) {
	h := newHarness(t, 0)
	qid := wire.AbsoluteQueueID{QueueID: 2, QueueSeq: 3}
	const cycles = 3000
	for i := 0; i < cycles; i++ {
		h.genA.decisions = append(h.genA.decisions, attemptDecision(qid, 0.5))
		h.genB.decisions = append(h.genB.decisions, attemptDecision(qid, 0.5))
	}
	stopA := h.nodeA.Start()
	stopB := h.nodeB.Start()
	_ = h.s.RunFor(sim.Duration(cycles+10) * sim.DurationMicroseconds(10.12))
	stopA()
	stopB()

	var successA, successB int
	for _, r := range h.genA.results {
		if r.Outcome.Success() {
			successA++
			if r.Pair == nil {
				t.Fatal("successful result should carry the shared pair")
			}
			if r.MHPSeq == 0 {
				t.Fatal("successful result should carry a sequence number")
			}
		}
	}
	for _, r := range h.genB.results {
		if r.Outcome.Success() {
			successB++
			if r.Pair == nil {
				t.Fatal("peer's successful result should carry the shared pair")
			}
		}
	}
	_, successes, _, _, _ := h.mid.Stats()
	if successes == 0 {
		t.Skip("no heralded success in this bounded run (psucc ≈ 3e-4); statistical")
	}
	if uint64(successA) != successes || uint64(successB) != successes {
		t.Fatalf("success counts disagree: midpoint=%d A=%d B=%d", successes, successA, successB)
	}
}

func TestQueueMismatchReported(t *testing.T) {
	h := newHarness(t, 0)
	qidA := wire.AbsoluteQueueID{QueueID: 2, QueueSeq: 1}
	qidB := wire.AbsoluteQueueID{QueueID: 2, QueueSeq: 9}
	h.genA.decisions = []PollDecision{attemptDecision(qidA, 0.3)}
	h.genB.decisions = []PollDecision{attemptDecision(qidB, 0.3)}
	stopA := h.nodeA.Start()
	stopB := h.nodeB.Start()
	_ = h.s.RunFor(2 * sim.Millisecond)
	stopA()
	stopB()

	_, _, _, queueMis, _ := h.mid.Stats()
	if queueMis != 1 {
		t.Fatalf("expected one queue mismatch, got %d", queueMis)
	}
	if len(h.genA.results) != 1 || h.genA.results[0].Outcome != wire.ErrQueueMismatch {
		t.Fatalf("node A should receive QUEUE_MISMATCH, got %+v", h.genA.results)
	}
	if len(h.genB.results) != 1 || h.genB.results[0].Outcome != wire.ErrQueueMismatch {
		t.Fatalf("node B should receive QUEUE_MISMATCH, got %+v", h.genB.results)
	}
	// The error reply echoes both nodes' submitted IDs.
	if h.genA.results[0].PeerQueue != qidB {
		t.Fatalf("peer queue ID not echoed: %v", h.genA.results[0].PeerQueue)
	}
}

func TestNoMessageOtherReported(t *testing.T) {
	h := newHarness(t, 0)
	qid := wire.AbsoluteQueueID{QueueID: 1, QueueSeq: 1}
	// Only node A attempts.
	h.genA.decisions = []PollDecision{attemptDecision(qid, 0.3)}
	stopA := h.nodeA.Start()
	stopB := h.nodeB.Start()
	_ = h.s.RunFor(2 * sim.Millisecond)
	stopA()
	stopB()

	_, _, _, _, noOther := h.mid.Stats()
	if noOther != 1 {
		t.Fatalf("expected one NO_MESSAGE_OTHER, got %d", noOther)
	}
	if len(h.genA.results) != 1 || h.genA.results[0].Outcome != wire.ErrNoMessageOther {
		t.Fatalf("node A should receive NO_MESSAGE_OTHER, got %+v", h.genA.results)
	}
	if len(h.genB.results) != 0 {
		t.Fatal("node B never attempted and should receive nothing")
	}
}

func TestTimestampMatchingUnderOffset(t *testing.T) {
	// A attempts in cycle 1, B only in cycle 3: the station must not pair
	// them; both eventually receive TIME_MISMATCH or NO_MESSAGE_OTHER.
	h := newHarness(t, 0)
	qid := wire.AbsoluteQueueID{QueueID: 1, QueueSeq: 1}
	h.genA.decisions = []PollDecision{attemptDecision(qid, 0.3)}
	h.genB.decisions = []PollDecision{{}, {}, attemptDecision(qid, 0.3)}
	stopA := h.nodeA.Start()
	stopB := h.nodeB.Start()
	_ = h.s.RunFor(2 * sim.Millisecond)
	stopA()
	stopB()

	matched, _, timeMis, _, noOther := h.mid.Stats()
	if matched != 0 {
		t.Fatal("attempts from different cycles must not be matched")
	}
	if timeMis+noOther < 2 {
		t.Fatalf("both unmatched attempts should be reported: time=%d noOther=%d", timeMis, noOther)
	}
}

func TestGENFailWhenCommBusy(t *testing.T) {
	h := newHarness(t, 0)
	// Occupy node A's communication qubit so a K attempt cannot start.
	pair := nv.NewEntangledPair(quantum.NewBellState(quantum.PsiPlus), quantum.PsiPlus, 0)
	if err := h.nodeA.device.StorePair(pair, nv.SideA); err != nil {
		t.Fatalf("StorePair: %v", err)
	}
	h.genA.decisions = []PollDecision{{Attempt: true, Keep: true, Alpha: 0.3, QueueID: wire.AbsoluteQueueID{}}}
	stopA := h.nodeA.Start()
	_ = h.s.RunFor(100 * sim.Microsecond)
	stopA()
	if len(h.genA.results) != 1 || h.genA.results[0].Outcome != wire.ErrGeneralFailure {
		t.Fatalf("expected a local GEN_FAIL, got %+v", h.genA.results)
	}
	if h.nodeA.Attempts() != 0 {
		t.Fatal("a failed local attempt must not reach the midpoint")
	}
}

func TestPairRegistry(t *testing.T) {
	r := NewPairRegistry()
	if r.Len() != 0 || r.Get(1) != nil {
		t.Fatal("fresh registry should be empty")
	}
	pair := nv.NewEntangledPair(quantum.NewBellState(quantum.PsiPlus), quantum.PsiPlus, 0)
	r.Put(5, pair)
	if r.Get(5) != pair || r.Len() != 1 {
		t.Fatal("registry lookup failed")
	}
	r.Forget(5)
	if r.Get(5) != nil || r.Len() != 0 {
		t.Fatal("Forget should remove the pair")
	}
	// The registry prunes entries far behind the newest sequence number.
	for seq := uint16(1); seq <= 3000; seq++ {
		r.Put(seq, pair)
	}
	if r.Len() > 2100 {
		t.Fatalf("registry should prune old entries, holds %d", r.Len())
	}
	if r.Get(3000) == nil {
		t.Fatal("recent entries must survive pruning")
	}
}

func TestNodeCycleCountingAndPending(t *testing.T) {
	h := newHarness(t, 1.0) // every frame is lost
	qid := wire.AbsoluteQueueID{QueueID: 1, QueueSeq: 1}
	h.genA.decisions = []PollDecision{attemptDecision(qid, 0.3), attemptDecision(qid, 0.3)}
	stopA := h.nodeA.Start()
	_ = h.s.RunFor(100 * sim.Microsecond)
	stopA()
	if h.nodeA.Cycle() == 0 {
		t.Fatal("cycles should advance")
	}
	if h.nodeA.Attempts() != 2 {
		t.Fatalf("both attempts should be triggered, got %d", h.nodeA.Attempts())
	}
	if h.nodeA.PendingAttempts() != 2 {
		t.Fatalf("lost replies leave attempts pending, got %d", h.nodeA.PendingAttempts())
	}
	h.nodeA.DropPending(h.nodeA.Cycle() + 1)
	if h.nodeA.PendingAttempts() != 0 {
		t.Fatal("DropPending should clear stale attempts")
	}
}

func TestMidpointIgnoresGarbage(t *testing.T) {
	h := newHarness(t, 0)
	h.mid.HandleGEN(classical.Message{Payload: "not a payload"})
	h.mid.HandleGEN(classical.Message{Payload: NewGENPayload([]byte{0xFF, 0x00}, 0.1, "A", 1)})
	h.nodeA.HandleReply(classical.Message{Payload: "nonsense"})
	h.nodeA.HandleReply(classical.Message{Payload: NewREPLYPayload([]byte{0x01})})
	matched, successes, _, _, _ := h.mid.Stats()
	if matched != 0 || successes != 0 {
		t.Fatal("garbage input should be ignored")
	}
	if h.mid.String() == "" {
		t.Fatal("midpoint should describe itself")
	}
}
