package classical

import (
	"testing"

	"repro/internal/sim"
)

// TestTagPortWrapsPayloads checks the tagging port wraps every payload and
// reports the underlying delay.
func TestTagPortWrapsPayloads(t *testing.T) {
	s := sim.New(1)
	var got []Message
	under := NewChannel("u", s, 25, 0, func(m Message) { got = append(got, m) })
	port := TagPort{Tag: 7, Under: under}
	if port.Delay() != 25 {
		t.Fatalf("Delay() = %v, want 25", port.Delay())
	}
	port.Send([]byte{1, 2})
	_ = s.Run()
	if len(got) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(got))
	}
	tp, ok := got[0].Payload.(TaggedPayload)
	if !ok || tp.Tag != 7 {
		t.Fatalf("payload not tagged: %#v", got[0].Payload)
	}
	if b, ok := tp.Payload.([]byte); !ok || len(b) != 2 {
		t.Fatalf("inner payload mangled: %#v", tp.Payload)
	}
}

// TestMuxRoutesByTag registers two handlers and checks frames reach the
// right one with the send timestamp preserved.
func TestMuxRoutesByTag(t *testing.T) {
	m := NewMux()
	var at3, at9 []Message
	m.Handle(3, func(msg Message) { at3 = append(at3, msg) })
	m.Handle(9, func(msg Message) { at9 = append(at9, msg) })

	m.Deliver(Message{Payload: TaggedPayload{Tag: 3, Payload: "a"}, SentAt: 111})
	m.Deliver(Message{Payload: TaggedPayload{Tag: 9, Payload: "b"}, SentAt: 222})
	m.Deliver(Message{Payload: TaggedPayload{Tag: 9, Payload: "c"}, SentAt: 333})

	if len(at3) != 1 || len(at9) != 2 {
		t.Fatalf("routing wrong: %d at tag 3, %d at tag 9", len(at3), len(at9))
	}
	if at3[0].Payload != "a" || at3[0].SentAt != 111 {
		t.Fatalf("tag 3 message mangled: %+v", at3[0])
	}
	routed, dropped := m.Stats()
	if routed != 3 || dropped != 0 {
		t.Fatalf("stats = (%d, %d), want (3, 0)", routed, dropped)
	}
}

// TestMuxDropsUnroutable counts untagged payloads and unknown tags as
// dropped without invoking any handler.
func TestMuxDropsUnroutable(t *testing.T) {
	m := NewMux()
	m.Handle(1, func(Message) { t.Fatal("handler invoked for unroutable message") })
	m.Deliver(Message{Payload: "untagged"})
	m.Deliver(Message{Payload: TaggedPayload{Tag: 2, Payload: "no handler"}})
	routed, dropped := m.Stats()
	if routed != 0 || dropped != 2 {
		t.Fatalf("stats = (%d, %d), want (0, 2)", routed, dropped)
	}
}

// TestMuxNilHandlerPanics documents the registration contract.
func TestMuxNilHandlerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Handle(nil) did not panic")
		}
	}()
	NewMux().Handle(1, nil)
}

// TestTagPortThroughChannelIntoMux wires the full path used by the network
// layer: two tagged ports share one channel whose delivery function is the
// mux.
func TestTagPortThroughChannelIntoMux(t *testing.T) {
	s := sim.New(1)
	m := NewMux()
	shared := NewChannel("pair", s, 10, 0, m.Deliver)
	var linkA, linkB int
	m.Handle(0, func(Message) { linkA++ })
	m.Handle(1, func(Message) { linkB++ })
	pa := TagPort{Tag: 0, Under: shared}
	pb := TagPort{Tag: 1, Under: shared}
	pa.Send("x")
	pb.Send("y")
	pb.Send("z")
	_ = s.Run()
	if linkA != 1 || linkB != 2 {
		t.Fatalf("mux misrouted: linkA=%d linkB=%d", linkA, linkB)
	}
}
