package classical

import (
	"testing"

	"repro/internal/sim"
)

func TestMinDelay(t *testing.T) {
	s := sim.New(1)
	a := NewChannel("a", s, 5*sim.Microsecond, 0, func(Message) {})
	b := NewChannel("b", s, 2*sim.Microsecond, 0, func(Message) {})
	c := TagPort{Tag: 7, Under: NewChannel("c", s, 9*sim.Microsecond, 0, func(Message) {})}
	if got := MinDelay(a, b, c); got != 2*sim.Microsecond {
		t.Fatalf("MinDelay = %v, want 2µs", got)
	}
	if got := MinDelay(a); got != 5*sim.Microsecond {
		t.Fatalf("MinDelay of one port = %v, want its own delay", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MinDelay() of no ports did not panic")
		}
	}()
	MinDelay()
}

// TestDuplexOnSplitEngines drives a duplex whose two directions run on
// different engines — the cross-shard construction — and checks each
// direction delivers on its own engine with the correct delay and SentAt.
func TestDuplexOnSplitEngines(t *testing.T) {
	const delay = 3 * sim.Microsecond
	e := sim.NewSharded(1, 2)
	ab, err := e.Cross(0, 1, delay, 1)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := e.Cross(1, 0, delay, 2)
	if err != nil {
		t.Fatal(err)
	}
	var atB, atA []sim.Time
	d := NewDuplexOn("x", ab, ba, delay, 0,
		func(m Message) { atB = append(atB, m.SentAt) },
		func(m Message) { atA = append(atA, m.SentAt) })
	sim.Schedule(e.Shard(0), 0, func() { d.AtoB.Send("ping") })
	sim.Schedule(e.Shard(1), sim.Microsecond, func() { d.BtoA.Send("pong") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(atB) != 1 || len(atA) != 1 {
		t.Fatalf("delivered %d a->b and %d b->a messages, want 1 and 1", len(atB), len(atA))
	}
	// SentAt must reconstruct the send time exactly even though the message
	// changed shards between send and delivery: the channel derives it from
	// the firing event's timestamp, which is delay after the send on either
	// engine.
	if atB[0] != 0 || atA[0] != sim.Time(sim.Microsecond) {
		t.Fatalf("reconstructed send times %v and %v, want 0 and 1µs", atB[0], atA[0])
	}
}
