package classical

import (
	"testing"

	"repro/internal/sim"
)

func TestMinDelay(t *testing.T) {
	s := sim.New(1)
	a := NewChannel("a", s, 5*sim.Microsecond, 0, func(Message) {})
	b := NewChannel("b", s, 2*sim.Microsecond, 0, func(Message) {})
	c := TagPort{Tag: 7, Under: NewChannel("c", s, 9*sim.Microsecond, 0, func(Message) {})}
	if got := MinDelay(a, b, c); got != 2*sim.Microsecond {
		t.Fatalf("MinDelay = %v, want 2µs", got)
	}
	if got := MinDelay(a); got != 5*sim.Microsecond {
		t.Fatalf("MinDelay of one port = %v, want its own delay", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MinDelay() of no ports did not panic")
		}
	}()
	MinDelay()
}

// TestDuplexOnSplitEngines drives a duplex whose two directions run on
// different engines — the cross-shard construction — and checks each
// direction delivers on its own engine with the correct delay and SentAt.
func TestDuplexOnSplitEngines(t *testing.T) {
	const delay = 3 * sim.Microsecond
	e := sim.NewSharded(1, 2)
	ab, err := e.Cross(0, 1, delay, 1)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := e.Cross(1, 0, delay, 2)
	if err != nil {
		t.Fatal(err)
	}
	var atB, atA []sim.Duration
	d := NewDuplexOn("x", ab, ba, delay, 0,
		func(m Message) { atB = append(atB, ab.Now().Sub(m.SentAt)) },
		func(m Message) { atA = append(atA, ba.Now().Sub(m.SentAt)) })
	e.Shard(0).Schedule(0, func() { d.AtoB.Send("ping") })
	e.Shard(1).Schedule(sim.Microsecond, func() { d.BtoA.Send("pong") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(atB) != 1 || len(atA) != 1 {
		t.Fatalf("delivered %d a->b and %d b->a messages, want 1 and 1", len(atB), len(atA))
	}
	// SentAt must reconstruct the send time exactly even though the message
	// changed shards between send and delivery.
	if atB[0] != delay || atA[0] != delay {
		t.Fatalf("measured latencies %v and %v, want %v", atB[0], atA[0], delay)
	}
}
