package classical

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestLinkBudgetArithmetic(t *testing.T) {
	b := DefaultLinkBudget(15, 0)
	// 15·0.5 + 2·0.7 + 0 + 3 = 11.9 dB total loss.
	if math.Abs(b.TotalLossDB()-11.9) > 1e-9 {
		t.Fatalf("total loss = %v, want 11.9", b.TotalLossDB())
	}
	if math.Abs(b.ReceivedPowerDBm()-(-12.9)) > 1e-9 {
		t.Fatalf("received power = %v, want -12.9", b.ReceivedPowerDBm())
	}
	if math.Abs(b.MarginDB()-11.1) > 1e-9 {
		t.Fatalf("margin = %v, want 11.1", b.MarginDB())
	}
}

func TestFrameErrorNegligibleAtPaperDistances(t *testing.T) {
	// The appendix finds a "perfect frame error probability" (no errors) for
	// 15 km and 20 km links with no splices.
	for _, km := range []float64{15, 20} {
		b := DefaultLinkBudget(km, 0)
		if p := b.FrameErrorProbability(); p > 1e-12 {
			t.Errorf("%v km: frame error %v, want ≈0", km, p)
		}
	}
}

func TestFrameErrorHighlySplicedCase(t *testing.T) {
	// 30 splices at 0.3 dB over 15 km: the appendix quotes a very low but
	// non-zero probability (≈4×10⁻⁸ order of magnitude).
	b := DefaultLinkBudget(15, 30)
	p := b.FrameErrorProbability()
	if p <= 0 || p > 1e-4 {
		t.Fatalf("spliced-link frame error = %v, want small but positive", p)
	}
	// CRC-escaping errors must be utterly negligible (≈10⁻²³).
	if crc := b.UndetectedCRCErrorProbability(); crc > 1e-18 {
		t.Fatalf("undetected CRC error probability too high: %v", crc)
	}
}

func TestFrameErrorDisconnectsAtLongDistance(t *testing.T) {
	// Beyond roughly 40 km the link budget collapses and the interface is
	// effectively disconnected (frame error → 1).
	b := DefaultLinkBudget(60, 0)
	if p := b.FrameErrorProbability(); p < 0.9 {
		t.Fatalf("60 km frame error = %v, want ≈1", p)
	}
}

func TestFrameErrorMonotoneInDistance(t *testing.T) {
	prev := -1.0
	for km := 1.0; km <= 60; km += 1 {
		p := DefaultLinkBudget(km, 0).FrameErrorProbability()
		if p < prev-1e-15 {
			t.Fatalf("frame error decreased with distance at %v km", km)
		}
		prev = p
	}
}

func TestChannelDeliveryDelay(t *testing.T) {
	s := sim.New(1)
	var deliveredAt sim.Time
	var got any
	ch := NewChannel("test", s, 100*sim.Microsecond, 0, func(m Message) {
		deliveredAt = s.Now()
		got = m.Payload
	})
	sim.Schedule(s, 0, func() { ch.Send("hello") })
	_ = s.Run()
	if got != "hello" {
		t.Fatalf("payload = %v", got)
	}
	if deliveredAt != sim.Time(100*sim.Microsecond) {
		t.Fatalf("delivered at %v, want 100µs", deliveredAt)
	}
}

func TestChannelOrdering(t *testing.T) {
	s := sim.New(1)
	var order []int
	ch := NewChannel("test", s, 10*sim.Microsecond, 0, func(m Message) {
		order = append(order, m.Payload.(int))
	})
	for i := 0; i < 5; i++ {
		i := i
		sim.Schedule(s, sim.Duration(i)*sim.Microsecond, func() { ch.Send(i) })
	}
	_ = s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("messages reordered: %v", order)
		}
	}
}

func TestChannelLoss(t *testing.T) {
	s := sim.New(42)
	received := 0
	ch := NewChannel("lossy", s, 0, 0.5, func(Message) { received++ })
	const n = 10000
	sim.Schedule(s, 0, func() {
		for i := 0; i < n; i++ {
			ch.Send(i)
		}
	})
	_ = s.Run()
	sent, delivered, dropped := ch.Stats()
	if sent != n || delivered+dropped != n {
		t.Fatalf("stats inconsistent: %d %d %d", sent, delivered, dropped)
	}
	rate := float64(received) / n
	if math.Abs(rate-0.5) > 0.03 {
		t.Fatalf("loss rate off: received %v", rate)
	}
}

func TestChannelNoLossDeliversEverything(t *testing.T) {
	s := sim.New(1)
	received := 0
	ch := NewChannel("perfect", s, 5, 0, func(Message) { received++ })
	sim.Schedule(s, 0, func() {
		for i := 0; i < 1000; i++ {
			ch.Send(i)
		}
	})
	_ = s.Run()
	if received != 1000 {
		t.Fatalf("received %d of 1000", received)
	}
}

func TestSetLossProbability(t *testing.T) {
	s := sim.New(1)
	ch := NewChannel("mutable", s, 0, 0, func(Message) {})
	ch.SetLossProbability(1)
	if ch.LossProbability() != 1 {
		t.Fatal("loss probability not updated")
	}
	sim.Schedule(s, 0, func() { ch.Send(1) })
	_ = s.Run()
	_, delivered, dropped := ch.Stats()
	if delivered != 0 || dropped != 1 {
		t.Fatalf("expected the frame to drop, got delivered=%d dropped=%d", delivered, dropped)
	}
}

func TestDuplex(t *testing.T) {
	s := sim.New(1)
	var atA, atB []any
	d := NewDuplex("pair", s, 10, 0,
		func(m Message) { atB = append(atB, m.Payload) },
		func(m Message) { atA = append(atA, m.Payload) })
	sim.Schedule(s, 0, func() {
		d.AtoB.Send("to-b")
		d.BtoA.Send("to-a")
	})
	_ = s.Run()
	if len(atB) != 1 || atB[0] != "to-b" {
		t.Fatalf("B received %v", atB)
	}
	if len(atA) != 1 || atA[0] != "to-a" {
		t.Fatalf("A received %v", atA)
	}
	d.SetLossProbability(1)
	if d.AtoB.LossProbability() != 1 || d.BtoA.LossProbability() != 1 {
		t.Fatal("duplex loss probability not applied to both directions")
	}
}

func TestChannelValidation(t *testing.T) {
	s := sim.New(1)
	assertPanics(t, "bad loss", func() { NewChannel("x", s, 0, 2, func(Message) {}) })
	assertPanics(t, "nil handler", func() { NewChannel("x", s, 0, 0, nil) })
	ch := NewChannel("x", s, 0, 0, func(Message) {})
	assertPanics(t, "bad set", func() { ch.SetLossProbability(-0.1) })
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

// Property: frame error probabilities are always valid probabilities and
// adding splices never improves the link.
func TestPropertyFrameErrorBounds(t *testing.T) {
	f := func(km float64, splices uint8) bool {
		km = math.Mod(math.Abs(km), 80)
		s := int(splices % 40)
		p0 := DefaultLinkBudget(km, s).FrameErrorProbability()
		p1 := DefaultLinkBudget(km, s+5).FrameErrorProbability()
		return p0 >= 0 && p0 <= 1 && p1+1e-15 >= p0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: a lossless channel delivers exactly as many messages as sent.
func TestPropertyLosslessConservation(t *testing.T) {
	f := func(count uint8) bool {
		s := sim.New(7)
		received := 0
		ch := NewChannel("p", s, 3, 0, func(Message) { received++ })
		n := int(count%50) + 1
		sim.Schedule(s, 0, func() {
			for i := 0; i < n; i++ {
				ch.Send(i)
			}
		})
		_ = s.Run()
		return received == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
