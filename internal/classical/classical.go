// Package classical models the non-quantum communication used by the
// protocol stack: point-to-point message channels with propagation delay and
// configurable frame loss, plus the 1000BASE-ZX optical-link error model of
// Appendix D.6 that maps a link budget to a frame-error probability.
//
// The protocols treat classical communication as authenticated and ordered
// (802.1AE-style, Section 5); the channel model therefore only injects
// losses (dropped frames) and never corruption, matching the paper's
// robustness study where the loss probability is artificially inflated up to
// 10⁻⁴.
package classical

import (
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/sim"
)

// LinkBudget describes a deployed single-mode fibre link for the
// 1000BASE-ZX frame-error model (Appendix D.6.1). All values are in dB
// except the distance.
type LinkBudget struct {
	LengthKM         float64
	AttenuationDBKM  float64 // 0.5 dB/km worst case
	Connectors       int     // 0.7 dB each
	Splices          int     // 0.3 dB each (the appendix's exaggerated case) or 0.1 dB
	SpliceLossDB     float64
	ConnectorLossDB  float64
	SafetyMarginDB   float64 // 3 dB
	TxPowerDBm       float64 // −1 dBm worst case
	RxSensitivityDBm float64 // −24 dBm receiver sensitivity
}

// DefaultLinkBudget returns the conservative worst-case budget used by the
// paper for a link of the given length with the given number of splices.
func DefaultLinkBudget(lengthKM float64, splices int) LinkBudget {
	return LinkBudget{
		LengthKM:         lengthKM,
		AttenuationDBKM:  0.5,
		Connectors:       2,
		Splices:          splices,
		SpliceLossDB:     0.3,
		ConnectorLossDB:  0.7,
		SafetyMarginDB:   3,
		TxPowerDBm:       -1,
		RxSensitivityDBm: -24,
	}
}

// TotalLossDB returns the total optical loss of the link.
func (b LinkBudget) TotalLossDB() float64 {
	return b.LengthKM*b.AttenuationDBKM +
		float64(b.Connectors)*b.ConnectorLossDB +
		float64(b.Splices)*b.SpliceLossDB +
		b.SafetyMarginDB
}

// ReceivedPowerDBm returns the optical power arriving at the receiver.
func (b LinkBudget) ReceivedPowerDBm() float64 { return b.TxPowerDBm - b.TotalLossDB() }

// MarginDB returns the power margin above the receiver sensitivity; negative
// margins mean the link is below sensitivity and effectively disconnected.
func (b LinkBudget) MarginDB() float64 { return b.ReceivedPowerDBm() - b.RxSensitivityDBm }

// snrPoint maps a received power margin to a frame error probability; the
// table reproduces the qualitative behaviour of the campus-measurement-based
// model of the appendix (James 2005): essentially error-free above a few dB
// of margin, a very narrow transition region, then total loss.
type snrPoint struct {
	marginDB float64
	frameErr float64
}

var frameErrorCurve = []snrPoint{
	{-3.0, 1.0},
	{-1.0, 0.5},
	{0.0, 1e-2},
	{0.5, 1e-4},
	{1.0, 4e-8},
	{2.0, 1e-10},
	{4.0, 1e-13},
	{8.0, 0.0},
}

// FrameErrorProbability maps the link budget to a per-frame loss probability
// by interpolating the margin → error curve (linear interpolation in
// log-probability, as in the appendix's treatment of unmeasured SNR points).
func (b LinkBudget) FrameErrorProbability() float64 {
	m := b.MarginDB()
	pts := frameErrorCurve
	if m <= pts[0].marginDB {
		return pts[0].frameErr
	}
	if m >= pts[len(pts)-1].marginDB {
		return pts[len(pts)-1].frameErr
	}
	i := sort.Search(len(pts), func(i int) bool { return pts[i].marginDB >= m })
	lo, hi := pts[i-1], pts[i]
	t := (m - lo.marginDB) / (hi.marginDB - lo.marginDB)
	// Interpolate in log space, guarding the zero endpoint.
	loP := math.Max(lo.frameErr, 1e-300)
	hiP := math.Max(hi.frameErr, 1e-300)
	p := math.Exp(math.Log(loP)*(1-t) + math.Log(hiP)*t)
	if p < 1e-200 {
		return 0
	}
	return p
}

// UndetectedCRCErrorProbability returns the probability that a frame error
// escapes the IEEE 802.3 CRC (Appendix D.6.2). The appendix computes
// ≈1.4×10⁻²³ even for the highly spliced case, so the model returns the
// frame error probability scaled by the CRC escape factor for the maximum
// MTU; the stack ignores these errors, and tests assert they are negligible.
func (b LinkBudget) UndetectedCRCErrorProbability() float64 {
	const crcEscapeFactor = 3.5e-16 // calibrated to reproduce ≈1.4e-23 at 4e-8 frame error
	return b.FrameErrorProbability() * crcEscapeFactor
}

// Message is an opaque payload delivered by a Channel.
type Message struct {
	Payload any
	SentAt  sim.Time
}

// Port is the sending half of a classical link as seen by one protocol
// instance: implementations deliver the payload to the far end after the
// link's propagation delay, possibly tagging or multiplexing it en route.
// Channel is the direct (untagged) implementation; TagPort wraps another
// Port for delivery through a Mux.
type Port interface {
	Send(payload any)
	Delay() sim.Duration
}

// TaggedPayload wraps a payload with a numeric tag so several protocol
// instances can share one physical channel; the receiving Mux dispatches on
// the tag. In the network layer the tag is the link ID.
type TaggedPayload struct {
	Tag     uint64
	Payload any
}

// TagPort is a Port that wraps every payload in a TaggedPayload before
// handing it to the underlying port. One TagPort per protocol instance turns
// a shared node-to-node channel into that instance's private link.
type TagPort struct {
	Tag   uint64
	Under Port
}

// Send tags the payload and forwards it on the underlying port.
func (p TagPort) Send(payload any) { p.Under.Send(TaggedPayload{Tag: p.Tag, Payload: payload}) }

// Delay returns the underlying port's propagation delay.
func (p TagPort) Delay() sim.Duration { return p.Under.Delay() }

// Mux dispatches tagged messages arriving on any number of channels to
// per-tag handlers. It is the receive side of TagPort: a node registers one
// handler per link ID and points every incoming channel's delivery function
// at Deliver.
//
// The handler map is written only while the topology is being built; under
// the sharded engine a boundary node's Mux is invoked from every shard that
// owns one of the node's links, so the counters are atomic (each handler
// itself only touches the state of the link it is registered for, which is
// owned by the delivering shard).
type Mux struct {
	handlers map[uint64]func(Message)
	routed   atomic.Uint64
	dropped  atomic.Uint64
}

// NewMux creates an empty demultiplexer.
func NewMux() *Mux {
	return &Mux{handlers: make(map[uint64]func(Message))}
}

// Handle registers the handler for one tag, replacing any previous handler.
func (m *Mux) Handle(tag uint64, h func(Message)) {
	if h == nil {
		panic("classical: nil mux handler")
	}
	m.handlers[tag] = h
}

// Deliver unwraps a TaggedPayload message and invokes the handler registered
// for its tag, preserving the original send time. Messages that are not
// tagged, or whose tag has no handler, are counted as dropped.
func (m *Mux) Deliver(msg Message) {
	tp, ok := msg.Payload.(TaggedPayload)
	if !ok {
		m.dropped.Add(1)
		return
	}
	h, ok := m.handlers[tp.Tag]
	if !ok {
		m.dropped.Add(1)
		return
	}
	m.routed.Add(1)
	h(Message{Payload: tp.Payload, SentAt: msg.SentAt})
}

// Stats returns how many messages were routed to a handler and how many were
// dropped for missing tags or untagged payloads.
func (m *Mux) Stats() (routed, dropped uint64) { return m.routed.Load(), m.dropped.Load() }

// Channel is a unidirectional, ordered, lossy message channel with a fixed
// propagation delay, built on the discrete-event simulator.
//
// A channel works unchanged across shards of a sim.ShardedEngine when built
// on a cross-shard engine, because its engine calls split cleanly by side:
// Send draws the loss Bernoulli and schedules from the sender's context,
// while the delivery handler recovers the send time from its own firing
// timestamp (receiver's context) without touching the engine clock.
type Channel struct {
	Name     string
	simul    sim.Engine
	delay    sim.Duration
	lossProb float64
	deliver  func(Message)
	// onDeliver is the delivery trampoline handed to the simulator: built
	// once so Send schedules a pooled argument-carrying event instead of
	// allocating a capturing closure per frame.
	onDeliver sim.ArgHandler

	sent      uint64
	delivered uint64
	dropped   uint64
}

// NewChannel creates a channel delivering messages to the given handler
// after delay, dropping each frame independently with probability lossProb.
func NewChannel(name string, s sim.Engine, delay sim.Duration, lossProb float64, deliver func(Message)) *Channel {
	if lossProb < 0 || lossProb > 1 {
		panic("classical: loss probability out of [0,1]")
	}
	if deliver == nil {
		panic("classical: nil delivery handler")
	}
	c := &Channel{Name: name, simul: s, delay: delay, lossProb: lossProb, deliver: deliver}
	c.onDeliver = func(now sim.Time, payload any) {
		c.delivered++
		// The event fires exactly delay after Send, so the send time is
		// recovered from the delivery timestamp instead of being carried
		// per frame (now is the arrival time on every engine, including
		// cross-shard edges).
		c.deliver(Message{Payload: payload, SentAt: now.Add(-c.delay)})
	}
	return c
}

// Delay returns the one-way propagation delay of the channel.
func (c *Channel) Delay() sim.Duration { return c.delay }

// SetLossProbability changes the per-frame loss probability (used by the
// robustness experiments to inflate losses mid-configuration).
func (c *Channel) SetLossProbability(p float64) {
	if p < 0 || p > 1 {
		panic("classical: loss probability out of [0,1]")
	}
	c.lossProb = p
}

// LossProbability returns the configured per-frame loss probability.
func (c *Channel) LossProbability() float64 { return c.lossProb }

// Send transmits a payload. The frame is either dropped (with the configured
// probability) or delivered to the handler after the propagation delay. The
// hot path allocates nothing: the payload is already boxed at the call site
// and rides the pooled event straight into the delivery trampoline.
func (c *Channel) Send(payload any) {
	c.sent++
	if c.simul.RNG().Bernoulli(c.lossProb) {
		c.dropped++
		return
	}
	sim.ScheduleArg(c.simul, c.delay, c.onDeliver, payload)
}

// Stats returns how many frames were sent, delivered and dropped so far.
// Delivered counts frames whose delivery event has already fired.
func (c *Channel) Stats() (sent, delivered, dropped uint64) {
	return c.sent, c.delivered, c.dropped
}

// Duplex bundles the two directions of a node-to-node (or node-to-midpoint)
// classical link.
type Duplex struct {
	AtoB *Channel
	BtoA *Channel
}

// NewDuplex builds a symmetric duplex link between two handlers.
func NewDuplex(name string, s sim.Engine, delay sim.Duration, lossProb float64, deliverAtB, deliverAtA func(Message)) *Duplex {
	return &Duplex{
		AtoB: NewChannel(name+"/a->b", s, delay, lossProb, deliverAtB),
		BtoA: NewChannel(name+"/b->a", s, delay, lossProb, deliverAtA),
	}
}

// NewDuplexOn builds a duplex link whose two directions run on separate
// engines — the cross-shard case, where each direction is registered with
// the sharded engine as its own edge.
func NewDuplexOn(name string, sAB, sBA sim.Engine, delay sim.Duration, lossProb float64, deliverAtB, deliverAtA func(Message)) *Duplex {
	return &Duplex{
		AtoB: NewChannel(name+"/a->b", sAB, delay, lossProb, deliverAtB),
		BtoA: NewChannel(name+"/b->a", sBA, delay, lossProb, deliverAtA),
	}
}

// MinDelay returns the smallest propagation delay over the given ports — the
// quantity a conservative sharded run uses as its safe lookahead horizon. It
// panics on an empty port set (there is no meaningful minimum), and callers
// partitioning a topology must reject a non-positive result before handing
// the delay to sim.ShardedEngine.Cross.
func MinDelay(ports ...Port) sim.Duration {
	if len(ports) == 0 {
		panic("classical: MinDelay of an empty port set")
	}
	min := ports[0].Delay()
	for _, p := range ports[1:] {
		if d := p.Delay(); d < min {
			min = d
		}
	}
	return min
}

// SetLossProbability updates both directions.
func (d *Duplex) SetLossProbability(p float64) {
	d.AtoB.SetLossProbability(p)
	d.BtoA.SetLossProbability(p)
}
