package sim

import (
	"container/heap"
	"fmt"
	"os"
)

// eventQueue is the pending-event store behind a Simulator: the pluggable
// queue discipline. Two implementations exist — heapQueue (binary heap, the
// exact-semantics reference) and wheelQueue (hierarchical timing wheel, the
// fast path for the short regular delays that dominate the workload).
//
// The contract both honour, which is what keeps runs byte-identical across
// disciplines:
//
//   - peek returns the resident event with the smallest (at, seq), including
//     events that have been cancelled but not yet removed (lazy removal is
//     part of the Simulator's observable counter semantics);
//   - pop removes and returns exactly the event peek would return;
//   - compact removes every cancelled resident event, recycling each through
//     the supplied callback, and reports how many it removed;
//   - len counts every resident event, cancelled or not.
type eventQueue interface {
	push(ev *event)
	peek() *event
	pop() *event
	len() int
	compact(recycle func(*event)) int
}

// QueueKind selects the event-queue discipline used by a Simulator.
type QueueKind int

// The registered queue disciplines. QueueHeap is the zero value, so
// configurations that never mention a queue keep the reference heap.
const (
	// QueueHeap is the binary min-heap: O(log n) insert/pop, the
	// exact-semantics reference discipline.
	QueueHeap QueueKind = iota
	// QueueWheel is the hierarchical timing wheel: O(1) amortised
	// insert/cancel with power-of-two bucket widths and cascading overflow
	// levels. Execution order and every deterministic counter are identical
	// to the heap; only the wall-clock cost differs.
	QueueWheel
)

// String renders the queue kind's canonical CLI/JSON name.
func (k QueueKind) String() string {
	if k == QueueWheel {
		return "wheel"
	}
	return "heap"
}

// ParseQueue converts a CLI/JSON name into a QueueKind.
func ParseQueue(s string) (QueueKind, error) {
	switch s {
	case "", "heap":
		return QueueHeap, nil
	case "wheel", "timing-wheel", "timingwheel":
		return QueueWheel, nil
	default:
		return QueueHeap, fmt.Errorf("sim: unknown event queue %q (want heap or wheel)", s)
	}
}

// QueueEnvVar is the environment variable consulted by QueueFromEnv; CI uses
// it to run the whole test suite once per queue discipline.
const QueueEnvVar = "REPRO_QUEUE"

// QueueFromEnv returns the queue discipline named by $REPRO_QUEUE, or
// QueueHeap when the variable is unset. Default configurations (netsim,
// bench) consult it so a test matrix can flip every simulator onto the wheel
// without touching call sites. An unrecognised value panics: the variable
// exists so CI can claim queue coverage, and a typo that silently fell back
// to the heap would report green wheel coverage that never ran.
func QueueFromEnv() QueueKind {
	k, err := ParseQueue(os.Getenv(QueueEnvVar))
	if err != nil {
		panic(fmt.Sprintf("sim: $%s: %v", QueueEnvVar, err))
	}
	return k
}

// ResolveQueue turns a CLI flag value into a QueueKind: an empty flag defers
// to $REPRO_QUEUE (then the heap), anything else must parse. Shared by every
// CLI exposing a -queue flag; unlike QueueFromEnv it reports a bad
// environment value as an error so CLIs can exit cleanly.
func ResolveQueue(flagValue string) (QueueKind, error) {
	if flagValue == "" {
		flagValue = os.Getenv(QueueEnvVar)
	}
	return ParseQueue(flagValue)
}

// newQueue builds an empty queue of the given discipline.
func newQueue(k QueueKind) eventQueue {
	if k == QueueWheel {
		return newWheelQueue()
	}
	return &heapQueue{}
}

// heapStore is a min-heap of events ordered by (time, sequence), the
// container/heap backing of heapQueue.
type heapStore []*event

func (q heapStore) Len() int { return len(q) }
func (q heapStore) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q heapStore) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *heapStore) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *heapStore) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// heapQueue is the reference discipline: a binary min-heap over (at, seq).
type heapQueue struct {
	h heapStore
}

func (q *heapQueue) push(ev *event) { heap.Push(&q.h, ev) }

func (q *heapQueue) peek() *event {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

func (q *heapQueue) pop() *event {
	if len(q.h) == 0 {
		return nil
	}
	return heap.Pop(&q.h).(*event)
}

func (q *heapQueue) len() int { return len(q.h) }

// compact rebuilds the heap without its cancelled events. Pop order is
// unaffected: events are totally ordered by (time, sequence), so any heap
// over the same live set pops identically.
func (q *heapQueue) compact(recycle func(*event)) int {
	removed := 0
	live := q.h[:0]
	for _, ev := range q.h {
		if ev.canceled {
			recycle(ev)
			removed++
			continue
		}
		ev.index = len(live)
		live = append(live, ev)
	}
	// Clear the tail so recycled events are not retained by the backing array.
	for i := len(live); i < len(q.h); i++ {
		q.h[i] = nil
	}
	q.h = live
	heap.Init(&q.h)
	return removed
}
