package sim

import (
	"errors"
	"fmt"
	"testing"
)

// pingPongSharded bounces a counter between shard 0 and shard 1 over a
// cross-shard duplex with the given one-way delay and returns the delivery
// log: one "t=<time> n=<count>" line per delivery, in execution order.
func pingPongSharded(t *testing.T, seed int64, delay Duration, rounds int) []string {
	t.Helper()
	e := NewSharded(seed, 2)
	ab, err := e.Cross(0, 1, delay, 1)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := e.Cross(1, 0, delay, 2)
	if err != nil {
		t.Fatal(err)
	}
	var log []string
	var deliverAtA, deliverAtB ArgHandler
	deliverAtB = func(now Time, arg any) {
		n := arg.(int)
		log = append(log, fmt.Sprintf("t=%d n=%d", now, n))
		if n < rounds {
			ScheduleArg(ba, delay, deliverAtA, n+1)
		}
	}
	deliverAtA = func(now Time, arg any) {
		n := arg.(int)
		log = append(log, fmt.Sprintf("t=%d n=%d", now, n))
		if n < rounds {
			ScheduleArg(ab, delay, deliverAtB, n+1)
		}
	}
	// Seed the exchange from shard 0's own loop at t=0.
	Schedule(e.Shard(0), 0, func() { ScheduleArg(ab, delay, deliverAtB, 1) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return log
}

// pingPongSerial is the same exchange modelled on one serial Simulator; it is
// the reference the sharded run must reproduce exactly.
func pingPongSerial(t *testing.T, seed int64, delay Duration, rounds int) []string {
	t.Helper()
	s := New(seed)
	var log []string
	var bounce ArgHandler
	bounce = func(now Time, arg any) {
		n := arg.(int)
		log = append(log, fmt.Sprintf("t=%d n=%d", now, n))
		if n < rounds {
			ScheduleArg(s, delay, bounce, n+1)
		}
	}
	Schedule(s, 0, func() { ScheduleArg(s, delay, bounce, 1) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return log
}

// TestShardedPingPongMatchesSerial is the core conservative-sync check: a
// message bouncing between two shards is delivered at exactly the same
// simulated times, in the same order, as the serial model of the same
// exchange — the barrier windows are invisible in the results.
func TestShardedPingPongMatchesSerial(t *testing.T) {
	const delay = Duration(Millisecond)
	const rounds = 20
	want := pingPongSerial(t, 1, delay, rounds)
	got := pingPongSharded(t, 1, delay, rounds)
	if len(want) != rounds {
		t.Fatalf("serial reference logged %d deliveries, want %d", len(want), rounds)
	}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("delivery %d: sharded %q != serial %q\nsharded: %v\nserial: %v", i, got[i], want[i], got, want)
		}
	}
	// The exchange is strictly paced by the channel delay.
	if want[0] != fmt.Sprintf("t=%d n=1", delay) {
		t.Fatalf("first delivery %q, want t=%d n=1", want[0], delay)
	}
}

// TestShardedRunRepeatable runs the identical sharded exchange twice and
// requires identical logs: goroutine timing must never leak into results.
func TestShardedRunRepeatable(t *testing.T) {
	a := pingPongSharded(t, 7, Duration(Microsecond), 50)
	b := pingPongSharded(t, 7, Duration(Microsecond), 50)
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d differs: %q vs %q", i, a[i], b[i])
		}
	}
}

// TestShardedMergeOrder checks the barrier merge's deterministic order for
// same-timestamp arrivals: first by edge key, then by send order within an
// edge, regardless of which source shard finished its window first.
func TestShardedMergeOrder(t *testing.T) {
	const delay = Duration(Millisecond)
	e := NewSharded(1, 3)
	// Two edges into shard 0 with deliberately inverted key order: the edge
	// from shard 2 gets the smaller key, so its arrivals must execute first.
	fromS1, err := e.Cross(1, 0, delay, 9)
	if err != nil {
		t.Fatal(err)
	}
	fromS2, err := e.Cross(2, 0, delay, 3)
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	record := func(_ Time, arg any) { order = append(order, arg.(string)) }
	// Both source shards send two messages with identical timestamps.
	Schedule(e.Shard(1), 0, func() {
		ScheduleArg(fromS1, delay, record, "key9-first")
		ScheduleArg(fromS1, delay, record, "key9-second")
	})
	Schedule(e.Shard(2), 0, func() {
		ScheduleArg(fromS2, delay, record, "key3-first")
		ScheduleArg(fromS2, delay, record, "key3-second")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"key3-first", "key3-second", "key9-first", "key9-second"}
	if len(order) != len(want) {
		t.Fatalf("executed %d deliveries, want %d: %v", len(order), len(want), order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("merge order %v, want %v", order, want)
		}
	}
	if e.Merged() != 4 {
		t.Fatalf("Merged() = %d, want 4", e.Merged())
	}
}

func TestCrossRegistrationRejections(t *testing.T) {
	e := NewSharded(1, 2)
	cases := []struct {
		name     string
		src, dst int
		delay    Duration
	}{
		{"zero delay", 0, 1, 0},
		{"negative delay", 0, 1, -1},
		{"same shard", 0, 0, Duration(Millisecond)},
		{"src out of range", 5, 1, Duration(Millisecond)},
		{"dst out of range", 0, -1, Duration(Millisecond)},
	}
	for _, c := range cases {
		if _, err := e.Cross(c.src, c.dst, c.delay, 1); err == nil {
			t.Errorf("%s: Cross accepted an invalid edge", c.name)
		}
	}
	// Registration after the engine has run is rejected: the lookahead is
	// frozen once windows have been computed from it.
	if err := e.RunFor(Duration(Millisecond)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Cross(0, 1, Duration(Millisecond), 1); err == nil {
		t.Error("Cross accepted a registration after the engine started running")
	}
}

func TestCrossSendBelowMinimumPanics(t *testing.T) {
	e := NewSharded(1, 2)
	c, err := e.Cross(0, 1, Duration(Millisecond), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("cross-shard send below the registered minimum did not panic")
		}
	}()
	ScheduleArg(c, Duration(Microsecond), func(Time, any) {}, nil)
}

// TestShardedLookahead checks the lookahead tracks the minimum registered
// delay and stays infinite with no cross edges.
func TestShardedLookahead(t *testing.T) {
	e := NewSharded(1, 3)
	if e.Lookahead() != noLookahead {
		t.Fatalf("fresh engine lookahead %v, want unbounded", e.Lookahead())
	}
	if _, err := e.Cross(0, 1, 5*Duration(Millisecond), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Cross(1, 2, 2*Duration(Millisecond), 2); err != nil {
		t.Fatal(err)
	}
	if e.Lookahead() != 2*Duration(Millisecond) {
		t.Fatalf("lookahead %v, want the minimum registered delay %v", e.Lookahead(), 2*Duration(Millisecond))
	}
}

// TestShardedRunUntilAdvancesClock mirrors the serial contract: after
// RunUntil the engine-wide clock sits exactly at the limit, even when the
// queues drained early, and independent shards both reach it.
func TestShardedRunUntilAdvancesClock(t *testing.T) {
	e := NewSharded(1, 2)
	fired := [2]Time{}
	Schedule(e.Shard(0), Duration(Millisecond), func() { fired[0] = e.Shard(0).Now() })
	Schedule(e.Shard(1), 2*Duration(Millisecond), func() { fired[1] = e.Shard(1).Now() })
	limit := Time(DurationSeconds(0.01))
	if err := e.RunUntil(limit); err != nil {
		t.Fatal(err)
	}
	if e.Now() != limit {
		t.Fatalf("Now() = %v after RunUntil(%v)", e.Now(), limit)
	}
	if fired[0] != Time(Millisecond) || fired[1] != Time(2*Millisecond) {
		t.Fatalf("events fired at %v, want 1ms and 2ms", fired)
	}
	if e.Executed() != 2 {
		t.Fatalf("Executed() = %d, want 2", e.Executed())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

// TestShardedWindowsBoundedByLookahead forces many windows: with lookahead L
// and events spread over many L, RunUntil still fires everything at the right
// times.
func TestShardedWindowsBoundedByLookahead(t *testing.T) {
	const delay = Duration(Microsecond)
	e := NewSharded(1, 2)
	c, err := e.Cross(0, 1, delay, 1)
	if err != nil {
		t.Fatal(err)
	}
	var arrivals []Time
	// A periodic sender on shard 0 fires 10 cross-shard sends a millisecond
	// apart — each send lands in a different window.
	for i := 1; i <= 10; i++ {
		at := Time(i) * Time(Millisecond)
		ScheduleAt(e.Shard(0), at, func() {
			ScheduleArg(c, delay, func(now Time, _ any) { arrivals = append(arrivals, now) }, nil)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 10 {
		t.Fatalf("delivered %d cross-shard messages, want 10", len(arrivals))
	}
	for i, at := range arrivals {
		want := Time(i+1)*Time(Millisecond) + Time(delay)
		if at != want {
			t.Fatalf("arrival %d at %v, want %v", i, at, want)
		}
	}
}

// TestShardedStop: Stop takes effect at the next window barrier, so the test
// bounds the windows with a registered cross edge (with unbounded lookahead a
// run is a single window and only finishes on its own).
func TestShardedStop(t *testing.T) {
	e := NewSharded(1, 2)
	if _, err := e.Cross(0, 1, Duration(Millisecond), 1); err != nil {
		t.Fatal(err)
	}
	Schedule(e.Shard(0), Duration(Millisecond), func() { e.Stop() })
	Schedule(e.Shard(1), 3600*Duration(Second), func() { t.Error("event fired after Stop") })
	err := e.RunUntil(Time(7200 * Second))
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("RunUntil returned %v, want ErrStopped", err)
	}
	if e.Pending() == 0 {
		t.Fatal("the far-future event should survive the stop")
	}
}

func TestShardedEngineRestrictedSurface(t *testing.T) {
	e := NewSharded(1, 2)
	c, err := e.Cross(0, 1, Duration(Millisecond), 1)
	if err != nil {
		t.Fatal(err)
	}
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("ShardedEngine.RNG", func() { e.RNG() })
	expectPanic("ShardedEngine.ScheduleArgAt", func() { e.ScheduleArgAt(0, func(Time, any) {}, nil) })
	expectPanic("Schedule on ShardedEngine", func() { Schedule(e, 0, func() {}) })
	expectPanic("ScheduleAt on ShardedEngine", func() { ScheduleAt(e, 0, func() {}) })
	expectPanic("Ticker on ShardedEngine", func() { Ticker(e, Duration(Millisecond), func() {}) })
	expectPanic("crossEngine.Run", func() { c.Run() })
	expectPanic("crossEngine.RunUntil", func() { c.RunUntil(0) })
	expectPanic("crossEngine.RunFor", func() { c.RunFor(0) })
	expectPanic("crossEngine.Stop", func() { c.Stop() })
	expectPanic("crossEngine.Executed", func() { c.Executed() })
	expectPanic("crossEngine.Pending", func() { c.Pending() })
}

func TestNewShardedRejectsZeroShards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSharded(1, 0) did not panic")
		}
	}()
	NewSharded(1, 0)
}

// TestWithRNG pins a private stream onto an engine view and checks both that
// draws come from the pinned stream and that scheduling passes through.
func TestWithRNG(t *testing.T) {
	s := New(1)
	pinned := WithRNG(s, NewRNG(42))
	reference := NewRNG(42)
	for i := 0; i < 10; i++ {
		if got, want := pinned.RNG().Float64(), reference.Float64(); got != want {
			t.Fatalf("draw %d: pinned stream %v, want %v", i, got, want)
		}
	}
	fired := false
	Schedule(pinned, Duration(Millisecond), func() { fired = true })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("event scheduled through the RNG view never fired")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("WithRNG(nil) did not panic")
		}
	}()
	WithRNG(s, nil)
}

// TestDeriveSeed checks the properties the per-link streams rely on:
// determinism, sensitivity to every coordinate, and no additive collisions.
func TestDeriveSeed(t *testing.T) {
	if DeriveSeed(1, 2, 3) != DeriveSeed(1, 2, 3) {
		t.Fatal("DeriveSeed is not deterministic")
	}
	seen := map[int64]string{}
	for base := int64(0); base < 8; base++ {
		for w := uint64(0); w < 8; w++ {
			s := DeriveSeed(base, w)
			id := fmt.Sprintf("(%d,%d)", base, w)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision between %s and %s", prev, id)
			}
			seen[s] = id
		}
	}
	if DeriveSeed(1, 2, 3) == DeriveSeed(1, 3, 2) {
		t.Fatal("DeriveSeed ignores coordinate order")
	}
}

// TestShardedNoCrossRunsIndependently: with no cross edges the lookahead is
// unbounded and a Run is one window — both shards drain fully in parallel.
func TestShardedNoCrossRunsIndependently(t *testing.T) {
	e := NewSharded(1, 4)
	total := 0
	for i := 0; i < 4; i++ {
		s := e.Shard(i)
		for j := 0; j < 25; j++ {
			Schedule(s, Duration(j)*Duration(Millisecond), func() {})
			total++
		}
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Executed() != uint64(total) {
		t.Fatalf("Executed() = %d, want %d", e.Executed(), total)
	}
	if e.Merged() != 0 {
		t.Fatalf("Merged() = %d with no cross edges", e.Merged())
	}
}
