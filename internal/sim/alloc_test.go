package sim

import "testing"

// The event pool makes steady-state scheduling allocation-free: every fired
// event's struct is recycled for the next Schedule. This test pins that at
// exactly zero so the optimisation cannot silently rot.
func TestScheduleSteadyStateAllocFree(t *testing.T) {
	s := New(1)
	fn := func() {}
	// Warm the pool and the queue's backing array.
	for i := 0; i < 64; i++ {
		Schedule(s, Duration(i), fn)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("warmup run: %v", err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		Schedule(s, 10*Microsecond, fn)
		if err := s.RunFor(Millisecond); err != nil {
			t.Fatalf("RunFor: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("schedule+fire cycle allocated %v objects per run, want 0", allocs)
	}
}

// Cancelling pooled events must stay allocation-free too (Cancel only flips
// a flag or, at worst, compacts in place).
func TestCancelAllocFree(t *testing.T) {
	s := New(1)
	fn := func() {}
	for i := 0; i < 64; i++ {
		Schedule(s, Duration(i), fn)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("warmup run: %v", err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		id := Schedule(s, 10*Microsecond, fn)
		id.Cancel()
		if err := s.RunFor(Millisecond); err != nil {
			t.Fatalf("RunFor: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("schedule+cancel cycle allocated %v objects per run, want 0", allocs)
	}
}

// A stale EventID whose event struct has been recycled into a new event must
// not cancel the new incarnation.
func TestStaleEventIDCannotCancelReusedStruct(t *testing.T) {
	s := New(1)
	stale := Schedule(s, Microsecond, func() {})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	fired := false
	fresh := Schedule(s, Microsecond, func() { fired = true })
	if fresh.ev != stale.ev {
		t.Fatal("expected the pooled event struct to be reused")
	}
	stale.Cancel()
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !fired {
		t.Fatal("stale EventID cancelled a reused event")
	}
}

// Cancelled events are compacted out of the queue once they outnumber the
// live ones, so Ticker-stop/Cancel churn cannot grow the heap unboundedly.
func TestCancelCompaction(t *testing.T) {
	s := New(1)
	const n = 1000
	fired := 0
	ids := make([]EventID, 0, n)
	for i := 0; i < n; i++ {
		ids = append(ids, Schedule(s, Duration(i+1)*Microsecond, func() { fired++ }))
	}
	for i := 0; i < 600; i++ {
		ids[i].Cancel()
	}
	// Compaction triggers as soon as cancellations exceed half the queue
	// (at the 501st cancel here); the cancels after it stay resident until
	// the next threshold crossing, but the dead majority is gone.
	if s.Compactions() == 0 {
		t.Fatal("cancelling over half the queue did not trigger compaction")
	}
	if live := s.Pending() - s.CanceledPending(); live != n-600 {
		t.Fatalf("live events = %d, want %d", live, n-600)
	}
	if got := s.Pending(); got >= n-100 {
		t.Fatalf("Pending() = %d after compaction, expected the dead majority to be gone", got)
	}
	// Cancel of an already-compacted (recycled) event is a no-op.
	before := s.CanceledPending()
	ids[0].Cancel()
	if got := s.CanceledPending(); got != before {
		t.Fatalf("stale cancel after compaction bumped CanceledPending %d -> %d", before, got)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != n-600 {
		t.Fatalf("fired %d events, want %d", fired, n-600)
	}
}

// Compaction must preserve the deterministic (time, sequence) pop order.
func TestCompactionPreservesOrder(t *testing.T) {
	s := New(1)
	var order []int
	var ids []EventID
	for i := 0; i < 200; i++ {
		i := i
		ids = append(ids, Schedule(s, Duration(200-i)*Microsecond, func() { order = append(order, i) }))
	}
	// Cancel every odd-index event plus index 0 — one past half the queue,
	// forcing a compaction. Survivors must still fire in reverse index
	// order (their delays decrease with index).
	for i := 1; i < 200; i += 2 {
		ids[i].Cancel()
	}
	ids[0].Cancel()
	if s.Compactions() == 0 {
		t.Fatal("expected a compaction")
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 99 {
		t.Fatalf("fired %d events, want 99", len(order))
	}
	for k, idx := range order {
		if want := 198 - 2*k; idx != want {
			t.Fatalf("order[%d] = %d, want %d", k, idx, want)
		}
	}
}

// Small queues are not compacted: skipping dead events on pop is cheaper
// than a rebuild below compactMinLen.
func TestNoCompactionBelowThreshold(t *testing.T) {
	s := New(1)
	var ids []EventID
	for i := 0; i < compactMinLen-1; i++ {
		ids = append(ids, Schedule(s, Duration(i+1), func() {}))
	}
	for _, id := range ids {
		id.Cancel()
	}
	if s.Compactions() != 0 {
		t.Fatalf("queue of %d events compacted %d times, want 0", compactMinLen-1, s.Compactions())
	}
	if got := s.CanceledPending(); got != compactMinLen-1 {
		t.Fatalf("CanceledPending() = %d, want %d", got, compactMinLen-1)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := s.CanceledPending(); got != 0 {
		t.Fatalf("after draining, CanceledPending() = %d, want 0", got)
	}
}
