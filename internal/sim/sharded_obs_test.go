package sim

import (
	"fmt"
	"testing"
)

// TestShardedCountersQueryableMidRun is the regression test for the barrier
// counter fix: Merged and Windows used to be plain fields only readable
// after Run returned; they are now published atomically at each barrier so a
// tracing hook running on a shard goroutine can read them mid-run. A
// message marches down a 4-shard chain while an event on shard 0 samples the
// counters in the middle of the run.
func TestShardedCountersQueryableMidRun(t *testing.T) {
	const delay = Duration(Millisecond)
	const hops = 12
	e := NewSharded(3, 4)
	// Forward chain edges 0->1->2->3->0 so the message keeps crossing shards.
	edges := make([]Engine, 4)
	for i := 0; i < 4; i++ {
		var err error
		edges[i], err = e.Cross(i, (i+1)%4, delay, uint64(i+1))
		if err != nil {
			t.Fatal(err)
		}
	}
	var forward ArgHandler
	forward = func(now Time, arg any) {
		n := arg.(int)
		if n < hops {
			ScheduleArg(edges[(n)%4], delay, forward, n+1)
		}
	}
	Schedule(e.Shard(0), 0, func() { ScheduleArg(edges[0], delay, forward, 1) })

	// Sample the counters from inside the run, on a shard's event loop, at a
	// time when several barriers have certainly completed.
	type sample struct {
		at      Time
		merged  uint64
		windows uint64
	}
	var mid sample
	Schedule(e.Shard(0), Duration(hops/2)*delay, func() {
		mid = sample{at: e.Shard(0).Now(), merged: e.Merged(), windows: e.Windows()}
	})

	// A window observer sees every barrier with coherent bounds.
	var observed int
	var observedMerged int
	e.SetWindowObserver(func(start, end Time, merged int) {
		if end < start {
			t.Errorf("window end %d before start %d", end, start)
		}
		observed++
		observedMerged += merged
	})

	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if mid.at == 0 {
		t.Fatal("mid-run sample never fired")
	}
	if mid.merged == 0 {
		t.Fatalf("mid-run Merged() = 0 at t=%v; counters must be visible before Run returns", mid.at)
	}
	if mid.windows == 0 {
		t.Fatalf("mid-run Windows() = 0 at t=%v", mid.at)
	}
	if got := e.Merged(); got != hops {
		t.Fatalf("final Merged() = %d, want %d", got, hops)
	}
	if mid.merged >= e.Merged() {
		t.Fatalf("mid-run Merged() = %d not below final %d", mid.merged, e.Merged())
	}
	if uint64(observed) != e.Windows() {
		t.Fatalf("observer saw %d windows, engine counted %d", observed, e.Windows())
	}
	if uint64(observedMerged) != e.Merged() {
		t.Fatalf("observer saw %d merged messages, engine counted %d", observedMerged, e.Merged())
	}
}

// TestBatchObserver checks the serial engine's dispatch hook: one call per
// same-timestamp batch, with the batch length and the queue behind it, and
// installing it does not change execution order.
func TestBatchObserver(t *testing.T) {
	run := func(observe bool) (log []string, batches []string) {
		s := New(5)
		if observe {
			s.SetBatchObserver(func(at Time, batchLen, pending int) {
				batches = append(batches, fmt.Sprintf("t=%d n=%d q=%d", at, batchLen, pending))
			})
		}
		record := func(name string) func() { return func() { log = append(log, name) } }
		Schedule(s, 10, record("a"))
		Schedule(s, 10, record("b"))
		Schedule(s, 20, record("c"))
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return log, batches
	}
	plain, _ := run(false)
	observed, batches := run(true)
	if fmt.Sprint(plain) != fmt.Sprint(observed) {
		t.Fatalf("observer changed execution order: %v vs %v", plain, observed)
	}
	want := []string{"t=10 n=2 q=1", "t=20 n=1 q=0"}
	if fmt.Sprint(batches) != fmt.Sprint(want) {
		t.Fatalf("batch log = %v, want %v", batches, want)
	}
}
