// Package sim provides a small, deterministic discrete-event simulation
// kernel used by the quantum network stack reproduction.
//
// The kernel models simulated time as int64 nanoseconds. Events are
// callbacks scheduled at absolute times and executed in time order; ties are
// broken by insertion order so that runs are fully deterministic for a given
// random seed. The design mirrors the event-driven core of the purpose-built
// simulator described in the paper (NetSquid/DynAA): entities register
// handlers, schedule future work, and communicate through delayed delivery
// (see the channel helpers in this package and internal/classical).
//
// Scheduling is built on one canonical primitive — Engine.ScheduleArgAt — an
// argument-carrying event at an absolute time. The package-level Schedule,
// ScheduleAt, ScheduleArg and Ticker helpers are thin wrappers over it (see
// engine.go), and the pending-event store behind a Simulator is a pluggable
// queue discipline (see queue.go and wheel.go) selected per run.
package sim

import (
	"errors"
	"math"
	"math/rand"
	"time"
)

// Time is a point in simulated time, in nanoseconds since the start of the
// simulation run.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration int64

// Common durations, mirroring time.Duration constants but for simulated time.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Seconds returns the duration as a floating point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Microseconds returns the duration as a floating point number of microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// String renders the duration using the standard library formatting.
func (d Duration) String() string { return time.Duration(d).String() }

// Seconds returns the absolute simulated time as seconds since run start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Add returns the time offset by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed between t and earlier.
func (t Time) Sub(earlier Time) Duration { return Duration(t - earlier) }

// String renders the time as a duration since the start of the run.
func (t Time) String() string { return time.Duration(t).String() }

// DurationSeconds builds a Duration from a floating point number of seconds.
func DurationSeconds(s float64) Duration { return Duration(s * float64(Second)) }

// DurationMicroseconds builds a Duration from a floating point number of
// microseconds.
func DurationMicroseconds(us float64) Duration { return Duration(us * float64(Microsecond)) }

// Handler is a parameterless callback executed when an event fires. Handlers
// ride the canonical argument-carrying event as the argument itself (func
// values are pointer-shaped, so the conversion does not allocate).
type Handler func()

// ArgHandler is the canonical event callback: it receives the event's
// timestamp and the argument it was scheduled with. Hot paths that deliver a
// value into a fixed handler (e.g. one classical message into one channel's
// delivery function) build the handler once and schedule pooled
// argument-carrying events, instead of allocating a fresh capturing closure
// per event. The now argument is the firing event's absolute time — equal to
// Engine.Now() inside the callback on a local engine, and the only clock a
// cross-shard delivery handler should use.
type ArgHandler func(now Time, arg any)

// event is a single scheduled callback. Event structs are pooled: once an
// event has fired (or been compacted away) its struct is recycled by the
// owning simulator, so the hot scheduling path allocates nothing in steady
// state. The gen counter is bumped on every recycle so that stale EventIDs
// held by callers can never cancel an unrelated reuse of the same struct.
type event struct {
	at       Time
	seq      uint64 // insertion order, breaks ties deterministically
	gen      uint64 // incarnation counter, guards pooled reuse
	fn       ArgHandler
	arg      any
	canceled bool
	index    int    // heap position (heap discipline only)
	next     *event // intrusive bucket link (wheel discipline only)
}

// EventID identifies a scheduled event so it can be cancelled.
type EventID struct {
	s   *Simulator
	ev  *event
	gen uint64
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. When cancellations accumulate beyond
// half the pending queue the simulator compacts them out immediately (see
// Simulator.maybeCompact), so Ticker-stop/Cancel churn cannot grow the queue
// unboundedly on long runs.
func (id EventID) Cancel() {
	ev := id.ev
	if ev == nil || ev.gen != id.gen || ev.canceled {
		return
	}
	ev.canceled = true
	id.s.canceledPending++
	id.s.maybeCompact()
}

// ErrStopped is returned by Run when the simulation was halted explicitly.
var ErrStopped = errors.New("sim: stopped")

// Simulator is a deterministic discrete-event scheduler.
//
// A Simulator is not safe for concurrent use; the entire simulated network
// runs single-threaded, which matches the determinism requirements of the
// protocols under test (both nodes must make identical scheduling decisions).
type Simulator struct {
	now     Time
	q       eventQueue
	nextSeq uint64
	rng     *RNG
	stopped bool
	// executed counts events that have fired since construction.
	executed uint64
	// free is the recycled-event pool; see the event type.
	free []*event
	// canceledPending counts cancelled events not yet removed (resident in
	// the queue or awaiting dispatch in the current batch); once they
	// outnumber the live queue residents the queue is compacted.
	canceledPending int
	// compactions counts how many times the queue was compacted.
	compactions uint64
	// batch is the reusable same-timestamp dispatch buffer; batchRemaining
	// counts its not-yet-fired events so Pending stays exact mid-callback.
	batch          []*event
	batchRemaining int
	// batchObs, when set, observes every same-timestamp dispatch batch.
	// Kept nil by default so the dispatch loop pays one predictable branch.
	batchObs func(at Time, batchLen, pending int)
}

// compactMinLen is the queue size below which compaction is not worth the
// rebuild: popping a few dead events is cheaper than rebuilding the queue.
const compactMinLen = 64

// maybeCompact removes cancelled events from the queue once they outnumber
// the live ones. Pop order is unaffected: events are totally ordered by
// (time, sequence), so any queue over the same live set pops identically.
func (s *Simulator) maybeCompact() {
	if s.canceledPending*2 <= s.q.len() || s.q.len() < compactMinLen {
		return
	}
	s.canceledPending -= s.q.compact(s.recycle)
	s.compactions++
}

// Compactions reports how many times cancelled events were compacted out of
// the queue.
func (s *Simulator) Compactions() uint64 { return s.compactions }

// CanceledPending reports how many cancelled events are still resident (they
// are skipped when popped, or removed by compaction).
func (s *Simulator) CanceledPending() int { return s.canceledPending }

// newEvent returns a pooled (or fresh) event initialised for scheduling.
func (s *Simulator) newEvent(at Time, fn ArgHandler, arg any) *event {
	var ev *event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.at = at
	ev.seq = s.nextSeq
	ev.fn = fn
	ev.arg = arg
	ev.canceled = false
	s.nextSeq++
	return ev
}

// recycle returns a popped (or compacted) event to the pool, invalidating
// every EventID that still points at it.
func (s *Simulator) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.arg = nil
	ev.index = -1
	ev.next = nil
	s.free = append(s.free, ev)
}

// New creates a simulator on the reference heap queue, seeded with seed.
func New(seed int64) *Simulator { return NewWithQueue(seed, QueueHeap) }

// NewWithQueue creates a simulator on the given queue discipline, seeded with
// seed. Execution order and every deterministic counter are identical across
// disciplines; choose QueueWheel for the fastest event loop on workloads
// dominated by short regular delays.
func NewWithQueue(seed int64, queue QueueKind) *Simulator {
	return &Simulator{rng: NewRNG(seed), q: newQueue(queue)}
}

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// RNG returns the simulator's deterministic random source.
func (s *Simulator) RNG() *RNG { return s.rng }

// Executed reports how many events have fired so far.
func (s *Simulator) Executed() uint64 { return s.executed }

// Pending reports how many events are scheduled and not yet fired (including
// cancelled events awaiting lazy removal).
func (s *Simulator) Pending() int { return s.q.len() + s.batchRemaining }

// SetBatchObserver installs fn to be called once per same-timestamp dispatch
// batch with the batch timestamp, the batch length, and the events still
// queued behind it. The observer must not schedule events or draw
// randomness; it exists for flight-recorder tracing, which records into a
// fixed ring and therefore cannot perturb the trajectory. A nil fn (the
// default) restores the zero-cost path: one predictable branch per batch.
func (s *Simulator) SetBatchObserver(fn func(at Time, batchLen, pending int)) { s.batchObs = fn }

// ScheduleArgAt registers an argument-carrying event at absolute time at;
// times in the past are clamped to the present. This is the one canonical
// scheduling primitive — Schedule, ScheduleAt, ScheduleArg and Ticker are
// package-level wrappers over it — and the sharded engine's barrier merge
// uses it directly to inject cross-shard deliveries with their original
// arrival timestamps.
func (s *Simulator) ScheduleArgAt(at Time, fn ArgHandler, arg any) EventID {
	if at < s.now {
		at = s.now
	}
	ev := s.newEvent(at, fn, arg)
	s.q.push(ev)
	return EventID{s: s, ev: ev, gen: ev.gen}
}

// nextEventAt returns the timestamp of the earliest pending event. The head
// may be a cancelled event, so the result is a lower bound on the next event
// that will actually fire — which is the safe direction for the sharded
// engine's window computation.
func (s *Simulator) nextEventAt() (Time, bool) {
	if ev := s.q.peek(); ev != nil {
		return ev.at, true
	}
	return 0, false
}

// Stop halts the simulation; Run and RunUntil return promptly after the
// current event completes.
func (s *Simulator) Stop() { s.stopped = true }

// step executes every pending event sharing the earliest timestamp within
// limit, as one batch: the clock is set once, cancelled events are drained,
// and the callbacks run in (time, sequence) order. Batching is semantically
// identical to popping one event at a time — an event scheduled from inside
// a batch callback at the same timestamp has a larger sequence number, so it
// fires after the batch either way — but saves one queue descent per
// same-timestamp event. Returns false when no event within limit remains.
func (s *Simulator) step(limit Time) bool {
	// Find the earliest live event, lazily removing cancelled heads.
	var head *event
	for {
		next := s.q.peek()
		if next == nil {
			return false
		}
		if limit >= 0 && next.at > limit {
			return false
		}
		s.q.pop()
		if next.canceled {
			s.canceledPending--
			s.recycle(next)
			continue
		}
		head = next
		break
	}
	// Collect the rest of its timestamp batch.
	batch := append(s.batch[:0], head)
	for {
		next := s.q.peek()
		if next == nil || next.at != head.at {
			break
		}
		s.q.pop()
		if next.canceled {
			s.canceledPending--
			s.recycle(next)
			continue
		}
		batch = append(batch, next)
	}
	s.batch = batch
	s.now = head.at
	s.batchRemaining = len(batch)
	if s.batchObs != nil {
		s.batchObs(head.at, len(batch), s.q.len())
	}
	for i, ev := range batch {
		if s.stopped {
			// Re-push the unexecuted remainder; sequence numbers are
			// preserved, so a later run pops it in the original order.
			for j := i; j < len(batch); j++ {
				s.q.push(batch[j])
				batch[j] = nil
			}
			s.batchRemaining = 0
			return true
		}
		batch[i] = nil
		s.batchRemaining--
		if ev.canceled {
			// Cancelled by an earlier callback in this batch.
			s.canceledPending--
			s.recycle(ev)
			continue
		}
		fn, arg, at := ev.fn, ev.arg, ev.at
		s.executed++
		// Recycle before running: the callback may schedule new events,
		// which can then reuse this struct immediately (stale EventIDs are
		// gen-guarded).
		s.recycle(ev)
		fn(at, arg)
	}
	return true
}

// Run executes events until the queue is empty or Stop is called. It returns
// ErrStopped when halted by Stop, nil otherwise.
func (s *Simulator) Run() error {
	s.stopped = false
	for !s.stopped {
		if !s.step(-1) {
			return nil
		}
	}
	return ErrStopped
}

// RunUntil executes events until the simulated clock would pass t, the queue
// empties, or Stop is called. After returning, Now() is at most t; if events
// remain beyond t the clock is advanced to exactly t.
func (s *Simulator) RunUntil(t Time) error {
	s.stopped = false
	for !s.stopped {
		if !s.step(t) {
			if s.now < t {
				s.now = t
			}
			return nil
		}
	}
	return ErrStopped
}

// RunFor executes events for d simulated time starting from the current
// clock value.
func (s *Simulator) RunFor(d Duration) error { return s.RunUntil(s.now.Add(d)) }

// RNG wraps math/rand with convenience samplers used across the simulation.
// All stochastic behaviour in the reproduction flows through one RNG per run
// so that scenarios are reproducible from their seed.
type RNG struct {
	r *rand.Rand
}

// NewRNG creates a deterministic random source from seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform sample in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Float64Batch fills dst with uniform samples in [0,1), drawn in the same
// order as repeated Float64 calls. Hot loops that need several samples per
// iteration (the per-attempt optical sampling draws five) use it to amortise
// the interface-call overhead of drawing one at a time.
func (g *RNG) Float64Batch(dst []float64) {
	for i := range dst {
		dst[i] = g.r.Float64()
	}
}

// Intn returns a uniform sample in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Uint64 returns a pseudo-random 64-bit value.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// Bernoulli returns true with probability p (clamped to [0,1]).
func (g *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// NormFloat64 returns a standard normal sample.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Exponential returns an exponentially distributed sample with the given
// rate (events per unit); the mean of the distribution is 1/rate.
func (g *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("sim: non-positive exponential rate")
	}
	return g.r.ExpFloat64() / rate
}

// Poisson returns a Poisson distributed sample with the given mean using
// Knuth's algorithm for small means and a normal approximation for large
// ones. It is used for detector dark-count modelling.
func (g *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		// Normal approximation with continuity correction.
		v := g.r.NormFloat64()*math.Sqrt(mean) + mean + 0.5
		if v < 0 {
			return 0
		}
		return int(v)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		k++
		p *= g.r.Float64()
		if p <= l {
			return k - 1
		}
	}
}

// Choice returns a uniformly random index in [0, n) weighted by weights.
// All weights must be non-negative; if they sum to zero the first index is
// returned.
func (g *RNG) Choice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("sim: negative weight")
		}
		total += w
	}
	if total == 0 {
		return 0
	}
	x := g.r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Shuffle randomises the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }
