// Package sim provides a small, deterministic discrete-event simulation
// kernel used by the quantum network stack reproduction.
//
// The kernel models simulated time as int64 nanoseconds. Events are
// callbacks scheduled at absolute times and executed in time order; ties are
// broken by insertion order so that runs are fully deterministic for a given
// random seed. The design mirrors the event-driven core of the purpose-built
// simulator described in the paper (NetSquid/DynAA): entities register
// handlers, schedule future work, and communicate through delayed delivery
// (see the channel helpers in this package and internal/classical).
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Time is a point in simulated time, in nanoseconds since the start of the
// simulation run.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration int64

// Common durations, mirroring time.Duration constants but for simulated time.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Seconds returns the duration as a floating point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Microseconds returns the duration as a floating point number of microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// String renders the duration using the standard library formatting.
func (d Duration) String() string { return time.Duration(d).String() }

// Seconds returns the absolute simulated time as seconds since run start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Add returns the time offset by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed between t and earlier.
func (t Time) Sub(earlier Time) Duration { return Duration(t - earlier) }

// String renders the time as a duration since the start of the run.
func (t Time) String() string { return time.Duration(t).String() }

// DurationSeconds builds a Duration from a floating point number of seconds.
func DurationSeconds(s float64) Duration { return Duration(s * float64(Second)) }

// DurationMicroseconds builds a Duration from a floating point number of
// microseconds.
func DurationMicroseconds(us float64) Duration { return Duration(us * float64(Microsecond)) }

// Handler is a callback executed when an event fires.
type Handler func()

// ArgHandler is a callback executed with the argument it was scheduled with.
// Hot paths that deliver a value into a fixed handler (e.g. one classical
// message into one channel's delivery function) use ScheduleArg with a
// handler built once, instead of allocating a fresh capturing closure per
// event.
type ArgHandler func(arg any)

// event is a single scheduled callback. Event structs are pooled: once an
// event has fired (or been compacted away) its struct is recycled by the
// owning simulator, so the hot scheduling path allocates nothing in steady
// state. The gen counter is bumped on every recycle so that stale EventIDs
// held by callers can never cancel an unrelated reuse of the same struct.
type event struct {
	at       Time
	seq      uint64 // insertion order, breaks ties deterministically
	gen      uint64 // incarnation counter, guards pooled reuse
	fn       Handler
	argFn    ArgHandler // set instead of fn for argument-carrying events
	arg      any
	canceled bool
	index    int // heap index
}

// EventID identifies a scheduled event so it can be cancelled.
type EventID struct {
	s   *Simulator
	ev  *event
	gen uint64
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. When cancellations accumulate beyond
// half the pending queue the simulator compacts them out immediately (see
// Simulator.compact), so Ticker-stop/Cancel churn cannot grow the heap
// unboundedly on long runs.
func (id EventID) Cancel() {
	ev := id.ev
	if ev == nil || ev.gen != id.gen || ev.canceled {
		return
	}
	ev.canceled = true
	id.s.canceledPending++
	id.s.maybeCompact()
}

// eventQueue is a min-heap of events ordered by (time, sequence).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// ErrStopped is returned by Run when the simulation was halted explicitly.
var ErrStopped = errors.New("sim: stopped")

// Simulator is a deterministic discrete-event scheduler.
//
// A Simulator is not safe for concurrent use; the entire simulated network
// runs single-threaded, which matches the determinism requirements of the
// protocols under test (both nodes must make identical scheduling decisions).
type Simulator struct {
	now     Time
	queue   eventQueue
	nextSeq uint64
	rng     *RNG
	stopped bool
	// executed counts events that have fired since construction.
	executed uint64
	// free is the recycled-event pool; see the event type.
	free []*event
	// canceledPending counts cancelled events still resident in the queue;
	// once they outnumber the live ones the queue is compacted.
	canceledPending int
	// compactions counts how many times the queue was compacted.
	compactions uint64
}

// compactMinLen is the queue size below which compaction is not worth the
// rebuild: popping a few dead events is cheaper than re-heapifying.
const compactMinLen = 64

// maybeCompact rebuilds the queue without its cancelled events once they
// outnumber the live ones. Pop order is unaffected: events are totally
// ordered by (time, sequence), so any heap over the same live set pops
// identically.
func (s *Simulator) maybeCompact() {
	if s.canceledPending*2 <= len(s.queue) || len(s.queue) < compactMinLen {
		return
	}
	live := s.queue[:0]
	for _, ev := range s.queue {
		if ev.canceled {
			s.recycle(ev)
			continue
		}
		ev.index = len(live)
		live = append(live, ev)
	}
	// Clear the tail so recycled events are not retained by the backing array.
	for i := len(live); i < len(s.queue); i++ {
		s.queue[i] = nil
	}
	s.queue = live
	heap.Init(&s.queue)
	s.canceledPending = 0
	s.compactions++
}

// Compactions reports how many times cancelled events were compacted out of
// the queue.
func (s *Simulator) Compactions() uint64 { return s.compactions }

// CanceledPending reports how many cancelled events are still resident in
// the queue (they are skipped when popped, or removed by compaction).
func (s *Simulator) CanceledPending() int { return s.canceledPending }

// newEvent returns a pooled (or fresh) event initialised for scheduling.
func (s *Simulator) newEvent(at Time, fn Handler) *event {
	var ev *event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.at = at
	ev.seq = s.nextSeq
	ev.fn = fn
	ev.canceled = false
	s.nextSeq++
	return ev
}

// recycle returns a popped (or compacted) event to the pool, invalidating
// every EventID that still points at it.
func (s *Simulator) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.argFn = nil
	ev.arg = nil
	ev.index = -1
	s.free = append(s.free, ev)
}

// New creates a simulator whose random number generator is seeded with seed.
func New(seed int64) *Simulator {
	return &Simulator{rng: NewRNG(seed)}
}

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// RNG returns the simulator's deterministic random source.
func (s *Simulator) RNG() *RNG { return s.rng }

// Executed reports how many events have fired so far.
func (s *Simulator) Executed() uint64 { return s.executed }

// Pending reports how many events are scheduled and not yet fired.
func (s *Simulator) Pending() int { return s.queue.Len() }

// Schedule registers fn to run after delay. A negative delay is treated as
// zero (the event runs at the current time, after already-queued events for
// the same instant).
func (s *Simulator) Schedule(delay Duration, fn Handler) EventID {
	if delay < 0 {
		delay = 0
	}
	return s.ScheduleAt(s.now.Add(delay), fn)
}

// ScheduleAt registers fn to run at absolute time at. Times in the past are
// clamped to the present.
func (s *Simulator) ScheduleAt(at Time, fn Handler) EventID {
	if at < s.now {
		at = s.now
	}
	ev := s.newEvent(at, fn)
	heap.Push(&s.queue, ev)
	return EventID{s: s, ev: ev, gen: ev.gen}
}

// ScheduleArg registers fn to run after delay with the given argument. It
// behaves exactly like Schedule but carries the argument in the pooled event
// itself, so callers with a long-lived handler avoid allocating a capturing
// closure per event.
func (s *Simulator) ScheduleArg(delay Duration, fn ArgHandler, arg any) EventID {
	if delay < 0 {
		delay = 0
	}
	ev := s.newEvent(s.now.Add(delay), nil)
	ev.argFn = fn
	ev.arg = arg
	heap.Push(&s.queue, ev)
	return EventID{s: s, ev: ev, gen: ev.gen}
}

// ScheduleArgAt registers an argument-carrying event at absolute time at
// (clamped to the present, like ScheduleAt). The sharded engine's barrier
// merge uses it to inject cross-shard deliveries with their original arrival
// timestamps.
func (s *Simulator) ScheduleArgAt(at Time, fn ArgHandler, arg any) EventID {
	if at < s.now {
		at = s.now
	}
	ev := s.newEvent(at, nil)
	ev.argFn = fn
	ev.arg = arg
	heap.Push(&s.queue, ev)
	return EventID{s: s, ev: ev, gen: ev.gen}
}

// nextEventAt returns the timestamp of the earliest pending event. The head
// may be a cancelled event, so the result is a lower bound on the next event
// that will actually fire — which is the safe direction for the sharded
// engine's window computation.
func (s *Simulator) nextEventAt() (Time, bool) {
	if s.queue.Len() == 0 {
		return 0, false
	}
	return s.queue[0].at, true
}

// Stop halts the simulation; Run and RunUntil return promptly after the
// current event completes.
func (s *Simulator) Stop() { s.stopped = true }

// step executes the next pending event, returning false when none remain.
func (s *Simulator) step(limit Time) bool {
	for s.queue.Len() > 0 {
		next := s.queue[0]
		if limit >= 0 && next.at > limit {
			return false
		}
		heap.Pop(&s.queue)
		if next.canceled {
			s.canceledPending--
			s.recycle(next)
			continue
		}
		fn, argFn, arg := next.fn, next.argFn, next.arg
		s.now = next.at
		s.executed++
		// Recycle before running: the callback may schedule new events, which
		// can then reuse this struct immediately (stale EventIDs are
		// gen-guarded).
		s.recycle(next)
		if argFn != nil {
			argFn(arg)
		} else {
			fn()
		}
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called. It returns
// ErrStopped when halted by Stop, nil otherwise.
func (s *Simulator) Run() error {
	s.stopped = false
	for !s.stopped {
		if !s.step(-1) {
			return nil
		}
	}
	return ErrStopped
}

// RunUntil executes events until the simulated clock would pass t, the queue
// empties, or Stop is called. After returning, Now() is at most t; if events
// remain beyond t the clock is advanced to exactly t.
func (s *Simulator) RunUntil(t Time) error {
	s.stopped = false
	for !s.stopped {
		if !s.step(t) {
			if s.now < t {
				s.now = t
			}
			return nil
		}
	}
	return ErrStopped
}

// RunFor executes events for d simulated time starting from the current
// clock value.
func (s *Simulator) RunFor(d Duration) error { return s.RunUntil(s.now.Add(d)) }

// Ticker invokes fn every period until the returned stop function is called
// or the simulation ends. The first invocation happens after one full period.
func (s *Simulator) Ticker(period Duration, fn Handler) (stop func()) {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive ticker period %d", period))
	}
	stopped := false
	var tick Handler
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			s.Schedule(period, tick)
		}
	}
	s.Schedule(period, tick)
	return func() { stopped = true }
}

// RNG wraps math/rand with convenience samplers used across the simulation.
// All stochastic behaviour in the reproduction flows through one RNG per run
// so that scenarios are reproducible from their seed.
type RNG struct {
	r *rand.Rand
}

// NewRNG creates a deterministic random source from seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform sample in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Float64Batch fills dst with uniform samples in [0,1), drawn in the same
// order as repeated Float64 calls. Hot loops that need several samples per
// iteration (the per-attempt optical sampling draws five) use it to amortise
// the interface-call overhead of drawing one at a time.
func (g *RNG) Float64Batch(dst []float64) {
	for i := range dst {
		dst[i] = g.r.Float64()
	}
}

// Intn returns a uniform sample in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Uint64 returns a pseudo-random 64-bit value.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// Bernoulli returns true with probability p (clamped to [0,1]).
func (g *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// NormFloat64 returns a standard normal sample.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Exponential returns an exponentially distributed sample with the given
// rate (events per unit); the mean of the distribution is 1/rate.
func (g *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("sim: non-positive exponential rate")
	}
	return g.r.ExpFloat64() / rate
}

// Poisson returns a Poisson distributed sample with the given mean using
// Knuth's algorithm for small means and a normal approximation for large
// ones. It is used for detector dark-count modelling.
func (g *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		// Normal approximation with continuity correction.
		v := g.r.NormFloat64()*math.Sqrt(mean) + mean + 0.5
		if v < 0 {
			return 0
		}
		return int(v)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		k++
		p *= g.r.Float64()
		if p <= l {
			return k - 1
		}
	}
}

// Choice returns a uniformly random index in [0, n) weighted by weights.
// All weights must be non-negative; if they sum to zero the first index is
// returned.
func (g *RNG) Choice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("sim: negative weight")
		}
		total += w
	}
	if total == 0 {
		return 0
	}
	x := g.r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Shuffle randomises the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }
