package sim

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// ShardedEngine is a conservative parallel discrete-event engine: N worker
// shards, each a plain serial Simulator owning a disjoint subset of the
// simulated entities, advancing together in lock-step windows.
//
// The synchronisation model is null-message-free barrier sync. All
// cross-shard interaction goes through engines registered with Cross, each
// declaring a strictly positive minimum delay; the engine-wide lookahead L is
// the minimum of those delays. A window runs every shard in parallel up to a
// shared horizon chosen so that no message sent inside the window can arrive
// inside it (any send at τ arrives at τ+delay ≥ t+L, one past the horizon
// t+L−1). At the barrier the per-crosslink outboxes are merged into the
// destination shards in a deterministic order — (timestamp, stable key,
// send order) — so the merged schedule is independent of goroutine timing.
// With no cross engines registered the lookahead is infinite and each run is
// a single window: the shards are fully independent and simply run in
// parallel.
//
// Determinism across shard counts is a joint property of this engine and how
// entities are partitioned onto it: every entity must schedule only on its
// own shard and draw randomness only from streams pinned to stable entity
// IDs (WithRNG + DeriveSeed), never from a shard's own RNG. internal/netsim
// partitions whole links this way, which is what makes its tables and
// counters byte-identical from 1 shard to N.
type ShardedEngine struct {
	seed   int64
	shards []*Simulator

	// cross holds the registered cross-shard engines; lookahead caches the
	// minimum of their delays (noLookahead when none are registered).
	cross     []*crossEngine
	lookahead Duration

	// now is the last barrier (or run limit) reached; between runs it is the
	// engine-wide clock.
	now Time

	running bool
	stopReq atomic.Bool

	// scratch is the reusable merge buffer; merged counts messages moved
	// across shards over the engine's lifetime and windows counts completed
	// barrier windows. Both are atomics so observers running on shard
	// goroutines (tracing hooks, progress displays) can read them mid-run.
	scratch []mergedMsg
	merged  atomic.Uint64
	windows atomic.Uint64

	// windowObs, when set, observes every completed barrier window. It runs
	// on the coordinating goroutine after the shards have parked, so it may
	// read shard state but must not schedule events or draw randomness.
	windowObs func(start, end Time, merged int)
}

// noLookahead marks "no cross-shard engines registered": windows are
// unbounded and shards run fully independently.
const noLookahead = Duration(math.MaxInt64)

// NewSharded creates a sharded engine with n worker shards on the reference
// heap queue. Each shard's own RNG is seeded from (seed, shard index), but
// partitioned workloads should not consume shard RNGs at all — per-entity
// streams via WithRNG keep results independent of the partitioning.
func NewSharded(seed int64, n int) *ShardedEngine {
	return NewShardedWithQueue(seed, n, QueueHeap)
}

// NewShardedWithQueue creates a sharded engine whose shards all run the
// given queue discipline. The discipline multiplies with the sharding: each
// shard runs its own faster event loop, and counters stay byte-identical
// across both axes (queue choice and shard count).
func NewShardedWithQueue(seed int64, n int, queue QueueKind) *ShardedEngine {
	if n < 1 {
		panic(fmt.Sprintf("sim: sharded engine needs at least 1 shard, got %d", n))
	}
	e := &ShardedEngine{seed: seed, lookahead: noLookahead}
	e.shards = make([]*Simulator, n)
	for i := range e.shards {
		e.shards[i] = NewWithQueue(DeriveSeed(seed, 0x5ead, uint64(i)), queue)
	}
	return e
}

// Shards returns the number of worker shards.
func (e *ShardedEngine) Shards() int { return len(e.shards) }

// Shard returns worker shard i. Entities owned by that shard schedule
// directly on it; its clock advances to each window horizon in turn.
func (e *ShardedEngine) Shard(i int) *Simulator { return e.shards[i] }

// Lookahead returns the current conservative lookahead: the minimum delay
// over all registered cross-shard engines, or noLookahead's value when none
// are registered.
func (e *ShardedEngine) Lookahead() Duration { return e.lookahead }

// Merged reports how many cross-shard messages have been merged at barriers.
// Safe to call mid-run from any goroutine (e.g. a shard-side tracing hook):
// the count is published atomically at each barrier.
func (e *ShardedEngine) Merged() uint64 { return e.merged.Load() }

// Windows reports how many barrier windows have completed. Like Merged it is
// queryable mid-run from any goroutine.
func (e *ShardedEngine) Windows() uint64 { return e.windows.Load() }

// SetWindowObserver installs fn to be called at every barrier with the
// window's start and end times and the number of cross-shard messages merged
// at that barrier. It runs on the coordinating goroutine while all shards
// are parked, so it may read shard state, but it must not schedule events or
// draw randomness (flight-recorder tracing only). A nil fn (the default)
// restores the zero-cost path. Must be set before Run.
func (e *ShardedEngine) SetWindowObserver(fn func(start, end Time, merged int)) { e.windowObs = fn }

// Cross registers a cross-shard edge from shard src to shard dst and returns
// the restricted Engine entities must use to talk across it. The returned
// engine supports exactly the split a delayed message channel needs:
//
//   - ScheduleArgAt, callable only from src's event loop, enqueues the
//     delivery into the edge's outbox (arrival times closer than the
//     registered minimum delay are rejected — they would break the
//     lookahead proof);
//   - Now reports src's clock, the sender's scheduling reference (delivery
//     handlers read the arrival time from their ArgHandler now argument);
//   - RNG is a private stream derived from (engine seed, key).
//
// key must be stable across runs and unique per registered edge; it is the
// secondary merge sort key, so it — not goroutine timing — decides the order
// of same-timestamp arrivals from different edges. Registration is rejected
// once the engine has started running, and a non-positive delay is rejected
// loudly: a zero-delay cross-shard edge would make conservative lookahead
// unsound.
func (e *ShardedEngine) Cross(src, dst int, delay Duration, key uint64) (Engine, error) {
	if e.running {
		return nil, fmt.Errorf("sim: cross-shard registration after the engine started running")
	}
	if src < 0 || src >= len(e.shards) || dst < 0 || dst >= len(e.shards) {
		return nil, fmt.Errorf("sim: cross-shard edge %d->%d out of range (have %d shards)", src, dst, len(e.shards))
	}
	if src == dst {
		return nil, fmt.Errorf("sim: cross-shard edge %d->%d does not cross shards", src, dst)
	}
	if delay <= 0 {
		return nil, fmt.Errorf("sim: non-positive cross-shard delay %v on edge %d->%d: conservative lookahead requires every cross-shard delay to be strictly positive", delay, src, dst)
	}
	c := &crossEngine{
		eng:      e,
		src:      src,
		dst:      dst,
		minDelay: delay,
		key:      key,
		rng:      NewRNG(DeriveSeed(e.seed, 0xc405, key)),
	}
	e.cross = append(e.cross, c)
	if delay < e.lookahead {
		e.lookahead = delay
	}
	return c, nil
}

// Now returns the engine-wide clock: the last barrier or run limit reached.
func (e *ShardedEngine) Now() Time { return e.now }

// RNG panics: a sharded engine has no global random stream by design.
// Entities needing randomness must pin a per-entity stream with WithRNG and
// DeriveSeed so their draws are independent of the partitioning.
func (e *ShardedEngine) RNG() *RNG {
	panic("sim: ShardedEngine has no global RNG; pin per-entity streams with WithRNG(shard, NewRNG(DeriveSeed(seed, entityID)))")
}

// ScheduleArgAt panics: events must be scheduled on the owning shard (Shard)
// or across a registered cross-shard engine (Cross). Periodic work likewise
// belongs to the shard that owns the state it samples (netsim runs one
// queue-sampling ticker per link).
func (e *ShardedEngine) ScheduleArgAt(Time, ArgHandler, any) EventID { panic(errShardedSchedule) }

const errShardedSchedule = "sim: schedule on an owning shard (ShardedEngine.Shard) or a registered cross-shard engine (ShardedEngine.Cross), not on the sharded engine itself"

// Stop requests a halt; the run in progress returns ErrStopped at the next
// window barrier.
func (e *ShardedEngine) Stop() { e.stopReq.Store(true) }

// Executed reports the total events fired across all shards.
func (e *ShardedEngine) Executed() uint64 {
	var n uint64
	for _, s := range e.shards {
		n += s.Executed()
	}
	return n
}

// Pending reports scheduled-but-unfired events across all shards plus
// cross-shard messages still waiting in outboxes.
func (e *ShardedEngine) Pending() int {
	n := 0
	for _, s := range e.shards {
		n += s.Pending()
	}
	for _, c := range e.cross {
		n += len(c.buf)
	}
	return n
}

// nextEventTime returns the earliest pending event time across all shards
// (a lower bound: the head event may be cancelled, which only makes the
// window conservative, never unsound).
func (e *ShardedEngine) nextEventTime() (Time, bool) {
	var min Time
	found := false
	for _, s := range e.shards {
		if at, ok := s.nextEventAt(); ok && (!found || at < min) {
			min, found = at, true
		}
	}
	return min, found
}

// window advances every shard to horizon w in parallel, then merges the
// cross-shard outboxes at the barrier and publishes w as the engine clock.
func (e *ShardedEngine) window(w Time) error {
	start := e.now
	errs := make([]error, len(e.shards))
	if len(e.shards) == 1 {
		errs[0] = e.shards[0].RunUntil(w)
	} else {
		var wg sync.WaitGroup
		for i, s := range e.shards {
			wg.Add(1)
			go func(i int, s *Simulator) {
				defer wg.Done()
				errs[i] = s.RunUntil(w)
			}(i, s)
		}
		wg.Wait()
	}
	e.now = w
	merged := e.mergeOutboxes()
	e.windows.Add(1)
	if e.windowObs != nil {
		e.windowObs(start, w, merged)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if e.stopReq.Load() {
		return ErrStopped
	}
	return nil
}

// mergedMsg is one cross-shard message staged for the barrier merge, carrying
// its deterministic sort coordinates.
type mergedMsg struct {
	at  Time
	key uint64
	seq int // send order within the edge's outbox
	c   *crossEngine
	msg crossMsg
}

// mergeOutboxes drains every cross edge's outbox into the destination shards
// in (timestamp, edge key, send order) order, returning how many messages it
// moved. The order the messages are *scheduled* in fixes their heap sequence
// numbers, so same-timestamp arrivals execute in this deterministic order
// regardless of which goroutine finished its window first.
func (e *ShardedEngine) mergeOutboxes() int {
	staged := e.scratch[:0]
	for _, c := range e.cross {
		for i, m := range c.buf {
			staged = append(staged, mergedMsg{at: m.at, key: c.key, seq: i, c: c, msg: m})
		}
	}
	if len(staged) == 0 {
		e.scratch = staged
		return 0
	}
	sort.Slice(staged, func(i, j int) bool {
		a, b := staged[i], staged[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.key != b.key {
			return a.key < b.key
		}
		return a.seq < b.seq
	})
	for _, m := range staged {
		e.shards[m.c.dst].ScheduleArgAt(m.at, m.msg.fn, m.msg.arg)
	}
	e.merged.Add(uint64(len(staged)))
	for _, c := range e.cross {
		for i := range c.buf {
			c.buf[i] = crossMsg{} // drop payload references, keep capacity
		}
		c.buf = c.buf[:0]
	}
	n := len(staged)
	for i := range staged {
		staged[i] = mergedMsg{}
	}
	e.scratch = staged[:0]
	return n
}

// Run executes events until every shard's queue (and every outbox) is empty
// or Stop is called.
func (e *ShardedEngine) Run() error {
	e.stopReq.Store(false)
	e.running = true
	for {
		nt, ok := e.nextEventTime()
		if !ok {
			return nil
		}
		w := Time(math.MaxInt64)
		if e.lookahead != noLookahead && w-nt > Time(e.lookahead-1) {
			w = nt + Time(e.lookahead-1)
		}
		if err := e.window(w); err != nil {
			return err
		}
	}
}

// RunUntil executes events until the engine-wide clock would pass t. After
// returning, Now() is exactly t (as with the serial engine, the clock is
// advanced to the limit even when the queues drain early).
func (e *ShardedEngine) RunUntil(t Time) error {
	e.stopReq.Store(false)
	e.running = true
	for {
		w := t
		if e.lookahead != noLookahead {
			if nt, ok := e.nextEventTime(); ok && nt < t && Duration(t-nt) > e.lookahead-1 {
				w = nt + Time(e.lookahead-1)
			}
		}
		if err := e.window(w); err != nil {
			return err
		}
		if w >= t {
			return nil
		}
	}
}

// RunFor executes events for d simulated time from the current clock.
func (e *ShardedEngine) RunFor(d Duration) error { return e.RunUntil(e.now.Add(d)) }

// crossMsg is one message staged in a cross edge's outbox.
type crossMsg struct {
	at  Time
	fn  ArgHandler
	arg any
}

// crossEngine is the restricted Engine handed out by Cross. It deliberately
// supports only the calls a delayed message channel makes, each pinned to
// the side of the edge it may run on:
//
//   - ScheduleArgAt runs on the source shard's loop (the sender's context)
//     and stages the delivery in the outbox; the arrival time must be at
//     least the registered minimum delay past the sender's clock;
//   - Now reports the source shard's clock — the sender's scheduling
//     reference, which is what the ScheduleArg wrapper adds the delay to.
//     Delivery handlers run on the destination shard and must read the
//     arrival time from their ArgHandler now argument, never from this
//     engine (so "send time = now − delay" holds at delivery);
//   - RNG is the edge's private stream, drawn from the sender's context.
//
// Everything else panics: a cross edge is a wire, not a scheduler.
type crossEngine struct {
	eng      *ShardedEngine
	src, dst int
	minDelay Duration
	key      uint64
	rng      *RNG
	buf      []crossMsg
}

// Now reports the source shard's clock (the sender's context). Delivery
// handlers must use their ArgHandler now argument instead.
func (c *crossEngine) Now() Time { return c.eng.shards[c.src].now }

// RNG returns the edge's private random stream (sender-side use only).
func (c *crossEngine) RNG() *RNG { return c.rng }

// ScheduleArgAt stages a delivery in the edge's outbox. It may only be
// called from the source shard's event loop, and the arrival time must be at
// least the registered minimum delay past the sender's clock — anything
// shorter would invalidate the lookahead the window barrier is built on.
func (c *crossEngine) ScheduleArgAt(at Time, fn ArgHandler, arg any) EventID {
	if delay := at.Sub(c.eng.shards[c.src].now); delay < c.minDelay {
		panic(fmt.Sprintf("sim: cross-shard send with delay %v below the registered minimum %v on edge %d->%d", delay, c.minDelay, c.src, c.dst))
	}
	c.buf = append(c.buf, crossMsg{at: at, fn: fn, arg: arg})
	// Cross-shard deliveries cannot be cancelled; the zero EventID's Cancel
	// is a documented no-op.
	return EventID{}
}

const errCrossEngine = "sim: cross-shard engine supports only Now, RNG and ScheduleArgAt"

func (c *crossEngine) Run() error          { panic(errCrossEngine) }
func (c *crossEngine) RunUntil(Time) error { panic(errCrossEngine) }
func (c *crossEngine) RunFor(Duration) error {
	panic(errCrossEngine)
}
func (c *crossEngine) Stop()            { panic(errCrossEngine) }
func (c *crossEngine) Executed() uint64 { panic(errCrossEngine) }
func (c *crossEngine) Pending() int     { panic(errCrossEngine) }
