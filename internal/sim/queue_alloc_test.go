package sim

import (
	"errors"
	"testing"
)

// bothQueues runs a subtest per queue discipline.
func bothQueues(t *testing.T, run func(t *testing.T, kind QueueKind)) {
	for _, kind := range []QueueKind{QueueHeap, QueueWheel} {
		t.Run(kind.String(), func(t *testing.T) { run(t, kind) })
	}
}

// TestTickerStopAfterEngineStop pins the repaired stop semantics on both
// disciplines: stopping a ticker after the engine has already halted must
// cancel the pending tick (no stale tick on the next run) and stay
// idempotent.
func TestTickerStopAfterEngineStop(t *testing.T) {
	bothQueues(t, func(t *testing.T, kind QueueKind) {
		s := NewWithQueue(1, kind)
		count := 0
		stop := Ticker(s, 10*Microsecond, func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
		if err := s.Run(); !errors.Is(err, ErrStopped) {
			t.Fatalf("Run returned %v, want ErrStopped", err)
		}
		if count != 3 {
			t.Fatalf("ticked %d times before stop, want 3", count)
		}
		// The rearmed tick is still pending; stopping now must cancel it.
		if s.Pending() != 1 {
			t.Fatalf("Pending() = %d after engine stop, want the rearmed tick", s.Pending())
		}
		stop()
		stop() // idempotent
		if err := s.RunFor(Second); err != nil {
			t.Fatalf("RunFor after stop: %v", err)
		}
		if count != 3 {
			t.Fatalf("stale tick fired after stop: count = %d, want 3", count)
		}
		if s.Pending() != 0 {
			t.Fatalf("Pending() = %d after drain, want 0", s.Pending())
		}
	})
}

// warmWheel drives a simulator through enough scheduling traffic that every
// reusable buffer (event pool, slots, ready run, overflow list) has grown to
// its steady-state size.
func warmSteadyState(s *Simulator) error {
	fn := func() {}
	for i := 0; i < 256; i++ {
		Schedule(s, Duration(i)*Microsecond, fn)
		// Far enough to exercise higher wheel levels and the cascade path.
		Schedule(s, Duration(i+1)*100*Millisecond, fn)
	}
	return s.Run()
}

// TestQueueScheduleSteadyStateAllocFree pins the insert→fire cycle at zero
// allocations on both disciplines — for the wheel that covers slot insert,
// cascade re-placement and the sorted ready run.
func TestQueueScheduleSteadyStateAllocFree(t *testing.T) {
	bothQueues(t, func(t *testing.T, kind QueueKind) {
		s := NewWithQueue(1, kind)
		if err := warmSteadyState(s); err != nil {
			t.Fatalf("warmup: %v", err)
		}
		fn := func() {}
		allocs := testing.AllocsPerRun(200, func() {
			// One near event (ready-run path) and one a few levels up
			// (cascade path on the wheel).
			Schedule(s, 10*Microsecond, fn)
			Schedule(s, 100*Millisecond, fn)
			if err := s.RunFor(Second); err != nil {
				t.Fatalf("RunFor: %v", err)
			}
		})
		if allocs != 0 {
			t.Fatalf("schedule+fire cycle allocated %v objects per run on %s, want 0", allocs, kind)
		}
	})
}

// TestQueueCancelSteadyStateAllocFree pins the insert→cancel→compact cycle at
// zero allocations on both disciplines.
func TestQueueCancelSteadyStateAllocFree(t *testing.T) {
	bothQueues(t, func(t *testing.T, kind QueueKind) {
		s := NewWithQueue(1, kind)
		if err := warmSteadyState(s); err != nil {
			t.Fatalf("warmup: %v", err)
		}
		fn := func() {}
		allocs := testing.AllocsPerRun(200, func() {
			id := Schedule(s, 10*Microsecond, fn)
			far := Schedule(s, 100*Millisecond, fn)
			id.Cancel()
			far.Cancel()
			if err := s.RunFor(Second); err != nil {
				t.Fatalf("RunFor: %v", err)
			}
		})
		if allocs != 0 {
			t.Fatalf("schedule+cancel cycle allocated %v objects per run on %s, want 0", allocs, kind)
		}
	})
}

// TestTickerSteadyStateAllocFree pins the self-rearming ticker at zero
// allocations per tick on both disciplines: no per-tick closure, no box.
func TestTickerSteadyStateAllocFree(t *testing.T) {
	bothQueues(t, func(t *testing.T, kind QueueKind) {
		s := NewWithQueue(1, kind)
		if err := warmSteadyState(s); err != nil {
			t.Fatalf("warmup: %v", err)
		}
		ticks := 0
		stop := Ticker(s, 10*Microsecond, func() { ticks++ })
		defer stop()
		if err := s.RunFor(Millisecond); err != nil {
			t.Fatalf("ticker warmup: %v", err)
		}
		allocs := testing.AllocsPerRun(200, func() {
			if err := s.RunFor(Millisecond); err != nil {
				t.Fatalf("RunFor: %v", err)
			}
		})
		if allocs != 0 {
			t.Fatalf("ticking allocated %v objects per run on %s, want 0", allocs, kind)
		}
		if ticks == 0 {
			t.Fatal("ticker never fired")
		}
	})
}
