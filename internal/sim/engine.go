package sim

import "fmt"

// Engine is the scheduling surface of a discrete-event simulation core. It
// is extracted from Simulator so that protocol entities (channels, EGP/MHP
// instances, traffic streams, tickers) can run unchanged on either the
// serial Simulator — still the default — or on one shard of a ShardedEngine,
// where every entity schedules against the event loop of the shard that owns
// its state.
//
// The interface keeps exactly one scheduling primitive, ScheduleArgAt: an
// argument-carrying callback at an absolute time. Everything else callers
// historically reached for — relative delays, parameterless handlers,
// periodic tickers — is a thin package-level wrapper (Schedule, ScheduleAt,
// ScheduleArg, Ticker) composed from it. One primitive means one code path
// to make deterministic, one to make fast, and one for restricted engines
// (the sharded engine's cross-shard edges) to gate.
//
// The contract every implementation honours:
//
//   - Events fire in nondecreasing (time, insertion order) within one
//     engine; ties are broken deterministically, and events sharing a
//     timestamp are dispatched as one batch in insertion order.
//   - Now() is the scheduling reference clock: the timestamp of the event
//     being executed while inside a callback on a local engine, and the
//     sender's clock on a cross-shard edge. Delivery callbacks should use
//     the now argument handed to the ArgHandler, which is the firing event's
//     timestamp on every engine.
//   - RNG() is the deterministic random source entities should draw from.
//     Entities that must stay reproducible independent of how the topology
//     is sharded are given a stream-pinned view via WithRNG.
type Engine interface {
	// Now returns the engine's scheduling reference clock (see above).
	Now() Time
	// RNG returns the engine's deterministic random source.
	RNG() *RNG
	// ScheduleArgAt registers fn to run at absolute time at with the given
	// argument; on local engines times in the past clamp to the present.
	// The returned EventID cancels the event (Cancel on the zero EventID is
	// a no-op; cross-shard deliveries return the zero EventID because they
	// cannot be cancelled once staged).
	ScheduleArgAt(at Time, fn ArgHandler, arg any) EventID
	// Run executes events until none remain or Stop is called.
	Run() error
	// RunUntil executes events until the clock would pass t.
	RunUntil(t Time) error
	// RunFor executes events for d simulated time from the current clock.
	RunFor(d Duration) error
	// Stop halts the run in progress.
	Stop()
	// Executed reports how many events have fired since construction.
	Executed() uint64
	// Pending reports how many events are scheduled and not yet fired.
	Pending() int
}

// Compile-time checks that every engine flavour satisfies the interface.
var (
	_ Engine = (*Simulator)(nil)
	_ Engine = (*ShardedEngine)(nil)
	_ Engine = (*rngEngine)(nil)
	_ Engine = (*crossEngine)(nil)
)

// runHandler is the trampoline that lets parameterless Handlers ride the
// canonical argument-carrying event: the handler itself is the argument.
// Func values are pointer-shaped, so boxing one into the arg interface does
// not allocate — Schedule/ScheduleAt cost exactly what ScheduleArg does.
func runHandler(_ Time, arg any) { arg.(Handler)() }

// Schedule registers fn to run after delay on e. A negative delay is treated
// as zero (the event runs at the current time, after already-queued events
// for the same instant).
func Schedule(e Engine, delay Duration, fn Handler) EventID {
	if delay < 0 {
		delay = 0
	}
	return e.ScheduleArgAt(e.Now().Add(delay), runHandler, fn)
}

// ScheduleAt registers fn to run at absolute time at on e. Times in the past
// are clamped to the present.
func ScheduleAt(e Engine, at Time, fn Handler) EventID {
	return e.ScheduleArgAt(at, runHandler, fn)
}

// ScheduleArg registers fn to run after delay with the given argument. It
// behaves exactly like Schedule but carries the argument in the pooled event
// itself, so callers with a long-lived handler avoid allocating a capturing
// closure per event. On a cross-shard edge the delay is measured from the
// sender's clock and must be at least the edge's registered minimum.
func ScheduleArg(e Engine, delay Duration, fn ArgHandler, arg any) EventID {
	if delay < 0 {
		delay = 0
	}
	return e.ScheduleArgAt(e.Now().Add(delay), fn, arg)
}

// tickerEvent is the self-rearming state behind Ticker: one struct per
// ticker, rescheduled in place by tickerFire, so steady-state ticking
// allocates nothing — no per-tick closure, no per-tick box.
type tickerEvent struct {
	eng     Engine
	period  Duration
	fn      Handler
	id      EventID
	stopped bool
}

// tickerFire runs one tick and rearms the ticker relative to the firing
// time, mirroring a chain of Schedule(period, ...) calls exactly.
func tickerFire(now Time, arg any) {
	t := arg.(*tickerEvent)
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped {
		t.id = t.eng.ScheduleArgAt(now.Add(t.period), tickerFire, t)
	}
}

// Ticker invokes fn every period on e until the returned stop function is
// called. The first invocation happens after one full period. Stopping is
// idempotent and cancels the pending tick, so a ticker stopped after the
// engine halted (mid-run Stop, or a RunUntil horizon) leaves no event
// behind — the next run will not fire a stale tick.
func Ticker(e Engine, period Duration, fn Handler) (stop func()) {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive ticker period %d", period))
	}
	t := &tickerEvent{eng: e, period: period, fn: fn}
	t.id = e.ScheduleArgAt(e.Now().Add(period), tickerFire, t)
	return func() {
		if t.stopped {
			return
		}
		t.stopped = true
		t.id.Cancel()
	}
}

// WithRNG returns a view of eng whose RNG() is the given stream instead of
// the engine's own. Scheduling, time and counters pass straight through.
//
// This is how per-entity random streams are pinned: a netsim link draws all
// of its randomness (channel loss, optical sampling, readout) from a stream
// derived from its stable link ID, so its trajectory is byte-identical no
// matter which shard — or how many shards — the topology is split into.
func WithRNG(eng Engine, rng *RNG) Engine {
	if rng == nil {
		panic("sim: WithRNG needs a non-nil RNG")
	}
	return &rngEngine{Engine: eng, rng: rng}
}

type rngEngine struct {
	Engine
	rng *RNG
}

func (e *rngEngine) RNG() *RNG { return e.rng }

// splitmix64 is the finalizer of the SplitMix64 generator: a bijective
// avalanche mix in which every input bit affects roughly half the output
// bits (the same derivation scheme internal/experiments uses for per-trial
// seeds).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// DeriveSeed chains the base seed with any number of stream coordinates
// through splitmix64, decorrelating nearby streams (unlike additive
// derivation, where (link 3, seed s) and (link 2, seed s+1) would collide).
// netsim uses it to give every link its own RNG stream keyed by the stable
// link ID.
func DeriveSeed(base int64, words ...uint64) int64 {
	h := splitmix64(uint64(base))
	for _, w := range words {
		h = splitmix64(h ^ w)
	}
	return int64(h)
}
