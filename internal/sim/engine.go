package sim

// Engine is the scheduling surface of a discrete-event simulation core. It
// is extracted from Simulator so that protocol entities (channels, EGP/MHP
// instances, traffic streams, tickers) can run unchanged on either the
// serial Simulator — still the default — or on one shard of a ShardedEngine,
// where every entity schedules against the event loop of the shard that owns
// its state.
//
// The contract every implementation honours:
//
//   - Events fire in nondecreasing (time, insertion order) within one
//     engine; ties are broken deterministically.
//   - Now() is the timestamp of the event being executed while inside a
//     callback, and the last reached barrier/run limit outside one.
//   - RNG() is the deterministic random source entities should draw from.
//     Entities that must stay reproducible independent of how the topology
//     is sharded are given a stream-pinned view via WithRNG.
type Engine interface {
	// Now returns the current simulated time.
	Now() Time
	// RNG returns the engine's deterministic random source.
	RNG() *RNG
	// Schedule registers fn to run after delay (negative delays clamp to 0).
	Schedule(delay Duration, fn Handler) EventID
	// ScheduleAt registers fn to run at an absolute time (past times clamp
	// to the present).
	ScheduleAt(at Time, fn Handler) EventID
	// ScheduleArg registers an argument-carrying event (see ArgHandler).
	ScheduleArg(delay Duration, fn ArgHandler, arg any) EventID
	// Ticker invokes fn every period until the returned stop function is
	// called or the simulation ends.
	Ticker(period Duration, fn Handler) (stop func())
	// Run executes events until none remain or Stop is called.
	Run() error
	// RunUntil executes events until the clock would pass t.
	RunUntil(t Time) error
	// RunFor executes events for d simulated time from the current clock.
	RunFor(d Duration) error
	// Stop halts the run in progress.
	Stop()
	// Executed reports how many events have fired since construction.
	Executed() uint64
	// Pending reports how many events are scheduled and not yet fired.
	Pending() int
}

// Compile-time checks that both engine flavours satisfy the interface.
var (
	_ Engine = (*Simulator)(nil)
	_ Engine = (*ShardedEngine)(nil)
	_ Engine = (*rngEngine)(nil)
	_ Engine = (*crossEngine)(nil)
)

// WithRNG returns a view of eng whose RNG() is the given stream instead of
// the engine's own. Scheduling, time and counters pass straight through.
//
// This is how per-entity random streams are pinned: a netsim link draws all
// of its randomness (channel loss, optical sampling, readout) from a stream
// derived from its stable link ID, so its trajectory is byte-identical no
// matter which shard — or how many shards — the topology is split into.
func WithRNG(eng Engine, rng *RNG) Engine {
	if rng == nil {
		panic("sim: WithRNG needs a non-nil RNG")
	}
	return &rngEngine{Engine: eng, rng: rng}
}

type rngEngine struct {
	Engine
	rng *RNG
}

func (e *rngEngine) RNG() *RNG { return e.rng }

// splitmix64 is the finalizer of the SplitMix64 generator: a bijective
// avalanche mix in which every input bit affects roughly half the output
// bits (the same derivation scheme internal/experiments uses for per-trial
// seeds).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// DeriveSeed chains the base seed with any number of stream coordinates
// through splitmix64, decorrelating nearby streams (unlike additive
// derivation, where (link 3, seed s) and (link 2, seed s+1) would collide).
// netsim uses it to give every link its own RNG stream keyed by the stable
// link ID.
func DeriveSeed(base int64, words ...uint64) int64 {
	h := splitmix64(uint64(base))
	for _, w := range words {
		h = splitmix64(h ^ w)
	}
	return int64(h)
}
