package sim

import "testing"

// TestCancelAfterFireIsNoOp cancels an event that already fired; the cancel
// must be harmless and the simulator must keep working.
func TestCancelAfterFireIsNoOp(t *testing.T) {
	s := New(1)
	fired := 0
	id := Schedule(s, 10, func() { fired++ })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	id.Cancel()
	id.Cancel()
	if fired != 1 {
		t.Fatalf("event fired %d times, want 1", fired)
	}
	Schedule(s, 10, func() { fired++ })
	if err := s.Run(); err != nil {
		t.Fatalf("Run after late cancel: %v", err)
	}
	if fired != 2 {
		t.Fatalf("simulator broken after late cancel: fired=%d", fired)
	}
}

// TestCancelZeroValueEventID checks the zero EventID is safe to cancel.
func TestCancelZeroValueEventID(t *testing.T) {
	var id EventID
	id.Cancel() // must not panic
}

// TestCancelPreservesTieOrdering cancels the middle of three events
// scheduled at the same instant; the survivors must still fire in insertion
// order.
func TestCancelPreservesTieOrdering(t *testing.T) {
	s := New(1)
	var order []int
	Schedule(s, 10, func() { order = append(order, 1) })
	mid := Schedule(s, 10, func() { order = append(order, 2) })
	Schedule(s, 10, func() { order = append(order, 3) })
	mid.Cancel()
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 3 {
		t.Fatalf("unexpected firing order %v", order)
	}
}

// TestCancelledEventStillCountsAsPendingUntilPopped documents that Cancel
// does not remove the event from the queue eagerly; it is discarded (without
// executing) when its time comes.
func TestCancelledEventStillCountsAsPendingUntilPopped(t *testing.T) {
	s := New(1)
	id := Schedule(s, 10, func() { t.Fatal("cancelled event executed") })
	id.Cancel()
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d immediately after cancel, want 1 (lazy removal)", s.Pending())
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d after run, want 0", s.Pending())
	}
	if s.Executed() != 0 {
		t.Fatalf("cancelled event counted as executed (%d)", s.Executed())
	}
}

// TestTickerStopBeforeFirstTick stops a ticker before any tick fires.
func TestTickerStopBeforeFirstTick(t *testing.T) {
	s := New(1)
	count := 0
	stop := Ticker(s, 10, func() { count++ })
	stop()
	if err := s.RunFor(100); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if count != 0 {
		t.Fatalf("stopped ticker still ticked %d times", count)
	}
}

// TestTickerStopIsIdempotentAcrossRuns stops a ticker between runs (from
// outside its own callback) and calls stop repeatedly.
func TestTickerStopIsIdempotentAcrossRuns(t *testing.T) {
	s := New(1)
	count := 0
	stop := Ticker(s, 10, func() { count++ })
	if err := s.RunFor(25); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if count != 2 {
		t.Fatalf("expected 2 ticks in 25ns at period 10, got %d", count)
	}
	stop()
	stop()
	if err := s.RunFor(100); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if count != 2 {
		t.Fatalf("ticks after stop: got %d, want 2", count)
	}
}

// TestTickerStopInsideCallbackCompletesCurrentTick checks that calling stop
// from within the callback lets the current invocation finish but prevents
// rescheduling.
func TestTickerStopInsideCallbackCompletesCurrentTick(t *testing.T) {
	s := New(1)
	count := 0
	ran := false
	var stop func()
	stop = Ticker(s, 10, func() {
		count++
		stop()
		ran = true // code after stop() still runs in the current tick
	})
	if err := s.RunFor(200); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if count != 1 || !ran {
		t.Fatalf("expected exactly 1 completed tick, got count=%d ran=%v", count, ran)
	}
}

// TestTickerNonPositivePeriodPanics documents the constructor contract.
func TestTickerNonPositivePeriodPanics(t *testing.T) {
	s := New(1)
	for _, period := range []Duration{0, -5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Ticker(%d) did not panic", period)
				}
			}()
			Ticker(s, period, func() {})
		}()
	}
}
