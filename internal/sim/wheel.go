package sim

import (
	"math/bits"
	"sort"
)

// wheelQueue is a hierarchical timing wheel: the O(1)-amortised event-queue
// discipline behind QueueWheel.
//
// Simulated time is bucketed into power-of-two granules of 2^wheelGranuleBits
// nanoseconds. Six levels of 256 slots each cover ever-coarser octets of the
// granule number; an event lives at the lowest level whose slot width still
// separates it from the cursor, and cascades down one or more levels as the
// cursor approaches. Events beyond the top level's span (about nine simulated
// years) wait in a plain overflow list that is re-distributed when the wheel
// drains down to it.
//
// Placement is by shared prefix, not by distance: an event's level is the
// highest granule octet in which it differs from the cursor. That makes every
// slot hold exactly one block of granules (no rotation aliasing), so a
// cascade always fully drains its slot and a level-0 slot always holds a
// single granule — which is what lets collection sort one slot and know it
// has the global (at, seq) minimum.
//
// Ordering parity with the heap discipline is exact, not approximate: peek
// returns the resident event with the smallest (at, seq) — including
// lazily-cancelled events — so the Simulator's execution order, counters and
// the sharded engine's window boundaries are byte-identical under either
// discipline. Collected events wait in a sorted ready run; events scheduled
// at or before the cursor (the common "fire this instant" case) insert into
// that run directly. All storage — slots, bitmaps, the ready run, the
// overflow list — is reused, so steady-state insert/cancel/tick allocate
// nothing.
const (
	// wheelGranuleBits sets the level-0 slot width: 2^10 = 1024 simulated
	// nanoseconds, finer than every periodic delay in the stack (the
	// shortest MHP cycle is ~10 µs) so regular ticks land in distinct slots.
	wheelGranuleBits = 10
	// wheelSlotBits sets the fan-out: 256 slots per level, one granule octet.
	wheelSlotBits = 8
	wheelSlots    = 1 << wheelSlotBits
	wheelSlotMask = wheelSlots - 1
	// wheelLevels is the hierarchy depth; six octets above the granule cover
	// 2^58 ns ≈ 9 simulated years before the overflow list takes over.
	wheelLevels = 6
	wheelWords  = wheelSlots / 64
)

type wheelQueue struct {
	// next is the cursor: the earliest granule not yet collected. Every
	// event resident in the slots or overflow has granule >= next; every
	// event in the ready run has granule < next.
	next int64
	// count is the total resident population (slots + overflow + uncollected
	// ready tail): the queue's len().
	count int
	// inWheel counts events currently linked into slots.
	inWheel int

	// slot holds intrusive singly-linked event lists (via event.next);
	// occupied mirrors which slots are non-empty, one bit per slot, so the
	// scan for the next event is a few word operations instead of a walk.
	slot     [wheelLevels][wheelSlots]*event
	occupied [wheelLevels][wheelWords]uint64

	// ready is the collected run, sorted ascending by (at, seq); readyPos is
	// the consumption cursor within it.
	ready    []*event
	readyPos int

	// overflow holds events beyond the top level's span.
	overflow []*event
}

func newWheelQueue() *wheelQueue { return &wheelQueue{} }

func (w *wheelQueue) len() int { return w.count }

func (w *wheelQueue) push(ev *event) {
	w.count++
	w.place(ev)
}

// place routes an event to the ready run, a wheel slot, or the overflow list.
// It does not touch count, so cascades and overflow drains can re-place
// already-counted events.
func (w *wheelQueue) place(ev *event) {
	g := int64(ev.at) >> wheelGranuleBits
	if g < w.next {
		// At or before the cursor (already-collected region): insert into
		// the sorted ready run directly.
		w.readyInsert(ev)
		return
	}
	d := uint64(g ^ w.next)
	l := 0
	if d != 0 {
		l = (bits.Len64(d)+7)/8 - 1
	}
	if l >= wheelLevels {
		w.overflow = append(w.overflow, ev)
		return
	}
	idx := (g >> (wheelSlotBits * l)) & wheelSlotMask
	ev.next = w.slot[l][idx]
	w.slot[l][idx] = ev
	w.occupied[l][idx>>6] |= 1 << (idx & 63)
	w.inWheel++
}

// readyInsert places ev into the uncollected portion of the sorted ready run,
// keeping (at, seq) order. The common case — the new event fires at or after
// everything already collected — appends in O(1).
func (w *wheelQueue) readyInsert(ev *event) {
	lo, hi := w.readyPos, len(w.ready)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		m := w.ready[mid]
		if m.at < ev.at || (m.at == ev.at && m.seq < ev.seq) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	w.ready = append(w.ready, nil)
	copy(w.ready[lo+1:], w.ready[lo:])
	w.ready[lo] = ev
}

func (w *wheelQueue) peek() *event {
	if w.readyPos < len(w.ready) {
		return w.ready[w.readyPos]
	}
	if !w.refill() {
		return nil
	}
	return w.ready[w.readyPos]
}

func (w *wheelQueue) pop() *event {
	ev := w.peek()
	if ev == nil {
		return nil
	}
	w.ready[w.readyPos] = nil
	w.readyPos++
	w.count--
	return ev
}

// refill advances the cursor to the next occupied granule and collects that
// granule's slot into the ready run, cascading higher levels down as their
// blocks are reached. Returns false when no events are resident anywhere.
func (w *wheelQueue) refill() bool {
	// The previous run is fully consumed; reset its storage for reuse.
	w.ready = w.ready[:0]
	w.readyPos = 0
	for {
		if w.inWheel == 0 {
			if len(w.overflow) == 0 {
				return false
			}
			w.reseedFromOverflow()
			continue
		}
		// Find, across all levels, the occupied slot whose granule block
		// starts earliest. Every resident event's granule is bounded below
		// by its own slot's block start, so the minimum block start is a
		// safe place to advance the cursor to. On a tie the higher level
		// wins: its slot must cascade (its events can precede the lower
		// level's) before the lower level's slot may be collected.
		bestG := int64(-1)
		bestL := -1
		for l := 0; l < wheelLevels; l++ {
			pos := int((w.next >> (wheelSlotBits * l)) & wheelSlotMask)
			s := nextSetBit(&w.occupied[l], pos)
			if s < 0 {
				continue
			}
			c := ((w.next>>(wheelSlotBits*l))&^wheelSlotMask | int64(s)) << (wheelSlotBits * l)
			if bestL < 0 || c <= bestG {
				bestG, bestL = c, l
			}
		}
		if bestL == 0 {
			// Collect: the level-0 slot holds exactly granule bestG.
			idx := bestG & wheelSlotMask
			ev := w.slot[0][idx]
			w.slot[0][idx] = nil
			w.occupied[0][idx>>6] &^= 1 << (idx & 63)
			for ev != nil {
				next := ev.next
				ev.next = nil
				w.inWheel--
				w.ready = append(w.ready, ev)
				ev = next
			}
			w.next = bestG + 1
			sort.Sort((*readyOrder)(w))
			return true
		}
		// Cascade: advance the cursor to the block start, detach the slot
		// and re-place its events — they all share the cursor's new prefix
		// above this level, so each lands at a strictly lower level.
		w.next = bestG
		idx := (bestG >> (wheelSlotBits * bestL)) & wheelSlotMask
		ev := w.slot[bestL][idx]
		w.slot[bestL][idx] = nil
		w.occupied[bestL][idx>>6] &^= 1 << (idx & 63)
		for ev != nil {
			next := ev.next
			ev.next = nil
			w.inWheel--
			w.place(ev)
			ev = next
		}
	}
}

// reseedFromOverflow jumps the cursor to the earliest overflow granule and
// re-distributes the overflow list into the wheel (events still beyond the
// top span simply land back in overflow).
func (w *wheelQueue) reseedFromOverflow() {
	min := int64(w.overflow[0].at) >> wheelGranuleBits
	for _, ev := range w.overflow[1:] {
		if g := int64(ev.at) >> wheelGranuleBits; g < min {
			min = g
		}
	}
	w.next = min
	pending := w.overflow
	w.overflow = w.overflow[:0]
	for i, ev := range pending {
		pending[i] = nil
		w.place(ev)
	}
}

// compact removes every cancelled resident event (ready tail, slots,
// overflow), recycling each, and reports how many were removed.
func (w *wheelQueue) compact(recycle func(*event)) int {
	removed := 0
	j := w.readyPos
	for i := w.readyPos; i < len(w.ready); i++ {
		ev := w.ready[i]
		if ev.canceled {
			recycle(ev)
			removed++
			continue
		}
		w.ready[j] = ev
		j++
	}
	for i := j; i < len(w.ready); i++ {
		w.ready[i] = nil
	}
	w.ready = w.ready[:j]
	for l := range w.slot {
		for idx := range w.slot[l] {
			pp := &w.slot[l][idx]
			for *pp != nil {
				ev := *pp
				if ev.canceled {
					*pp = ev.next
					recycle(ev)
					removed++
					w.inWheel--
					continue
				}
				pp = &ev.next
			}
			if w.slot[l][idx] == nil {
				w.occupied[l][idx>>6] &^= 1 << (idx & 63)
			}
		}
	}
	j = 0
	for _, ev := range w.overflow {
		if ev.canceled {
			recycle(ev)
			removed++
			continue
		}
		w.overflow[j] = ev
		j++
	}
	for i := j; i < len(w.overflow); i++ {
		w.overflow[i] = nil
	}
	w.overflow = w.overflow[:j]
	w.count -= removed
	return removed
}

// readyOrder sorts a wheelQueue's ready run by (at, seq). It is a view type
// so sorting needs no per-call allocation.
type readyOrder wheelQueue

func (r *readyOrder) Len() int { return len(r.ready) }
func (r *readyOrder) Less(i, j int) bool {
	a, b := r.ready[i], r.ready[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}
func (r *readyOrder) Swap(i, j int) { r.ready[i], r.ready[j] = r.ready[j], r.ready[i] }

// nextSetBit returns the lowest set bit index >= from in the 256-bit set, or
// -1 when none is set at or above from.
func nextSetBit(words *[wheelWords]uint64, from int) int {
	wi := from >> 6
	if first := words[wi] >> (from & 63); first != 0 {
		return from + bits.TrailingZeros64(first)
	}
	for wi++; wi < wheelWords; wi++ {
		if words[wi] != 0 {
			return wi<<6 + bits.TrailingZeros64(words[wi])
		}
	}
	return -1
}
