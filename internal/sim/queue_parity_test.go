package sim

import (
	"fmt"
	"testing"
)

// queueParityResult is everything observable about one workload run: the
// execution trace plus the final counter state. Heap and wheel runs of the
// same workload must produce identical values for every field.
type queueParityResult struct {
	trace           []string
	now             Time
	executed        uint64
	pending         int
	compactions     uint64
	canceledPending int
}

func runQueueWorkload(t *testing.T, kind QueueKind, load func(s *Simulator, emit func(string))) queueParityResult {
	t.Helper()
	s := NewWithQueue(1, kind)
	var trace []string
	load(s, func(tag string) {
		trace = append(trace, fmt.Sprintf("t=%d %s", s.Now(), tag))
	})
	return queueParityResult{
		trace:           trace,
		now:             s.Now(),
		executed:        s.Executed(),
		pending:         s.Pending(),
		compactions:     s.Compactions(),
		canceledPending: s.CanceledPending(),
	}
}

// TestQueueDisciplineParity runs adversarial scheduling patterns on the heap
// and the timing wheel and requires byte-identical traces and counters: the
// wheel is a drop-in discipline, not an approximation. Each workload drives
// the run itself (often in RunUntil stages, so clock-advance behaviour at
// drained horizons is compared too).
func TestQueueDisciplineParity(t *testing.T) {
	cases := []struct {
		name string
		load func(s *Simulator, emit func(string))
	}{
		{
			// Many events sharing exact timestamps, scheduled out of order,
			// with same-instant events added from inside the batch.
			name: "same-timestamp bursts",
			load: func(s *Simulator, emit func(string)) {
				base := Time(Millisecond)
				for i := 99; i >= 0; i-- {
					i := i
					at := base + Time(i%4)*Time(Microsecond)
					ScheduleAt(s, at, func() { emit(fmt.Sprintf("burst%d", i)) })
				}
				ScheduleAt(s, base, func() {
					for j := 0; j < 10; j++ {
						j := j
						// Same instant as the running batch: must fire after
						// the whole batch, in scheduling order.
						ScheduleAt(s, base, func() { emit(fmt.Sprintf("nested%d", j)) })
					}
				})
				if err := s.Run(); err != nil {
					t.Fatalf("Run: %v", err)
				}
			},
		},
		{
			// Delays spanning every wheel level and the overflow list, with a
			// dense cluster at a far horizon to force multi-level cascades,
			// and re-seeding from inside far-future handlers.
			name: "far-future overflow cascades",
			load: func(s *Simulator, emit func(string)) {
				for k := 0; k < 63; k += 3 {
					k := k
					Schedule(s, Duration(1)<<k, func() { emit(fmt.Sprintf("exp%d", k)) })
				}
				far := Duration(1) << 41
				for i := 0; i < 50; i++ {
					i := i
					Schedule(s, far+Duration(i)*Microsecond, func() {
						emit(fmt.Sprintf("cluster%d", i))
						if i%7 == 0 {
							Schedule(s, Duration(i+1)*Millisecond, func() { emit(fmt.Sprintf("reseed%d", i)) })
						}
					})
				}
				// Stage the run across horizons so drained-queue clock
				// advancement is exercised under both disciplines.
				for _, horizon := range []Time{Time(far / 2), Time(far * 2), Time(Duration(1) << 62)} {
					if err := s.RunUntil(horizon); err != nil {
						t.Fatalf("RunUntil(%d): %v", horizon, err)
					}
					emit("barrier")
				}
				if err := s.Run(); err != nil {
					t.Fatalf("Run: %v", err)
				}
			},
		},
		{
			// Heavy cancellation pressure in several patterns, enough churn
			// to trip threshold compaction under both disciplines.
			name: "cancel-heavy churn",
			load: func(s *Simulator, emit func(string)) {
				var ids []EventID
				for i := 0; i < 400; i++ {
					i := i
					ids = append(ids, Schedule(s, Duration(i)*Microsecond, func() { emit(fmt.Sprintf("a%d", i)) }))
				}
				for i, id := range ids {
					if i%3 != 0 {
						id.Cancel()
						id.Cancel() // double-cancel must be a no-op
					}
				}
				if err := s.RunFor(100 * Microsecond); err != nil {
					t.Fatalf("RunFor: %v", err)
				}
				emit(fmt.Sprintf("mid pending=%d", s.Pending()))
				// Second wave: cancel from inside handlers, including events
				// later in the same timestamp batch.
				var wave []EventID
				base := s.Now().Add(Millisecond)
				for i := 0; i < 200; i++ {
					i := i
					wave = append(wave, ScheduleAt(s, base, func() {
						emit(fmt.Sprintf("b%d", i))
						if i < len(wave)-1 {
							wave[len(wave)-1-i/2].Cancel()
						}
					}))
				}
				if err := s.Run(); err != nil {
					t.Fatalf("Run: %v", err)
				}
			},
		},
		{
			// Deterministic random soup: delays drawn from the engine RNG
			// across short, mid and far ranges with nested scheduling and
			// random cancels. Identical traces imply the RNG draw order —
			// hence the execution order — never diverged.
			name: "random soup",
			load: func(s *Simulator, emit func(string)) {
				spawned := 0
				var spawn func()
				spawn = func() {
					if spawned >= 3000 {
						return
					}
					spawned++
					n := spawned
					exp := s.RNG().Intn(40)
					id := Schedule(s, Duration(1)<<exp+Duration(s.RNG().Intn(1000)), func() {
						emit(fmt.Sprintf("s%d", n))
						spawn()
						spawn()
					})
					if s.RNG().Float64() < 0.25 {
						id.Cancel()
					}
				}
				for i := 0; i < 8; i++ {
					spawn()
				}
				if err := s.Run(); err != nil {
					t.Fatalf("Run: %v", err)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			heap := runQueueWorkload(t, QueueHeap, tc.load)
			wheel := runQueueWorkload(t, QueueWheel, tc.load)
			if len(heap.trace) != len(wheel.trace) {
				t.Fatalf("trace lengths differ: heap %d, wheel %d", len(heap.trace), len(wheel.trace))
			}
			for i := range heap.trace {
				if heap.trace[i] != wheel.trace[i] {
					t.Fatalf("trace entry %d differs:\n  heap:  %s\n  wheel: %s", i, heap.trace[i], wheel.trace[i])
				}
			}
			if heap.now != wheel.now {
				t.Errorf("final Now(): heap %d, wheel %d", heap.now, wheel.now)
			}
			if heap.executed != wheel.executed {
				t.Errorf("Executed(): heap %d, wheel %d", heap.executed, wheel.executed)
			}
			if heap.pending != wheel.pending {
				t.Errorf("Pending(): heap %d, wheel %d", heap.pending, wheel.pending)
			}
			if heap.compactions != wheel.compactions {
				t.Errorf("Compactions(): heap %d, wheel %d", heap.compactions, wheel.compactions)
			}
			if heap.canceledPending != wheel.canceledPending {
				t.Errorf("CanceledPending(): heap %d, wheel %d", heap.canceledPending, wheel.canceledPending)
			}
		})
	}
}

// TestParseQueue pins the accepted spellings and the error path of the
// QueueKind surface.
func TestParseQueue(t *testing.T) {
	ok := map[string]QueueKind{
		"":             QueueHeap,
		"heap":         QueueHeap,
		"wheel":        QueueWheel,
		"timing-wheel": QueueWheel,
		"timingwheel":  QueueWheel,
	}
	for in, want := range ok {
		got, err := ParseQueue(in)
		if err != nil || got != want {
			t.Errorf("ParseQueue(%q) = %v, %v; want %v, nil", in, got, err, want)
		}
	}
	if _, err := ParseQueue("splay"); err == nil {
		t.Error("ParseQueue accepted an unknown discipline")
	}
	if QueueHeap.String() != "heap" || QueueWheel.String() != "wheel" {
		t.Errorf("String(): %q / %q", QueueHeap.String(), QueueWheel.String())
	}
}
