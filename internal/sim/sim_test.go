package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	s := New(1)
	var order []int
	Schedule(s, 30, func() { order = append(order, 3) })
	Schedule(s, 10, func() { order = append(order, 1) })
	Schedule(s, 20, func() { order = append(order, 2) })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if s.Now() != 30 {
		t.Fatalf("clock should end at 30, got %v", s.Now())
	}
}

func TestScheduleTieBreakInsertionOrder(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		Schedule(s, 5, func() { order = append(order, i) })
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break order violated at %d: %v", i, order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	fired := 0
	Schedule(s, 10, func() {
		fired++
		Schedule(s, 5, func() { fired++ })
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != 2 {
		t.Fatalf("expected 2 events, got %d", fired)
	}
	if s.Now() != 15 {
		t.Fatalf("expected clock 15, got %v", s.Now())
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := New(1)
	fired := false
	Schedule(s, 100, func() { fired = true })
	if err := s.RunUntil(50); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if fired {
		t.Fatal("event at t=100 should not fire before t=50")
	}
	if s.Now() != 50 {
		t.Fatalf("clock should advance to limit, got %v", s.Now())
	}
	if err := s.RunUntil(200); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if !fired {
		t.Fatal("event at t=100 should fire by t=200")
	}
	if s.Now() != 200 {
		t.Fatalf("clock should be 200, got %v", s.Now())
	}
}

func TestRunForRelative(t *testing.T) {
	s := New(1)
	count := 0
	Ticker(s, 10, func() { count++ })
	if err := s.RunFor(100); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if count != 10 {
		t.Fatalf("expected 10 ticks in 100ns at period 10, got %d", count)
	}
	if err := s.RunFor(50); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if count != 15 {
		t.Fatalf("expected 15 ticks total, got %d", count)
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	id := Schedule(s, 10, func() { fired = true })
	id.Cancel()
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestStop(t *testing.T) {
	s := New(1)
	count := 0
	Ticker(s, 1, func() {
		count++
		if count == 5 {
			s.Stop()
		}
	})
	if err := s.Run(); err != ErrStopped {
		t.Fatalf("expected ErrStopped, got %v", err)
	}
	if count != 5 {
		t.Fatalf("expected to stop after 5 events, got %d", count)
	}
}

func TestTickerStop(t *testing.T) {
	s := New(1)
	count := 0
	var stop func()
	stop = Ticker(s, 10, func() {
		count++
		if count == 3 {
			stop()
		}
	})
	if err := s.RunFor(1000); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if count != 3 {
		t.Fatalf("ticker should have stopped after 3 ticks, got %d", count)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	s := New(1)
	fired := false
	Schedule(s, -5, func() { fired = true })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !fired || s.Now() != 0 {
		t.Fatalf("negative delay should fire at t=0; fired=%v now=%v", fired, s.Now())
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func(seed int64) []float64 {
		s := New(seed)
		var samples []float64
		Ticker(s, 10, func() { samples = append(samples, s.RNG().Float64()) })
		_ = s.RunFor(1000)
		return samples
	}
	a := run(42)
	b := run(42)
	c := run(43)
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("unequal sample counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestDurationHelpers(t *testing.T) {
	if DurationSeconds(1.5) != Duration(1_500_000_000) {
		t.Fatalf("DurationSeconds wrong: %d", DurationSeconds(1.5))
	}
	if DurationMicroseconds(10.12) != Duration(10_120) {
		t.Fatalf("DurationMicroseconds wrong: %d", DurationMicroseconds(10.12))
	}
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Fatalf("Seconds wrong: %v", got)
	}
	if got := Time(3 * Second).Seconds(); got != 3.0 {
		t.Fatalf("Time.Seconds wrong: %v", got)
	}
	if Time(100).Add(50) != Time(150) {
		t.Fatal("Add wrong")
	}
	if Time(150).Sub(Time(100)) != Duration(50) {
		t.Fatal("Sub wrong")
	}
}

func TestBernoulliEdges(t *testing.T) {
	g := NewRNG(7)
	for i := 0; i < 100; i++ {
		if g.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !g.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	g := NewRNG(7)
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if g.Bernoulli(0.3) {
			hits++
		}
	}
	freq := float64(hits) / n
	if math.Abs(freq-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency off: %v", freq)
	}
}

func TestPoissonMean(t *testing.T) {
	g := NewRNG(11)
	for _, mean := range []float64{0.5, 3, 50} {
		const n = 20000
		sum := 0
		for i := 0; i < n; i++ {
			sum += g.Poisson(mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > 0.1*mean+0.05 {
			t.Fatalf("Poisson(%v) mean off: %v", mean, got)
		}
	}
	if g.Poisson(0) != 0 || g.Poisson(-1) != 0 {
		t.Fatal("Poisson of non-positive mean should be 0")
	}
}

func TestExponentialMean(t *testing.T) {
	g := NewRNG(13)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += g.Exponential(2.0)
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Exponential(2) mean off: %v", mean)
	}
}

func TestChoiceWeighted(t *testing.T) {
	g := NewRNG(17)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[g.Choice(weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index selected %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.2 {
		t.Fatalf("weight ratio off: %v", ratio)
	}
	if g.Choice([]float64{0, 0}) != 0 {
		t.Fatal("all-zero weights should return index 0")
	}
}

func TestEventCountTracking(t *testing.T) {
	s := New(1)
	for i := 0; i < 5; i++ {
		Schedule(s, Duration(i), func() {})
	}
	if s.Pending() != 5 {
		t.Fatalf("Pending = %d, want 5", s.Pending())
	}
	_ = s.Run()
	if s.Executed() != 5 {
		t.Fatalf("Executed = %d, want 5", s.Executed())
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending after run = %d, want 0", s.Pending())
	}
}

// Property: for any set of non-negative delays, events fire in non-decreasing
// time order and the clock ends at the maximum delay.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		s := New(99)
		var fireTimes []Time
		var maxDelay Duration
		for _, d := range delays {
			dur := Duration(d)
			if dur > maxDelay {
				maxDelay = dur
			}
			Schedule(s, dur, func() { fireTimes = append(fireTimes, s.Now()) })
		}
		if err := s.Run(); err != nil {
			return false
		}
		for i := 1; i < len(fireTimes); i++ {
			if fireTimes[i] < fireTimes[i-1] {
				return false
			}
		}
		return s.Now() == Time(maxDelay) && len(fireTimes) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Poisson samples are never negative and Bernoulli respects bounds.
func TestPropertyRNGBounds(t *testing.T) {
	g := NewRNG(3)
	f := func(mean float64, p float64) bool {
		mean = math.Mod(math.Abs(mean), 100)
		p = math.Mod(math.Abs(p), 1)
		if g.Poisson(mean) < 0 {
			return false
		}
		v := g.Float64()
		return v >= 0 && v < 1 && (p != 0 || !g.Bernoulli(p))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
