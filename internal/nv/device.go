package nv

import (
	"errors"
	"fmt"

	"repro/internal/quantum"
	"repro/internal/sim"
)

// QubitKind distinguishes the optically active communication qubit
// (electron spin) from storage qubits (carbon-13 nuclear spins).
type QubitKind int

// Qubit kinds on the NV platform.
const (
	CommunicationQubit QubitKind = iota
	MemoryQubit
)

// String renders the kind.
func (k QubitKind) String() string {
	if k == CommunicationQubit {
		return "communication"
	}
	return "memory"
}

// QubitID addresses a physical qubit inside one device: 0 is the
// communication qubit, 1..MemoryQubits are carbon memory qubits.
type QubitID int

// CommQubitID is the identifier of the single communication qubit.
const CommQubitID QubitID = 0

// Errors returned by device operations.
var (
	ErrQubitBusy     = errors.New("nv: qubit already holds entanglement")
	ErrQubitFree     = errors.New("nv: qubit does not hold entanglement")
	ErrNoSuchQubit   = errors.New("nv: no such qubit")
	ErrCommBusy      = errors.New("nv: communication qubit busy")
	ErrMoveNeedsComm = errors.New("nv: move-to-memory requires the pair to be in the communication qubit")
)

// PairSide says which end of an entangled pair a device holds.
type PairSide int

// Pair sides; SideA is qubit 0 of the joint state, SideB qubit 1.
const (
	SideA PairSide = iota
	SideB
)

// EntangledPair is the shared representation of one entangled link: the
// joint two-qubit pair state — dense density matrix or Bell-diagonal fast
// path, behind the quantum.PairState interface — plus per-side bookkeeping
// of where the qubit is stored and when decoherence was last applied.
type EntangledPair struct {
	State      quantum.PairState // qubit 0 = side A, qubit 1 = side B
	CreatedAt  sim.Time
	HeraldedAs quantum.BellState // the Bell state announced by the midpoint (after any correction)
	// DeliveredFidelity caches the fidelity of the pair at the moment the
	// first node delivered it to its higher layer, before any destructive
	// measurement collapsed the joint state. Zero means "not yet recorded".
	DeliveredFidelity float64

	kind       [2]QubitKind
	qubit      [2]QubitID
	lastUpdate [2]sim.Time
}

// NewEntangledPair wraps a freshly heralded two-qubit state. Both sides
// start in their communication qubits.
func NewEntangledPair(state quantum.PairState, heralded quantum.BellState, now sim.Time) *EntangledPair {
	if d := state.Dense(); d != nil && d.NumQubits() != 2 {
		panic("nv: entangled pair must be a two-qubit state")
	}
	p := &EntangledPair{State: state, CreatedAt: now, HeraldedAs: heralded}
	for s := 0; s < 2; s++ {
		p.kind[s] = CommunicationQubit
		p.qubit[s] = CommQubitID
		p.lastUpdate[s] = now
	}
	return p
}

// Kind returns which kind of qubit currently stores the given side.
func (p *EntangledPair) Kind(side PairSide) QubitKind { return p.kind[side] }

// Qubit returns the physical qubit ID storing the given side.
func (p *EntangledPair) Qubit(side PairSide) QubitID { return p.qubit[side] }

// Fidelity returns the current fidelity with the heralded Bell state.
func (p *EntangledPair) Fidelity() float64 { return p.State.BellFidelity(p.HeraldedAs) }

// NewSwappedPair builds the end-to-end pair produced by an entanglement
// swap: the post-measurement state of the two far qubits (left's far qubit is
// side A, right's far qubit side B), with each side inheriting the storage
// bookkeeping — qubit kind, physical qubit and decoherence clock — of the
// input pair it came from. The swapping node's callers release the two
// consumed middle qubits and Rebind the far devices onto the returned pair.
func NewSwappedPair(state quantum.PairState, heralded quantum.BellState, left *EntangledPair, leftFar PairSide, right *EntangledPair, rightFar PairSide, now sim.Time) *EntangledPair {
	if d := state.Dense(); d != nil && d.NumQubits() != 2 {
		panic("nv: swapped pair must be a two-qubit state")
	}
	p := &EntangledPair{State: state, CreatedAt: now, HeraldedAs: heralded}
	p.kind[SideA] = left.kind[leftFar]
	p.qubit[SideA] = left.qubit[leftFar]
	p.lastUpdate[SideA] = left.lastUpdate[leftFar]
	p.kind[SideB] = right.kind[rightFar]
	p.qubit[SideB] = right.qubit[rightFar]
	p.lastUpdate[SideB] = right.lastUpdate[rightFar]
	return p
}

// Device models one NV node's quantum processing unit: a single
// communication qubit plus a small number of carbon memory qubits, with the
// noisy gate set and decoherence model of the paper's appendix.
type Device struct {
	Name     string
	Gates    GateSet
	Coupling CarbonCoupling

	memorySlots int
	// occupied maps qubit IDs to the pair stored there (nil when free).
	occupied map[QubitID]*EntangledPair
	// side maps qubit IDs to which side of the pair this device holds.
	side map[QubitID]PairSide

	// uBuf is the reusable readout-draw buffer of Measure: drawing through
	// the batch interface keeps the uniform stream identical to
	// one-at-a-time draws while avoiding a per-readout interface call and
	// any buffer escape (mirroring photonics.LinkSampler.Sample).
	uBuf [1]float64

	// pdAlpha/pdCached memoise Coupling.DephasingPerAttempt for the most
	// recent bright-state population: ApplyAttemptDephasing runs once per
	// entanglement attempt and α changes only when the link retargets a
	// different fidelity, so the exp() inside Eq. (25) is almost always
	// redundant.
	pdAlpha  float64
	pdCached float64
	pdValid  bool
}

// NewDevice creates a device with the given number of memory qubits.
func NewDevice(name string, gates GateSet, coupling CarbonCoupling, memoryQubits int) *Device {
	if memoryQubits < 0 {
		panic("nv: negative memory qubit count")
	}
	return &Device{
		Name:        name,
		Gates:       gates,
		Coupling:    coupling,
		memorySlots: memoryQubits,
		occupied:    make(map[QubitID]*EntangledPair),
		side:        make(map[QubitID]PairSide),
	}
}

// MemoryQubits returns the number of carbon memory qubits.
func (d *Device) MemoryQubits() int { return d.memorySlots }

// CommFree reports whether the communication qubit is available.
func (d *Device) CommFree() bool { return d.occupied[CommQubitID] == nil }

// FreeMemoryQubit returns a free memory qubit ID, or false when all are
// occupied.
func (d *Device) FreeMemoryQubit() (QubitID, bool) {
	for i := 1; i <= d.memorySlots; i++ {
		if d.occupied[QubitID(i)] == nil {
			return QubitID(i), true
		}
	}
	return 0, false
}

// FreeMemoryCount returns how many memory qubits are currently unoccupied.
func (d *Device) FreeMemoryCount() int {
	n := 0
	for i := 1; i <= d.memorySlots; i++ {
		if d.occupied[QubitID(i)] == nil {
			n++
		}
	}
	return n
}

// PairAt returns the pair stored in the given qubit, or nil.
func (d *Device) PairAt(q QubitID) *EntangledPair { return d.occupied[q] }

// validQubit checks that q addresses an existing qubit.
func (d *Device) validQubit(q QubitID) error {
	if q == CommQubitID {
		return nil
	}
	if q >= 1 && int(q) <= d.memorySlots {
		return nil
	}
	return fmt.Errorf("%w: %d on %s", ErrNoSuchQubit, q, d.Name)
}

// StorePair records that this device holds the given side of a freshly
// generated pair in its communication qubit.
func (d *Device) StorePair(pair *EntangledPair, side PairSide) error {
	if !d.CommFree() {
		return ErrCommBusy
	}
	d.occupied[CommQubitID] = pair
	d.side[CommQubitID] = side
	pair.kind[side] = CommunicationQubit
	pair.qubit[side] = CommQubitID
	return nil
}

// Release frees the qubit holding the pair on this device (after the pair
// was measured, expired or consumed by a higher layer).
func (d *Device) Release(pair *EntangledPair) {
	for q, p := range d.occupied {
		if p == pair {
			delete(d.occupied, q)
			delete(d.side, q)
			return
		}
	}
}

// Rebind repoints the qubit slot holding old at a replacement pair, keeping
// the physical qubit occupied: after an entanglement swap elsewhere in the
// network, the qubit this device stores is unchanged physically but now
// belongs to the composed end-to-end pair. It returns ErrQubitFree when this
// device does not hold old.
func (d *Device) Rebind(old, replacement *EntangledPair, side PairSide) error {
	for q, p := range d.occupied {
		if p == old {
			d.occupied[q] = replacement
			d.side[q] = side
			return nil
		}
	}
	return ErrQubitFree
}

// ReleaseAll frees every qubit (used on expiry of whole requests).
func (d *Device) ReleaseAll() {
	d.occupied = make(map[QubitID]*EntangledPair)
	d.side = make(map[QubitID]PairSide)
}

// OccupiedPairs returns every pair currently stored on this device.
func (d *Device) OccupiedPairs() []*EntangledPair {
	var out []*EntangledPair
	for i := 0; i <= d.memorySlots; i++ {
		if p := d.occupied[QubitID(i)]; p != nil {
			out = append(out, p)
		}
	}
	return out
}

// memoryParams returns the T1/T2 parameters of a qubit kind.
func (d *Device) memoryParams(kind QubitKind) quantum.T1T2Params {
	if kind == CommunicationQubit {
		return d.Gates.ElectronT1T2()
	}
	return d.Gates.CarbonT1T2()
}

// ApplyDecoherence advances the decoherence clock of this device's side of
// the pair to now, applying the appropriate T1/T2 noise for where the qubit
// is stored.
func (d *Device) ApplyDecoherence(pair *EntangledPair, side PairSide, now sim.Time) {
	last := pair.lastUpdate[side]
	if now <= last {
		return
	}
	elapsed := now.Sub(last).Seconds()
	pair.State.ApplyMemoryNoise(int(side), elapsed, d.memoryParams(pair.kind[side]))
	pair.lastUpdate[side] = now
}

// ApplyAttemptDephasing applies the nuclear-spin dephasing caused by one
// entanglement generation attempt with bright-state population alpha to
// every pair stored in a carbon memory qubit of this device (Appendix
// D.4.1). It runs once per attempt, so it scans the (few) memory slots
// directly instead of iterating the occupied map and only evaluates the
// per-attempt probability once a stored pair is actually found.
func (d *Device) ApplyAttemptDephasing(alpha float64) {
	pd := -1.0
	for i := 1; i <= d.memorySlots; i++ {
		q := QubitID(i)
		pair := d.occupied[q]
		if pair == nil {
			continue
		}
		side := d.side[q]
		if pair.kind[side] != MemoryQubit {
			continue
		}
		if pd < 0 {
			pd = d.dephasingPerAttempt(alpha)
			if pd <= 0 {
				return
			}
		}
		pair.State.ApplyDephasing(int(side), pd)
	}
}

// dephasingPerAttempt memoises Eq. (25) for the current α.
func (d *Device) dephasingPerAttempt(alpha float64) float64 {
	if !d.pdValid || d.pdAlpha != alpha {
		d.pdCached = d.Coupling.DephasingPerAttempt(alpha)
		d.pdAlpha = alpha
		d.pdValid = true
	}
	return d.pdCached
}

// ApplyCorrection applies the local gate converting the heralded |Ψ−⟩ into
// |Ψ+⟩ (a Z on this device's qubit, Eq. 13) with the single-qubit gate
// noise, and updates the pair's heralded label.
func (d *Device) ApplyCorrection(pair *EntangledPair, side PairSide) {
	pair.State.ApplyPauli(int(side), quantum.OpZ)
	if f := d.Gates.ElectronSingleQubit.Fidelity; f < 1 {
		pair.State.ApplyDephasing(int(side), 1-f)
	}
	pair.HeraldedAs = quantum.PsiPlus
}

// MoveToMemory transfers this device's side of the pair from the
// communication qubit to the given memory qubit, applying the composite
// gate noise and duration of the swap (Appendix D.3.3). The caller is
// responsible for advancing simulated time by Gates.MoveToCarbon.Duration.
func (d *Device) MoveToMemory(pair *EntangledPair, side PairSide, target QubitID, now sim.Time) error {
	if err := d.validQubit(target); err != nil {
		return err
	}
	if target == CommQubitID {
		return fmt.Errorf("nv: move target must be a memory qubit")
	}
	if d.occupied[CommQubitID] != pair || pair.kind[side] != CommunicationQubit {
		return ErrMoveNeedsComm
	}
	if d.occupied[target] != nil {
		return ErrQubitBusy
	}
	// Decohere up to the start of the move. The move itself is performed
	// under dynamical decoupling (Appendix D.2.2), so the electron is
	// protected during the pulse sequence and the only cost is the composite
	// gate fidelity of Table 6 — applying raw T2 decay on top would double
	// count the noise already captured by that fidelity.
	d.ApplyDecoherence(pair, side, now)
	moveEnd := now.Add(d.Gates.MoveToCarbon.Duration)
	if f := d.Gates.MoveToCarbon.Fidelity; f < 1 {
		pair.State.ApplyDephasing(int(side), 1-f)
	}
	pair.lastUpdate[side] = moveEnd

	delete(d.occupied, CommQubitID)
	delete(d.side, CommQubitID)
	d.occupied[target] = pair
	d.side[target] = side
	pair.kind[side] = MemoryQubit
	pair.qubit[side] = target
	return nil
}

// ReadoutResult is the outcome of measuring one side of a pair.
type ReadoutResult struct {
	Outcome int // 0 or 1
	Basis   quantum.BasisLabel
}

// batchRandomSource is the optional fast path of the rng parameter of
// Measure: sources that can hand out several uniforms at once (sim.RNG does)
// let the readout draw land in a persistent buffer instead of returning
// through an interface call per readout.
type batchRandomSource interface {
	Float64Batch(dst []float64)
}

// Measure performs a destructive measurement of this device's side of the
// pair in the given basis, applying decoherence up to now, the basis
// rotation (with single-qubit gate noise) and the asymmetric readout POVM of
// Appendix D.3.4 — all through the pair's backend. The pair is released from
// the device afterwards. The readout consumes exactly one uniform sample,
// drawn through the batch interface when available so the stream matches
// one-at-a-time draws.
func (d *Device) Measure(pair *EntangledPair, side PairSide, basis quantum.BasisLabel, now sim.Time, rng interface{ Float64() float64 }) ReadoutResult {
	d.ApplyDecoherence(pair, side, now)
	u := &d.uBuf
	if batch, ok := rng.(batchRandomSource); ok {
		batch.Float64Batch(u[:])
	} else {
		u[0] = rng.Float64()
	}
	ro := d.Gates.ElectronReadout
	outcome := pair.State.Readout(int(side), basis,
		d.Gates.ElectronSingleQubit.Fidelity, ro.Fidelity0, ro.Fidelity1, u[0])
	d.Release(pair)
	return ReadoutResult{Outcome: outcome, Basis: basis}
}
