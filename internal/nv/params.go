// Package nv models the Nitrogen-Vacancy centre platform used by the paper:
// a communication qubit (electron spin) with an optical interface plus a
// memory qubit (carbon-13 nuclear spin), the noisy gate set of Appendix
// Table 6, the decoherence and dephasing mechanisms of Appendix D, and the
// timing parameters of the Lab and QL2020 scenarios of Section 4.4.
package nv

import (
	"math"

	"repro/internal/photonics"
	"repro/internal/quantum"
	"repro/internal/sim"
)

// GateSpec describes one native operation: its duration and fidelity (the
// dephasing/depolarising strength applied after the perfect gate, Appendix
// D.3.1).
type GateSpec struct {
	Duration sim.Duration
	Fidelity float64
}

// GateSet is the NV gate/coherence parameter table (Appendix Table 6),
// expressed in simulation units.
type GateSet struct {
	// Coherence times (seconds).
	ElectronT1 float64
	ElectronT2 float64
	CarbonT1   float64
	CarbonT2   float64

	// Native operations.
	ElectronSingleQubit GateSpec // 5 ns, F=1.0
	ECControlledSqrtX   GateSpec // 500 µs, F=0.992
	CarbonRotZ          GateSpec // 20 µs, F=0.999
	ElectronInit        GateSpec // 2 µs, F=0.95
	CarbonInit          GateSpec // 310 µs, F=0.95
	ElectronReadout     ReadoutSpec
	// MoveToCarbon is the composite swap of the electron state onto the
	// carbon: two E-C controlled-√X gates plus single-qubit gates
	// (1040 µs total, Appendix D.3.3).
	MoveToCarbon GateSpec
}

// ReadoutSpec captures the asymmetric electron readout noise: the fidelity
// of declaring |0⟩ and |1⟩ correctly, plus the readout duration.
type ReadoutSpec struct {
	Duration  sim.Duration
	Fidelity0 float64 // 0.95
	Fidelity1 float64 // 0.995
}

// DefaultGateSet returns the values used in the paper's simulation
// (Appendix Table 6, "Duration/time" and "(Unsquared) fidelity" columns).
func DefaultGateSet() GateSet {
	return GateSet{
		ElectronT1: 2.86e-3,
		ElectronT2: 1.00e-3,
		CarbonT1:   math.Inf(1),
		CarbonT2:   3.5e-3,

		ElectronSingleQubit: GateSpec{Duration: 5 * sim.Nanosecond, Fidelity: 1.0},
		ECControlledSqrtX:   GateSpec{Duration: 500 * sim.Microsecond, Fidelity: 0.992},
		CarbonRotZ:          GateSpec{Duration: 20 * sim.Microsecond, Fidelity: 0.999},
		ElectronInit:        GateSpec{Duration: 2 * sim.Microsecond, Fidelity: 0.95},
		CarbonInit:          GateSpec{Duration: 310 * sim.Microsecond, Fidelity: 0.95},
		ElectronReadout: ReadoutSpec{
			Duration:  sim.DurationMicroseconds(3.7),
			Fidelity0: 0.95,
			Fidelity1: 0.995,
		},
		MoveToCarbon: GateSpec{Duration: 1040 * sim.Microsecond, Fidelity: 0.992 * 0.992},
	}
}

// ElectronT1T2 returns the electron coherence parameters in the form used by
// the quantum package.
func (g GateSet) ElectronT1T2() quantum.T1T2Params {
	return quantum.T1T2Params{T1: g.ElectronT1, T2: g.ElectronT2}
}

// CarbonT1T2 returns the carbon coherence parameters.
func (g GateSet) CarbonT1T2() quantum.T1T2Params {
	return quantum.T1T2Params{T1: g.CarbonT1, T2: g.CarbonT2}
}

// CarbonCoupling captures the parameters of the nuclear-spin dephasing
// mechanism during entanglement attempts (Appendix D.4.1, values for spin C1).
type CarbonCoupling struct {
	DeltaOmega float64 // coupling strength, rad/s (2π·377 kHz)
	TauD       float64 // decay constant, s (82 ns)
}

// DefaultCarbonCoupling returns the paper's C1 values.
func DefaultCarbonCoupling() CarbonCoupling {
	return CarbonCoupling{DeltaOmega: 2 * math.Pi * 377e3, TauD: 82e-9}
}

// DephasingPerAttempt returns Eq. (25) for a given bright-state population.
func (c CarbonCoupling) DephasingPerAttempt(alpha float64) float64 {
	return quantum.NuclearDephasingPerAttempt(alpha, c.DeltaOmega, c.TauD)
}

// RequestType distinguishes create-and-keep (K) from create-and-measure (M)
// requests; the platform timing differs between the two (Section 4.4).
type RequestType int

// The two request types of the CREATE interface.
const (
	RequestKeep    RequestType = iota // K: store the entangled qubit
	RequestMeasure                    // M: measure the communication qubit immediately
)

// String renders the request type as in the paper.
func (r RequestType) String() string {
	if r == RequestKeep {
		return "K"
	}
	return "M"
}

// ScenarioID names the two physical setups evaluated in the paper.
type ScenarioID string

// The two evaluated scenarios.
const (
	ScenarioLab    ScenarioID = "Lab"    // 2 m apart, already realised
	ScenarioQL2020 ScenarioID = "QL2020" // ≈25 km between two European cities
)

// Platform bundles everything the protocol stack needs to know about the
// hardware of one scenario: per-request-type attempt timing, the optical
// link model, classical communication delays, and the NV gate set.
type Platform struct {
	Scenario ScenarioID

	Gates          GateSet
	CarbonCoupling CarbonCoupling

	// Number of memory (carbon) qubits per node; the paper's evaluation uses
	// a single memory qubit.
	MemoryQubits int

	// CycleTime is the MHP cycle duration (the minimum spacing between
	// triggers), per request type: 1/r_attempt of Section 4.4.
	CycleTime map[RequestType]sim.Duration
	// AttemptDuration is t_attempt: trigger until the reply from H has been
	// processed (including any post-processing such as the move to carbon).
	AttemptDuration map[RequestType]sim.Duration
	// ExpectedCyclesPerAttempt is E of Section 6: the expected number of MHP
	// cycles consumed per attempt (≥1 because of memory re-initialisation
	// and post-processing).
	ExpectedCyclesPerAttempt map[RequestType]float64

	// CommDelayAH / CommDelayBH are the one-way classical+optical signal
	// propagation delays between each node and the heralding station.
	CommDelayAH sim.Duration
	CommDelayBH sim.Duration

	// CarbonReinitPeriod and CarbonReinitDuration model the periodic carbon
	// re-initialisation (330 µs every 3500 µs in the Lab, Appendix D.3.3).
	CarbonReinitPeriod   sim.Duration
	CarbonReinitDuration sim.Duration

	// Optics describes the photonic link (emission, fibres, detectors,
	// visibility).
	Optics *photonics.HeraldedLink
	// SuccessScale rescales the herald success probability so the platform
	// matches the paper's calibrated psucc ≈ α·10⁻³ (Section 4.4) without
	// re-fitting every microscopic parameter. 1.0 means "use the optical
	// model as-is".
	SuccessScale float64
}

// LabPlatform returns the parameters of the Lab scenario (Section 4.4): both
// nodes 1 m from the station, no frequency conversion, no cavity.
func LabPlatform() *Platform {
	em := photonics.EmissionParams{
		DetectionWindow:  25e-9,
		EmissionCharTime: 12e-9,
		ZeroPhononProb:   0.03,
		CollectionProb:   0.014,
		ConversionProb:   1.0,
		TwoPhotonProb:    0.04,
		PhaseStdDegrees:  14.3 / math.Sqrt2,
	}
	fiber := photonics.Fiber{LengthKM: 0.001, AttenuationDB: 5}
	det := photonics.DetectorParams{Efficiency: 0.8, DarkCountRate: 20, Window: 25e-9}
	link := photonics.NewHeraldedLink(em, em, fiber, fiber, det, 0.9)
	return &Platform{
		Scenario:       ScenarioLab,
		Gates:          DefaultGateSet(),
		CarbonCoupling: DefaultCarbonCoupling(),
		MemoryQubits:   1,
		CycleTime: map[RequestType]sim.Duration{
			RequestMeasure: sim.DurationMicroseconds(10.12),
			RequestKeep:    sim.DurationMicroseconds(11),
		},
		AttemptDuration: map[RequestType]sim.Duration{
			RequestMeasure: sim.DurationMicroseconds(10.12),
			RequestKeep:    sim.DurationMicroseconds(1045),
		},
		ExpectedCyclesPerAttempt: map[RequestType]float64{
			RequestMeasure: 1.0,
			RequestKeep:    1.1,
		},
		CommDelayAH:          10 * sim.Nanosecond, // 9.7 ns, negligible
		CommDelayBH:          10 * sim.Nanosecond,
		CarbonReinitPeriod:   3500 * sim.Microsecond,
		CarbonReinitDuration: 330 * sim.Microsecond,
		Optics:               link,
		SuccessScale:         1.0,
	}
}

// QL2020Platform returns the parameters of the planned QL2020 scenario
// (Section 4.4): A is ≈10 km from H (48.4 µs), B ≈15 km (72.6 µs), photons
// are frequency-converted to 1588 nm with 0.5 dB/km fibre loss, and optical
// cavities enhance emission.
func QL2020Platform() *Platform {
	em := photonics.EmissionParams{
		DetectionWindow:  25e-9,
		EmissionCharTime: 6.48e-9, // with cavity
		ZeroPhononProb:   0.46,    // with cavity
		CollectionProb:   0.014,
		ConversionProb:   0.30, // frequency conversion success
		TwoPhotonProb:    0.04,
		PhaseStdDegrees:  14.3 / math.Sqrt2,
	}
	fibA := photonics.Fiber{LengthKM: 10, AttenuationDB: 0.5}
	fibB := photonics.Fiber{LengthKM: 15, AttenuationDB: 0.5}
	det := photonics.DetectorParams{Efficiency: 0.8, DarkCountRate: 20, Window: 25e-9}
	link := photonics.NewHeraldedLink(em, em, fibA, fibB, det, 0.9)
	return &Platform{
		Scenario:       ScenarioQL2020,
		Gates:          DefaultGateSet(),
		CarbonCoupling: DefaultCarbonCoupling(),
		MemoryQubits:   1,
		CycleTime: map[RequestType]sim.Duration{
			RequestMeasure: sim.DurationMicroseconds(10.12),
			RequestKeep:    sim.DurationMicroseconds(165),
		},
		AttemptDuration: map[RequestType]sim.Duration{
			RequestMeasure: sim.DurationMicroseconds(145),
			RequestKeep:    sim.DurationMicroseconds(1185),
		},
		ExpectedCyclesPerAttempt: map[RequestType]float64{
			RequestMeasure: 1.0,
			RequestKeep:    16.0,
		},
		CommDelayAH:          sim.DurationMicroseconds(48.4),
		CommDelayBH:          sim.DurationMicroseconds(72.6),
		CarbonReinitPeriod:   3500 * sim.Microsecond,
		CarbonReinitDuration: 330 * sim.Microsecond,
		Optics:               link,
		SuccessScale:         1.0,
	}
}

// NewPlatform returns the platform for the given scenario identifier.
func NewPlatform(id ScenarioID) *Platform {
	switch id {
	case ScenarioLab:
		return LabPlatform()
	case ScenarioQL2020:
		return QL2020Platform()
	default:
		panic("nv: unknown scenario " + string(id))
	}
}

// MidpointRoundTrip returns the round-trip classical communication delay
// between the given node ("A" or "B") and the heralding station.
func (p *Platform) MidpointRoundTrip(node string) sim.Duration {
	if node == "A" {
		return 2 * p.CommDelayAH
	}
	return 2 * p.CommDelayBH
}

// SuccessProbability returns the calibrated herald success probability for a
// given bright-state population. The paper quotes psucc ≈ α·10⁻³ for both
// Lab (no cavity, no conversion, short fibre) and QL2020 (cavity +
// conversion + long fibre); the SuccessScale factor absorbs residual
// calibration differences of the microscopic model.
func (p *Platform) SuccessProbability(sampler *photonics.LinkSampler, alpha float64) float64 {
	return clampProb(p.SuccessScale * sampler.HeraldSuccessProbability(alpha, alpha))
}

func clampProb(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
