package nv

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/photonics"
	"repro/internal/quantum"
	"repro/internal/sim"
)

func newTestPair(now sim.Time) *EntangledPair {
	return NewEntangledPair(quantum.NewBellState(quantum.PsiPlus), quantum.PsiPlus, now)
}

func newTestDevice(memory int) *Device {
	return NewDevice("A", DefaultGateSet(), DefaultCarbonCoupling(), memory)
}

func TestDefaultGateSetMatchesPaperTable(t *testing.T) {
	g := DefaultGateSet()
	if g.ElectronT1 != 2.86e-3 || g.ElectronT2 != 1.00e-3 {
		t.Fatalf("electron coherence times wrong: %v %v", g.ElectronT1, g.ElectronT2)
	}
	if !math.IsInf(g.CarbonT1, 1) || g.CarbonT2 != 3.5e-3 {
		t.Fatalf("carbon coherence times wrong: %v %v", g.CarbonT1, g.CarbonT2)
	}
	if g.ElectronInit.Duration != 2*sim.Microsecond || g.ElectronInit.Fidelity != 0.95 {
		t.Fatal("electron init spec wrong")
	}
	if g.CarbonInit.Duration != 310*sim.Microsecond {
		t.Fatal("carbon init duration wrong")
	}
	if g.ECControlledSqrtX.Duration != 500*sim.Microsecond || g.ECControlledSqrtX.Fidelity != 0.992 {
		t.Fatal("E-C controlled-sqrt(X) spec wrong")
	}
	if g.MoveToCarbon.Duration != 1040*sim.Microsecond {
		t.Fatal("move-to-carbon duration should be 1040 µs")
	}
	if g.ElectronReadout.Fidelity0 != 0.95 || g.ElectronReadout.Fidelity1 != 0.995 {
		t.Fatal("readout fidelities wrong")
	}
	if g.ElectronReadout.Duration != sim.DurationMicroseconds(3.7) {
		t.Fatal("readout duration wrong")
	}
}

func TestPlatformTimingParameters(t *testing.T) {
	lab := LabPlatform()
	if lab.CycleTime[RequestMeasure] != sim.DurationMicroseconds(10.12) {
		t.Fatalf("Lab M cycle = %v, want 10.12 µs", lab.CycleTime[RequestMeasure])
	}
	if lab.AttemptDuration[RequestKeep] != sim.DurationMicroseconds(1045) {
		t.Fatalf("Lab K attempt duration = %v, want 1045 µs", lab.AttemptDuration[RequestKeep])
	}
	if lab.ExpectedCyclesPerAttempt[RequestKeep] != 1.1 {
		t.Fatal("Lab K expected cycles should be 1.1")
	}
	ql := QL2020Platform()
	if ql.CommDelayAH != sim.DurationMicroseconds(48.4) || ql.CommDelayBH != sim.DurationMicroseconds(72.6) {
		t.Fatalf("QL2020 delays wrong: %v %v", ql.CommDelayAH, ql.CommDelayBH)
	}
	if ql.AttemptDuration[RequestMeasure] != sim.DurationMicroseconds(145) {
		t.Fatal("QL2020 M attempt duration should be 145 µs")
	}
	if ql.ExpectedCyclesPerAttempt[RequestKeep] != 16.0 {
		t.Fatal("QL2020 K expected cycles should be ≈16")
	}
	if ql.CycleTime[RequestKeep] != sim.DurationMicroseconds(165) {
		t.Fatal("QL2020 K cycle time should be ≈165 µs")
	}
	// Round trips.
	if ql.MidpointRoundTrip("A") != 2*sim.DurationMicroseconds(48.4) {
		t.Fatal("round trip A wrong")
	}
	if ql.MidpointRoundTrip("B") != 2*sim.DurationMicroseconds(72.6) {
		t.Fatal("round trip B wrong")
	}
}

func TestNewPlatformSelection(t *testing.T) {
	if NewPlatform(ScenarioLab).Scenario != ScenarioLab {
		t.Fatal("wrong scenario")
	}
	if NewPlatform(ScenarioQL2020).Scenario != ScenarioQL2020 {
		t.Fatal("wrong scenario")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown scenario should panic")
		}
	}()
	NewPlatform("Mars")
}

func TestRequestTypeString(t *testing.T) {
	if RequestKeep.String() != "K" || RequestMeasure.String() != "M" {
		t.Fatal("request type strings wrong")
	}
}

func TestCarbonCouplingDephasing(t *testing.T) {
	c := DefaultCarbonCoupling()
	pd := c.DephasingPerAttempt(0.1)
	if pd <= 0 || pd > 0.05 {
		t.Fatalf("per-attempt dephasing out of range: %v", pd)
	}
	if c.DephasingPerAttempt(0.3) <= pd {
		t.Fatal("dephasing should increase with alpha")
	}
}

func TestDeviceAllocation(t *testing.T) {
	d := newTestDevice(2)
	if !d.CommFree() {
		t.Fatal("fresh device should have a free communication qubit")
	}
	if d.MemoryQubits() != 2 || d.FreeMemoryCount() != 2 {
		t.Fatal("memory accounting wrong")
	}
	pair := newTestPair(0)
	if err := d.StorePair(pair, SideA); err != nil {
		t.Fatalf("StorePair: %v", err)
	}
	if d.CommFree() {
		t.Fatal("communication qubit should be busy")
	}
	if err := d.StorePair(newTestPair(0), SideA); err != ErrCommBusy {
		t.Fatalf("expected ErrCommBusy, got %v", err)
	}
	if got := d.PairAt(CommQubitID); got != pair {
		t.Fatal("PairAt should return the stored pair")
	}
	d.Release(pair)
	if !d.CommFree() {
		t.Fatal("Release should free the qubit")
	}
}

func TestMoveToMemory(t *testing.T) {
	d := newTestDevice(1)
	pair := newTestPair(0)
	if err := d.StorePair(pair, SideA); err != nil {
		t.Fatalf("StorePair: %v", err)
	}
	target, ok := d.FreeMemoryQubit()
	if !ok || target != 1 {
		t.Fatalf("expected memory qubit 1 free, got %v %v", target, ok)
	}
	fBefore := pair.Fidelity()
	if err := d.MoveToMemory(pair, SideA, target, 0); err != nil {
		t.Fatalf("MoveToMemory: %v", err)
	}
	if pair.Kind(SideA) != MemoryQubit || pair.Qubit(SideA) != target {
		t.Fatal("pair bookkeeping not updated after move")
	}
	if !d.CommFree() {
		t.Fatal("communication qubit should be free after the move")
	}
	if d.FreeMemoryCount() != 0 {
		t.Fatal("memory qubit should now be occupied")
	}
	fAfter := pair.Fidelity()
	if fAfter >= fBefore {
		t.Fatalf("move should cost fidelity: %v → %v", fBefore, fAfter)
	}
	if fAfter < 0.5 {
		t.Fatalf("move noise too strong: %v", fAfter)
	}
	// Second move must fail: nothing on the communication qubit.
	if err := d.MoveToMemory(pair, SideA, target, 0); err == nil {
		t.Fatal("moving again should fail")
	}
}

func TestMoveToMemoryErrors(t *testing.T) {
	d := newTestDevice(1)
	pair := newTestPair(0)
	_ = d.StorePair(pair, SideA)
	if err := d.MoveToMemory(pair, SideA, 5, 0); err == nil {
		t.Fatal("move to nonexistent qubit should fail")
	}
	if err := d.MoveToMemory(pair, SideA, CommQubitID, 0); err == nil {
		t.Fatal("move to communication qubit should fail")
	}
	// Occupy the memory qubit with another pair, then try to move.
	other := newTestPair(0)
	d2 := newTestDevice(1)
	_ = d2.StorePair(other, SideA)
	_ = d2.MoveToMemory(other, SideA, 1, 0)
	second := newTestPair(0)
	_ = d2.StorePair(second, SideA)
	if err := d2.MoveToMemory(second, SideA, 1, 0); err != ErrQubitBusy {
		t.Fatalf("expected ErrQubitBusy, got %v", err)
	}
}

func TestDecoherenceOverTime(t *testing.T) {
	d := newTestDevice(1)
	pair := newTestPair(0)
	_ = d.StorePair(pair, SideA)
	fStart := pair.Fidelity()
	// One millisecond on the electron (T2 = 1 ms) costs real fidelity.
	d.ApplyDecoherence(pair, SideA, sim.Time(1*sim.Millisecond))
	fAfter := pair.Fidelity()
	if fAfter >= fStart {
		t.Fatalf("decoherence should reduce fidelity: %v → %v", fStart, fAfter)
	}
	// Applying again with the same timestamp must be a no-op.
	d.ApplyDecoherence(pair, SideA, sim.Time(1*sim.Millisecond))
	if pair.Fidelity() != fAfter {
		t.Fatal("repeated decoherence at same time should be a no-op")
	}
}

func TestMemoryQubitOutlivesElectron(t *testing.T) {
	// Figure 9: the carbon memory (T2=3.5 ms) holds fidelity longer than the
	// electron (T2=1 ms) for the same storage time.
	storage := sim.Time(2 * sim.Millisecond)

	dElec := newTestDevice(1)
	pElec := newTestPair(0)
	_ = dElec.StorePair(pElec, SideA)
	dElec.ApplyDecoherence(pElec, SideA, storage)

	dMem := newTestDevice(1)
	pMem := newTestPair(0)
	_ = dMem.StorePair(pMem, SideA)
	// Put it on the carbon immediately with a noiseless move so only the
	// storage comparison matters.
	g := dMem.Gates
	g.MoveToCarbon.Fidelity = 1
	g.CarbonInit.Fidelity = 1
	g.MoveToCarbon.Duration = 0
	dMem.Gates = g
	if err := dMem.MoveToMemory(pMem, SideA, 1, 0); err != nil {
		t.Fatalf("MoveToMemory: %v", err)
	}
	dMem.ApplyDecoherence(pMem, SideA, storage)

	if pMem.Fidelity() <= pElec.Fidelity() {
		t.Fatalf("carbon storage should beat electron storage: %v vs %v", pMem.Fidelity(), pElec.Fidelity())
	}
}

func TestAttemptDephasingOnlyAffectsMemory(t *testing.T) {
	d := newTestDevice(1)
	// A pair stored in the communication qubit is not affected by attempt
	// dephasing (the mechanism acts on nuclear spins).
	commPair := newTestPair(0)
	_ = d.StorePair(commPair, SideA)
	before := commPair.Fidelity()
	d.ApplyAttemptDephasing(0.3)
	if commPair.Fidelity() != before {
		t.Fatal("attempt dephasing should not affect the communication qubit")
	}
	// After moving to memory, attempts do degrade it.
	g := d.Gates
	g.MoveToCarbon.Fidelity = 1
	g.CarbonInit.Fidelity = 1
	g.MoveToCarbon.Duration = 0
	d.Gates = g
	_ = d.MoveToMemory(commPair, SideA, 1, 0)
	before = commPair.Fidelity()
	for i := 0; i < 200; i++ {
		d.ApplyAttemptDephasing(0.3)
	}
	if commPair.Fidelity() >= before {
		t.Fatal("attempt dephasing should degrade memory-stored pairs")
	}
}

func TestApplyCorrectionConvertsPsiMinus(t *testing.T) {
	d := newTestDevice(1)
	pair := NewEntangledPair(quantum.NewBellState(quantum.PsiMinus), quantum.PsiMinus, 0)
	_ = d.StorePair(pair, SideA)
	d.ApplyCorrection(pair, SideA)
	if pair.HeraldedAs != quantum.PsiPlus {
		t.Fatal("correction should relabel the pair as Ψ+")
	}
	if f := pair.State.BellFidelity(quantum.PsiPlus); f < 0.99 {
		t.Fatalf("corrected state fidelity with Ψ+ = %v", f)
	}
}

func TestMeasurePerfectCorrelations(t *testing.T) {
	// Two devices sharing a perfect Ψ+ measured in Z must give
	// anti-correlated outcomes (up to readout noise, which we disable).
	gates := DefaultGateSet()
	gates.ElectronReadout.Fidelity0 = 1
	gates.ElectronReadout.Fidelity1 = 1
	dA := NewDevice("A", gates, DefaultCarbonCoupling(), 1)
	dB := NewDevice("B", gates, DefaultCarbonCoupling(), 1)
	rng := sim.NewRNG(5)
	for i := 0; i < 50; i++ {
		pair := newTestPair(0)
		_ = dA.StorePair(pair, SideA)
		_ = dB.StorePair(pair, SideB)
		ra := dA.Measure(pair, SideA, quantum.BasisZ, 0, rng)
		rb := dB.Measure(pair, SideB, quantum.BasisZ, 0, rng)
		if ra.Outcome == rb.Outcome {
			t.Fatalf("Ψ+ Z outcomes should differ, got %d %d", ra.Outcome, rb.Outcome)
		}
		if !dA.CommFree() || !dB.CommFree() {
			t.Fatal("measurement should release the qubits")
		}
	}
}

func TestMeasureXBasisCorrelations(t *testing.T) {
	gates := DefaultGateSet()
	gates.ElectronReadout.Fidelity0 = 1
	gates.ElectronReadout.Fidelity1 = 1
	gates.ElectronSingleQubit.Fidelity = 1
	dA := NewDevice("A", gates, DefaultCarbonCoupling(), 1)
	dB := NewDevice("B", gates, DefaultCarbonCoupling(), 1)
	rng := sim.NewRNG(6)
	// Ψ+ is correlated in X.
	for i := 0; i < 50; i++ {
		pair := newTestPair(0)
		_ = dA.StorePair(pair, SideA)
		_ = dB.StorePair(pair, SideB)
		ra := dA.Measure(pair, SideA, quantum.BasisX, 0, rng)
		rb := dB.Measure(pair, SideB, quantum.BasisX, 0, rng)
		if ra.Outcome != rb.Outcome {
			t.Fatalf("Ψ+ X outcomes should agree, got %d %d", ra.Outcome, rb.Outcome)
		}
	}
}

func TestReadoutNoiseAsymmetry(t *testing.T) {
	// With the default asymmetric readout (f0=0.95, f1=0.995), measuring a
	// qubit prepared in |0⟩ misreports "1" about 5% of the time while |1⟩ is
	// misreported only ~0.5% of the time.
	d := newTestDevice(1)
	rng := sim.NewRNG(11)
	const n = 20000
	miss0, miss1 := 0, 0
	for i := 0; i < n; i++ {
		// Build a product state where side A is |0⟩ (or |1⟩) exactly.
		zero := quantum.NewState(2)
		pair0 := NewEntangledPair(zero, quantum.PhiPlus, 0)
		_ = d.StorePair(pair0, SideA)
		if r := d.Measure(pair0, SideA, quantum.BasisZ, 0, rng); r.Outcome == 1 {
			miss0++
		}
		one := quantum.NewState(2)
		one.ApplyUnitary(quantum.PauliX(), 0)
		pair1 := NewEntangledPair(one, quantum.PhiPlus, 0)
		_ = d.StorePair(pair1, SideA)
		if r := d.Measure(pair1, SideA, quantum.BasisZ, 0, rng); r.Outcome == 0 {
			miss1++
		}
	}
	rate0 := float64(miss0) / n
	rate1 := float64(miss1) / n
	if math.Abs(rate0-0.05) > 0.01 {
		t.Fatalf("|0⟩ misread rate = %v, want ≈0.05", rate0)
	}
	if math.Abs(rate1-0.005) > 0.004 {
		t.Fatalf("|1⟩ misread rate = %v, want ≈0.005", rate1)
	}
	if rate0 <= rate1 {
		t.Fatal("readout noise should be asymmetric with |0⟩ worse")
	}
}

func TestOccupiedPairsAndReleaseAll(t *testing.T) {
	d := newTestDevice(2)
	p1 := newTestPair(0)
	_ = d.StorePair(p1, SideA)
	_ = d.MoveToMemory(p1, SideA, 1, 0)
	p2 := newTestPair(0)
	_ = d.StorePair(p2, SideA)
	if got := len(d.OccupiedPairs()); got != 2 {
		t.Fatalf("expected 2 occupied pairs, got %d", got)
	}
	d.ReleaseAll()
	if len(d.OccupiedPairs()) != 0 || !d.CommFree() || d.FreeMemoryCount() != 2 {
		t.Fatal("ReleaseAll should free everything")
	}
}

func TestSuccessProbabilityCalibration(t *testing.T) {
	// Both platforms should have psucc/α of order 10⁻³ as quoted in
	// Section 4.4.
	for _, p := range []*Platform{LabPlatform(), QL2020Platform()} {
		sampler := photonics.NewLinkSampler(p.Optics)
		ratio := p.SuccessProbability(sampler, 0.1) / 0.1
		if ratio < 5e-5 || ratio > 1e-2 {
			t.Errorf("%s: psucc/α = %v, want order 10⁻³", p.Scenario, ratio)
		}
	}
}

func TestEntangledPairValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("one-qubit state should panic")
		}
	}()
	NewEntangledPair(quantum.NewState(1), quantum.PsiPlus, 0)
}

// Property: decoherence never increases fidelity and never produces an
// invalid state, for any storage duration.
func TestPropertyDecoherenceMonotone(t *testing.T) {
	d := newTestDevice(1)
	f := func(ms uint16) bool {
		pair := newTestPair(0)
		if err := d.StorePair(pair, SideA); err != nil {
			return false
		}
		defer d.Release(pair)
		before := pair.Fidelity()
		d.ApplyDecoherence(pair, SideA, sim.Time(sim.Duration(ms)*sim.Millisecond))
		after := pair.Fidelity()
		trace := pair.State.TraceReal()
		return after <= before+1e-9 && after >= 0 && math.Abs(trace-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: measurement outcomes are always 0 or 1 and release the qubit.
func TestPropertyMeasurementAlwaysBinary(t *testing.T) {
	d := newTestDevice(1)
	rng := sim.NewRNG(3)
	f := func(basisPick uint8) bool {
		basis := quantum.BasisLabel(int(basisPick) % 3)
		pair := newTestPair(0)
		if err := d.StorePair(pair, SideA); err != nil {
			return false
		}
		r := d.Measure(pair, SideA, basis, 0, rng)
		return (r.Outcome == 0 || r.Outcome == 1) && d.CommFree()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
