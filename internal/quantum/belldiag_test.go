package quantum

import (
	"math"
	"testing"
)

// exactTol is the backend-equivalence bound for regimes where the
// Bell-diagonal representation is exact: Bell-diagonal states under Pauli
// noise (dephasing, depolarisation, Pauli frames, twirls, swaps) and — for
// fidelity/QBER observables — single-sided T1/T2 storage. 1e-9 is the
// tolerance promised by the README's validity envelope.
const exactTol = 1e-9

// randomish deterministic Bell-diagonal coefficient sets covering pure,
// Werner-like and skewed mixtures.
func testCoefficientSets() [][4]float64 {
	return [][4]float64{
		{1, 0, 0, 0},
		{0, 0, 1, 0},
		{0.85, 0.05, 0.05, 0.05},
		{0.05, 0.05, 0.85, 0.05},
		{0.4, 0.3, 0.2, 0.1},
		{0.25, 0.25, 0.25, 0.25},
		{0.7, 0.0, 0.2, 0.1},
	}
}

// denseFromCoefficients builds the dense Bell-diagonal density matrix
// Σ λ_b |b⟩⟨b|.
func denseFromCoefficients(lam [4]float64) *State {
	rho := NewMatrix(4)
	for b := PhiPlus; b <= PsiMinus; b++ {
		p := BellProjector(b).Scale(complex(lam[b], 0))
		rho = rho.Add(p)
	}
	return NewStateFromDensity(rho)
}

// compareBackends asserts fidelity (all four Bell states) and QBER agreement
// between a dense state and a BellDiag within tol.
func compareBackends(t *testing.T, dense *State, bd *BellDiag, tol float64, what string) {
	t.Helper()
	for b := PhiPlus; b <= PsiMinus; b++ {
		df, bf := dense.BellFidelity(b), bd.BellFidelity(b)
		if math.Abs(df-bf) > tol {
			t.Fatalf("%s: fidelity with %v differs: dense %v belldiag %v", what, b, df, bf)
		}
	}
	dq, bq := dense.ExpectedQBER(PsiPlus), bd.ExpectedQBER(PsiPlus)
	if math.Abs(dq.X-bq.X) > tol || math.Abs(dq.Y-bq.Y) > tol || math.Abs(dq.Z-bq.Z) > tol {
		t.Fatalf("%s: QBER differs: dense %+v belldiag %+v", what, dq, bq)
	}
}

// The heart of the backend-equivalence satellite: for Bell-diagonal states
// under twirled/Pauli channels the fast path must track the dense simulator
// to 1e-9 on fidelity and QBER through a representative noise sequence.
func TestBellDiagMatchesDenseUnderPauliChannels(t *testing.T) {
	for _, lam := range testCoefficientSets() {
		dense := denseFromCoefficients(lam)
		bd := NewBellDiag(lam)

		// Gate noise (dephasing) on both qubits.
		dense.ApplyDephasing(0, 0.013)
		bd.ApplyDephasing(0, 0.013)
		dense.ApplyDephasing(1, 0.0005)
		bd.ApplyDephasing(1, 0.0005)
		// BSM-style depolarisation.
		dense.ApplyDepolarizing(1, 0.98)
		bd.ApplyDepolarizing(1, 0.98)
		// Pauli-frame corrections.
		for _, op := range []PauliOp{OpX, OpY, OpZ} {
			dense.ApplyPauli(0, op)
			bd.ApplyPauli(0, op)
			dense.ApplyPauli(1, op)
			bd.ApplyPauli(1, op)
		}
		// Pure-dephasing memory (T1 disabled): an exactly Pauli channel.
		p := T1T2Params{T1: math.Inf(1), T2: 3.5e-3}
		dense.ApplyMemoryNoise(0, 450e-6, p)
		bd.ApplyMemoryNoise(0, 450e-6, p)
		compareBackends(t, dense, bd, exactTol, "pauli channel sequence")

		// Twirling must agree and leave both Werner.
		df := dense.Twirl(PsiPlus)
		bf := bd.Twirl(PsiPlus)
		if math.Abs(df-bf) > exactTol {
			t.Fatalf("twirl fidelity differs: dense %v belldiag %v", df, bf)
		}
		compareBackends(t, dense, bd, exactTol, "after twirl")
	}
}

// Single-sided full NV T1/T2 storage: the non-unital part of amplitude
// damping lives entirely outside the Bell-diagonal sector (its drift is a
// Z⊗I component), so fidelity and QBER of a Bell-diagonal state still match
// the dense simulator exactly after one-sided decoherence.
func TestBellDiagMemoryNoiseSingleSidedExact(t *testing.T) {
	electron := T1T2Params{T1: 2.86e-3, T2: 1.00e-3}
	for _, lam := range testCoefficientSets() {
		for _, elapsed := range []float64{1e-6, 100e-6, 1e-3} {
			dense := denseFromCoefficients(lam)
			bd := NewBellDiag(lam)
			dense.ApplyMemoryNoise(0, elapsed, electron)
			bd.ApplyMemoryNoise(0, elapsed, electron)
			compareBackends(t, dense, bd, exactTol, "single-sided T1/T2")
		}
	}
}

// Both-sided finite-T1 storage is where the twirled map is an approximation:
// the dense channel correlates the two decays (both qubits drift towards
// |0⟩, feeding ⟨ZZ⟩), an O((t/T1)²) effect the twirl discards. This pins the
// documented tolerance of the validity envelope: the deviation scales as
// (1−e^(−t/T1))²/2 — ≤ 2e-3 on fidelity/QBER for 100 µs of storage on both
// electron spins (t/T1 ≈ 0.035), ≤ 5e-2 at a full millisecond (t/T1 ≈ 0.35,
// i.e. storage approaching T1 itself, far beyond protocol dwell times).
func TestBellDiagMemoryNoiseBothSidedTolerance(t *testing.T) {
	electron := T1T2Params{T1: 2.86e-3, T2: 1.00e-3}
	check := func(elapsed, tol float64) {
		t.Helper()
		for _, lam := range testCoefficientSets() {
			dense := denseFromCoefficients(lam)
			bd := NewBellDiag(lam)
			dense.ApplyMemoryNoise(0, elapsed, electron)
			bd.ApplyMemoryNoise(0, elapsed, electron)
			dense.ApplyMemoryNoise(1, elapsed, electron)
			bd.ApplyMemoryNoise(1, elapsed, electron)
			compareBackends(t, dense, bd, tol, "both-sided T1/T2")
		}
	}
	check(100e-6, 2e-3)
	check(1e-3, 5e-2)
}

// Swaps must agree with both the dense simulator and the paper's closed-form
// Werner composition F = (1+3·∏w)/4, including BSM gate noise, and must
// consume the uniform sample identically (same u → same outcome label).
func TestBellDiagSwapMatchesDenseAndClosedForm(t *testing.T) {
	fids := []float64{0.95, 0.9, 0.85, 0.8}
	gates := []float64{1.0, 0.98}
	us := []float64{0.05, 0.3, 0.55, 0.9}
	for _, gate := range gates {
		for i, u := range us {
			// Dense chain.
			denseLeft := WernerState(PsiPlus, fids[0])
			bdLeft := NewBellDiagWerner(PsiPlus, fids[0])
			label := PsiPlus
			bdLabel := PsiPlus
			want := []float64{fids[0]}
			for k := 1; k < len(fids); k++ {
				denseRight := WernerState(PsiPlus, fids[k])
				bdRight := NewBellDiagWerner(PsiPlus, fids[k])
				var dOut BellState
				var dFar PairState
				dFar, dOut = denseLeft.SwapWith(denseRight, 1, 0, gate, u)
				denseLeft = dFar.Dense()
				label = SwappedBell(label, PsiPlus, dOut)

				bFar, bo := SwapBellDiag(bdLeft, bdRight, gate, u)
				bdLeft = &bFar
				bdLabel = SwappedBell(bdLabel, PsiPlus, bo)
				if bo != dOut {
					t.Fatalf("swap %d (u=%v): outcome differs: dense %v belldiag %v", k, u, dOut, bo)
				}
				want = append(want, fids[k])
			}
			if bdLabel != label {
				t.Fatalf("composed label differs: dense %v belldiag %v", label, bdLabel)
			}
			df := denseLeft.BellFidelity(label)
			bf := bdLeft.BellFidelity(label)
			if math.Abs(df-bf) > exactTol {
				t.Fatalf("chain %d (gate=%v): fidelity differs: dense %v belldiag %v", i, gate, df, bf)
			}
			// Closed form: every swap multiplies in the two input weights
			// and the squared gate factor.
			w := WernerWeight(want[0])
			g := DepolarizingWeightFactor(gate)
			for k := 1; k < len(want); k++ {
				w *= WernerWeight(want[k]) * g * g
			}
			if closed := WernerFidelity(w); math.Abs(bf-closed) > exactTol {
				t.Fatalf("belldiag fidelity %v differs from closed form %v", bf, closed)
			}
		}
	}
}

// Heralding projects the dense conditional state onto its Bell-basis
// diagonal; that projection must preserve every Bell fidelity and the QBER
// exactly — including for the non-Bell-diagonal states of the full optical
// model (the Bell-basis diagonal and the σβ⊗σβ parities are the same data).
func TestBellDiagHeraldProjectionPreservesObservables(t *testing.T) {
	// A deliberately non-Bell-diagonal state: heralded-like mixture with
	// coherences and a |00⟩ component.
	psi := Ket{complex(0.2, 0), complex(0.68, 0.1), complex(-0.66, 0.05), complex(0.1, 0)}
	dense := NewStateFromKet(psi)
	bd := BellDiagFromDense(dense)
	compareBackends(t, dense, bd, 1e-12, "herald projection")
}

// Readout statistics must match the dense POVM path for Bell-diagonal
// states: the declared-outcome threshold of the first readout, and the
// conditional distribution of the second — in the same or a different basis,
// with Pauli-channel noise on the surviving qubit in between.
func TestBellDiagReadoutMatchesDense(t *testing.T) {
	const f0, f1 = 0.95, 0.995
	bases := []BasisLabel{BasisZ, BasisX, BasisY}
	for _, lam := range testCoefficientSets() {
		for _, b1 := range bases {
			for _, b2 := range bases {
				for _, u1 := range []float64{0.1, 0.6, 0.95} {
					dense := denseFromCoefficients(lam)
					bd := NewBellDiag(lam)
					d1 := dense.Readout(0, b1, 1, f0, f1, u1)
					o1 := bd.Readout(0, b1, 1, f0, f1, u1)
					if d1 != o1 {
						t.Fatalf("lam=%v basis=%v u=%v: first outcome differs: dense %d belldiag %d", lam, b1, u1, d1, o1)
					}
					// Interleaved noise on the surviving qubit.
					dense.ApplyDephasing(1, 0.02)
					bd.ApplyDephasing(1, 0.02)
					dense.ApplyDepolarizing(1, 0.99)
					bd.ApplyDepolarizing(1, 0.99)
					// Compare the full declared-0 probability of the second
					// readout by scanning the threshold: the dense POVM
					// probability is recovered from the largest u that still
					// declares 0.
					dp := readoutP0Dense(dense, 1, b2, f0, f1)
					bp := readoutP0BellDiag(bd, 1, b2, f0, f1)
					if math.Abs(dp-bp) > exactTol {
						t.Fatalf("lam=%v %v→%v first=%d: second-readout p0 differs: dense %v belldiag %v", lam, b1, b2, d1, dp, bp)
					}
				}
			}
		}
	}
}

// readoutP0Dense computes the dense declared-0 probability of a readout
// without consuming the state.
func readoutP0Dense(s *State, qubit int, basis BasisLabel, f0, f1 float64) float64 {
	c := s.Copy()
	if basis != BasisZ {
		c.ApplyUnitary(BasisRotation(basis), qubit)
	}
	m0, _ := ReadoutKraus(f0, f1)
	return c.Probability(m0.Dagger().Mul(m0), qubit)
}

// readoutP0BellDiag recovers the BellDiag declared-0 probability by binary
// search over the threshold sample.
func readoutP0BellDiag(d *BellDiag, qubit int, basis BasisLabel, f0, f1 float64) float64 {
	lo, hi := 0.0, 1.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		c := *d
		if c.Readout(qubit, basis, 1, f0, f1, mid) == 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// The Bell-diagonal pair lifecycle — herald (reset from cached
// coefficients), storage noise, per-attempt dephasing, Pauli frame, swap,
// and both readouts — must run without a single heap allocation in steady
// state. This is the AllocsPerRun satellite pinning the fast path at zero.
func TestBellDiagLifecycleAllocFree(t *testing.T) {
	herald := [4]float64{0.02, 0.03, 0.9, 0.05}
	electron := T1T2Params{T1: 2.86e-3, T2: 1.00e-3}
	left := NewBellDiag(herald)
	right := NewBellDiag(herald)
	SwappedBell(PsiPlus, PsiPlus, PhiPlus) // derive the swap tables up front

	allocs := testing.AllocsPerRun(200, func() {
		// Herald two link pairs (pool-style reuse).
		left.SetCoefficients(herald)
		right.SetCoefficients(herald)
		// Storage decoherence and per-attempt dephasing on both.
		left.ApplyMemoryNoise(0, 50e-6, electron)
		left.ApplyDephasing(1, 0.002)
		right.ApplyMemoryNoise(1, 20e-6, electron)
		// Entanglement swap with BSM gate noise.
		far, outcome := SwapBellDiag(left, right, 0.98, 0.42)
		// Pauli-frame correction back to Ψ+.
		far.ApplyPauli(1, CorrectionPauliOp(SwappedBell(PsiPlus, PsiPlus, outcome), PsiPlus))
		// Fidelity read + both readouts.
		_ = far.BellFidelity(PsiPlus)
		_ = far.Readout(0, BasisX, 1, 0.95, 0.995, 0.37)
		_ = far.Readout(1, BasisX, 1, 0.95, 0.995, 0.81)
	})
	if allocs != 0 {
		t.Fatalf("BellDiag lifecycle allocated %v objects per run, want 0", allocs)
	}
}

// ParseBackend and the env default must round-trip the two names.
func TestBackendParsing(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Backend
		ok   bool
	}{
		{"", BackendDense, true},
		{"dense", BackendDense, true},
		{"belldiag", BackendBellDiagonal, true},
		{"bell-diagonal", BackendBellDiagonal, true},
		{"nope", BackendDense, false},
	} {
		got, err := ParseBackend(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Fatalf("ParseBackend(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	if BackendDense.String() != "dense" || BackendBellDiagonal.String() != "belldiag" {
		t.Fatal("backend names changed; CLI flags and JSON depend on them")
	}
}

// A typo in $REPRO_BACKEND must fail loudly: silently falling back to dense
// would report fast-path CI coverage that never executed.
func TestBackendFromEnvRejectsTypos(t *testing.T) {
	t.Setenv(BackendEnvVar, "belldiag")
	if got := BackendFromEnv(); got != BackendBellDiagonal {
		t.Fatalf("BackendFromEnv = %v, want belldiag", got)
	}
	t.Setenv(BackendEnvVar, "bell_diag")
	defer func() {
		if recover() == nil {
			t.Fatal("BackendFromEnv accepted an unparseable value")
		}
	}()
	BackendFromEnv()
}
