package quantum

import (
	"fmt"
	"math"
	"os"
)

// This file defines the pluggable pair-state abstraction: every layer of the
// stack (photonics heralding, NV device noise, EGP delivery, network-layer
// swapping) manipulates a two-qubit entangled pair only through the PairState
// interface, so the representation of that pair is a per-run choice. Two
// implementations exist:
//
//   - the dense density-matrix simulator (*State implements PairState
//     directly) — exact for every channel of Appendix D and the default, and
//   - the Bell-diagonal fast path (*BellDiag, belldiag.go) — four real
//     coefficients in the Bell basis, exact for twirled/Pauli noise and
//     O(1) per operation with zero allocations.

// Backend selects the pair-state representation used by a run.
type Backend int

// The registered pair-state backends. BackendDense is the zero value, so
// configurations that never mention a backend keep the exact simulator.
const (
	// BackendDense is the exact 4×4 density-matrix simulator.
	BackendDense Backend = iota
	// BackendBellDiagonal is the 4-coefficient diagonal-in-the-Bell-basis
	// representation: Pauli channels permute and scale the coefficients,
	// twirled T1/T2 maps update them in closed form, and swaps compose
	// coefficient-wise. Exact for Bell-diagonal states under twirled noise;
	// see the BellDiag docs for the validity envelope on full NV hardware.
	BackendBellDiagonal
)

// String renders the backend's canonical CLI/JSON name.
func (b Backend) String() string {
	if b == BackendBellDiagonal {
		return "belldiag"
	}
	return "dense"
}

// ParseBackend converts a CLI/JSON name into a Backend.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", "dense":
		return BackendDense, nil
	case "belldiag", "bell-diagonal", "belldiagonal":
		return BackendBellDiagonal, nil
	default:
		return BackendDense, fmt.Errorf("quantum: unknown backend %q (want dense or belldiag)", s)
	}
}

// BackendEnvVar is the environment variable consulted by BackendFromEnv; CI
// uses it to run the whole test suite once per backend.
const BackendEnvVar = "REPRO_BACKEND"

// BackendFromEnv returns the backend named by $REPRO_BACKEND, or BackendDense
// when the variable is unset. Default configurations (netsim.DefaultConfig,
// bench defaults) consult it so a test matrix can flip every stack onto the
// fast path without touching call sites. An unrecognised value panics: the
// variable exists so CI can claim backend coverage, and a typo that silently
// fell back to dense would report green fast-path coverage that never ran.
func BackendFromEnv() Backend {
	b, err := ParseBackend(os.Getenv(BackendEnvVar))
	if err != nil {
		panic(fmt.Sprintf("quantum: $%s: %v", BackendEnvVar, err))
	}
	return b
}

// ResolveBackend turns a CLI flag value into a Backend: an empty flag
// defers to $REPRO_BACKEND (then dense), anything else must parse. Shared by
// every CLI exposing a -backend flag; unlike BackendFromEnv it reports a bad
// environment value as an error so CLIs can exit cleanly.
func ResolveBackend(flagValue string) (Backend, error) {
	if flagValue == "" {
		flagValue = os.Getenv(BackendEnvVar)
	}
	return ParseBackend(flagValue)
}

// PauliOp indexes the four single-qubit Paulis in the order used by the
// swap-correction tables: I, X, Y, Z.
type PauliOp int

// The four Pauli operators.
const (
	OpI PauliOp = iota
	OpX
	OpY
	OpZ
)

// Matrix returns the 2×2 matrix of the Pauli operator.
func (p PauliOp) Matrix() Matrix { return pauliByIndex(int(p)) }

// PairState is the two-qubit entangled-pair lifecycle as seen by the
// protocol stack: heralded creation hands one out, storage applies T1/T2 and
// per-attempt dephasing, delivery reads fidelity/QBER, repeaters swap two of
// them into one, and measure-directly requests read out each qubit once.
// Qubit 0 is pair side A, qubit 1 side B, matching nv.EntangledPair.
type PairState interface {
	// BellFidelity returns the fidelity with the given Bell state. It is
	// only meaningful before either qubit has been read out.
	BellFidelity(b BellState) float64
	// ExpectedQBER returns the exact per-basis error rates against the
	// correlation pattern of the target Bell state.
	ExpectedQBER(target BellState) QBER
	// TraceReal returns the trace of the state (1 for a normalised pair).
	TraceReal() float64
	// ApplyMemoryNoise applies elapsed seconds of T1/T2 storage decoherence
	// to one qubit.
	ApplyMemoryNoise(qubit int, elapsed float64, p T1T2Params)
	// ApplyDephasing applies the single-qubit dephasing channel
	// ρ → (1−p)ρ + p·ZρZ to one qubit; gate noise of fidelity f is
	// ApplyDephasing(q, 1−f).
	ApplyDephasing(qubit int, p float64)
	// ApplyDepolarizing applies the single-qubit depolarising channel of the
	// given channel fidelity to one qubit.
	ApplyDepolarizing(qubit int, fidelity float64)
	// ApplyPauli applies an exact (noiseless) Pauli unitary to one qubit —
	// the Pauli-frame corrections of the protocol.
	ApplyPauli(qubit int, op PauliOp)
	// Twirl replaces the state by the Werner state of equal fidelity with
	// the target Bell state and returns that fidelity.
	Twirl(target BellState) float64
	// Readout destructively measures one qubit in the given basis through
	// the platform's noisy readout: rotationFidelity is the basis-rotation
	// gate fidelity, fid0/fid1 the asymmetric readout fidelities of
	// declaring |0⟩/|1⟩ correctly (Eq. 23), and u a uniform sample in [0,1)
	// selecting the declared outcome. Each qubit may be read out once.
	Readout(qubit int, basis BasisLabel, rotationFidelity, fid0, fid1, u float64) int
	// SwapWith performs an entanglement swap: a Bell-state measurement on
	// qubit qThis of this pair and qubit qRight of right — each through a
	// depolarising channel of the given gate fidelity when < 1 — returning
	// the composed far-end pair (this pair's far qubit first) and the BSM
	// outcome selected by the uniform sample u. Both pairs must use the
	// same backend.
	SwapWith(right PairState, qThis, qRight int, gateFidelity, u float64) (PairState, BellState)
	// Dense returns the underlying dense state, or nil for representations
	// that do not keep one (callers needing exact off-diagonal structure
	// must run on the dense backend).
	Dense() *State
}

// --- dense implementation: *State is a PairState -------------------------

// ExpectedQBER implements PairState on the dense simulator.
func (s *State) ExpectedQBER(target BellState) QBER { return ExpectedQBER(s, target) }

// ApplyMemoryNoise implements PairState on the dense simulator.
func (s *State) ApplyMemoryNoise(qubit int, elapsed float64, p T1T2Params) {
	ApplyMemoryNoise(s, qubit, elapsed, p)
}

// ApplyDephasing implements PairState on the dense simulator.
func (s *State) ApplyDephasing(qubit int, p float64) {
	if p <= 0 {
		return
	}
	s.ApplyKraus(DephasingKraus(p), qubit)
}

// ApplyDepolarizing implements PairState on the dense simulator.
func (s *State) ApplyDepolarizing(qubit int, fidelity float64) {
	s.ApplyKraus(DepolarizingKraus(fidelity), qubit)
}

// ApplyPauli implements PairState on the dense simulator.
func (s *State) ApplyPauli(qubit int, op PauliOp) {
	if op == OpI {
		return
	}
	s.ApplyUnitary(op.Matrix(), qubit)
}

// Twirl implements PairState on the dense simulator.
func (s *State) Twirl(target BellState) float64 { return TwirlToWerner(s, target) }

// ReadoutKraus builds the asymmetric readout Kraus operators of Eq. (23):
// m0 = diag(√f0, √(1−f1)) declares 0, m1 = diag(√(1−f0), √f1) declares 1.
func ReadoutKraus(f0, f1 float64) (m0, m1 Matrix) {
	m0 = NewMatrix(2)
	m0.Set(0, 0, complex(sqrtNonNeg(f0), 0))
	m0.Set(1, 1, complex(sqrtNonNeg(1-f1), 0))
	m1 = NewMatrix(2)
	m1.Set(0, 0, complex(sqrtNonNeg(1-f0), 0))
	m1.Set(1, 1, complex(sqrtNonNeg(f1), 0))
	return m0, m1
}

// Readout implements PairState on the dense simulator: the basis rotation
// (with its gate noise), the asymmetric readout POVM of Appendix D.3.4, and
// the collapse onto the declared outcome.
func (s *State) Readout(qubit int, basis BasisLabel, rotationFidelity, fid0, fid1, u float64) int {
	if basis != BasisZ {
		s.ApplyUnitary(BasisRotation(basis), qubit)
		if rotationFidelity < 1 {
			s.ApplyKraus(GateNoiseKraus(rotationFidelity), qubit)
		}
	}
	m0, m1 := ReadoutKraus(fid0, fid1)
	p0 := s.Probability(m0.Dagger().Mul(m0), qubit)
	outcome := 0
	if u >= p0 {
		outcome = 1
	}
	if outcome == 0 {
		s.Collapse(m0, qubit)
	} else {
		s.Collapse(m1, qubit)
	}
	return outcome
}

// SwapWith implements PairState on the dense simulator via SwapVia.
func (s *State) SwapWith(right PairState, qThis, qRight int, gateFidelity, u float64) (PairState, BellState) {
	rd := right.Dense()
	if rd == nil {
		panic("quantum: cannot swap a dense pair with a non-dense pair")
	}
	far, outcome := SwapVia(s, rd, qThis, qRight, gateFidelity, u)
	return far, outcome
}

// Dense implements PairState on the dense simulator.
func (s *State) Dense() *State { return s }

// sqrtNonNeg is √v clamped at zero, guarding tiny negative rounding inputs.
func sqrtNonNeg(v float64) float64 {
	if v < 0 {
		return 0
	}
	return math.Sqrt(v)
}
