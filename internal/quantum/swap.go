package quantum

import (
	"sync"
)

// This file implements the quantum mechanics of entanglement swapping: Bell
// projectors and joint Bell-state measurements (BSM), Werner states and the
// twirl that maps an arbitrary two-qubit state onto the Werner form of equal
// fidelity, the closed-form fidelity composition rule for chains of swapped
// Werner pairs, and the classical Pauli-frame bookkeeping (which Bell state a
// swap produces for a given measurement outcome, and which local Pauli
// rotates it back to the target). The network layer builds repeater chains on
// these primitives; everything here is exact density-matrix arithmetic.

// BellProjector returns the rank-one projector |b⟩⟨b| onto a Bell state as a
// 4×4 matrix.
func BellProjector(b BellState) Matrix {
	ket := BellKet(b)
	m := NewMatrix(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			m.Set(i, j, ket[i]*conj(ket[j]))
		}
	}
	return m
}

// WernerWeight converts a fidelity with a Bell state into the Werner weight
// w: ρ = w·|b⟩⟨b| + (1−w)/4·I, so F = (1+3w)/4 and w = (4F−1)/3.
func WernerWeight(fidelity float64) float64 { return (4*fidelity - 1) / 3 }

// WernerFidelity is the inverse of WernerWeight: F = (1+3w)/4.
func WernerFidelity(weight float64) float64 { return (1 + 3*weight) / 4 }

// WernerState returns the Werner state of the given fidelity with the target
// Bell state: the mixture w·|b⟩⟨b| + (1−w)/4·I₄. Fidelity 1 gives the pure
// Bell state, fidelity 1/4 the maximally mixed state.
func WernerState(target BellState, fidelity float64) *State {
	w := WernerWeight(fidelity)
	rho := BellProjector(target).Scale(complex(w, 0))
	floor := complex((1-w)/4, 0)
	for i := 0; i < 4; i++ {
		rho.Set(i, i, rho.At(i, i)+floor)
	}
	return NewStateFromDensity(rho)
}

// TwirlToWerner replaces a two-qubit state in place by the Werner state of
// the same fidelity with the target Bell state, and returns that fidelity.
// Physically this is the bilateral random Pauli twirl used by repeater
// protocols to make fidelity composition analytically tractable; it never
// changes the fidelity itself, only discards the off-Werner structure.
func TwirlToWerner(s *State, target BellState) float64 {
	if s.NumQubits() != 2 {
		panic("quantum: TwirlToWerner requires a two-qubit state")
	}
	f := s.BellFidelity(target)
	s.rho = WernerState(target, f).rho
	return f
}

// ComposedSwapFidelity returns the closed-form end-to-end fidelity of a chain
// of Werner pairs joined by ideal Bell-state measurements: the Werner weights
// multiply, so F = (1 + 3·∏ wᵢ)/4 with wᵢ = (4Fᵢ−1)/3. With a single input
// it returns that fidelity unchanged.
func ComposedSwapFidelity(fidelities ...float64) float64 {
	w := 1.0
	for _, f := range fidelities {
		w *= WernerWeight(f)
	}
	return WernerFidelity(w)
}

// DepolarizingWeightFactor returns the factor by which a Werner weight
// shrinks when one qubit of the pair passes through a depolarising channel of
// the given fidelity: w → w·(4f−1)/3.
func DepolarizingWeightFactor(gateFidelity float64) float64 {
	return (4*gateFidelity - 1) / 3
}

// SwapPredictFidelity is ComposedSwapFidelity for one swap with a noisy BSM:
// both measured qubits pass through a depolarising channel of the given gate
// fidelity before the (otherwise ideal) measurement, so the composed weight
// picks up the depolarising factor twice.
func SwapPredictFidelity(left, right, gateFidelity float64) float64 {
	g := DepolarizingWeightFactor(gateFidelity)
	return WernerFidelity(WernerWeight(left) * WernerWeight(right) * g * g)
}

// MeasureBell performs a joint Bell-state measurement on qubits q1 and q2 of
// the state: the uniform sample u in [0,1) selects the outcome branch (so the
// caller drives all randomness explicitly), the state collapses onto the
// measured Bell projector, and the outcome label is returned.
func MeasureBell(s *State, q1, q2 int, u float64) BellState {
	var probs [4]float64
	total := 0.0
	for b := PhiPlus; b <= PsiMinus; b++ {
		probs[b] = s.Probability(BellProjector(b), q1, q2)
		total += probs[b]
	}
	outcome := PsiMinus
	if total > 0 {
		x := u * total
		for b := PhiPlus; b <= PsiMinus; b++ {
			x -= probs[b]
			if x < 0 {
				outcome = b
				break
			}
		}
	}
	s.Collapse(BellProjector(outcome), q1, q2)
	return outcome
}

// SwapVia performs one entanglement swap: given the joint states of two pairs
// and the qubit each pair contributes to the swapping node (qL of left, qR of
// right), it measures those two qubits in the Bell basis — through a
// depolarising channel of the given gate fidelity on each measured qubit when
// gateFidelity < 1 — and returns the post-measurement state of the two far
// qubits (left's far qubit first) plus the measured outcome. The uniform
// sample u selects the outcome branch.
func SwapVia(left, right *State, qL, qR int, gateFidelity, u float64) (*State, BellState) {
	if left.NumQubits() != 2 || right.NumQubits() != 2 {
		panic("quantum: SwapVia requires two-qubit pair states")
	}
	joint := left.Tensor(right)
	m1, m2 := qL, 2+qR
	if gateFidelity < 1 {
		joint.ApplyKraus(DepolarizingKraus(gateFidelity), m1)
		joint.ApplyKraus(DepolarizingKraus(gateFidelity), m2)
	}
	outcome := MeasureBell(joint, m1, m2, u)
	return joint.PartialTrace(m1, m2), outcome
}

// swapTables holds the lazily derived Pauli-frame bookkeeping: which Bell
// state a swap produces for given input labels and BSM outcome, and which
// local Pauli converts one Bell state into another. Both are derived once by
// exact pure-state simulation instead of hand-written algebra.
var swapTables struct {
	once sync.Once
	// swapped[b1][b2][m] is the Bell label of the far-end state when pairs
	// labelled b1 (A–B) and b2 (C–D) are joined by a BSM on (B,C) with
	// outcome m.
	swapped [4][4][4]BellState
	// correction[from][to] indexes the Pauli (0=I, 1=X, 2=Y, 3=Z) that, when
	// applied to the second qubit, maps |from⟩ to |to⟩ up to global phase.
	correction [4][4]int
}

// pauliByIndex returns the Pauli matrix for a correction index.
func pauliByIndex(i int) Matrix {
	switch i {
	case 0:
		return I2()
	case 1:
		return PauliX()
	case 2:
		return PauliY()
	case 3:
		return PauliZ()
	default:
		panic("quantum: pauli index out of range")
	}
}

// deriveSwapTables computes both lookup tables from first principles with the
// density-matrix simulator: every entry is pinned by a fidelity-1 match, so a
// bookkeeping bug here would fail loudly at first use.
func deriveSwapTables() {
	const tol = 1e-9
	// Correction table: (I ⊗ P)|from⟩ ≟ |to⟩.
	for from := PhiPlus; from <= PsiMinus; from++ {
		for to := PhiPlus; to <= PsiMinus; to++ {
			found := -1
			for p := 0; p < 4; p++ {
				s := NewBellState(from)
				s.ApplyUnitary(pauliByIndex(p), 1)
				if s.BellFidelity(to) > 1-tol {
					found = p
					break
				}
			}
			if found < 0 {
				panic("quantum: no Pauli maps " + from.String() + " to " + to.String())
			}
			swapTables.correction[from][to] = found
		}
	}
	// Swap table: project |b1⟩_AB ⊗ |b2⟩_CD onto |m⟩_BC and identify the
	// remaining A–D Bell state. Every outcome has probability 1/4 for Bell
	// inputs, so the projection never vanishes.
	for b1 := PhiPlus; b1 <= PsiMinus; b1++ {
		for b2 := PhiPlus; b2 <= PsiMinus; b2++ {
			for m := PhiPlus; m <= PsiMinus; m++ {
				joint := NewBellState(b1).Tensor(NewBellState(b2))
				if joint.Collapse(BellProjector(m), 1, 2) <= 0 {
					panic("quantum: vanishing BSM branch for Bell inputs")
				}
				far := joint.PartialTrace(1, 2)
				found := BellState(-1)
				for r := PhiPlus; r <= PsiMinus; r++ {
					if far.BellFidelity(r) > 1-tol {
						found = r
						break
					}
				}
				if found < 0 {
					panic("quantum: swap of Bell states did not yield a Bell state")
				}
				swapTables.swapped[b1][b2][m] = found
			}
		}
	}
}

// SwappedBell returns the Bell label of the far-end pair produced by joining
// pairs labelled b1 and b2 with a Bell-state measurement whose outcome is m.
// The noisy analogue holds label-wise: a swap of Werner states with these
// labels yields a Werner state with the returned label.
func SwappedBell(b1, b2, m BellState) BellState {
	swapTables.once.Do(deriveSwapTables)
	return swapTables.swapped[b1][b2][m]
}

// CorrectionPauli returns the single-qubit Pauli that, applied to the second
// qubit (side B) of a pair in Bell state from, converts it into Bell state to
// (up to an irrelevant global phase). For from == to it returns the identity.
func CorrectionPauli(from, to BellState) Matrix {
	swapTables.once.Do(deriveSwapTables)
	return pauliByIndex(swapTables.correction[from][to])
}

// CorrectionPauliOp is CorrectionPauli as a PauliOp index, for callers going
// through the backend-agnostic PairState interface instead of dense
// matrices.
func CorrectionPauliOp(from, to BellState) PauliOp {
	swapTables.once.Do(deriveSwapTables)
	return PauliOp(swapTables.correction[from][to])
}

// CorrectionIsIdentity reports whether converting from → to needs no local
// operation (the Pauli frame already matches).
func CorrectionIsIdentity(from, to BellState) bool {
	swapTables.once.Do(deriveSwapTables)
	return swapTables.correction[from][to] == 0
}
