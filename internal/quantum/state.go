// Package quantum implements a small dense density-matrix simulator for the
// few-qubit states tracked by the link layer reproduction.
//
// The paper's physical model (Appendix D) only ever manipulates the joint
// state of a handful of qubits per entanglement attempt: two electron
// (communication) spins, the two travelling photon qubits encoded in
// presence/absence of a photon, and at most one carbon (memory) spin per
// node. A dense complex128 density-matrix representation up to ~6 qubits is
// therefore ample, and lets us implement the exact Kraus operators and POVM
// elements derived in the appendix rather than approximating them.
//
// Conventions: qubit 0 is the most significant bit of the computational
// basis index, matching the tensor-product ordering |q0⟩⊗|q1⟩⊗…
package quantum

import (
	"fmt"
	"math"
	"math/cmplx"
)

// MaxQubits bounds the size of states this package will construct. Dense
// matrices grow as 4^n, so this is a safety rail rather than a hard physical
// limit.
const MaxQubits = 8

// Ket is a pure state vector of dimension 2^n.
type Ket []complex128

// Matrix is a dense, square complex matrix stored row-major.
type Matrix struct {
	N    int // dimension
	Data []complex128
}

// NewMatrix allocates an n×n zero matrix.
func NewMatrix(n int) Matrix {
	return Matrix{N: n, Data: make([]complex128, n*n)}
}

// At returns element (i, j).
func (m Matrix) At(i, j int) complex128 { return m.Data[i*m.N+j] }

// Set assigns element (i, j).
func (m Matrix) Set(i, j int, v complex128) { m.Data[i*m.N+j] = v }

// Copy returns a deep copy of the matrix.
func (m Matrix) Copy() Matrix {
	out := NewMatrix(m.N)
	copy(out.Data, m.Data)
	return out
}

// Add returns m + other.
func (m Matrix) Add(other Matrix) Matrix {
	if m.N != other.N {
		panic("quantum: dimension mismatch in Add")
	}
	out := NewMatrix(m.N)
	for i := range m.Data {
		out.Data[i] = m.Data[i] + other.Data[i]
	}
	return out
}

// Scale returns c·m.
func (m Matrix) Scale(c complex128) Matrix {
	out := NewMatrix(m.N)
	for i := range m.Data {
		out.Data[i] = c * m.Data[i]
	}
	return out
}

// Mul returns the matrix product m·other.
func (m Matrix) Mul(other Matrix) Matrix {
	if m.N != other.N {
		panic("quantum: dimension mismatch in Mul")
	}
	n := m.N
	out := NewMatrix(n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			a := m.Data[i*n+k]
			if a == 0 {
				continue
			}
			row := other.Data[k*n:]
			outRow := out.Data[i*n:]
			for j := 0; j < n; j++ {
				outRow[j] += a * row[j]
			}
		}
	}
	return out
}

// Dagger returns the conjugate transpose of m.
func (m Matrix) Dagger() Matrix {
	n := m.N
	out := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*n+i] = cmplx.Conj(m.Data[i*n+j])
		}
	}
	return out
}

// Trace returns the trace of m.
func (m Matrix) Trace() complex128 {
	var t complex128
	for i := 0; i < m.N; i++ {
		t += m.Data[i*m.N+i]
	}
	return t
}

// Kron returns the Kronecker (tensor) product m ⊗ other.
func (m Matrix) Kron(other Matrix) Matrix {
	n := m.N * other.N
	out := NewMatrix(n)
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			a := m.Data[i*m.N+j]
			if a == 0 {
				continue
			}
			for k := 0; k < other.N; k++ {
				for l := 0; l < other.N; l++ {
					out.Data[(i*other.N+k)*n+(j*other.N+l)] = a * other.Data[k*other.N+l]
				}
			}
		}
	}
	return out
}

// Identity returns the n×n identity matrix.
func Identity(n int) Matrix {
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Equalish reports whether the two matrices are equal element-wise within tol.
func (m Matrix) Equalish(other Matrix, tol float64) bool {
	if m.N != other.N {
		return false
	}
	for i := range m.Data {
		if cmplx.Abs(m.Data[i]-other.Data[i]) > tol {
			return false
		}
	}
	return true
}

// State is a density matrix over NumQubits qubits.
//
// Operator application (ApplyUnitary, ApplyKraus, Collapse, ExpectationReal)
// runs in place over a set of per-state scratch buffers, so the steady-state
// hot path — millions of gate applications per simulated second across the
// stack — performs no heap allocation after the first operation on a state.
// The arithmetic (loop order, zero-skipping, accumulation order) is exactly
// the out-of-place formulation it replaced, so results are bit-identical.
type State struct {
	numQubits int
	rho       Matrix
	// buf holds the reusable work buffers; nil until the first operator
	// application, and never shared between states (Copy starts fresh).
	buf *scratch
}

// scratch is the set of working buffers for in-place operator application on
// one state: the expanded full-space operator, its conjugate transpose, the
// two matrix-product intermediates, a Kraus accumulator, and the per-basis
// index tables of the current expansion.
type scratch struct {
	full Matrix // operator embedded in the full 2^n space
	dag  Matrix // conjugate transpose of full
	t1   Matrix // full·ρ
	t2   Matrix // (full·ρ)·full†
	acc  Matrix // Σ_K KρK† accumulator for Kraus maps
	sub  []int  // subIndex(i) for every full-space basis index i
	rest []int  // maskOut(i) for every full-space basis index i
}

// ensureScratch returns the state's scratch buffers, allocating them on
// first use.
func (s *State) ensureScratch() *scratch {
	if s.buf == nil {
		dim := s.Dim()
		s.buf = &scratch{
			full: NewMatrix(dim),
			dag:  NewMatrix(dim),
			t1:   NewMatrix(dim),
			t2:   NewMatrix(dim),
			acc:  NewMatrix(dim),
			sub:  make([]int, dim),
			rest: make([]int, dim),
		}
	}
	return s.buf
}

// zeroData clears a scratch matrix before it is accumulated into.
func zeroData(m Matrix) {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// mulInto computes dst = a·b with the same loop structure (and therefore the
// same floating-point accumulation order and zero-skipping) as Matrix.Mul.
// dst must be pre-zeroed and must not alias a or b.
func mulInto(dst, a, b Matrix) {
	n := a.N
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			v := a.Data[i*n+k]
			if v == 0 {
				continue
			}
			row := b.Data[k*n:]
			outRow := dst.Data[i*n:]
			for j := 0; j < n; j++ {
				outRow[j] += v * row[j]
			}
		}
	}
}

// daggerInto writes the conjugate transpose of m into dst.
func daggerInto(dst, m Matrix) {
	n := m.N
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			dst.Data[j*n+i] = cmplx.Conj(m.Data[i*n+j])
		}
	}
}

// sandwichInto computes b.t2 = full·ρ·full† through the scratch buffers.
func (s *State) sandwichInto(b *scratch) {
	zeroData(b.t1)
	mulInto(b.t1, b.full, s.rho)
	daggerInto(b.dag, b.full)
	zeroData(b.t2)
	mulInto(b.t2, b.t1, b.dag)
}

// NewState builds the pure all-|0⟩ state on n qubits.
func NewState(n int) *State {
	if n < 1 || n > MaxQubits {
		panic(fmt.Sprintf("quantum: unsupported qubit count %d", n))
	}
	dim := 1 << n
	rho := NewMatrix(dim)
	rho.Set(0, 0, 1)
	return &State{numQubits: n, rho: rho}
}

// NewStateFromKet builds a density matrix |ψ⟩⟨ψ| from a (normalised) ket. The
// ket length must be a power of two.
func NewStateFromKet(psi Ket) *State {
	dim := len(psi)
	n := 0
	for 1<<n < dim {
		n++
	}
	if 1<<n != dim || n < 1 || n > MaxQubits {
		panic(fmt.Sprintf("quantum: invalid ket dimension %d", dim))
	}
	norm := 0.0
	for _, a := range psi {
		norm += real(a)*real(a) + imag(a)*imag(a)
	}
	if math.Abs(norm-1) > 1e-9 {
		s := complex(1/math.Sqrt(norm), 0)
		scaled := make(Ket, dim)
		for i, a := range psi {
			scaled[i] = a * s
		}
		psi = scaled
	}
	rho := NewMatrix(dim)
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			rho.Set(i, j, psi[i]*cmplx.Conj(psi[j]))
		}
	}
	return &State{numQubits: n, rho: rho}
}

// NewStateFromDensity wraps an existing density matrix. The matrix is used
// directly (not copied); its dimension must be a power of two.
func NewStateFromDensity(rho Matrix) *State {
	n := 0
	for 1<<n < rho.N {
		n++
	}
	if 1<<n != rho.N || n < 1 || n > MaxQubits {
		panic(fmt.Sprintf("quantum: invalid density dimension %d", rho.N))
	}
	return &State{numQubits: n, rho: rho}
}

// NumQubits returns the number of qubits in the state.
func (s *State) NumQubits() int { return s.numQubits }

// Dim returns the Hilbert space dimension 2^n.
func (s *State) Dim() int { return 1 << s.numQubits }

// Density returns a copy of the underlying density matrix.
func (s *State) Density() Matrix { return s.rho.Copy() }

// Copy returns a deep copy of the state.
func (s *State) Copy() *State {
	return &State{numQubits: s.numQubits, rho: s.rho.Copy()}
}

// TraceReal returns the (real part of the) trace; it should be 1 for a
// normalised state.
func (s *State) TraceReal() float64 { return real(s.rho.Trace()) }

// Normalize rescales the state to unit trace. It panics if the trace is
// numerically zero.
func (s *State) Normalize() {
	t := real(s.rho.Trace())
	if t <= 1e-15 {
		panic("quantum: cannot normalise zero-trace state")
	}
	inv := complex(1/t, 0)
	for i := range s.rho.Data {
		s.rho.Data[i] *= inv
	}
}

// Tensor returns the joint state s ⊗ other.
func (s *State) Tensor(other *State) *State {
	n := s.numQubits + other.numQubits
	if n > MaxQubits {
		panic("quantum: tensor product exceeds MaxQubits")
	}
	return &State{numQubits: n, rho: s.rho.Kron(other.rho)}
}

// expandInto embeds a k-qubit operator acting on the listed qubits into the
// full 2^n dimensional space, writing into the scratch buffers' full matrix.
func (s *State) expandInto(b *scratch, op Matrix, qubits []int) {
	k := len(qubits)
	if op.N != 1<<k {
		panic(fmt.Sprintf("quantum: operator dimension %d does not match %d qubits", op.N, k))
	}
	var seen [MaxQubits]bool
	for _, q := range qubits {
		if q < 0 || q >= s.numQubits {
			panic(fmt.Sprintf("quantum: qubit index %d out of range", q))
		}
		if seen[q] {
			panic(fmt.Sprintf("quantum: duplicate qubit index %d", q))
		}
		seen[q] = true
	}
	n := s.numQubits
	dim := 1 << n
	// Tabulate the sub-space index and the non-target remainder of every
	// basis index once, instead of recomputing them in the inner loop.
	for i := 0; i < dim; i++ {
		b.sub[i] = subIndex(i, qubits, n)
		b.rest[i] = maskOut(i, qubits, n)
	}
	zeroData(b.full)
	// For every pair of full-space basis states (i, j), the matrix element is
	// op[sub(i), sub(j)] when the non-target qubits agree, else 0.
	for i := 0; i < dim; i++ {
		si := b.sub[i]
		rest := b.rest[i]
		for j := 0; j < dim; j++ {
			if b.rest[j] != rest {
				continue
			}
			b.full.Data[i*dim+j] = op.Data[si*op.N+b.sub[j]]
		}
	}
}

// subIndex extracts the bits of the listed qubits of basis index i into a
// compact sub-index in qubit-list order.
func subIndex(i int, qubits []int, n int) int {
	out := 0
	for _, q := range qubits {
		bit := (i >> (n - 1 - q)) & 1
		out = out<<1 | bit
	}
	return out
}

// maskOut zeroes the bits of the listed qubits of basis index i.
func maskOut(i int, qubits []int, n int) int {
	for _, q := range qubits {
		i &^= 1 << (n - 1 - q)
	}
	return i
}

// ApplyUnitary applies a unitary acting on the listed qubits, in place:
// ρ → UρU†.
func (s *State) ApplyUnitary(u Matrix, qubits ...int) {
	b := s.ensureScratch()
	s.expandInto(b, u, qubits)
	zeroData(b.t1)
	mulInto(b.t1, b.full, s.rho)
	daggerInto(b.dag, b.full)
	// ρ is fully consumed by the first product, so it doubles as the output
	// buffer of the second.
	zeroData(s.rho)
	mulInto(s.rho, b.t1, b.dag)
}

// ApplyKraus applies a completely positive map given by Kraus operators
// acting on the listed qubits, in place: ρ → Σ K ρ K†.
func (s *State) ApplyKraus(kraus []Matrix, qubits ...int) {
	b := s.ensureScratch()
	zeroData(b.acc)
	for _, k := range kraus {
		s.expandInto(b, k, qubits)
		s.sandwichInto(b)
		for i := range b.acc.Data {
			b.acc.Data[i] += b.t2.Data[i]
		}
	}
	copy(s.rho.Data, b.acc.Data)
}

// ExpectationReal returns Tr(op·ρ) (real part) for an operator on the listed
// qubits. Only the diagonal of the product is formed; each diagonal entry
// accumulates in the same order as a full row-times-column product would,
// so the result is bit-identical to real((op·ρ).Trace()).
func (s *State) ExpectationReal(op Matrix, qubits ...int) float64 {
	b := s.ensureScratch()
	s.expandInto(b, op, qubits)
	n := s.Dim()
	var t complex128
	for i := 0; i < n; i++ {
		var d complex128
		row := b.full.Data[i*n:]
		for k := 0; k < n; k++ {
			a := row[k]
			if a == 0 {
				continue
			}
			d += a * s.rho.Data[k*n+i]
		}
		t += d
	}
	return real(t)
}

// PartialTrace traces out the listed qubits and returns the reduced state on
// the remaining qubits (ordered as before, with the traced qubits removed).
func (s *State) PartialTrace(traceOut ...int) *State {
	drop := map[int]bool{}
	for _, q := range traceOut {
		if q < 0 || q >= s.numQubits {
			panic(fmt.Sprintf("quantum: qubit index %d out of range", q))
		}
		drop[q] = true
	}
	var keep []int
	for q := 0; q < s.numQubits; q++ {
		if !drop[q] {
			keep = append(keep, q)
		}
	}
	if len(keep) == 0 {
		panic("quantum: cannot trace out all qubits")
	}
	n := s.numQubits
	keepDim := 1 << len(keep)
	dropList := traceOutSorted(drop)
	dropDim := 1 << len(dropList)
	out := NewMatrix(keepDim)
	for ki := 0; ki < keepDim; ki++ {
		for kj := 0; kj < keepDim; kj++ {
			var sum complex128
			for d := 0; d < dropDim; d++ {
				i := composeIndex(ki, keep, d, dropList, n)
				j := composeIndex(kj, keep, d, dropList, n)
				sum += s.rho.Data[i*s.Dim()+j]
			}
			out.Set(ki, kj, sum)
		}
	}
	return &State{numQubits: len(keep), rho: out}
}

func traceOutSorted(drop map[int]bool) []int {
	var out []int
	for q := 0; q < MaxQubits; q++ {
		if drop[q] {
			out = append(out, q)
		}
	}
	return out
}

// composeIndex rebuilds a full basis index from sub-indices over the keep and
// drop qubit lists.
func composeIndex(keepIdx int, keep []int, dropIdx int, dropList []int, n int) int {
	i := 0
	for bit, q := range keep {
		if keepIdx>>(len(keep)-1-bit)&1 == 1 {
			i |= 1 << (n - 1 - q)
		}
	}
	for bit, q := range dropList {
		if dropIdx>>(len(dropList)-1-bit)&1 == 1 {
			i |= 1 << (n - 1 - q)
		}
	}
	return i
}

// Probability returns the probability of obtaining the POVM element e (an
// operator on the listed qubits): Tr(E·ρ).
func (s *State) Probability(e Matrix, qubits ...int) float64 {
	p := s.ExpectationReal(e, qubits...)
	switch {
	case p < 0 && p > -1e-12:
		return 0
	case p > 1 && p < 1+1e-12:
		return 1
	default:
		return p
	}
}

// Collapse applies a Kraus operator for an observed measurement outcome and
// renormalises. It returns the probability of the outcome; if the
// probability is numerically zero the state is left unchanged and 0 is
// returned.
func (s *State) Collapse(kraus Matrix, qubits ...int) float64 {
	b := s.ensureScratch()
	s.expandInto(b, kraus, qubits)
	s.sandwichInto(b)
	p := real(b.t2.Trace())
	if p <= 1e-15 {
		return 0
	}
	inv := complex(1/p, 0)
	for i := range b.t2.Data {
		s.rho.Data[i] = b.t2.Data[i] * inv
	}
	return p
}

// Purity returns Tr(ρ²), 1 for pure states.
func (s *State) Purity() float64 {
	return real(s.rho.Mul(s.rho).Trace())
}
