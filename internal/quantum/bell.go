package quantum

import (
	"math"
)

// BellState labels the four maximally entangled two-qubit Bell states.
type BellState int

// The four Bell states (Eqs. 9–12 of the paper's appendix).
const (
	PhiPlus  BellState = iota // (|00⟩+|11⟩)/√2
	PhiMinus                  // (|00⟩−|11⟩)/√2
	PsiPlus                   // (|01⟩+|10⟩)/√2
	PsiMinus                  // (|01⟩−|10⟩)/√2
)

// String renders the conventional name of the Bell state.
func (b BellState) String() string {
	switch b {
	case PhiPlus:
		return "Phi+"
	case PhiMinus:
		return "Phi-"
	case PsiPlus:
		return "Psi+"
	case PsiMinus:
		return "Psi-"
	default:
		return "?"
	}
}

// BellKet returns the state vector of the Bell state.
func BellKet(b BellState) Ket {
	s := complex(1/math.Sqrt2, 0)
	switch b {
	case PhiPlus:
		return Ket{s, 0, 0, s}
	case PhiMinus:
		return Ket{s, 0, 0, -s}
	case PsiPlus:
		return Ket{0, s, s, 0}
	case PsiMinus:
		return Ket{0, s, -s, 0}
	default:
		panic("quantum: unknown Bell state")
	}
}

// NewBellState returns a two-qubit density matrix prepared in the given Bell
// state.
func NewBellState(b BellState) *State { return NewStateFromKet(BellKet(b)) }

// Fidelity returns the fidelity F = ⟨ψ|ρ|ψ⟩ of the state with the pure
// target ket (Eq. 15). The ket dimension must match the state dimension.
func (s *State) Fidelity(target Ket) float64 {
	if len(target) != s.Dim() {
		panic("quantum: fidelity target dimension mismatch")
	}
	var f complex128
	dim := s.Dim()
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			f += conj(target[i]) * s.rho.Data[i*dim+j] * target[j]
		}
	}
	return clamp01(real(f))
}

// BellFidelity returns the fidelity of a two-qubit state with the given Bell
// state.
func (s *State) BellFidelity(b BellState) float64 {
	if s.numQubits != 2 {
		panic("quantum: BellFidelity requires a two-qubit state")
	}
	return s.Fidelity(BellKet(b))
}

// conj is a small helper avoiding an extra cmplx import at call sites.
func conj(c complex128) complex128 { return complex(real(c), -imag(c)) }

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// QBER holds the quantum bit error rates in the three measurement bases.
type QBER struct {
	X, Y, Z float64
}

// FidelityFromQBER converts QBER estimates into a fidelity estimate with the
// |Ψ−⟩ target using Eq. (16): F = 1 − (QBERX+QBERY+QBERZ)/2.
func FidelityFromQBER(q QBER) float64 {
	return clamp01(1 - (q.X+q.Y+q.Z)/2)
}

// ExpectedQBER computes the exact QBER of a two-qubit state with respect to
// the correlation pattern of the given Bell state: the probability that the
// two measurement outcomes violate the ideal (anti-)correlation in each
// basis.
func ExpectedQBER(s *State, target BellState) QBER {
	if s.NumQubits() != 2 {
		panic("quantum: ExpectedQBER requires a two-qubit state")
	}
	var q QBER
	q.X = errorProbability(s, BasisX, target)
	q.Y = errorProbability(s, BasisY, target)
	q.Z = errorProbability(s, BasisZ, target)
	return q
}

// correlated reports whether ideal measurement outcomes in the given basis
// are equal (true) or opposite (false) for the Bell state.
func correlated(b BasisLabel, target BellState) bool {
	// For |Φ+⟩: correlated in X and Z, anti-correlated in Y.
	// For |Φ−⟩: correlated in Z and Y? No — derive from stabilisers:
	//   Φ+ : +XX, −YY? Actually Φ+ has stabilisers XX, ZZ, −YY.
	//   Φ− : −XX, ZZ, YY.
	//   Ψ+ : XX, −ZZ, YY.
	//   Ψ− : −XX, −ZZ, −YY.
	// Correlated (outcomes equal) in basis B iff the BB stabiliser has
	// eigenvalue +1.
	switch target {
	case PhiPlus:
		return b == BasisX || b == BasisZ
	case PhiMinus:
		return b == BasisZ || b == BasisY
	case PsiPlus:
		return b == BasisX || b == BasisY
	case PsiMinus:
		return false
	default:
		panic("quantum: unknown Bell state")
	}
}

// errorProbability returns the probability that measuring both qubits of s
// in basis b yields outcomes inconsistent with the ideal correlations of the
// target Bell state.
func errorProbability(s *State, b BasisLabel, target BellState) float64 {
	pEqual := 0.0
	for outcome := 0; outcome < 2; outcome++ {
		pA := BasisProjector(b, outcome)
		pB := BasisProjector(b, outcome)
		joint := pA.Kron(pB)
		pEqual += s.ExpectationReal(joint, 0, 1)
	}
	pEqual = clamp01(pEqual)
	if correlated(b, target) {
		return 1 - pEqual
	}
	return pEqual
}

// MeasureCorrelation samples a joint measurement of both qubits of a
// two-qubit state in the same basis and returns the two outcomes. The
// uniform sample u in [0,1) selects the branch, so callers drive randomness
// explicitly (keeping all stochasticity inside the simulator RNG).
func MeasureCorrelation(s *State, b BasisLabel, u float64) (outcomeA, outcomeB int) {
	if s.NumQubits() != 2 {
		panic("quantum: MeasureCorrelation requires a two-qubit state")
	}
	// Joint outcome probabilities p(a,b).
	var probs [4]float64
	idx := 0
	for a := 0; a < 2; a++ {
		for bb := 0; bb < 2; bb++ {
			joint := BasisProjector(b, a).Kron(BasisProjector(b, bb))
			probs[idx] = clamp01(s.ExpectationReal(joint, 0, 1))
			idx++
		}
	}
	total := probs[0] + probs[1] + probs[2] + probs[3]
	if total <= 0 {
		return 0, 0
	}
	x := u * total
	for i, p := range probs {
		x -= p
		if x < 0 {
			return i / 2, i % 2
		}
	}
	return 1, 1
}
