package quantum

import (
	"math"
	"testing"
)

// TestWernerStateProperties checks the Werner construction: unit trace,
// requested Bell fidelity, and the weight/fidelity inversions.
func TestWernerStateProperties(t *testing.T) {
	for _, target := range []BellState{PhiPlus, PhiMinus, PsiPlus, PsiMinus} {
		for _, f := range []float64{0.25, 0.5, 0.8, 0.97, 1.0} {
			s := WernerState(target, f)
			if tr := s.TraceReal(); math.Abs(tr-1) > 1e-12 {
				t.Fatalf("Werner(%v, %g) trace = %g", target, f, tr)
			}
			if got := s.BellFidelity(target); math.Abs(got-f) > 1e-12 {
				t.Fatalf("Werner(%v, %g) fidelity = %g", target, f, got)
			}
			if got := WernerFidelity(WernerWeight(f)); math.Abs(got-f) > 1e-12 {
				t.Fatalf("weight/fidelity inversion broken at %g: %g", f, got)
			}
		}
	}
}

// TestTwirlPreservesFidelity checks the twirl keeps the target fidelity while
// mapping onto the exact Werner form.
func TestTwirlPreservesFidelity(t *testing.T) {
	s := NewBellState(PsiPlus)
	ApplyMemoryNoise(s, 0, 0.3, T1T2Params{T1: 1, T2: 0.5})
	s.ApplyKraus(DephasingKraus(0.07), 1)
	before := s.BellFidelity(PsiPlus)
	got := TwirlToWerner(s, PsiPlus)
	if math.Abs(got-before) > 1e-12 {
		t.Fatalf("twirl changed fidelity: %g -> %g", before, got)
	}
	want := WernerState(PsiPlus, before)
	if !s.Density().Equalish(want.Density(), 1e-12) {
		t.Fatalf("twirled state is not Werner form")
	}
}

// swapWernerChain swaps a chain of Werner pairs left to right with ideal
// BSMs, applying the bookkeeping correction after every swap so the running
// segment is always labelled PsiPlus, and returns the final state.
func swapWernerChain(t *testing.T, fidelities []float64, us []float64) *State {
	t.Helper()
	seg := WernerState(PsiPlus, fidelities[0])
	for i := 1; i < len(fidelities); i++ {
		next := WernerState(PsiPlus, fidelities[i])
		reduced, m := SwapVia(seg, next, 1, 0, 1.0, us[i-1])
		label := SwappedBell(PsiPlus, PsiPlus, m)
		reduced.ApplyUnitary(CorrectionPauli(label, PsiPlus), 1)
		seg = reduced
	}
	return seg
}

// TestSwapFidelityComposition pins the exact density-matrix swap against the
// closed-form Werner composition F = (1+3·∏wᵢ)/4 for chains of 2, 3, 4 and 5
// pairs (1 to 4 swaps), across every BSM outcome branch.
func TestSwapFidelityComposition(t *testing.T) {
	cases := [][]float64{
		{0.95, 0.9},
		{0.9, 0.85, 0.8},
		{0.97, 0.93, 0.89, 0.85},
		{0.95, 0.9, 0.85, 0.8, 0.75},
	}
	// Outcome branch samples: u near 0, mid, and near 1 exercise different
	// measured Bell states.
	branches := []float64{0.01, 0.3, 0.6, 0.99}
	for _, fids := range cases {
		want := ComposedSwapFidelity(fids...)
		for _, u := range branches {
			us := make([]float64, len(fids)-1)
			for i := range us {
				us[i] = u
			}
			seg := swapWernerChain(t, fids, us)
			got := seg.BellFidelity(PsiPlus)
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("%d-pair chain (u=%g): swapped fidelity %.12f, closed form %.12f", len(fids), u, got, want)
			}
			// The composed state must itself be Werner, so further composition
			// stays exact.
			if !seg.Density().Equalish(WernerState(PsiPlus, got).Density(), 1e-9) {
				t.Errorf("%d-pair chain (u=%g): swapped state is not Werner", len(fids), u)
			}
		}
	}
}

// TestSwapNoisyBSMPrediction checks SwapPredictFidelity against the exact
// simulation when the BSM qubits pass through depolarising noise.
func TestSwapNoisyBSMPrediction(t *testing.T) {
	const fL, fR, gate = 0.95, 0.9, 0.98
	want := SwapPredictFidelity(fL, fR, gate)
	for _, u := range []float64{0.1, 0.4, 0.7, 0.95} {
		reduced, m := SwapVia(WernerState(PsiPlus, fL), WernerState(PsiPlus, fR), 1, 0, gate, u)
		reduced.ApplyUnitary(CorrectionPauli(SwappedBell(PsiPlus, PsiPlus, m), PsiPlus), 1)
		got := reduced.BellFidelity(PsiPlus)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("noisy swap (u=%g): fidelity %.12f, predicted %.12f", u, got, want)
		}
	}
}

// TestMeasureBellOutcomeDistribution checks the BSM on a pure Bell pair
// tensor product: all four outcomes occur with probability 1/4, and the
// branch selection follows the uniform sample.
func TestMeasureBellOutcomeDistribution(t *testing.T) {
	for i, u := range []float64{0.1, 0.35, 0.6, 0.85} {
		joint := NewBellState(PsiPlus).Tensor(NewBellState(PsiPlus))
		m := MeasureBell(joint, 1, 2, u)
		if int(m) != i {
			t.Errorf("u=%g selected outcome %v, want branch %d", u, m, i)
		}
	}
}

// TestSwappedBellTable spot-checks the derived swap bookkeeping against the
// textbook identities for Phi+ inputs: the far-end label equals the BSM
// outcome when both inputs are Phi+.
func TestSwappedBellTable(t *testing.T) {
	for m := PhiPlus; m <= PsiMinus; m++ {
		if got := SwappedBell(PhiPlus, PhiPlus, m); got != m {
			t.Errorf("SwappedBell(Phi+, Phi+, %v) = %v, want %v", m, got, m)
		}
	}
	// Psi+ inputs follow the Pauli-frame algebra σ(b1)·σ(m)·σ(b2) over the
	// Phi+ frame: outcome Phi+ leaves X·I·X = I (so Phi+), outcome Psi+
	// leaves X·X·X = X (so Psi+).
	if got := SwappedBell(PsiPlus, PsiPlus, PhiPlus); got != PhiPlus {
		t.Errorf("SwappedBell(Psi+, Psi+, Phi+) = %v, want Phi+", got)
	}
	if got := SwappedBell(PsiPlus, PsiPlus, PsiPlus); got != PsiPlus {
		t.Errorf("SwappedBell(Psi+, Psi+, Psi+) = %v, want Psi+", got)
	}
}

// TestCorrectionPauliBookkeeping verifies every (from, to) correction entry
// by applying it: the corrected state must match the target exactly, and the
// from == to entries must be the identity.
func TestCorrectionPauliBookkeeping(t *testing.T) {
	for from := PhiPlus; from <= PsiMinus; from++ {
		for to := PhiPlus; to <= PsiMinus; to++ {
			s := NewBellState(from)
			s.ApplyUnitary(CorrectionPauli(from, to), 1)
			if f := s.BellFidelity(to); math.Abs(f-1) > 1e-12 {
				t.Errorf("correction %v -> %v leaves fidelity %g", from, to, f)
			}
			if (from == to) != CorrectionIsIdentity(from, to) {
				t.Errorf("CorrectionIsIdentity(%v, %v) inconsistent", from, to)
			}
		}
	}
}

// TestCorrectionAfterDecoherence checks that the Pauli frame bookkeeping
// composes with noise: correcting a decohered pair still yields the fidelity
// the noise-free label algebra predicts (corrections commute with the Werner
// part of the state).
func TestCorrectionAfterDecoherence(t *testing.T) {
	for from := PhiPlus; from <= PsiMinus; from++ {
		s := WernerState(from, 0.87)
		s.ApplyUnitary(CorrectionPauli(from, PsiPlus), 1)
		if f := s.BellFidelity(PsiPlus); math.Abs(f-0.87) > 1e-12 {
			t.Errorf("Werner correction %v -> Psi+: fidelity %g, want 0.87", from, f)
		}
	}
}
