package quantum

import (
	"math"
)

// This file implements the noise channels of Appendix D as Kraus-operator
// maps: dephasing, depolarisation, amplitude damping, and the combined
// T1/T2 memory decoherence model used for the NV electron and carbon spins.

// DephasingKraus returns the Kraus operators of the single-qubit dephasing
// channel ρ → (1−p)·ρ + p·ZρZ (Eq. 14 / Eq. 24 of the paper).
func DephasingKraus(p float64) []Matrix {
	checkProbability(p, "dephasing")
	k0 := I2().Scale(complex(math.Sqrt(1-p), 0))
	k1 := PauliZ().Scale(complex(math.Sqrt(p), 0))
	return []Matrix{k0, k1}
}

// DepolarizingKraus returns the Kraus operators of the single-qubit
// depolarising channel ρ → f·ρ + (1−f)/3·(XρX + YρY + ZρZ) used for state
// initialisation noise (Appendix D.3.1); f is the channel fidelity.
func DepolarizingKraus(f float64) []Matrix {
	checkProbability(f, "depolarizing fidelity")
	p := (1 - f) / 3
	return []Matrix{
		I2().Scale(complex(math.Sqrt(f), 0)),
		PauliX().Scale(complex(math.Sqrt(p), 0)),
		PauliY().Scale(complex(math.Sqrt(p), 0)),
		PauliZ().Scale(complex(math.Sqrt(p), 0)),
	}
}

// AmplitudeDampingKraus returns the Kraus operators of the amplitude damping
// channel with damping parameter p, used to model photon loss on the
// presence/absence encoding (Appendix D.4.4–D.4.6).
func AmplitudeDampingKraus(p float64) []Matrix {
	checkProbability(p, "amplitude damping")
	k0 := matrix2(1, 0, 0, complex(math.Sqrt(1-p), 0))
	k1 := matrix2(0, complex(math.Sqrt(p), 0), 0, 0)
	return []Matrix{k0, k1}
}

// GateNoiseKraus returns the dephasing channel applied after a perfect gate
// to model a noisy gate of the given fidelity (Appendix D.3.1).
func GateNoiseKraus(fidelity float64) []Matrix {
	return DephasingKraus(1 - fidelity)
}

// T1T2Params captures the exponential relaxation (T1) and dephasing (T2)
// times of a memory, in seconds. A zero or infinite value disables the
// corresponding decay.
type T1T2Params struct {
	T1 float64 // energy relaxation time (s); 0 or +Inf means no relaxation
	T2 float64 // dephasing time (s); 0 or +Inf means no dephasing
}

// decayProb converts an elapsed time and characteristic time into a decay
// probability 1 − exp(−t/τ), treating τ ≤ 0 or +Inf as "no decay".
func decayProb(elapsed, tau float64) float64 {
	if tau <= 0 || math.IsInf(tau, 1) || elapsed <= 0 {
		return 0
	}
	return 1 - math.Exp(-elapsed/tau)
}

// MemoryNoiseKraus returns the Kraus operators modelling storage of a qubit
// for elapsed seconds in a memory with the given T1/T2 times. The model is
// the standard composition of amplitude damping (T1) followed by pure
// dephasing chosen so the off-diagonal decay matches exp(−t/T2); this is the
// behaviour illustrated by Figure 9 of the paper.
func MemoryNoiseKraus(elapsed float64, p T1T2Params) [][]Matrix {
	var maps [][]Matrix
	pAmp := decayProb(elapsed, p.T1)
	if pAmp > 0 {
		maps = append(maps, AmplitudeDampingKraus(pAmp))
	}
	// Effective dephasing so the coherence decays by exp(-t/T2) overall.
	// Amplitude damping already shrinks coherences by sqrt(1-pAmp) which
	// corresponds to exp(-t/(2·T1)); the residual dephasing must supply the
	// remainder: exp(-t/T2) = sqrt(1-pAmp)·(1-2·pDeph).
	target := 0.0
	if p.T2 > 0 && !math.IsInf(p.T2, 1) && elapsed > 0 {
		target = math.Exp(-elapsed / p.T2)
	} else {
		target = 1
	}
	residual := 1.0
	if target < 1 {
		shrink := math.Sqrt(1 - pAmp)
		if shrink <= 0 {
			residual = 1
		} else {
			residual = target / shrink
		}
		if residual > 1 {
			residual = 1
		}
		if residual < 0 {
			residual = 0
		}
		pDeph := (1 - residual) / 2
		if pDeph > 0 {
			maps = append(maps, DephasingKraus(pDeph))
		}
	}
	return maps
}

// ApplyMemoryNoise applies the T1/T2 decoherence of elapsed seconds to the
// given qubit of the state.
func ApplyMemoryNoise(s *State, qubit int, elapsed float64, p T1T2Params) {
	for _, kraus := range MemoryNoiseKraus(elapsed, p) {
		s.ApplyKraus(kraus, qubit)
	}
}

// NuclearDephasingPerAttempt returns the dephasing probability applied to a
// carbon (memory) spin for one entanglement generation attempt, as a
// function of the bright state population α, the electron-carbon coupling
// strength Δω (rad/s) and the decay constant τd (s): Eq. (25) of the paper.
func NuclearDephasingPerAttempt(alpha, deltaOmega, tauD float64) float64 {
	if alpha < 0 || alpha > 1 {
		panic("quantum: bright state population out of range")
	}
	return alpha / 2 * (1 - math.Exp(-deltaOmega*deltaOmega*tauD*tauD/2))
}

// BlochXYShrinkage returns the factor by which the equatorial Bloch vector
// shrinks after n entanglement attempts with per-attempt dephasing pd:
// (1−pd)^n, Eq. (26).
func BlochXYShrinkage(pd float64, n int) float64 {
	checkProbability(pd, "per-attempt dephasing")
	return math.Pow(1-pd, float64(n))
}

func checkProbability(p float64, what string) {
	if p < -1e-12 || p > 1+1e-12 || math.IsNaN(p) {
		panic("quantum: " + what + " probability out of [0,1]")
	}
}
