package quantum

import (
	"fmt"
	"math"
)

// BellDiag is the Bell-diagonal fast path of the PairState abstraction: the
// pair is ρ = Σ_b λ_b |b⟩⟨b| over the four Bell states, stored as four real
// coefficients. Every operation the protocol stack performs on a pair maps
// to O(1) closed-form arithmetic on the coefficients — no complex matrices,
// no allocations:
//
//   - a single-qubit Pauli channel permutes the coefficients (X swaps
//     Φ±↔Ψ±, Y swaps Φ+↔Ψ− and Φ−↔Ψ+, Z swaps Φ+↔Φ− and Ψ+↔Ψ−; the
//     permutation is the same for either qubit because every Bell-state
//     density matrix is invariant under qubit exchange),
//   - T1/T2 storage decoherence is applied as the Pauli twirl of the dense
//     amplitude-damping + dephasing model: the twirled channel has Bloch
//     shrink factors η_x = η_y = e^(−t/T2), η_z = e^(−t/T1), i.e. the Pauli
//     channel with pX = pY = (1−η_z)/4 and pZ = (1+η_z−2η_x)/4,
//   - an entanglement swap composes coefficient-wise: for Bell-diagonal
//     inputs every BSM outcome has probability 1/4 and the far-end
//     coefficients are ν_k = Σ_{i,j : swapped(i,j,m)=k} λ_i μ_j, reusing the
//     exact swap tables derived by the dense simulator,
//   - readout reduces to classical sampling: both marginals of a
//     Bell-diagonal state are maximally mixed, the asymmetric readout POVM
//     acts as a classical confusion matrix, and the post-measurement state
//     of the surviving qubit is diagonal in the measured basis, so it is
//     carried as a single conditional probability.
//
// Validity envelope: for Bell-diagonal states under Pauli noise (dephasing,
// depolarisation, Pauli-frame corrections, twirled links — everything the
// paper's closed-form composition F = (1+3·∏w)/4 assumes) the coefficients
// evolve exactly as the dense simulator's Bell-basis diagonal, so fidelity
// and QBER agree to floating-point accuracy. Under full NV hardware
// parameters two approximations appear, both quantified by the equivalence
// tests: (1) the heralded optical state is projected onto its Bell-basis
// diagonal (exact for the fidelity/QBER of the heralded pair itself, but the
// discarded single-qubit polarisation slightly shifts later Z-readout
// thresholds), and (2) finite-T1 storage uses the twirled channel, which
// drops the non-unital drift towards |0⟩ — an O((t/T1)²) fidelity error once
// both qubits have decayed, negligible for protocol storage times ≪ T1.
type BellDiag struct {
	// lam are the Bell-basis weights, indexed by BellState
	// (PhiPlus, PhiMinus, PsiPlus, PsiMinus). They sum to the trace.
	lam [4]float64

	// Readout bookkeeping: after the first qubit is measured the pair is a
	// classical record — the measured basis and the conditional probability
	// that an ideal measurement of the surviving qubit in that basis yields
	// outcome 0, given the declared first outcome.
	phase    int8 // 0 = entangled, 1 = one qubit read out, 2 = both
	measured int8 // qubit index of the first readout
	basis    BasisLabel
	q0       float64
}

// NewBellDiag builds a Bell-diagonal pair from explicit coefficients.
func NewBellDiag(lam [4]float64) *BellDiag {
	d := &BellDiag{}
	d.SetCoefficients(lam)
	return d
}

// NewBellDiagWerner builds the Werner state of the given fidelity with the
// target Bell state.
func NewBellDiagWerner(target BellState, fidelity float64) *BellDiag {
	var lam [4]float64
	rest := (1 - fidelity) / 3
	for b := range lam {
		lam[b] = rest
	}
	lam[target] = fidelity
	return NewBellDiag(lam)
}

// BellDiagFromDense projects a dense two-qubit state onto its Bell-basis
// diagonal — the bilateral-twirl image of the state. The projection
// preserves the fidelity with every Bell state and all same-basis
// correlation statistics (QBER) exactly.
func BellDiagFromDense(s *State) *BellDiag {
	var lam [4]float64
	for b := PhiPlus; b <= PsiMinus; b++ {
		lam[b] = s.Fidelity(BellKet(b))
	}
	return NewBellDiag(lam)
}

// BellDiagCoefficients returns the Bell-basis diagonal of a dense two-qubit
// state without constructing a BellDiag (used to precompute herald caches).
func BellDiagCoefficients(s *State) [4]float64 {
	var lam [4]float64
	for b := PhiPlus; b <= PsiMinus; b++ {
		lam[b] = s.Fidelity(BellKet(b))
	}
	return lam
}

// SetCoefficients resets the pair in place to a fresh (unmeasured)
// Bell-diagonal state — the zero-allocation herald path: pooled pairs are
// reused by resetting their coefficients.
func (d *BellDiag) SetCoefficients(lam [4]float64) {
	for _, v := range lam {
		if v < -1e-12 || math.IsNaN(v) {
			panic(fmt.Sprintf("quantum: negative Bell-diagonal coefficient %v", v))
		}
	}
	d.lam = lam
	d.phase = 0
	d.measured = 0
	d.basis = BasisZ
	d.q0 = 0
}

// Coefficients returns the current Bell-basis weights.
func (d *BellDiag) Coefficients() [4]float64 { return d.lam }

// BellFidelity implements PairState: the fidelity with a Bell state is its
// coefficient. Only meaningful before readout (like the dense simulator,
// whose post-collapse fidelity is equally void of meaning).
func (d *BellDiag) BellFidelity(b BellState) float64 { return d.lam[b] }

// TraceReal implements PairState.
func (d *BellDiag) TraceReal() float64 {
	if d.phase > 0 {
		return 1
	}
	return d.lam[0] + d.lam[1] + d.lam[2] + d.lam[3]
}

// ExpectedQBER implements PairState: the probability of equal outcomes in
// basis β is Σ_b λ_b over the Bell states correlated in β (the σβ⊗σβ parity
// observable is diagonal in the Bell basis), inverted against the target's
// correlation pattern.
func (d *BellDiag) ExpectedQBER(target BellState) QBER {
	var q QBER
	q.X = d.errorProbability(BasisX, target)
	q.Y = d.errorProbability(BasisY, target)
	q.Z = d.errorProbability(BasisZ, target)
	return q
}

func (d *BellDiag) errorProbability(b BasisLabel, target BellState) float64 {
	pEqual := 0.0
	for s := PhiPlus; s <= PsiMinus; s++ {
		if correlated(b, s) {
			pEqual += d.lam[s]
		}
	}
	pEqual = clamp01(pEqual)
	if correlated(b, target) {
		return 1 - pEqual
	}
	return pEqual
}

// pauliFlipsBasis reports whether the Pauli op anticommutes with the basis
// observable — i.e. flips the measured-basis eigenstates of a qubit.
func pauliFlipsBasis(op PauliOp, b BasisLabel) bool {
	switch op {
	case OpX:
		return b == BasisZ || b == BasisY
	case OpY:
		return b == BasisZ || b == BasisX
	case OpZ:
		return b == BasisX || b == BasisY
	default:
		return false
	}
}

// applyPauliChannel applies the single-qubit Pauli channel
// {1−pX−pY−pZ: I, pX: X, pY: Y, pZ: Z} to the given qubit.
func (d *BellDiag) applyPauliChannel(qubit int, pX, pY, pZ float64) {
	if pX <= 0 && pY <= 0 && pZ <= 0 {
		return
	}
	if d.phase > 0 {
		if int(d.measured) == qubit || d.phase > 1 {
			return // noise on a destroyed qubit is unobservable
		}
		flip := 0.0
		if pauliFlipsBasis(OpX, d.basis) {
			flip += pX
		}
		if pauliFlipsBasis(OpY, d.basis) {
			flip += pY
		}
		if pauliFlipsBasis(OpZ, d.basis) {
			flip += pZ
		}
		d.q0 = d.q0*(1-flip) + (1-d.q0)*flip
		return
	}
	pI := 1 - pX - pY - pZ
	l := d.lam
	d.lam[PhiPlus] = pI*l[PhiPlus] + pX*l[PsiPlus] + pY*l[PsiMinus] + pZ*l[PhiMinus]
	d.lam[PhiMinus] = pI*l[PhiMinus] + pX*l[PsiMinus] + pY*l[PsiPlus] + pZ*l[PhiPlus]
	d.lam[PsiPlus] = pI*l[PsiPlus] + pX*l[PhiPlus] + pY*l[PhiMinus] + pZ*l[PsiMinus]
	d.lam[PsiMinus] = pI*l[PsiMinus] + pX*l[PhiMinus] + pY*l[PhiPlus] + pZ*l[PsiPlus]
}

// ApplyMemoryNoise implements PairState with the Pauli twirl of the dense
// T1/T2 model: the dense channel is amplitude damping (pAmp = 1−e^(−t/T1))
// followed by the residual dephasing that brings the total coherence decay
// to e^(−t/T2); its Bloch shrink factors are η_z = 1−pAmp and
// η_x = η_y = √(1−pAmp)·(1−2·pDeph), reproduced here with the same clamping
// as MemoryNoiseKraus so the two backends agree bit-for-bit on which regimes
// decay at all.
func (d *BellDiag) ApplyMemoryNoise(qubit int, elapsed float64, p T1T2Params) {
	pAmp := decayProb(elapsed, p.T1)
	etaZ := 1 - pAmp
	shrink := math.Sqrt(etaZ)
	etaXY := shrink
	target := 1.0
	if p.T2 > 0 && !math.IsInf(p.T2, 1) && elapsed > 0 {
		target = math.Exp(-elapsed / p.T2)
	}
	if target < 1 {
		residual := 1.0
		if shrink > 0 {
			residual = target / shrink
			if residual > 1 {
				residual = 1
			}
			if residual < 0 {
				residual = 0
			}
		}
		etaXY = shrink * residual
	}
	pXY := (1 - etaZ) / 4
	pZ := (1 + etaZ - 2*etaXY) / 4
	if pZ < 0 {
		pZ = 0
	}
	d.applyPauliChannel(qubit, pXY, pXY, pZ)
}

// ApplyDephasing implements PairState.
func (d *BellDiag) ApplyDephasing(qubit int, p float64) {
	if p <= 0 {
		return
	}
	checkProbability(p, "dephasing")
	d.applyPauliChannel(qubit, 0, 0, p)
}

// ApplyDepolarizing implements PairState.
func (d *BellDiag) ApplyDepolarizing(qubit int, fidelity float64) {
	checkProbability(fidelity, "depolarizing fidelity")
	p := (1 - fidelity) / 3
	d.applyPauliChannel(qubit, p, p, p)
}

// ApplyPauli implements PairState: a deterministic Pauli unitary is the
// probability-one Pauli channel.
func (d *BellDiag) ApplyPauli(qubit int, op PauliOp) {
	switch op {
	case OpI:
	case OpX:
		d.applyPauliChannel(qubit, 1, 0, 0)
	case OpY:
		d.applyPauliChannel(qubit, 0, 1, 0)
	case OpZ:
		d.applyPauliChannel(qubit, 0, 0, 1)
	default:
		panic("quantum: pauli index out of range")
	}
}

// Twirl implements PairState: a Bell-diagonal state twirls onto the Werner
// state by spreading the non-target weight evenly.
func (d *BellDiag) Twirl(target BellState) float64 {
	if d.phase > 0 {
		panic("quantum: cannot twirl a measured pair")
	}
	f := d.lam[target]
	rest := (1 - f) / 3
	for b := range d.lam {
		d.lam[b] = rest
	}
	d.lam[target] = f
	return f
}

// Readout implements PairState. The basis-rotation gate noise
// (rotationFidelity) is dephasing in the measured basis, which commutes with
// the measurement and therefore cannot shift any outcome probability — it is
// accepted for interface parity and ignored. The declared outcome uses the
// same threshold convention as the dense path (declare 1 when u ≥ p0).
func (d *BellDiag) Readout(qubit int, basis BasisLabel, rotationFidelity, fid0, fid1, u float64) int {
	_ = rotationFidelity
	switch d.phase {
	case 0:
		// First readout: the marginal of a Bell-diagonal state is I/2, so
		// the declared-0 probability is the confusion-matrix average.
		p0 := (fid0 + (1 - fid1)) / 2
		outcome := 0
		if u >= p0 {
			outcome = 1
		}
		// Probability that the ideal outcomes of the two qubits agree in
		// this basis.
		pEqual := 0.0
		for s := PhiPlus; s <= PsiMinus; s++ {
			if correlated(basis, s) {
				pEqual += d.lam[s]
			}
		}
		trace := d.lam[0] + d.lam[1] + d.lam[2] + d.lam[3]
		if trace > 0 {
			pEqual = clamp01(pEqual / trace)
		} else {
			pEqual = 0.5
		}
		// Posterior over the first qubit's ideal outcome given what was
		// declared, then propagate through the correlation to the surviving
		// qubit.
		var w float64 // P(ideal first outcome = 0 | declared)
		if outcome == 0 {
			w = posterior(fid0, 1-fid1)
		} else {
			w = posterior(1-fid0, fid1)
		}
		d.q0 = w*pEqual + (1-w)*(1-pEqual)
		d.phase = 1
		d.measured = int8(qubit)
		d.basis = basis
		return outcome
	case 1:
		if qubit == int(d.measured) {
			panic("quantum: qubit already read out")
		}
		pTrue0 := 0.5
		if basis == d.basis {
			pTrue0 = d.q0
		}
		p0 := pTrue0*fid0 + (1-pTrue0)*(1-fid1)
		outcome := 0
		if u >= p0 {
			outcome = 1
		}
		d.phase = 2
		return outcome
	default:
		panic("quantum: both qubits already read out")
	}
}

// posterior returns P(true=0 | declared) for confusion-matrix entries
// pDeclared0 = P(declared | true=0) and pDeclared1 = P(declared | true=1),
// with the maximally-mixed 1/2 prior of a Bell-diagonal marginal.
func posterior(pDeclared0, pDeclared1 float64) float64 {
	total := pDeclared0 + pDeclared1
	if total <= 0 {
		return 0.5
	}
	return pDeclared0 / total
}

// SwapBellDiag performs one entanglement swap between two Bell-diagonal
// pairs entirely by value: the BSM gate noise depolarises one qubit of each
// input (exactly what the dense path applies to the two measured qubits —
// for Bell-diagonal states either qubit gives the same coefficient map), the
// outcome is selected uniformly (every BSM outcome of a Bell-diagonal
// product has probability 1/4) by the sample u, and the far-end coefficients
// compose through the exact swap tables. Neither input is mutated and
// nothing escapes to the heap.
func SwapBellDiag(left, right *BellDiag, gateFidelity, u float64) (BellDiag, BellState) {
	if left.phase > 0 || right.phase > 0 {
		panic("quantum: cannot swap a measured pair")
	}
	ll, rl := *left, *right
	if gateFidelity < 1 {
		ll.ApplyDepolarizing(0, gateFidelity)
		rl.ApplyDepolarizing(0, gateFidelity)
	}
	// Outcome branch: uniform quarters, selected with the same subtractive
	// scan as the dense MeasureBell so identical samples pick identical
	// outcomes.
	outcome := PsiMinus
	x := u
	for b := PhiPlus; b <= PsiMinus; b++ {
		x -= 0.25
		if x < 0 {
			outcome = b
			break
		}
	}
	var far BellDiag
	for i := PhiPlus; i <= PsiMinus; i++ {
		li := ll.lam[i]
		if li == 0 {
			continue
		}
		for j := PhiPlus; j <= PsiMinus; j++ {
			far.lam[SwappedBell(i, j, outcome)] += li * rl.lam[j]
		}
	}
	return far, outcome
}

// SwapWith implements PairState; it wraps SwapBellDiag and heap-allocates
// only the returned pair object.
func (d *BellDiag) SwapWith(right PairState, qThis, qRight int, gateFidelity, u float64) (PairState, BellState) {
	_ = qThis // Bell-diagonal states are invariant under qubit exchange,
	_ = qRight
	r, ok := right.(*BellDiag)
	if !ok {
		panic("quantum: cannot swap a Bell-diagonal pair with a non-Bell-diagonal pair")
	}
	far, outcome := SwapBellDiag(d, r, gateFidelity, u)
	out := new(BellDiag)
	*out = far
	return out, outcome
}

// Dense implements PairState: no dense representation is kept.
func (d *BellDiag) Dense() *State { return nil }
