package quantum

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

const tol = 1e-9

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestNewStateIsGroundState(t *testing.T) {
	s := NewState(2)
	if s.NumQubits() != 2 || s.Dim() != 4 {
		t.Fatalf("unexpected dims: %d qubits, dim %d", s.NumQubits(), s.Dim())
	}
	if !almostEqual(s.TraceReal(), 1) {
		t.Fatalf("trace = %v, want 1", s.TraceReal())
	}
	if !almostEqual(s.Fidelity(Ket{1, 0, 0, 0}), 1) {
		t.Fatal("ground state should have fidelity 1 with |00⟩")
	}
}

func TestKetNormalization(t *testing.T) {
	// Unnormalised ket should be normalised on construction.
	s := NewStateFromKet(Ket{2, 0})
	if !almostEqual(s.TraceReal(), 1) {
		t.Fatalf("trace = %v, want 1", s.TraceReal())
	}
	if !almostEqual(s.Fidelity(Ket{1, 0}), 1) {
		t.Fatal("fidelity with |0⟩ should be 1")
	}
}

func TestPauliXFlips(t *testing.T) {
	s := NewState(1)
	s.ApplyUnitary(PauliX(), 0)
	if !almostEqual(s.Fidelity(Ket{0, 1}), 1) {
		t.Fatal("X|0⟩ should be |1⟩")
	}
	s.ApplyUnitary(PauliX(), 0)
	if !almostEqual(s.Fidelity(Ket{1, 0}), 1) {
		t.Fatal("XX|0⟩ should be |0⟩")
	}
}

func TestHadamardCreatesSuperposition(t *testing.T) {
	s := NewState(1)
	s.ApplyUnitary(Hadamard(), 0)
	invSqrt2 := complex(1/math.Sqrt2, 0)
	if !almostEqual(s.Fidelity(Ket{invSqrt2, invSqrt2}), 1) {
		t.Fatal("H|0⟩ should be |+⟩")
	}
	if !almostEqual(s.Purity(), 1) {
		t.Fatal("pure state should have purity 1")
	}
}

func TestCNOTCreatesBellState(t *testing.T) {
	s := NewState(2)
	s.ApplyUnitary(Hadamard(), 0)
	s.ApplyUnitary(CNOT(), 0, 1)
	if f := s.BellFidelity(PhiPlus); !almostEqual(f, 1) {
		t.Fatalf("H,CNOT circuit should give Φ+, fidelity %v", f)
	}
}

func TestBellStateTransforms(t *testing.T) {
	// Eq. (13): Φ− = Z_A Φ+, Ψ+ = X_A Φ+, Ψ− = Z_A X_A Φ+.
	cases := []struct {
		name   string
		gates  []Matrix
		target BellState
	}{
		{"Z gives Phi-", []Matrix{PauliZ()}, PhiMinus},
		{"X gives Psi+", []Matrix{PauliX()}, PsiPlus},
		{"XZ gives Psi-", []Matrix{PauliX(), PauliZ()}, PsiMinus},
	}
	for _, tc := range cases {
		s := NewBellState(PhiPlus)
		for _, g := range tc.gates {
			s.ApplyUnitary(g, 0)
		}
		if f := s.BellFidelity(tc.target); !almostEqual(f, 1) {
			t.Errorf("%s: fidelity %v", tc.name, f)
		}
	}
}

func TestPsiMinusToPsiPlusCorrection(t *testing.T) {
	// The MHP correction: apply Z on one qubit of Ψ− to obtain Ψ+.
	s := NewBellState(PsiMinus)
	s.ApplyUnitary(PauliZ(), 0)
	if f := s.BellFidelity(PsiPlus); !almostEqual(f, 1) {
		t.Fatalf("Z correction should map Ψ− to Ψ+, fidelity %v", f)
	}
}

func TestUnitaryOnSecondQubit(t *testing.T) {
	s := NewState(2)
	s.ApplyUnitary(PauliX(), 1)
	if !almostEqual(s.Fidelity(Ket{0, 1, 0, 0}), 1) {
		t.Fatal("X on qubit 1 should give |01⟩")
	}
}

func TestTwoQubitGateOnReversedOrder(t *testing.T) {
	// CNOT with control=1, target=0 applied to |01⟩ should give |11⟩.
	s := NewState(2)
	s.ApplyUnitary(PauliX(), 1)
	s.ApplyUnitary(CNOT(), 1, 0)
	if !almostEqual(s.Fidelity(Ket{0, 0, 0, 1}), 1) {
		t.Fatal("reversed CNOT should flip qubit 0 when qubit 1 is |1⟩")
	}
}

func TestTensorAndPartialTrace(t *testing.T) {
	bell := NewBellState(PhiPlus)
	extra := NewState(1)
	extra.ApplyUnitary(PauliX(), 0)
	joint := bell.Tensor(extra)
	if joint.NumQubits() != 3 {
		t.Fatalf("joint state should have 3 qubits, got %d", joint.NumQubits())
	}
	// Tracing out the extra qubit should recover the Bell state.
	reduced := joint.PartialTrace(2)
	if f := reduced.BellFidelity(PhiPlus); !almostEqual(f, 1) {
		t.Fatalf("partial trace should recover Φ+, fidelity %v", f)
	}
	// Tracing out one Bell qubit should give the maximally mixed state.
	mixed := bell.PartialTrace(0)
	rho := mixed.Density()
	if !almostEqual(real(rho.At(0, 0)), 0.5) || !almostEqual(real(rho.At(1, 1)), 0.5) {
		t.Fatalf("reduced Bell state should be maximally mixed, got %v, %v", rho.At(0, 0), rho.At(1, 1))
	}
	if cmplx.Abs(rho.At(0, 1)) > tol {
		t.Fatal("reduced Bell state should have no coherence")
	}
}

func TestPartialTraceMiddleQubit(t *testing.T) {
	// Prepare |0⟩ ⊗ Φ+ on qubits (0; 1,2), then trace out qubit 1: the
	// remaining pair (0,2) should be a product state with qubit 2 mixed.
	bell := NewBellState(PhiPlus)
	s := NewState(1).Tensor(bell)
	reduced := s.PartialTrace(1)
	if reduced.NumQubits() != 2 {
		t.Fatalf("expected 2 qubits, got %d", reduced.NumQubits())
	}
	rho := reduced.Density()
	// Expect diag(1/2, 1/2, 0, 0): qubit0=|0⟩, qubit2 maximally mixed.
	if !almostEqual(real(rho.At(0, 0)), 0.5) || !almostEqual(real(rho.At(1, 1)), 0.5) {
		t.Fatalf("unexpected reduced state diagonal: %v %v", rho.At(0, 0), rho.At(1, 1))
	}
}

func TestCollapseProjectiveMeasurement(t *testing.T) {
	s := NewState(1)
	s.ApplyUnitary(Hadamard(), 0)
	p := s.Collapse(ProjectorZ(0), 0)
	if !almostEqual(p, 0.5) {
		t.Fatalf("collapse probability should be 0.5, got %v", p)
	}
	if !almostEqual(s.Fidelity(Ket{1, 0}), 1) {
		t.Fatal("collapsed state should be |0⟩")
	}
	// Collapsing onto an orthogonal outcome now has probability zero and
	// leaves the state unchanged.
	if p := s.Collapse(ProjectorZ(1), 0); p != 0 {
		t.Fatalf("orthogonal collapse should have probability 0, got %v", p)
	}
}

func TestBellMeasurementCorrelations(t *testing.T) {
	// Φ+ must be correlated in Z and X, anti-correlated in Y.
	s := NewBellState(PhiPlus)
	q := ExpectedQBER(s, PhiPlus)
	if !almostEqual(q.X, 0) || !almostEqual(q.Y, 0) || !almostEqual(q.Z, 0) {
		t.Fatalf("perfect Φ+ should have zero QBER, got %+v", q)
	}
	// Ψ− is anti-correlated in every basis; QBER against Ψ− target is 0.
	sm := NewBellState(PsiMinus)
	qm := ExpectedQBER(sm, PsiMinus)
	if !almostEqual(qm.X, 0) || !almostEqual(qm.Y, 0) || !almostEqual(qm.Z, 0) {
		t.Fatalf("perfect Ψ− should have zero QBER, got %+v", qm)
	}
	// Measuring Φ+ against the Ψ− correlation pattern should give errors.
	qWrong := ExpectedQBER(s, PsiMinus)
	if qWrong.Z < 0.9 {
		t.Fatalf("Φ+ measured against Ψ− pattern should show Z errors, got %+v", qWrong)
	}
}

func TestFidelityFromQBERRelation(t *testing.T) {
	// Apply a known depolarising-like mixture to Ψ− and check Eq. (16).
	s := NewBellState(PsiMinus)
	s.ApplyKraus(DephasingKraus(0.1), 0)
	q := ExpectedQBER(s, PsiMinus)
	fEstimate := FidelityFromQBER(q)
	fDirect := s.BellFidelity(PsiMinus)
	if math.Abs(fEstimate-fDirect) > 1e-9 {
		t.Fatalf("Eq.16 violated: estimate %v direct %v", fEstimate, fDirect)
	}
}

func TestMeasureCorrelationSampling(t *testing.T) {
	s := NewBellState(PhiPlus)
	// In the Z basis outcomes must always be equal for Φ+.
	for _, u := range []float64{0.01, 0.3, 0.6, 0.99} {
		a, b := MeasureCorrelation(s, BasisZ, u)
		if a != b {
			t.Fatalf("Φ+ Z outcomes should be equal, got %d %d", a, b)
		}
	}
	// In the Y basis outcomes must always differ for Φ+.
	for _, u := range []float64{0.01, 0.3, 0.6, 0.99} {
		a, b := MeasureCorrelation(s, BasisY, u)
		if a == b {
			t.Fatalf("Φ+ Y outcomes should differ, got %d %d", a, b)
		}
	}
}

func TestRotationGatesComposition(t *testing.T) {
	// RotX(π) should equal X up to global phase: check action on |0⟩.
	s := NewState(1)
	s.ApplyUnitary(RotX(math.Pi), 0)
	if !almostEqual(s.Fidelity(Ket{0, 1}), 1) {
		t.Fatal("RotX(π)|0⟩ should be |1⟩ up to phase")
	}
	// RotZ leaves |0⟩ invariant.
	s2 := NewState(1)
	s2.ApplyUnitary(RotZ(1.23), 0)
	if !almostEqual(s2.Fidelity(Ket{1, 0}), 1) {
		t.Fatal("RotZ should not change |0⟩ populations")
	}
	// RotY(π/2)|0⟩ = |+⟩.
	s3 := NewState(1)
	s3.ApplyUnitary(RotY(math.Pi/2), 0)
	inv := complex(1/math.Sqrt2, 0)
	if !almostEqual(s3.Fidelity(Ket{inv, inv}), 1) {
		t.Fatal("RotY(π/2)|0⟩ should be |+⟩")
	}
}

func TestControlledRotX(t *testing.T) {
	// With control |0⟩ the carbon rotates by +θ; with |1⟩ by −θ. Composing
	// the two (via an X on the control in between) should cancel.
	theta := math.Pi / 3
	s := NewState(2)
	s.ApplyUnitary(ControlledRotX(theta), 0, 1)
	s.ApplyUnitary(PauliX(), 0)
	s.ApplyUnitary(ControlledRotX(theta), 0, 1)
	s.ApplyUnitary(PauliX(), 0)
	if !almostEqual(s.Fidelity(Ket{1, 0, 0, 0}), 1) {
		t.Fatal("±θ controlled rotations should cancel")
	}
}

func TestGateUnitarity(t *testing.T) {
	gates := map[string]Matrix{
		"X": PauliX(), "Y": PauliY(), "Z": PauliZ(), "H": Hadamard(), "S": SGate(),
		"RotX": RotX(0.7), "RotY": RotY(1.1), "RotZ": RotZ(2.3),
		"CNOT": CNOT(), "CZ": CZ(), "SWAP": SWAP(), "cRX": ControlledRotX(0.9),
	}
	for name, g := range gates {
		prod := g.Dagger().Mul(g)
		if !prod.Equalish(Identity(g.N), 1e-9) {
			t.Errorf("%s is not unitary", name)
		}
	}
}

func TestKrausCompleteness(t *testing.T) {
	channels := map[string][]Matrix{
		"dephasing":    DephasingKraus(0.3),
		"depolarizing": DepolarizingKraus(0.9),
		"ampdamp":      AmplitudeDampingKraus(0.25),
		"gate noise":   GateNoiseKraus(0.95),
	}
	for name, kraus := range channels {
		sum := NewMatrix(2)
		for _, k := range kraus {
			term := k.Dagger().Mul(k)
			sum = sum.Add(term)
		}
		if !sum.Equalish(Identity(2), 1e-9) {
			t.Errorf("%s Kraus operators do not sum to identity", name)
		}
	}
}

func TestDephasingReducesBellFidelity(t *testing.T) {
	s := NewBellState(PsiPlus)
	s.ApplyKraus(DephasingKraus(0.2), 0)
	f := s.BellFidelity(PsiPlus)
	// Dephasing with p on one qubit: F = 1-p.
	if !almostEqual(f, 0.8) {
		t.Fatalf("dephasing 0.2 should give F=0.8, got %v", f)
	}
	if !almostEqual(s.TraceReal(), 1) {
		t.Fatal("channel should preserve trace")
	}
}

func TestFullDephasingKillsCoherence(t *testing.T) {
	s := NewState(1)
	s.ApplyUnitary(Hadamard(), 0)
	s.ApplyKraus(DephasingKraus(0.5), 0)
	rho := s.Density()
	if cmplx.Abs(rho.At(0, 1)) > tol {
		t.Fatal("p=1/2 dephasing should remove all coherence")
	}
}

func TestAmplitudeDampingDecaysExcitedState(t *testing.T) {
	s := NewState(1)
	s.ApplyUnitary(PauliX(), 0) // |1⟩
	s.ApplyKraus(AmplitudeDampingKraus(0.4), 0)
	rho := s.Density()
	if !almostEqual(real(rho.At(1, 1)), 0.6) || !almostEqual(real(rho.At(0, 0)), 0.4) {
		t.Fatalf("amplitude damping populations wrong: %v %v", rho.At(0, 0), rho.At(1, 1))
	}
}

func TestMemoryNoiseT1T2(t *testing.T) {
	// Store |+⟩ for time t in a memory with T2; the coherence should decay as
	// exp(-t/T2), so fidelity with |+⟩ is (1+exp(-t/T2))/2.
	params := T1T2Params{T1: math.Inf(1), T2: 1.0}
	s := NewState(1)
	s.ApplyUnitary(Hadamard(), 0)
	ApplyMemoryNoise(s, 0, 0.7, params)
	inv := complex(1/math.Sqrt2, 0)
	want := (1 + math.Exp(-0.7)) / 2
	if got := s.Fidelity(Ket{inv, inv}); math.Abs(got-want) > 1e-9 {
		t.Fatalf("T2 decay fidelity = %v, want %v", got, want)
	}
	// With T1 only, |1⟩ decays towards |0⟩ with probability 1-exp(-t/T1).
	s2 := NewState(1)
	s2.ApplyUnitary(PauliX(), 0)
	ApplyMemoryNoise(s2, 0, 0.5, T1T2Params{T1: 1.0, T2: math.Inf(1)})
	rho := s2.Density()
	wantPop := math.Exp(-0.5)
	if math.Abs(real(rho.At(1, 1))-wantPop) > 1e-9 {
		t.Fatalf("T1 decay population = %v, want %v", real(rho.At(1, 1)), wantPop)
	}
	// Zero elapsed time must be a no-op.
	s3 := NewBellState(PhiPlus)
	ApplyMemoryNoise(s3, 0, 0, T1T2Params{T1: 1, T2: 1})
	if !almostEqual(s3.BellFidelity(PhiPlus), 1) {
		t.Fatal("zero elapsed time should not decohere")
	}
}

func TestMemoryNoiseBellDecay(t *testing.T) {
	// Figure 9 behaviour: storing one half of Ψ+ in a noisy memory reduces
	// fidelity monotonically with storage time.
	params := T1T2Params{T1: 2.68e-3, T2: 1.0e-3}
	prev := 1.0
	for _, dt := range []float64{0, 0.2e-3, 0.5e-3, 1e-3, 2e-3, 5e-3} {
		s := NewBellState(PsiPlus)
		ApplyMemoryNoise(s, 0, dt, params)
		f := s.BellFidelity(PsiPlus)
		if f > prev+1e-12 {
			t.Fatalf("fidelity should decrease with time, %v then %v", prev, f)
		}
		prev = f
	}
	if prev < 0.25 || prev > 0.9 {
		t.Fatalf("long-time fidelity out of plausible range: %v", prev)
	}
}

func TestNuclearDephasingFormula(t *testing.T) {
	// Eq. (25) with the paper's C1 parameters: Δω = 2π·377 kHz, τd = 82 ns.
	deltaOmega := 2 * math.Pi * 377e3
	tauD := 82e-9
	pd := NuclearDephasingPerAttempt(0.1, deltaOmega, tauD)
	if pd <= 0 || pd >= 0.05 {
		t.Fatalf("per-attempt dephasing out of expected range: %v", pd)
	}
	// Monotone in alpha.
	if NuclearDephasingPerAttempt(0.3, deltaOmega, tauD) <= pd {
		t.Fatal("dephasing should increase with alpha")
	}
	// Eq. (26): shrinkage after N attempts.
	if got := BlochXYShrinkage(pd, 100); math.Abs(got-math.Pow(1-pd, 100)) > 1e-12 {
		t.Fatalf("shrinkage mismatch: %v", got)
	}
}

func TestProbabilityAndExpectation(t *testing.T) {
	s := NewBellState(PhiPlus)
	p00 := ProjectorZ(0).Kron(ProjectorZ(0))
	p01 := ProjectorZ(0).Kron(ProjectorZ(1))
	if !almostEqual(s.Probability(p00, 0, 1), 0.5) {
		t.Fatalf("P(00) = %v, want 0.5", s.Probability(p00, 0, 1))
	}
	if !almostEqual(s.Probability(p01, 0, 1), 0) {
		t.Fatalf("P(01) = %v, want 0", s.Probability(p01, 0, 1))
	}
}

func TestPurity(t *testing.T) {
	pure := NewBellState(PhiPlus)
	if !almostEqual(pure.Purity(), 1) {
		t.Fatalf("Bell state purity = %v", pure.Purity())
	}
	mixed := pure.PartialTrace(1)
	if !almostEqual(mixed.Purity(), 0.5) {
		t.Fatalf("maximally mixed qubit purity = %v", mixed.Purity())
	}
}

func TestBasisProjectorsSumToIdentity(t *testing.T) {
	for _, b := range []BasisLabel{BasisX, BasisY, BasisZ} {
		sum := BasisProjector(b, 0).Add(BasisProjector(b, 1))
		if !sum.Equalish(Identity(2), 1e-9) {
			t.Errorf("basis %v projectors do not sum to identity", b)
		}
		// Projectors must be idempotent.
		p := BasisProjector(b, 0)
		if !p.Mul(p).Equalish(p, 1e-9) {
			t.Errorf("basis %v projector not idempotent", b)
		}
	}
}

func TestMatrixKronDimensions(t *testing.T) {
	k := PauliX().Kron(Identity(2))
	if k.N != 4 {
		t.Fatalf("Kron dimension = %d, want 4", k.N)
	}
	// (X ⊗ I)|00⟩ = |10⟩.
	s := NewState(2)
	s.ApplyUnitary(k, 0, 1)
	if !almostEqual(s.Fidelity(Ket{0, 0, 1, 0}), 1) {
		t.Fatal("X⊗I applied incorrectly")
	}
}

func TestStateCopyIndependence(t *testing.T) {
	s := NewBellState(PhiPlus)
	c := s.Copy()
	c.ApplyUnitary(PauliX(), 0)
	if !almostEqual(s.BellFidelity(PhiPlus), 1) {
		t.Fatal("mutating a copy changed the original")
	}
}

func TestInvalidInputsPanic(t *testing.T) {
	assertPanics(t, "zero qubits", func() { NewState(0) })
	assertPanics(t, "too many qubits", func() { NewState(MaxQubits + 1) })
	assertPanics(t, "bad ket dim", func() { NewStateFromKet(Ket{1, 0, 0}) })
	assertPanics(t, "qubit out of range", func() { NewState(1).ApplyUnitary(PauliX(), 3) })
	assertPanics(t, "duplicate qubit", func() { NewState(2).ApplyUnitary(CNOT(), 0, 0) })
	assertPanics(t, "trace all out", func() { NewState(1).PartialTrace(0) })
	assertPanics(t, "bad probability", func() { DephasingKraus(1.5) })
	assertPanics(t, "bad fidelity target", func() { NewState(2).Fidelity(Ket{1, 0}) })
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

// Property: applying any sequence of Kraus channels preserves the trace and
// keeps fidelity within [0, 1].
func TestPropertyChannelsPreserveTrace(t *testing.T) {
	f := func(p1, p2, p3 float64, choice uint8) bool {
		clamp := func(v float64) float64 { return math.Mod(math.Abs(v), 1) }
		s := NewBellState(BellState(int(choice) % 4))
		s.ApplyKraus(DephasingKraus(clamp(p1)), 0)
		s.ApplyKraus(AmplitudeDampingKraus(clamp(p2)), 1)
		s.ApplyKraus(DepolarizingKraus(clamp(p3)), 0)
		if math.Abs(s.TraceReal()-1) > 1e-6 {
			return false
		}
		fid := s.BellFidelity(PsiPlus)
		return fid >= 0 && fid <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: fidelity of a state with itself (pure) is 1 regardless of the
// single-qubit unitary applied to both sides of a product state.
func TestPropertyUnitaryPreservesPurity(t *testing.T) {
	f := func(theta float64) bool {
		theta = math.Mod(theta, 2*math.Pi)
		s := NewBellState(PhiPlus)
		s.ApplyUnitary(RotZ(theta), 0)
		s.ApplyUnitary(RotZ(-theta), 1)
		return math.Abs(s.Purity()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: QBER-derived fidelity always matches direct fidelity for states
// reached from Ψ− by dephasing/amplitude damping (Eq. 16 holds for
// Bell-diagonal perturbations of the target).
func TestPropertyQBERFidelityConsistency(t *testing.T) {
	f := func(p float64) bool {
		p = math.Mod(math.Abs(p), 1)
		s := NewBellState(PsiMinus)
		s.ApplyKraus(DephasingKraus(p), 0)
		q := ExpectedQBER(s, PsiMinus)
		return math.Abs(FidelityFromQBER(q)-s.BellFidelity(PsiMinus)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
