package quantum

import "testing"

// In-place operator application must not allocate once a state's scratch
// buffers exist. These pins protect the per-attempt hot path: every gate,
// Kraus map, expectation and collapse in the simulation funnels through
// these four entry points.
func TestOperatorApplicationAllocFree(t *testing.T) {
	s := NewBellState(PsiPlus)
	x := PauliX()
	kraus := DephasingKraus(0.1)
	proj := ProjectorZ(0)
	s.ApplyUnitary(x, 0) // allocate the scratch buffers once

	if a := testing.AllocsPerRun(100, func() { s.ApplyUnitary(x, 0) }); a != 0 {
		t.Fatalf("ApplyUnitary allocated %v objects per run, want 0", a)
	}
	if a := testing.AllocsPerRun(100, func() { s.ApplyKraus(kraus, 0) }); a != 0 {
		t.Fatalf("ApplyKraus allocated %v objects per run, want 0", a)
	}
	if a := testing.AllocsPerRun(100, func() { _ = s.ExpectationReal(proj, 0) }); a != 0 {
		t.Fatalf("ExpectationReal allocated %v objects per run, want 0", a)
	}
	if a := testing.AllocsPerRun(100, func() { _ = s.Collapse(proj, 0) }); a != 0 {
		t.Fatalf("Collapse allocated %v objects per run, want 0", a)
	}
}

// Two-qubit operators on a larger state (the swap hot path) must be
// allocation-free too.
func TestTwoQubitApplicationAllocFree(t *testing.T) {
	s := NewBellState(PsiPlus).Tensor(NewBellState(PhiPlus))
	cnot := CNOT()
	s.ApplyUnitary(cnot, 1, 2)
	if a := testing.AllocsPerRun(100, func() { s.ApplyUnitary(cnot, 1, 2) }); a != 0 {
		t.Fatalf("two-qubit ApplyUnitary allocated %v objects per run, want 0", a)
	}
}

// The scratch buffers belong to exactly one state: copies start fresh and
// mutating a copy must not disturb the original (aliasing through a shared
// buffer would).
func TestScratchNotSharedByCopy(t *testing.T) {
	s := NewBellState(PsiPlus)
	s.ApplyUnitary(PauliX(), 0)
	s.ApplyUnitary(PauliX(), 0) // back to Ψ+
	c := s.Copy()
	c.ApplyUnitary(PauliZ(), 0)
	if f := s.BellFidelity(PsiPlus); f < 1-1e-12 {
		t.Fatalf("mutating a copy disturbed the original: F = %v", f)
	}
	if f := c.BellFidelity(PsiMinus); f < 1-1e-12 {
		t.Fatalf("copy did not evolve independently: F = %v", f)
	}
}
