package quantum

import (
	"math"
	"math/cmplx"
)

// Single-qubit Pauli and Hadamard gates, and the 2×2 identity, as 2×2
// matrices in the computational basis.
func matrix2(a, b, c, d complex128) Matrix {
	m := NewMatrix(2)
	m.Data[0], m.Data[1], m.Data[2], m.Data[3] = a, b, c, d
	return m
}

// I2 returns the single-qubit identity.
func I2() Matrix { return matrix2(1, 0, 0, 1) }

// PauliX returns the bit-flip gate X.
func PauliX() Matrix { return matrix2(0, 1, 1, 0) }

// PauliY returns the Pauli Y gate.
func PauliY() Matrix { return matrix2(0, -1i, 1i, 0) }

// PauliZ returns the phase-flip gate Z.
func PauliZ() Matrix { return matrix2(1, 0, 0, -1) }

// Hadamard returns the Hadamard gate H.
func Hadamard() Matrix {
	s := complex(1/math.Sqrt2, 0)
	return matrix2(s, s, s, -s)
}

// SGate returns the phase gate S = diag(1, i).
func SGate() Matrix { return matrix2(1, 0, 0, 1i) }

// RotX returns a rotation of angle theta about the X axis of the Bloch
// sphere: exp(-i·theta/2·X).
func RotX(theta float64) Matrix {
	c := complex(math.Cos(theta/2), 0)
	s := complex(0, -math.Sin(theta/2))
	return matrix2(c, s, s, c)
}

// RotY returns a rotation of angle theta about the Y axis.
func RotY(theta float64) Matrix {
	c := complex(math.Cos(theta/2), 0)
	s := complex(math.Sin(theta/2), 0)
	return matrix2(c, -s, s, c)
}

// RotZ returns a rotation of angle theta about the Z axis.
func RotZ(theta float64) Matrix {
	return matrix2(cmplx.Exp(complex(0, -theta/2)), 0, 0, cmplx.Exp(complex(0, theta/2)))
}

// CNOT returns the controlled-NOT gate with qubit 0 as control and qubit 1
// as target (4×4).
func CNOT() Matrix {
	m := NewMatrix(4)
	m.Set(0, 0, 1)
	m.Set(1, 1, 1)
	m.Set(2, 3, 1)
	m.Set(3, 2, 1)
	return m
}

// CZ returns the controlled-Z gate (4×4).
func CZ() Matrix {
	m := Identity(4)
	m.Set(3, 3, -1)
	return m
}

// SWAP returns the two-qubit SWAP gate (4×4).
func SWAP() Matrix {
	m := NewMatrix(4)
	m.Set(0, 0, 1)
	m.Set(1, 2, 1)
	m.Set(2, 1, 1)
	m.Set(3, 3, 1)
	return m
}

// ControlledRotX returns the NV electron-carbon conditional rotation of
// Appendix D.2.2 (Eq. 22): RX(+theta) when the control (qubit 0) is |0⟩ and
// RX(−theta) when it is |1⟩.
func ControlledRotX(theta float64) Matrix {
	m := NewMatrix(4)
	plus := RotXPositive(theta)
	minus := RotXPositive(-theta)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			m.Set(i, j, plus.At(i, j))
			m.Set(2+i, 2+j, minus.At(i, j))
		}
	}
	return m
}

// RotXPositive returns exp(+i·theta/2·X), the sign convention used by
// Eq. (22) of the paper's appendix.
func RotXPositive(theta float64) Matrix {
	c := complex(math.Cos(theta/2), 0)
	s := complex(0, math.Sin(theta/2))
	return matrix2(c, s, s, c)
}

// BasisLabel identifies one of the three measurement bases used by the
// protocol's measure-directly requests and test rounds.
type BasisLabel int

// Measurement bases.
const (
	BasisZ BasisLabel = iota
	BasisX
	BasisY
)

// String renders the basis name.
func (b BasisLabel) String() string {
	switch b {
	case BasisZ:
		return "Z"
	case BasisX:
		return "X"
	case BasisY:
		return "Y"
	default:
		return "?"
	}
}

// BasisRotation returns the unitary that rotates the given basis into the
// computational (Z) basis, so a Z measurement after the rotation implements
// a measurement in that basis.
func BasisRotation(b BasisLabel) Matrix {
	switch b {
	case BasisZ:
		return I2()
	case BasisX:
		return Hadamard()
	case BasisY:
		// Rotate Y eigenstates onto Z: H·S†.
		sDag := matrix2(1, 0, 0, -1i)
		return Hadamard().Mul(sDag)
	default:
		panic("quantum: unknown basis")
	}
}

// ProjectorZ returns the projector |outcome⟩⟨outcome| on a single qubit for
// outcome 0 or 1.
func ProjectorZ(outcome int) Matrix {
	m := NewMatrix(2)
	if outcome == 0 {
		m.Set(0, 0, 1)
	} else {
		m.Set(1, 1, 1)
	}
	return m
}

// BasisProjector returns the projector onto the 0/1 eigenstate of the given
// basis.
func BasisProjector(b BasisLabel, outcome int) Matrix {
	u := BasisRotation(b)
	p := ProjectorZ(outcome)
	// Projector in original basis: U† P U.
	return u.Dagger().Mul(p).Mul(u)
}
