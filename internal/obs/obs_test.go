package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"repro/internal/sim"
)

// TestRingOverwrite checks flight-recorder semantics: a full ring keeps the
// newest capacity records in write order.
func TestRingOverwrite(t *testing.T) {
	tr := NewTracer(1, 16)
	r := tr.Ring(0, LayerEGP)
	for i := 0; i < 40; i++ {
		r.Record(sim.Time(i), KindEGPOK, 7, int64(i), 0)
	}
	if got := r.Len(); got != 16 {
		t.Fatalf("Len = %d, want 16", got)
	}
	if got := r.Dropped(); got != 24 {
		t.Fatalf("Dropped = %d, want 24", got)
	}
	recs := tr.Records()
	if len(recs) != 16 {
		t.Fatalf("Records len = %d, want 16", len(recs))
	}
	for i, rec := range recs {
		want := int64(24 + i)
		if rec.A != want || rec.At != sim.Time(want) {
			t.Fatalf("record %d: got A=%d At=%d, want %d", i, rec.A, rec.At, want)
		}
	}
}

// TestNilTracer checks the disabled tracer end to end: nil tracer, nil ring,
// empty merge, empty-but-valid Chrome export.
func TestNilTracer(t *testing.T) {
	var tr *Tracer
	if tr.Shards() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer must report zero shards and drops")
	}
	r := tr.Ring(0, LayerSim)
	if r != nil {
		t.Fatal("nil tracer must hand out nil rings")
	}
	r.Record(0, KindBatch, 0, 1, 2) // must not panic
	if got := tr.Records(); got != nil {
		t.Fatalf("nil tracer Records = %v, want nil", got)
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v\n%s", err, buf.String())
	}
}

// TestMergeOrder checks the deterministic merge key (At, Layer, Track, Seq)
// across shards and layers.
func TestMergeOrder(t *testing.T) {
	tr := NewTracer(2, 16)
	// Same timestamp from two shards and two layers, interleaved writes.
	tr.Ring(1, LayerEGP).Record(100, KindEGPOK, 5, 1, 0)
	tr.Ring(0, LayerMHP).Record(100, KindMHPAttempt, 2, 2, 0)
	tr.Ring(0, LayerEGP).Record(100, KindEGPOK, 3, 3, 0)
	tr.Ring(1, LayerEGP).Record(50, KindEGPError, 5, 4, 0)
	recs := tr.Records()
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	wantA := []int64{4, 2, 3, 1} // t=50 first, then layer MHP < EGP, then track 3 < 5
	for i, rec := range recs {
		if rec.A != wantA[i] {
			t.Fatalf("merge order: record %d has A=%d, want %d", i, rec.A, wantA[i])
		}
	}
}

// TestWriteChromeValid builds a small multi-layer trace and checks the
// export parses as JSON with the expected span structure.
func TestWriteChromeValid(t *testing.T) {
	tr := NewTracer(1, 64)
	simRing := tr.Ring(0, LayerSim)
	netRing := tr.Ring(0, LayerNetwork)
	simRing.Record(0, KindBatch, 0, 3, 10)
	netRing.Record(1000, KindE2ECreate, 9, 0, 4)
	netRing.Record(2000, KindE2ESegment, 9, 0, 1)
	netRing.Record(2500, KindE2ESwap, 9, 1, 2)
	netRing.Record(2600, KindE2ECorrection, 9, 4, 2)
	netRing.Record(3000, KindE2EDone, 9, 1, 0)

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		phases[ev["ph"].(string)]++
	}
	if phases["b"] != 1 || phases["e"] != 1 || phases["n"] != 3 || phases["C"] != 1 {
		t.Fatalf("unexpected phase counts: %v", phases)
	}
	if phases["M"] < 2 {
		t.Fatalf("expected process+thread metadata, got %v", phases)
	}
	// The span open must carry the request ID and a µs timestamp of 1.000.
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "b" {
			if ev["id"].(float64) != 9 {
				t.Fatalf("span id = %v, want 9", ev["id"])
			}
			if ev["ts"].(float64) != 1.0 {
				t.Fatalf("span ts = %v, want 1.0", ev["ts"])
			}
		}
	}
}

// TestHistogramBuckets checks the log-linear bucket mapping: exact below 8,
// monotone lower bounds, and lower bound <= value everywhere.
func TestHistogramBuckets(t *testing.T) {
	for v := uint64(0); v < 8; v++ {
		if got := bucketIndex(v); got != int(v) {
			t.Fatalf("bucketIndex(%d) = %d, want exact", v, got)
		}
	}
	prev := -1
	for _, v := range []uint64{0, 1, 7, 8, 9, 15, 16, 31, 100, 1000, 1 << 20, 1 << 40, 1<<63 + 5, math.MaxUint64} {
		i := bucketIndex(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		if low := bucketLow(i); low > v {
			t.Fatalf("bucketLow(%d)=%d > value %d", i, low, v)
		}
		if i < prev {
			t.Fatalf("bucket index not monotone at %d", v)
		}
		prev = i
	}
	// Round-trip: every bucket's lower bound must map back to itself.
	for i := 0; i < histBuckets; i++ {
		if got := bucketIndex(bucketLow(i)); got != i {
			t.Fatalf("bucketIndex(bucketLow(%d)) = %d", i, got)
		}
	}
}

// TestHistogramQuantile checks nearest-rank quantiles at bucket lower bounds.
func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	if h.Count() != 100 || h.Sum() != 5050 {
		t.Fatalf("count/sum = %d/%d", h.Count(), h.Sum())
	}
	p50 := h.Quantile(0.5)
	if p50 < 40 || p50 > 50 {
		t.Fatalf("p50 = %d, want within one bucket of 50", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 88 || p99 > 99 {
		t.Fatalf("p99 = %d, want within one bucket of 99", p99)
	}
	if h.Quantile(0) != 1 {
		t.Fatalf("q0 = %d, want 1", h.Quantile(0))
	}
	// Negative observations clamp to zero rather than corrupting buckets.
	h.Observe(-5)
	if h.Quantile(0) != 0 {
		t.Fatal("negative observation must clamp to bucket 0")
	}
}

// TestRegistrySnapshot checks nil-safety, idempotent registration and the
// two snapshot encodings.
func TestRegistrySnapshot(t *testing.T) {
	var nilReg *Registry
	if nilReg.Counter("x") != nil || nilReg.Gauge("x") != nil || nilReg.Histogram("x") != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	nilReg.Counter("x").Inc() // no-op, no panic
	nilReg.Gauge("x").Set(3)  // no-op
	nilReg.Histogram("x").Observe(1)
	snap := nilReg.Snapshot(sim.Time(sim.Second))
	if snap.SimSeconds != 1 || snap.Counters != nil {
		t.Fatalf("nil registry snapshot = %+v", snap)
	}

	r := NewRegistry()
	c := r.Counter("egp.oks")
	if r.Counter("egp.oks") != c {
		t.Fatal("registration must be idempotent")
	}
	c.Add(41)
	c.Inc()
	r.Gauge("queue.depth").Set(7)
	r.Histogram("ttp_ns").Observe(1500)
	snap = r.Snapshot(sim.Time(2 * sim.Second))
	if snap.Counters["egp.oks"] != 42 {
		t.Fatalf("counter = %d, want 42", snap.Counters["egp.oks"])
	}
	if snap.Gauges["queue.depth"] != 7 {
		t.Fatalf("gauge = %d", snap.Gauges["queue.depth"])
	}
	if st := snap.Histograms["ttp_ns"]; st.Count != 1 || st.Sum != 1500 {
		t.Fatalf("histogram stats = %+v", st)
	}

	var jsonBuf bytes.Buffer
	if err := snap.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(jsonBuf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if back.Counters["egp.oks"] != 42 || back.SimSeconds != 2 {
		t.Fatalf("round-trip = %+v", back)
	}

	var tableBuf bytes.Buffer
	if err := snap.WriteTable(&tableBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(tableBuf.Bytes(), []byte("egp.oks")) {
		t.Fatalf("table missing counter:\n%s", tableBuf.String())
	}
}

// TestClassHistograms checks the per-class bundle and its bounds behavior.
func TestClassHistograms(t *testing.T) {
	r := NewRegistry()
	ch := NewClassHistograms(r, "link.ttp_ns")
	ch.Observe(2, sim.Duration(5*sim.Microsecond))
	ch.Observe(-1, 1) // out of range: no-op
	ch.Observe(99, 1) // out of range: no-op
	if got := ch.Class(2).Count(); got != 1 {
		t.Fatalf("class md count = %d, want 1", got)
	}
	if got := r.Histogram("link.ttp_ns.md").Count(); got != 1 {
		t.Fatalf("registry histogram count = %d, want 1", got)
	}
	var nilCH *ClassHistograms
	nilCH.Observe(0, 1) // no-op, no panic
	if nilCH.Class(0) != nil {
		t.Fatal("nil bundle must return nil class")
	}
	// Nil registry variant: bundle exists, all histograms nil.
	nilRegCH := NewClassHistograms(nil, "x")
	nilRegCH.Observe(1, 100)
	if nilRegCH.Class(1) != nil {
		t.Fatal("nil-registry bundle must hold nil histograms")
	}
}
