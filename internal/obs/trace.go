// Package obs is the simulator's observability substrate: a flight-recorder
// tracer (per-shard, per-layer ring buffers of compact trace records, merged
// deterministically and exported as Chrome trace-event JSON for Perfetto) and
// a metrics registry (atomic counters, gauges and fixed-log-bucket histograms
// snapshotable as JSON or a text table).
//
// Both halves are strictly pay-for-what-you-use. Every recording method has a
// nil receiver fast path, so a disabled tracer or unregistered metric costs
// one predictable nil check and zero allocations on the hot path; with
// observability off the simulation trajectory is byte-identical because the
// tracer never draws randomness and never schedules events.
package obs

import (
	"sort"

	"repro/internal/sim"
)

// Layer identifies which subsystem produced a trace record. Records are
// merged across layers in (At, Layer, Track, Seq) order, so the layer also
// acts as the deterministic tie-break between subsystems that record at the
// same sim timestamp.
type Layer uint8

const (
	// LayerSim carries engine-level records: dispatch batches and shard
	// barrier windows. These depend on the shard count by nature.
	LayerSim Layer = iota
	// LayerMHP carries physical-layer attempt and REPLY records.
	LayerMHP
	// LayerEGP carries link-layer OK/error/expiry lifecycle records.
	LayerEGP
	// LayerNetsim carries per-link traffic records (submit, OK, queue depth).
	LayerNetsim
	// LayerNetwork carries end-to-end request lifecycle spans
	// (CREATE -> segment OKs -> swaps -> corrections -> OK/TIMEOUT).
	LayerNetwork

	// NumLayers is the number of distinct layers; each shard owns one ring
	// per layer so hot engine records never evict sparse protocol records.
	NumLayers = int(LayerNetwork) + 1
)

// String names the layer for the Chrome trace "cat" field.
func (l Layer) String() string {
	switch l {
	case LayerSim:
		return "sim"
	case LayerMHP:
		return "mhp"
	case LayerEGP:
		return "egp"
	case LayerNetsim:
		return "netsim"
	case LayerNetwork:
		return "network"
	}
	return "?"
}

// Kind identifies what happened. The A/B payload fields of a Record are
// interpreted per kind (documented on each constant).
type Kind uint8

const (
	// KindBatch is one same-timestamp dispatch batch. A = batch length,
	// B = events still pending after the batch was collected.
	KindBatch Kind = iota
	// KindWindow is one sharded barrier window. A = cross-shard messages
	// merged at this barrier, B = window span in sim nanoseconds.
	KindWindow
	// KindQueueDepth samples an EGP queue's total occupancy. A = depth.
	KindQueueDepth
	// KindMHPAttempt is one triggered entanglement attempt. A = MHP cycle,
	// B = 1 for create-and-keep, 0 for measure-directly.
	KindMHPAttempt
	// KindMHPReply is a REPLY arriving back at a node. A = outcome
	// (1/2 success, 0 failure), B = midpoint sequence number.
	KindMHPReply
	// KindHerald is a midpoint heralding decision. A = outcome (1/2 success,
	// 0 failure), B = midpoint sequence number (0 on failure).
	KindHerald
	// KindHeraldDrop is a midpoint discard before the BSM: A = 0 time window
	// mismatch, 1 missing partner, 2 queue-ID mismatch.
	KindHeraldDrop
	// KindEGPOK is a delivered pair. A = create ID, B = pairs remaining.
	KindEGPOK
	// KindEGPError is a request rejection or failure. A = create ID
	// (-1 when unknown), B = error code.
	KindEGPError
	// KindEGPExpire is an EXPIRE exchange for a desynchronised pair.
	// A = absolute MHP sequence, B = 0 sent, 1 received.
	KindEGPExpire
	// KindSubmit is a CREATE submitted to a link. A = create ID,
	// B = requested pairs.
	KindSubmit
	// KindLinkOK is an origin-side delivered link pair. A = create ID,
	// B = pairs remaining.
	KindLinkOK
	// KindE2ECreate opens an end-to-end request span. A = source node,
	// B = destination node. Track = request ID.
	KindE2ECreate
	// KindE2ESegment marks one constituent link segment ready.
	// A = segment endpoint a, B = endpoint b.
	KindE2ESegment
	// KindE2ESwap marks an entanglement swap at a repeater. A = swapping
	// node, B = pre-correction Bell label.
	KindE2ESwap
	// KindE2ECorrection marks the Pauli correction applied at the b-end.
	// A = correcting node, B = Bell label received in the frame.
	KindE2ECorrection
	// KindE2EOK marks one delivered end-to-end pair. A = pairs delivered so
	// far, B = pairs requested.
	KindE2EOK
	// KindE2EDone closes the span successfully. A = pairs delivered.
	KindE2EDone
	// KindE2EFail closes the span with a failure. A = pairs delivered,
	// B = the link-layer error code (wire.EGPError).
	KindE2EFail
	// KindLinkState is a link admin-state transition from the fault
	// injector. A = new state, B = previous state (netsim.LinkState values).
	// Track = FaultTrack | link ID, so fault events get their own track.
	KindLinkState
	// KindReroute marks an in-flight end-to-end request re-pathing around a
	// dead link. A = reroute count for the request so far, B = retry backoff
	// in sim nanoseconds. Track = request ID.
	KindReroute
)

// String names the kind for the Chrome trace "name" field.
func (k Kind) String() string {
	switch k {
	case KindBatch:
		return "batch"
	case KindWindow:
		return "window"
	case KindQueueDepth:
		return "queue_depth"
	case KindMHPAttempt:
		return "attempt"
	case KindMHPReply:
		return "reply"
	case KindHerald:
		return "herald"
	case KindHeraldDrop:
		return "herald_drop"
	case KindEGPOK:
		return "egp_ok"
	case KindEGPError:
		return "egp_error"
	case KindEGPExpire:
		return "egp_expire"
	case KindSubmit:
		return "submit"
	case KindLinkOK:
		return "link_ok"
	case KindE2ECreate:
		return "CREATE"
	case KindE2ESegment:
		return "segment_ok"
	case KindE2ESwap:
		return "swap"
	case KindE2ECorrection:
		return "correction"
	case KindE2EOK:
		return "pair_ok"
	case KindE2EDone:
		return "OK"
	case KindE2EFail:
		return "TIMEOUT"
	case KindLinkState:
		return "link_state"
	case KindReroute:
		return "reroute"
	}
	return "?"
}

// BarrierTrack is the reserved sim-layer track identity for barrier-window
// records, keeping them off the per-shard batch tracks. Shard counts are
// small integers, so the value can never collide with a real shard index.
const BarrierTrack = uint64(1) << 32

// FaultTrack is the reserved netsim-layer track identity for fault-injection
// records (link admin-state transitions): OR'd with the link ID it keeps
// fault events on their own track, away from the per-link traffic tracks.
const FaultTrack = uint64(1) << 33

// Record is one compact trace event: 48 bytes, no pointers, so rings are
// GC-transparent and recording is a few stores.
type Record struct {
	At    sim.Time // sim timestamp
	Track uint64   // track identity: link ID, request ID, or shard index
	Seq   uint64   // per-ring record count at recording time (tie-break)
	A, B  int64    // kind-specific payload
	Layer Layer
	Kind  Kind
}

// Ring is a fixed-capacity flight-recorder buffer owned by one (shard,
// layer). When full it overwrites the oldest record, so after a long run it
// holds the most recent window of activity. All methods are nil-safe: a nil
// *Ring records nothing at the cost of one branch.
type Ring struct {
	layer Layer
	shard int
	mask  uint64
	n     uint64 // total records ever written; n & mask is the write cursor
	buf   []Record
}

// Record appends one trace record. Zero allocations; safe on a nil ring.
func (r *Ring) Record(at sim.Time, kind Kind, track uint64, a, b int64) {
	if r == nil {
		return
	}
	r.buf[r.n&r.mask] = Record{
		At:    at,
		Track: track,
		Seq:   r.n,
		A:     a,
		B:     b,
		Layer: r.layer,
		Kind:  kind,
	}
	r.n++
}

// Len reports how many records the ring currently holds.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	if r.n < uint64(len(r.buf)) {
		return int(r.n)
	}
	return len(r.buf)
}

// Dropped reports how many records were overwritten by newer ones.
func (r *Ring) Dropped() uint64 {
	if r == nil || r.n <= uint64(len(r.buf)) {
		return 0
	}
	return r.n - uint64(len(r.buf))
}

// records appends the ring's live records to dst in write order.
func (r *Ring) records(dst []Record) []Record {
	if r == nil || r.n == 0 {
		return dst
	}
	if r.n <= uint64(len(r.buf)) {
		return append(dst, r.buf[:r.n]...)
	}
	head := r.n & r.mask
	dst = append(dst, r.buf[head:]...)
	return append(dst, r.buf[:head]...)
}

// Tracer owns the per-(shard, layer) rings of one run. A nil *Tracer is the
// disabled tracer: Ring returns nil, and every downstream Record call on the
// resulting nil rings is a no-op.
type Tracer struct {
	shards   int
	capacity int
	rings    []*Ring // shards*NumLayers, indexed shard*NumLayers+layer
}

// NewTracer builds a tracer with the given shard count and per-ring record
// capacity (rounded up to a power of two; minimum 16). Ring buffers are
// allocated lazily at wiring time, never on the recording path.
func NewTracer(shards, capacity int) *Tracer {
	if shards < 1 {
		shards = 1
	}
	cap2 := 16
	for cap2 < capacity {
		cap2 <<= 1
	}
	return &Tracer{
		shards:   shards,
		capacity: cap2,
		rings:    make([]*Ring, shards*NumLayers),
	}
}

// Shards reports the tracer's shard count.
func (t *Tracer) Shards() int {
	if t == nil {
		return 0
	}
	return t.shards
}

// Ring returns the ring of one (shard, layer), allocating its buffer on
// first use. Returns nil on a nil tracer or an out-of-range shard, so
// wiring code can pass the result straight into layer configs.
func (t *Tracer) Ring(shard int, layer Layer) *Ring {
	if t == nil || shard < 0 || shard >= t.shards {
		return nil
	}
	i := shard*NumLayers + int(layer)
	if t.rings[i] == nil {
		t.rings[i] = &Ring{
			layer: layer,
			shard: shard,
			mask:  uint64(t.capacity) - 1,
			buf:   make([]Record, t.capacity),
		}
	}
	return t.rings[i]
}

// Records merges every ring's live records into deterministic
// (At, Layer, Track, Seq) order. Because each protocol entity (link, request)
// records into exactly one ring, the per-ring Seq breaks same-timestamp ties
// of one track identically at every shard count.
func (t *Tracer) Records() []Record {
	if t == nil {
		return nil
	}
	total := 0
	for _, r := range t.rings {
		total += r.Len()
	}
	out := make([]Record, 0, total)
	for _, r := range t.rings {
		out = r.records(out)
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Layer != b.Layer {
			return a.Layer < b.Layer
		}
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		return a.Seq < b.Seq
	})
	return out
}

// Dropped sums overwritten records across all rings.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	var total uint64
	for _, r := range t.rings {
		total += r.Dropped()
	}
	return total
}
