package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotone event count. All methods are nil-safe and 0-alloc,
// so an unregistered counter (nil) costs one branch on the hot path.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add shifts the current value by d.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value reads the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count of a log-linear histogram: values
// 0..7 land in exact buckets, every octave above is split into 8 linear
// sub-buckets, covering the full uint64 range (~2.3% worst-case relative
// error at the bucket lower bound).
const histBuckets = 8 + 61*8

// bucketIndex maps a value to its log-linear bucket.
func bucketIndex(v uint64) int {
	if v < 8 {
		return int(v)
	}
	octave := bits.Len64(v) - 4
	return 8 + octave*8 + int((v>>uint(octave))&7)
}

// bucketLow is the inclusive lower bound of a bucket, used as the
// deterministic representative value when reporting quantiles.
func bucketLow(i int) uint64 {
	if i < 8 {
		return uint64(i)
	}
	octave := (i - 8) / 8
	sub := (i - 8) % 8
	return uint64(8+sub) << uint(octave)
}

// Histogram is a fixed-size log-linear distribution with 0-alloc, lock-free
// Observe. Values are non-negative int64s (sim-time histograms record
// nanoseconds); negative observations clamp to 0. Nil-safe.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one value. Zero allocations; safe on a nil histogram.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count reads the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reads the running total of observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile returns the lower bound of the bucket containing the q-quantile
// (q in [0,1], nearest-rank), or 0 when empty.
func (h *Histogram) Quantile(q float64) uint64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(n))
	if rank >= n {
		rank = n - 1
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum > rank {
			return bucketLow(i)
		}
	}
	return bucketLow(histBuckets - 1)
}

// Registry is a named collection of metrics. Registration takes a lock and
// may allocate; the returned handles are lock-free. A nil *Registry is the
// disabled registry: every accessor returns nil, and all operations on the
// resulting nil handles are no-ops.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry builds an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// names returns the sorted keys of one metric family.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
