package obs

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/sim"
)

// trackLabel names one track ("thread") for the trace metadata: sim-layer
// tracks are engine shards, link-layer tracks are links, and network-layer
// tracks are end-to-end requests.
func trackLabel(layer Layer, track uint64) string {
	switch layer {
	case LayerSim:
		if track == BarrierTrack {
			return "barrier"
		}
		return fmt.Sprintf("shard %d", track)
	case LayerNetwork:
		return fmt.Sprintf("request %d", track)
	default:
		return fmt.Sprintf("link %d", track)
	}
}

// writeTS renders a sim timestamp as Chrome trace microseconds with
// nanosecond precision, using pure integer math so output is deterministic
// across platforms.
func writeTS(w *bufio.Writer, at sim.Time) {
	ns := int64(at)
	fmt.Fprintf(w, "%d.%03d", ns/1000, ns%1000)
}

// WriteChrome exports the merged trace as Chrome trace-event JSON, loadable
// in Perfetto (ui.perfetto.dev) or chrome://tracing. Each layer becomes a
// process, each track (shard, link or request) a named thread; batch sizes
// and queue depths render as counter series, protocol events as thread
// instants, and end-to-end request lifecycles as async duration spans keyed
// by request ID.
func (t *Tracer) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")

	records := t.Records()

	// Metadata first: name each process (layer) and thread (track) once, in
	// deterministic merged order.
	type key struct {
		layer Layer
		track uint64
	}
	seenLayer := map[Layer]bool{}
	seenTrack := map[key]bool{}
	first := true
	emit := func() {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
	}
	for _, r := range records {
		if !seenLayer[r.Layer] {
			seenLayer[r.Layer] = true
			emit()
			fmt.Fprintf(bw, "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":%d,\"args\":{\"name\":\"%s\"}}",
				int(r.Layer)+1, r.Layer)
		}
		k := key{r.Layer, r.Track}
		if !seenTrack[k] {
			seenTrack[k] = true
			emit()
			fmt.Fprintf(bw, "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}",
				int(r.Layer)+1, r.Track+1, trackLabel(r.Layer, r.Track))
		}
	}

	for i := range records {
		r := &records[i]
		emit()
		pid, tid := int(r.Layer)+1, r.Track+1
		switch r.Kind {
		case KindBatch:
			fmt.Fprintf(bw, "{\"ph\":\"C\",\"name\":\"batch\",\"cat\":\"%s\",\"pid\":%d,\"tid\":%d,\"ts\":", r.Layer, pid, tid)
			writeTS(bw, r.At)
			fmt.Fprintf(bw, ",\"args\":{\"batch\":%d,\"pending\":%d}}", r.A, r.B)
		case KindQueueDepth:
			fmt.Fprintf(bw, "{\"ph\":\"C\",\"name\":\"queue_depth\",\"cat\":\"%s\",\"pid\":%d,\"tid\":%d,\"ts\":", r.Layer, pid, tid)
			writeTS(bw, r.At)
			fmt.Fprintf(bw, ",\"args\":{\"depth\":%d}}", r.A)
		case KindWindow:
			fmt.Fprintf(bw, "{\"ph\":\"C\",\"name\":\"window\",\"cat\":\"%s\",\"pid\":%d,\"tid\":%d,\"ts\":", r.Layer, pid, tid)
			writeTS(bw, r.At)
			fmt.Fprintf(bw, ",\"args\":{\"merged\":%d,\"span_ns\":%d}}", r.A, r.B)
		case KindE2ECreate:
			fmt.Fprintf(bw, "{\"ph\":\"b\",\"name\":\"request\",\"cat\":\"%s\",\"id\":%d,\"pid\":%d,\"tid\":%d,\"ts\":", r.Layer, r.Track, pid, tid)
			writeTS(bw, r.At)
			fmt.Fprintf(bw, ",\"args\":{\"src\":%d,\"dst\":%d}}", r.A, r.B)
		case KindE2ESegment, KindE2ESwap, KindE2ECorrection, KindE2EOK:
			fmt.Fprintf(bw, "{\"ph\":\"n\",\"name\":\"%s\",\"cat\":\"%s\",\"id\":%d,\"pid\":%d,\"tid\":%d,\"ts\":", r.Kind, r.Layer, r.Track, pid, tid)
			writeTS(bw, r.At)
			fmt.Fprintf(bw, ",\"args\":{\"a\":%d,\"b\":%d}}", r.A, r.B)
		case KindE2EDone, KindE2EFail:
			fmt.Fprintf(bw, "{\"ph\":\"e\",\"name\":\"request\",\"cat\":\"%s\",\"id\":%d,\"pid\":%d,\"tid\":%d,\"ts\":", r.Layer, r.Track, pid, tid)
			writeTS(bw, r.At)
			fmt.Fprintf(bw, ",\"args\":{\"outcome\":\"%s\",\"a\":%d,\"b\":%d}}", r.Kind, r.A, r.B)
		default:
			fmt.Fprintf(bw, "{\"ph\":\"i\",\"s\":\"t\",\"name\":\"%s\",\"cat\":\"%s\",\"pid\":%d,\"tid\":%d,\"ts\":", r.Kind, r.Layer, pid, tid)
			writeTS(bw, r.At)
			fmt.Fprintf(bw, ",\"args\":{\"a\":%d,\"b\":%d}}", r.A, r.B)
		}
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}
