package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/sim"
)

// HistogramStats is one histogram's snapshot: observation count, value sum,
// and nearest-rank quantiles at the bucket lower bound. Sim-time histograms
// are nanosecond-valued, so quantiles divide by 1e9 for seconds.
type HistogramStats struct {
	Count uint64  `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   uint64  `json:"p50"`
	P90   uint64  `json:"p90"`
	P99   uint64  `json:"p99"`
}

// Snapshot is a point-in-time copy of a registry, serialisable as JSON
// (map keys sort, so output is deterministic) or a text table.
type Snapshot struct {
	SimSeconds float64                   `json:"sim_seconds"`
	Counters   map[string]uint64         `json:"counters,omitempty"`
	Gauges     map[string]int64          `json:"gauges,omitempty"`
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current values. now stamps the snapshot
// with the sim clock so rates can be derived offline.
func (r *Registry) Snapshot(now sim.Time) Snapshot {
	snap := Snapshot{SimSeconds: now.Seconds()}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		snap.Counters = make(map[string]uint64, len(r.counters))
		for name, c := range r.counters {
			snap.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		snap.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			snap.Gauges[name] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		snap.Histograms = make(map[string]HistogramStats, len(r.histograms))
		for name, h := range r.histograms {
			st := HistogramStats{
				Count: h.Count(),
				Sum:   h.Sum(),
				P50:   h.Quantile(0.50),
				P90:   h.Quantile(0.90),
				P99:   h.Quantile(0.99),
			}
			if st.Count > 0 {
				st.Mean = float64(st.Sum) / float64(st.Count)
			}
			snap.Histograms[name] = st
		}
	}
	return snap
}

// WriteJSON writes the snapshot as indented JSON with sorted keys.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteTable writes the snapshot as an aligned text table, one metric per
// row in sorted-name order.
func (s Snapshot) WriteTable(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "# metrics snapshot at t=%.6fs\n", s.SimSeconds)
	if len(s.Counters) > 0 {
		fmt.Fprintln(tw, "counter\tvalue")
		for _, name := range sortedKeys(s.Counters) {
			fmt.Fprintf(tw, "%s\t%d\n", name, s.Counters[name])
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintln(tw, "gauge\tvalue")
		for _, name := range sortedKeys(s.Gauges) {
			fmt.Fprintf(tw, "%s\t%d\n", name, s.Gauges[name])
		}
	}
	if len(s.Histograms) > 0 {
		fmt.Fprintln(tw, "histogram\tcount\tmean\tp50\tp90\tp99")
		for _, name := range sortedKeys(s.Histograms) {
			st := s.Histograms[name]
			fmt.Fprintf(tw, "%s\t%d\t%.1f\t%d\t%d\t%d\n", name, st.Count, st.Mean, st.P50, st.P90, st.P99)
		}
	}
	return tw.Flush()
}

// EGPMetrics bundles the link layer's counters so the EGP hot path holds
// direct handles instead of doing registry lookups. All fields may be nil.
type EGPMetrics struct {
	OKs     *Counter
	Errors  *Counter
	Expires *Counter
}

// NewEGPMetrics registers the EGP counter family. Nil-safe: a nil registry
// yields a bundle of nil handles (all no-ops).
func NewEGPMetrics(r *Registry) *EGPMetrics {
	return &EGPMetrics{
		OKs:     r.Counter("egp.oks"),
		Errors:  r.Counter("egp.errors"),
		Expires: r.Counter("egp.expires"),
	}
}

// MHPMetrics bundles the physical layer's counters.
type MHPMetrics struct {
	Attempts  *Counter
	Matched   *Counter
	Successes *Counter
}

// NewMHPMetrics registers the MHP counter family.
func NewMHPMetrics(r *Registry) *MHPMetrics {
	return &MHPMetrics{
		Attempts:  r.Counter("mhp.attempts"),
		Matched:   r.Counter("mhp.matched"),
		Successes: r.Counter("mhp.successes"),
	}
}

// classNames maps EGP priority classes to metric name suffixes
// (0 = network/NL, 1 = create-and-keep/CK, 2 = measure-directly/MD).
var classNames = [3]string{"nl", "ck", "md"}

// ClassHistograms is a per-request-class family of nanosecond-valued
// time-to-pair histograms, indexed by EGP priority.
type ClassHistograms struct {
	h [3]*Histogram
}

// NewClassHistograms registers one histogram per request class under
// prefix.<class> (e.g. "link.ttp_ns.md").
func NewClassHistograms(r *Registry, prefix string) *ClassHistograms {
	ch := &ClassHistograms{}
	for i, name := range classNames {
		ch.h[i] = r.Histogram(prefix + "." + name)
	}
	return ch
}

// Observe records a duration for one class. Out-of-range classes and nil
// receivers are no-ops.
func (ch *ClassHistograms) Observe(class int, d sim.Duration) {
	if ch == nil || class < 0 || class >= len(ch.h) {
		return
	}
	ch.h[class].Observe(int64(d))
}

// Class returns the histogram of one class (nil when out of range).
func (ch *ClassHistograms) Class(class int) *Histogram {
	if ch == nil || class < 0 || class >= len(ch.h) {
		return nil
	}
	return ch.h[class]
}
