package obs

import (
	"testing"

	"repro/internal/sim"
)

// TestDisabledPathsAllocFree pins the zero-cost-when-off guarantee: nil
// rings, counters, gauges and histograms must not allocate.
func TestDisabledPathsAllocFree(t *testing.T) {
	var (
		ring *Ring
		c    *Counter
		g    *Gauge
		h    *Histogram
		ch   *ClassHistograms
	)
	allocs := testing.AllocsPerRun(1000, func() {
		ring.Record(1, KindEGPOK, 3, 4, 5)
		c.Inc()
		c.Add(2)
		g.Set(9)
		h.Observe(123)
		ch.Observe(1, 456)
	})
	if allocs != 0 {
		t.Fatalf("disabled observability allocated %.1f per op, want 0", allocs)
	}
}

// TestEnabledRecordAllocFree pins the enabled flight-recorder record path at
// 0 allocs in steady state (buffers are allocated at wiring time).
func TestEnabledRecordAllocFree(t *testing.T) {
	tr := NewTracer(2, 1024)
	ring := tr.Ring(0, LayerMHP)
	var at sim.Time
	allocs := testing.AllocsPerRun(10000, func() {
		ring.Record(at, KindMHPAttempt, 17, 42, 1)
		at++
	})
	if allocs != 0 {
		t.Fatalf("enabled ring record allocated %.1f per op, want 0", allocs)
	}
}

// TestEnabledMetricsAllocFree pins Counter.Inc and Histogram.Observe at 0
// allocs once the handles exist.
func TestEnabledMetricsAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	ch := NewClassHistograms(r, "ttp")
	v := int64(1)
	allocs := testing.AllocsPerRun(10000, func() {
		c.Inc()
		g.Set(v)
		h.Observe(v)
		ch.Observe(int(v)%3, sim.Duration(v))
		v++
	})
	if allocs != 0 {
		t.Fatalf("enabled metrics allocated %.1f per op, want 0", allocs)
	}
}
