// Package cli holds the flag and environment plumbing shared by the repo's
// commands (cmd/bench, cmd/netsim, cmd/e2e): engine selection
// (-backend/-queue/-shards with their $REPRO_BACKEND/$REPRO_QUEUE
// defaults), observability (-trace/-tracecap/-metrics), profiling
// (-cpuprofile/-memprofile) and the artifact writing at exit. One
// definition replaces the three per-command copies; flag names, defaults
// and behavior are unchanged, and the few per-command wording differences
// are passed in explicitly.
package cli

import (
	"flag"

	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/quantum"
	"repro/internal/sim"
)

// The shared help texts. The trial-fan-out commands (cmd/netsim, cmd/e2e)
// use these verbatim; cmd/bench overrides the wording where its artifacts
// are per-scenario or its tables are counters.
const (
	// BackendHelp documents -backend for the trial-fan-out commands.
	BackendHelp = "pair-state backend: dense (exact, default) or belldiag (O(1) fast path); $REPRO_BACKEND sets the default"
	// QueueHelp documents -queue (identical across all commands).
	QueueHelp = "event-queue discipline: heap (exact binary heap, default) or wheel (hierarchical timing wheel); $REPRO_QUEUE sets the default"
	// ShardsTablesHelp documents -shards for commands printing tables.
	ShardsTablesHelp = "worker shards of the simulation engine (<=1 serial; tables are identical at any shard count)"
	// TraceHelp documents -trace for the trial-fan-out commands.
	TraceHelp = "write a Chrome trace-event JSON flight recording of trial 0 to this file (view in ui.perfetto.dev)"
	// TraceCapHelp documents -tracecap (identical across all commands).
	TraceCapHelp = "per-ring record capacity of the flight recorder (rounded up to a power of two)"
	// MetricsHelp documents -metrics for the trial-fan-out commands.
	MetricsHelp = "write a JSON metrics snapshot of trial 0 to this file"
	// CPUProfileHelp documents -cpuprofile (identical across all commands).
	CPUProfileHelp = "write a pprof CPU profile of the whole run to this file"
	// MemProfileHelp documents -memprofile (identical across all commands).
	MemProfileHelp = "write a pprof heap profile taken at exit to this file"
)

// Config selects which shared flags a command registers and their
// command-specific wording. Empty help fields take the package defaults;
// ShardsHelp empty means the command has no -shards flag (the network layer
// is serial-only).
type Config struct {
	BackendHelp string
	ShardsHelp  string
	TraceHelp   string
	MetricsHelp string
}

// Flags holds the registered shared flag values; read them after
// flag.Parse.
type Flags struct {
	// Backend/Queue/Shards select the engine (resolve with Resolve).
	Backend *string
	Queue   *string
	Shards  *int

	// TraceOut/TraceCap/MetricsOut attach the observability layer.
	TraceOut   *string
	TraceCap   *int
	MetricsOut *string

	// CPUProfile/MemProfile attach the host profiler.
	CPUProfile *string
	MemProfile *string
}

// Register installs the shared flags on fs with the given wording.
func Register(fs *flag.FlagSet, cfg Config) *Flags {
	if cfg.BackendHelp == "" {
		cfg.BackendHelp = BackendHelp
	}
	if cfg.TraceHelp == "" {
		cfg.TraceHelp = TraceHelp
	}
	if cfg.MetricsHelp == "" {
		cfg.MetricsHelp = MetricsHelp
	}
	f := &Flags{
		Backend:    fs.String("backend", "", cfg.BackendHelp),
		Queue:      fs.String("queue", "", QueueHelp),
		TraceOut:   fs.String("trace", "", cfg.TraceHelp),
		TraceCap:   fs.Int("tracecap", 1<<16, TraceCapHelp),
		MetricsOut: fs.String("metrics", "", cfg.MetricsHelp),
		CPUProfile: fs.String("cpuprofile", "", CPUProfileHelp),
		MemProfile: fs.String("memprofile", "", MemProfileHelp),
	}
	if cfg.ShardsHelp != "" {
		f.Shards = fs.Int("shards", 0, cfg.ShardsHelp)
	} else {
		zero := 0
		f.Shards = &zero
	}
	return f
}

// Resolved holds the parsed engine selections.
type Resolved struct {
	Backend quantum.Backend
	Queue   sim.QueueKind
	Shards  int
}

// Resolve parses the backend and queue names (falling back to their
// $REPRO_* env defaults when the flags are empty).
func (f *Flags) Resolve() (Resolved, error) {
	be, err := quantum.ResolveBackend(*f.Backend)
	if err != nil {
		return Resolved{}, err
	}
	qk, err := sim.ResolveQueue(*f.Queue)
	if err != nil {
		return Resolved{}, err
	}
	return Resolved{Backend: be, Queue: qk, Shards: *f.Shards}, nil
}

// Observability builds the trial-0 tracer and metrics registry from the
// flags: nil when the corresponding output flag is unset, a tracer sized
// max(1, shards) shard rings of -tracecap records otherwise.
func (f *Flags) Observability() (*obs.Tracer, *obs.Registry) {
	var tracer *obs.Tracer
	var registry *obs.Registry
	if *f.TraceOut != "" {
		shards := *f.Shards
		if shards < 1 {
			shards = 1
		}
		tracer = obs.NewTracer(shards, *f.TraceCap)
	}
	if *f.MetricsOut != "" {
		registry = obs.NewRegistry()
	}
	return tracer, registry
}

// StartCPU starts the CPU profile when -cpuprofile is set; call the
// returned stop function before writing artifacts.
func (f *Flags) StartCPU() (stop func(), err error) {
	return prof.StartCPU(*f.CPUProfile)
}

// WriteArtifacts writes the flight recording, the metrics snapshot (at
// simulated end time end, only when a registry was attached) and the heap
// profile, honouring the corresponding output flags.
func (f *Flags) WriteArtifacts(tracer *obs.Tracer, registry *obs.Registry, end sim.Time) error {
	if err := prof.WriteTrace(*f.TraceOut, tracer); err != nil {
		return err
	}
	if registry != nil {
		if err := prof.WriteMetrics(*f.MetricsOut, registry, end); err != nil {
			return err
		}
	}
	return prof.WriteHeap(*f.MemProfile)
}
