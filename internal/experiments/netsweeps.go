package experiments

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// netsimTrial builds and runs one multi-link network for a trial: the
// topology is produced by build, the per-link Poisson load comes from the
// trial's Load coordinate, and the RNG seed derives from the trial
// coordinates so results are parallelism-independent.
func netsimTrial(opt Options, t Trial, spec netsim.Spec, kmax int) *netsim.Network {
	cfg := netsim.DefaultConfig(spec, t.Scenario)
	cfg.Seed = t.DeriveSeed(opt.Seed)
	nw, err := netsim.NewNetwork(cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: bad netsim spec %s: %v", spec, err))
	}
	nw.AttachTraffic(netsim.TrafficConfig{
		Load:        t.Load,
		MaxPairs:    kmax,
		MinFidelity: t.Fidelity,
	})
	nw.Run(sim.DurationSeconds(opt.SimulatedSeconds))
	return nw
}

// RunNetChain sweeps the chain length at fixed per-link load: the first
// multi-link scaling study above the paper's single-link scope. Aggregate
// throughput should scale roughly linearly with the number of links since
// per-link state machines never synchronise across links.
func RunNetChain(opt Options) []Table {
	lengths := []int{2, 4, 8}
	if opt.Quick {
		lengths = []int{2, 3}
	}
	const load, fmin, kmax = 0.7, 0.64, 2
	table := Table{
		ID:      "netchain",
		Caption: fmt.Sprintf("Multi-link chain scaling at per-link load %.2f (kmax=%d, Fmin=%.2f)", load, kmax, fmin),
		Columns: []string{"scenario", "nodes", "links", "pairs", "throughput(1/s)", "per-link(1/s)", "fidelity", "lat_p50(s)", "lat_p99(s)", "queue(avg)"},
	}
	var trials []Trial
	for _, sc := range scenarioList(opt) {
		for _, n := range lengths {
			trials = append(trials, Trial{
				Runner:   "netchain",
				Scenario: sc,
				Load:     load,
				Fidelity: fmin,
				KMax:     kmax,
				Aux:      float64(n),
			})
		}
	}
	table.Rows = runTrials(opt, trials, func(t Trial) []string {
		n := int(t.Aux)
		nw := netsimTrial(opt, t, netsim.Chain(n), t.KMax)
		_, agg := nw.Stats()
		links := n - 1
		return []string{
			string(t.Scenario),
			itoa(n),
			itoa(links),
			itoa(agg.Pairs),
			f3(agg.OKRate),
			f3(agg.OKRate / float64(links)),
			f3(agg.Fidelity),
			f4(agg.LatencyP50),
			f4(agg.LatencyP99),
			f3(agg.QueueMean),
		}
	})
	return []Table{table}
}

// RunNetLoad sweeps the per-link offered load on a fixed star topology,
// reporting per-link and aggregate rows: the contention study. The centre
// node terminates every link, so its link registry demultiplexes all queue
// traffic while the independent per-link stacks keep throughput flat across
// links at every load.
func RunNetLoad(opt Options) []Table {
	loads := []float64{0.3, 0.7, 0.99, 1.5}
	if opt.Quick {
		loads = []float64{0.7, 1.5}
	}
	const nodes, fmin, kmax = 4, 0.64, 2
	table := Table{
		ID:      "netload",
		Caption: fmt.Sprintf("Per-link load contention on a %d-node star (kmax=%d, Fmin=%.2f)", nodes, kmax, fmin),
		Columns: []string{"scenario", "f", "link", "requests", "pairs", "throughput(1/s)", "fidelity", "lat_p50(s)", "lat_p99(s)", "queue(avg)"},
	}
	var trials []Trial
	for _, sc := range scenarioList(opt) {
		for _, load := range loads {
			trials = append(trials, Trial{
				Runner:   "netload",
				Scenario: sc,
				Load:     load,
				Fidelity: fmin,
				KMax:     kmax,
			})
		}
	}
	rowGroups := runTrials(opt, trials, func(t Trial) [][]string {
		nw := netsimTrial(opt, t, netsim.Star(nodes), t.KMax)
		perLink, agg := nw.Stats()
		var rows [][]string
		for _, ls := range append(perLink, agg) {
			rows = append(rows, []string{
				string(t.Scenario),
				f3(t.Load),
				ls.Link,
				itoa(int(ls.Requests)),
				itoa(ls.Pairs),
				f3(ls.OKRate),
				f3(ls.Fidelity),
				f4(ls.LatencyP50),
				f4(ls.LatencyP99),
				f3(ls.QueueMean),
			})
		}
		return rows
	})
	for _, rows := range rowGroups {
		table.Rows = append(table.Rows, rows...)
	}
	return []Table{table}
}
