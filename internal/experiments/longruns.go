package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/egp"
	"repro/internal/workload"
)

// RunSection62Metrics reproduces the single-kind performance metrics of
// Section 6.2: average fidelity, throughput, scaled latency, queue length
// and origin fairness for the grid of {scenario} × {kind} × {load} × {kmax}
// scenarios (a scaled-down version of the paper's 169-scenario campaign).
func RunSection62Metrics(opt Options) []Table {
	loads := []workload.LoadLevel{workload.LoadLow, workload.LoadHigh, workload.LoadUltra}
	kmaxes := []int{1, 3}
	if opt.Quick {
		loads = []workload.LoadLevel{workload.LoadHigh}
		kmaxes = []int{3}
	}

	perf := Table{
		ID:      "sec6.2",
		Caption: "Single-kind performance metrics (Sec. 6.2): fidelity, throughput, scaled latency",
		Columns: []string{"scenario", "kind", "load", "kmax", "F_avg", "QBER_F", "throughput(1/s)", "scaled_latency(s)", "queue_len", "pairs"},
	}
	fairness := Table{
		ID:      "sec6.2-fairness",
		Caption: "Fairness: relative differences between requests originating at A and at B (Sec. 6.2)",
		Columns: []string{"scenario", "kind", "load", "RelDiff_fidelity", "RelDiff_throughput", "RelDiff_latency", "RelDiff_OKs"},
	}

	var trials []Trial
	for _, scenario := range scenarioList(opt) {
		for _, priority := range priorityOrder {
			for _, load := range loads {
				for _, kmax := range kmaxes {
					trials = append(trials, Trial{
						Runner:   "metrics",
						Scenario: scenario,
						Priority: priority,
						Load:     float64(load),
						KMax:     kmax,
					})
				}
			}
		}
	}
	lastKMax := kmaxes[len(kmaxes)-1]
	type metricRows struct {
		perf     []string
		fairness []string // nil unless this trial reports fairness
	}
	rows := runTrials(opt, trials, func(t Trial) metricRows {
		classes := workload.SingleKind(t.Priority, workload.LoadLevel(t.Load), t.KMax)
		net := runProtocolTrial(opt, t, workload.OriginRandom, classes, nil)

		qberFid := 0.0
		if q := net.Collector.QBER(t.Priority); q != nil && q.Samples() > 0 {
			qberFid = q.FidelityEstimate()
		}
		out := metricRows{perf: []string{
			string(t.Scenario),
			egp.PriorityName(t.Priority),
			workload.LoadName(workload.LoadLevel(t.Load)),
			itoa(t.KMax),
			f3(net.Collector.Fidelity(t.Priority).Mean()),
			f3(qberFid),
			f3(net.Collector.Throughput(t.Priority)),
			f3(net.Collector.ScaledLatency(t.Priority).Mean()),
			f3(net.Collector.QueueLength().Mean()),
			itoa(net.Collector.OKCount(t.Priority)),
		}}
		if t.KMax == lastKMax {
			rep := net.Collector.Fairness(core.NodeA, core.NodeB)
			out.fairness = []string{
				string(t.Scenario),
				egp.PriorityName(t.Priority),
				workload.LoadName(workload.LoadLevel(t.Load)),
				f3(rep.FidelityRelDiff),
				f3(rep.ThroughputRelDiff),
				f3(rep.LatencyRelDiff),
				f3(rep.OKCountRelDiff),
			}
		}
		return out
	})
	for _, r := range rows {
		perf.Rows = append(perf.Rows, r.perf)
		if r.fairness != nil {
			fairness.Rows = append(fairness.Rows, r.fairness)
		}
	}
	return []Table{perf, fairness}
}

// RunTable1Scheduling reproduces Section 6.3 / Table 1 and the behaviour of
// Figure 7: throughput and scaled latency per request kind under FCFS vs the
// strict-priority + weighted-fair-queuing scheduler, for the two request
// patterns of Table 1 on QL2020 (pairs per request 2/2/10).
func RunTable1Scheduling(opt Options) []Table {
	scenario := scenarioList(opt)[len(scenarioList(opt))-1]
	schedulers := []string{"FCFS", "HigherWFQ"}
	patterns := []struct {
		name    string
		uniform bool
	}{
		{"(i) uniform", true},
		{"(ii) noNL-moreMD", false},
	}
	throughput := Table{
		ID:      "table1-T",
		Caption: "Throughput (1/s) per kind, FCFS vs WFQ (Table 1, top)",
		Columns: []string{"pattern", "scheduler", "NL", "CK", "MD", "total"},
	}
	latency := Table{
		ID:      "table1-SL",
		Caption: "Scaled latency (s) per kind, FCFS vs WFQ (Table 1, bottom)",
		Columns: []string{"pattern", "scheduler", "NL", "CK", "MD"},
	}
	type table1Case struct {
		name    string
		sched   string
		uniform bool
	}
	var cases []trialCase[table1Case]
	for _, pat := range patterns {
		for _, sched := range schedulers {
			cases = append(cases, trialCase[table1Case]{
				trial: Trial{
					Runner:   "table1",
					Scenario: scenario,
					Variant:  pat.name + "/" + sched,
				},
				ctx: table1Case{name: pat.name, sched: sched, uniform: pat.uniform},
			})
		}
	}
	type schedRows struct {
		throughput []string
		latency    []string
	}
	rows := runTrialCases(opt, cases, func(t Trial, c table1Case) schedRows {
		classes := workload.Table1Pattern(c.uniform)
		net := runProtocolTrial(opt, t, workload.OriginRandom, classes, func(cfg *core.Config) {
			cfg.Scheduler = c.sched
		})

		row := []string{c.name, c.sched}
		total := 0.0
		for _, priority := range priorityOrder {
			th := net.Collector.Throughput(priority)
			total += th
			if !c.uniform && priority == egp.PriorityNL {
				row = append(row, "-")
				continue
			}
			row = append(row, f3(th))
		}
		row = append(row, f3(total))

		lrow := []string{c.name, c.sched}
		for _, priority := range priorityOrder {
			if !c.uniform && priority == egp.PriorityNL {
				lrow = append(lrow, "-")
				continue
			}
			lrow = append(lrow, fmt.Sprintf("%.3f (%.3f)",
				net.Collector.ScaledLatency(priority).Mean(),
				net.Collector.ScaledLatency(priority).StdErr()))
		}
		return schedRows{throughput: row, latency: lrow}
	})
	for _, r := range rows {
		throughput.Rows = append(throughput.Rows, r.throughput)
		latency.Rows = append(latency.Rows, r.latency)
	}
	return []Table{throughput, latency}
}

// RunTable3Mixed reproduces Appendix Table 3: throughput per kind for the
// mixed-usage patterns of Appendix Table 2 under FCFS and HigherWFQ, on both
// hardware scenarios.
func RunTable3Mixed(opt Options) []Table {
	return runMixed(opt, true)
}

// RunTable4Mixed reproduces Appendix Table 4: scaled latency and request
// latency per kind for the same mixed-usage scenarios.
func RunTable4Mixed(opt Options) []Table {
	return runMixed(opt, false)
}

// runMixed executes the mixed-load grid and reports either throughput
// (Table 3) or latencies (Table 4). Both tables share the runner name
// "mixed" in their trial coordinates so they view the same simulated
// campaign rather than two decorrelated ones.
func runMixed(opt Options, throughputTable bool) []Table {
	patterns := workload.AllPatterns()
	if opt.Quick {
		patterns = []workload.Pattern{workload.PatternUniform, workload.PatternNoNLMoreMD}
	}
	schedulers := []string{"FCFS", "HigherWFQ"}

	var table Table
	if throughputTable {
		table = Table{
			ID:      "table3",
			Caption: "Mixed-load average throughput (1/s) per kind (App. Table 3)",
			Columns: []string{"scenario", "T_NL", "T_CK", "T_MD"},
		}
	} else {
		table = Table{
			ID:      "table4",
			Caption: "Mixed-load scaled latency SL and request latency RL (s) per kind (App. Table 4)",
			Columns: []string{"scenario", "SL_NL", "SL_CK", "SL_MD", "RL_NL", "RL_CK", "RL_MD"},
		}
	}

	type mixedCase struct {
		pattern workload.Pattern
		sched   string
	}
	var cases []trialCase[mixedCase]
	for _, scenario := range scenarioList(opt) {
		for _, pattern := range patterns {
			for _, sched := range schedulers {
				cases = append(cases, trialCase[mixedCase]{
					trial: Trial{
						Runner:   "mixed",
						Scenario: scenario,
						Variant:  string(pattern) + "/" + sched,
					},
					ctx: mixedCase{pattern: pattern, sched: sched},
				})
			}
		}
	}
	table.Rows = runTrialCases(opt, cases, func(t Trial, c mixedCase) []string {
		classes := workload.Mixed(c.pattern)
		net := runProtocolTrial(opt, t, workload.OriginRandom, classes, func(cfg *core.Config) {
			cfg.Scheduler = c.sched
		})

		name := fmt.Sprintf("%s_%s_%s", t.Scenario, c.pattern, c.sched)
		hasNL := c.pattern != workload.PatternNoNLMoreCK && c.pattern != workload.PatternNoNLMoreMD
		row := []string{name}
		if throughputTable {
			for _, priority := range priorityOrder {
				if priority == egp.PriorityNL && !hasNL {
					row = append(row, "-")
					continue
				}
				row = append(row, f3(net.Collector.Throughput(priority)))
			}
			return row
		}
		for _, priority := range priorityOrder {
			if priority == egp.PriorityNL && !hasNL {
				row = append(row, "-")
				continue
			}
			row = append(row, fmt.Sprintf("%.2f (%.2f)",
				net.Collector.ScaledLatency(priority).Mean(),
				net.Collector.ScaledLatency(priority).StdErr()))
		}
		for _, priority := range priorityOrder {
			if priority == egp.PriorityNL && !hasNL {
				row = append(row, "-")
				continue
			}
			row = append(row, fmt.Sprintf("%.2f (%.2f)",
				net.Collector.RequestLatency(priority).Mean(),
				net.Collector.RequestLatency(priority).StdErr()))
		}
		return row
	})
	return []Table{table}
}
