package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/egp"
	"repro/internal/workload"
)

// RunSection62Metrics reproduces the single-kind performance metrics of
// Section 6.2: average fidelity, throughput, scaled latency, queue length
// and origin fairness for the grid of {scenario} × {kind} × {load} × {kmax}
// scenarios (a scaled-down version of the paper's 169-scenario campaign).
func RunSection62Metrics(opt Options) []Table {
	loads := []workload.LoadLevel{workload.LoadLow, workload.LoadHigh, workload.LoadUltra}
	kmaxes := []int{1, 3}
	if opt.Quick {
		loads = []workload.LoadLevel{workload.LoadHigh}
		kmaxes = []int{3}
	}

	perf := Table{
		ID:      "sec6.2",
		Caption: "Single-kind performance metrics (Sec. 6.2): fidelity, throughput, scaled latency",
		Columns: []string{"scenario", "kind", "load", "kmax", "F_avg", "QBER_F", "throughput(1/s)", "scaled_latency(s)", "queue_len", "pairs"},
	}
	fairness := Table{
		ID:      "sec6.2-fairness",
		Caption: "Fairness: relative differences between requests originating at A and at B (Sec. 6.2)",
		Columns: []string{"scenario", "kind", "load", "RelDiff_fidelity", "RelDiff_throughput", "RelDiff_latency", "RelDiff_OKs"},
	}

	seed := opt.Seed
	for _, scenario := range scenarioList(opt) {
		for _, priority := range priorityOrder {
			for _, load := range loads {
				for _, kmax := range kmaxes {
					seed++
					cfg := core.DefaultConfig(scenario)
					cfg.Seed = seed
					classes := workload.SingleKind(priority, load, kmax)
					net := runScenario(cfg, workload.OriginRandom, classes, opt)

					qberFid := 0.0
					if q := net.Collector.QBER(priority); q != nil && q.Samples() > 0 {
						qberFid = q.FidelityEstimate()
					}
					perf.Rows = append(perf.Rows, []string{
						string(scenario),
						egp.PriorityName(priority),
						workload.LoadName(load),
						itoa(kmax),
						f3(net.Collector.Fidelity(priority).Mean()),
						f3(qberFid),
						f3(net.Collector.Throughput(priority)),
						f3(net.Collector.ScaledLatency(priority).Mean()),
						f3(net.Collector.QueueLength().Mean()),
						itoa(net.Collector.OKCount(priority)),
					})
					if kmax == kmaxes[len(kmaxes)-1] {
						rep := net.Collector.Fairness(core.NodeA, core.NodeB)
						fairness.Rows = append(fairness.Rows, []string{
							string(scenario),
							egp.PriorityName(priority),
							workload.LoadName(load),
							f3(rep.FidelityRelDiff),
							f3(rep.ThroughputRelDiff),
							f3(rep.LatencyRelDiff),
							f3(rep.OKCountRelDiff),
						})
					}
				}
			}
		}
	}
	return []Table{perf, fairness}
}

// RunTable1Scheduling reproduces Section 6.3 / Table 1 and the behaviour of
// Figure 7: throughput and scaled latency per request kind under FCFS vs the
// strict-priority + weighted-fair-queuing scheduler, for the two request
// patterns of Table 1 on QL2020 (pairs per request 2/2/10).
func RunTable1Scheduling(opt Options) []Table {
	scenario := scenarioList(opt)[len(scenarioList(opt))-1]
	schedulers := []string{"FCFS", "HigherWFQ"}
	patterns := []struct {
		name    string
		uniform bool
	}{
		{"(i) uniform", true},
		{"(ii) noNL-moreMD", false},
	}
	throughput := Table{
		ID:      "table1-T",
		Caption: "Throughput (1/s) per kind, FCFS vs WFQ (Table 1, top)",
		Columns: []string{"pattern", "scheduler", "NL", "CK", "MD", "total"},
	}
	latency := Table{
		ID:      "table1-SL",
		Caption: "Scaled latency (s) per kind, FCFS vs WFQ (Table 1, bottom)",
		Columns: []string{"pattern", "scheduler", "NL", "CK", "MD"},
	}
	seed := opt.Seed
	for _, pat := range patterns {
		for _, sched := range schedulers {
			seed++
			cfg := core.DefaultConfig(scenario)
			cfg.Seed = seed
			cfg.Scheduler = sched
			classes := workload.Table1Pattern(pat.uniform)
			net := runScenario(cfg, workload.OriginRandom, classes, opt)

			row := []string{pat.name, sched}
			total := 0.0
			for _, priority := range priorityOrder {
				th := net.Collector.Throughput(priority)
				total += th
				if !pat.uniform && priority == egp.PriorityNL {
					row = append(row, "-")
					continue
				}
				row = append(row, f3(th))
			}
			row = append(row, f3(total))
			throughput.Rows = append(throughput.Rows, row)

			lrow := []string{pat.name, sched}
			for _, priority := range priorityOrder {
				if !pat.uniform && priority == egp.PriorityNL {
					lrow = append(lrow, "-")
					continue
				}
				lrow = append(lrow, fmt.Sprintf("%.3f (%.3f)",
					net.Collector.ScaledLatency(priority).Mean(),
					net.Collector.ScaledLatency(priority).StdErr()))
			}
			latency.Rows = append(latency.Rows, lrow)
		}
	}
	return []Table{throughput, latency}
}

// RunTable3Mixed reproduces Appendix Table 3: throughput per kind for the
// mixed-usage patterns of Appendix Table 2 under FCFS and HigherWFQ, on both
// hardware scenarios.
func RunTable3Mixed(opt Options) []Table {
	return runMixed(opt, true)
}

// RunTable4Mixed reproduces Appendix Table 4: scaled latency and request
// latency per kind for the same mixed-usage scenarios.
func RunTable4Mixed(opt Options) []Table {
	return runMixed(opt, false)
}

// runMixed executes the mixed-load grid and reports either throughput
// (Table 3) or latencies (Table 4).
func runMixed(opt Options, throughputTable bool) []Table {
	patterns := workload.AllPatterns()
	if opt.Quick {
		patterns = []workload.Pattern{workload.PatternUniform, workload.PatternNoNLMoreMD}
	}
	schedulers := []string{"FCFS", "HigherWFQ"}

	var table Table
	if throughputTable {
		table = Table{
			ID:      "table3",
			Caption: "Mixed-load average throughput (1/s) per kind (App. Table 3)",
			Columns: []string{"scenario", "T_NL", "T_CK", "T_MD"},
		}
	} else {
		table = Table{
			ID:      "table4",
			Caption: "Mixed-load scaled latency SL and request latency RL (s) per kind (App. Table 4)",
			Columns: []string{"scenario", "SL_NL", "SL_CK", "SL_MD", "RL_NL", "RL_CK", "RL_MD"},
		}
	}

	seed := opt.Seed
	for _, scenario := range scenarioList(opt) {
		for _, pattern := range patterns {
			for _, sched := range schedulers {
				seed++
				cfg := core.DefaultConfig(scenario)
				cfg.Seed = seed
				cfg.Scheduler = sched
				classes := workload.Mixed(pattern)
				net := runScenario(cfg, workload.OriginRandom, classes, opt)

				name := fmt.Sprintf("%s_%s_%s", scenario, pattern, sched)
				hasNL := pattern != workload.PatternNoNLMoreCK && pattern != workload.PatternNoNLMoreMD
				if throughputTable {
					row := []string{name}
					for _, priority := range priorityOrder {
						if priority == egp.PriorityNL && !hasNL {
							row = append(row, "-")
							continue
						}
						row = append(row, f3(net.Collector.Throughput(priority)))
					}
					table.Rows = append(table.Rows, row)
				} else {
					row := []string{name}
					for _, priority := range priorityOrder {
						if priority == egp.PriorityNL && !hasNL {
							row = append(row, "-")
							continue
						}
						row = append(row, fmt.Sprintf("%.2f (%.2f)",
							net.Collector.ScaledLatency(priority).Mean(),
							net.Collector.ScaledLatency(priority).StdErr()))
					}
					for _, priority := range priorityOrder {
						if priority == egp.PriorityNL && !hasNL {
							row = append(row, "-")
							continue
						}
						row = append(row, fmt.Sprintf("%.2f (%.2f)",
							net.Collector.RequestLatency(priority).Mean(),
							net.Collector.RequestLatency(priority).StdErr()))
					}
					table.Rows = append(table.Rows, row)
				}
			}
		}
	}
	return []Table{table}
}
