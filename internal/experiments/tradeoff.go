package experiments

import (
	"repro/internal/egp"
	"repro/internal/nv"
	"repro/internal/workload"
)

// RunFig6Load reproduces Figure 6(a): the scaled request latency as a
// function of the offered load fraction f_P for the three request kinds on
// the QL2020 hardware, with kmax = 3 and Fmin = 0.64.
func RunFig6Load(opt Options) []Table {
	loads := []float64{0.3, 0.7, 0.99, 1.2, 1.5}
	if opt.Quick {
		loads = []float64{0.7, 1.2}
	}
	scenario := nv.ScenarioQL2020
	if opt.Quick {
		scenario = nv.ScenarioLab
	}
	table := Table{
		ID:      "fig6a",
		Caption: "Scaled latency (s) vs offered load fraction f_P (QL2020, kmax=3, Fmin=0.64)",
		Columns: []string{"f_P", "kind", "scaled_latency(s)", "throughput(1/s)", "queue_len(avg)"},
	}
	var trials []Trial
	for _, load := range loads {
		for _, priority := range priorityOrder {
			trials = append(trials, Trial{
				Runner:   "fig6a",
				Scenario: scenario,
				Priority: priority,
				Load:     load,
				Fidelity: 0.64,
				KMax:     3,
			})
		}
	}
	table.Rows = runTrials(opt, trials, func(t Trial) []string {
		classes := []workload.Class{{
			Priority:    t.Priority,
			Fraction:    t.Load,
			MaxPairs:    t.KMax,
			MinFidelity: t.Fidelity,
		}}
		net := runProtocolTrial(opt, t, workload.OriginRandom, classes, nil)
		return []string{
			f3(t.Load),
			egp.PriorityName(t.Priority),
			f3(net.Collector.ScaledLatency(t.Priority).Mean()),
			f3(net.Collector.Throughput(t.Priority)),
			f3(net.Collector.QueueLength().Mean()),
		}
	})
	return []Table{table}
}

// RunFig6Fidelity reproduces Figure 6(b) and 6(c): scaled latency and
// throughput as a function of the requested minimum fidelity at fixed load
// f_P = 0.99 (QL2020, kmax = 3).
func RunFig6Fidelity(opt Options) []Table {
	fidelities := []float64{0.55, 0.60, 0.64, 0.68, 0.72}
	if opt.Quick {
		fidelities = []float64{0.55, 0.64, 0.72}
	}
	scenario := nv.ScenarioQL2020
	if opt.Quick {
		scenario = nv.ScenarioLab
	}
	latencyTable := Table{
		ID:      "fig6b",
		Caption: "Scaled latency (s) vs requested minimum fidelity (f_P=0.99, kmax=3)",
		Columns: []string{"Fmin", "kind", "scaled_latency(s)", "unsupported"},
	}
	throughputTable := Table{
		ID:      "fig6c",
		Caption: "Throughput (1/s) vs requested minimum fidelity (f_P=0.99, kmax=3)",
		Columns: []string{"Fmin", "kind", "throughput(1/s)", "avg_fidelity"},
	}
	var trials []Trial
	for _, fmin := range fidelities {
		for _, priority := range priorityOrder {
			trials = append(trials, Trial{
				Runner:   "fig6bc",
				Scenario: scenario,
				Priority: priority,
				Load:     0.99,
				Fidelity: fmin,
				KMax:     3,
			})
		}
	}
	rows := runTrials(opt, trials, func(t Trial) [2][]string {
		classes := []workload.Class{{
			Priority:    t.Priority,
			Fraction:    t.Load,
			MaxPairs:    t.KMax,
			MinFidelity: t.Fidelity,
		}}
		net := runProtocolTrial(opt, t, workload.OriginRandom, classes, nil)
		return [2][]string{
			{
				f3(t.Fidelity),
				egp.PriorityName(t.Priority),
				f3(net.Collector.ScaledLatency(t.Priority).Mean()),
				itoa(net.Collector.ErrorCount("UNSUPP")),
			},
			{
				f3(t.Fidelity),
				egp.PriorityName(t.Priority),
				f3(net.Collector.Throughput(t.Priority)),
				f3(net.Collector.Fidelity(t.Priority).Mean()),
			},
		}
	})
	for _, pair := range rows {
		latencyTable.Rows = append(latencyTable.Rows, pair[0])
		throughputTable.Rows = append(throughputTable.Rows, pair[1])
	}
	return []Table{latencyTable, throughputTable}
}
