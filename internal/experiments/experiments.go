// Package experiments implements one runner per table and figure of the
// paper's evaluation (Section 6 and Appendix C): the hardware-validation
// sweep of Figure 8, the memory-decoherence curves of Figure 9, the
// latency/throughput/fidelity trade-offs of Figure 6, the robustness study
// of Table 5, the single-kind performance metrics of Section 6.2, the
// scheduling comparison of Table 1 / Figure 7 and the mixed-load studies of
// Appendix Tables 3 and 4.
//
// Runs are scaled down from the paper's supercomputer campaign (hours of
// simulated time per scenario) to seconds of simulated time so the full
// suite completes on a laptop; EXPERIMENTS.md records the paper-vs-measured
// comparison produced by these runners.
//
// Every runner decomposes its sweep into independent Trials executed on a
// shared worker pool sized by Options.Parallelism (default: one worker per
// CPU). Each trial derives its RNG seed deterministically from the base seed
// and its own coordinates via DeriveSeed, so tables are byte-identical at
// every parallelism level; raising Parallelism only reduces wall time.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/egp"
	"repro/internal/nv"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Options controls the scale of every experiment runner.
type Options struct {
	// SimulatedSeconds is the simulated duration of each protocol run.
	SimulatedSeconds float64
	// Seed is the base random seed; each trial mixes it with its own
	// coordinates (see Trial.DeriveSeed) so runs differ but stay
	// reproducible.
	Seed int64
	// Quick reduces sweep resolution for smoke tests and Go benchmarks.
	Quick bool
	// Parallelism is the number of worker goroutines trials fan out across.
	// Zero or negative means runtime.GOMAXPROCS(0). Results are independent
	// of this value; only wall time changes.
	Parallelism int
}

// DefaultOptions returns the scale used by the committed EXPERIMENTS.md
// numbers.
func DefaultOptions() Options {
	return Options{SimulatedSeconds: 8, Seed: 1}
}

// QuickOptions returns a reduced scale suitable for unit tests and
// continuous benchmarking.
func QuickOptions() Options {
	return Options{SimulatedSeconds: 2, Seed: 1, Quick: true}
}

// Table is a rendered experiment result: a caption, column headers and rows
// of already-formatted cells.
type Table struct {
	ID      string
	Caption string
	Columns []string
	Rows    [][]string
}

// String renders the table as aligned plain text.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Caption)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	writeRow(divider(widths))
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func divider(widths []int) []string {
	out := make([]string, len(widths))
	for i, w := range widths {
		out[i] = strings.Repeat("-", w)
	}
	return out
}

// Runner is a named experiment that produces one or more tables.
type Runner struct {
	Name        string
	Description string
	Run         func(Options) []Table
}

// All returns every experiment runner, keyed by the table/figure it
// reproduces.
func All() []Runner {
	return []Runner{
		{Name: "fig8", Description: "Validation against NV hardware: fidelity and success probability vs alpha (Fig. 8/10)", Run: RunFig8Validation},
		{Name: "fig9", Description: "Fidelity decay of stored entanglement vs communication rounds (Fig. 9)", Run: RunFig9Decoherence},
		{Name: "fig6a", Description: "Scaled latency vs offered load (Fig. 6a)", Run: RunFig6Load},
		{Name: "fig6bc", Description: "Scaled latency and throughput vs requested fidelity (Fig. 6b,c)", Run: RunFig6Fidelity},
		{Name: "table5", Description: "Robustness to classical frame loss (Sec. 6.1, Table 5)", Run: RunTable5Robustness},
		{Name: "metrics", Description: "Single-kind performance metrics: fidelity, throughput, latency, fairness (Sec. 6.2)", Run: RunSection62Metrics},
		{Name: "table1", Description: "Scheduling strategies FCFS vs WFQ (Sec. 6.3, Table 1, Fig. 7)", Run: RunTable1Scheduling},
		{Name: "table3", Description: "Mixed-load throughput per scenario (App. Table 3)", Run: RunTable3Mixed},
		{Name: "table4", Description: "Mixed-load scaled and request latencies (App. Table 4)", Run: RunTable4Mixed},
		{Name: "netchain", Description: "Multi-link chain-length scaling on the netsim network layer", Run: RunNetChain},
		{Name: "netload", Description: "Per-link load contention on a star topology (netsim network layer)", Run: RunNetLoad},
		{Name: "e2echain", Description: "End-to-end repeater-chain length scaling with entanglement swapping", Run: RunE2EChain},
		{Name: "e2eload", Description: "End-to-end load x fidelity-floor sweep on a 4-hop chain", Run: RunE2ELoad},
	}
}

// ByName returns the runner with the given name.
func ByName(name string) (Runner, bool) {
	for _, r := range All() {
		if r.Name == name {
			return r, true
		}
	}
	return Runner{}, false
}

// runScenario builds a network with the given configuration, attaches a
// workload generator and runs it for the configured duration, returning the
// network for metric extraction.
func runScenario(cfg core.Config, origin workload.Origin, classes []workload.Class, opt Options) *core.Network {
	net := core.NewNetwork(cfg)
	gen := workload.NewGenerator(net, origin, classes)
	net.Start()
	gen.Start()
	// Sample queue length periodically for the latency analysis.
	stopSampling := sim.Ticker(net.Sim, 50*sim.Millisecond, net.SampleQueueLength)
	net.Run(sim.DurationSeconds(opt.SimulatedSeconds))
	stopSampling()
	gen.Stop()
	return net
}

// Cell formatting helpers shared by the experiment tables.
func f3(v float64) string        { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string        { return fmt.Sprintf("%.4f", v) }
func itoa(v int) string          { return fmt.Sprintf("%d", v) }
func formatSci(v float64) string { return fmt.Sprintf("%.3e", v) }

// priorityOrder lists the priorities in reporting order.
var priorityOrder = []int{egp.PriorityNL, egp.PriorityCK, egp.PriorityMD}

// scenarioList returns the hardware scenarios to sweep.
func scenarioList(opt Options) []nv.ScenarioID {
	if opt.Quick {
		return []nv.ScenarioID{nv.ScenarioLab}
	}
	return []nv.ScenarioID{nv.ScenarioLab, nv.ScenarioQL2020}
}

// sortedKeys returns the sorted keys of a map for deterministic output.
func sortedKeys[M ~map[K]V, K int | string, V any](m M) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
