package experiments

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/nv"
	"repro/internal/workload"
)

// Trial is the coordinate tuple of one independent simulation run inside an
// experiment: which runner it belongs to, the hardware scenario, the request
// kind, the offered load and requested fidelity, plus free-form coordinates
// for runner-specific sweeps. Trials are seed-independent and conflict-free
// (each builds its own network, RNG and collector), which is exactly what
// makes them safe to fan out across the worker pool.
type Trial struct {
	// Runner is the registered runner name; it namespaces the RNG stream so
	// two runners sweeping the same coordinates never share a seed.
	Runner string
	// Scenario is the hardware scenario under test.
	Scenario nv.ScenarioID
	// Priority is the request kind (egp.PriorityNL/CK/MD), or 0 when the
	// trial is not kind-specific.
	Priority int
	// Load is the offered load fraction f_P, 0 when unused.
	Load float64
	// Fidelity is the requested minimum fidelity F_min, 0 when unused.
	Fidelity float64
	// KMax is the maximum pairs per request, 0 when unused.
	KMax int
	// Aux is a runner-specific sweep coordinate (bright-state population α,
	// communication rounds, ...), 0 when unused.
	Aux float64
	// Variant discriminates qualitative coordinates: scheduler name,
	// workload pattern, or any other label the runner sweeps over.
	Variant string
}

// splitmix64 is the finalizer of the SplitMix64 generator: a bijective
// avalanche mix in which every input bit affects roughly half the output
// bits. Chaining it over the trial coordinates decorrelates nearby trials,
// unlike additive derivation where (priority+1, load) and (priority, load+1)
// collide.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashString folds a string into one 64-bit word (FNV-1a).
func hashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * prime
	}
	return h
}

// DeriveSeed mixes a base seed with a sequence of coordinate words through a
// splitmix64 chain. Distinct coordinate tuples yield (with overwhelming
// probability) distinct seeds, so every trial gets its own RNG stream.
func DeriveSeed(base int64, words ...uint64) int64 {
	h := splitmix64(uint64(base))
	for _, w := range words {
		h = splitmix64(h ^ w)
	}
	return int64(h)
}

// DeriveSeed returns the deterministic RNG seed of this trial: a function of
// the base seed and every trial coordinate, independent of execution order
// and parallelism level.
func (t Trial) DeriveSeed(base int64) int64 {
	return DeriveSeed(base,
		hashString(t.Runner),
		hashString(string(t.Scenario)),
		uint64(int64(t.Priority)),
		math.Float64bits(t.Load),
		math.Float64bits(t.Fidelity),
		uint64(int64(t.KMax)),
		math.Float64bits(t.Aux),
		hashString(t.Variant),
	)
}

// workers resolves Options.Parallelism: non-positive means one worker per
// available CPU.
func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// runTrials evaluates run over every trial on a shared worker pool of
// Options.Parallelism goroutines and returns the results in trial order.
// Because each trial derives its seed from its own coordinates and builds
// its own network, the result slice is bit-identical at every parallelism
// level; only wall time changes.
func runTrials[R any](opt Options, trials []Trial, run func(Trial) R) []R {
	cases := make([]trialCase[struct{}], len(trials))
	for i, t := range trials {
		cases[i].trial = t
	}
	return runTrialCases(opt, cases, func(t Trial, _ struct{}) R { return run(t) })
}

// trialCase pairs a Trial with runner-specific context that is not a seed
// coordinate (scheduler, workload pattern, loss probability, ...), keeping
// the pairing intact no matter how the case list is built or reordered.
type trialCase[C any] struct {
	trial Trial
	ctx   C
}

// runTrialCases is runTrials for trials that carry extra context.
func runTrialCases[C, R any](opt Options, cases []trialCase[C], run func(Trial, C) R) []R {
	out := make([]R, len(cases))
	RunIndexed(len(cases), opt.workers(), func(i int) {
		out[i] = run(cases[i].trial, cases[i].ctx)
	})
	return out
}

// RunIndexed evaluates fn(0..n-1) on a pool of at most workers goroutines.
// Every index runs exactly once and the call returns when all have
// completed; callers that write results to the i-th slot of a slice get
// order-independent output. It is the fan-out primitive under the trial
// engine, exported for CLIs (cmd/netsim) that parallelise repetitions.
func RunIndexed(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// runProtocolTrial runs the full protocol stack for one trial: the network
// is built for the trial's scenario with the trial-derived seed, optionally
// adjusted by configure, driven by the given workload for the trial's
// simulated duration.
func runProtocolTrial(opt Options, t Trial, origin workload.Origin, classes []workload.Class, configure func(*core.Config)) *core.Network {
	cfg := core.DefaultConfig(t.Scenario)
	cfg.Seed = t.DeriveSeed(opt.Seed)
	if configure != nil {
		configure(&cfg)
	}
	return runScenario(cfg, origin, classes, opt)
}
