package experiments

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/network"
	"repro/internal/sim"
)

// e2eTrial builds a chain network with the network layer on top, drives the
// src–dst pair with Poisson end-to-end requests at the trial's load, and
// returns the service for metric extraction. The RNG seed derives from the
// trial coordinates so results are parallelism-independent.
func e2eTrial(opt Options, t Trial, nodes int) *network.Service {
	cfg := netsim.DefaultConfig(netsim.Chain(nodes), t.Scenario)
	cfg.Seed = t.DeriveSeed(opt.Seed)
	cfg.HoldPairs = true
	nw, err := netsim.NewNetwork(cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: bad e2e spec: %v", err))
	}
	svc, err := network.NewService(nw, network.DefaultConfig())
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	tr := svc.AttachTraffic(network.TrafficConfig{
		Pairs:       [][2]int{{0, nodes - 1}},
		Load:        t.Load,
		MaxPairs:    t.KMax,
		MinFidelity: t.Fidelity,
	})
	tr.Start()
	nw.Run(sim.DurationSeconds(opt.SimulatedSeconds))
	svc.FinishAt(nw.Sim.Now())
	return svc
}

// e2eRow renders one aggregate PathStats as a table row.
func e2eRow(prefix []string, s network.PathStats) []string {
	return append(prefix,
		itoa(int(s.Requests)),
		itoa(int(s.Completed)),
		itoa(int(s.Failed)),
		itoa(s.Pairs),
		f3(s.OKRate),
		f4(s.Fidelity),
		f4(s.Predicted),
		f4(s.SwapP50),
		f4(s.E2EP50),
		f4(s.E2EP99),
	)
}

var e2eMetricColumns = []string{"requests", "completed", "failed", "pairs", "throughput(1/s)", "fidelity", "predicted", "swap_p50(s)", "e2e_p50(s)", "e2e_p99(s)"}

// RunE2EChain sweeps the repeater-chain length at fixed end-to-end load: the
// first multi-hop scaling study. Delivered fidelity falls with hop count as
// the swap composition rule dictates, and the gap between the delivered and
// predicted columns measures the storage decoherence the closed form
// ignores.
func RunE2EChain(opt Options) []Table {
	lengths := []int{3, 5, 7}
	if opt.Quick {
		lengths = []int{3, 5}
	}
	const load, fmin, kmax = 0.3, 0.35, 1
	table := Table{
		ID:      "e2echain",
		Caption: fmt.Sprintf("End-to-end repeater-chain scaling at load %.2f (Fmin=%.2f, swap-asap)", load, fmin),
		Columns: append([]string{"scenario", "nodes", "hops"}, e2eMetricColumns...),
	}
	var trials []Trial
	for _, sc := range scenarioList(opt) {
		for _, n := range lengths {
			trials = append(trials, Trial{
				Runner:   "e2echain",
				Scenario: sc,
				Load:     load,
				Fidelity: fmin,
				KMax:     kmax,
				Aux:      float64(n),
			})
		}
	}
	table.Rows = runTrials(opt, trials, func(t Trial) []string {
		n := int(t.Aux)
		svc := e2eTrial(opt, t, n)
		_, agg := svc.Stats()
		return e2eRow([]string{string(t.Scenario), itoa(n), itoa(n - 1)}, agg)
	})
	return []Table{table}
}

// RunE2ELoad sweeps offered end-to-end load against the requested fidelity
// floor on a fixed 5-node (4-hop) chain: the link-quality × load trade-off.
// Higher floors force smaller bright-state populations on every hop, so both
// the sustainable load and the delivered throughput drop while fidelity
// rises.
func RunE2ELoad(opt Options) []Table {
	loads := []float64{0.15, 0.3, 0.6}
	fmins := []float64{0.35, 0.45}
	if opt.Quick {
		loads = []float64{0.3}
	}
	const nodes, kmax = 5, 1
	table := Table{
		ID:      "e2eload",
		Caption: fmt.Sprintf("End-to-end load × fidelity floor on a %d-node chain (swap-asap)", nodes),
		Columns: append([]string{"scenario", "f", "Fmin"}, e2eMetricColumns...),
	}
	var trials []Trial
	for _, sc := range scenarioList(opt) {
		for _, fmin := range fmins {
			for _, load := range loads {
				trials = append(trials, Trial{
					Runner:   "e2eload",
					Scenario: sc,
					Load:     load,
					Fidelity: fmin,
					KMax:     kmax,
					Aux:      float64(nodes),
				})
			}
		}
	}
	table.Rows = runTrials(opt, trials, func(t Trial) []string {
		svc := e2eTrial(opt, t, int(t.Aux))
		_, agg := svc.Stats()
		return e2eRow([]string{string(t.Scenario), f3(t.Load), f3(t.Fidelity)}, agg)
	})
	return []Table{table}
}
