package experiments

import (
	"math"

	"repro/internal/nv"
	"repro/internal/photonics"
	"repro/internal/quantum"
	"repro/internal/sim"
)

// Fig8Point is one α point of the validation sweep: the simulated fidelity
// and success probability (from Monte-Carlo attempts through the full
// optical model) against the closed-form single-click model used as the
// stand-in for the hardware data of Figure 8.
type Fig8Point struct {
	Alpha           float64
	FidelitySim     float64
	FidelityModel   float64
	PSuccessSim     float64
	PSuccessModel   float64
	SampledPairs    int
	SampledAttempts int
}

// Fig8Model returns the theoretical single-click model of Humphreys et al.
// (the solid line of Figure 8): F ≈ 1 − α up to the link's noise floor, and
// psucc ≈ 2·α·pdet.
func Fig8Model(platform *nv.Platform, sampler *photonics.LinkSampler, alpha float64) (fidelity, psucc float64) {
	// The noise floor is the infidelity at vanishing α (phase noise,
	// visibility, detector imperfections): evaluate the model near zero and
	// scale the 1−α law by it.
	const eps = 1e-3
	floor := sampler.ExpectedSuccessFidelity(eps, eps)
	fidelity = floor * (1 - alpha) / (1 - eps)
	// pdet: detection probability of one emitted photon, extracted from the
	// calibrated herald probability at a small reference α where
	// psucc ≈ 2·α·pdet but dark counts are already negligible relative to
	// real detections.
	const alphaRef = 0.05
	pdet := sampler.HeraldSuccessProbability(alphaRef, alphaRef) / (2 * alphaRef)
	psucc = 2 * alpha * pdet
	return fidelity, psucc
}

// RunFig8Validation performs the validation sweep of Figure 8 / Figure 10:
// for each bright-state population α it simulates entanglement generation
// attempts on the Lab hardware model and compares the observed heralded
// fidelity and success probability against the theoretical model.
func RunFig8Validation(opt Options) []Table {
	alphas := []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5}
	if opt.Quick {
		alphas = []float64{0.1, 0.3, 0.5}
	}
	targetPairs := 300
	if opt.Quick {
		targetPairs = 60
	}

	table := Table{
		ID:      "fig8",
		Caption: "Validation of the simulated optical model against the theoretical single-click model (Lab scenario)",
		Columns: []string{"alpha", "F_sim", "F_model", "psucc_sim", "psucc_model", "pairs", "attempts"},
	}
	trials := make([]Trial, len(alphas))
	for i, alpha := range alphas {
		trials[i] = Trial{Runner: "fig8", Scenario: nv.ScenarioLab, Aux: alpha}
	}
	// The sampler's per-alpha cache is unsynchronized, so each trial builds
	// its own platform and sampler; the Monte-Carlo loop dominates anyway.
	table.Rows = runTrials(opt, trials, func(t Trial) []string {
		platform := nv.LabPlatform()
		sampler := photonics.NewLinkSampler(platform.Optics)
		rng := sim.NewRNG(t.DeriveSeed(opt.Seed))
		p := samplePoint(platform, sampler, rng, t.Aux, targetPairs)
		return []string{
			f3(p.Alpha), f4(p.FidelitySim), f4(p.FidelityModel),
			formatSci(p.PSuccessSim), formatSci(p.PSuccessModel),
			itoa(p.SampledPairs), itoa(p.SampledAttempts),
		}
	})
	return []Table{table}
}

// samplePoint Monte-Carlo samples attempts at one α until targetPairs
// heralded successes have been collected (or an attempt cap is reached) and
// estimates the fidelity and success probability.
func samplePoint(platform *nv.Platform, sampler *photonics.LinkSampler, rng *sim.RNG, alpha float64, targetPairs int) Fig8Point {
	psucc := platform.SuccessProbability(sampler, alpha)
	maxAttempts := int(float64(targetPairs)/math.Max(psucc, 1e-9)) * 3
	if maxAttempts > 20_000_000 {
		maxAttempts = 20_000_000
	}
	pairs := 0
	attempts := 0
	fidelitySum := 0.0
	for pairs < targetPairs && attempts < maxAttempts {
		attempts++
		// Cheap classical pre-sampling: only heralded successes need the
		// conditional quantum state. This mirrors what the hardware does —
		// failed attempts produce no data beyond the failure signal.
		if !rng.Bernoulli(psucc) {
			continue
		}
		pattern := photonics.ClickLeft
		target := quantum.PsiPlus
		if rng.Bernoulli(0.5) {
			pattern = photonics.ClickRight
			target = quantum.PsiMinus
		}
		state := sampler.ConditionalState(alpha, alpha, pattern)
		if state == nil {
			continue
		}
		pairs++
		fidelitySum += state.BellFidelity(target)
	}
	fidelitySim := 0.0
	if pairs > 0 {
		fidelitySim = fidelitySum / float64(pairs)
	}
	psuccSim := 0.0
	if attempts > 0 {
		psuccSim = float64(pairs) / float64(attempts)
	}
	fModel, pModel := Fig8Model(platform, sampler, alpha)
	return Fig8Point{
		Alpha:           alpha,
		FidelitySim:     fidelitySim,
		FidelityModel:   fModel,
		PSuccessSim:     psuccSim,
		PSuccessModel:   pModel,
		SampledPairs:    pairs,
		SampledAttempts: attempts,
	}
}

// Fig9Point is one storage-time point of the decoherence curves of Figure 9.
type Fig9Point struct {
	Rounds            int
	StorageSeconds    float64
	FidelityComm      float64
	FidelityMemory    float64
	FidelityDecoupled float64
}

// RunFig9Decoherence reproduces Figure 9: the fidelity of a perfect |Ψ+⟩
// stored in the communication qubit, the carbon memory qubit, and a
// dynamically decoupled communication qubit (T2 = 1.46 s), as a function of
// the number of classical communication rounds over the QL2020 distance
// (25 km).
func RunFig9Decoherence(opt Options) []Table {
	gates := nv.DefaultGateSet()
	commParams := gates.ElectronT1T2()
	memParams := gates.CarbonT1T2()
	decoupled := quantumParamsDecoupled()

	// One communication round over 25 km of fibre.
	roundTime := 25.0 / photonics.SpeedOfLightFiber

	rounds := []int{0, 1, 2, 3, 5, 8, 12, 20, 30, 50}
	if opt.Quick {
		rounds = []int{0, 1, 5, 20}
	}
	table := Table{
		ID:      "fig9",
		Caption: "Fidelity of a stored |Ψ+⟩ vs classical communication rounds over 25 km (Fig. 9a/9b)",
		Columns: []string{"rounds", "t_store(ms)", "F_comm", "F_memory", "F_decoupled"},
	}
	trials := make([]Trial, len(rounds))
	for i, n := range rounds {
		trials[i] = Trial{Runner: "fig9", Aux: float64(n)}
	}
	table.Rows = runTrials(opt, trials, func(tr Trial) []string {
		n := int(tr.Aux)
		t := float64(n) * roundTime
		return []string{
			itoa(n), f3(t * 1e3),
			f4(storedFidelity(t, commParams)),
			f4(storedFidelity(t, memParams)),
			f4(storedFidelity(t, decoupled)),
		}
	})
	return []Table{table}
}

// storedFidelity stores one qubit of a perfect |Ψ+⟩ for t seconds in a
// memory with the given parameters and returns the resulting fidelity.
func storedFidelity(t float64, params quantum.T1T2Params) float64 {
	s := quantum.NewBellState(quantum.PsiPlus)
	quantum.ApplyMemoryNoise(s, 0, t, params)
	return s.BellFidelity(quantum.PsiPlus)
}

// quantumParamsDecoupled returns the dynamically decoupled electron of
// Figure 9b: T2 = 1.46 s, no relaxation.
func quantumParamsDecoupled() quantum.T1T2Params {
	return quantum.T1T2Params{T1: math.Inf(1), T2: 1.46}
}
