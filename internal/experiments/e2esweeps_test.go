package experiments

import (
	"reflect"
	"strconv"
	"testing"
)

// TestE2EChainShape checks the repeater-chain runner produces one row per
// (scenario, length) and that the short chain delivers pairs whose fidelity
// tracks the closed-form prediction column.
func TestE2EChainShape(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol-level experiment in short mode")
	}
	opt := QuickOptions()
	opt.SimulatedSeconds = 2
	tables := RunE2EChain(opt)
	if len(tables) != 1 {
		t.Fatalf("expected 1 table, got %d", len(tables))
	}
	tbl := tables[0]
	if len(tbl.Rows) != 2 { // quick: Lab only, lengths {3, 5}
		t.Fatalf("expected 2 rows, got %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if len(row) != len(tbl.Columns) {
			t.Fatalf("row width %d != %d columns", len(row), len(tbl.Columns))
		}
	}
	// The 3-node chain at quick scale must deliver end-to-end pairs with a
	// sane fidelity (the prediction column is populated alongside).
	row := tbl.Rows[0]
	pairs, err := strconv.Atoi(row[6])
	if err != nil || pairs <= 0 {
		t.Fatalf("3-node chain delivered no end-to-end pairs: %v", row)
	}
	fid, err := strconv.ParseFloat(row[8], 64)
	if err != nil || fid <= 0.25 || fid > 1 {
		t.Errorf("implausible delivered fidelity %q: %v", row[8], row)
	}
	pred, err := strconv.ParseFloat(row[9], 64)
	if err != nil || pred <= 0.25 || pred > 1 {
		t.Errorf("implausible predicted fidelity %q: %v", row[9], row)
	}
}

// TestE2ELoadShape checks the load × fidelity-floor runner's row layout.
func TestE2ELoadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol-level experiment in short mode")
	}
	opt := QuickOptions()
	opt.SimulatedSeconds = 1
	tables := RunE2ELoad(opt)
	if len(tables) != 1 {
		t.Fatalf("expected 1 table, got %d", len(tables))
	}
	tbl := tables[0]
	if len(tbl.Rows) != 2 { // quick: Lab only, 1 load x 2 fmins
		t.Fatalf("expected 2 rows, got %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if len(row) != len(tbl.Columns) {
			t.Fatalf("row width %d != %d columns", len(row), len(tbl.Columns))
		}
	}
}

// TestE2EChainParallelismInvariance is the acceptance check that the
// multi-hop sweep's output tables are byte-identical at every parallelism
// level: the ≥4-hop chain sweep must not depend on worker interleaving.
func TestE2EChainParallelismInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol-level experiment in short mode")
	}
	opt := QuickOptions()
	opt.SimulatedSeconds = 1
	opt.Parallelism = 1
	seq := RunE2EChain(opt)
	opt.Parallelism = 8
	par := RunE2EChain(opt)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("e2echain tables differ between -parallel 1 and 8:\n%s\n---\n%s", seq[0], par[0])
	}
}
