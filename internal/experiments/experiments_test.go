package experiments

import (
	"strings"
	"testing"
)

func TestAllRunnersRegistered(t *testing.T) {
	want := []string{"fig8", "fig9", "fig6a", "fig6bc", "table5", "metrics", "table1", "table3", "table4", "netchain", "netload", "e2echain", "e2eload"}
	runners := All()
	if len(runners) != len(want) {
		t.Fatalf("expected %d runners, got %d", len(want), len(runners))
	}
	for _, name := range want {
		r, ok := ByName(name)
		if !ok {
			t.Errorf("runner %q not found", name)
			continue
		}
		if r.Run == nil || r.Description == "" {
			t.Errorf("runner %q incomplete", name)
		}
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Fatal("ByName should fail for unknown runners")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := Table{
		ID:      "test",
		Caption: "a test table",
		Columns: []string{"col1", "longer column"},
		Rows:    [][]string{{"a", "b"}, {"cc", "dd"}},
	}
	out := tbl.String()
	if !strings.Contains(out, "test: a test table") {
		t.Fatal("caption missing")
	}
	if !strings.Contains(out, "col1") || !strings.Contains(out, "longer column") {
		t.Fatal("headers missing")
	}
	if !strings.Contains(out, "cc") {
		t.Fatal("row data missing")
	}
}

func TestFig8ValidationShape(t *testing.T) {
	opt := QuickOptions()
	tables := RunFig8Validation(opt)
	if len(tables) != 1 {
		t.Fatalf("expected 1 table, got %d", len(tables))
	}
	tbl := tables[0]
	if len(tbl.Rows) != 3 {
		t.Fatalf("expected 3 alpha points in quick mode, got %d", len(tbl.Rows))
	}
	// Fidelity must decrease with alpha (column 1 = F_sim).
	if tbl.Rows[0][1] <= tbl.Rows[2][1] {
		t.Errorf("fidelity should decrease with alpha: %v vs %v", tbl.Rows[0][1], tbl.Rows[2][1])
	}
	// Success probability must increase with alpha (column 3 = psucc_sim,
	// scientific notation compares correctly only numerically; parse via the
	// model column ordering instead: row order is ascending alpha).
	if tbl.Rows[0][4] == tbl.Rows[2][4] {
		t.Error("model success probability should vary with alpha")
	}
}

func TestFig9DecoherenceShape(t *testing.T) {
	tables := RunFig9Decoherence(QuickOptions())
	tbl := tables[0]
	if len(tbl.Rows) == 0 {
		t.Fatal("no rows")
	}
	first := tbl.Rows[0]
	last := tbl.Rows[len(tbl.Rows)-1]
	// At zero rounds all fidelities are 1; after many rounds the
	// communication qubit is worse than the memory qubit, which is worse
	// than the decoupled qubit.
	if first[2] != "1.0000" || first[3] != "1.0000" {
		t.Fatalf("zero-storage fidelity should be 1: %v", first)
	}
	if !(last[2] < last[3] && last[3] <= last[4]) {
		t.Fatalf("expected F_comm < F_memory <= F_decoupled at long storage: %v", last)
	}
}

func TestQuickRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol-level experiment in short mode")
	}
	opt := QuickOptions()
	opt.SimulatedSeconds = 1
	tables := RunTable5Robustness(opt)
	tbl := tables[0]
	if len(tbl.Rows) != 2 {
		t.Fatalf("expected 2 loss points in quick mode, got %d", len(tbl.Rows))
	}
	// Relative differences are probabilities-like quantities; just check the
	// cells parse as formatted floats within [0, 2].
	for _, row := range tbl.Rows {
		for _, cell := range row[1:5] {
			if cell == "" {
				t.Fatal("empty metric cell")
			}
		}
	}
}

func TestQuickSchedulingTable(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol-level experiment in short mode")
	}
	opt := QuickOptions()
	opt.SimulatedSeconds = 1
	tables := RunTable1Scheduling(opt)
	if len(tables) != 2 {
		t.Fatalf("expected throughput and latency tables, got %d", len(tables))
	}
	if len(tables[0].Rows) != 4 || len(tables[1].Rows) != 4 {
		t.Fatalf("expected 4 rows (2 patterns × 2 schedulers): %d, %d", len(tables[0].Rows), len(tables[1].Rows))
	}
}
