package experiments

import (
	"repro/internal/core"
	"repro/internal/egp"
	"repro/internal/metrics"
	"repro/internal/nv"
	"repro/internal/workload"
)

// robustnessRun captures the metrics of one robustness scenario.
type robustnessRun struct {
	fidelity   float64
	throughput float64
	latency    float64
	pairs      int
	expires    int
}

// RunTable5Robustness reproduces Section 6.1 / Table 5: the protocol is run
// under artificially inflated classical frame-loss probabilities and the
// relative differences of fidelity, throughput, scaled latency and delivered
// pair count against the loss-free baseline are reported, maximised over the
// three request kinds.
func RunTable5Robustness(opt Options) []Table {
	losses := []float64{1e-10, 1e-8, 1e-6, 1e-5, 1e-4}
	if opt.Quick {
		losses = []float64{1e-6, 1e-4}
	}
	kinds := priorityOrder
	if opt.Quick {
		kinds = []int{egp.PriorityMD}
	}
	scenario := nv.ScenarioLab

	// One trial per (loss, kind), with the loss-free baselines first. The
	// loss probability is deliberately kept out of the trial coordinates:
	// baseline and lossy runs of the same kind must share one RNG stream
	// (common random numbers) so the relative differences isolate the effect
	// of the frame loss itself.
	allLosses := append([]float64{0}, losses...)
	var cases []trialCase[float64]
	for _, loss := range allLosses {
		for _, priority := range kinds {
			cases = append(cases, trialCase[float64]{
				trial: Trial{
					Runner:   "table5",
					Scenario: scenario,
					Priority: priority,
					Load:     0.99,
					Fidelity: 0.64,
					KMax:     3,
				},
				ctx: loss,
			})
		}
	}
	results := runTrialCases(opt, cases, func(t Trial, loss float64) robustnessRun {
		classes := []workload.Class{{
			Priority:    t.Priority,
			Fraction:    t.Load,
			MaxPairs:    t.KMax,
			MinFidelity: t.Fidelity,
		}}
		net := runProtocolTrial(opt, t, workload.OriginRandom, classes, func(cfg *core.Config) {
			cfg.ClassicalLossProb = loss
		})
		return robustnessRun{
			fidelity:   net.Collector.Fidelity(t.Priority).Mean(),
			throughput: net.Collector.Throughput(t.Priority),
			latency:    net.Collector.ScaledLatency(t.Priority).Mean(),
			pairs:      net.Collector.OKCount(t.Priority),
			expires:    net.Collector.ExpireCount(),
		}
	})

	baselines := make(map[int]robustnessRun)
	for i, priority := range kinds {
		baselines[priority] = results[i]
	}

	table := Table{
		ID:      "table5",
		Caption: "Max relative difference vs loss-free baseline under inflated classical frame loss (Table 5)",
		Columns: []string{"p_loss", "RelDiff_fidelity", "RelDiff_throughput", "RelDiff_latency", "RelDiff_pairs", "expires"},
	}
	for li, loss := range losses {
		var maxFid, maxTh, maxLat, maxPairs float64
		expires := 0
		for ki, priority := range kinds {
			base := baselines[priority]
			lossy := results[(li+1)*len(kinds)+ki]
			maxFid = maxF(maxFid, metrics.RelativeDifference(base.fidelity, lossy.fidelity))
			maxTh = maxF(maxTh, metrics.RelativeDifference(base.throughput, lossy.throughput))
			maxLat = maxF(maxLat, metrics.RelativeDifference(base.latency, lossy.latency))
			maxPairs = maxF(maxPairs, metrics.RelativeDifference(float64(base.pairs), float64(lossy.pairs)))
			expires += lossy.expires
		}
		table.Rows = append(table.Rows, []string{
			formatSci(loss), f3(maxFid), f3(maxTh), f3(maxLat), f3(maxPairs), itoa(expires),
		})
	}
	return []Table{table}
}

func maxF(a, b float64) float64 {
	if b > a {
		return b
	}
	return a
}
