package experiments

import (
	"repro/internal/core"
	"repro/internal/egp"
	"repro/internal/metrics"
	"repro/internal/nv"
	"repro/internal/workload"
)

// robustnessRun captures the metrics of one robustness scenario.
type robustnessRun struct {
	fidelity   float64
	throughput float64
	latency    float64
	pairs      int
	expires    int
}

// RunTable5Robustness reproduces Section 6.1 / Table 5: the protocol is run
// under artificially inflated classical frame-loss probabilities and the
// relative differences of fidelity, throughput, scaled latency and delivered
// pair count against the loss-free baseline are reported, maximised over the
// three request kinds.
func RunTable5Robustness(opt Options) []Table {
	losses := []float64{1e-10, 1e-8, 1e-6, 1e-5, 1e-4}
	if opt.Quick {
		losses = []float64{1e-6, 1e-4}
	}
	kinds := priorityOrder
	if opt.Quick {
		kinds = []int{egp.PriorityMD}
	}
	scenario := nv.ScenarioLab

	run := func(loss float64, priority int) robustnessRun {
		cfg := core.DefaultConfig(scenario)
		cfg.Seed = opt.Seed + int64(priority)
		cfg.ClassicalLossProb = loss
		classes := []workload.Class{{
			Priority:    priority,
			Fraction:    0.99,
			MaxPairs:    3,
			MinFidelity: 0.64,
		}}
		net := runScenario(cfg, workload.OriginRandom, classes, opt)
		return robustnessRun{
			fidelity:   net.Collector.Fidelity(priority).Mean(),
			throughput: net.Collector.Throughput(priority),
			latency:    net.Collector.ScaledLatency(priority).Mean(),
			pairs:      net.Collector.OKCount(priority),
			expires:    net.Collector.ExpireCount(),
		}
	}

	baselines := make(map[int]robustnessRun)
	for _, priority := range kinds {
		baselines[priority] = run(0, priority)
	}

	table := Table{
		ID:      "table5",
		Caption: "Max relative difference vs loss-free baseline under inflated classical frame loss (Table 5)",
		Columns: []string{"p_loss", "RelDiff_fidelity", "RelDiff_throughput", "RelDiff_latency", "RelDiff_pairs", "expires"},
	}
	for _, loss := range losses {
		var maxFid, maxTh, maxLat, maxPairs float64
		expires := 0
		for _, priority := range kinds {
			base := baselines[priority]
			lossy := run(loss, priority)
			maxFid = maxF(maxFid, metrics.RelativeDifference(base.fidelity, lossy.fidelity))
			maxTh = maxF(maxTh, metrics.RelativeDifference(base.throughput, lossy.throughput))
			maxLat = maxF(maxLat, metrics.RelativeDifference(base.latency, lossy.latency))
			maxPairs = maxF(maxPairs, metrics.RelativeDifference(float64(base.pairs), float64(lossy.pairs)))
			expires += lossy.expires
		}
		table.Rows = append(table.Rows, []string{
			formatSci(loss), f3(maxFid), f3(maxTh), f3(maxLat), f3(maxPairs), itoa(expires),
		})
	}
	return []Table{table}
}

func maxF(a, b float64) float64 {
	if b > a {
		return b
	}
	return a
}
