package experiments

import (
	"strconv"
	"testing"
)

// TestNetChainShape checks the chain-scaling runner produces one row per
// (scenario, length) with sane values.
func TestNetChainShape(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol-level experiment in short mode")
	}
	opt := QuickOptions()
	opt.SimulatedSeconds = 0.5
	tables := RunNetChain(opt)
	if len(tables) != 1 {
		t.Fatalf("expected 1 table, got %d", len(tables))
	}
	tbl := tables[0]
	if len(tbl.Rows) != 2 { // quick: Lab only, lengths {2,3}
		t.Fatalf("expected 2 rows, got %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if len(row) != len(tbl.Columns) {
			t.Fatalf("row width %d != %d columns", len(row), len(tbl.Columns))
		}
		pairs, err := strconv.Atoi(row[3])
		if err != nil || pairs <= 0 {
			t.Errorf("chain row has no delivered pairs: %v", row)
		}
	}
}

// TestNetLoadShape checks the contention runner emits per-link plus
// aggregate rows for every load level.
func TestNetLoadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol-level experiment in short mode")
	}
	opt := QuickOptions()
	opt.SimulatedSeconds = 0.5
	tables := RunNetLoad(opt)
	if len(tables) != 1 {
		t.Fatalf("expected 1 table, got %d", len(tables))
	}
	tbl := tables[0]
	// Quick: Lab only, 2 loads, 4-node star = 3 links + 1 aggregate row each.
	if len(tbl.Rows) != 2*4 {
		t.Fatalf("expected 8 rows, got %d", len(tbl.Rows))
	}
	aggregates := 0
	for _, row := range tbl.Rows {
		if row[2] == "aggregate" {
			aggregates++
		}
	}
	if aggregates != 2 {
		t.Fatalf("expected 2 aggregate rows, got %d", aggregates)
	}
}
