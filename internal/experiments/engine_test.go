package experiments

import (
	"fmt"
	"testing"

	"repro/internal/nv"
)

// TestDeriveSeedUniqueness checks that the splitmix64-based derivation gives
// every trial its own RNG stream, including the cross-coordinate collisions
// the old additive scheme (base + priority + load*100) suffered from.
func TestDeriveSeedUniqueness(t *testing.T) {
	seen := make(map[int64]Trial)
	add := func(tr Trial) {
		t.Helper()
		seed := tr.DeriveSeed(1)
		if prev, dup := seen[seed]; dup {
			t.Fatalf("seed collision between %+v and %+v", prev, tr)
		}
		seen[seed] = tr
	}
	for _, runner := range []string{"fig6a", "fig6bc", "table1", "mixed"} {
		for _, scenario := range []nv.ScenarioID{nv.ScenarioLab, nv.ScenarioQL2020} {
			for priority := 1; priority <= 3; priority++ {
				for _, load := range []float64{0.3, 0.7, 0.99, 1.2, 1.5} {
					add(Trial{Runner: runner, Scenario: scenario, Priority: priority, Load: load})
				}
			}
		}
	}
	// The additive scheme mapped (priority+1, load) and (priority, load+0.01)
	// to the same seed; the mixed derivation must not.
	a := Trial{Runner: "fig6a", Scenario: nv.ScenarioLab, Priority: 1, Load: 2.0}
	b := Trial{Runner: "fig6a", Scenario: nv.ScenarioLab, Priority: 2, Load: 1.99}
	if a.DeriveSeed(7) == b.DeriveSeed(7) {
		t.Fatal("trials that collided under additive derivation still share a seed")
	}
	// Distinct runners sweeping identical coordinates must not share streams.
	c := Trial{Runner: "fig6bc", Scenario: nv.ScenarioLab, Priority: 1, Load: 2.0}
	if a.DeriveSeed(7) == c.DeriveSeed(7) {
		t.Fatal("distinct runners share a seed for identical coordinates")
	}
	// The base seed must still matter.
	if a.DeriveSeed(1) == a.DeriveSeed(2) {
		t.Fatal("base seed does not affect the derived seed")
	}
}

// TestRunTrialsOrdering checks that results come back in trial order no
// matter how many workers raced over them.
func TestRunTrialsOrdering(t *testing.T) {
	const n = 64
	trials := make([]Trial, n)
	for i := range trials {
		trials[i] = Trial{Aux: float64(i)}
	}
	for _, parallelism := range []int{1, 3, 16, n + 5} {
		opt := Options{Parallelism: parallelism}
		got := runTrials(opt, trials, func(tr Trial) int { return int(tr.Aux) })
		if len(got) != n {
			t.Fatalf("parallelism %d: got %d results, want %d", parallelism, len(got), n)
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("parallelism %d: result %d out of order: %d", parallelism, i, v)
			}
		}
	}
}

// TestRunTrialsEmpty ensures the pool copes with zero trials.
func TestRunTrialsEmpty(t *testing.T) {
	got := runTrials(Options{Parallelism: 8}, nil, func(Trial) int { return 1 })
	if len(got) != 0 {
		t.Fatalf("expected no results, got %d", len(got))
	}
}

// renderAll runs the named runners and concatenates every rendered table.
func renderAll(opt Options, names ...string) string {
	out := ""
	for _, name := range names {
		r, ok := ByName(name)
		if !ok {
			panic(fmt.Sprintf("unknown runner %q", name))
		}
		for _, table := range r.Run(opt) {
			out += table.String()
		}
	}
	return out
}

// TestParallelDeterminism is the engine's core guarantee: tables are
// byte-identical whether trials run sequentially or fan out across eight
// workers, because every trial's RNG stream depends only on its coordinates.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol-level experiment in short mode")
	}
	opt := QuickOptions()
	opt.SimulatedSeconds = 0.5
	names := []string{"fig8", "fig9", "fig6a", "table1", "netchain", "netload"}

	opt.Parallelism = 1
	sequential := renderAll(opt, names...)
	opt.Parallelism = 8
	parallel := renderAll(opt, names...)

	if sequential != parallel {
		t.Fatalf("tables differ between parallelism 1 and 8:\n--- sequential ---\n%s\n--- parallel ---\n%s", sequential, parallel)
	}
}

// TestByNameCoversAllRunners walks the registry and resolves every runner
// through ByName, so renames or dropped registrations fail loudly.
func TestByNameCoversAllRunners(t *testing.T) {
	all := All()
	if len(all) == 0 {
		t.Fatal("no runners registered")
	}
	seen := make(map[string]bool)
	for _, r := range all {
		if seen[r.Name] {
			t.Errorf("duplicate runner name %q", r.Name)
		}
		seen[r.Name] = true
		got, ok := ByName(r.Name)
		if !ok {
			t.Errorf("ByName(%q) failed for a registered runner", r.Name)
			continue
		}
		if got.Name != r.Name || got.Run == nil || got.Description == "" {
			t.Errorf("ByName(%q) returned an incomplete runner: %+v", r.Name, got)
		}
	}
}
