package photonics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/quantum"
	"repro/internal/sim"
)

const tol = 1e-9

// labEmission returns emission parameters close to the paper's Lab scenario
// (no cavity, no frequency conversion), with a configurable collection
// probability so tests can raise the detection efficiency when they need
// frequent successes.
func labEmission(collection float64) EmissionParams {
	return EmissionParams{
		DetectionWindow:  25e-9,
		EmissionCharTime: 12e-9,
		ZeroPhononProb:   0.03,
		CollectionProb:   collection,
		ConversionProb:   1.0,
		TwoPhotonProb:    0.04,
		PhaseStdDegrees:  14.3 / math.Sqrt2,
	}
}

func idealEmission() EmissionParams {
	return EmissionParams{
		DetectionWindow:  1, // tw >> τe so no window damping... see test
		EmissionCharTime: 0, // disables window damping entirely
		ZeroPhononProb:   1.0,
		CollectionProb:   1.0,
		ConversionProb:   1.0,
		TwoPhotonProb:    0,
		PhaseStdDegrees:  0,
	}
}

func idealDetectors() DetectorParams {
	return DetectorParams{Efficiency: 1.0, DarkCountRate: 0, Window: 25e-9}
}

func TestFiberTransmissionLoss(t *testing.T) {
	f := Fiber{LengthKM: 10, AttenuationDB: 0.5}
	// 5 dB total loss → survival 10^-0.5 ≈ 0.3162.
	want := 1 - math.Pow(10, -0.5)
	if got := f.TransmissionLossProb(); math.Abs(got-want) > tol {
		t.Fatalf("loss = %v, want %v", got, want)
	}
	zero := Fiber{LengthKM: 0, AttenuationDB: 0.5}
	if zero.TransmissionLossProb() != 0 {
		t.Fatal("zero-length fibre should have no loss")
	}
}

func TestFiberPropagationDelay(t *testing.T) {
	// The paper quotes 48.4 µs for ~10 km and 72.6 µs for ~15 km.
	fA := Fiber{LengthKM: 10}
	fB := Fiber{LengthKM: 15}
	if d := fA.PropagationDelaySeconds() * 1e6; math.Abs(d-48.4) > 0.5 {
		t.Fatalf("10 km delay = %v µs, want ≈48.4", d)
	}
	if d := fB.PropagationDelaySeconds() * 1e6; math.Abs(d-72.6) > 0.7 {
		t.Fatalf("15 km delay = %v µs, want ≈72.6", d)
	}
}

func TestCoherentEmissionDamping(t *testing.T) {
	e := EmissionParams{DetectionWindow: 25e-9, EmissionCharTime: 12e-9}
	want := math.Exp(-25.0 / 12.0)
	if got := e.CoherentEmissionDamping(); math.Abs(got-want) > tol {
		t.Fatalf("window damping = %v, want %v", got, want)
	}
	if (EmissionParams{EmissionCharTime: 0}).CoherentEmissionDamping() != 0 {
		t.Fatal("zero characteristic time should disable window damping")
	}
}

func TestCollectionDamping(t *testing.T) {
	e := EmissionParams{ZeroPhononProb: 0.03, CollectionProb: 0.014, ConversionProb: 1}
	want := 1 - 0.03*0.014
	if got := e.CollectionDamping(); math.Abs(got-want) > tol {
		t.Fatalf("collection damping = %v, want %v", got, want)
	}
	withConv := EmissionParams{ZeroPhononProb: 0.46, CollectionProb: 0.014, ConversionProb: 0.3}
	want = 1 - 0.46*0.014*0.3
	if got := withConv.CollectionDamping(); math.Abs(got-want) > tol {
		t.Fatalf("collection damping with conversion = %v, want %v", got, want)
	}
}

func TestDarkCountProbability(t *testing.T) {
	d := DetectorParams{DarkCountRate: 20, Window: 25e-9}
	want := 1 - math.Exp(-20*25e-9)
	if got := d.DarkCountProb(); math.Abs(got-want) > 1e-15 {
		t.Fatalf("dark count prob = %v, want %v", got, want)
	}
}

func TestPhaseDephasingProb(t *testing.T) {
	// The paper's value: σ = 14.3°/√2 per arm; the dephasing probability must
	// be small but positive.
	e := EmissionParams{PhaseStdDegrees: 14.3 / math.Sqrt2}
	p := e.PhaseDephasingProb()
	if p <= 0 || p > 0.05 {
		t.Fatalf("phase dephasing prob out of range: %v", p)
	}
	// Larger phase noise gives more dephasing.
	e2 := EmissionParams{PhaseStdDegrees: 30}
	if e2.PhaseDephasingProb() <= p {
		t.Fatal("dephasing should grow with phase noise")
	}
	if (EmissionParams{PhaseStdDegrees: 0}).PhaseDephasingProb() != 0 {
		t.Fatal("zero phase noise should give zero dephasing")
	}
}

func TestBesselRatio(t *testing.T) {
	// Known values: I1(1)/I0(1) ≈ 0.44639, I1(5)/I0(5) ≈ 0.89378,
	// large-x asymptotics ≈ 1 − 1/(2x).
	cases := []struct{ x, want, tolerance float64 }{
		{1, 0.4463900, 1e-5},
		{5, 0.8933831, 1e-5},
		{30, 1 - 1.0/60 - 1/(8.0*900), 1e-4},
		{200, 1 - 1.0/400, 1e-5},
	}
	for _, c := range cases {
		if got := besselRatioI1I0(c.x); math.Abs(got-c.want) > c.tolerance {
			t.Errorf("I1/I0(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if besselRatioI1I0(0) != 0 {
		t.Fatal("ratio at 0 should be 0")
	}
}

func TestBeamSplitterPOVMCompleteness(t *testing.T) {
	for _, vis := range []float64{0, 0.5, 0.9, 1.0} {
		b := NewBeamSplitterPOVM(vis)
		sum := b.M00.Add(b.M10).Add(b.M01).Add(b.M11)
		if !sum.Equalish(quantum.Identity(4), 1e-9) {
			t.Errorf("visibility %v: POVM elements do not sum to identity", vis)
		}
		// Kraus operators must reproduce the POVM elements: K†K = M.
		pairs := []struct {
			k, m quantum.Matrix
		}{{b.K00, b.M00}, {b.K10, b.M10}, {b.K01, b.M01}, {b.K11, b.M11}}
		for i, p := range pairs {
			if !p.k.Dagger().Mul(p.k).Equalish(p.m, 1e-9) {
				t.Errorf("visibility %v: Kraus %d does not match POVM element", vis, i)
			}
		}
	}
}

func TestBeamSplitterHOMInterference(t *testing.T) {
	// With perfectly indistinguishable photons (visibility 1), two incident
	// photons always bunch: the probability of a coincidence (both
	// detectors) must vanish — the Hong-Ou-Mandel effect.
	b := NewBeamSplitterPOVM(1.0)
	twoPhotons := quantum.NewStateFromKet(quantum.Ket{0, 0, 0, 1}) // |11⟩
	if p := twoPhotons.Probability(b.M11, 0, 1); p > tol {
		t.Fatalf("HOM violated: coincidence probability %v", p)
	}
	// With fully distinguishable photons the coincidence probability is 1/2.
	b0 := NewBeamSplitterPOVM(0.0)
	if p := twoPhotons.Probability(b0.M11, 0, 1); math.Abs(p-0.5) > tol {
		t.Fatalf("distinguishable coincidence = %v, want 0.5", p)
	}
}

func TestBeamSplitterProjectsOntoBellStates(t *testing.T) {
	// A symmetric single-photon state (|10⟩+|01⟩)/√2 must always herald the
	// "left" detector at perfect visibility, and the antisymmetric state the
	// "right" detector.
	b := NewBeamSplitterPOVM(1.0)
	inv := complex(1/math.Sqrt2, 0)
	sym := quantum.NewStateFromKet(quantum.Ket{0, inv, inv, 0})
	anti := quantum.NewStateFromKet(quantum.Ket{0, inv, -inv, 0})
	if p := sym.Probability(b.M10, 0, 1); math.Abs(p-1) > tol {
		t.Fatalf("symmetric state left-click probability = %v, want 1", p)
	}
	if p := sym.Probability(b.M01, 0, 1); p > tol {
		t.Fatalf("symmetric state right-click probability = %v, want 0", p)
	}
	if p := anti.Probability(b.M01, 0, 1); math.Abs(p-1) > tol {
		t.Fatalf("antisymmetric state right-click probability = %v, want 1", p)
	}
}

func TestApplyDetectorNoise(t *testing.T) {
	det := DetectorParams{Efficiency: 0.8, DarkCountRate: 20, Window: 25e-9}
	// Perfect efficiency sample (u < 0.8) keeps the click; no dark counts.
	if got := ApplyDetectorNoise(ClickLeft, det, 0.5, 0.5, 0.99, 0.99); got != ClickLeft {
		t.Fatalf("expected ClickLeft, got %v", got)
	}
	// Inefficient detection loses the click.
	if got := ApplyDetectorNoise(ClickLeft, det, 0.9, 0.5, 0.99, 0.99); got != ClickNone {
		t.Fatalf("expected ClickNone after loss, got %v", got)
	}
	// Dark count adds a click on the empty detector.
	if got := ApplyDetectorNoise(ClickNone, det, 0.5, 0.5, 0.0, 0.99); got != ClickLeft {
		t.Fatalf("expected dark-count ClickLeft, got %v", got)
	}
	// Both real clicks survive.
	if got := ApplyDetectorNoise(ClickBoth, det, 0.1, 0.1, 0.99, 0.99); got != ClickBoth {
		t.Fatalf("expected ClickBoth, got %v", got)
	}
}

func TestOutcomeFromClicks(t *testing.T) {
	cases := map[ClickPattern]MidpointOutcome{
		ClickNone:  OutcomeFail,
		ClickLeft:  OutcomePsiPlus,
		ClickRight: OutcomePsiMinus,
		ClickBoth:  OutcomeFail,
	}
	for pattern, want := range cases {
		if got := OutcomeFromClicks(pattern); got != want {
			t.Errorf("pattern %v → %v, want %v", pattern, got, want)
		}
	}
	if OutcomeFail.Success() || !OutcomePsiPlus.Success() || !OutcomePsiMinus.Success() {
		t.Fatal("Success() classification wrong")
	}
}

func TestIdealLinkProducesPerfectEntanglement(t *testing.T) {
	// With no loss, no noise, perfect visibility and α = 0.5 the heralded
	// state conditional on a single click is exactly a Bell state.
	link := NewHeraldedLink(idealEmission(), idealEmission(), Fiber{}, Fiber{}, idealDetectors(), 1.0)
	sampler := NewLinkSampler(link)
	left := sampler.ConditionalState(0.5, 0.5, ClickLeft)
	if left == nil {
		t.Fatal("left-click conditional state missing")
	}
	// The conditional state contains a |00⟩ admixture from the two-photon
	// branch; at α=0.5 with unit detection efficiency the single-click
	// fidelity is reduced. Check the exact structure at small α instead.
	small := sampler.ConditionalState(0.01, 0.01, ClickLeft)
	if f := small.BellFidelity(quantum.PsiPlus); f < 0.97 {
		t.Fatalf("small-α conditional fidelity = %v, want ≈1", f)
	}
	right := sampler.ConditionalState(0.01, 0.01, ClickRight)
	if f := right.BellFidelity(quantum.PsiMinus); f < 0.97 {
		t.Fatalf("right-click conditional fidelity = %v, want ≈1", f)
	}
}

func TestLossyLinkFidelityApproachesOneMinusAlpha(t *testing.T) {
	// With realistic photon loss the two-photon contamination scales as
	// α/(1−α), giving the paper's F ≈ 1 − α rule of thumb (Section 4.4).
	em := labEmission(0.014)
	link := NewHeraldedLink(em, em, Fiber{LengthKM: 0.001, AttenuationDB: 5}, Fiber{LengthKM: 0.001, AttenuationDB: 5}, DetectorParams{Efficiency: 0.8, DarkCountRate: 20, Window: 25e-9}, 0.9)
	sampler := NewLinkSampler(link)
	for _, alpha := range []float64{0.1, 0.2, 0.3, 0.5} {
		f := sampler.ExpectedSuccessFidelity(alpha, alpha)
		// The trend must match 1-α within the additional noise floor from
		// phase uncertainty, two-photon emission and imperfect visibility.
		if f > 1-alpha+0.01 {
			t.Errorf("α=%v: fidelity %v unexpectedly above 1-α", alpha, f)
		}
		if f < 1-alpha-0.15 {
			t.Errorf("α=%v: fidelity %v too far below 1-α", alpha, f)
		}
	}
	// Monotonically decreasing in α.
	prev := 1.0
	for _, alpha := range []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5} {
		f := sampler.ExpectedSuccessFidelity(alpha, alpha)
		if f > prev+1e-9 {
			t.Fatalf("fidelity should decrease with α: %v then %v", prev, f)
		}
		prev = f
	}
}

func TestSuccessProbabilityScalesWithAlpha(t *testing.T) {
	// psucc ≈ 2·α·pdet: doubling α should roughly double the success
	// probability at small α (Section 4.4).
	em := labEmission(0.014)
	link := NewHeraldedLink(em, em, Fiber{}, Fiber{}, DetectorParams{Efficiency: 0.8, DarkCountRate: 20, Window: 25e-9}, 0.9)
	sampler := NewLinkSampler(link)
	p1 := sampler.HeraldSuccessProbability(0.05, 0.05)
	p2 := sampler.HeraldSuccessProbability(0.10, 0.10)
	if p1 <= 0 || p2 <= 0 {
		t.Fatalf("success probabilities should be positive: %v %v", p1, p2)
	}
	ratio := p2 / p1
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("success probability should scale ≈linearly with α, ratio %v", ratio)
	}
	// The Lab scenario's magnitude: psucc ≈ α·10⁻³.
	pOverAlpha := sampler.HeraldSuccessProbability(0.1, 0.1) / 0.1
	if pOverAlpha < 1e-4 || pOverAlpha > 1e-2 {
		t.Fatalf("psucc/α = %v, want order 10⁻³", pOverAlpha)
	}
}

func TestSamplerMatchesDirectAttempt(t *testing.T) {
	// The cached sampler and the direct dense attempt must agree on the
	// success statistics.
	em := labEmission(0.5) // raise collection so successes are common
	det := DetectorParams{Efficiency: 0.9, DarkCountRate: 0, Window: 25e-9}
	link := NewHeraldedLink(em, em, Fiber{}, Fiber{}, det, 0.9)
	sampler := NewLinkSampler(link)
	rng := sim.NewRNG(42)
	const n = 4000
	directSuccess, sampledSuccess := 0, 0
	for i := 0; i < n; i++ {
		if link.Attempt(0.3, 0.3, rng).Outcome.Success() {
			directSuccess++
		}
		if sampler.Sample(0.3, 0.3, rng).Outcome.Success() {
			sampledSuccess++
		}
	}
	dRate := float64(directSuccess) / n
	sRate := float64(sampledSuccess) / n
	if math.Abs(dRate-sRate) > 0.03 {
		t.Fatalf("sampler and direct attempt disagree: %v vs %v", dRate, sRate)
	}
	analytic := sampler.HeraldSuccessProbability(0.3, 0.3)
	if math.Abs(dRate-analytic) > 0.03 {
		t.Fatalf("analytic herald probability %v far from empirical %v", analytic, dRate)
	}
}

func TestSamplerStateIndependence(t *testing.T) {
	// Mutating a sampled state must not corrupt the cache.
	link := NewHeraldedLink(idealEmission(), idealEmission(), Fiber{}, Fiber{}, idealDetectors(), 1.0)
	sampler := NewLinkSampler(link)
	first := sampler.ConditionalState(0.1, 0.1, ClickLeft)
	fBefore := first.BellFidelity(quantum.PsiPlus)
	first.ApplyUnitary(quantum.PauliX(), 0)
	second := sampler.ConditionalState(0.1, 0.1, ClickLeft)
	if math.Abs(second.BellFidelity(quantum.PsiPlus)-fBefore) > tol {
		t.Fatal("cache state was mutated by caller")
	}
}

func TestDarkCountsProduceFalsePositives(t *testing.T) {
	// With huge dark-count rates, heralded "successes" appear even when no
	// photons could have arrived (α=0 means no bright-state population and
	// thus no photons).
	em := idealEmission()
	det := DetectorParams{Efficiency: 1.0, DarkCountRate: 2e7, Window: 25e-9}
	link := NewHeraldedLink(em, em, Fiber{}, Fiber{}, det, 1.0)
	sampler := NewLinkSampler(link)
	rng := sim.NewRNG(7)
	success := 0
	const n = 3000
	for i := 0; i < n; i++ {
		res := sampler.Sample(0.0, 0.0, rng)
		if res.Outcome.Success() {
			success++
			// A dark-count herald cannot carry entanglement: fidelity with
			// either Bell state stays at the classical bound.
			if f := res.State.BellFidelity(quantum.PsiPlus); f > 0.5+1e-9 {
				t.Fatalf("false-positive herald carries entanglement: F=%v", f)
			}
		}
	}
	if success == 0 {
		t.Fatal("expected dark-count false positives")
	}
}

func TestFidelityEstimateHelpers(t *testing.T) {
	if FidelityEstimate(0.2) != 0.8 {
		t.Fatal("FidelityEstimate wrong")
	}
	if AlphaForFidelity(0.8) != 0.19999999999999996 && math.Abs(AlphaForFidelity(0.8)-0.2) > 1e-12 {
		t.Fatal("AlphaForFidelity wrong")
	}
	if FidelityEstimate(1.5) != 0 {
		t.Fatal("FidelityEstimate should clamp")
	}
}

// Property: herald success probability is monotone non-decreasing in α and
// bounded by 1, for a lossy link.
func TestPropertySuccessProbabilityMonotone(t *testing.T) {
	em := labEmission(0.014)
	link := NewHeraldedLink(em, em, Fiber{}, Fiber{}, DetectorParams{Efficiency: 0.8, DarkCountRate: 20, Window: 25e-9}, 0.9)
	sampler := NewLinkSampler(link)
	f := func(a, b float64) bool {
		a = math.Mod(math.Abs(a), 0.5)
		b = math.Mod(math.Abs(b), 0.5)
		lo, hi := math.Min(a, b), math.Max(a, b)
		pLo := sampler.HeraldSuccessProbability(lo, lo)
		pHi := sampler.HeraldSuccessProbability(hi, hi)
		return pLo <= pHi+1e-12 && pHi <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: ideal click probabilities always form a distribution.
func TestPropertyClickProbabilitiesNormalised(t *testing.T) {
	em := labEmission(0.1)
	link := NewHeraldedLink(em, em, Fiber{LengthKM: 5, AttenuationDB: 0.5}, Fiber{LengthKM: 7, AttenuationDB: 0.5}, DetectorParams{Efficiency: 0.8, DarkCountRate: 20, Window: 25e-9}, 0.9)
	sampler := NewLinkSampler(link)
	f := func(a, b float64) bool {
		a = math.Mod(math.Abs(a), 1)
		b = math.Mod(math.Abs(b), 1)
		probs := sampler.IdealClickProbabilities(a, b)
		sum := 0.0
		for _, p := range probs {
			if p < -1e-12 {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
