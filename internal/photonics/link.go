package photonics

import (
	"math"

	"repro/internal/quantum"
)

// HeraldedLink composes the full optical model of one entanglement
// generation attempt between two nodes A and B via the midpoint heralding
// station H: local electron-photon state preparation with bright-state
// population α, every loss and dephasing mechanism of Appendix D.4, and the
// beam-splitter measurement plus detector noise of Appendix D.5.
type HeraldedLink struct {
	EmissionA EmissionParams
	EmissionB EmissionParams
	FiberA    Fiber
	FiberB    Fiber
	Detectors DetectorParams
	// Visibility is the photon indistinguishability |µ|² at the midpoint.
	Visibility float64

	povm *BeamSplitterPOVM
}

// NewHeraldedLink builds a link model and precomputes the beam-splitter POVM.
func NewHeraldedLink(emA, emB EmissionParams, fibA, fibB Fiber, det DetectorParams, visibility float64) *HeraldedLink {
	return &HeraldedLink{
		EmissionA:  emA,
		EmissionB:  emB,
		FiberA:     fibA,
		FiberB:     fibB,
		Detectors:  det,
		Visibility: visibility,
		povm:       NewBeamSplitterPOVM(visibility),
	}
}

// RandomSource supplies uniform samples; it is satisfied by *sim.RNG and by
// deterministic test doubles.
type RandomSource interface {
	Float64() float64
}

// AttemptResult is the outcome of one physical entanglement generation
// attempt.
type AttemptResult struct {
	// Outcome is the heralding signal announced by the midpoint after
	// detector imperfections.
	Outcome MidpointOutcome
	// State is the post-measurement joint state of the two communication
	// qubits (qubit 0 at A, qubit 1 at B), represented on the sampler's
	// pair-state backend (dense from HeraldedLink.Attempt, which always
	// runs the exact model). It is only meaningful when Outcome.Success()
	// is true; on a false-positive herald (dark count) it still holds the
	// collapsed electron state, which is then of low fidelity — exactly
	// the error source the protocol must tolerate. The cached sampler
	// (LinkSampler.Sample) leaves it nil on failed attempts, since the
	// vast majority of attempts fail and nothing downstream reads the
	// state of a failure.
	State quantum.PairState
	// IdealPattern and ObservedPattern record the click pattern before and
	// after detector noise, for diagnostics and tests.
	IdealPattern    ClickPattern
	ObservedPattern ClickPattern
}

// electronPhotonKet returns the joint electron ⊗ photon state
// √α|0⟩|1⟩ + √(1−α)|1⟩|0⟩ used by the single-click scheme (Appendix D.4).
func electronPhotonKet(alpha float64) quantum.Ket {
	a := complex(math.Sqrt(alpha), 0)
	b := complex(math.Sqrt(1-alpha), 0)
	// Basis order |e p⟩: |00⟩,|01⟩,|10⟩,|11⟩.
	return quantum.Ket{0, a, b, 0}
}

// photonLossDamping aggregates every amplitude-damping contribution on one
// arm: finite detection window, collection/zero-phonon/frequency-conversion
// losses and fibre transmission.
func photonLossDamping(em EmissionParams, fib Fiber) []float64 {
	return []float64{
		em.CoherentEmissionDamping(),
		em.CollectionDamping(),
		fib.TransmissionLossProb(),
	}
}

// Attempt simulates a single entanglement generation attempt with bright
// state population alphaA at node A and alphaB at node B, drawing all random
// samples from rng.
//
// The returned state orders qubits as (electron A, electron B).
func (l *HeraldedLink) Attempt(alphaA, alphaB float64, rng RandomSource) AttemptResult {
	if alphaA < 0 || alphaA > 1 || alphaB < 0 || alphaB > 1 {
		panic("photonics: bright state population out of [0,1]")
	}
	// Joint state ordering: qubit 0 = electron A, qubit 1 = photon A,
	// qubit 2 = electron B, qubit 3 = photon B.
	stateA := quantum.NewStateFromKet(electronPhotonKet(alphaA))
	stateB := quantum.NewStateFromKet(electronPhotonKet(alphaB))
	joint := stateA.Tensor(stateB)

	const (
		qElectronA = 0
		qPhotonA   = 1
		qElectronB = 2
		qPhotonB   = 3
	)

	// Two-photon emission: effective dephasing on each electron (D.4.3).
	if p := l.EmissionA.TwoPhotonProb; p > 0 {
		joint.ApplyKraus(quantum.DephasingKraus(clamp01(p)), qElectronA)
	}
	if p := l.EmissionB.TwoPhotonProb; p > 0 {
		joint.ApplyKraus(quantum.DephasingKraus(clamp01(p)), qElectronB)
	}

	// Phase uncertainty between the two optical paths: dephasing on each
	// photon qubit (D.4.2).
	if p := l.EmissionA.PhaseDephasingProb(); p > 0 {
		joint.ApplyKraus(quantum.DephasingKraus(p), qPhotonA)
	}
	if p := l.EmissionB.PhaseDephasingProb(); p > 0 {
		joint.ApplyKraus(quantum.DephasingKraus(p), qPhotonB)
	}

	// Loss mechanisms on each photon arm: amplitude damping (D.4.4–D.4.6).
	for _, p := range photonLossDamping(l.EmissionA, l.FiberA) {
		if p > 0 {
			joint.ApplyKraus(quantum.AmplitudeDampingKraus(p), qPhotonA)
		}
	}
	for _, p := range photonLossDamping(l.EmissionB, l.FiberB) {
		if p > 0 {
			joint.ApplyKraus(quantum.AmplitudeDampingKraus(p), qPhotonB)
		}
	}

	// Beam-splitter measurement at the heralding station.
	ideal, _ := l.povm.MeasureOutcome(joint, qPhotonA, qPhotonB, rng.Float64())

	// Classical detector imperfections.
	observed := ApplyDetectorNoise(ideal, l.Detectors, rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64())
	outcome := OutcomeFromClicks(observed)

	// Reduce to the two electron qubits.
	electrons := joint.PartialTrace(qPhotonA, qPhotonB)
	return AttemptResult{
		Outcome:         outcome,
		State:           electrons,
		IdealPattern:    ideal,
		ObservedPattern: observed,
	}
}

// SuccessProbability returns the analytic probability that an attempt with
// the given bright-state populations heralds success (exactly one detector
// clicks), ignoring dark counts: psucc ≈ 2·α·pdet in the small-pdet limit of
// Section 4.4.
func (l *HeraldedLink) SuccessProbability(alphaA, alphaB float64) float64 {
	// Survival probability of each photon arm.
	surviveArm := func(em EmissionParams, fib Fiber, alpha float64) float64 {
		p := alpha
		for _, loss := range photonLossDamping(em, fib) {
			p *= 1 - loss
		}
		return p
	}
	pA := surviveArm(l.EmissionA, l.FiberA, alphaA) * l.Detectors.Efficiency
	pB := surviveArm(l.EmissionB, l.FiberB, alphaB) * l.Detectors.Efficiency
	// Exactly one photon detected: either A's photon arrives and B's does
	// not (or is lost/undetected), or vice versa; when both arrive they go
	// to the same detector (HOM) half the time each but count as a single
	// click for non-photon-counting detectors with probability of only one
	// detector firing — approximate with the standard 2·α·pdet expression by
	// taking the exclusive cases plus both-arrive-same-detector events.
	pOnlyA := pA * (1 - pB)
	pOnlyB := pB * (1 - pA)
	pBoth := pA * pB
	// With indistinguishable photons both photons bunch onto one output arm,
	// still heralding a (false) success for non-counting detectors; with
	// visibility v they anti-bunch with probability (1-v)/2 producing two
	// clicks (failure).
	pBothSingleClick := pBoth * (1 - (1-l.Visibility)/2)
	return pOnlyA + pOnlyB + pBothSingleClick
}

// FidelityEstimate returns the analytic small-error estimate F ≈ 1 − α of
// Section 4.4 for the post-selected entangled state, ignoring memory and
// gate noise. It is used by the fidelity estimation unit as a base estimate
// before test rounds refine it.
func FidelityEstimate(alpha float64) float64 {
	return clamp01(1 - alpha)
}

// AlphaForFidelity inverts the base estimate: the bright-state population
// needed to reach a target fidelity (before other noise), α ≈ 1 − F.
func AlphaForFidelity(fidelity float64) float64 {
	return clamp01(1 - fidelity)
}
