package photonics

import (
	"fmt"

	"repro/internal/quantum"
)

// LinkSampler caches the pre-measurement optical state for a fixed pair of
// bright-state populations so that individual entanglement attempts are
// cheap: the branch probabilities and conditional post-measurement electron
// states only depend on (αA, αB) and the link parameters, so they are
// computed once with the dense density-matrix model and then sampled
// classically per attempt. This keeps the physics of Appendix D exact on the
// heralded-success path while letting the discrete-event simulation run
// hundreds of thousands of MHP cycles per second of wall time.
type LinkSampler struct {
	link *HeraldedLink

	// backend selects the pair-state representation handed out on heralded
	// successes: dense density-matrix copies (exact, the default) or
	// Bell-diagonal coefficient vectors (the O(1) fast path). The branch
	// probabilities are always computed with the dense model, so heralding
	// statistics are backend-independent.
	backend quantum.Backend

	cache map[alphaKey]*attemptDistribution

	// attempts counts how many times Sample has been called; the benchmark
	// harness divides allocation and wall-clock deltas by it.
	attempts uint64

	// uBuf is the reusable batch-draw buffer of Sample. Handing a slice of a
	// local array through the batchSource interface would force the array to
	// the heap on every attempt; a sampler is confined to one simulator
	// thread, so a single persistent buffer is safe.
	uBuf [5]float64
}

type alphaKey struct{ a, b float64 }

// attemptDistribution stores, for one (αA, αB) pair, the probability of each
// ideal click pattern and the conditional electron-electron state for each.
type attemptDistribution struct {
	probs  [4]float64        // indexed by ClickPattern
	total  float64           // sum of probs in index order, cached for sampling
	states [4]*quantum.State // conditional electron states, nil when prob≈0
	// bell is the Bell-basis diagonal of each conditional state — the
	// Bell-diagonal backend's herald payload, precomputed once per (α, α)
	// so per-success cost is a 4-float copy.
	bell [4][4]float64
}

// NewLinkSampler wraps a heralded link with a per-alpha cache; pairs are
// handed out on the exact dense backend.
func NewLinkSampler(link *HeraldedLink) *LinkSampler {
	return NewLinkSamplerBackend(link, quantum.BackendDense)
}

// NewLinkSamplerBackend wraps a heralded link with a per-alpha cache,
// heralding pairs on the given backend.
func NewLinkSamplerBackend(link *HeraldedLink, backend quantum.Backend) *LinkSampler {
	return &LinkSampler{link: link, backend: backend, cache: make(map[alphaKey]*attemptDistribution)}
}

// Backend returns the pair-state backend heralded pairs use.
func (s *LinkSampler) Backend() quantum.Backend { return s.backend }

// Link returns the underlying heralded link model.
func (s *LinkSampler) Link() *HeraldedLink { return s.link }

// Attempts returns how many entanglement attempts have been sampled.
func (s *LinkSampler) Attempts() uint64 { return s.attempts }

// distribution computes (or returns the cached) branch distribution for the
// given bright-state populations.
func (s *LinkSampler) distribution(alphaA, alphaB float64) *attemptDistribution {
	key := alphaKey{alphaA, alphaB}
	if d, ok := s.cache[key]; ok {
		return d
	}
	d := s.computeDistribution(alphaA, alphaB)
	s.cache[key] = d
	return d
}

// computeDistribution runs the dense model once and collapses it onto each
// of the four ideal click patterns.
func (s *LinkSampler) computeDistribution(alphaA, alphaB float64) *attemptDistribution {
	if alphaA < 0 || alphaA > 1 || alphaB < 0 || alphaB > 1 {
		panic(fmt.Sprintf("photonics: bright state population out of range (%v, %v)", alphaA, alphaB))
	}
	l := s.link
	stateA := quantum.NewStateFromKet(electronPhotonKet(alphaA))
	stateB := quantum.NewStateFromKet(electronPhotonKet(alphaB))
	joint := stateA.Tensor(stateB)

	const (
		qElectronA = 0
		qPhotonA   = 1
		qElectronB = 2
		qPhotonB   = 3
	)
	if p := l.EmissionA.TwoPhotonProb; p > 0 {
		joint.ApplyKraus(quantum.DephasingKraus(clamp01(p)), qElectronA)
	}
	if p := l.EmissionB.TwoPhotonProb; p > 0 {
		joint.ApplyKraus(quantum.DephasingKraus(clamp01(p)), qElectronB)
	}
	if p := l.EmissionA.PhaseDephasingProb(); p > 0 {
		joint.ApplyKraus(quantum.DephasingKraus(p), qPhotonA)
	}
	if p := l.EmissionB.PhaseDephasingProb(); p > 0 {
		joint.ApplyKraus(quantum.DephasingKraus(p), qPhotonB)
	}
	for _, p := range photonLossDamping(l.EmissionA, l.FiberA) {
		if p > 0 {
			joint.ApplyKraus(quantum.AmplitudeDampingKraus(p), qPhotonA)
		}
	}
	for _, p := range photonLossDamping(l.EmissionB, l.FiberB) {
		if p > 0 {
			joint.ApplyKraus(quantum.AmplitudeDampingKraus(p), qPhotonB)
		}
	}

	povm := l.povm
	branches := []struct {
		pattern ClickPattern
		povmEl  quantum.Matrix
		kraus   quantum.Matrix
	}{
		{ClickNone, povm.M00, povm.K00},
		{ClickLeft, povm.M10, povm.K10},
		{ClickRight, povm.M01, povm.K01},
		{ClickBoth, povm.M11, povm.K11},
	}
	d := &attemptDistribution{}
	for _, br := range branches {
		p := joint.Probability(br.povmEl, qPhotonA, qPhotonB)
		d.probs[br.pattern] = p
		if p > 1e-15 {
			collapsed := joint.Copy()
			collapsed.Collapse(br.kraus, qPhotonA, qPhotonB)
			electrons := collapsed.PartialTrace(qPhotonA, qPhotonB)
			d.states[br.pattern] = electrons
			d.bell[br.pattern] = quantum.BellDiagCoefficients(electrons)
		} else {
			// A pattern of (numerically) zero probability can still be
			// observed through detector dark counts; the heralded pair is
			// then the untouched |00⟩ electrons.
			d.bell[br.pattern] = quantum.BellDiagCoefficients(quantum.NewState(2))
		}
	}
	for _, p := range d.probs {
		d.total += p
	}
	return d
}

// IdealClickProbabilities returns the probability of each ideal click
// pattern for the given bright-state populations, indexed by ClickPattern.
func (s *LinkSampler) IdealClickProbabilities(alphaA, alphaB float64) [4]float64 {
	return s.distribution(alphaA, alphaB).probs
}

// HeraldSuccessProbability returns the probability that an attempt is
// announced as a success by the midpoint, including detector efficiency and
// dark counts.
func (s *LinkSampler) HeraldSuccessProbability(alphaA, alphaB float64) float64 {
	d := s.distribution(alphaA, alphaB)
	det := s.link.Detectors
	eff := det.Efficiency
	dark := det.DarkCountProb()
	pSuccess := 0.0
	for pattern, p := range d.probs {
		if p <= 0 {
			continue
		}
		pSuccess += p * singleClickProbability(ClickPattern(pattern), eff, dark)
	}
	return pSuccess
}

// singleClickProbability returns the probability that exactly one detector
// registers a click given the ideal pattern, detector efficiency and dark
// count probability.
func singleClickProbability(ideal ClickPattern, eff, dark float64) float64 {
	// Click probability per detector given whether a real photon hit it.
	pClick := func(hasPhoton bool) float64 {
		if hasPhoton {
			// Real click with probability eff, otherwise a dark count may
			// still fire.
			return eff + (1-eff)*dark
		}
		return dark
	}
	leftHas := ideal == ClickLeft || ideal == ClickBoth
	rightHas := ideal == ClickRight || ideal == ClickBoth
	pL := pClick(leftHas)
	pR := pClick(rightHas)
	return pL*(1-pR) + pR*(1-pL)
}

// ConditionalState returns a copy of the electron-electron state conditional
// on the given ideal click pattern (nil when that pattern has zero
// probability).
func (s *LinkSampler) ConditionalState(alphaA, alphaB float64, pattern ClickPattern) *quantum.State {
	d := s.distribution(alphaA, alphaB)
	st := d.states[pattern]
	if st == nil {
		return nil
	}
	return st.Copy()
}

// batchSource is the optional fast path of RandomSource: sources that can
// hand out several uniforms at once (sim.RNG does) let Sample draw its five
// per-attempt samples in one call instead of five interface calls.
type batchSource interface {
	Float64Batch(dst []float64)
}

// Sample performs one attempt: the ideal click pattern is drawn from the
// cached distribution, detector noise is applied, and the conditional
// electron state for the ideal pattern is returned on heralded successes.
// The observed outcome is what the midpoint announces; the state reflects
// the true physical collapse, so dark-count false positives naturally yield
// low-fidelity pairs. Failed attempts carry a nil State: nothing consumes
// the post-measurement state of a failure, and attempts outnumber successes
// by orders of magnitude, so materialising a copy per failure would dominate
// the allocation profile of long runs.
func (s *LinkSampler) Sample(alphaA, alphaB float64, rng RandomSource) AttemptResult {
	s.attempts++
	d := s.distribution(alphaA, alphaB)
	// One attempt consumes exactly five uniforms, in a fixed order: the
	// branch selector, then the four detector-noise draws. Batching them
	// preserves the stream order of the one-at-a-time draws exactly.
	u := &s.uBuf
	if batch, ok := rng.(batchSource); ok {
		batch.Float64Batch(u[:])
	} else {
		for i := range u {
			u[i] = rng.Float64()
		}
	}
	ideal := ClickNone
	if d.total > 0 {
		x := u[0] * d.total
		for pattern, p := range d.probs {
			x -= p
			if x < 0 {
				ideal = ClickPattern(pattern)
				break
			}
		}
	}
	observed := ApplyDetectorNoise(ideal, s.link.Detectors, u[1], u[2], u[3], u[4])
	outcome := OutcomeFromClicks(observed)
	var st quantum.PairState
	if outcome.Success() {
		if s.backend == quantum.BackendBellDiagonal {
			st = quantum.NewBellDiag(d.bell[ideal])
		} else if d.states[ideal] != nil {
			st = d.states[ideal].Copy()
		} else {
			st = quantum.NewState(2)
		}
	}
	return AttemptResult{
		Outcome:         outcome,
		State:           st,
		IdealPattern:    ideal,
		ObservedPattern: observed,
	}
}

// ExpectedSuccessFidelity returns the fidelity (with the heralded Bell
// state) of the conditional electron state averaged over the two success
// outcomes, ignoring dark-count false positives. This is the quantity
// plotted against α in Figure 8 of the paper.
func (s *LinkSampler) ExpectedSuccessFidelity(alphaA, alphaB float64) float64 {
	d := s.distribution(alphaA, alphaB)
	pLeft, pRight := d.probs[ClickLeft], d.probs[ClickRight]
	if pLeft+pRight <= 0 {
		return 0
	}
	f := 0.0
	if st := d.states[ClickLeft]; st != nil {
		f += pLeft * st.BellFidelity(quantum.PsiPlus)
	}
	if st := d.states[ClickRight]; st != nil {
		f += pRight * st.BellFidelity(quantum.PsiMinus)
	}
	return f / (pLeft + pRight)
}
