// Package photonics models the optical part of heralded entanglement
// generation: photon emission from a communication qubit, transmission
// losses over fibre, the midpoint beam-splitter measurement with partially
// distinguishable photons, and the classical detector imperfections
// (efficiency and dark counts).
//
// The model follows Appendix D.4 and D.5 of the paper: every loss mechanism
// is an amplitude-damping channel on the presence/absence photon qubit,
// phase uncertainty and two-photon emission are dephasing channels, and the
// beam-splitter measurement is the POVM {M̃00, M̃10, M̃01, M̃11} of
// Eqs. (90)–(93) parameterised by the photon indistinguishability µ.
package photonics

import (
	"fmt"
	"math"

	"repro/internal/quantum"
)

// Fiber describes one optical fibre segment between a node and the heralding
// station.
type Fiber struct {
	LengthKM      float64 // physical length in km
	AttenuationDB float64 // attenuation in dB/km (0.5 with frequency conversion, 5 without)
}

// TransmissionLossProb returns the amplitude-damping parameter of Eq. (33):
// p = 1 − 10^(−L·γ/10).
func (f Fiber) TransmissionLossProb() float64 {
	if f.LengthKM < 0 || f.AttenuationDB < 0 {
		panic("photonics: negative fibre parameters")
	}
	return 1 - math.Pow(10, -f.LengthKM*f.AttenuationDB/10)
}

// SpeedOfLightFiber is the speed of light in fibre used by the paper,
// in km/s.
const SpeedOfLightFiber = 206753.0

// PropagationDelaySeconds returns the one-way propagation delay over the
// fibre.
func (f Fiber) PropagationDelaySeconds() float64 {
	return f.LengthKM / SpeedOfLightFiber
}

// EmissionParams describes photon emission from the NV communication qubit
// and the collection path up to the fibre (Appendix D.4.4–D.4.5).
type EmissionParams struct {
	// DetectionWindow is the midpoint detection time window tw (seconds).
	DetectionWindow float64
	// EmissionCharTime is the characteristic emission time τe (seconds);
	// 12 ns without a cavity, 6.48 ns with one.
	EmissionCharTime float64
	// ZeroPhononProb is the probability of emitting into the zero-phonon
	// line (0.03 without cavity, 0.46 with cavity).
	ZeroPhononProb float64
	// CollectionProb is the probability of collecting the emitted photon
	// into the fibre.
	CollectionProb float64
	// ConversionProb is the frequency-conversion success probability
	// (1.0 when no conversion is performed, 0.30 with conversion).
	ConversionProb float64
	// TwoPhotonProb is the conditional probability of a two-photon emission
	// given at least one photon was emitted (≈ 0.04).
	TwoPhotonProb float64
	// PhaseStdDegrees is the standard deviation (degrees) of the optical
	// phase between the electron-photon states of Eq. (29); the paper uses
	// 14.3°/√2 per arm.
	PhaseStdDegrees float64
}

// CoherentEmissionDamping returns the amplitude-damping parameter of
// Eq. (30): p = exp(−tw/τe) arising from the finite detection window.
func (e EmissionParams) CoherentEmissionDamping() float64 {
	if e.EmissionCharTime <= 0 {
		return 0
	}
	return math.Exp(-e.DetectionWindow / e.EmissionCharTime)
}

// CollectionDamping returns the amplitude-damping parameter of Eq. (31)
// including frequency conversion: p = 1 − pzero·pcoll·pconv.
func (e EmissionParams) CollectionDamping() float64 {
	conv := e.ConversionProb
	if conv == 0 {
		conv = 1
	}
	p := 1 - e.ZeroPhononProb*e.CollectionProb*conv
	return clamp01(p)
}

// PhaseDephasingProb converts the phase standard deviation into a dephasing
// probability via Eq. (28): pd = (1 − I1(σ⁻²)/I0(σ⁻²))/2.
func (e EmissionParams) PhaseDephasingProb() float64 {
	sigma := e.PhaseStdDegrees * math.Pi / 180
	if sigma <= 0 {
		return 0
	}
	x := 1 / (sigma * sigma)
	ratio := besselRatioI1I0(x)
	return clamp01((1 - ratio) / 2)
}

// besselRatioI1I0 computes I1(x)/I0(x) for x ≥ 0 using the continued
// fraction approach of Amos (1974) for moderate arguments and the standard
// asymptotic expansion for large arguments (small phase noise).
func besselRatioI1I0(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x > 50 {
		// Asymptotic expansion of the ratio for large x.
		return 1 - 1/(2*x) - 1/(8*x*x) - 1/(8*x*x*x)
	}
	// Continued fraction r0 = I1/I0 with r_k = 1/(2(k+1)/x + r_{k+1}),
	// evaluated bottom-up with enough terms for double precision.
	terms := 80 + int(2*x)
	f := 0.0
	for k := terms; k >= 1; k-- {
		f = 1 / (2*float64(k)/x + f)
	}
	return f
}

// DetectorParams models the midpoint single-photon detectors.
type DetectorParams struct {
	Efficiency    float64 // probability a real photon produces a click (0.8)
	DarkCountRate float64 // dark counts per second (20 /s)
	Window        float64 // detection window (s) used for dark-count probability
}

// DarkCountProb returns the per-window dark-click probability of Eq. (34).
func (d DetectorParams) DarkCountProb() float64 {
	return 1 - math.Exp(-d.Window*d.DarkCountRate)
}

// MidpointOutcome is the heralding result announced by the station.
type MidpointOutcome int

// Possible heralding outcomes; the success outcomes identify which Bell
// state was produced.
const (
	OutcomeFail     MidpointOutcome = 0 // none or both detectors clicked
	OutcomePsiPlus  MidpointOutcome = 1 // only the "left" detector clicked
	OutcomePsiMinus MidpointOutcome = 2 // only the "right" detector clicked
)

// String renders the outcome.
func (o MidpointOutcome) String() string {
	switch o {
	case OutcomeFail:
		return "fail"
	case OutcomePsiPlus:
		return "psi+"
	case OutcomePsiMinus:
		return "psi-"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Success reports whether the outcome heralds an entangled pair.
func (o MidpointOutcome) Success() bool { return o == OutcomePsiPlus || o == OutcomePsiMinus }

// BeamSplitterPOVM holds the four effective POVM elements (and matching
// Kraus operators) of the midpoint measurement for non-photon-counting
// detectors, Eqs. (90)–(97), in the two-qubit presence/absence basis
// ordered |00⟩,|10⟩,|01⟩,|11⟩ — i.e. (photon-from-A, photon-from-B).
type BeamSplitterPOVM struct {
	Visibility         float64 // |µ|² — photon indistinguishability (0.9 in the Lab setup)
	mu                 float64
	M00, M10, M01, M11 quantum.Matrix
	K00, K10, K01, K11 quantum.Matrix
}

// NewBeamSplitterPOVM constructs the POVM for a given photon visibility
// |µ|². µ is taken real and non-negative (a global phase of µ is not
// observable in the click statistics).
func NewBeamSplitterPOVM(visibility float64) *BeamSplitterPOVM {
	if visibility < 0 || visibility > 1 {
		panic("photonics: visibility out of [0,1]")
	}
	mu := math.Sqrt(visibility)
	b := &BeamSplitterPOVM{Visibility: visibility, mu: mu}
	c := func(v float64) complex128 { return complex(v, 0) }

	// Basis order: |00⟩, |01⟩, |10⟩, |11⟩ in standard binary ordering where
	// qubit 0 = photon from A, qubit 1 = photon from B. The appendix orders
	// rows as |00⟩,|10⟩,|01⟩,|11⟩; we translate to binary order here:
	// index 1 = |01⟩ (photon only from B), index 2 = |10⟩ (photon only from A).
	m := func(pOnlyA, pOnlyB, cross, both float64) quantum.Matrix {
		out := quantum.NewMatrix(4)
		out.Set(2, 2, c(pOnlyA))
		out.Set(1, 1, c(pOnlyB))
		out.Set(2, 1, c(cross))
		out.Set(1, 2, c(cross))
		out.Set(3, 3, c(both))
		return out
	}

	b.M00 = quantum.NewMatrix(4)
	b.M00.Set(0, 0, 1)
	b.M10 = m(0.5, 0.5, mu/2, (1+visibility)/4)
	b.M01 = m(0.5, 0.5, -mu/2, (1+visibility)/4)
	b.M11 = quantum.NewMatrix(4)
	b.M11.Set(3, 3, c((1-visibility)/2))

	// Kraus operators: matrix square roots (Eqs. 94–97).
	a := (math.Sqrt(1+mu) + math.Sqrt(1-mu)) / (2 * math.Sqrt2)
	bOff := (math.Sqrt(1+mu) - math.Sqrt(1-mu)) / (2 * math.Sqrt2)
	bothAmp := math.Sqrt(1+visibility) / 2

	b.K00 = quantum.NewMatrix(4)
	b.K00.Set(0, 0, 1)

	k10 := quantum.NewMatrix(4)
	k10.Set(2, 2, c(a))
	k10.Set(1, 1, c(a))
	k10.Set(2, 1, c(bOff))
	k10.Set(1, 2, c(bOff))
	k10.Set(3, 3, c(bothAmp))
	b.K10 = k10

	k01 := quantum.NewMatrix(4)
	k01.Set(2, 2, c(a))
	k01.Set(1, 1, c(a))
	k01.Set(2, 1, c(-bOff))
	k01.Set(1, 2, c(-bOff))
	k01.Set(3, 3, c(bothAmp))
	b.K01 = k01

	k11 := quantum.NewMatrix(4)
	k11.Set(3, 3, c(math.Sqrt((1-visibility)/2)))
	b.K11 = k11
	return b
}

// ClickPattern identifies which ideal detector(s) clicked.
type ClickPattern int

// Ideal click patterns before detector noise.
const (
	ClickNone ClickPattern = iota
	ClickLeft
	ClickRight
	ClickBoth
)

// MeasureOutcome performs the beam-splitter measurement on the two photon
// qubits of the joint state, collapsing the state according to the sampled
// outcome. The photon qubit indices are given by qubitA and qubitB; u is a
// uniform random sample in [0,1) supplied by the caller.
//
// It returns the ideal click pattern (before detector inefficiency and dark
// counts are applied) and the probability of the sampled branch.
func (b *BeamSplitterPOVM) MeasureOutcome(state *quantum.State, qubitA, qubitB int, u float64) (ClickPattern, float64) {
	type branch struct {
		pattern ClickPattern
		povm    quantum.Matrix
		kraus   quantum.Matrix
	}
	branches := []branch{
		{ClickNone, b.M00, b.K00},
		{ClickLeft, b.M10, b.K10},
		{ClickRight, b.M01, b.K01},
		{ClickBoth, b.M11, b.K11},
	}
	probs := make([]float64, len(branches))
	total := 0.0
	for i, br := range branches {
		probs[i] = state.Probability(br.povm, qubitA, qubitB)
		total += probs[i]
	}
	if total <= 0 {
		return ClickNone, 0
	}
	x := u * total
	for i, br := range branches {
		x -= probs[i]
		if x < 0 || i == len(branches)-1 {
			p := state.Collapse(br.kraus, qubitA, qubitB)
			return br.pattern, p
		}
	}
	return ClickNone, 0
}

// ApplyDetectorNoise converts an ideal click pattern into an observed one by
// applying per-detector efficiency and dark counts. u1..u4 are uniform
// samples for (left real click survives, right real click survives, left
// dark count, right dark count).
func ApplyDetectorNoise(ideal ClickPattern, det DetectorParams, u1, u2, u3, u4 float64) ClickPattern {
	left := ideal == ClickLeft || ideal == ClickBoth
	right := ideal == ClickRight || ideal == ClickBoth
	if left {
		left = u1 < det.Efficiency
	}
	if right {
		right = u2 < det.Efficiency
	}
	dark := det.DarkCountProb()
	if !left && u3 < dark {
		left = true
	}
	if !right && u4 < dark {
		right = true
	}
	switch {
	case left && right:
		return ClickBoth
	case left:
		return ClickLeft
	case right:
		return ClickRight
	default:
		return ClickNone
	}
}

// OutcomeFromClicks converts an observed click pattern into the heralding
// outcome announced by the midpoint: exactly one click heralds success.
func OutcomeFromClicks(p ClickPattern) MidpointOutcome {
	switch p {
	case ClickLeft:
		return OutcomePsiPlus
	case ClickRight:
		return OutcomePsiMinus
	default:
		return OutcomeFail
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
