package wire

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestGENRoundTrip(t *testing.T) {
	in := GENFrame{QueueID: AbsoluteQueueID{QueueID: 3, QueueSeq: 1234}, Timestamp: 987654321}
	out, err := DecodeGEN(in.Encode())
	if err != nil {
		t.Fatalf("DecodeGEN: %v", err)
	}
	if out != in {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
}

func TestREPLYRoundTrip(t *testing.T) {
	in := REPLYFrame{
		Outcome:   OutcomeStateTwo,
		MHPSeq:    65535,
		QueueID:   AbsoluteQueueID{QueueID: 1, QueueSeq: 42},
		PeerQueue: AbsoluteQueueID{QueueID: 1, QueueSeq: 42},
	}
	out, err := DecodeREPLY(in.Encode())
	if err != nil {
		t.Fatalf("DecodeREPLY: %v", err)
	}
	if out != in {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
}

func TestREPLYErrorOutcomes(t *testing.T) {
	for _, o := range []MHPOutcome{ErrQueueMismatch, ErrTimeMismatch, ErrNoMessageOther} {
		if !o.IsError() {
			t.Errorf("%v should be an error outcome", o)
		}
		if o.Success() {
			t.Errorf("%v should not be a success", o)
		}
		in := REPLYFrame{Outcome: o, MHPSeq: 7}
		out, err := DecodeREPLY(in.Encode())
		if err != nil || out.Outcome != o {
			t.Errorf("error outcome %v did not round trip: %v %v", o, out.Outcome, err)
		}
	}
	if OutcomeFailure.IsError() || OutcomeStateOne.IsError() {
		t.Fatal("non-error outcomes misclassified")
	}
	if !OutcomeStateOne.Success() || !OutcomeStateTwo.Success() || OutcomeFailure.Success() {
		t.Fatal("success classification wrong")
	}
}

func TestDQPRoundTrip(t *testing.T) {
	in := DQPFrame{
		Kind:             DQPAdd,
		CommSeq:          200,
		QueueID:          AbsoluteQueueID{QueueID: 2, QueueSeq: 300},
		ScheduleCycle:    1 << 40,
		TimeoutCycle:     1<<40 + 100000,
		MinFidelity:      0.64,
		PurposeID:        5123,
		CreateID:         999,
		NumPairs:         255,
		Priority:         3,
		VirtualFinish:    777777,
		EstCyclesPerPair: 123456,
		Flags:            RequestFlags{Store: true, Atomic: true, MasterRequest: true, Consecutive: true},
	}
	out, err := DecodeDQP(in.Encode())
	if err != nil {
		t.Fatalf("DecodeDQP: %v", err)
	}
	if math.Abs(out.MinFidelity-in.MinFidelity) > 1e-4 {
		t.Fatalf("fidelity fixed-point error too large: %v vs %v", out.MinFidelity, in.MinFidelity)
	}
	out.MinFidelity = in.MinFidelity
	if out != in {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", out, in)
	}
}

func TestDQPKindsAndTypes(t *testing.T) {
	for _, kind := range []DQPFrameKind{DQPAdd, DQPAck, DQPRej} {
		in := DQPFrame{Kind: kind, CommSeq: 1}
		enc := in.Encode()
		ft, err := PeekType(enc)
		if err != nil {
			t.Fatalf("PeekType: %v", err)
		}
		want := map[DQPFrameKind]FrameType{DQPAdd: FrameDQPAdd, DQPAck: FrameDQPAck, DQPRej: FrameDQPRej}[kind]
		if ft != want {
			t.Errorf("kind %d encodes as %v, want %v", kind, ft, want)
		}
		out, err := DecodeDQP(enc)
		if err != nil || out.Kind != kind {
			t.Errorf("kind %d did not round trip: %v %v", kind, out.Kind, err)
		}
	}
	// Mismatched kind/type must be rejected.
	bad := DQPFrame{Kind: DQPAck}.Encode()
	bad[1] = byte(DQPRej)
	if _, err := DecodeDQP(bad); err == nil {
		t.Fatal("mismatched kind/frame-type should fail")
	}
}

func TestCreateRoundTrip(t *testing.T) {
	in := CreateFrame{
		RemoteNodeID: 0xDEADBEEF,
		MinFidelity:  0.75,
		MaxTimeMicro: 14_000_000,
		PurposeID:    443,
		NumPairs:     3,
		Priority:     2,
		TypeKeep:     true,
		Atomic:       false,
		Consecutive:  true,
	}
	out, err := DecodeCreate(in.Encode())
	if err != nil {
		t.Fatalf("DecodeCreate: %v", err)
	}
	if math.Abs(out.MinFidelity-in.MinFidelity) > 1e-4 {
		t.Fatalf("fidelity error: %v", out.MinFidelity)
	}
	out.MinFidelity = in.MinFidelity
	if out != in {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
}

func TestOKKeepRoundTrip(t *testing.T) {
	in := OKKeepFrame{
		CreateID:     12,
		LogicalQubit: 1,
		Directional:  true,
		SeqNumber:    888,
		PurposeID:    10,
		RemoteNodeID: 7,
		Goodness:     0.71,
		GoodnessTime: 123456,
		CreateTime:   123400,
	}
	out, err := DecodeOKKeep(in.Encode())
	if err != nil {
		t.Fatalf("DecodeOKKeep: %v", err)
	}
	if math.Abs(out.Goodness-in.Goodness) > 1e-4 {
		t.Fatalf("goodness error: %v", out.Goodness)
	}
	out.Goodness = in.Goodness
	if out != in {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
}

func TestOKMeasureRoundTrip(t *testing.T) {
	in := OKMeasureFrame{
		CreateID:     1,
		Outcome:      1,
		Basis:        2,
		Directional:  false,
		SeqNumber:    3,
		PurposeID:    4,
		RemoteNodeID: 5,
		Goodness:     0.03,
	}
	out, err := DecodeOKMeasure(in.Encode())
	if err != nil {
		t.Fatalf("DecodeOKMeasure: %v", err)
	}
	if math.Abs(out.Goodness-in.Goodness) > 1e-4 {
		t.Fatalf("goodness error: %v", out.Goodness)
	}
	out.Goodness = in.Goodness
	if out != in {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
}

func TestOKMeasureValidation(t *testing.T) {
	bad := OKMeasureFrame{Outcome: 1, Basis: 2}
	enc := bad.Encode()
	enc[3] = 7 // invalid outcome
	if _, err := DecodeOKMeasure(enc); !errors.Is(err, ErrFieldRange) {
		t.Fatalf("expected field range error, got %v", err)
	}
	enc = bad.Encode()
	enc[4] = 9 // invalid basis
	if _, err := DecodeOKMeasure(enc); !errors.Is(err, ErrFieldRange) {
		t.Fatalf("expected field range error, got %v", err)
	}
}

func TestExpireRoundTrip(t *testing.T) {
	in := ExpireFrame{
		QueueID:      AbsoluteQueueID{QueueID: 0, QueueSeq: 17},
		OriginNodeID: 42,
		CreateID:     9,
		ExpectedSeq:  100,
	}
	out, err := DecodeExpire(in.Encode())
	if err != nil || out != in {
		t.Fatalf("round trip mismatch: %+v vs %+v (%v)", out, in, err)
	}
	ack := ExpireAckFrame{QueueID: in.QueueID, ExpectedSeq: 100}
	ackOut, err := DecodeExpireAck(ack.Encode())
	if err != nil || ackOut != ack {
		t.Fatalf("ack round trip mismatch: %+v vs %+v (%v)", ackOut, ack, err)
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	req := MemoryFrame{IsAck: false, CommQubits: 1, StorageQubits: 4}
	ack := MemoryFrame{IsAck: true, CommQubits: 0, StorageQubits: 2}
	for _, in := range []MemoryFrame{req, ack} {
		out, err := DecodeMemory(in.Encode())
		if err != nil || out != in {
			t.Fatalf("round trip mismatch: %+v vs %+v (%v)", out, in, err)
		}
	}
}

func TestErrFrameRoundTrip(t *testing.T) {
	in := ErrFrame{
		CreateID:     55,
		Code:         ErrTimeout,
		SeqRange:     true,
		SeqLow:       10,
		SeqHigh:      20,
		OriginNodeID: 1,
	}
	out, err := DecodeErr(in.Encode())
	if err != nil || out != in {
		t.Fatalf("round trip mismatch: %+v vs %+v (%v)", out, in, err)
	}
}

func TestPollRoundTrip(t *testing.T) {
	in := PollFrame{
		Attempt:       true,
		QueueID:       AbsoluteQueueID{QueueID: 1, QueueSeq: 2},
		PulseSequence: 3,
		Alpha:         0.1,
		MeasureBasis:  1,
	}
	out, err := DecodePoll(in.Encode())
	if err != nil {
		t.Fatalf("DecodePoll: %v", err)
	}
	if math.Abs(out.Alpha-in.Alpha) > 1e-4 {
		t.Fatalf("alpha error: %v", out.Alpha)
	}
	out.Alpha = in.Alpha
	if out != in {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
}

func TestShortFramesRejected(t *testing.T) {
	funcs := map[string]func([]byte) error{
		"GEN":     func(b []byte) error { _, err := DecodeGEN(b); return err },
		"REPLY":   func(b []byte) error { _, err := DecodeREPLY(b); return err },
		"DQP":     func(b []byte) error { _, err := DecodeDQP(b); return err },
		"CREATE":  func(b []byte) error { _, err := DecodeCreate(b); return err },
		"OK-K":    func(b []byte) error { _, err := DecodeOKKeep(b); return err },
		"OK-M":    func(b []byte) error { _, err := DecodeOKMeasure(b); return err },
		"EXPIRE":  func(b []byte) error { _, err := DecodeExpire(b); return err },
		"EXP-ACK": func(b []byte) error { _, err := DecodeExpireAck(b); return err },
		"MEM":     func(b []byte) error { _, err := DecodeMemory(b); return err },
		"ERR":     func(b []byte) error { _, err := DecodeErr(b); return err },
		"POLL":    func(b []byte) error { _, err := DecodePoll(b); return err },
	}
	for name, decode := range funcs {
		if err := decode([]byte{0x01}); !errors.Is(err, ErrShortFrame) {
			t.Errorf("%s: expected ErrShortFrame for truncated input, got %v", name, err)
		}
		if err := decode(nil); !errors.Is(err, ErrShortFrame) {
			t.Errorf("%s: expected ErrShortFrame for nil input, got %v", name, err)
		}
	}
}

func TestWrongFrameTypeRejected(t *testing.T) {
	gen := GENFrame{}.Encode()
	if _, err := DecodeREPLY(append(gen, make([]byte, 16)...)); !errors.Is(err, ErrBadFrameType) {
		t.Fatalf("expected ErrBadFrameType, got %v", err)
	}
	reply := REPLYFrame{}.Encode()
	if _, err := DecodeGEN(append(reply, make([]byte, 16)...)); !errors.Is(err, ErrBadFrameType) {
		t.Fatalf("expected ErrBadFrameType, got %v", err)
	}
}

func TestPeekType(t *testing.T) {
	if _, err := PeekType(nil); !errors.Is(err, ErrShortFrame) {
		t.Fatal("PeekType on empty input should fail")
	}
	frames := map[FrameType][]byte{
		FrameGEN:       GENFrame{}.Encode(),
		FrameREPLY:     REPLYFrame{}.Encode(),
		FrameCreate:    CreateFrame{}.Encode(),
		FrameOKKeep:    OKKeepFrame{}.Encode(),
		FrameOKMeasure: OKMeasureFrame{}.Encode(),
		FrameExpire:    ExpireFrame{}.Encode(),
		FrameExpireAck: ExpireAckFrame{}.Encode(),
		FrameMemReq:    MemoryFrame{}.Encode(),
		FrameErr:       ErrFrame{}.Encode(),
		FramePoll:      PollFrame{}.Encode(),
		FrameDQPAdd:    DQPFrame{Kind: DQPAdd}.Encode(),
		FrameDQPAck:    DQPFrame{Kind: DQPAck}.Encode(),
		FrameDQPRej:    DQPFrame{Kind: DQPRej}.Encode(),
	}
	for want, enc := range frames {
		got, err := PeekType(enc)
		if err != nil || got != want {
			t.Errorf("PeekType = %v (%v), want %v", got, err, want)
		}
	}
}

func TestFrameTypeStrings(t *testing.T) {
	names := map[FrameType]string{
		FrameGEN: "GEN", FrameREPLY: "REPLY", FrameDQPAdd: "DQP-ADD", FrameDQPAck: "DQP-ACK",
		FrameDQPRej: "DQP-REJ", FrameCreate: "CREATE", FrameOKKeep: "OK-K", FrameOKMeasure: "OK-M",
		FrameExpire: "EXPIRE", FrameExpireAck: "EXPIRE-ACK", FrameMemReq: "REQ(E)", FrameMemAck: "ACK(E)",
		FrameErr: "ERR", FramePoll: "POLL",
	}
	for ft, want := range names {
		if ft.String() != want {
			t.Errorf("FrameType(%d).String() = %q, want %q", ft, ft.String(), want)
		}
	}
	if FrameType(200).String() == "" {
		t.Fatal("unknown frame type should still render")
	}
}

func TestEGPErrorStrings(t *testing.T) {
	names := map[EGPError]string{
		ErrNone: "OK", ErrUnsupported: "UNSUPP", ErrTimeout: "TIMEOUT", ErrRejected: "DENIED",
		ErrOutOfMemory: "OUTOFMEM", ErrMemExceeded: "MEMEXCEEDED", ErrExpired: "EXPIRE", ErrNoTime: "ERR_NOTIME",
	}
	for code, want := range names {
		if code.String() != want {
			t.Errorf("EGPError(%d).String() = %q, want %q", code, code.String(), want)
		}
	}
}

func TestFixedPointPrecision(t *testing.T) {
	for _, v := range []float64{0, 0.25, 0.5, 0.64, 0.75, 0.999, 1} {
		if got := unfixed16(fixed16(v)); math.Abs(got-v) > 1e-4 {
			t.Errorf("fixed point error for %v: %v", v, got)
		}
	}
	if fixed16(-1) != 0 || fixed16(2) != 65535 {
		t.Fatal("fixed point should clamp")
	}
}

func TestAbsoluteQueueIDString(t *testing.T) {
	if (AbsoluteQueueID{QueueID: 2, QueueSeq: 7}).String() != "(2,7)" {
		t.Fatal("queue ID formatting wrong")
	}
}

func TestMHPOutcomeStrings(t *testing.T) {
	for o, want := range map[MHPOutcome]string{
		OutcomeFailure: "failure", OutcomeStateOne: "psi+", OutcomeStateTwo: "psi-",
		ErrQueueMismatch: "QUEUE_MISMATCH", ErrTimeMismatch: "TIME_MISMATCH",
		ErrNoMessageOther: "NO_MESSAGE_OTHER", ErrGeneralFailure: "GEN_FAIL",
	} {
		if o.String() != want {
			t.Errorf("outcome %d renders %q, want %q", o, o.String(), want)
		}
	}
}

// Property: all frames survive an encode/decode round trip.
func TestPropertyGENRoundTrip(t *testing.T) {
	f := func(qid uint8, qseq uint16, ts uint64) bool {
		in := GENFrame{QueueID: AbsoluteQueueID{QueueID: qid, QueueSeq: qseq}, Timestamp: ts}
		out, err := DecodeGEN(in.Encode())
		return err == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDQPRoundTrip(t *testing.T) {
	f := func(cseq uint8, qid uint8, qseq uint16, sched, timeout uint64, purpose, create, pairs uint16, prio uint8, vf uint64, est uint32, flags uint8) bool {
		in := DQPFrame{
			Kind:             DQPAdd,
			CommSeq:          cseq,
			QueueID:          AbsoluteQueueID{QueueID: qid, QueueSeq: qseq},
			ScheduleCycle:    sched,
			TimeoutCycle:     timeout,
			MinFidelity:      float64(purpose%100) / 100,
			PurposeID:        purpose,
			CreateID:         create,
			NumPairs:         pairs,
			Priority:         prio,
			VirtualFinish:    vf,
			EstCyclesPerPair: est,
			Flags:            unpackFlags(flags),
		}
		out, err := DecodeDQP(in.Encode())
		if err != nil {
			return false
		}
		if math.Abs(out.MinFidelity-in.MinFidelity) > 1e-4 {
			return false
		}
		out.MinFidelity = in.MinFidelity
		return out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyREPLYRoundTrip(t *testing.T) {
	f := func(outcome uint8, seq uint16, q1 uint8, s1 uint16, q2 uint8, s2 uint16) bool {
		in := REPLYFrame{
			Outcome:   MHPOutcome(outcome),
			MHPSeq:    seq,
			QueueID:   AbsoluteQueueID{QueueID: q1, QueueSeq: s1},
			PeerQueue: AbsoluteQueueID{QueueID: q2, QueueSeq: s2},
		}
		out, err := DecodeREPLY(in.Encode())
		return err == nil && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEncodingsAreFixedLength(t *testing.T) {
	// Frames of the same type must always have the same length, so the
	// midpoint and nodes can parse them without framing metadata.
	f := func(a uint16, b uint32, c uint8) bool {
		l1 := len(GENFrame{Timestamp: uint64(b)}.Encode())
		l2 := len(GENFrame{QueueID: AbsoluteQueueID{QueueID: c, QueueSeq: a}}.Encode())
		l3 := len(OKKeepFrame{CreateID: a, RemoteNodeID: b}.Encode())
		l4 := len(OKKeepFrame{SeqNumber: a}.Encode())
		return l1 == l2 && l3 == l4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodingsDiffer(t *testing.T) {
	// Different payloads must produce different encodings (basic sanity that
	// all fields are actually serialised).
	a := DQPFrame{Kind: DQPAdd, CreateID: 1, NumPairs: 2, PurposeID: 3}.Encode()
	b := DQPFrame{Kind: DQPAdd, CreateID: 1, NumPairs: 3, PurposeID: 3}.Encode()
	if bytes.Equal(a, b) {
		t.Fatal("different NumPairs should change encoding")
	}
	c := CreateFrame{PurposeID: 1}.Encode()
	d := CreateFrame{PurposeID: 2}.Encode()
	if bytes.Equal(c, d) {
		t.Fatal("different PurposeID should change encoding")
	}
}
