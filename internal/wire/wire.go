// Package wire implements the binary packet formats of the paper's
// Appendix E: the MHP GEN and REPLY frames exchanged with the heralding
// station, the distributed-queue protocol frames (ADD/ACK/REJ), the link
// layer CREATE request, the OK responses for create-and-keep and
// create-and-measure requests, the EXPIRE/EXPIRE-ACK recovery messages, the
// memory-advertisement REQ(E)/ACK(E) frames and the EGP error frame.
//
// Every message type provides Encode/Decode with strict length and range
// validation; quantities that the figures show as fractional (fidelity,
// bright-state population, goodness) are carried as 16-bit fixed point
// values in [0,1].
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Byte order used on the wire: network byte order.
var order = binary.BigEndian

// Errors returned by Decode functions.
var (
	ErrShortFrame   = errors.New("wire: frame too short")
	ErrBadFrameType = errors.New("wire: unexpected frame type")
	ErrFieldRange   = errors.New("wire: field out of range")
)

// FrameType identifies the message carried in a frame; it occupies the first
// byte of every encoding so a demultiplexer can dispatch on it.
type FrameType uint8

// Frame types.
const (
	FrameGEN FrameType = iota + 1
	FrameREPLY
	FrameDQPAdd
	FrameDQPAck
	FrameDQPRej
	FrameCreate
	FrameOKKeep
	FrameOKMeasure
	FrameExpire
	FrameExpireAck
	FrameMemReq
	FrameMemAck
	FrameErr
	FramePoll
)

// String names the frame type.
func (f FrameType) String() string {
	switch f {
	case FrameGEN:
		return "GEN"
	case FrameREPLY:
		return "REPLY"
	case FrameDQPAdd:
		return "DQP-ADD"
	case FrameDQPAck:
		return "DQP-ACK"
	case FrameDQPRej:
		return "DQP-REJ"
	case FrameCreate:
		return "CREATE"
	case FrameOKKeep:
		return "OK-K"
	case FrameOKMeasure:
		return "OK-M"
	case FrameExpire:
		return "EXPIRE"
	case FrameExpireAck:
		return "EXPIRE-ACK"
	case FrameMemReq:
		return "REQ(E)"
	case FrameMemAck:
		return "ACK(E)"
	case FrameErr:
		return "ERR"
	case FramePoll:
		return "POLL"
	default:
		return fmt.Sprintf("frame(%d)", uint8(f))
	}
}

// PeekType returns the frame type of an encoded frame without decoding it.
func PeekType(b []byte) (FrameType, error) {
	if len(b) < 1 {
		return 0, ErrShortFrame
	}
	return FrameType(b[0]), nil
}

// fixed16 encodes a value in [0,1] as a 16-bit fixed point number.
func fixed16(v float64) uint16 {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	return uint16(math.Round(v * 65535))
}

// unfixed16 decodes a 16-bit fixed point number back to [0,1].
func unfixed16(v uint16) float64 { return float64(v) / 65535 }

// AbsoluteQueueID is the (queue, sequence-within-queue) pair identifying one
// item of the distributed queue (Section E.1.1).
type AbsoluteQueueID struct {
	QueueID  uint8
	QueueSeq uint16
}

// String renders the absolute queue ID as (j, i_j).
func (a AbsoluteQueueID) String() string { return fmt.Sprintf("(%d,%d)", a.QueueID, a.QueueSeq) }

// MHPOutcome mirrors the OT field of the REPLY frame: 0 failure, 1/2 the two
// heralded Bell states, and the error codes of Protocol 1.
type MHPOutcome uint8

// Outcome and error codes of the midpoint REPLY (Figure 28).
const (
	OutcomeFailure    MHPOutcome = 0
	OutcomeStateOne   MHPOutcome = 1 // |Ψ+⟩
	OutcomeStateTwo   MHPOutcome = 2 // |Ψ−⟩
	ErrQueueMismatch  MHPOutcome = 0b001 | errFlag
	ErrTimeMismatch   MHPOutcome = 0b010 | errFlag
	ErrNoMessageOther MHPOutcome = 0b100 | errFlag
	ErrGeneralFailure MHPOutcome = 0b111 | errFlag // local GEN_FAIL, never on the wire
	errFlag           MHPOutcome = 0x80
)

// IsError reports whether the outcome encodes a protocol error rather than a
// physical failure/success.
func (o MHPOutcome) IsError() bool { return o&errFlag != 0 }

// Success reports whether the outcome heralds an entangled pair.
func (o MHPOutcome) Success() bool { return o == OutcomeStateOne || o == OutcomeStateTwo }

// String names the outcome.
func (o MHPOutcome) String() string {
	switch o {
	case OutcomeFailure:
		return "failure"
	case OutcomeStateOne:
		return "psi+"
	case OutcomeStateTwo:
		return "psi-"
	case ErrQueueMismatch:
		return "QUEUE_MISMATCH"
	case ErrTimeMismatch:
		return "TIME_MISMATCH"
	case ErrNoMessageOther:
		return "NO_MESSAGE_OTHER"
	case ErrGeneralFailure:
		return "GEN_FAIL"
	default:
		return fmt.Sprintf("outcome(%d)", uint8(o))
	}
}

// GENFrame is the physical-layer frame sent by a node to the heralding
// station alongside the photon (Figure 27).
type GENFrame struct {
	QueueID   AbsoluteQueueID
	Timestamp uint64 // MHP cycle number, used by H to match detection windows
}

const genFrameLen = 1 + 1 + 2 + 8

// Encode serialises the frame.
func (g GENFrame) Encode() []byte {
	b := make([]byte, genFrameLen)
	b[0] = byte(FrameGEN)
	b[1] = g.QueueID.QueueID
	order.PutUint16(b[2:], g.QueueID.QueueSeq)
	order.PutUint64(b[4:], g.Timestamp)
	return b
}

// DecodeGEN parses a GEN frame.
func DecodeGEN(b []byte) (GENFrame, error) {
	var g GENFrame
	if len(b) < genFrameLen {
		return g, fmt.Errorf("%w: GEN needs %d bytes, got %d", ErrShortFrame, genFrameLen, len(b))
	}
	if FrameType(b[0]) != FrameGEN {
		return g, fmt.Errorf("%w: %v", ErrBadFrameType, FrameType(b[0]))
	}
	g.QueueID.QueueID = b[1]
	g.QueueID.QueueSeq = order.Uint16(b[2:])
	g.Timestamp = order.Uint64(b[4:])
	return g, nil
}

// REPLYFrame is the heralding station's response (Figure 28): the outcome,
// the midpoint sequence number and the absolute queue IDs submitted by the
// receiver and its peer.
type REPLYFrame struct {
	Outcome   MHPOutcome
	MHPSeq    uint16
	QueueID   AbsoluteQueueID // the receiver's own submitted queue ID
	PeerQueue AbsoluteQueueID // the queue ID submitted by the peer
}

const replyFrameLen = 1 + 1 + 2 + 3 + 3

// Encode serialises the frame.
func (r REPLYFrame) Encode() []byte {
	b := make([]byte, replyFrameLen)
	b[0] = byte(FrameREPLY)
	b[1] = byte(r.Outcome)
	order.PutUint16(b[2:], r.MHPSeq)
	b[4] = r.QueueID.QueueID
	order.PutUint16(b[5:], r.QueueID.QueueSeq)
	b[7] = r.PeerQueue.QueueID
	order.PutUint16(b[8:], r.PeerQueue.QueueSeq)
	return b
}

// DecodeREPLY parses a REPLY frame.
func DecodeREPLY(b []byte) (REPLYFrame, error) {
	var r REPLYFrame
	if len(b) < replyFrameLen {
		return r, fmt.Errorf("%w: REPLY needs %d bytes, got %d", ErrShortFrame, replyFrameLen, len(b))
	}
	if FrameType(b[0]) != FrameREPLY {
		return r, fmt.Errorf("%w: %v", ErrBadFrameType, FrameType(b[0]))
	}
	r.Outcome = MHPOutcome(b[1])
	r.MHPSeq = order.Uint16(b[2:])
	r.QueueID.QueueID = b[4]
	r.QueueID.QueueSeq = order.Uint16(b[5:])
	r.PeerQueue.QueueID = b[7]
	r.PeerQueue.QueueSeq = order.Uint16(b[8:])
	return r, nil
}

// RequestFlags packs the STR/ATM/MD/MR bits of the DQP frame (Figure 24).
type RequestFlags struct {
	Store         bool // K-type request (store entanglement)
	Atomic        bool // all pairs must be available simultaneously
	MeasureDirect bool // M-type request
	MasterRequest bool // the request originated at the queue master
	Consecutive   bool // issue an OK per generated pair
}

func (f RequestFlags) pack() byte {
	var b byte
	if f.Store {
		b |= 1 << 0
	}
	if f.Atomic {
		b |= 1 << 1
	}
	if f.MeasureDirect {
		b |= 1 << 2
	}
	if f.MasterRequest {
		b |= 1 << 3
	}
	if f.Consecutive {
		b |= 1 << 4
	}
	return b
}

func unpackFlags(b byte) RequestFlags {
	return RequestFlags{
		Store:         b&(1<<0) != 0,
		Atomic:        b&(1<<1) != 0,
		MeasureDirect: b&(1<<2) != 0,
		MasterRequest: b&(1<<3) != 0,
		Consecutive:   b&(1<<4) != 0,
	}
}

// DQPFrameKind distinguishes ADD/ACK/REJ (the FT field of Figure 24).
type DQPFrameKind uint8

// DQP frame kinds.
const (
	DQPAdd DQPFrameKind = 0
	DQPAck DQPFrameKind = 1
	DQPRej DQPFrameKind = 2
)

// DQPFrame is a distributed-queue protocol message (Figure 24). ADD carries
// the full request description; ACK and REJ echo the addressing fields.
type DQPFrame struct {
	Kind             DQPFrameKind
	CommSeq          uint8 // CSEQ: communication sequence number
	QueueID          AbsoluteQueueID
	ScheduleCycle    uint64 // min_time expressed as an MHP cycle number
	TimeoutCycle     uint64 // cycle at which the request times out (0 = none)
	MinFidelity      float64
	PurposeID        uint16
	CreateID         uint16
	NumPairs         uint16
	Priority         uint8
	VirtualFinish    uint64 // scheduling info for weighted fair queuing
	EstCyclesPerPair uint32
	Flags            RequestFlags
}

const dqpFrameLen = 1 + 1 + 1 + 1 + 2 + 8 + 8 + 2 + 2 + 2 + 2 + 1 + 8 + 4 + 1

func dqpFrameType(kind DQPFrameKind) FrameType {
	switch kind {
	case DQPAdd:
		return FrameDQPAdd
	case DQPAck:
		return FrameDQPAck
	case DQPRej:
		return FrameDQPRej
	default:
		panic("wire: unknown DQP frame kind")
	}
}

// Encode serialises the frame.
func (d DQPFrame) Encode() []byte {
	b := make([]byte, dqpFrameLen)
	b[0] = byte(dqpFrameType(d.Kind))
	b[1] = byte(d.Kind)
	b[2] = d.CommSeq
	b[3] = d.QueueID.QueueID
	order.PutUint16(b[4:], d.QueueID.QueueSeq)
	order.PutUint64(b[6:], d.ScheduleCycle)
	order.PutUint64(b[14:], d.TimeoutCycle)
	order.PutUint16(b[22:], fixed16(d.MinFidelity))
	order.PutUint16(b[24:], d.PurposeID)
	order.PutUint16(b[26:], d.CreateID)
	order.PutUint16(b[28:], d.NumPairs)
	b[30] = d.Priority
	order.PutUint64(b[31:], d.VirtualFinish)
	order.PutUint32(b[39:], d.EstCyclesPerPair)
	b[43] = d.Flags.pack()
	return b
}

// DecodeDQP parses a DQP frame of any kind.
func DecodeDQP(b []byte) (DQPFrame, error) {
	var d DQPFrame
	if len(b) < dqpFrameLen {
		return d, fmt.Errorf("%w: DQP needs %d bytes, got %d", ErrShortFrame, dqpFrameLen, len(b))
	}
	ft := FrameType(b[0])
	if ft != FrameDQPAdd && ft != FrameDQPAck && ft != FrameDQPRej {
		return d, fmt.Errorf("%w: %v", ErrBadFrameType, ft)
	}
	d.Kind = DQPFrameKind(b[1])
	if d.Kind > DQPRej {
		return d, fmt.Errorf("%w: DQP kind %d", ErrFieldRange, d.Kind)
	}
	if dqpFrameType(d.Kind) != ft {
		return d, fmt.Errorf("%w: frame type %v does not match kind %d", ErrBadFrameType, ft, d.Kind)
	}
	d.CommSeq = b[2]
	d.QueueID.QueueID = b[3]
	d.QueueID.QueueSeq = order.Uint16(b[4:])
	d.ScheduleCycle = order.Uint64(b[6:])
	d.TimeoutCycle = order.Uint64(b[14:])
	d.MinFidelity = unfixed16(order.Uint16(b[22:]))
	d.PurposeID = order.Uint16(b[24:])
	d.CreateID = order.Uint16(b[26:])
	d.NumPairs = order.Uint16(b[28:])
	d.Priority = b[30]
	d.VirtualFinish = order.Uint64(b[31:])
	d.EstCyclesPerPair = order.Uint32(b[39:])
	d.Flags = unpackFlags(b[43])
	return d, nil
}

// CreateFrame is the CREATE request handed to the link layer by a higher
// layer (Figure 31).
type CreateFrame struct {
	RemoteNodeID uint32
	MinFidelity  float64
	MaxTimeMicro uint32 // maximum waiting time in microseconds (0 = unbounded)
	PurposeID    uint16
	NumPairs     uint16
	Priority     uint8
	TypeKeep     bool // true = create-and-keep (K), false = measure-directly (M)
	Atomic       bool
	Consecutive  bool
}

const createFrameLen = 1 + 4 + 2 + 4 + 2 + 2 + 1 + 1

// Encode serialises the frame.
func (c CreateFrame) Encode() []byte {
	b := make([]byte, createFrameLen)
	b[0] = byte(FrameCreate)
	order.PutUint32(b[1:], c.RemoteNodeID)
	order.PutUint16(b[5:], fixed16(c.MinFidelity))
	order.PutUint32(b[7:], c.MaxTimeMicro)
	order.PutUint16(b[11:], c.PurposeID)
	order.PutUint16(b[13:], c.NumPairs)
	b[15] = c.Priority
	var flags byte
	if c.TypeKeep {
		flags |= 1 << 0
	}
	if c.Atomic {
		flags |= 1 << 1
	}
	if c.Consecutive {
		flags |= 1 << 2
	}
	b[16] = flags
	return b
}

// DecodeCreate parses a CREATE frame.
func DecodeCreate(b []byte) (CreateFrame, error) {
	var c CreateFrame
	if len(b) < createFrameLen {
		return c, fmt.Errorf("%w: CREATE needs %d bytes, got %d", ErrShortFrame, createFrameLen, len(b))
	}
	if FrameType(b[0]) != FrameCreate {
		return c, fmt.Errorf("%w: %v", ErrBadFrameType, FrameType(b[0]))
	}
	c.RemoteNodeID = order.Uint32(b[1:])
	c.MinFidelity = unfixed16(order.Uint16(b[5:]))
	c.MaxTimeMicro = order.Uint32(b[7:])
	c.PurposeID = order.Uint16(b[11:])
	c.NumPairs = order.Uint16(b[13:])
	c.Priority = b[15]
	c.TypeKeep = b[16]&(1<<0) != 0
	c.Atomic = b[16]&(1<<1) != 0
	c.Consecutive = b[16]&(1<<2) != 0
	return c, nil
}

// OKKeepFrame is the OK response for a create-and-keep request (Figure 37).
type OKKeepFrame struct {
	CreateID     uint16
	LogicalQubit uint8
	Directional  bool // true when the request originated at this node
	SeqNumber    uint16
	PurposeID    uint16
	RemoteNodeID uint32
	Goodness     float64
	GoodnessTime uint32 // microseconds since run start
	CreateTime   uint32 // microseconds since run start
}

const okKeepFrameLen = 1 + 2 + 1 + 1 + 2 + 2 + 4 + 2 + 4 + 4

// Encode serialises the frame.
func (o OKKeepFrame) Encode() []byte {
	b := make([]byte, okKeepFrameLen)
	b[0] = byte(FrameOKKeep)
	order.PutUint16(b[1:], o.CreateID)
	b[3] = o.LogicalQubit
	if o.Directional {
		b[4] = 1
	}
	order.PutUint16(b[5:], o.SeqNumber)
	order.PutUint16(b[7:], o.PurposeID)
	order.PutUint32(b[9:], o.RemoteNodeID)
	order.PutUint16(b[13:], fixed16(o.Goodness))
	order.PutUint32(b[15:], o.GoodnessTime)
	order.PutUint32(b[19:], o.CreateTime)
	return b
}

// DecodeOKKeep parses an OK-K frame.
func DecodeOKKeep(b []byte) (OKKeepFrame, error) {
	var o OKKeepFrame
	if len(b) < okKeepFrameLen {
		return o, fmt.Errorf("%w: OK-K needs %d bytes, got %d", ErrShortFrame, okKeepFrameLen, len(b))
	}
	if FrameType(b[0]) != FrameOKKeep {
		return o, fmt.Errorf("%w: %v", ErrBadFrameType, FrameType(b[0]))
	}
	o.CreateID = order.Uint16(b[1:])
	o.LogicalQubit = b[3]
	o.Directional = b[4] != 0
	o.SeqNumber = order.Uint16(b[5:])
	o.PurposeID = order.Uint16(b[7:])
	o.RemoteNodeID = order.Uint32(b[9:])
	o.Goodness = unfixed16(order.Uint16(b[13:]))
	o.GoodnessTime = order.Uint32(b[15:])
	o.CreateTime = order.Uint32(b[19:])
	return o, nil
}

// OKMeasureFrame is the OK response for a measure-directly request
// (Figure 38): it carries the measurement outcome and basis instead of a
// qubit location.
type OKMeasureFrame struct {
	CreateID     uint16
	Outcome      uint8 // 0 or 1
	Basis        uint8 // 0=Z, 1=X, 2=Y
	Directional  bool
	SeqNumber    uint16
	PurposeID    uint16
	RemoteNodeID uint32
	Goodness     float64 // QBER estimate for M requests
}

const okMeasureFrameLen = 1 + 2 + 1 + 1 + 1 + 2 + 2 + 4 + 2

// Encode serialises the frame.
func (o OKMeasureFrame) Encode() []byte {
	b := make([]byte, okMeasureFrameLen)
	b[0] = byte(FrameOKMeasure)
	order.PutUint16(b[1:], o.CreateID)
	b[3] = o.Outcome
	b[4] = o.Basis
	if o.Directional {
		b[5] = 1
	}
	order.PutUint16(b[6:], o.SeqNumber)
	order.PutUint16(b[8:], o.PurposeID)
	order.PutUint32(b[10:], o.RemoteNodeID)
	order.PutUint16(b[14:], fixed16(o.Goodness))
	return b
}

// DecodeOKMeasure parses an OK-M frame.
func DecodeOKMeasure(b []byte) (OKMeasureFrame, error) {
	var o OKMeasureFrame
	if len(b) < okMeasureFrameLen {
		return o, fmt.Errorf("%w: OK-M needs %d bytes, got %d", ErrShortFrame, okMeasureFrameLen, len(b))
	}
	if FrameType(b[0]) != FrameOKMeasure {
		return o, fmt.Errorf("%w: %v", ErrBadFrameType, FrameType(b[0]))
	}
	o.CreateID = order.Uint16(b[1:])
	o.Outcome = b[3]
	if o.Outcome > 1 {
		return o, fmt.Errorf("%w: outcome %d", ErrFieldRange, o.Outcome)
	}
	o.Basis = b[4]
	if o.Basis > 2 {
		return o, fmt.Errorf("%w: basis %d", ErrFieldRange, o.Basis)
	}
	o.Directional = b[5] != 0
	o.SeqNumber = order.Uint16(b[6:])
	o.PurposeID = order.Uint16(b[8:])
	o.RemoteNodeID = order.Uint32(b[10:])
	o.Goodness = unfixed16(order.Uint16(b[14:]))
	return o, nil
}

// ExpireFrame revokes OKs already issued when an inconsistency is detected
// (Figure 32).
type ExpireFrame struct {
	QueueID      AbsoluteQueueID
	OriginNodeID uint32
	CreateID     uint16
	ExpectedSeq  uint16 // the sender's up-to-date expected MHP sequence number
}

const expireFrameLen = 1 + 1 + 2 + 4 + 2 + 2

// Encode serialises the frame.
func (e ExpireFrame) Encode() []byte {
	b := make([]byte, expireFrameLen)
	b[0] = byte(FrameExpire)
	b[1] = e.QueueID.QueueID
	order.PutUint16(b[2:], e.QueueID.QueueSeq)
	order.PutUint32(b[4:], e.OriginNodeID)
	order.PutUint16(b[8:], e.CreateID)
	order.PutUint16(b[10:], e.ExpectedSeq)
	return b
}

// DecodeExpire parses an EXPIRE frame.
func DecodeExpire(b []byte) (ExpireFrame, error) {
	var e ExpireFrame
	if len(b) < expireFrameLen {
		return e, fmt.Errorf("%w: EXPIRE needs %d bytes, got %d", ErrShortFrame, expireFrameLen, len(b))
	}
	if FrameType(b[0]) != FrameExpire {
		return e, fmt.Errorf("%w: %v", ErrBadFrameType, FrameType(b[0]))
	}
	e.QueueID.QueueID = b[1]
	e.QueueID.QueueSeq = order.Uint16(b[2:])
	e.OriginNodeID = order.Uint32(b[4:])
	e.CreateID = order.Uint16(b[8:])
	e.ExpectedSeq = order.Uint16(b[10:])
	return e, nil
}

// ExpireAckFrame acknowledges an EXPIRE (Figure 33).
type ExpireAckFrame struct {
	QueueID     AbsoluteQueueID
	ExpectedSeq uint16
}

const expireAckFrameLen = 1 + 1 + 2 + 2

// Encode serialises the frame.
func (e ExpireAckFrame) Encode() []byte {
	b := make([]byte, expireAckFrameLen)
	b[0] = byte(FrameExpireAck)
	b[1] = e.QueueID.QueueID
	order.PutUint16(b[2:], e.QueueID.QueueSeq)
	order.PutUint16(b[4:], e.ExpectedSeq)
	return b
}

// DecodeExpireAck parses an EXPIRE-ACK frame.
func DecodeExpireAck(b []byte) (ExpireAckFrame, error) {
	var e ExpireAckFrame
	if len(b) < expireAckFrameLen {
		return e, fmt.Errorf("%w: EXPIRE-ACK needs %d bytes, got %d", ErrShortFrame, expireAckFrameLen, len(b))
	}
	if FrameType(b[0]) != FrameExpireAck {
		return e, fmt.Errorf("%w: %v", ErrBadFrameType, FrameType(b[0]))
	}
	e.QueueID.QueueID = b[1]
	e.QueueID.QueueSeq = order.Uint16(b[2:])
	e.ExpectedSeq = order.Uint16(b[4:])
	return e, nil
}

// MemoryFrame is a memory-advertisement REQ(E) or ACK(E) (Figure 34),
// carrying the number of free communication and storage qubits.
type MemoryFrame struct {
	IsAck         bool
	CommQubits    uint8
	StorageQubits uint8
}

const memoryFrameLen = 1 + 1 + 1 + 1

// Encode serialises the frame.
func (m MemoryFrame) Encode() []byte {
	b := make([]byte, memoryFrameLen)
	if m.IsAck {
		b[0] = byte(FrameMemAck)
		b[1] = 1
	} else {
		b[0] = byte(FrameMemReq)
	}
	b[2] = m.CommQubits
	b[3] = m.StorageQubits
	return b
}

// DecodeMemory parses a REQ(E)/ACK(E) frame.
func DecodeMemory(b []byte) (MemoryFrame, error) {
	var m MemoryFrame
	if len(b) < memoryFrameLen {
		return m, fmt.Errorf("%w: memory frame needs %d bytes, got %d", ErrShortFrame, memoryFrameLen, len(b))
	}
	ft := FrameType(b[0])
	if ft != FrameMemReq && ft != FrameMemAck {
		return m, fmt.Errorf("%w: %v", ErrBadFrameType, ft)
	}
	m.IsAck = ft == FrameMemAck
	m.CommQubits = b[2]
	m.StorageQubits = b[3]
	return m, nil
}

// EGPError enumerates the link layer error codes of Section 4.1.2 and
// Appendix E.3.
type EGPError uint8

// EGP error codes.
const (
	ErrNone        EGPError = 0
	ErrUnsupported EGPError = 1 // UNSUPP: fidelity not achievable in time
	ErrTimeout     EGPError = 2 // TIMEOUT: request not fulfilled in time
	ErrRejected    EGPError = 3 // DENIED: remote refused
	ErrOutOfMemory EGPError = 4 // OUTOFMEM: temporarily out of storage
	ErrMemExceeded EGPError = 5 // MEMEXCEEDED: permanently too small
	ErrExpired     EGPError = 6 // EXPIRE: pair no longer available
	ErrNoTime      EGPError = 7 // ERR_NOTIME: queue add timed out
	// Robustness extensions beyond the paper's Figure 39 code set: the fault
	// injection subsystem needs outage-killed work distinguishable from
	// ordinary deadline misses, and the network layer needs a synchronous
	// "no usable path" verdict distinguishable from an infeasible request.
	ErrLinkDown EGPError = 8 // LINKDOWN: link went administratively down
	ErrNoRoute  EGPError = 9 // NOROUTE: no path satisfies the fidelity floor
)

// String names the error code as in the paper.
func (e EGPError) String() string {
	switch e {
	case ErrNone:
		return "OK"
	case ErrUnsupported:
		return "UNSUPP"
	case ErrTimeout:
		return "TIMEOUT"
	case ErrRejected:
		return "DENIED"
	case ErrOutOfMemory:
		return "OUTOFMEM"
	case ErrMemExceeded:
		return "MEMEXCEEDED"
	case ErrExpired:
		return "EXPIRE"
	case ErrNoTime:
		return "ERR_NOTIME"
	case ErrLinkDown:
		return "LINKDOWN"
	case ErrNoRoute:
		return "NOROUTE"
	default:
		return fmt.Sprintf("err(%d)", uint8(e))
	}
}

// ErrFrame is the EGP error message delivered to higher layers (Figure 39).
type ErrFrame struct {
	CreateID     uint16
	Code         EGPError
	SeqRange     bool // true when SeqLow/SeqHigh delimit the expired range
	SeqLow       uint16
	SeqHigh      uint16
	OriginNodeID uint32
}

const errFrameLen = 1 + 2 + 1 + 1 + 2 + 2 + 4

// Encode serialises the frame.
func (e ErrFrame) Encode() []byte {
	b := make([]byte, errFrameLen)
	b[0] = byte(FrameErr)
	order.PutUint16(b[1:], e.CreateID)
	b[3] = byte(e.Code)
	if e.SeqRange {
		b[4] = 1
	}
	order.PutUint16(b[5:], e.SeqLow)
	order.PutUint16(b[7:], e.SeqHigh)
	order.PutUint32(b[9:], e.OriginNodeID)
	return b
}

// DecodeErr parses an ERR frame.
func DecodeErr(b []byte) (ErrFrame, error) {
	var e ErrFrame
	if len(b) < errFrameLen {
		return e, fmt.Errorf("%w: ERR needs %d bytes, got %d", ErrShortFrame, errFrameLen, len(b))
	}
	if FrameType(b[0]) != FrameErr {
		return e, fmt.Errorf("%w: %v", ErrBadFrameType, FrameType(b[0]))
	}
	e.CreateID = order.Uint16(b[1:])
	e.Code = EGPError(b[3])
	e.SeqRange = b[4] != 0
	e.SeqLow = order.Uint16(b[5:])
	e.SeqHigh = order.Uint16(b[7:])
	e.OriginNodeID = order.Uint32(b[9:])
	return e, nil
}

// PollFrame is the EGP's answer to an MHP trigger poll (Figure 35): whether
// to attempt generation this cycle, and with what parameters.
type PollFrame struct {
	Attempt       bool
	QueueID       AbsoluteQueueID
	PulseSequence uint8   // PSEQ: identifies the hardware pulse program (K vs M, storage target)
	Alpha         float64 // bright-state population to use
	MeasureBasis  uint8   // for M requests: 0=Z,1=X,2=Y
}

const pollFrameLen = 1 + 1 + 1 + 2 + 1 + 2 + 1

// Encode serialises the frame.
func (p PollFrame) Encode() []byte {
	b := make([]byte, pollFrameLen)
	b[0] = byte(FramePoll)
	if p.Attempt {
		b[1] = 1
	}
	b[2] = p.QueueID.QueueID
	order.PutUint16(b[3:], p.QueueID.QueueSeq)
	b[5] = p.PulseSequence
	order.PutUint16(b[6:], fixed16(p.Alpha))
	b[8] = p.MeasureBasis
	return b
}

// DecodePoll parses a POLL frame.
func DecodePoll(b []byte) (PollFrame, error) {
	var p PollFrame
	if len(b) < pollFrameLen {
		return p, fmt.Errorf("%w: POLL needs %d bytes, got %d", ErrShortFrame, pollFrameLen, len(b))
	}
	if FrameType(b[0]) != FramePoll {
		return p, fmt.Errorf("%w: %v", ErrBadFrameType, FrameType(b[0]))
	}
	p.Attempt = b[1] != 0
	p.QueueID.QueueID = b[2]
	p.QueueID.QueueSeq = order.Uint16(b[3:])
	p.PulseSequence = b[5]
	p.Alpha = unfixed16(order.Uint16(b[6:]))
	p.MeasureBasis = b[8]
	if p.MeasureBasis > 2 {
		return p, fmt.Errorf("%w: basis %d", ErrFieldRange, p.MeasureBasis)
	}
	return p, nil
}
