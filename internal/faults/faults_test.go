package faults

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/netsim"
	"repro/internal/nv"
	"repro/internal/quantum"
	"repro/internal/sim"
)

func link(a, b int) *netsim.Edge { return &netsim.Edge{A: a, B: b} }
func node(n int) *int            { return &n }

// TestEventValidation tables the plan validator: well-formed events pass,
// every malformed shape is rejected before it can reach a network.
func TestEventValidation(t *testing.T) {
	spec := netsim.Chain(4)
	cases := []struct {
		ev Event
		ok bool
	}{
		{Event{At: 0, State: netsim.LinkDown, Link: link(0, 1)}, true},
		{Event{At: 10 * sim.Millisecond, State: netsim.LinkUp, Node: node(2)}, true},
		// Reversed endpoints normalise to the topology's link.
		{Event{At: 0, State: netsim.LinkDegraded, Link: link(2, 1), Degrade: &netsim.Degrade{ClassicalLoss: 0.1}}, true},
		{Event{At: 0, State: netsim.LinkDegraded, Link: link(0, 1)}, true}, // nil degrade = no-op impairment
		{Event{At: -sim.Millisecond, State: netsim.LinkDown, Link: link(0, 1)}, false},
		{Event{At: 0, State: netsim.LinkDown}, false},                                               // no target
		{Event{At: 0, State: netsim.LinkDown, Link: link(0, 1), Node: node(1)}, false},              // both targets
		{Event{At: 0, State: netsim.LinkDown, Link: link(0, 2)}, false},                             // no such link
		{Event{At: 0, State: netsim.LinkDown, Node: node(9)}, false},                                // node out of range
		{Event{At: 0, State: netsim.LinkDown, Link: link(0, 1), Degrade: &netsim.Degrade{}}, false}, // degrade with down
		{Event{At: 0, State: netsim.LinkUp, Link: link(0, 1), Degrade: &netsim.Degrade{}}, false},   // degrade with up
		{Event{At: 0, State: netsim.LinkDegraded, Link: link(0, 1), Degrade: &netsim.Degrade{ClassicalLoss: 1.5}}, false},
		{Event{At: 0, State: netsim.LinkDegraded, Link: link(0, 1), Degrade: &netsim.Degrade{PairFidelity: 1}}, false},
		{Event{At: 0, State: netsim.LinkDegraded, Link: link(0, 1), Degrade: &netsim.Degrade{RateDivisor: -1}}, false},
		{Event{At: 0, State: netsim.LinkState(7), Link: link(0, 1)}, false}, // unknown state
	}
	for i, c := range cases {
		err := (&Plan{Events: []Event{c.ev}}).Validate(spec)
		if c.ok && err != nil {
			t.Errorf("case %d: valid event rejected: %v", i, err)
		}
		if !c.ok && err == nil {
			t.Errorf("case %d: invalid event accepted", i)
		}
	}
	var nilPlan *Plan
	if err := nilPlan.Validate(spec); err != nil || !nilPlan.Empty() {
		t.Errorf("nil plan must validate as empty, got %v", err)
	}
}

// renderPlan flattens a plan for byte comparison (events hold pointers, so
// struct equality is useless across builds).
func renderPlan(p *Plan) string {
	var b strings.Builder
	for _, ev := range p.Events {
		target := "-"
		if ev.Link != nil {
			target = fmt.Sprintf("%d-%d", ev.Link.A, ev.Link.B)
		}
		if ev.Node != nil {
			target = fmt.Sprintf("n%d", *ev.Node)
		}
		fmt.Fprintf(&b, "%d %v %s\n", ev.At, ev.State, target)
	}
	return b.String()
}

// TestOutagesGenerator checks the seeded outage expansion: pure function of
// its spec, sorted, valid against the topology, bounded by the window and
// duration limits, and sensitive to the seed.
func TestOutagesGenerator(t *testing.T) {
	spec := netsim.Chain(6)
	o := OutageSpec{Seed: 3, Outages: 5, Window: sim.DurationSeconds(1),
		MinDown: 10 * sim.Millisecond, MaxDown: 50 * sim.Millisecond}
	p1, err := Outages(spec, o)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Outages(spec, o)
	if err != nil {
		t.Fatal(err)
	}
	if renderPlan(p1) != renderPlan(p2) {
		t.Fatalf("same spec produced different plans:\n%s\nvs\n%s", renderPlan(p1), renderPlan(p2))
	}
	if len(p1.Events) != 2*o.Outages {
		t.Fatalf("%d outages expanded to %d events, want %d", o.Outages, len(p1.Events), 2*o.Outages)
	}
	if err := p1.Validate(spec); err != nil {
		t.Fatalf("generated plan invalid: %v", err)
	}
	downs, ups := 0, 0
	limit := o.Window + o.MaxDown
	for i, ev := range p1.Events {
		if i > 0 && ev.At < p1.Events[i-1].At {
			t.Fatalf("events not sorted by time at %d", i)
		}
		if ev.At < 0 || ev.At > limit {
			t.Errorf("event %d at %v outside [0, window+maxdown]", i, ev.At)
		}
		switch ev.State {
		case netsim.LinkDown:
			downs++
		case netsim.LinkUp:
			ups++
		}
	}
	if downs != o.Outages || ups != o.Outages {
		t.Errorf("generated %d downs / %d ups, want %d each", downs, ups, o.Outages)
	}
	reseeded := o
	reseeded.Seed = 4
	p3, err := Outages(spec, reseeded)
	if err != nil {
		t.Fatal(err)
	}
	if renderPlan(p1) == renderPlan(p3) {
		t.Errorf("different seeds produced identical plans (suspicious)")
	}

	// Degenerate and invalid specs.
	if p, err := Outages(spec, OutageSpec{}); err != nil || !p.Empty() {
		t.Errorf("zero outages must expand to an empty plan, got %v", err)
	}
	for _, bad := range []OutageSpec{
		{Outages: 1, Window: 0, MinDown: sim.Millisecond, MaxDown: sim.Millisecond},
		{Outages: 1, Window: sim.Second, MinDown: 0, MaxDown: sim.Millisecond},
		{Outages: 1, Window: sim.Second, MinDown: 2 * sim.Millisecond, MaxDown: sim.Millisecond},
	} {
		if _, err := Outages(spec, bad); err == nil {
			t.Errorf("invalid outage spec %+v accepted", bad)
		}
	}
}

// TestScheduleRejectsForeignPlan: a plan referencing links absent from the
// network it is applied to must fail loudly at Schedule time.
func TestScheduleRejectsForeignPlan(t *testing.T) {
	cfg := netsim.DefaultConfig(netsim.Chain(4), nv.ScenarioLab)
	nw, err := netsim.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := &Plan{Events: []Event{{At: 0, State: netsim.LinkDown, Link: link(0, 3)}}}
	if err := p.Schedule(nw); err == nil {
		t.Fatal("plan with a foreign link scheduled without error")
	}
	var empty *Plan
	if err := empty.Schedule(nw); err != nil {
		t.Fatalf("empty plan must schedule as a no-op, got %v", err)
	}
}

// chainCrossEdges are chain-8's potential shard-boundary edges at 2 and 4
// contiguous shards. Registering their network-layer ports is what bounds
// the sharded engine's lookahead (pure link traffic never crosses shards),
// turning the run into a sequence of real barrier windows; on the serial
// engine the same calls are harmless duplex construction.
var chainCrossEdges = [][2]int{{1, 2}, {3, 4}, {5, 6}}

// runFaulted builds one network, installs the plan and runs it at the given
// shard count, returning rendered stats (including the fault ledger) plus
// the deterministic work counters.
func runFaulted(t *testing.T, spec netsim.Spec, plan *Plan, backend quantum.Backend, shards int, seconds float64) (string, uint64, uint64, uint64) {
	t.Helper()
	cfg := netsim.DefaultConfig(spec, nv.ScenarioLab)
	cfg.Seed = 5
	cfg.Backend = backend
	cfg.Shards = shards
	nw, err := netsim.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range chainCrossEdges {
		if _, ok := nw.NetworkPort(e[0], e[1]); !ok {
			t.Fatalf("no link %d-%d", e[0], e[1])
		}
	}
	if err := plan.Schedule(nw); err != nil {
		t.Fatal(err)
	}
	nw.AttachTraffic(netsim.TrafficConfig{Load: 0.7, MaxPairs: 2, MinFidelity: 0.64})
	nw.Run(sim.DurationSeconds(seconds))
	perLink, agg := nw.Stats()
	var b strings.Builder
	for _, ls := range append(perLink, agg) {
		fmt.Fprintf(&b, "%s %d %d %d %.9f %.9f %.9f %.9f %.9f %d %.9f %.9f\n",
			ls.Link, ls.Requests, ls.Errors, ls.Pairs, ls.OKRate, ls.Fidelity,
			ls.LatencyP50, ls.LatencyP90, ls.LatencyP99,
			ls.Downs, ls.DowntimeSeconds, ls.RecoverySeconds)
	}
	return b.String(), nw.Sim.Executed(), nw.Attempts(), agg.Downs
}

// TestFaultPlanShardParity is the determinism acceptance check of the fault
// injector: a plan mixing a link outage, a node outage and degraded mode —
// with the node outage pinned exactly onto a 4-shard barrier boundary, the
// adversarial alignment for cross-shard merges — must produce byte-identical
// stats and work counters at every shard count, on both backends.
func TestFaultPlanShardParity(t *testing.T) {
	if testing.Short() {
		t.Skip("faulted parity sweep in short mode")
	}
	spec := netsim.Chain(8)

	// Probe the 4-shard lookahead so one transition lands exactly on a
	// barrier boundary time.
	probeCfg := netsim.DefaultConfig(spec, nv.ScenarioLab)
	probeCfg.Shards = 4
	probe, err := netsim.NewNetwork(probeCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range chainCrossEdges {
		probe.NetworkPort(e[0], e[1])
	}
	lookahead := probe.Sharded().Lookahead()
	if lookahead <= 0 {
		t.Fatal("4-shard chain has no finite lookahead")
	}
	k := 60 * sim.Millisecond / lookahead
	if k < 1 {
		k = 1
	}
	boundary := k * lookahead
	if boundary > 150*sim.Millisecond {
		t.Fatalf("lookahead %v puts the barrier-aligned event at %v, outside the run", lookahead, boundary)
	}

	n3 := 3
	plan := &Plan{Events: []Event{
		{At: 30 * sim.Millisecond, State: netsim.LinkDown, Link: link(5, 6)},
		{At: sim.Duration(boundary), State: netsim.LinkDown, Node: &n3},
		{At: 90 * sim.Millisecond, State: netsim.LinkUp, Link: link(5, 6)},
		{At: 110 * sim.Millisecond, State: netsim.LinkUp, Node: &n3},
		{At: 120 * sim.Millisecond, State: netsim.LinkDegraded, Link: link(0, 1),
			Degrade: &netsim.Degrade{ClassicalLoss: 0.02, PairFidelity: 0.9, RateDivisor: 3}},
	}}
	if err := plan.Validate(spec); err != nil {
		t.Fatal(err)
	}

	for _, backend := range []quantum.Backend{quantum.BackendDense, quantum.BackendBellDiagonal} {
		backend := backend
		t.Run(backend.String(), func(t *testing.T) {
			t.Parallel()
			refStats, refEvents, refAttempts, refDowns := runFaulted(t, spec, plan, backend, 1, 0.2)
			if refEvents == 0 || refAttempts == 0 {
				t.Fatalf("serial reference did no work: %d events, %d attempts", refEvents, refAttempts)
			}
			// One link outage plus the node outage's two incident links.
			if refDowns != 3 {
				t.Fatalf("plan produced %d outages in the reference run, want 3", refDowns)
			}
			for _, shards := range []int{2, 4} {
				stats, events, attempts, _ := runFaulted(t, spec, plan, backend, shards, 0.2)
				if stats != refStats {
					t.Errorf("%d shards: faulted stats diverge from serial\n--- serial ---\n%s--- %d shards ---\n%s",
						shards, refStats, shards, stats)
				}
				if events != refEvents {
					t.Errorf("%d shards: executed %d events, serial executed %d", shards, events, refEvents)
				}
				if attempts != refAttempts {
					t.Errorf("%d shards: sampled %d attempts, serial sampled %d", shards, attempts, refAttempts)
				}
			}
		})
	}
}
