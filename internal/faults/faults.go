// Package faults is the deterministic fault-injection subsystem: seeded,
// schedulable fault plans — link down/up, node outages taking every incident
// link, and degraded mode (raised classical loss, lowered pair fidelity,
// reduced attempt rate) — applied to a netsim.Network as ordinary sim events
// on each affected link's own engine. Because every transition fires on the
// shard owning the link, at a time fixed by the plan, faulty trajectories
// are byte-identical across -parallel and -shards; and because an empty plan
// schedules nothing and draws nothing, fault plumbing is zero-cost when off.
//
// Plans come from two places: explicit event lists (the scenario spec's
// faults.events section) and the seeded outage generator (faults.random),
// which expands a seed into down/up event pairs at plan-build time — before
// the run starts — so the whole run remains a pure function of its seeds.
package faults

import (
	"fmt"
	"sort"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// Event is one scheduled admin-state transition. Exactly one target is set:
// Link names one link by its endpoints (order-insensitive), Node takes every
// link incident to the node — the node-outage fault.
type Event struct {
	// At is the transition time as an offset from the start of the run.
	At sim.Duration
	// State is the admin state the target enters at At.
	State netsim.LinkState
	// Degrade parameterises State == LinkDegraded; it is ignored (and should
	// be nil) for Up and Down transitions.
	Degrade *netsim.Degrade
	// Link targets a single link.
	Link *netsim.Edge
	// Node targets every link incident to one node.
	Node *int
}

// validate checks one event against a topology.
func (ev Event) validate(spec netsim.Spec, i int) error {
	if ev.At < 0 {
		return fmt.Errorf("faults: event %d: negative time %v", i, ev.At)
	}
	if (ev.Link == nil) == (ev.Node == nil) {
		return fmt.Errorf("faults: event %d: exactly one of link and node must be set", i)
	}
	switch ev.State {
	case netsim.LinkUp, netsim.LinkDown:
		if ev.Degrade != nil {
			return fmt.Errorf("faults: event %d: degrade parameters are only valid with state %q", i, netsim.LinkDegraded)
		}
	case netsim.LinkDegraded:
		if d := ev.Degrade; d != nil {
			if d.ClassicalLoss < 0 || d.ClassicalLoss > 1 {
				return fmt.Errorf("faults: event %d: classical loss %g out of [0,1]", i, d.ClassicalLoss)
			}
			if d.PairFidelity < 0 || d.PairFidelity >= 1 {
				return fmt.Errorf("faults: event %d: pair fidelity %g out of [0,1)", i, d.PairFidelity)
			}
			if d.RateDivisor < 0 {
				return fmt.Errorf("faults: event %d: negative rate divisor %d", i, d.RateDivisor)
			}
		}
	default:
		return fmt.Errorf("faults: event %d: unknown state %d", i, ev.State)
	}
	if ev.Node != nil {
		n := *ev.Node
		if n < 0 || n >= spec.Nodes {
			return fmt.Errorf("faults: event %d: node %d out of range for %d nodes", i, n, spec.Nodes)
		}
		return nil
	}
	want := normalize(*ev.Link)
	for _, e := range spec.Edges {
		if normalize(e) == want {
			return nil
		}
	}
	return fmt.Errorf("faults: event %d: no link %d-%d in topology %s", i, want.A, want.B, spec.Name)
}

func normalize(e netsim.Edge) netsim.Edge {
	if e.A > e.B {
		return netsim.Edge{A: e.B, B: e.A}
	}
	return e
}

// Plan is a full fault schedule for one run.
type Plan struct {
	Events []Event
}

// Empty reports whether the plan schedules nothing.
func (p *Plan) Empty() bool { return p == nil || len(p.Events) == 0 }

// Validate checks every event against the topology.
func (p *Plan) Validate(spec netsim.Spec) error {
	if p == nil {
		return nil
	}
	for i, ev := range p.Events {
		if err := ev.validate(spec, i); err != nil {
			return err
		}
	}
	return nil
}

// Schedule installs every event of the plan on the network, as ordinary
// events on each affected link's own engine. It must run before the
// simulation starts (every engine clock still at zero). Events are installed
// in plan order, which fixes the execution order of same-time transitions on
// the same link.
func (p *Plan) Schedule(nw *netsim.Network) error {
	if p.Empty() {
		return nil
	}
	if err := p.Validate(nw.Config.Spec); err != nil {
		return err
	}
	for _, ev := range p.Events {
		at := sim.Time(0).Add(ev.At)
		for _, l := range p.targets(nw, ev) {
			nw.ScheduleLinkState(l, at, ev.State, ev.Degrade)
		}
	}
	return nil
}

// targets resolves an event to its affected links: the named link, or every
// link incident to the named node in stable link-ID order.
func (p *Plan) targets(nw *netsim.Network, ev Event) []*netsim.Link {
	if ev.Link != nil {
		e := normalize(*ev.Link)
		if l := nw.LinkBetween(e.A, e.B); l != nil {
			return []*netsim.Link{l}
		}
		return nil
	}
	links := append([]*netsim.Link(nil), nw.Nodes[*ev.Node].Links...)
	sort.Slice(links, func(i, j int) bool { return links[i].ID < links[j].ID })
	return links
}

// OutageSpec parameterises the seeded outage generator.
type OutageSpec struct {
	// Seed drives the generator's private RNG stream.
	Seed int64
	// Outages is how many down/up cycles to generate.
	Outages int
	// Window is the interval the outage start times are drawn from.
	Window sim.Duration
	// MinDown/MaxDown bound the uniformly drawn outage durations.
	MinDown, MaxDown sim.Duration
}

// Outages expands a seeded outage spec into an explicit plan: each outage
// takes one uniformly chosen link down at a uniform time in the window and
// repairs it after a uniform duration in [MinDown, MaxDown]. All randomness
// is drawn here, at plan-build time, from a stream derived from the seed —
// never from the simulation engines — so the plan (and the run it shapes) is
// a pure function of the spec.
func Outages(spec netsim.Spec, o OutageSpec) (*Plan, error) {
	if o.Outages <= 0 {
		return &Plan{}, nil
	}
	if o.Window <= 0 {
		return nil, fmt.Errorf("faults: outage generator needs a positive window, got %v", o.Window)
	}
	if o.MinDown <= 0 || o.MaxDown < o.MinDown {
		return nil, fmt.Errorf("faults: outage durations must satisfy 0 < min ≤ max, got [%v, %v]", o.MinDown, o.MaxDown)
	}
	if len(spec.Edges) == 0 {
		return nil, fmt.Errorf("faults: topology %s has no links to fail", spec.Name)
	}
	rng := sim.NewRNG(sim.DeriveSeed(o.Seed, 0xfa17))
	var events []Event
	for i := 0; i < o.Outages; i++ {
		edge := normalize(spec.Edges[rng.Intn(len(spec.Edges))])
		start := sim.Duration(rng.Float64() * float64(o.Window))
		down := o.MinDown + sim.Duration(rng.Float64()*float64(o.MaxDown-o.MinDown))
		e := edge
		events = append(events,
			Event{At: start, State: netsim.LinkDown, Link: &e},
			Event{At: start + down, State: netsim.LinkUp, Link: &e},
		)
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return &Plan{Events: events}, nil
}
