// Package metrics implements the performance metrics of Section 4.2 and the
// estimators used throughout the evaluation: throughput, the three latency
// flavours (per request, per pair, scaled), fidelity and QBER statistics,
// queue length tracking, fairness comparisons between request origins and
// the relative-difference measure of the robustness study.
package metrics

import (
	"math"
	"sort"

	"repro/internal/sim"
)

// Series accumulates scalar observations and exposes summary statistics.
type Series struct {
	values []float64
	sum    float64
	sumSq  float64
	sorted []float64 // lazily sorted copy for quantiles; nil when stale
}

// Add records one observation.
func (s *Series) Add(v float64) {
	s.values = append(s.values, v)
	s.sum += v
	s.sumSq += v * v
	s.sorted = nil
}

// Count returns the number of observations.
func (s *Series) Count() int { return len(s.values) }

// Mean returns the sample mean (0 when empty).
func (s *Series) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	return s.sum / float64(len(s.values))
}

// Variance returns the unbiased sample variance (0 for fewer than two
// observations).
func (s *Series) Variance() float64 {
	n := float64(len(s.values))
	if n < 2 {
		return 0
	}
	mean := s.Mean()
	v := (s.sumSq - n*mean*mean) / (n - 1)
	if v < 0 {
		return 0
	}
	return v
}

// StdDev returns the sample standard deviation.
func (s *Series) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean (the parenthesised values of
// Tables 1, 3 and 4).
func (s *Series) StdErr() float64 {
	if len(s.values) == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(len(s.values)))
}

// Min returns the smallest observation (0 when empty).
func (s *Series) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest observation (0 when empty).
func (s *Series) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// sortedValues returns the observations in ascending order, sorting at most
// once per batch of Adds: the sorted copy is cached and invalidated by Add,
// so a sweep of quantile queries (p50/p90/p99 over the same series) costs one
// sort instead of one per query.
func (s *Series) sortedValues() []float64 {
	if s.sorted == nil && len(s.values) > 0 {
		s.sorted = append(make([]float64, 0, len(s.values)), s.values...)
		sort.Float64s(s.sorted)
	}
	return s.sorted
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using nearest-rank on
// the sorted observations.
func (s *Series) Percentile(p float64) float64 {
	sorted := s.sortedValues()
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1); Quantile(q) is exactly
// Percentile(100q).
func (s *Series) Quantile(q float64) float64 { return s.Percentile(q * 100) }

// Values returns a copy of the raw observations.
func (s *Series) Values() []float64 { return append([]float64(nil), s.values...) }

// SafeRate divides a count by a duration in seconds, returning 0 for empty,
// zero or non-finite intervals instead of NaN/Inf. Shared by the per-link
// and per-path throughput summaries.
func SafeRate(count, seconds float64) float64 {
	if seconds <= 0 || math.IsNaN(seconds) || math.IsInf(seconds, 0) {
		return 0
	}
	return count / seconds
}

// RelativeDifference implements footnote 2 of the paper:
// |m1 − m2| / max(|m1|, |m2|), with 0 when both are zero.
func RelativeDifference(m1, m2 float64) float64 {
	denom := math.Max(math.Abs(m1), math.Abs(m2))
	if denom == 0 {
		return 0
	}
	return math.Abs(m1-m2) / denom
}

// QBERCounter accumulates basis-resolved error counts from measure-directly
// outcomes and test rounds, and converts them into a fidelity estimate via
// Eq. (16).
type QBERCounter struct {
	errors [3]int // indexed by basis: Z, X, Y
	totals [3]int
	// correlated[b] is true when ideal outcomes in basis b should be equal
	// for the target Bell state (Ψ+ by default).
	correlated [3]bool
}

// NewQBERCounterPsiPlus returns a counter with the correlation pattern of
// |Ψ+⟩: correlated in X and Y, anti-correlated in Z.
func NewQBERCounterPsiPlus() *QBERCounter {
	return &QBERCounter{correlated: [3]bool{false, true, true}}
}

// Record adds one joint measurement outcome in the given basis
// (0=Z, 1=X, 2=Y).
func (q *QBERCounter) Record(basis int, outcomeA, outcomeB int) {
	if basis < 0 || basis > 2 {
		panic("metrics: basis out of range")
	}
	q.totals[basis]++
	equal := outcomeA == outcomeB
	if equal != q.correlated[basis] {
		q.errors[basis]++
	}
}

// Rates returns the per-basis error rates (Z, X, Y); bases with no samples
// report 0.
func (q *QBERCounter) Rates() (z, x, y float64) {
	rate := func(i int) float64 {
		if q.totals[i] == 0 {
			return 0
		}
		return float64(q.errors[i]) / float64(q.totals[i])
	}
	return rate(0), rate(1), rate(2)
}

// Samples returns the total number of recorded outcomes.
func (q *QBERCounter) Samples() int { return q.totals[0] + q.totals[1] + q.totals[2] }

// FidelityEstimate converts the accumulated QBERs into a fidelity estimate
// via Eq. (16): F = 1 − (QBERX + QBERY + QBERZ)/2.
func (q *QBERCounter) FidelityEstimate() float64 {
	z, x, y := q.Rates()
	f := 1 - (x+y+z)/2
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// RequestRecord tracks the lifecycle of one CREATE request for latency
// accounting.
type RequestRecord struct {
	CreateID    uint64
	Priority    int
	Origin      string
	SubmittedAt sim.Time
	CompletedAt sim.Time
	NumPairs    int
	PairsDone   int
	Failed      bool
	ErrorCode   string
}

// Collector aggregates every metric of one simulation run.
type Collector struct {
	start sim.Time

	// Per-priority metrics, keyed by the request priority (0=NL, 1=CK, 2=MD
	// by the paper's convention of priority 1..3).
	fidelity       map[int]*Series
	requestLatency map[int]*Series
	scaledLatency  map[int]*Series
	pairLatency    map[int]*Series
	pairsDelivered map[int]int
	okCount        map[int]int
	expireCount    int
	errCount       map[string]int

	// Per-origin pair counts for the fairness analysis.
	pairsByOrigin    map[string]int
	fidelityByOrigin map[string]*Series
	latencyByOrigin  map[string]*Series

	qber map[int]*QBERCounter

	queueLengthSamples *Series

	requests map[uint64]*RequestRecord

	end sim.Time
}

// NewCollector creates an empty collector starting at the given simulated
// time.
func NewCollector(start sim.Time) *Collector {
	return &Collector{
		start:              start,
		fidelity:           make(map[int]*Series),
		requestLatency:     make(map[int]*Series),
		scaledLatency:      make(map[int]*Series),
		pairLatency:        make(map[int]*Series),
		pairsDelivered:     make(map[int]int),
		okCount:            make(map[int]int),
		errCount:           make(map[string]int),
		pairsByOrigin:      make(map[string]int),
		fidelityByOrigin:   make(map[string]*Series),
		latencyByOrigin:    make(map[string]*Series),
		qber:               make(map[int]*QBERCounter),
		queueLengthSamples: &Series{},
		requests:           make(map[uint64]*RequestRecord),
	}
}

func seriesFor(m map[int]*Series, k int) *Series {
	s, ok := m[k]
	if !ok {
		s = &Series{}
		m[k] = s
	}
	return s
}

func seriesForString(m map[string]*Series, k string) *Series {
	s, ok := m[k]
	if !ok {
		s = &Series{}
		m[k] = s
	}
	return s
}

// RequestSubmitted records that a CREATE was accepted into the queue.
func (c *Collector) RequestSubmitted(id uint64, priority int, origin string, numPairs int, at sim.Time) {
	c.requests[id] = &RequestRecord{
		CreateID:    id,
		Priority:    priority,
		Origin:      origin,
		SubmittedAt: at,
		NumPairs:    numPairs,
	}
}

// PairDelivered records one OK: a pair delivered for a request, with its
// fidelity estimate (or measured QBER-based goodness for MD).
func (c *Collector) PairDelivered(id uint64, priority int, origin string, fidelity float64, at sim.Time) {
	seriesFor(c.fidelity, priority).Add(fidelity)
	c.pairsDelivered[priority]++
	c.okCount[priority]++
	c.pairsByOrigin[origin]++
	seriesForString(c.fidelityByOrigin, origin).Add(fidelity)
	if r, ok := c.requests[id]; ok {
		r.PairsDone++
		seriesFor(c.pairLatency, priority).Add(at.Sub(r.SubmittedAt).Seconds())
	}
}

// RequestCompleted records that every pair of a request has been delivered.
func (c *Collector) RequestCompleted(id uint64, at sim.Time) {
	r, ok := c.requests[id]
	if !ok {
		return
	}
	r.CompletedAt = at
	latency := at.Sub(r.SubmittedAt).Seconds()
	seriesFor(c.requestLatency, r.Priority).Add(latency)
	n := r.NumPairs
	if n < 1 {
		n = 1
	}
	seriesFor(c.scaledLatency, r.Priority).Add(latency / float64(n))
	seriesForString(c.latencyByOrigin, r.Origin).Add(latency)
}

// RequestFailed records a request that ended in an error.
func (c *Collector) RequestFailed(id uint64, code string, at sim.Time) {
	c.errCount[code]++
	if r, ok := c.requests[id]; ok {
		r.Failed = true
		r.ErrorCode = code
		r.CompletedAt = at
	}
}

// ExpireIssued records an EXPIRE notification.
func (c *Collector) ExpireIssued() { c.expireCount++ }

// RecordQBER adds a measure-directly correlation outcome for the given
// priority class.
func (c *Collector) RecordQBER(priority int, basis int, outcomeA, outcomeB int) {
	q, ok := c.qber[priority]
	if !ok {
		q = NewQBERCounterPsiPlus()
		c.qber[priority] = q
	}
	q.Record(basis, outcomeA, outcomeB)
}

// SampleQueueLength records an instantaneous distributed-queue length.
func (c *Collector) SampleQueueLength(length int) { c.queueLengthSamples.Add(float64(length)) }

// Finish marks the end of the measured interval.
func (c *Collector) Finish(at sim.Time) { c.end = at }

// DurationSeconds returns the measured interval length.
func (c *Collector) DurationSeconds() float64 {
	if c.end <= c.start {
		return 0
	}
	return c.end.Sub(c.start).Seconds()
}

// Throughput returns delivered pairs per second for a priority class.
func (c *Collector) Throughput(priority int) float64 {
	d := c.DurationSeconds()
	if d == 0 {
		return 0
	}
	return float64(c.pairsDelivered[priority]) / d
}

// TotalThroughput returns delivered pairs per second across all priorities.
func (c *Collector) TotalThroughput() float64 {
	d := c.DurationSeconds()
	if d == 0 {
		return 0
	}
	total := 0
	for _, n := range c.pairsDelivered {
		total += n
	}
	return float64(total) / d
}

// Fidelity returns the fidelity series of a priority class.
func (c *Collector) Fidelity(priority int) *Series { return seriesFor(c.fidelity, priority) }

// RequestLatency returns the request latency series of a priority class.
func (c *Collector) RequestLatency(priority int) *Series {
	return seriesFor(c.requestLatency, priority)
}

// ScaledLatency returns the scaled latency series (latency divided by the
// number of requested pairs) of a priority class.
func (c *Collector) ScaledLatency(priority int) *Series { return seriesFor(c.scaledLatency, priority) }

// PairLatency returns the per-pair latency series of a priority class.
func (c *Collector) PairLatency(priority int) *Series { return seriesFor(c.pairLatency, priority) }

// OKCount returns how many OKs were issued for a priority class.
func (c *Collector) OKCount(priority int) int { return c.okCount[priority] }

// ExpireCount returns how many EXPIRE notifications were issued.
func (c *Collector) ExpireCount() int { return c.expireCount }

// ErrorCount returns how many errors of the given code were issued.
func (c *Collector) ErrorCount(code string) int { return c.errCount[code] }

// QBER returns the QBER counter of a priority class (nil when no MD
// outcomes were recorded).
func (c *Collector) QBER(priority int) *QBERCounter { return c.qber[priority] }

// QueueLength returns the sampled queue length series.
func (c *Collector) QueueLength() *Series { return c.queueLengthSamples }

// PairsByOrigin returns the number of pairs delivered to requests that
// originated at each node.
func (c *Collector) PairsByOrigin() map[string]int {
	out := make(map[string]int, len(c.pairsByOrigin))
	for k, v := range c.pairsByOrigin {
		out[k] = v
	}
	return out
}

// FairnessReport compares a metric between two origins using the relative
// difference of footnote 2.
type FairnessReport struct {
	FidelityRelDiff   float64
	LatencyRelDiff    float64
	ThroughputRelDiff float64
	OKCountRelDiff    float64
}

// Fairness compares requests originating at originA vs originB.
func (c *Collector) Fairness(originA, originB string) FairnessReport {
	d := c.DurationSeconds()
	thA, thB := 0.0, 0.0
	if d > 0 {
		thA = float64(c.pairsByOrigin[originA]) / d
		thB = float64(c.pairsByOrigin[originB]) / d
	}
	return FairnessReport{
		FidelityRelDiff:   RelativeDifference(seriesForString(c.fidelityByOrigin, originA).Mean(), seriesForString(c.fidelityByOrigin, originB).Mean()),
		LatencyRelDiff:    RelativeDifference(seriesForString(c.latencyByOrigin, originA).Mean(), seriesForString(c.latencyByOrigin, originB).Mean()),
		ThroughputRelDiff: RelativeDifference(thA, thB),
		OKCountRelDiff:    RelativeDifference(float64(c.pairsByOrigin[originA]), float64(c.pairsByOrigin[originB])),
	}
}

// OutstandingRequests returns how many submitted requests have neither
// completed nor failed.
func (c *Collector) OutstandingRequests() int {
	n := 0
	for _, r := range c.requests {
		if r.CompletedAt == 0 && !r.Failed {
			n++
		}
	}
	return n
}
