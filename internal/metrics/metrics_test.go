package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestSeriesBasics(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.StdDev() != 0 || s.Count() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty series should report zeros")
	}
	for _, v := range []float64{1, 2, 3, 4, 5} {
		s.Add(v)
	}
	if s.Count() != 5 || s.Mean() != 3 {
		t.Fatalf("mean = %v, count = %d", s.Mean(), s.Count())
	}
	if math.Abs(s.Variance()-2.5) > 1e-12 {
		t.Fatalf("variance = %v, want 2.5", s.Variance())
	}
	if math.Abs(s.StdErr()-math.Sqrt(2.5/5)) > 1e-12 {
		t.Fatalf("stderr = %v", s.StdErr())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("min/max wrong: %v %v", s.Min(), s.Max())
	}
	if s.Percentile(50) != 3 || s.Percentile(0) != 1 || s.Percentile(100) != 5 {
		t.Fatalf("percentiles wrong: %v %v %v", s.Percentile(50), s.Percentile(0), s.Percentile(100))
	}
	if got := s.Values(); len(got) != 5 || got[0] != 1 {
		t.Fatal("Values copy wrong")
	}
}

func TestSeriesQuantile(t *testing.T) {
	cases := []struct {
		name          string
		values        []float64
		p50, p90, p99 float64
	}{
		{name: "empty", values: nil, p50: 0, p90: 0, p99: 0},
		{name: "single", values: []float64{7}, p50: 7, p90: 7, p99: 7},
		{name: "two", values: []float64{1, 9}, p50: 1, p90: 9, p99: 9},
		{name: "duplicate-heavy", values: []float64{5, 5, 5, 5, 5, 5, 5, 5, 5, 100}, p50: 5, p90: 5, p99: 100},
		{name: "all-equal", values: []float64{2, 2, 2, 2}, p50: 2, p90: 2, p99: 2},
		{name: "unsorted", values: []float64{9, 1, 5, 3, 7, 2, 8, 4, 6, 10}, p50: 5, p90: 9, p99: 10},
		{name: "hundred", values: func() []float64 {
			v := make([]float64, 100)
			for i := range v {
				v[i] = float64(100 - i)
			}
			return v
		}(), p50: 50, p90: 90, p99: 99},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var s Series
			for _, v := range tc.values {
				s.Add(v)
			}
			checks := []struct {
				q    float64
				want float64
			}{{0.50, tc.p50}, {0.90, tc.p90}, {0.99, tc.p99}}
			for _, c := range checks {
				if got := s.Quantile(c.q); got != c.want {
					t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
				}
				if got := s.Percentile(c.q * 100); got != c.want {
					t.Errorf("Percentile(%v) = %v, want %v", c.q*100, got, c.want)
				}
			}
		})
	}
}

func TestSeriesQuantileCacheInvalidation(t *testing.T) {
	var s Series
	s.Add(10)
	if s.Quantile(0.5) != 10 {
		t.Fatalf("p50 = %v, want 10", s.Quantile(0.5))
	}
	// Adding after a quantile query must invalidate the sorted cache.
	s.Add(1)
	s.Add(2)
	if got := s.Quantile(0.5); got != 2 {
		t.Fatalf("p50 after adds = %v, want 2", got)
	}
	if got := s.Quantile(1); got != 10 {
		t.Fatalf("p100 after adds = %v, want 10", got)
	}
	// Quantile queries must not reorder the raw observation log.
	if v := s.Values(); v[0] != 10 || v[1] != 1 || v[2] != 2 {
		t.Fatalf("Values reordered: %v", v)
	}
}

func TestRelativeDifference(t *testing.T) {
	if RelativeDifference(0, 0) != 0 {
		t.Fatal("0,0 should be 0")
	}
	if got := RelativeDifference(10, 8); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("reldiff(10,8) = %v, want 0.2", got)
	}
	if got := RelativeDifference(8, 10); math.Abs(got-0.2) > 1e-12 {
		t.Fatal("relative difference should be symmetric")
	}
	if got := RelativeDifference(-4, 4); math.Abs(got-2) > 1e-12 {
		t.Fatalf("reldiff(-4,4) = %v, want 2", got)
	}
}

func TestQBERCounter(t *testing.T) {
	q := NewQBERCounterPsiPlus()
	// Ψ+ is anti-correlated in Z: equal outcomes are errors.
	q.Record(0, 0, 1) // correct
	q.Record(0, 1, 1) // error
	// Correlated in X: unequal outcomes are errors.
	q.Record(1, 0, 0) // correct
	q.Record(1, 0, 1) // error
	q.Record(1, 1, 1) // correct
	z, x, y := q.Rates()
	if math.Abs(z-0.5) > 1e-12 || math.Abs(x-1.0/3) > 1e-12 || y != 0 {
		t.Fatalf("rates wrong: %v %v %v", z, x, y)
	}
	if q.Samples() != 5 {
		t.Fatalf("samples = %d", q.Samples())
	}
	want := 1 - (0.5+1.0/3)/2
	if math.Abs(q.FidelityEstimate()-want) > 1e-12 {
		t.Fatalf("fidelity estimate = %v, want %v", q.FidelityEstimate(), want)
	}
}

func TestQBERCounterPerfectCorrelations(t *testing.T) {
	q := NewQBERCounterPsiPlus()
	for i := 0; i < 100; i++ {
		q.Record(0, i%2, 1-i%2) // always anti-correlated in Z
		q.Record(1, i%2, i%2)   // always correlated in X
		q.Record(2, i%2, i%2)   // always correlated in Y
	}
	if q.FidelityEstimate() != 1 {
		t.Fatalf("perfect correlations should give F=1, got %v", q.FidelityEstimate())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid basis should panic")
		}
	}()
	q.Record(5, 0, 0)
}

func TestCollectorThroughputAndLatency(t *testing.T) {
	c := NewCollector(0)
	// Request 1: priority 0, 2 pairs, takes 4 seconds.
	c.RequestSubmitted(1, 0, "A", 2, 0)
	c.PairDelivered(1, 0, "A", 0.7, sim.Time(2*sim.Second))
	c.PairDelivered(1, 0, "A", 0.72, sim.Time(4*sim.Second))
	c.RequestCompleted(1, sim.Time(4*sim.Second))
	// Request 2: priority 2, 1 pair, takes 1 second.
	c.RequestSubmitted(2, 2, "B", 1, sim.Time(1*sim.Second))
	c.PairDelivered(2, 2, "B", 0.8, sim.Time(2*sim.Second))
	c.RequestCompleted(2, sim.Time(2*sim.Second))
	c.Finish(sim.Time(10 * sim.Second))

	if got := c.Throughput(0); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("priority-0 throughput = %v, want 0.2", got)
	}
	if got := c.TotalThroughput(); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("total throughput = %v, want 0.3", got)
	}
	if got := c.RequestLatency(0).Mean(); math.Abs(got-4) > 1e-12 {
		t.Fatalf("request latency = %v, want 4", got)
	}
	if got := c.ScaledLatency(0).Mean(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("scaled latency = %v, want 2", got)
	}
	if got := c.PairLatency(0).Mean(); math.Abs(got-3) > 1e-12 {
		t.Fatalf("pair latency = %v, want 3", got)
	}
	if got := c.Fidelity(0).Mean(); math.Abs(got-0.71) > 1e-12 {
		t.Fatalf("fidelity = %v, want 0.71", got)
	}
	if c.OKCount(0) != 2 || c.OKCount(2) != 1 {
		t.Fatal("OK counts wrong")
	}
	if c.OutstandingRequests() != 0 {
		t.Fatal("no requests should be outstanding")
	}
}

func TestCollectorFailuresAndExpires(t *testing.T) {
	c := NewCollector(0)
	c.RequestSubmitted(1, 0, "A", 1, 0)
	c.RequestFailed(1, "TIMEOUT", sim.Time(sim.Second))
	c.ExpireIssued()
	c.ExpireIssued()
	if c.ErrorCount("TIMEOUT") != 1 || c.ErrorCount("DENIED") != 0 {
		t.Fatal("error counts wrong")
	}
	if c.ExpireCount() != 2 {
		t.Fatal("expire count wrong")
	}
	if c.OutstandingRequests() != 0 {
		t.Fatal("failed request should not be outstanding")
	}
	c.RequestSubmitted(2, 0, "A", 1, 0)
	if c.OutstandingRequests() != 1 {
		t.Fatal("unfinished request should be outstanding")
	}
}

func TestCollectorFairness(t *testing.T) {
	c := NewCollector(0)
	for i := uint64(0); i < 10; i++ {
		origin := "A"
		if i%2 == 1 {
			origin = "B"
		}
		c.RequestSubmitted(i, 0, origin, 1, 0)
		c.PairDelivered(i, 0, origin, 0.7, sim.Time(sim.Second))
		c.RequestCompleted(i, sim.Time(sim.Second))
	}
	c.Finish(sim.Time(10 * sim.Second))
	rep := c.Fairness("A", "B")
	if rep.FidelityRelDiff != 0 || rep.ThroughputRelDiff != 0 || rep.OKCountRelDiff != 0 || rep.LatencyRelDiff != 0 {
		t.Fatalf("balanced run should have zero relative differences: %+v", rep)
	}
	counts := c.PairsByOrigin()
	if counts["A"] != 5 || counts["B"] != 5 {
		t.Fatalf("pairs by origin wrong: %v", counts)
	}
}

func TestCollectorQueueAndQBER(t *testing.T) {
	c := NewCollector(0)
	c.SampleQueueLength(3)
	c.SampleQueueLength(5)
	if c.QueueLength().Mean() != 4 {
		t.Fatal("queue length mean wrong")
	}
	c.RecordQBER(2, 0, 0, 1)
	c.RecordQBER(2, 0, 0, 1)
	if c.QBER(2) == nil || c.QBER(2).Samples() != 2 {
		t.Fatal("QBER recording wrong")
	}
	if c.QBER(0) != nil {
		t.Fatal("unused priority should have nil QBER counter")
	}
}

func TestCollectorZeroDuration(t *testing.T) {
	c := NewCollector(sim.Time(5 * sim.Second))
	if c.Throughput(0) != 0 || c.TotalThroughput() != 0 || c.DurationSeconds() != 0 {
		t.Fatal("zero-duration collector should report zero throughput")
	}
}

// Property: Series mean always lies between min and max; stderr is
// non-negative.
func TestPropertySeriesBounds(t *testing.T) {
	f := func(values []float64) bool {
		var s Series
		for _, v := range values {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
				continue
			}
			s.Add(v)
		}
		if s.Count() == 0 {
			return true
		}
		m := s.Mean()
		return m >= s.Min()-1e-9 && m <= s.Max()+1e-9 && s.StdErr() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: relative difference is symmetric and in [0, 2] for same-sign
// values.
func TestPropertyRelativeDifference(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		d1 := RelativeDifference(a, b)
		d2 := RelativeDifference(b, a)
		if math.Abs(d1-d2) > 1e-12 {
			return false
		}
		if a >= 0 && b >= 0 {
			return d1 >= 0 && d1 <= 1+1e-12
		}
		return d1 >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: QBER fidelity estimate is always a valid fidelity.
func TestPropertyQBERFidelityBounds(t *testing.T) {
	f := func(outcomes []uint8) bool {
		q := NewQBERCounterPsiPlus()
		for i, o := range outcomes {
			q.Record(i%3, int(o)&1, int(o>>1)&1)
		}
		fEst := q.FidelityEstimate()
		return fEst >= 0 && fEst <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSafeRate pins the shared division guard against empty, zero and
// non-finite denominators.
func TestSafeRate(t *testing.T) {
	cases := []struct {
		count, seconds, want float64
	}{
		{10, 2, 5},
		{10, 0, 0},
		{10, -1, 0},
		{0, 0, 0},
		{10, math.NaN(), 0},
		{10, math.Inf(1), 0},
	}
	for _, tc := range cases {
		if got := SafeRate(tc.count, tc.seconds); got != tc.want {
			t.Errorf("SafeRate(%g, %g) = %g, want %g", tc.count, tc.seconds, got, tc.want)
		}
	}
}
