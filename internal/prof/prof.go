// Package prof is the shared CLI plumbing behind the observability flags of
// cmd/bench, cmd/netsim and cmd/e2e: starting and stopping pprof profiles and
// writing flight-recorder traces and metrics snapshots to files.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/obs"
	"repro/internal/sim"
)

// StartCPU begins a CPU profile written to path and returns the function that
// stops it. An empty path is a no-op.
func StartCPU(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("prof: start cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeap writes an allocation (heap) profile to path after a final GC so
// the numbers reflect live memory. An empty path is a no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("prof: write heap profile: %w", err)
	}
	return nil
}

// WriteTrace exports the tracer's merged records as Chrome trace-event JSON
// to path. An empty path is a no-op; a nil tracer writes a valid empty trace.
func WriteTrace(path string, t *obs.Tracer) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := t.WriteChrome(f); err != nil {
		return fmt.Errorf("prof: write trace: %w", err)
	}
	if n := t.Dropped(); n > 0 {
		fmt.Fprintf(os.Stderr, "note: trace rings overwrote %d records; raise the ring capacity for a longer window\n", n)
	}
	return nil
}

// WriteMetrics writes the registry's snapshot at sim time end as indented
// JSON to path. An empty path is a no-op.
func WriteMetrics(path string, r *obs.Registry, end sim.Time) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := r.Snapshot(end).WriteJSON(f); err != nil {
		return fmt.Errorf("prof: write metrics: %w", err)
	}
	return nil
}
