package netsim

import (
	"math"
	"testing"

	"repro/internal/egp"
	"repro/internal/nv"
	"repro/internal/sim"
	"repro/internal/wire"
)

// TestDownLinkRejectsSubmit pins the fail-fast edge of the admin state
// machine: a down link rejects new CREATEs synchronously with LINKDOWN (not
// TIMEOUT, and without touching the paused stack), and accepts again the
// moment it is repaired.
func TestDownLinkRejectsSubmit(t *testing.T) {
	cfg := DefaultConfig(Chain(3), nv.ScenarioLab)
	cfg.Seed = 5
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l := nw.Links[0]
	req := egp.CreateRequest{NumPairs: 1, MinFidelity: 0.64, Priority: egp.PriorityMD}

	nw.SetLinkState(l, LinkDown, nil)
	if _, code := nw.Submit(l, "A", req); code != wire.ErrLinkDown {
		t.Fatalf("Submit on a down link returned %v, want LINKDOWN", code)
	}
	if l.State() != LinkDown || l.Downs != 1 {
		t.Fatalf("down transition not recorded: state %v, downs %d", l.State(), l.Downs)
	}
	// Redundant transitions to the same state are no-ops, not extra outages.
	nw.SetLinkState(l, LinkDown, nil)
	if l.Downs != 1 {
		t.Fatalf("repeated down transition double-counted: downs %d", l.Downs)
	}

	nw.SetLinkState(l, LinkUp, nil)
	if _, code := nw.Submit(l, "A", req); code != wire.ErrNone {
		t.Fatalf("Submit on a repaired link returned %v, want OK", code)
	}
	// The healthy link never saw a transition.
	if nw.Links[1].Downs != 0 || nw.Links[1].State() != LinkUp {
		t.Fatalf("outage leaked onto healthy link: %+v", nw.Links[1].Stats())
	}
}

// TestOutageLifecycleStats drives a scheduled down/up cycle under traffic and
// checks the whole robustness ledger: queued work drains as errors while
// down, exactly the outage interval is accounted as downtime, service
// resumes after repair and the time-to-recover interval closes on the first
// delivered pair.
func TestOutageLifecycleStats(t *testing.T) {
	if testing.Short() {
		t.Skip("traffic-driven outage experiment in short mode")
	}
	cfg := DefaultConfig(Chain(3), nv.ScenarioLab)
	cfg.Seed = 7
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Overload the links so the distributed queues are certainly non-empty
	// when the outage hits, exercising the LINKDOWN drain.
	nw.AttachTraffic(TrafficConfig{Load: 3, MaxPairs: 2, MinFidelity: 0.64})
	l := nw.Links[0]
	nw.ScheduleLinkState(l, sim.Time(0).Add(50*sim.Millisecond), LinkDown, nil)
	nw.ScheduleLinkState(l, sim.Time(0).Add(150*sim.Millisecond), LinkUp, nil)
	nw.Run(sim.DurationSeconds(1))

	perLink, agg := nw.Stats()
	row := perLink[0]
	if row.Downs != 1 {
		t.Errorf("downs %d, want 1", row.Downs)
	}
	if math.Abs(row.DowntimeSeconds-0.1) > 1e-9 {
		t.Errorf("downtime %.6fs, want exactly the 0.1s outage interval", row.DowntimeSeconds)
	}
	if row.Errors == 0 {
		t.Errorf("outage drained no queued requests as errors")
	}
	if row.Pairs == 0 {
		t.Errorf("link delivered nothing despite 0.9s of healthy time")
	}
	if row.RecoverySeconds <= 0 {
		t.Errorf("time-to-recover interval never closed after repair")
	}
	if healthy := perLink[1]; healthy.Downs != 0 || healthy.DowntimeSeconds != 0 {
		t.Errorf("healthy link accrued fault stats: %+v", healthy)
	}
	if agg.Downs != 1 || math.Abs(agg.DowntimeSeconds-0.1) > 1e-9 {
		t.Errorf("aggregate fault ledger wrong: downs %d downtime %.6f", agg.Downs, agg.DowntimeSeconds)
	}
}

// TestDegradedModeLowersFidelity checks the Degraded admin state's pair
// impairment: with a depolarising floor installed on one link, its delivered
// fidelity must sit measurably below an identically loaded healthy link, and
// restoring Up must remove the impairment (no sticky degradation).
func TestDegradedModeLowersFidelity(t *testing.T) {
	if testing.Short() {
		t.Skip("traffic-driven degradation experiment in short mode")
	}
	run := func(degrade *Degrade) []LinkStats {
		cfg := DefaultConfig(Chain(3), nv.ScenarioLab)
		cfg.Seed = 11
		nw, err := NewNetwork(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if degrade != nil {
			nw.SetLinkState(nw.Links[0], LinkDegraded, degrade)
		}
		nw.AttachTraffic(TrafficConfig{Load: 0.8, MaxPairs: 2, MinFidelity: 0.3})
		nw.Run(sim.DurationSeconds(0.6))
		perLink, _ := nw.Stats()
		return perLink
	}
	degraded := run(&Degrade{PairFidelity: 0.7})
	if degraded[0].Pairs == 0 || degraded[1].Pairs == 0 {
		t.Fatalf("degraded run delivered nothing: %+v", degraded)
	}
	if degraded[0].Fidelity >= degraded[1].Fidelity-0.02 {
		t.Errorf("degraded link fidelity %.4f not below healthy link %.4f",
			degraded[0].Fidelity, degraded[1].Fidelity)
	}
	// Degraded is not Down: no outage accounting.
	if degraded[0].Downs != 0 || degraded[0].DowntimeSeconds != 0 {
		t.Errorf("degraded mode counted as an outage: %+v", degraded[0])
	}

	// A degrade/restore round trip before the run leaves no residue: the
	// restored network reproduces the never-touched baseline byte for byte.
	baseline := run(nil)
	restored := func() []LinkStats {
		cfg := DefaultConfig(Chain(3), nv.ScenarioLab)
		cfg.Seed = 11
		nw, err := NewNetwork(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nw.SetLinkState(nw.Links[0], LinkDegraded, &Degrade{ClassicalLoss: 0.2, PairFidelity: 0.7, RateDivisor: 4})
		nw.SetLinkState(nw.Links[0], LinkUp, nil)
		nw.AttachTraffic(TrafficConfig{Load: 0.8, MaxPairs: 2, MinFidelity: 0.3})
		nw.Run(sim.DurationSeconds(0.6))
		perLink, _ := nw.Stats()
		return perLink
	}()
	if render(baseline, LinkStats{}) != render(restored, LinkStats{}) {
		t.Errorf("degrade/restore round trip left residue:\n--- baseline ---\n%s--- restored ---\n%s",
			render(baseline, LinkStats{}), render(restored, LinkStats{}))
	}
}
