package netsim

import (
	"fmt"
	"testing"

	"repro/internal/nv"
	"repro/internal/quantum"
	"repro/internal/sim"
)

// runSharded builds and runs one network at the given shard count and
// returns its rendered stats plus the deterministic work counters.
func runSharded(t *testing.T, spec Spec, backend quantum.Backend, shards int, seconds float64) (string, uint64, uint64) {
	t.Helper()
	cfg := DefaultConfig(spec, nv.ScenarioLab)
	cfg.Seed = 5
	cfg.Backend = backend
	cfg.Shards = shards
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nw.AttachTraffic(TrafficConfig{Load: 0.7, MaxPairs: 2, MinFidelity: 0.64})
	nw.Run(sim.DurationSeconds(seconds))
	perLink, agg := nw.Stats()
	return render(perLink, agg), nw.Sim.Executed(), nw.Attempts()
}

// TestSerialShardedParity is the acceptance check of the sharded engine: the
// experiment tables and the deterministic work counters must be byte-identical
// between the serial engine and the sharded engine at every shard count, on
// both pair-state backends. Partitioning is a performance decision, never a
// results decision.
func TestSerialShardedParity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-topology parity sweep in short mode")
	}
	cases := []struct {
		spec    Spec
		seconds float64
	}{
		{Chain(16), 0.15},
		{Dragonfly(4, 5), 0.08},
	}
	for _, c := range cases {
		for _, backend := range []quantum.Backend{quantum.BackendDense, quantum.BackendBellDiagonal} {
			c, backend := c, backend
			t.Run(fmt.Sprintf("%s/%s", c.spec.Name, backend), func(t *testing.T) {
				t.Parallel()
				refStats, refEvents, refAttempts := runSharded(t, c.spec, backend, 1, c.seconds)
				if refEvents == 0 || refAttempts == 0 {
					t.Fatalf("serial reference did no work: %d events, %d attempts", refEvents, refAttempts)
				}
				for _, shards := range []int{2, 4} {
					stats, events, attempts := runSharded(t, c.spec, backend, shards, c.seconds)
					if stats != refStats {
						t.Errorf("%d shards: stats diverge from serial\n--- serial ---\n%s--- %d shards ---\n%s", shards, refStats, shards, stats)
					}
					if events != refEvents {
						t.Errorf("%d shards: executed %d events, serial executed %d", shards, events, refEvents)
					}
					if attempts != refAttempts {
						t.Errorf("%d shards: sampled %d attempts, serial sampled %d", shards, attempts, refAttempts)
					}
				}
			})
		}
	}
}

// TestShardedUsesAllShards guards against a silent fallback to one worker:
// the sharded build must spread the links of a chain across every shard.
func TestShardedUsesAllShards(t *testing.T) {
	cfg := DefaultConfig(Chain(16), nv.ScenarioLab)
	cfg.Seed = 5
	cfg.Shards = 4
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if nw.Sharded() == nil || nw.Sharded().Shards() != 4 {
		t.Fatal("Shards=4 config did not build a 4-shard engine")
	}
	used := map[int]bool{}
	for _, l := range nw.Links {
		used[l.Shard] = true
	}
	if len(used) != 4 {
		t.Fatalf("links landed on %d of 4 shards", len(used))
	}
}

// TestShardedRejectsBadShardCounts: the partition errors must surface through
// NewNetwork rather than panic later.
func TestShardedRejectsBadShardCounts(t *testing.T) {
	cfg := DefaultConfig(Chain(4), nv.ScenarioLab)
	cfg.Shards = 5 // more shards than nodes
	if _, err := NewNetwork(cfg); err == nil {
		t.Fatal("5 shards on 4 nodes accepted")
	}
}
