package netsim

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/wire"
)

// LinkState is a link's administrative state, driven by the fault injection
// subsystem. Every link starts Up; a fault plan moves it through
// Up → Degraded → Down → Up transitions as ordinary sim events on the link's
// own engine, so the trajectory is identical at every shard count.
type LinkState uint8

const (
	// LinkUp is normal operation (the zero value).
	LinkUp LinkState = iota
	// LinkDegraded keeps the link serving but with raised classical loss,
	// lowered pair fidelity and/or a reduced attempt rate.
	LinkDegraded
	// LinkDown stops the link: attempt generation pauses and every queued or
	// in-flight request fails immediately with wire.ErrLinkDown.
	LinkDown
)

// String names the admin state.
func (s LinkState) String() string {
	switch s {
	case LinkUp:
		return "up"
	case LinkDegraded:
		return "degraded"
	case LinkDown:
		return "down"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Degrade parameterises the Degraded admin state. The zero value degrades
// nothing; each knob applies only when set.
type Degrade struct {
	// ClassicalLoss, when > 0, replaces the per-frame loss probability of
	// every classical channel of the link (fibres to the midpoint and the
	// node-to-node pair channel).
	ClassicalLoss float64
	// PairFidelity, when in (0,1), applies a single-qubit depolarising
	// channel of that fidelity to every freshly heralded pair.
	PairFidelity float64
	// RateDivisor, when > 1, throttles attempt generation to one poll every
	// that many MHP cycles.
	RateDivisor int
}

// State returns the link's current admin state.
func (l *Link) State() LinkState { return l.state }

// DowntimeAt returns the link's cumulative downtime including a still-open
// outage interval at the given time.
func (l *Link) DowntimeAt(now sim.Time) sim.Duration {
	d := l.Downtime
	if l.state == LinkDown {
		d += now.Sub(l.downSince)
	}
	return d
}

// SetLinkState applies an admin-state transition to one link. It must run on
// the link's own shard (the fault injector schedules it on l.Eng; calling it
// before the run starts is likewise safe). A transition to Down pauses both
// MHP endpoints, discards their in-flight attempts and drains both EGP
// queues with per-request LINKDOWN errors; a transition out of Down resumes
// generation and opens the link's time-to-recover interval. Degrade
// parameters apply on a transition to Degraded and are fully restored on the
// way back to Up.
func (nw *Network) SetLinkState(l *Link, st LinkState, deg *Degrade) {
	old := l.state
	if old == st && st != LinkDegraded {
		return
	}
	now := l.Eng.Now()
	l.state = st

	switch st {
	case LinkDown:
		l.Downs++
		l.downSince = now
		l.awaitRecovery = false
		l.MHPA.SetPaused(true)
		l.MHPB.SetPaused(true)
		l.MHPA.ClearPending()
		l.MHPB.ClearPending()
		// Drain in deterministic order: the queue master (A) first.
		l.EGPA.FailAll(wire.ErrLinkDown)
		l.EGPB.FailAll(wire.ErrLinkDown)
		nw.applyDegrade(l, nil)
	case LinkDegraded, LinkUp:
		if old == LinkDown {
			l.Downtime += now.Sub(l.downSince)
			l.repairAt = now
			l.awaitRecovery = true
			l.MHPA.SetPaused(false)
			l.MHPB.SetPaused(false)
		}
		if st == LinkDegraded {
			nw.applyDegrade(l, deg)
		} else {
			nw.applyDegrade(l, nil)
		}
	}

	l.traceNet.Record(now, obs.KindLinkState, obs.FaultTrack|uint64(l.ID), int64(st), int64(old))
	nw.cFaults.Inc()
	if nw.OnLinkStateChange != nil {
		nw.OnLinkStateChange(l, old, st)
	}
}

// applyDegrade installs (or, with a nil Degrade, restores) the link's
// degraded-mode parameters.
func (nw *Network) applyDegrade(l *Link, deg *Degrade) {
	loss := nw.Config.ClassicalLossProb
	if deg != nil && deg.ClassicalLoss > 0 {
		loss = deg.ClassicalLoss
	}
	for _, c := range l.fibres {
		c.SetLossProbability(loss)
	}
	l.duplex.SetLossProbability(loss)
	div := uint64(1)
	if deg != nil && deg.RateDivisor > 1 {
		div = uint64(deg.RateDivisor)
	}
	l.MHPA.SetRateDivisor(div)
	l.MHPB.SetRateDivisor(div)
	dep := 0.0
	if deg != nil {
		dep = deg.PairFidelity
	}
	l.Mid.SetDepolarizing(dep)
}

// ScheduleLinkState schedules an admin-state transition at absolute sim time
// at, as an ordinary event on the link's own engine — which is what keeps
// fault trajectories byte-identical across -parallel and -shards.
func (nw *Network) ScheduleLinkState(l *Link, at sim.Time, st LinkState, deg *Degrade) {
	sim.ScheduleAt(l.Eng, at, func() { nw.SetLinkState(l, st, deg) })
}
