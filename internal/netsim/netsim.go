package netsim

import (
	"fmt"

	"repro/internal/classical"
	"repro/internal/egp"
	"repro/internal/metrics"
	"repro/internal/mhp"
	"repro/internal/nv"
	"repro/internal/obs"
	"repro/internal/photonics"
	"repro/internal/quantum"
	"repro/internal/sim"
	"repro/internal/wire"
)

// LinkID identifies one heralded link; it doubles as the classical mux tag.
type LinkID uint64

// The two per-link protocol roles. Within every link the smaller-index node
// plays role A (distributed-queue master, pair side A), mirroring the
// two-node network of the paper; the heralding station only knows roles, not
// global node names.
const (
	roleA = "A"
	roleB = "B"
)

// Config selects the topology, hardware scenario and protocol options of one
// multi-link network.
type Config struct {
	// Spec is the topology (use Chain/Star/Grid/FromEdges).
	Spec Spec
	// Scenario is the hardware model every link runs on.
	Scenario nv.ScenarioID
	// Platform, when non-nil, overrides the scenario's platform parameters —
	// used by validation runs that need modified hardware (e.g. idealised
	// memories for closed-form fidelity checks).
	Platform *nv.Platform
	// Backend selects the pair-state representation every link heralds:
	// quantum.BackendDense (exact, the zero value) or
	// quantum.BackendBellDiagonal (the O(1) fast path).
	Backend quantum.Backend
	// Seed drives every random choice of the run.
	Seed int64
	// Scheduler names the per-link EGP scheduling strategy.
	Scheduler string
	// ClassicalLossProb is the per-frame loss probability of every channel.
	ClassicalLossProb float64
	// MaxQueueLen bounds each distributed-queue lane.
	MaxQueueLen int
	// EmissionMultiplexing allows M attempts to overlap midpoint replies.
	EmissionMultiplexing bool
	// StorageMargin is the FEU fidelity head-room.
	StorageMargin float64
	// HoldPairs keeps delivered K pairs in memory instead of auto-releasing.
	HoldPairs bool
	// QueueSamplePeriod is how often per-link queue occupancy is sampled
	// (default 50 ms of simulated time).
	QueueSamplePeriod sim.Duration
	// Queue selects the event-queue discipline every engine runs on:
	// sim.QueueHeap (the exact binary heap, the zero value) or
	// sim.QueueWheel (the hierarchical timing wheel). Execution order,
	// counters and experiment tables are identical under either discipline;
	// only the constant factors differ.
	Queue sim.QueueKind
	// Shards selects the engine: ≤1 runs the network on the serial
	// simulator (the default), >1 partitions the topology onto a
	// sim.ShardedEngine with that many parallel worker shards. Results are
	// identical either way: every link draws from its own ID-derived RNG
	// stream and schedules on the shard owning it, so the per-link
	// trajectories do not depend on the partitioning.
	Shards int
	// Trace, when non-nil, is the run's flight recorder: the engine records
	// dispatch batches and barrier windows into per-shard rings and every
	// link's protocol stack records its lifecycle into the rings of the
	// shard owning it. It must have at least max(1, Shards) shards. Nil (the
	// default) disables recording at zero cost beyond one nil check per
	// instrumentation point, leaving the trajectory byte-identical.
	Trace *obs.Tracer
	// Metrics, when non-nil, receives per-layer counters and per-class
	// time-to-pair histograms. Nil disables publication the same way.
	Metrics *obs.Registry
}

// DefaultConfig returns the options used by the network-layer experiments:
// the given topology on the given scenario, FCFS scheduling, no classical
// losses, emission multiplexing on. The pair-state backend defaults to
// $REPRO_BACKEND when set (the CI test matrix runs the suite once per
// backend), else to the exact dense simulator; the event-queue discipline
// likewise defaults to $REPRO_QUEUE, else the binary heap.
func DefaultConfig(spec Spec, scenario nv.ScenarioID) Config {
	return Config{
		Spec:                 spec,
		Scenario:             scenario,
		Seed:                 1,
		Scheduler:            "FCFS",
		Backend:              quantum.BackendFromEnv(),
		Queue:                sim.QueueFromEnv(),
		EmissionMultiplexing: true,
		MaxQueueLen:          256,
		StorageMargin:        0.05,
	}
}

// Link is one heralded link: a complete EGP+MHP+midpoint protocol stack with
// its own endpoint devices, pair registry and metrics collector, sharing
// only the simulator (and read-only platform/sampler) with other links.
type Link struct {
	ID   LinkID
	Edge Edge // normalized: Edge.A < Edge.B
	Name string

	EGPA, EGPB       *egp.EGP
	MHPA, MHPB       *mhp.Node
	Mid              *mhp.Midpoint
	Registry         *mhp.PairRegistry
	DeviceA, DeviceB *nv.Device

	// Eng is the engine view this link's whole stack runs on: the shard
	// that owns the link (the serial simulator when unsharded), with RNG()
	// pinned to the link's own splitmix64-derived stream. Everything the
	// link schedules or draws goes through Eng, which is what makes its
	// trajectory independent of the shard count.
	Eng sim.Engine
	// Shard is the owning shard index (0 when unsharded).
	Shard int
	// Sampler is the link's private optical attempt sampler (its per-α
	// cache, draw buffer and attempt counter are single-threaded state, so
	// sharded links cannot share one).
	Sampler *photonics.LinkSampler

	// Collector aggregates this link's delivered pairs, latencies and queue
	// samples; requests are accounted from the origin side only.
	Collector *metrics.Collector

	// Submitted/OKs/Errs count protocol events across both endpoints.
	Submitted, OKs, Errs uint64

	// traceNet is the link's netsim-layer flight-recorder ring (nil when
	// tracing is off); the EGP/MHP rings are handed to those layers directly.
	traceNet *obs.Ring

	// Admin state (fault injection). state stays LinkUp unless a fault plan
	// drives it; Downs/Downtime account completed outages and
	// Recoveries/RecoveryTotal the time from repair to the first delivered
	// pair. All fields are touched only from the link's own shard.
	state         LinkState
	downSince     sim.Time
	repairAt      sim.Time
	awaitRecovery bool
	Downs         uint64
	Downtime      sim.Duration
	Recoveries    uint64
	RecoveryTotal sim.Duration

	// fibres are the four midpoint channels and duplex the node-to-node
	// channel pair, retained so degraded mode can inflate their loss.
	fibres []*classical.Channel
	duplex *classical.Duplex

	nodeNameA, nodeNameB string
	stopA, stopB         func()
	stopSample           func()
}

// EGPFor returns the EGP instance playing the given role ("A" or "B").
func (l *Link) EGPFor(role string) *egp.EGP {
	if role == roleB {
		return l.EGPB
	}
	return l.EGPA
}

// DeviceFor returns the endpoint device playing the given role.
func (l *Link) DeviceFor(role string) *nv.Device {
	if role == roleB {
		return l.DeviceB
	}
	return l.DeviceA
}

// NodeIndex maps a per-link role to the global node index: role A is the
// smaller-index endpoint.
func (l *Link) NodeIndex(role string) int {
	if role == roleB {
		return l.Edge.B
	}
	return l.Edge.A
}

// OtherRole returns the opposite per-link role.
func OtherRole(role string) string {
	if role == roleB {
		return roleA
	}
	return roleB
}

// nodeName maps a per-link role to the global node name.
func (l *Link) nodeName(role string) string {
	if role == roleB {
		return l.nodeNameB
	}
	return l.nodeNameA
}

// requestKey builds a collector key unique across the link's two origins.
func requestKey(role string, createID uint16) uint64 {
	if role == roleB {
		return 1<<32 | uint64(createID)
	}
	return uint64(createID)
}

// Node is one network node: its name, the links it terminates and the link
// registry demultiplexing incoming classical frames to the right EGP.
type Node struct {
	Index int
	Name  string
	// Mux is the link registry's receive side: every channel arriving at
	// this node delivers into it, and it dispatches by link ID.
	Mux   *classical.Mux
	Links []*Link

	egps map[LinkID]*egp.EGP
}

// EGP returns this node's EGP instance for the given link, or nil when the
// link does not terminate here.
func (n *Node) EGP(id LinkID) *egp.EGP { return n.egps[id] }

// Degree returns how many links terminate at this node.
func (n *Node) Degree() int { return len(n.Links) }

// register wires one link endpoint into the node's link registry.
func (n *Node) register(l *Link, e *egp.EGP) {
	n.Links = append(n.Links, l)
	n.egps[l.ID] = e
	n.Mux.Handle(uint64(l.ID), func(m classical.Message) { e.HandlePeerMessage(m) })
}

// Network is a fully wired multi-link quantum network on one engine: the
// serial simulator by default, or a sharded engine when Config.Shards > 1.
type Network struct {
	Config   Config
	Sim      sim.Engine
	Platform *nv.Platform

	Nodes []*Node
	Links []*Link

	// sharded/part are set when the network runs on a sharded engine.
	sharded *sim.ShardedEngine
	part    *Partition

	// OnLinkOK, when set, observes every link-layer OK event (both
	// endpoints, in delivery order) before the per-link metrics accounting.
	// The network layer uses it to consume held create-and-keep pairs.
	OnLinkOK func(*Link, egp.OKEvent)
	// OnLinkError, when set, observes every link-layer request failure.
	OnLinkError func(*Link, egp.ErrorEvent)
	// OnLinkStateChange, when set, observes every link admin-state
	// transition (after the link's own handling: queues are already drained
	// on a Down transition when it fires). The network layer uses it to
	// invalidate routes and re-path in-flight requests.
	OnLinkStateChange func(*Link, LinkState, LinkState)

	// pairChannels holds the shared node-to-node duplexes carrying tagged
	// DQP/EGP traffic, keyed by the normalized node pair.
	pairChannels map[Edge]*classical.Duplex
	// netChannels holds the cross-shard node-to-node duplexes carrying
	// network-layer frames over edges whose endpoints live in different
	// shards, built lazily on the sharded engine's conservative cross
	// channels.
	netChannels map[Edge]*classical.Duplex
	// linksByEdge indexes the links by their normalized endpoints.
	linksByEdge map[Edge]*Link

	traffic trafficGen
	started bool

	// Shared observability handles, all nil when Config.Trace/Metrics are
	// nil: per-layer metric bundles and link-level time-to-pair histograms.
	egpMetrics *obs.EGPMetrics
	mhpMetrics *obs.MHPMetrics
	ttp        *obs.ClassHistograms
	cSubmitted *obs.Counter
	cLinkOKs   *obs.Counter
	cFaults    *obs.Counter
}

// NetworkLayerTag is the mux tag reserved for network-layer frames riding the
// shared node-to-node channels alongside the per-link DQP/EGP traffic. Link
// IDs are small integers, so the maximum tag value can never collide.
const NetworkLayerTag = ^uint64(0)

// NewNetwork builds and wires a multi-link network for the given
// configuration.
func NewNetwork(cfg Config) (*Network, error) {
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxQueueLen <= 0 {
		cfg.MaxQueueLen = 256
	}
	if cfg.QueueSamplePeriod <= 0 {
		cfg.QueueSamplePeriod = 50 * sim.Millisecond
	}

	platform := cfg.Platform
	if platform == nil {
		platform = nv.NewPlatform(cfg.Scenario)
	}
	var (
		eng     sim.Engine
		sharded *sim.ShardedEngine
		part    *Partition
	)
	if cfg.Shards > 1 {
		var err error
		part, err = MakePartition(cfg.Spec, cfg.Shards)
		if err != nil {
			return nil, err
		}
		// Fail at build time if any cross-shard edge's classical delay
		// could not serve as a sound conservative lookahead.
		if err := part.validateCrossDelays(platform.CommDelayAH + platform.CommDelayBH); err != nil {
			return nil, err
		}
		sharded = sim.NewShardedWithQueue(cfg.Seed, cfg.Shards, cfg.Queue)
		eng = sharded
	} else {
		eng = sim.NewWithQueue(cfg.Seed, cfg.Queue)
	}
	nw := &Network{
		Config:       cfg,
		Sim:          eng,
		Platform:     platform,
		sharded:      sharded,
		part:         part,
		pairChannels: make(map[Edge]*classical.Duplex),
		netChannels:  make(map[Edge]*classical.Duplex),
		linksByEdge:  make(map[Edge]*Link),
	}
	if cfg.Trace != nil {
		if err := nw.wireTracer(cfg.Trace); err != nil {
			return nil, err
		}
	}
	if cfg.Metrics != nil {
		nw.egpMetrics = obs.NewEGPMetrics(cfg.Metrics)
		nw.mhpMetrics = obs.NewMHPMetrics(cfg.Metrics)
		nw.ttp = obs.NewClassHistograms(cfg.Metrics, "link.ttp_ns")
		nw.cSubmitted = cfg.Metrics.Counter("netsim.submitted")
		nw.cLinkOKs = cfg.Metrics.Counter("netsim.oks")
		nw.cFaults = cfg.Metrics.Counter("netsim.fault_events")
	}

	for i := 0; i < cfg.Spec.Nodes; i++ {
		nw.Nodes = append(nw.Nodes, &Node{
			Index: i,
			Name:  fmt.Sprintf("n%d", i),
			Mux:   classical.NewMux(),
			egps:  make(map[LinkID]*egp.EGP),
		})
	}
	for i, e := range cfg.Spec.sortedEdges() {
		nw.buildLink(LinkID(i), e)
	}
	return nw, nil
}

// wireTracer installs the engine-level flight-recorder hooks: one dispatch
// batch observer per shard (recording into that shard's own sim-layer ring,
// so shard goroutines never share a buffer) and, on the sharded engine, one
// barrier-window observer recording merged message counts and window spans.
func (nw *Network) wireTracer(t *obs.Tracer) error {
	need := 1
	if nw.sharded != nil {
		need = nw.sharded.Shards()
	}
	if t.Shards() < need {
		return fmt.Errorf("netsim: tracer has %d shard ring(s), network needs %d", t.Shards(), need)
	}
	if nw.sharded == nil {
		ring := t.Ring(0, obs.LayerSim)
		nw.Sim.(*sim.Simulator).SetBatchObserver(func(at sim.Time, batchLen, pending int) {
			ring.Record(at, obs.KindBatch, 0, int64(batchLen), int64(pending))
		})
		return nil
	}
	for i := 0; i < nw.sharded.Shards(); i++ {
		ring := t.Ring(i, obs.LayerSim)
		track := uint64(i)
		nw.sharded.Shard(i).SetBatchObserver(func(at sim.Time, batchLen, pending int) {
			ring.Record(at, obs.KindBatch, track, int64(batchLen), int64(pending))
		})
	}
	// The window observer runs on the coordinating goroutine while shards
	// are parked, so sharing shard 0's sim-layer ring is race-free.
	winRing := t.Ring(0, obs.LayerSim)
	nw.sharded.SetWindowObserver(func(start, end sim.Time, merged int) {
		winRing.Record(end, obs.KindWindow, obs.BarrierTrack, int64(merged), int64(end.Sub(start)))
	})
	return nil
}

// pairDuplex returns (building on first use) the shared classical duplex
// between the link's two endpoints; both directions deliver into the
// destination node's link registry. The duplex runs on the link's own
// engine: even on a cross-shard edge the per-link DQP/EGP handlers on both
// nodes belong to the link's owning shard, so delivery stays shard-local.
func (nw *Network) pairDuplex(l *Link) *classical.Duplex {
	e := l.Edge
	if d, ok := nw.pairChannels[e]; ok {
		return d
	}
	a, b := nw.Nodes[e.A], nw.Nodes[e.B]
	delay := nw.Platform.CommDelayAH + nw.Platform.CommDelayBH
	d := classical.NewDuplex(fmt.Sprintf("%s<->%s", a.Name, b.Name), l.Eng, delay, nw.Config.ClassicalLossProb,
		func(m classical.Message) { b.Mux.Deliver(m) },
		func(m classical.Message) { a.Mux.Deliver(m) })
	nw.pairChannels[e] = d
	return d
}

// networkDuplex returns the duplex carrying network-layer frames over the
// link's edge. Same-shard (and serial) edges reuse the pair duplex; an edge
// whose endpoints live in different shards gets its own duplex built on the
// sharded engine's conservative cross channels, so each direction's frames
// are staged in a per-edge outbox and merged deterministically at window
// barriers. Either way the frames deliver into the destination node's mux
// on the shard owning that node.
func (nw *Network) networkDuplex(l *Link) *classical.Duplex {
	e := l.Edge
	if nw.sharded == nil || nw.part.NodeShard[e.A] == nw.part.NodeShard[e.B] {
		return nw.pairDuplex(l)
	}
	if d, ok := nw.netChannels[e]; ok {
		return d
	}
	a, b := nw.Nodes[e.A], nw.Nodes[e.B]
	sa, sb := nw.part.NodeShard[e.A], nw.part.NodeShard[e.B]
	delay := nw.Platform.CommDelayAH + nw.Platform.CommDelayBH
	// Directed cross channels sort by their registration key at window
	// merges; deriving the key from the stable link ID keeps the merge
	// order independent of construction order.
	engAB, errAB := nw.sharded.Cross(sa, sb, delay, uint64(l.ID)*2)
	engBA, errBA := nw.sharded.Cross(sb, sa, delay, uint64(l.ID)*2+1)
	if errAB != nil || errBA != nil {
		panic(fmt.Sprintf("netsim: cross-shard channel %s<->%s: %v%v", a.Name, b.Name, errAB, errBA))
	}
	d := classical.NewDuplexOn(fmt.Sprintf("%s<=>%s", a.Name, b.Name), engAB, engBA, delay, nw.Config.ClassicalLossProb,
		func(m classical.Message) { b.Mux.Deliver(m) },
		func(m classical.Message) { a.Mux.Deliver(m) })
	nw.netChannels[e] = d
	return d
}

// buildLink instantiates the full protocol stack of one link and registers
// both endpoints with their nodes.
func (nw *Network) buildLink(id LinkID, e Edge) {
	cfg := nw.Config
	platform := nw.Platform
	nodeA, nodeB := nw.Nodes[e.A], nw.Nodes[e.B]

	l := &Link{
		ID:        id,
		Edge:      e,
		Name:      fmt.Sprintf("%s-%s", nodeA.Name, nodeB.Name),
		Registry:  mhp.NewPairRegistry(),
		Collector: metrics.NewCollector(0),
		Sampler:   photonics.NewLinkSamplerBackend(platform.Optics, cfg.Backend),
		nodeNameA: nodeA.Name,
		nodeNameB: nodeB.Name,
	}
	// The link's whole stack runs on the shard owning it, drawing from the
	// link's own RNG stream keyed by the stable link ID — the trajectory is
	// therefore the same whether the engine has 1 shard or N.
	base := nw.Sim
	if nw.sharded != nil {
		l.Shard = nw.part.LinkShard[id]
		base = nw.sharded.Shard(l.Shard)
	}
	l.Eng = sim.WithRNG(base, sim.NewRNG(sim.DeriveSeed(cfg.Seed, 0x11c4, uint64(id))))
	s := l.Eng
	// All of a link's protocol records land in the rings of its owning
	// shard, under the stable link ID as track — which is what keeps the
	// merged trace identical at every shard count.
	var ringEGP, ringMHP *obs.Ring
	if cfg.Trace != nil {
		ringEGP = cfg.Trace.Ring(l.Shard, obs.LayerEGP)
		ringMHP = cfg.Trace.Ring(l.Shard, obs.LayerMHP)
		l.traceNet = cfg.Trace.Ring(l.Shard, obs.LayerNetsim)
	}
	l.DeviceA = nv.NewDevice(fmt.Sprintf("%s/%s", nodeA.Name, l.Name), platform.Gates, platform.CarbonCoupling, platform.MemoryQubits)
	l.DeviceB = nv.NewDevice(fmt.Sprintf("%s/%s", nodeB.Name, l.Name), platform.Gates, platform.CarbonCoupling, platform.MemoryQubits)

	// Per-link optical/classical fibres to the link's own heralding station.
	loss := cfg.ClassicalLossProb
	chanAtoH := classical.NewChannel(l.Name+":A->H", s, platform.CommDelayAH, loss, func(m classical.Message) { l.Mid.HandleGEN(m) })
	chanBtoH := classical.NewChannel(l.Name+":B->H", s, platform.CommDelayBH, loss, func(m classical.Message) { l.Mid.HandleGEN(m) })
	chanHtoA := classical.NewChannel(l.Name+":H->A", s, platform.CommDelayAH, loss, func(m classical.Message) { l.MHPA.HandleReply(m) })
	chanHtoB := classical.NewChannel(l.Name+":H->B", s, platform.CommDelayBH, loss, func(m classical.Message) { l.MHPB.HandleReply(m) })

	l.fibres = []*classical.Channel{chanAtoH, chanBtoH, chanHtoA, chanHtoB}

	// Node-to-node DQP/EGP traffic multiplexes over the shared pair duplex,
	// tagged with the link ID; the receiving node's registry dispatches it.
	duplex := nw.pairDuplex(l)
	l.duplex = duplex
	portA := classical.TagPort{Tag: uint64(id), Under: duplex.AtoB}
	portB := classical.TagPort{Tag: uint64(id), Under: duplex.BtoA}

	newEGP := func(role string, nodeID, peerID uint32, device *nv.Device, side nv.PairSide, port classical.Port) *egp.EGP {
		return egp.New(egp.Config{
			NodeName:             role,
			NodeID:               nodeID,
			PeerID:               peerID,
			IsMaster:             role == roleA,
			Sim:                  s,
			Platform:             platform,
			Device:               device,
			Sampler:              l.Sampler,
			Registry:             l.Registry,
			Side:                 side,
			Scheduler:            egp.NewScheduler(cfg.Scheduler),
			ToPeer:               port,
			OnOK:                 func(ev egp.OKEvent) { nw.handleOK(l, ev) },
			OnError:              func(ev egp.ErrorEvent) { nw.handleError(l, ev) },
			OnExpire:             func(egp.ExpireEvent) { l.Collector.ExpireIssued() },
			MaxQueueLen:          cfg.MaxQueueLen,
			EmissionMultiplexing: cfg.EmissionMultiplexing,
			AutoRelease:          !cfg.HoldPairs,
			Trace:                ringEGP,
			TraceID:              uint64(id),
			Metrics:              nw.egpMetrics,
		})
	}
	idA, idB := uint32(e.A+1), uint32(e.B+1)
	l.EGPA = newEGP(roleA, idA, idB, l.DeviceA, nv.SideA, portA)
	l.EGPB = newEGP(roleB, idB, idA, l.DeviceB, nv.SideB, portB)
	if cfg.StorageMargin > 0 {
		l.EGPA.FEU().SetStorageMargin(cfg.StorageMargin)
		l.EGPB.FEU().SetStorageMargin(cfg.StorageMargin)
	}

	l.MHPA = mhp.NewNode(mhp.NodeConfig{
		Name: roleA, Sim: s, Generator: l.EGPA, Device: l.DeviceA,
		Registry: l.Registry, Side: nv.SideA, ToMidpoint: chanAtoH,
		CycleTimeK: platform.CycleTime[nv.RequestKeep],
		CycleTimeM: platform.CycleTime[nv.RequestMeasure],
		Trace:      ringMHP, TraceID: uint64(id), Metrics: nw.mhpMetrics,
	})
	l.MHPB = mhp.NewNode(mhp.NodeConfig{
		Name: roleB, Sim: s, Generator: l.EGPB, Device: l.DeviceB,
		Registry: l.Registry, Side: nv.SideB, ToMidpoint: chanBtoH,
		CycleTimeK: platform.CycleTime[nv.RequestKeep],
		CycleTimeM: platform.CycleTime[nv.RequestMeasure],
		Trace:      ringMHP, TraceID: uint64(id), Metrics: nw.mhpMetrics,
	})
	l.Mid = mhp.NewMidpoint(mhp.MidpointConfig{
		Sim: s, Sampler: l.Sampler, Registry: l.Registry,
		ToA: chanHtoA, ToB: chanHtoB, WindowCycles: 1,
		HoldTime: 2*(platform.CommDelayAH+platform.CommDelayBH) + 200*sim.Microsecond,
		Trace:    ringMHP, TraceID: uint64(id), Metrics: nw.mhpMetrics,
	})

	nodeA.register(l, l.EGPA)
	nodeB.register(l, l.EGPB)
	nw.Links = append(nw.Links, l)
	nw.linksByEdge[e] = l
}

// LinkBetween returns the link connecting two adjacent nodes, or nil when no
// link exists between them.
func (nw *Network) LinkBetween(a, b int) *Link {
	return nw.linksByEdge[Edge{A: a, B: b}.normalized()]
}

// RegisterNetworkHandler points a node's reserved network-layer mux tag at h:
// frames sent through NetworkPort from any neighbour are delivered to it
// after the channel's propagation delay (and loss).
func (nw *Network) RegisterNetworkHandler(node int, h func(classical.Message)) {
	nw.Nodes[node].Mux.Handle(NetworkLayerTag, h)
}

// NetworkPort returns the network-layer send port from one node to an
// adjacent node, multiplexed over the shared pair channel under the reserved
// tag. The second return value is false when the nodes are not adjacent.
func (nw *Network) NetworkPort(from, to int) (classical.Port, bool) {
	l := nw.LinkBetween(from, to)
	if l == nil {
		return nil, false
	}
	d := nw.networkDuplex(l)
	ch := d.AtoB
	if from == l.Edge.B {
		ch = d.BtoA
	}
	return classical.TagPort{Tag: NetworkLayerTag, Under: ch}, true
}

// Sharded returns the underlying sharded engine, or nil when the network
// runs on the serial simulator.
func (nw *Network) Sharded() *sim.ShardedEngine { return nw.sharded }

// Partition returns the node/link partition, or nil when unsharded.
func (nw *Network) Partition() *Partition { return nw.part }

// Attempts returns the total entanglement attempts sampled across all links.
func (nw *Network) Attempts() uint64 {
	var n uint64
	for _, l := range nw.Links {
		n += l.Sampler.Attempts()
	}
	return n
}

// AttachTraffic installs a Poisson traffic generator; it starts and stops
// with the network.
func (nw *Network) AttachTraffic(cfg TrafficConfig) *Traffic {
	t := NewTraffic(nw, cfg)
	nw.traffic = t
	return t
}

// Start launches the periodic MHP cycles of every link, the queue-occupancy
// sampler and the attached traffic generator. It is idempotent.
func (nw *Network) Start() {
	if nw.started {
		return
	}
	nw.started = true
	for _, l := range nw.Links {
		l.stopA = l.MHPA.Start()
		l.stopB = l.MHPB.Start()
		// One sampling ticker per link, on the link's own shard: the event
		// schedule of each link is then identical at every shard count (a
		// single global ticker would both race across shards and give the
		// sharded run a different event census than the serial one).
		link := l
		l.stopSample = sim.Ticker(l.Eng, nw.Config.QueueSamplePeriod, func() {
			depth := link.EGPA.Queue().TotalLen()
			link.Collector.SampleQueueLength(depth)
			link.traceNet.Record(link.Eng.Now(), obs.KindQueueDepth, uint64(link.ID), int64(depth), 0)
		})
	}
	if nw.traffic != nil {
		nw.traffic.Start()
	}
}

// Stop halts MHP cycles, sampling and traffic.
func (nw *Network) Stop() {
	for _, l := range nw.Links {
		if l.stopA != nil {
			l.stopA()
		}
		if l.stopB != nil {
			l.stopB()
		}
		if l.stopSample != nil {
			l.stopSample()
			l.stopSample = nil
		}
	}
	if nw.traffic != nil {
		nw.traffic.Stop()
	}
	nw.started = false
}

// Run starts the network (if needed), advances simulated time by d and
// closes every link's measurement interval.
func (nw *Network) Run(d sim.Duration) {
	nw.Start()
	_ = nw.Sim.RunFor(d)
	for _, l := range nw.Links {
		l.Collector.Finish(nw.Sim.Now())
	}
}

// Submit issues a CREATE request on the given link from the endpoint playing
// the given role ("A" = lower-index node).
func (nw *Network) Submit(l *Link, role string, req egp.CreateRequest) (uint16, wire.EGPError) {
	if l.state == LinkDown {
		// An administratively down link rejects new work synchronously rather
		// than queueing it into a paused stack.
		return 0, wire.ErrLinkDown
	}
	e := l.EGPFor(role)
	id, code := e.Create(req)
	if code == wire.ErrNone {
		l.Submitted++
		l.traceNet.Record(l.Eng.Now(), obs.KindSubmit, uint64(l.ID), int64(id), int64(req.NumPairs))
		nw.cSubmitted.Inc()
		// The link's own clock, not the network engine's: under sharding a
		// submission fires on the owning shard's loop, where the engine-wide
		// clock is a stale barrier time.
		l.Collector.RequestSubmitted(requestKey(role, id), req.Priority, l.nodeName(role), req.NumPairs, l.Eng.Now())
	}
	return id, code
}

// handleOK feeds a delivered pair into the link's collector (origin side
// only, so pairs are not double counted across the two endpoints).
func (nw *Network) handleOK(l *Link, ev egp.OKEvent) {
	l.OKs++
	if nw.OnLinkOK != nil {
		nw.OnLinkOK(l, ev)
	}
	if !ev.OriginIsLocal {
		return
	}
	if l.awaitRecovery {
		// First delivered pair after a repair closes the link's
		// time-to-recover interval.
		l.awaitRecovery = false
		l.Recoveries++
		l.RecoveryTotal += ev.At.Sub(l.repairAt)
	}
	l.traceNet.Record(ev.At, obs.KindLinkOK, uint64(l.ID), int64(ev.CreateID), int64(ev.PairsRemaining))
	nw.cLinkOKs.Inc()
	nw.ttp.Observe(ev.Priority, ev.At.Sub(ev.CreateTime))
	key := requestKey(ev.Node, ev.CreateID)
	l.Collector.PairDelivered(key, ev.Priority, l.nodeName(ev.Node), ev.Fidelity, ev.At)
	if ev.RequestDone {
		l.Collector.RequestCompleted(key, ev.At)
	}
}

// handleError records a failed request (origin side only; error events are
// only emitted at the origin).
func (nw *Network) handleError(l *Link, ev egp.ErrorEvent) {
	l.Errs++
	if nw.OnLinkError != nil {
		nw.OnLinkError(l, ev)
	}
	l.Collector.RequestFailed(requestKey(ev.Node, ev.CreateID), ev.Code.String(), ev.At)
}

// Describe summarises the network configuration.
func (nw *Network) Describe() string {
	return fmt.Sprintf("%s on %s scheduler=%s loss=%g seed=%d",
		nw.Config.Spec, nw.Config.Scenario, nw.Config.Scheduler, nw.Config.ClassicalLossProb, nw.Config.Seed)
}
