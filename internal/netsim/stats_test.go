package netsim

import (
	"math"
	"testing"

	"repro/internal/nv"
)

// checkFinite fails the test when any numeric field of a LinkStats is NaN or
// infinite.
func checkFinite(t *testing.T, label string, s LinkStats) {
	t.Helper()
	fields := map[string]float64{
		"OKRate": s.OKRate, "Fidelity": s.Fidelity,
		"LatencyP50": s.LatencyP50, "LatencyP90": s.LatencyP90, "LatencyP99": s.LatencyP99,
		"QueueMean": s.QueueMean, "QueueMax": s.QueueMax,
	}
	for name, v := range fields {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s: %s = %v, want finite", label, name, v)
		}
	}
}

// TestStatsDegenerateInputs drives the per-link and aggregate summaries over
// degenerate networks — never started (zero duration), run with zero load (no
// pairs, no queue samples) — and asserts every statistic stays finite.
func TestStatsDegenerateInputs(t *testing.T) {
	cases := []struct {
		name string
		run  func(*Network)
	}{
		{"never-run", func(nw *Network) {}},
		{"zero-duration", func(nw *Network) { nw.Run(0) }},
		{"no-traffic", func(nw *Network) { nw.Run(10_000_000) }}, // 10 ms, no requests
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			nw, err := NewNetwork(DefaultConfig(Chain(3), nv.ScenarioLab))
			if err != nil {
				t.Fatal(err)
			}
			tc.run(nw)
			perLink, agg := nw.Stats()
			if len(perLink) != 2 {
				t.Fatalf("expected 2 links, got %d", len(perLink))
			}
			for _, ls := range perLink {
				checkFinite(t, tc.name+"/"+ls.Link, ls)
				if ls.Pairs != 0 || ls.OKRate != 0 {
					t.Errorf("%s: degenerate run delivered pairs: %+v", tc.name, ls)
				}
			}
			checkFinite(t, tc.name+"/aggregate", agg)
		})
	}
}

// TestMeanStatsTableDriven covers the cross-trial averaging helper on empty,
// single-sample, all-empty and mixed inputs: no NaN, no panic, and the
// pair-weighted fidelity / delivered-only latency semantics.
func TestMeanStatsTableDriven(t *testing.T) {
	delivered := LinkStats{Link: "n0-n1", Requests: 4, Pairs: 10, OKRate: 5, Fidelity: 0.9, LatencyP50: 0.1, LatencyP90: 0.2, LatencyP99: 0.3, QueueMean: 1, QueueMax: 2}
	empty := LinkStats{Link: "n0-n1", Requests: 2}
	cases := []struct {
		name string
		rows []LinkStats
		want LinkStats
	}{
		{name: "empty-slice", rows: nil, want: LinkStats{}},
		{name: "single-sample", rows: []LinkStats{delivered}, want: delivered},
		{
			name: "single-empty-trial",
			rows: []LinkStats{empty},
			want: LinkStats{Link: "n0-n1", Requests: 2},
		},
		{
			name: "all-empty-trials",
			rows: []LinkStats{empty, empty, empty},
			want: LinkStats{Link: "n0-n1", Requests: 2},
		},
		{
			// The empty trial halves counts and rates but must not drag
			// fidelity or latency towards zero.
			name: "mixed-trials",
			rows: []LinkStats{delivered, empty},
			want: LinkStats{Link: "n0-n1", Requests: 3, Pairs: 5, OKRate: 2.5, Fidelity: 0.9, LatencyP50: 0.1, LatencyP90: 0.2, LatencyP99: 0.3, QueueMean: 0.5, QueueMax: 2},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := MeanStats(tc.rows)
			checkFinite(t, tc.name, got)
			approx := func(a, b float64) bool { return math.Abs(a-b) < 1e-12 }
			if got.Link != tc.want.Link || got.Requests != tc.want.Requests || got.Pairs != tc.want.Pairs ||
				!approx(got.OKRate, tc.want.OKRate) || !approx(got.Fidelity, tc.want.Fidelity) ||
				!approx(got.LatencyP50, tc.want.LatencyP50) || !approx(got.LatencyP90, tc.want.LatencyP90) ||
				!approx(got.LatencyP99, tc.want.LatencyP99) ||
				!approx(got.QueueMean, tc.want.QueueMean) || !approx(got.QueueMax, tc.want.QueueMax) {
				t.Errorf("MeanStats = %+v, want %+v", got, tc.want)
			}
		})
	}
}
