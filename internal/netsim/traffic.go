package netsim

import (
	"repro/internal/egp"
	"repro/internal/nv"
	"repro/internal/sim"
)

// TrafficConfig describes the Poisson request stream offered to every link.
type TrafficConfig struct {
	// Load is the offered load fraction f of the paper's arrival model: the
	// request rate is scaled so the offered pair rate is Load times the
	// link's expected pair generation rate.
	Load float64
	// MaxPairs is k_max: each request asks for a uniform random number of
	// pairs in [1, MaxPairs].
	MaxPairs int
	// MinFidelity is the requested minimum fidelity (default 0.64, the
	// paper's long-run target).
	MinFidelity float64
	// Keep selects create-and-keep requests (priority CK) instead of
	// measure-directly (priority MD).
	Keep bool
	// MaxTime is the per-request timeout (0 = none).
	MaxTime sim.Duration
}

// Traffic issues CREATE requests across every link of a network as
// independent Poisson processes on the shared simulator: each link draws
// exponential interarrival times from the network RNG, so arrivals across
// links interleave in simulated-time order and stay deterministic for a
// fixed seed.
type Traffic struct {
	net *Network
	cfg TrafficConfig

	// rates[i] is link i's request arrival rate in requests per simulated
	// second (0 when the requested fidelity is infeasible on the hardware).
	rates []float64

	submitted uint64
	running   bool
	// generation invalidates arrival chains scheduled before the last Stop:
	// a restarted generator bumps it, so stale events still sitting in the
	// simulator queue see a mismatched generation and die instead of
	// rescheduling alongside the fresh chains (which would double the load).
	generation uint64
}

// NewTraffic builds a traffic generator for the network. The per-link
// request rate is derived exactly as in the paper's arrival model:
// rate = Load * psucc / (E * cycleTime * meanPairs), with psucc and E taken
// from the link's own FEU and platform constants.
func NewTraffic(nw *Network, cfg TrafficConfig) *Traffic {
	if cfg.MaxPairs <= 0 {
		cfg.MaxPairs = 1
	}
	if cfg.MinFidelity <= 0 {
		cfg.MinFidelity = 0.64
	}
	t := &Traffic{net: nw, cfg: cfg}
	rt := nv.RequestMeasure
	if cfg.Keep {
		rt = nv.RequestKeep
	}
	meanPairs := (1 + float64(cfg.MaxPairs)) / 2
	for _, l := range nw.Links {
		feu := l.EGPA.FEU()
		rate := 0.0
		if alpha, ok := feu.AlphaForFidelity(cfg.MinFidelity); ok && cfg.Load > 0 {
			psucc := feu.SuccessProbability(alpha)
			e := nw.Platform.ExpectedCyclesPerAttempt[rt]
			if e < 1 {
				e = 1
			}
			cycleSec := nw.Platform.CycleTime[nv.RequestMeasure].Seconds()
			rate = cfg.Load * psucc / (e * cycleSec * meanPairs)
		}
		t.rates = append(t.rates, rate)
	}
	return t
}

// Submitted returns how many requests the generator has issued.
func (t *Traffic) Submitted() uint64 { return t.submitted }

// Rate returns link i's request arrival rate in requests per second.
func (t *Traffic) Rate(i int) float64 { return t.rates[i] }

// Start schedules the first arrival on every link. It is idempotent while
// running.
func (t *Traffic) Start() {
	if t.running {
		return
	}
	t.running = true
	t.generation++
	for i, l := range t.net.Links {
		if t.rates[i] > 0 {
			t.scheduleNext(l, t.rates[i], t.generation)
		}
	}
}

// Stop halts future arrivals (already-scheduled ones die on the generation
// check, so a later Start cannot end up with doubled arrival chains).
func (t *Traffic) Stop() { t.running = false }

// scheduleNext draws the next exponential interarrival time for a link and
// schedules the submission.
func (t *Traffic) scheduleNext(l *Link, rate float64, generation uint64) {
	delay := sim.DurationSeconds(t.net.Sim.RNG().Exponential(rate))
	t.net.Sim.Schedule(delay, func() {
		if !t.running || generation != t.generation {
			return
		}
		t.fire(l)
		t.scheduleNext(l, rate, generation)
	})
}

// fire submits one CREATE request on the link from a uniformly random
// endpoint.
func (t *Traffic) fire(l *Link) {
	rng := t.net.Sim.RNG()
	k := 1
	if t.cfg.MaxPairs > 1 {
		k = 1 + rng.Intn(t.cfg.MaxPairs)
	}
	role := roleA
	if rng.Intn(2) == 1 {
		role = roleB
	}
	priority := egp.PriorityMD
	if t.cfg.Keep {
		priority = egp.PriorityCK
	}
	t.submitted++
	t.net.Submit(l, role, egp.CreateRequest{
		NumPairs:    k,
		Keep:        t.cfg.Keep,
		MinFidelity: t.cfg.MinFidelity,
		MaxTime:     t.cfg.MaxTime,
		Priority:    priority,
		PurposeID:   uint16(1000 + priority),
		Consecutive: !t.cfg.Keep,
	})
}
