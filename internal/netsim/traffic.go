package netsim

import (
	"repro/internal/egp"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TrafficConfig describes the Poisson request stream offered to every link.
type TrafficConfig struct {
	// Load is the offered load fraction f of the paper's arrival model: the
	// request rate is scaled so the offered pair rate is Load times the
	// link's expected pair generation rate.
	Load float64
	// MaxPairs is k_max: each request asks for a uniform random number of
	// pairs in [1, MaxPairs].
	MaxPairs int
	// MinFidelity is the requested minimum fidelity (default 0.64, the
	// paper's long-run target).
	MinFidelity float64
	// Keep selects create-and-keep requests (priority CK) instead of
	// measure-directly (priority MD).
	Keep bool
	// MaxTime is the per-request timeout (0 = none).
	MaxTime sim.Duration
}

// Traffic issues CREATE requests across every link of a network as
// independent Poisson processes on the shared simulator: each link runs one
// workload.PoissonStream (the shared arrival implementation), so arrivals
// across links interleave in simulated-time order and stay deterministic for
// a fixed seed.
type Traffic struct {
	net *Network
	cfg TrafficConfig

	// streams[i] is link i's arrival process; its rate is 0 when the
	// requested fidelity is infeasible on the hardware.
	streams []*workload.PoissonStream
}

// NewTraffic builds a traffic generator for the network. The per-link
// request rate is derived exactly as in the paper's arrival model (see
// workload.RatePerSecond): rate = Load·psucc/(E·cycleTime·k̄), with psucc and
// E taken from the link's own FEU and platform constants.
func NewTraffic(nw *Network, cfg TrafficConfig) *Traffic {
	if cfg.MaxPairs <= 0 {
		cfg.MaxPairs = 1
	}
	if cfg.MinFidelity <= 0 {
		cfg.MinFidelity = 0.64
	}
	t := &Traffic{net: nw, cfg: cfg}
	meanPairs := (1 + float64(cfg.MaxPairs)) / 2
	for _, l := range nw.Links {
		link := l
		rate := workload.RatePerSecond(l.EGPA.FEU(), nw.Platform, cfg.Keep, cfg.Load, cfg.MinFidelity, meanPairs)
		// Each link's arrival process runs on the link's own engine view:
		// interarrival draws come from the link's RNG stream and arrivals
		// fire on the owning shard's loop.
		t.streams = append(t.streams, workload.NewPoissonStream(link.Eng, rate, func() { t.fire(link) }))
	}
	return t
}

// Submitted returns how many requests the generator has issued.
func (t *Traffic) Submitted() uint64 {
	var n uint64
	for _, s := range t.streams {
		n += s.Arrivals()
	}
	return n
}

// Rate returns link i's request arrival rate in requests per second.
func (t *Traffic) Rate(i int) float64 { return t.streams[i].Rate() }

// Start schedules the first arrival on every link. It is idempotent while
// running.
func (t *Traffic) Start() {
	for _, s := range t.streams {
		s.Start()
	}
}

// Stop halts future arrivals (already-scheduled ones die on the stream's
// generation check, so a later Start cannot end up with doubled arrival
// chains).
func (t *Traffic) Stop() {
	for _, s := range t.streams {
		s.Stop()
	}
}

// fire submits one CREATE request on the link from a uniformly random
// endpoint, drawing from the link's own RNG stream.
func (t *Traffic) fire(l *Link) {
	rng := l.Eng.RNG()
	k := 1
	if t.cfg.MaxPairs > 1 {
		k = 1 + rng.Intn(t.cfg.MaxPairs)
	}
	role := roleA
	if rng.Intn(2) == 1 {
		role = roleB
	}
	priority := egp.PriorityMD
	if t.cfg.Keep {
		priority = egp.PriorityCK
	}
	t.net.Submit(l, role, egp.CreateRequest{
		NumPairs:    k,
		Keep:        t.cfg.Keep,
		MinFidelity: t.cfg.MinFidelity,
		MaxTime:     t.cfg.MaxTime,
		Priority:    priority,
		PurposeID:   uint16(1000 + priority),
		Consecutive: !t.cfg.Keep,
	})
}
