package netsim

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/nv"
	"repro/internal/obs"
	"repro/internal/sim"
)

// protocolLayers are the trace layers whose records must be identical at any
// shard count (the sim layer records engine batches and barrier windows,
// which depend on the shard count by nature).
var protocolLayers = []obs.Layer{obs.LayerMHP, obs.LayerEGP, obs.LayerNetsim}

// traceRun runs one traffic-driven chain under a flight recorder and returns
// the merged protocol-layer records with the ring-local Seq field cleared
// (rings are laid out per shard, so Seq values differ across shard counts
// even though the merged order does not).
func traceRun(t *testing.T, shards int, seconds float64) []obs.Record {
	t.Helper()
	cfg := DefaultConfig(Chain(8), nv.ScenarioLab)
	cfg.Seed = 7
	cfg.Shards = shards
	tracerShards := shards
	if tracerShards < 1 {
		tracerShards = 1
	}
	tracer := obs.NewTracer(tracerShards, 1<<17)
	cfg.Trace = tracer
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nw.AttachTraffic(TrafficConfig{Load: 0.7, MaxPairs: 2, MinFidelity: 0.64})
	nw.Run(sim.DurationSeconds(seconds))
	// The comparison needs the complete protocol record stream: an overwrite
	// would make the two sides retain different windows.
	for s := 0; s < tracerShards; s++ {
		for _, layer := range protocolLayers {
			if d := tracer.Ring(s, layer).Dropped(); d != 0 {
				t.Fatalf("shard %d %s ring overwrote %d records; raise the test capacity", s, layer, d)
			}
		}
	}
	var out []obs.Record
	for _, r := range tracer.Records() {
		if r.Layer == obs.LayerSim {
			continue
		}
		r.Seq = 0
		out = append(out, r)
	}
	if len(out) == 0 {
		t.Fatal("trace recorded no protocol records")
	}
	return out
}

// TestTraceShardParity is the tracer's determinism acceptance check: the
// merged protocol-layer record stream must be identical between the serial
// engine and the sharded engine at every shard count, because each link
// records into exactly one ring and the merge key (At, Layer, Track, Seq)
// does not depend on how links were partitioned.
func TestTraceShardParity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-engine trace sweep in short mode")
	}
	const seconds = 0.02
	serial := traceRun(t, 1, seconds)
	for _, shards := range []int{2, 4} {
		sharded := traceRun(t, shards, seconds)
		if len(sharded) != len(serial) {
			t.Fatalf("%d shards: %d protocol records, serial recorded %d", shards, len(sharded), len(serial))
		}
		for i := range serial {
			if serial[i] != sharded[i] {
				t.Fatalf("%d shards: record %d diverges\nserial:  %+v\nsharded: %+v", shards, i, serial[i], sharded[i])
			}
		}
	}
}

// TestTraceDoesNotPerturb pins the zero-interference guarantee: attaching the
// tracer and the metrics registry must leave the rendered stats tables and
// the deterministic work counters byte-identical.
func TestTraceDoesNotPerturb(t *testing.T) {
	run := func(instrument bool) (string, uint64, uint64) {
		cfg := DefaultConfig(Chain(4), nv.ScenarioLab)
		cfg.Seed = 11
		if instrument {
			cfg.Trace = obs.NewTracer(1, 1<<12)
			cfg.Metrics = obs.NewRegistry()
		}
		nw, err := NewNetwork(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nw.AttachTraffic(TrafficConfig{Load: 0.7, MaxPairs: 2, MinFidelity: 0.64})
		nw.Run(sim.DurationSeconds(0.2))
		perLink, agg := nw.Stats()
		return render(perLink, agg), nw.Sim.Executed(), nw.Attempts()
	}
	plainStats, plainEvents, plainAttempts := run(false)
	obsStats, obsEvents, obsAttempts := run(true)
	if plainEvents == 0 || plainAttempts == 0 {
		t.Fatalf("reference run did no work: %d events, %d attempts", plainEvents, plainAttempts)
	}
	if obsStats != plainStats {
		t.Errorf("stats diverge under observability\n--- off ---\n%s--- on ---\n%s", plainStats, obsStats)
	}
	if obsEvents != plainEvents || obsAttempts != plainAttempts {
		t.Errorf("counters diverge under observability: %d/%d events, %d/%d attempts",
			obsEvents, plainEvents, obsAttempts, plainAttempts)
	}
}

// TestTraceChromeExport runs a traced chain and checks the exported trace is
// well-formed JSON carrying the expected per-layer event names.
func TestTraceChromeExport(t *testing.T) {
	cfg := DefaultConfig(Chain(3), nv.ScenarioLab)
	cfg.Seed = 3
	tracer := obs.NewTracer(1, 1<<14)
	cfg.Trace = tracer
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nw.AttachTraffic(TrafficConfig{Load: 0.7, MaxPairs: 2, MinFidelity: 0.64})
	nw.Run(sim.DurationSeconds(0.1))

	var buf bytes.Buffer
	if err := tracer.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("exported trace is not valid JSON")
	}
	for _, want := range []string{`"attempt"`, `"submit"`, `"batch"`, `"thread_name"`} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("trace is missing %s events", want)
		}
	}
}

// TestTraceRejectsUndersizedTracer: a tracer with fewer shards than the
// engine must be rejected at build time, not silently drop records.
func TestTraceRejectsUndersizedTracer(t *testing.T) {
	cfg := DefaultConfig(Chain(8), nv.ScenarioLab)
	cfg.Shards = 4
	cfg.Trace = obs.NewTracer(1, 1<<12)
	if _, err := NewNetwork(cfg); err == nil {
		t.Fatal("4-shard engine accepted a 1-shard tracer")
	}
}
