// Package netsim is the network layer above the paper's single heralded
// link: it instantiates N nodes and M links (chain, star and grid topologies
// plus explicit edge lists) on one shared deterministic simulator, with a
// full EGP+MHP+midpoint protocol stack per link, a per-node link registry
// that demultiplexes classical node-to-node traffic to the right EGP by link
// ID, and a Poisson traffic generator issuing CREATE requests across links
// concurrently.
//
// The per-link state machines are deliberately independent — each link has
// its own distributed queue, pair registry, midpoint and endpoint devices —
// so links never synchronise with each other (in the spirit of the scalable
// commutativity rule) and the whole network stays byte-deterministic for a
// fixed seed: everything runs single-threaded on one event queue.
package netsim

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Edge is one heralded link between two node indices.
type Edge struct {
	A, B int
}

// normalized returns the edge with the smaller index first; the smaller-index
// endpoint plays the "A" role of the paper's protocol (queue master).
func (e Edge) normalized() Edge {
	if e.A > e.B {
		return Edge{A: e.B, B: e.A}
	}
	return e
}

// Spec describes a topology: a node count and the links between them.
type Spec struct {
	Name  string
	Nodes int
	Edges []Edge
}

// Chain returns a linear chain of n nodes: n0-n1-...-n(n-1).
func Chain(n int) Spec {
	s := Spec{Name: fmt.Sprintf("chain-%d", n), Nodes: n}
	for i := 0; i+1 < n; i++ {
		s.Edges = append(s.Edges, Edge{A: i, B: i + 1})
	}
	return s
}

// Star returns a star of n nodes with node 0 at the centre.
func Star(n int) Spec {
	s := Spec{Name: fmt.Sprintf("star-%d", n), Nodes: n}
	for i := 1; i < n; i++ {
		s.Edges = append(s.Edges, Edge{A: 0, B: i})
	}
	return s
}

// Grid returns a rows×cols grid; node (r,c) has index r*cols+c and links to
// its right and down neighbours.
func Grid(rows, cols int) Spec {
	s := Spec{Name: fmt.Sprintf("grid-%dx%d", rows, cols), Nodes: rows * cols}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			idx := r*cols + c
			if c+1 < cols {
				s.Edges = append(s.Edges, Edge{A: idx, B: idx + 1})
			}
			if r+1 < rows {
				s.Edges = append(s.Edges, Edge{A: idx, B: idx + cols})
			}
		}
	}
	return s
}

// Dragonfly returns the D3(K,M) dragonfly of "The Swapped Dragonfly": M
// groups of K routers each, every group a complete graph, and exactly one
// global link between every pair of groups. Group g's global link to group
// h is terminated by router g·K + port, where the port cycles round-robin
// over the group's routers — so global links spread evenly and every router
// terminates at most ⌈(M−1)/K⌉ of them. Node indices are group-major
// (router r of group g is g·K + r), which keeps groups contiguous and lets
// the contiguous-block partitioner cut only global links.
func Dragonfly(k, m int) Spec {
	if k < 2 || m < 2 {
		panic(fmt.Sprintf("netsim: dragonfly needs K ≥ 2 routers per group and M ≥ 2 groups, got K=%d M=%d", k, m))
	}
	s := Spec{Name: fmt.Sprintf("dragonfly-%dx%d", k, m), Nodes: k * m}
	for g := 0; g < m; g++ {
		base := g * k
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				s.Edges = append(s.Edges, Edge{A: base + i, B: base + j})
			}
		}
	}
	// One global link per group pair; port[g] walks round-robin over group
	// g's routers as its global links are laid down in peer order.
	port := make([]int, m)
	for g := 0; g < m; g++ {
		for h := g + 1; h < m; h++ {
			s.Edges = append(s.Edges, Edge{A: g*k + port[g], B: h*k + port[h]})
			port[g] = (port[g] + 1) % k
			port[h] = (port[h] + 1) % k
		}
	}
	return s
}

// FromEdges returns a spec over an explicit edge list; the node count is
// inferred from the largest index referenced.
func FromEdges(edges []Edge) Spec {
	n := 0
	for _, e := range edges {
		if e.A+1 > n {
			n = e.A + 1
		}
		if e.B+1 > n {
			n = e.B + 1
		}
	}
	return Spec{Name: fmt.Sprintf("edges-%d", len(edges)), Nodes: n, Edges: edges}
}

// SpecFromFlags resolves the topology CLI flags shared by cmd/netsim and
// cmd/e2e into a Spec: a named generator (chain/star/grid, with grid
// requiring a square node count) or an explicit edge list.
func SpecFromFlags(topology string, nodes int, edgeList string) (Spec, error) {
	switch topology {
	case "chain":
		return Chain(nodes), nil
	case "star":
		return Star(nodes), nil
	case "grid":
		side := int(math.Sqrt(float64(nodes)))
		if side*side != nodes {
			return Spec{}, fmt.Errorf("grid topology needs a square node count, got %d", nodes)
		}
		return Grid(side, side), nil
	case "dragonfly":
		// Smallest K with K(K−1)/2 ≥ … is not unique, so pick the most
		// balanced K·M = nodes split: the largest divisor K ≤ √nodes with a
		// valid cofactor, favouring square-ish groups.
		best := 0
		for k := 2; k*k <= nodes; k++ {
			if nodes%k == 0 && nodes/k >= 2 {
				best = k
			}
		}
		if best == 0 {
			return Spec{}, fmt.Errorf("dragonfly topology needs a node count with a K·M factorisation (K,M ≥ 2), got %d", nodes)
		}
		return Dragonfly(best, nodes/best), nil
	case "edges":
		edges, err := ParseEdgeList(edgeList)
		if err != nil {
			return Spec{}, err
		}
		return FromEdges(edges), nil
	default:
		return Spec{}, fmt.Errorf("unknown topology %q (chain|star|grid|dragonfly|edges)", topology)
	}
}

// ParseEdgeList parses a comma-separated list of "a-b" pairs, e.g.
// "0-1,1-2,2-0".
func ParseEdgeList(s string) ([]Edge, error) {
	var edges []Edge
	for _, term := range strings.Split(s, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		parts := strings.SplitN(term, "-", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("netsim: edge %q is not of the form a-b", term)
		}
		a, err := strconv.Atoi(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, fmt.Errorf("netsim: edge %q: %v", term, err)
		}
		b, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil {
			return nil, fmt.Errorf("netsim: edge %q: %v", term, err)
		}
		edges = append(edges, Edge{A: a, B: b})
	}
	if len(edges) == 0 {
		return nil, fmt.Errorf("netsim: empty edge list")
	}
	return edges, nil
}

// Validate checks the spec: at least two nodes, indices in range, no self
// loops and no duplicate links (parallel links between the same pair are
// allowed only through distinct explicit edges, which Validate rejects to
// keep link naming unambiguous).
func (s Spec) Validate() error {
	if s.Nodes < 2 {
		return fmt.Errorf("netsim: need at least 2 nodes, have %d", s.Nodes)
	}
	if len(s.Edges) == 0 {
		return fmt.Errorf("netsim: topology has no links")
	}
	seen := make(map[Edge]bool, len(s.Edges))
	for _, e := range s.Edges {
		if e.A == e.B {
			return fmt.Errorf("netsim: self-loop on node %d", e.A)
		}
		if e.A < 0 || e.A >= s.Nodes || e.B < 0 || e.B >= s.Nodes {
			return fmt.Errorf("netsim: edge %d-%d out of range for %d nodes", e.A, e.B, s.Nodes)
		}
		n := e.normalized()
		if seen[n] {
			return fmt.Errorf("netsim: duplicate link %d-%d", n.A, n.B)
		}
		seen[n] = true
	}
	return nil
}

// Degrees returns the per-node link counts.
func (s Spec) Degrees() []int {
	deg := make([]int, s.Nodes)
	for _, e := range s.Edges {
		deg[e.A]++
		deg[e.B]++
	}
	return deg
}

// String renders the spec compactly, e.g. "chain-8 (8 nodes, 7 links)".
func (s Spec) String() string {
	return fmt.Sprintf("%s (%d nodes, %d links)", s.Name, s.Nodes, len(s.Edges))
}

// sortedEdges returns the edges normalized and ordered (A, then B), giving
// every link a stable ID no matter how the spec was assembled.
func (s Spec) sortedEdges() []Edge {
	out := make([]Edge, len(s.Edges))
	for i, e := range s.Edges {
		out[i] = e.normalized()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}
