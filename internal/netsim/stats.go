package netsim

import (
	"math"

	"repro/internal/egp"
	"repro/internal/metrics"
)

// LinkStats summarises one link's delivered performance over a run (or the
// aggregate over all links when Link is "aggregate").
type LinkStats struct {
	Link                               string
	Requests                           uint64
	Errors                             uint64
	Pairs                              int
	OKRate                             float64 // delivered pairs per simulated second
	Fidelity                           float64 // mean delivered fidelity
	LatencyP50, LatencyP90, LatencyP99 float64 // per-pair latency percentiles, seconds
	QueueMean                          float64
	QueueMax                           float64
	// Robustness surface, fed by the fault injector (all zero in fault-free
	// runs): Downs counts outages, DowntimeSeconds the cumulative time spent
	// administratively down (including a still-open outage at run end), and
	// RecoverySeconds the mean time from repair to the first delivered pair.
	Downs           uint64
	DowntimeSeconds float64
	RecoverySeconds float64
}

// mergedValues concatenates a per-priority series getter across the three
// priority lanes in priority order.
func mergedValues(get func(int) *metrics.Series) *metrics.Series {
	out := &metrics.Series{}
	for _, p := range []int{egp.PriorityNL, egp.PriorityCK, egp.PriorityMD} {
		for _, v := range get(p).Values() {
			out.Add(v)
		}
	}
	return out
}

// totalPairs sums delivered pairs across the priority lanes.
func totalPairs(c *metrics.Collector) int {
	n := 0
	for _, p := range []int{egp.PriorityNL, egp.PriorityCK, egp.PriorityMD} {
		n += c.OKCount(p)
	}
	return n
}

// statsFromSeries builds one link's summary from its collector plus the
// already-merged fidelity and per-pair latency series.
func (l *Link) statsFromSeries(fid, lat *metrics.Series) LinkStats {
	c := l.Collector
	pairs := totalPairs(c)
	st := LinkStats{
		Link:            l.Name,
		Requests:        l.Submitted,
		Errors:          l.Errs,
		Pairs:           pairs,
		OKRate:          metrics.SafeRate(float64(pairs), c.DurationSeconds()),
		Fidelity:        fid.Mean(),
		LatencyP50:      lat.Percentile(50),
		LatencyP90:      lat.Percentile(90),
		LatencyP99:      lat.Percentile(99),
		QueueMean:       c.QueueLength().Mean(),
		QueueMax:        c.QueueLength().Max(),
		Downs:           l.Downs,
		DowntimeSeconds: l.DowntimeAt(l.Eng.Now()).Seconds(),
	}
	if l.Recoveries > 0 {
		st.RecoverySeconds = l.RecoveryTotal.Seconds() / float64(l.Recoveries)
	}
	return st
}

// Stats computes one link's summary from its collector.
func (l *Link) Stats() LinkStats {
	return l.statsFromSeries(mergedValues(l.Collector.Fidelity), mergedValues(l.Collector.PairLatency))
}

// Stats returns the per-link summaries in link-ID order plus the aggregate
// row computed from the pooled raw observations (so aggregate percentiles
// are true percentiles, not averages of per-link percentiles). Each link's
// merged series is computed once and reused for both the per-link row and
// the aggregate pool.
func (nw *Network) Stats() (perLink []LinkStats, aggregate LinkStats) {
	fid := &metrics.Series{}
	lat := &metrics.Series{}
	queue := &metrics.Series{}
	pairs := 0
	duration := 0.0
	for _, l := range nw.Links {
		linkFid := mergedValues(l.Collector.Fidelity)
		linkLat := mergedValues(l.Collector.PairLatency)
		perLink = append(perLink, l.statsFromSeries(linkFid, linkLat))
		for _, v := range linkFid.Values() {
			fid.Add(v)
		}
		for _, v := range linkLat.Values() {
			lat.Add(v)
		}
		for _, v := range l.Collector.QueueLength().Values() {
			queue.Add(v)
		}
		pairs += totalPairs(l.Collector)
		aggregate.Requests += l.Submitted
		aggregate.Errors += l.Errs
		row := perLink[len(perLink)-1]
		aggregate.Downs += row.Downs
		aggregate.DowntimeSeconds += row.DowntimeSeconds
		aggregate.RecoverySeconds += row.RecoverySeconds * float64(row.Downs)
		if d := l.Collector.DurationSeconds(); d > duration {
			duration = d
		}
	}
	aggregate.Link = "aggregate"
	aggregate.Pairs = pairs
	aggregate.OKRate = metrics.SafeRate(float64(pairs), duration)
	aggregate.Fidelity = fid.Mean()
	aggregate.LatencyP50 = lat.Percentile(50)
	aggregate.LatencyP90 = lat.Percentile(90)
	aggregate.LatencyP99 = lat.Percentile(99)
	aggregate.QueueMean = queue.Mean()
	aggregate.QueueMax = queue.Max()
	if aggregate.Downs > 0 {
		aggregate.RecoverySeconds /= float64(aggregate.Downs)
	}
	return perLink, aggregate
}

// MeanStats averages the same link's stats across trials, field by field, in
// trial order (so the result is independent of execution interleaving).
// Fidelity is weighted by delivered pairs and latency percentiles average
// only over trials that delivered, so empty trials do not drag quality
// metrics towards zero. It is total on degenerate input: an empty slice
// yields the zero value, a single trial yields that trial's stats, and
// all-empty trials yield zero quality metrics — never NaN.
func MeanStats(rows []LinkStats) LinkStats {
	var out LinkStats
	if len(rows) == 0 {
		return out
	}
	out.Link = rows[0].Link
	n := float64(len(rows))
	var requests, errs, downs, pairs, fidW, latTrials float64
	for _, r := range rows {
		requests += float64(r.Requests)
		errs += float64(r.Errors)
		downs += float64(r.Downs)
		pairs += float64(r.Pairs)
		out.OKRate += r.OKRate / n
		out.QueueMean += r.QueueMean / n
		out.DowntimeSeconds += r.DowntimeSeconds / n
		out.RecoverySeconds += r.RecoverySeconds / n
		if r.QueueMax > out.QueueMax {
			out.QueueMax = r.QueueMax
		}
		if r.Pairs > 0 {
			w := float64(r.Pairs)
			out.Fidelity += r.Fidelity * w
			fidW += w
			out.LatencyP50 += r.LatencyP50
			out.LatencyP90 += r.LatencyP90
			out.LatencyP99 += r.LatencyP99
			latTrials++
		}
	}
	if fidW > 0 {
		out.Fidelity /= fidW
	}
	if latTrials > 0 {
		out.LatencyP50 /= latTrials
		out.LatencyP90 /= latTrials
		out.LatencyP99 /= latTrials
	}
	out.Requests = uint64(math.Round(requests / n))
	out.Errors = uint64(math.Round(errs / n))
	out.Downs = uint64(math.Round(downs / n))
	out.Pairs = int(math.Round(pairs / n))
	return out
}
