package netsim

import (
	"repro/internal/egp"
	"repro/internal/metrics"
)

// LinkStats summarises one link's delivered performance over a run (or the
// aggregate over all links when Link is "aggregate").
type LinkStats struct {
	Link                               string
	Requests                           uint64
	Errors                             uint64
	Pairs                              int
	OKRate                             float64 // delivered pairs per simulated second
	Fidelity                           float64 // mean delivered fidelity
	LatencyP50, LatencyP90, LatencyP99 float64 // per-pair latency percentiles, seconds
	QueueMean                          float64
	QueueMax                           float64
}

// mergedValues concatenates a per-priority series getter across the three
// priority lanes in priority order.
func mergedValues(get func(int) *metrics.Series) *metrics.Series {
	out := &metrics.Series{}
	for _, p := range []int{egp.PriorityNL, egp.PriorityCK, egp.PriorityMD} {
		for _, v := range get(p).Values() {
			out.Add(v)
		}
	}
	return out
}

// totalPairs sums delivered pairs across the priority lanes.
func totalPairs(c *metrics.Collector) int {
	n := 0
	for _, p := range []int{egp.PriorityNL, egp.PriorityCK, egp.PriorityMD} {
		n += c.OKCount(p)
	}
	return n
}

// statsFromSeries builds one link's summary from its collector plus the
// already-merged fidelity and per-pair latency series.
func (l *Link) statsFromSeries(fid, lat *metrics.Series) LinkStats {
	c := l.Collector
	pairs := totalPairs(c)
	rate := 0.0
	if d := c.DurationSeconds(); d > 0 {
		rate = float64(pairs) / d
	}
	return LinkStats{
		Link:       l.Name,
		Requests:   l.Submitted,
		Errors:     l.Errs,
		Pairs:      pairs,
		OKRate:     rate,
		Fidelity:   fid.Mean(),
		LatencyP50: lat.Percentile(50),
		LatencyP90: lat.Percentile(90),
		LatencyP99: lat.Percentile(99),
		QueueMean:  c.QueueLength().Mean(),
		QueueMax:   c.QueueLength().Max(),
	}
}

// Stats computes one link's summary from its collector.
func (l *Link) Stats() LinkStats {
	return l.statsFromSeries(mergedValues(l.Collector.Fidelity), mergedValues(l.Collector.PairLatency))
}

// Stats returns the per-link summaries in link-ID order plus the aggregate
// row computed from the pooled raw observations (so aggregate percentiles
// are true percentiles, not averages of per-link percentiles). Each link's
// merged series is computed once and reused for both the per-link row and
// the aggregate pool.
func (nw *Network) Stats() (perLink []LinkStats, aggregate LinkStats) {
	fid := &metrics.Series{}
	lat := &metrics.Series{}
	queue := &metrics.Series{}
	pairs := 0
	duration := 0.0
	for _, l := range nw.Links {
		linkFid := mergedValues(l.Collector.Fidelity)
		linkLat := mergedValues(l.Collector.PairLatency)
		perLink = append(perLink, l.statsFromSeries(linkFid, linkLat))
		for _, v := range linkFid.Values() {
			fid.Add(v)
		}
		for _, v := range linkLat.Values() {
			lat.Add(v)
		}
		for _, v := range l.Collector.QueueLength().Values() {
			queue.Add(v)
		}
		pairs += totalPairs(l.Collector)
		aggregate.Requests += l.Submitted
		aggregate.Errors += l.Errs
		if d := l.Collector.DurationSeconds(); d > duration {
			duration = d
		}
	}
	aggregate.Link = "aggregate"
	aggregate.Pairs = pairs
	if duration > 0 {
		aggregate.OKRate = float64(pairs) / duration
	}
	aggregate.Fidelity = fid.Mean()
	aggregate.LatencyP50 = lat.Percentile(50)
	aggregate.LatencyP90 = lat.Percentile(90)
	aggregate.LatencyP99 = lat.Percentile(99)
	aggregate.QueueMean = queue.Mean()
	aggregate.QueueMax = queue.Max()
	return perLink, aggregate
}
