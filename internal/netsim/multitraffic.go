package netsim

import (
	"fmt"

	"repro/internal/egp"
	"repro/internal/sim"
	"repro/internal/wire"
	"repro/internal/workload"
)

// trafficGen is the lifecycle contract every attached traffic generator
// satisfies: the legacy single-class Traffic and the multi-class
// MultiTraffic both start and stop with the network.
type trafficGen interface {
	Start()
	Stop()
	// Submitted returns how many requests the generator has offered so far.
	Submitted() uint64
}

// MultiTraffic drives a multi-class workload across every link of a network:
// each traffic class owns, per link, an open-loop arrival process (Poisson,
// bursty, diurnal) or a population of closed-loop think-time sessions, plus a
// per-link SLO account. All of a link's workload state — arrival processes,
// session timers, in-flight request table, account — lives on the link's own
// engine view and is touched only by that shard's events, so the trajectory
// and the merged SLO report are byte-identical at every shard count.
//
// In the degenerate case of one open-loop Poisson class with a pair range of
// [1, k_max] and random origin, MultiTraffic makes exactly the same RNG draws
// in exactly the same order as the legacy Traffic generator, so flag-era runs
// reproduce bit-for-bit under the new engine.
type MultiTraffic struct {
	net     *Network
	classes []workload.ClassSpec
	links   []*linkTraffic

	started    bool
	generation uint64
}

// linkTraffic is one link's slice of the workload: per-class arrival
// processes, session counts, the in-flight request table and accounts. It is
// mutated only from the owning shard's events.
type linkTraffic struct {
	link *Link
	// procs[c] is class c's open-loop arrival process on this link (nil for
	// closed-loop classes and never-firing for infeasible rates).
	procs []workload.Process
	// sessions[c] is class c's closed-loop session population on this link.
	sessions []int
	// accounts[c] is class c's local SLO account.
	accounts []*workload.ClassAccount
	// pending maps requestKey(role, createID) to the in-flight request's
	// bookkeeping. Entries are removed on the terminal OK or error event.
	pending map[uint64]*pendingRequest
}

// pendingRequest tracks one accepted in-flight request.
type pendingRequest struct {
	class int
	at    sim.Time
	// closed marks a closed-loop session's request: its terminal event
	// triggers the session's next think-submit cycle.
	closed bool
}

// NewMultiTraffic builds the workload engine for the network. Per-link
// open-loop rates follow the paper's arrival model for Load-driven classes
// (see workload.RatePerSecond) and split the aggregate Users x PerUserRate
// evenly across links for population-driven ones; closed-loop session
// populations are distributed across links round-robin.
func NewMultiTraffic(nw *Network, classes []workload.ClassSpec) (*MultiTraffic, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("netsim: workload needs at least one traffic class")
	}
	for _, c := range classes {
		if err := c.Validate(); err != nil {
			return nil, err
		}
	}
	mt := &MultiTraffic{net: nw, classes: classes}
	n := len(nw.Links)
	for li, l := range nw.Links {
		lt := &linkTraffic{
			link:     l,
			procs:    make([]workload.Process, len(classes)),
			sessions: make([]int, len(classes)),
			accounts: make([]*workload.ClassAccount, len(classes)),
			pending:  make(map[uint64]*pendingRequest),
		}
		for ci, c := range classes {
			lt.accounts[ci] = &workload.ClassAccount{}
			if c.Arrival.Closed() {
				// Round-robin distribution: link li serves session s iff
				// s ≡ li (mod n), so populations that don't divide evenly
				// still land deterministically.
				lt.sessions[ci] = c.Arrival.Sessions / n
				if li < c.Arrival.Sessions%n {
					lt.sessions[ci]++
				}
				continue
			}
			var rate float64
			if c.Arrival.Load > 0 {
				rate = workload.RatePerSecond(l.EGPA.FEU(), nw.Platform, c.Keep(), c.Arrival.Load, c.MinFidelity, c.MeanPairs())
			} else {
				rate = float64(c.Arrival.Users) * c.Arrival.PerUserRate / float64(n)
			}
			link, class := lt, ci
			lt.procs[ci] = workload.NewProcess(l.Eng, rate, c.Arrival, func() { mt.submit(link, class, false) })
		}
		mt.links = append(mt.links, lt)
	}
	mt.wireHooks()
	return mt, nil
}

// wireHooks chains the workload accounting onto the network's link-event
// hooks, preserving any observer already installed (e.g. the network layer's
// held-pair consumer).
func (mt *MultiTraffic) wireHooks() {
	byLink := make(map[LinkID]*linkTraffic, len(mt.links))
	for _, lt := range mt.links {
		byLink[lt.link.ID] = lt
	}
	prevOK := mt.net.OnLinkOK
	mt.net.OnLinkOK = func(l *Link, ev egp.OKEvent) {
		if prevOK != nil {
			prevOK(l, ev)
		}
		if ev.OriginIsLocal {
			mt.handleOK(byLink[l.ID], ev)
		}
	}
	prevErr := mt.net.OnLinkError
	mt.net.OnLinkError = func(l *Link, ev egp.ErrorEvent) {
		if prevErr != nil {
			prevErr(l, ev)
		}
		mt.handleError(byLink[l.ID], ev)
	}
}

// Classes returns the class specifications driving the engine.
func (mt *MultiTraffic) Classes() []workload.ClassSpec { return mt.classes }

// Start launches every open-loop arrival process and schedules the first
// think-submit cycle of every closed-loop session. It is idempotent while
// running.
func (mt *MultiTraffic) Start() {
	if mt.started {
		return
	}
	mt.started = true
	mt.generation++
	for _, lt := range mt.links {
		for ci := range mt.classes {
			if p := lt.procs[ci]; p != nil {
				p.Start()
			}
			// Sessions begin with a think pause rather than a synchronized
			// burst at t=0: each draws its own exponential offset from the
			// link's stream, staggering the population deterministically.
			for s := 0; s < lt.sessions[ci]; s++ {
				mt.scheduleThink(lt, ci, mt.generation)
			}
		}
	}
}

// Stop halts open-loop arrivals and session cycles; already-scheduled events
// die on the generation check.
func (mt *MultiTraffic) Stop() {
	mt.started = false
	for _, lt := range mt.links {
		for _, p := range lt.procs {
			if p != nil {
				p.Stop()
			}
		}
	}
}

// Submitted returns how many requests the engine has offered (all classes).
func (mt *MultiTraffic) Submitted() uint64 {
	var n uint64
	for _, lt := range mt.links {
		for _, a := range lt.accounts {
			n += a.Offered
		}
	}
	return n
}

// scheduleThink schedules a closed-loop session's next submission after an
// exponentially distributed think time drawn from the link's own stream.
func (mt *MultiTraffic) scheduleThink(lt *linkTraffic, class int, generation uint64) {
	think := mt.classes[class].Arrival.ThinkTime.Seconds()
	delay := sim.DurationSeconds(lt.link.Eng.RNG().Exponential(1 / think))
	sim.Schedule(lt.link.Eng, delay, func() {
		if !mt.started || generation != mt.generation {
			return
		}
		mt.submit(lt, class, true)
	})
}

// submit issues one CREATE request of the given class on the link, drawing
// the pair count and origin from the link's stream. Closed-loop submissions
// that are rejected synchronously re-enter the think cycle, so a full queue
// backs the population off instead of dropping sessions.
func (mt *MultiTraffic) submit(lt *linkTraffic, class int, closed bool) {
	c := &mt.classes[class]
	rng := lt.link.Eng.RNG()
	// Draw order matches the legacy Traffic generator (pairs, then origin) so
	// the single-class Poisson case reproduces it draw for draw.
	k := c.FixedPairs
	if k == 0 {
		k = c.MinPairs
		if c.MaxPairs > c.MinPairs {
			k += rng.Intn(c.MaxPairs - c.MinPairs + 1)
		}
	}
	role := roleA
	switch c.Origin {
	case workload.OriginB:
		role = roleB
	case workload.OriginRandom:
		if rng.Intn(2) == 1 {
			role = roleB
		}
	}
	acc := lt.accounts[class]
	acc.Offered++
	id, code := mt.net.Submit(lt.link, role, egp.CreateRequest{
		NumPairs:    k,
		Keep:        c.Keep(),
		MinFidelity: c.MinFidelity,
		MaxTime:     c.Deadline,
		Priority:    c.Priority,
		PurposeID:   uint16(1000 + c.Priority),
		Consecutive: c.Priority != egp.PriorityCK,
	})
	if code != wire.ErrNone {
		acc.Rejected++
		if code == wire.ErrLinkDown || code == wire.ErrNoRoute {
			// The link (or route to the peer) is administratively gone right
			// now — an outage-shaped reject, not a capacity one.
			acc.NoRoute++
		}
		if closed {
			mt.scheduleThink(lt, class, mt.generation)
		}
		return
	}
	acc.PairsRequested += uint64(k)
	lt.pending[requestKey(role, id)] = &pendingRequest{class: class, at: lt.link.Eng.Now(), closed: closed}
}

// handleOK accounts a delivered pair against its class and, when the request
// is done, completes it (and cycles its session for closed-loop classes).
// Runs on the link's own shard; events for requests the engine did not issue
// (e.g. standing primer requests) miss the pending table and are ignored.
func (mt *MultiTraffic) handleOK(lt *linkTraffic, ev egp.OKEvent) {
	key := requestKey(ev.Node, ev.CreateID)
	p, ok := lt.pending[key]
	if !ok {
		return
	}
	acc := lt.accounts[p.class]
	acc.Pairs++
	acc.TTP.Add(ev.At.Sub(ev.CreateTime).Seconds())
	if !ev.RequestDone {
		return
	}
	acc.Completed++
	delete(lt.pending, key)
	if p.closed {
		mt.scheduleThink(lt, p.class, mt.generation)
	}
}

// handleError accounts a failed request: deadline misses count into the
// class's timeout rate, link outages into the outage bucket (so fault-caused
// loss is never mistaken for queueing pressure), everything else as a
// failure. Closed-loop sessions re-enter the think cycle either way.
func (mt *MultiTraffic) handleError(lt *linkTraffic, ev egp.ErrorEvent) {
	key := requestKey(ev.Node, ev.CreateID)
	p, ok := lt.pending[key]
	if !ok {
		return
	}
	acc := lt.accounts[p.class]
	switch ev.Code {
	case wire.ErrTimeout:
		acc.TimedOut++
	case wire.ErrLinkDown:
		acc.Outage++
	default:
		acc.Failed++
	}
	delete(lt.pending, key)
	if p.closed {
		mt.scheduleThink(lt, p.class, mt.generation)
	}
}

// Accounts returns the per-class accounts merged across links in link
// order; call it after the run has finished. Sums and quantile sets are
// order-independent, so the result is identical at every shard count.
func (mt *MultiTraffic) Accounts() []*workload.ClassAccount {
	merged := make([]*workload.ClassAccount, len(mt.classes))
	for i := range merged {
		merged[i] = &workload.ClassAccount{}
	}
	for _, lt := range mt.links {
		for ci, a := range lt.accounts {
			merged[ci].Merge(a)
		}
	}
	return merged
}

// OldestWaits returns, per class, the age in seconds of the oldest request
// still outstanding (0 when none are). The max fold over the pending tables
// is order-independent.
func (mt *MultiTraffic) OldestWaits() []float64 {
	oldest := make([]float64, len(mt.classes))
	now := mt.net.Sim.Now()
	for _, lt := range mt.links {
		for _, p := range lt.pending {
			if w := now.Sub(p.at).Seconds(); w > oldest[p.class] {
				oldest[p.class] = w
			}
		}
	}
	return oldest
}

// SLO merges the per-link accounts and builds the per-class report;
// duration is the measured interval in simulated seconds. Deterministic at
// every shard count.
func (mt *MultiTraffic) SLO(duration float64) []workload.ClassSLO {
	return workload.BuildSLO(mt.classes, mt.Accounts(), mt.OldestWaits(), duration)
}

// AttachWorkload installs a multi-class workload engine; it starts and stops
// with the network. It replaces any previously attached traffic generator.
func (nw *Network) AttachWorkload(classes []workload.ClassSpec) (*MultiTraffic, error) {
	mt, err := NewMultiTraffic(nw, classes)
	if err != nil {
		return nil, err
	}
	nw.traffic = mt
	return mt, nil
}
