package netsim

import (
	"reflect"
	"testing"

	"repro/internal/egp"
	"repro/internal/nv"
	"repro/internal/sim"
	"repro/internal/workload"
)

// mixedClasses is the reference multi-class workload of these tests: an
// open-loop MD class, a population-driven NL class and a closed-loop CK
// session pool.
func mixedClasses() []workload.ClassSpec {
	return []workload.ClassSpec{
		{
			Name:     "md",
			Priority: egp.PriorityMD,
			Arrival:  workload.Arrival{Kind: workload.ArrivalPoisson, Load: 0.45},
			MinPairs: 1, MaxPairs: 2,
			MinFidelity: 0.64,
			Deadline:    sim.DurationSeconds(0.5),
			Origin:      workload.OriginRandom,
		},
		{
			Name:     "nl",
			Priority: egp.PriorityNL,
			Arrival:  workload.Arrival{Kind: workload.ArrivalPoisson, Users: 2000000, PerUserRate: 0.000004},
			MinPairs: 1, MaxPairs: 1,
			MinFidelity: 0.7,
			Deadline:    sim.DurationSeconds(0.25),
			Origin:      workload.OriginA,
		},
		{
			Name:     "ck",
			Priority: egp.PriorityCK,
			Arrival:  workload.Arrival{Kind: workload.ArrivalClosed, Sessions: 12, ThinkTime: sim.DurationSeconds(0.3)},
			MinPairs: 1, MaxPairs: 1,
			MinFidelity: 0.66,
			Deadline:    sim.DurationSeconds(1),
		},
	}
}

// runMixed builds a chain network, attaches the mixed workload and runs it.
func runMixed(t *testing.T, shards int, seconds float64) (*Network, *MultiTraffic) {
	t.Helper()
	cfg := DefaultConfig(Chain(8), nv.ScenarioLab)
	cfg.Seed = 7
	cfg.Shards = shards
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mt, err := nw.AttachWorkload(mixedClasses())
	if err != nil {
		t.Fatal(err)
	}
	nw.Run(sim.DurationSeconds(seconds))
	return nw, mt
}

// TestMultiTrafficMatchesLegacySingleClass pins the compatibility contract:
// one open-loop Poisson class with a [1, k_max] pair range and random origin
// makes exactly the same draws as the legacy Traffic generator, so the whole
// simulated trajectory is byte-identical.
func TestMultiTrafficMatchesLegacySingleClass(t *testing.T) {
	build := func(attach func(*Network)) *Network {
		cfg := DefaultConfig(Chain(6), nv.ScenarioLab)
		cfg.Seed = 11
		nw, err := NewNetwork(cfg)
		if err != nil {
			t.Fatal(err)
		}
		attach(nw)
		nw.Run(sim.DurationSeconds(0.5))
		return nw
	}
	legacy := build(func(nw *Network) {
		nw.AttachTraffic(TrafficConfig{Load: 0.7, MaxPairs: 2, MinFidelity: 0.64})
	})
	multi := build(func(nw *Network) {
		if _, err := nw.AttachWorkload([]workload.ClassSpec{{
			Name:     "md",
			Priority: egp.PriorityMD,
			Arrival:  workload.Arrival{Kind: workload.ArrivalPoisson, Load: 0.7},
			MinPairs: 1, MaxPairs: 2,
			MinFidelity: 0.64,
			Origin:      workload.OriginRandom,
		}}); err != nil {
			t.Fatal(err)
		}
	})

	if legacy.Sim.Executed() != multi.Sim.Executed() {
		t.Errorf("events: legacy %d != multi %d", legacy.Sim.Executed(), multi.Sim.Executed())
	}
	if legacy.Attempts() != multi.Attempts() {
		t.Errorf("attempts: legacy %d != multi %d", legacy.Attempts(), multi.Attempts())
	}
	legacyLinks, legacyAgg := legacy.Stats()
	multiLinks, multiAgg := multi.Stats()
	if !reflect.DeepEqual(legacyLinks, multiLinks) {
		t.Error("per-link stats differ between legacy Traffic and MultiTraffic")
	}
	if !reflect.DeepEqual(legacyAgg, multiAgg) {
		t.Errorf("aggregate stats differ: legacy %+v != multi %+v", legacyAgg, multiAgg)
	}
}

// TestMultiTrafficShardParity requires the merged per-class accounts — and
// the SLO report built from them — to be byte-identical between the serial
// engine and a 4-shard run.
func TestMultiTrafficShardParity(t *testing.T) {
	serialNet, serialMT := runMixed(t, 0, 0.5)
	shardNet, shardMT := runMixed(t, 4, 0.5)

	if serialNet.Sim.Executed() != shardNet.Sim.Executed() {
		t.Errorf("events: serial %d != sharded %d", serialNet.Sim.Executed(), shardNet.Sim.Executed())
	}
	if !reflect.DeepEqual(serialMT.Accounts(), shardMT.Accounts()) {
		t.Error("merged class accounts differ between serial and sharded runs")
	}
	if !reflect.DeepEqual(serialMT.OldestWaits(), shardMT.OldestWaits()) {
		t.Error("oldest-wait folds differ between serial and sharded runs")
	}
	serialSLO := serialMT.SLO(0.5)
	shardSLO := shardMT.SLO(0.5)
	if !reflect.DeepEqual(serialSLO, shardSLO) {
		t.Errorf("SLO reports differ:\nserial:  %+v\nsharded: %+v", serialSLO, shardSLO)
	}
}

// TestMultiTrafficAccounting sanity-checks the SLO bookkeeping of a mixed
// run: every class offers traffic, delivered pairs are accounted with
// time-to-pair samples, and the identity offered = rejected + terminal +
// outstanding holds per class.
func TestMultiTrafficAccounting(t *testing.T) {
	_, mt := runMixed(t, 0, 1)
	accounts := mt.Accounts()
	slos := mt.SLO(1)
	if len(accounts) != 3 || len(slos) != 3 {
		t.Fatalf("want 3 classes, got %d accounts / %d SLO rows", len(accounts), len(slos))
	}
	for i, a := range accounts {
		if a.Offered == 0 {
			t.Errorf("class %d offered no requests", i)
		}
		if got := a.Rejected + a.Terminal() + a.Outstanding(); got != a.Offered {
			t.Errorf("class %d: rejected %d + terminal %d + outstanding %d != offered %d",
				i, a.Rejected, a.Terminal(), a.Outstanding(), a.Offered)
		}
		if a.Pairs > 0 && a.TTP.Count() == 0 {
			t.Errorf("class %d delivered pairs but recorded no time-to-pair samples", i)
		}
	}
	for _, s := range slos {
		if s.Pairs > 0 && s.TTPP99 <= 0 {
			t.Errorf("class %s: pairs delivered but p99 time-to-pair is %g", s.Class, s.TTPP99)
		}
		if s.TimeoutRate < 0 || s.TimeoutRate > 1 {
			t.Errorf("class %s: timeout rate %g out of [0,1]", s.Class, s.TimeoutRate)
		}
	}
}

// TestClosedLoopBounded checks the closed-loop invariant: a session
// population of n never has more than n of its requests in flight.
func TestClosedLoopBounded(t *testing.T) {
	cfg := DefaultConfig(Chain(4), nv.ScenarioLab)
	cfg.Seed = 5
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const sessions = 5
	mt, err := nw.AttachWorkload([]workload.ClassSpec{{
		Name:     "ck",
		Priority: egp.PriorityCK,
		Arrival:  workload.Arrival{Kind: workload.ArrivalClosed, Sessions: sessions, ThinkTime: sim.DurationSeconds(0.05)},
		MinPairs: 1, MaxPairs: 1,
		MinFidelity: 0.64,
	}})
	if err != nil {
		t.Fatal(err)
	}
	nw.Run(sim.DurationSeconds(1))
	a := mt.Accounts()[0]
	if a.Offered == 0 {
		t.Fatal("closed-loop population never submitted")
	}
	if out := a.Outstanding(); out > sessions {
		t.Errorf("%d requests in flight exceeds the %d-session population", out, sessions)
	}
}

// TestMultiTrafficRejectsBadClasses covers constructor validation.
func TestMultiTrafficRejectsBadClasses(t *testing.T) {
	cfg := DefaultConfig(Chain(3), nv.ScenarioLab)
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.AttachWorkload(nil); err == nil {
		t.Error("empty class list accepted")
	}
	if _, err := nw.AttachWorkload([]workload.ClassSpec{{
		Name:     "bad",
		Priority: egp.PriorityMD,
		Arrival:  workload.Arrival{Kind: workload.ArrivalPoisson}, // no intensity
		MinPairs: 1, MaxPairs: 1,
		MinFidelity: 0.64,
	}}); err == nil {
		t.Error("class without an arrival intensity accepted")
	}
}
