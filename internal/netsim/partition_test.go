package netsim

import (
	"fmt"
	"testing"

	"repro/internal/classical"
	"repro/internal/nv"
	"repro/internal/sim"
)

// TestMakePartitionTable checks the structural invariants of the contiguous
// partitioner across representative topologies and shard counts: every node
// and link covered exactly once, every link owned by an endpoint's shard, and
// CrossEdges listing exactly the edges whose endpoints straddle shards.
func TestMakePartitionTable(t *testing.T) {
	specs := []Spec{Chain(16), Star(8), Grid(4, 4), Dragonfly(4, 5)}
	for _, spec := range specs {
		for _, shards := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s/%d-shards", spec.Name, shards), func(t *testing.T) {
				p, err := MakePartition(spec, shards)
				if err != nil {
					t.Fatal(err)
				}
				if err := p.Validate(spec); err != nil {
					t.Fatal(err)
				}
				if p.Shards != shards {
					t.Fatalf("Shards = %d, want %d", p.Shards, shards)
				}
				// Shard loads stay balanced: contiguous blocks differ by at
				// most one node.
				count := make([]int, shards)
				for _, s := range p.NodeShard {
					count[s]++
				}
				lo, hi := spec.Nodes, 0
				for _, c := range count {
					if c < lo {
						lo = c
					}
					if c > hi {
						hi = c
					}
				}
				if hi-lo > 1 {
					t.Fatalf("unbalanced node blocks: %v", count)
				}
				// Recompute the cross set independently and compare.
				cross := 0
				for li, e := range spec.sortedEdges() {
					sa, sb := p.NodeShard[e.A], p.NodeShard[e.B]
					if p.LinkShard[li] != sa {
						t.Fatalf("link %d (%d-%d) owned by shard %d, want lower endpoint's shard %d", li, e.A, e.B, p.LinkShard[li], sa)
					}
					if sa != sb {
						cross++
					}
				}
				if len(p.CrossEdges) != cross {
					t.Fatalf("CrossEdges has %d edges, want %d", len(p.CrossEdges), cross)
				}
				if shards == 1 && cross != 0 {
					t.Fatalf("single-shard partition reports %d cross edges", cross)
				}
			})
		}
	}
}

// TestChainPartitionCutCount: a chain split into contiguous blocks cuts
// exactly shards-1 edges — the partitioner must not do worse on the topology
// where the optimum is obvious.
func TestChainPartitionCutCount(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 8} {
		p, err := MakePartition(Chain(16), shards)
		if err != nil {
			t.Fatal(err)
		}
		if len(p.CrossEdges) != shards-1 {
			t.Fatalf("%d shards: chain-16 cut %d edges, want %d", shards, len(p.CrossEdges), shards-1)
		}
	}
}

// TestDragonflyPartitionCutsOnlyGlobalLinks: with one shard per group, the
// group-major node layout must keep every intra-group (local) link internal;
// only the M·(M−1)/2 global links cross shards.
func TestDragonflyPartitionCutsOnlyGlobalLinks(t *testing.T) {
	const k, m = 4, 5
	spec := Dragonfly(k, m)
	p, err := MakePartition(spec, m)
	if err != nil {
		t.Fatal(err)
	}
	if want := m * (m - 1) / 2; len(p.CrossEdges) != want {
		t.Fatalf("cut %d edges, want exactly the %d global links", len(p.CrossEdges), want)
	}
	for _, e := range p.CrossEdges {
		if e.A/k == e.B/k {
			t.Fatalf("intra-group link %d-%d crossed shards", e.A, e.B)
		}
	}
}

func TestMakePartitionRejections(t *testing.T) {
	if _, err := MakePartition(Chain(4), 0); err == nil {
		t.Error("accepted 0 shards")
	}
	if _, err := MakePartition(Chain(4), 5); err == nil {
		t.Error("accepted more shards than nodes")
	}
	if _, err := MakePartition(Spec{Nodes: 2}, 1); err == nil {
		t.Error("accepted an invalid spec")
	}
}

func TestValidateCrossDelays(t *testing.T) {
	crossing := &Partition{Shards: 2, CrossEdges: []Edge{{0, 1}}}
	if err := crossing.validateCrossDelays(0); err == nil {
		t.Error("zero cross-shard delay accepted")
	}
	if err := crossing.validateCrossDelays(-sim.Microsecond); err == nil {
		t.Error("negative cross-shard delay accepted")
	}
	if err := crossing.validateCrossDelays(sim.Microsecond); err != nil {
		t.Errorf("positive delay rejected: %v", err)
	}
	// With no cross edges the delay never matters.
	internal := &Partition{Shards: 1}
	if err := internal.validateCrossDelays(0); err != nil {
		t.Errorf("delay validated on a partition with no cross edges: %v", err)
	}
}

// TestDragonflyStructure pins down the D3(K,M) generator: node and edge
// counts, the complete intra-group graphs, exactly one global link per group
// pair, and the round-robin port spread that gives every router of D3(4,5)
// exactly one global link.
func TestDragonflyStructure(t *testing.T) {
	const k, m = 4, 5
	spec := Dragonfly(k, m)
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if spec.Nodes != k*m {
		t.Fatalf("nodes = %d, want %d", spec.Nodes, k*m)
	}
	local := m * k * (k - 1) / 2
	global := m * (m - 1) / 2
	if len(spec.Edges) != local+global {
		t.Fatalf("edges = %d, want %d local + %d global", len(spec.Edges), local, global)
	}
	// Intra-group completeness and global-pair coverage.
	groupPairs := map[[2]int]int{}
	intra := map[int]int{}
	for _, e := range spec.Edges {
		ga, gb := e.A/k, e.B/k
		if ga == gb {
			intra[ga]++
		} else {
			groupPairs[[2]int{ga, gb}]++
		}
	}
	for g := 0; g < m; g++ {
		if intra[g] != k*(k-1)/2 {
			t.Fatalf("group %d has %d local links, want complete graph with %d", g, intra[g], k*(k-1)/2)
		}
	}
	for ga := 0; ga < m; ga++ {
		for gb := ga + 1; gb < m; gb++ {
			if groupPairs[[2]int{ga, gb}] != 1 {
				t.Fatalf("groups %d and %d joined by %d global links, want 1", ga, gb, groupPairs[[2]int{ga, gb}])
			}
		}
	}
	// With M−1 = K the round-robin leaves every router exactly one global
	// link, so all degrees are (K−1)+1.
	for i, d := range spec.Degrees() {
		if d != k {
			t.Fatalf("router %d has degree %d, want %d", i, d, k)
		}
	}
}

func TestDragonflyRejectsDegenerateShapes(t *testing.T) {
	for _, c := range [][2]int{{1, 5}, {4, 1}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Dragonfly(%d, %d) did not panic", c[0], c[1])
				}
			}()
			Dragonfly(c[0], c[1])
		}()
	}
}

func TestSpecFromFlagsDragonfly(t *testing.T) {
	spec, err := SpecFromFlags("dragonfly", 20, "")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Nodes != 20 || spec.Name != "dragonfly-4x5" {
		t.Fatalf("20 nodes resolved to %s with %d nodes, want dragonfly-4x5", spec.Name, spec.Nodes)
	}
	// A prime node count has no K·M factorisation with K,M ≥ 2.
	if _, err := SpecFromFlags("dragonfly", 7, ""); err == nil {
		t.Fatal("prime node count accepted for a dragonfly")
	}
}

// TestCrossShardNetworkPort drives the one path that actually crosses shards:
// network-layer frames between nodes owned by different shards. The frames
// must arrive exactly one node-to-node delay after the send, in order, on the
// destination node's shard.
func TestCrossShardNetworkPort(t *testing.T) {
	cfg := DefaultConfig(Chain(4), nv.ScenarioLab)
	cfg.Seed = 3
	cfg.Shards = 2 // cut between nodes 1 and 2
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := nw.Sharded()
	if eng == nil {
		t.Fatal("sharded config built a serial network")
	}
	part := nw.Partition()
	if part.NodeShard[1] == part.NodeShard[2] {
		t.Fatalf("nodes 1 and 2 share shard %d; the test needs the 1-2 edge cut", part.NodeShard[1])
	}

	port, ok := nw.NetworkPort(1, 2)
	if !ok {
		t.Fatal("nodes 1 and 2 are adjacent but have no network port")
	}
	back, ok := nw.NetworkPort(2, 1)
	if !ok {
		t.Fatal("missing reverse port")
	}
	delay := nw.Platform.CommDelayAH + nw.Platform.CommDelayBH
	if port.Delay() != delay {
		t.Fatalf("cross-shard port delay %v, want node-to-node delay %v", port.Delay(), delay)
	}

	type arrival struct {
		at      sim.Time
		latency sim.Duration
		payload any
	}
	var got2, got1 []arrival
	nw.RegisterNetworkHandler(2, func(m classical.Message) {
		got2 = append(got2, arrival{eng.Shard(part.NodeShard[2]).Now(), eng.Shard(part.NodeShard[2]).Now().Sub(m.SentAt), m.Payload})
		back.Send(fmt.Sprintf("echo-%v", m.Payload))
	})
	nw.RegisterNetworkHandler(1, func(m classical.Message) {
		got1 = append(got1, arrival{eng.Shard(part.NodeShard[1]).Now(), eng.Shard(part.NodeShard[1]).Now().Sub(m.SentAt), m.Payload})
	})

	// Sends must run on the source node's shard loop.
	src := eng.Shard(part.NodeShard[1])
	for i := 0; i < 3; i++ {
		i := i
		sim.Schedule(src, sim.Duration(i)*sim.Millisecond, func() { port.Send(i) })
	}
	nw.Run(sim.DurationSeconds(0.05))

	if len(got2) != 3 || len(got1) != 3 {
		t.Fatalf("delivered %d forward and %d echo frames, want 3 and 3", len(got2), len(got1))
	}
	for i, a := range got2 {
		if a.payload != i {
			t.Errorf("forward frame %d carries %v", i, a.payload)
		}
		want := sim.Time(sim.Duration(i)*sim.Millisecond + delay)
		if a.at != want {
			t.Errorf("forward frame %d at %v, want %v", i, a.at, want)
		}
		if a.latency != delay {
			t.Errorf("forward frame %d measured latency %v, want %v (SentAt must survive the shard hop)", i, a.latency, delay)
		}
	}
	for i, a := range got1 {
		if a.payload != fmt.Sprintf("echo-%d", i) {
			t.Errorf("echo frame %d carries %v", i, a.payload)
		}
		if a.latency != delay {
			t.Errorf("echo frame %d measured latency %v, want %v", i, a.latency, delay)
		}
	}
	if eng.Merged() == 0 {
		t.Error("no messages crossed the shard barrier; the port did not use the cross channels")
	}
}
