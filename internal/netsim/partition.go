package netsim

import (
	"fmt"

	"repro/internal/sim"
)

// Partition assigns every node and every link of a topology to one shard of
// a sim.ShardedEngine.
//
// Nodes are split into contiguous index blocks (node indices are laid out
// locality-first by the topology constructors: chains in path order, grids
// row-major, dragonflies group-major, so contiguous blocks cut few edges).
// Every link is owned by exactly one shard — the shard of its lower-index
// endpoint — and its entire protocol stack (both EGP endpoints, both MHP
// nodes, midpoint, registry, devices and classical fibres) lives there. A
// link is never split across shards: its two endpoints share a pair registry
// and pair state, which only stays deterministic when one event loop drives
// both.
//
// Edges whose endpoints land in different shards are recorded in CrossEdges;
// only node-level (network-layer) messaging crosses shards on them, through
// channels registered with the sharded engine's conservative lookahead.
type Partition struct {
	// Shards is the shard count the partition was built for.
	Shards int
	// NodeShard maps node index to owning shard.
	NodeShard []int
	// LinkShard maps link ID (the index into the sorted edge list) to the
	// shard owning the link's whole protocol stack.
	LinkShard []int
	// CrossEdges lists the normalized edges whose endpoints live in
	// different shards, in sorted-edge order.
	CrossEdges []Edge
}

// MakePartition splits the topology into the given number of contiguous
// node blocks. It fails when there are more shards than nodes (an empty
// shard would silently skew any scaling measurement).
func MakePartition(spec Spec, shards int) (*Partition, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if shards < 1 {
		return nil, fmt.Errorf("netsim: partition needs at least 1 shard, got %d", shards)
	}
	if shards > spec.Nodes {
		return nil, fmt.Errorf("netsim: %d shards for %d nodes would leave empty shards", shards, spec.Nodes)
	}
	p := &Partition{
		Shards:    shards,
		NodeShard: make([]int, spec.Nodes),
	}
	for i := 0; i < spec.Nodes; i++ {
		// Balanced contiguous blocks: shard s owns nodes [s·N/S, (s+1)·N/S).
		p.NodeShard[i] = i * shards / spec.Nodes
	}
	for _, e := range spec.sortedEdges() {
		sa, sb := p.NodeShard[e.A], p.NodeShard[e.B]
		p.LinkShard = append(p.LinkShard, sa)
		if sa != sb {
			p.CrossEdges = append(p.CrossEdges, e)
		}
	}
	return p, nil
}

// Validate checks the structural invariants the sharded build relies on:
// every node and link is assigned to a shard in range, no shard is empty,
// and every edge either has both endpoints in one shard or is recorded as a
// cross edge.
func (p *Partition) Validate(spec Spec) error {
	if len(p.NodeShard) != spec.Nodes {
		return fmt.Errorf("netsim: partition covers %d of %d nodes", len(p.NodeShard), spec.Nodes)
	}
	seen := make([]bool, p.Shards)
	for i, s := range p.NodeShard {
		if s < 0 || s >= p.Shards {
			return fmt.Errorf("netsim: node %d assigned to out-of-range shard %d", i, s)
		}
		seen[s] = true
	}
	for s, ok := range seen {
		if !ok {
			return fmt.Errorf("netsim: shard %d owns no nodes", s)
		}
	}
	edges := spec.sortedEdges()
	if len(p.LinkShard) != len(edges) {
		return fmt.Errorf("netsim: partition covers %d of %d links", len(p.LinkShard), len(edges))
	}
	cross := make(map[Edge]bool, len(p.CrossEdges))
	for _, e := range p.CrossEdges {
		cross[e] = true
	}
	for i, e := range edges {
		s := p.LinkShard[i]
		if s < 0 || s >= p.Shards {
			return fmt.Errorf("netsim: link %d assigned to out-of-range shard %d", i, s)
		}
		sa, sb := p.NodeShard[e.A], p.NodeShard[e.B]
		if s != sa && s != sb {
			return fmt.Errorf("netsim: link %d (%d-%d) owned by shard %d, which owns neither endpoint", i, e.A, e.B, s)
		}
		if (sa != sb) != cross[e] {
			return fmt.Errorf("netsim: edge %d-%d cross-shard status inconsistent with CrossEdges", e.A, e.B)
		}
	}
	return nil
}

// validateCrossDelays rejects, at build time, any cross-shard edge whose
// node-to-node classical delay is not strictly positive: a zero-delay
// cross-shard channel would make the engine's conservative lookahead
// unsound, so the failure must be loud and early rather than a subtle
// ordering bug at runtime.
func (p *Partition) validateCrossDelays(delay sim.Duration) error {
	if len(p.CrossEdges) == 0 {
		return nil
	}
	if delay <= 0 {
		return fmt.Errorf("netsim: cross-shard edge %d-%d has non-positive classical delay %v; conservative sharding needs strictly positive cross-shard delays (reduce -shards or fix the platform's comm delays)",
			p.CrossEdges[0].A, p.CrossEdges[0].B, delay)
	}
	return nil
}
