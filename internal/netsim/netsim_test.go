package netsim

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/egp"
	"repro/internal/nv"
	"repro/internal/sim"
	"repro/internal/wire"
)

func TestTopologyGenerators(t *testing.T) {
	cases := []struct {
		spec  Spec
		nodes int
		links int
	}{
		{Chain(2), 2, 1},
		{Chain(8), 8, 7},
		{Star(5), 5, 4},
		{Grid(3, 3), 9, 12},
		{Grid(2, 4), 8, 10},
		{FromEdges([]Edge{{0, 1}, {1, 2}, {2, 0}}), 3, 3},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); err != nil {
			t.Fatalf("%s: %v", c.spec, err)
		}
		if c.spec.Nodes != c.nodes || len(c.spec.Edges) != c.links {
			t.Fatalf("%s: want %d nodes %d links, got %d/%d", c.spec.Name, c.nodes, c.links, c.spec.Nodes, len(c.spec.Edges))
		}
	}
}

func TestSpecValidateRejections(t *testing.T) {
	bad := []Spec{
		{Nodes: 1, Edges: []Edge{{0, 0}}},
		{Nodes: 3},                                // no links
		{Nodes: 3, Edges: []Edge{{0, 0}}},         // self loop
		{Nodes: 3, Edges: []Edge{{0, 5}}},         // out of range
		{Nodes: 3, Edges: []Edge{{0, 1}, {1, 0}}}, // duplicate after normalization
		{Nodes: 3, Edges: []Edge{{-1, 1}}},        // negative
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestParseEdgeList(t *testing.T) {
	edges, err := ParseEdgeList("0-1, 1-2 ,2-0")
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 3 || edges[2] != (Edge{2, 0}) {
		t.Fatalf("unexpected edges %v", edges)
	}
	for _, bad := range []string{"", "0", "a-b", "1-"} {
		if _, err := ParseEdgeList(bad); err == nil {
			t.Errorf("ParseEdgeList(%q): expected error", bad)
		}
	}
}

func TestGridDegrees(t *testing.T) {
	deg := Grid(3, 3).Degrees()
	// Corners have 2 links, edges 3, the centre 4.
	want := []int{2, 3, 2, 3, 4, 3, 2, 3, 2}
	for i, d := range deg {
		if d != want[i] {
			t.Fatalf("node %d: degree %d, want %d", i, d, want[i])
		}
	}
}

// buildRunChain runs a short measure-directly workload on a chain and
// returns the network.
func runSmall(t *testing.T, spec Spec, seed int64, seconds float64) *Network {
	t.Helper()
	cfg := DefaultConfig(spec, nv.ScenarioLab)
	cfg.Seed = seed
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nw.AttachTraffic(TrafficConfig{Load: 0.7, MaxPairs: 2, MinFidelity: 0.64})
	nw.Run(sim.DurationSeconds(seconds))
	return nw
}

func TestChainDeliversPairs(t *testing.T) {
	nw := runSmall(t, Chain(4), 7, 0.5)
	perLink, agg := nw.Stats()
	if len(perLink) != 3 {
		t.Fatalf("expected 3 link rows, got %d", len(perLink))
	}
	if agg.Pairs == 0 {
		t.Fatal("no pairs delivered on any link")
	}
	for _, ls := range perLink {
		if ls.Pairs == 0 {
			t.Errorf("link %s delivered no pairs", ls.Link)
		}
		if ls.Fidelity <= 0.5 || ls.Fidelity > 1 {
			t.Errorf("link %s: implausible fidelity %f", ls.Link, ls.Fidelity)
		}
	}
	if agg.Requests == 0 || nw.traffic.Submitted() == 0 {
		t.Fatal("traffic generator issued no requests")
	}
}

// TestLinkRegistryRouting checks that the per-node mux actually routed the
// DQP/EGP traffic of every link and dropped nothing.
func TestLinkRegistryRouting(t *testing.T) {
	nw := runSmall(t, Star(4), 7, 0.4)
	centre := nw.Nodes[0]
	if centre.Degree() != 3 {
		t.Fatalf("centre degree %d, want 3", centre.Degree())
	}
	routed, dropped := centre.Mux.Stats()
	if routed == 0 {
		t.Fatal("centre mux routed no messages")
	}
	if dropped != 0 {
		t.Fatalf("centre mux dropped %d messages", dropped)
	}
	for _, l := range centre.Links {
		if centre.EGP(l.ID) == nil {
			t.Fatalf("link registry lost link %d", l.ID)
		}
	}
	// Every link's distributed queue must have completed ADD/ACK handshakes
	// through the mux.
	for _, l := range nw.Links {
		adds, acks, _, _ := l.EGPA.Queue().Stats()
		if adds+acks == 0 {
			t.Errorf("link %s exchanged no DQP frames", l.Name)
		}
	}
}

// render flattens per-link and aggregate stats into one comparable string.
func render(perLink []LinkStats, agg LinkStats) string {
	out := ""
	for _, ls := range append(perLink, agg) {
		out += fmt.Sprintf("%s %d %d %d %.9f %.9f %.9f %.9f %.9f %.9f %.9f\n",
			ls.Link, ls.Requests, ls.Errors, ls.Pairs, ls.OKRate, ls.Fidelity,
			ls.LatencyP50, ls.LatencyP90, ls.LatencyP99, ls.QueueMean, ls.QueueMax)
	}
	return out
}

// TestDeterminism runs the same seed twice (grid topology) and requires
// byte-identical stats.
func TestDeterminism(t *testing.T) {
	a := runSmall(t, Grid(2, 2), 3, 0.4)
	b := runSmall(t, Grid(2, 2), 3, 0.4)
	sa := render(a.Stats())
	sb := render(b.Stats())
	if sa != sb {
		t.Fatalf("same seed produced different stats:\n%s\nvs\n%s", sa, sb)
	}
	c := runSmall(t, Grid(2, 2), 4, 0.4)
	if render(c.Stats()) == sa {
		t.Fatal("different seeds produced identical stats (suspicious)")
	}
}

// TestConcurrentNetworksAreIndependent runs several networks in parallel
// goroutines (exercised under -race by CI) and checks each matches its
// sequential twin, proving independent runs share no mutable state.
func TestConcurrentNetworksAreIndependent(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	want := make([]string, len(seeds))
	for i, s := range seeds {
		want[i] = render(runSmall(t, Chain(3), s, 0.3).Stats())
	}
	got := make([]string, len(seeds))
	var wg sync.WaitGroup
	for i, s := range seeds {
		wg.Add(1)
		go func(i int, s int64) {
			defer wg.Done()
			got[i] = render(runSmall(t, Chain(3), s, 0.3).Stats())
		}(i, s)
	}
	wg.Wait()
	for i := range seeds {
		if got[i] != want[i] {
			t.Errorf("seed %d: concurrent run diverged from sequential run", seeds[i])
		}
	}
}

// TestSubmitDirect submits a request by hand and checks it is delivered and
// accounted on the right link only.
func TestSubmitDirect(t *testing.T) {
	cfg := DefaultConfig(Chain(3), nv.ScenarioLab)
	cfg.Seed = 5
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, code := nw.Submit(nw.Links[0], "A", egp.CreateRequest{
		NumPairs:    1,
		MinFidelity: 0.64,
		Priority:    egp.PriorityMD,
	})
	if code != wire.ErrNone {
		t.Fatalf("submit failed: %v", code)
	}
	nw.Run(sim.DurationSeconds(0.2))
	s0 := nw.Links[0].Stats()
	s1 := nw.Links[1].Stats()
	if s0.Pairs == 0 {
		t.Fatal("link 0 delivered no pairs for the direct request")
	}
	if s1.Pairs != 0 || s1.Requests != 0 {
		t.Fatalf("idle link 1 has activity: %+v", s1)
	}
}

// TestKeepTraffic drives create-and-keep requests through a link.
func TestKeepTraffic(t *testing.T) {
	cfg := DefaultConfig(Chain(2), nv.ScenarioLab)
	cfg.Seed = 9
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nw.AttachTraffic(TrafficConfig{Load: 0.7, MaxPairs: 1, MinFidelity: 0.62, Keep: true})
	nw.Run(sim.DurationSeconds(0.5))
	_, agg := nw.Stats()
	if agg.Pairs == 0 {
		t.Fatal("no create-and-keep pairs delivered")
	}
}

// TestTrafficRestartDoesNotDoubleLoad stops and restarts the generator and
// checks the arrival rate stays in the same ballpark: a restart must
// invalidate the chains scheduled before the stop instead of running a
// second set alongside the fresh ones.
func TestTrafficRestartDoesNotDoubleLoad(t *testing.T) {
	cfg := DefaultConfig(Chain(2), nv.ScenarioLab)
	cfg.Seed = 13
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := nw.AttachTraffic(TrafficConfig{Load: 1.0, MaxPairs: 1, MinFidelity: 0.64})
	nw.Run(sim.DurationSeconds(3))
	first := tr.Submitted()
	if first == 0 {
		t.Fatal("no requests in the first window")
	}
	nw.Stop()
	nw.Run(sim.DurationSeconds(3)) // restarts MHP cycles and traffic
	second := tr.Submitted() - first
	// A doubled stream would put the second window near 2× the first; allow
	// wide Poisson slack around 1×.
	if float64(second) > 1.5*float64(first) {
		t.Fatalf("restart doubled the arrival streams: %d then %d requests", first, second)
	}
	if second == 0 {
		t.Fatal("traffic never resumed after restart")
	}
}

func TestInvalidTopologyRejected(t *testing.T) {
	if _, err := NewNetwork(DefaultConfig(Spec{Nodes: 1}, nv.ScenarioLab)); err == nil {
		t.Fatal("expected error for invalid topology")
	}
}
