// Package network is the network layer above netsim's link layer: it
// delivers end-to-end entangled pairs between arbitrary node pairs of a
// multi-link topology. A Router computes paths with a pluggable link cost
// (shortest-path baseline, fidelity- or rate-aware alternatives); a per-node
// swap engine consumes held create-and-keep pairs from each hop's EGP stack
// and joins adjacent segments by entanglement swapping — an exact Bell-state
// measurement on the repeater node's two qubits using internal/quantum
// density-matrix arithmetic — signalling the Pauli-frame correction to the
// segment ends over the classical node-to-node channels; and a CREATE-style
// request API mirrors the paper's link-layer service interface end to end
// (fidelity floor, deadline, priority) with per-request statekeeping,
// timeouts and metrics.
//
// Everything runs on the one deterministic simulator of the underlying
// netsim network, so end-to-end runs stay byte-reproducible for a fixed
// seed. Network-layer frames ride the shared node-to-node channels under a
// reserved mux tag and are forwarded hop by hop along the request's path;
// like the MHP layer they carry in-memory structs (a wire encoding is
// deliberately out of scope — the channels provide delay, ordering and loss,
// which is what the protocol logic observes).
//
// Classical frame loss is survived with bounded resources rather than full
// reliability: swap-notify frames are retransmitted until both segment ends
// are informed (a request whose frames keep vanishing fails after the retry
// budget), and link pairs stranded by a lost midpoint REPLY are reaped after
// pendingPairDeadline — the held qubit is released and a replacement link
// CREATE re-offers the hop. Under loss, delivery therefore costs retries and
// queueing; callers that need bounded completion should set MaxTime, which
// fails the request with TIMEOUT and releases everything it still holds.
package network

import (
	"fmt"
	"math"

	"repro/internal/classical"
	"repro/internal/egp"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/nv"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/wire"
)

// RequestID identifies one end-to-end entanglement request.
type RequestID uint64

// NetworkPurposeID tags the link-layer CREATEs issued by the network layer.
const NetworkPurposeID uint16 = 0x4E4C // "NL"

// CreateRequest mirrors the paper's link-layer CREATE semantics end to end:
// the higher layer asks for NumPairs entangled pairs between two (not
// necessarily adjacent) nodes, above a delivered-fidelity floor, optionally
// within a deadline.
type CreateRequest struct {
	SrcNode, DstNode int
	NumPairs         int
	// MinFidelity is the end-to-end delivered fidelity floor; the service
	// inverts it through the swap composition rule into the per-hop floor it
	// demands from every link.
	MinFidelity float64
	// MaxTime is the request deadline (0 = none): requests not completed in
	// time fail with TIMEOUT and release every held qubit.
	MaxTime sim.Duration
	// Priority is the egp priority lane used for the per-hop CREATEs
	// (default PriorityNL, the paper's network-layer lane).
	Priority int
}

// OKEvent reports one delivered end-to-end pair.
type OKEvent struct {
	RequestID RequestID
	Src, Dst  int
	Hops      int
	// Fidelity is the true delivered fidelity with |Ψ+⟩ (simulation ground
	// truth); Predicted is the closed-form Werner composition of the
	// consumed link-pair fidelities (and swap-gate factors), the network
	// layer's analogue of the link layer's Goodness estimate.
	Fidelity  float64
	Predicted float64
	// SwapLatency is delivery time minus the moment the last constituent
	// link pair was ready: the pure swapping-and-signalling overhead.
	SwapLatency sim.Duration
	// PairLatency is delivery time minus request submission.
	PairLatency    sim.Duration
	PairsRemaining int
	RequestDone    bool
	At             sim.Time
}

// ErrorEvent reports an end-to-end request failure.
type ErrorEvent struct {
	RequestID RequestID
	Src, Dst  int
	Code      wire.EGPError
	At        sim.Time
}

// Config selects the network layer's policies.
type Config struct {
	// Cost is the routing metric (nil = CostHops).
	Cost CostFunc
	// SwapGateFidelity models the repeater's Bell-state measurement as a
	// depolarising channel of this fidelity on each measured qubit (1 =
	// ideal BSM).
	SwapGateFidelity float64
	// TwirlLinkPairs applies the bilateral Pauli twirl to every consumed
	// link pair, mapping it onto the Werner state of equal fidelity so the
	// closed-form composition rule is exact (the standard repeater-protocol
	// assumption). Off, states keep their full structure and Predicted
	// becomes an approximation.
	TwirlLinkPairs bool
	// LinkPriority is the egp priority lane of the per-hop CREATEs.
	LinkPriority int
	// Trace, when non-nil, records end-to-end request lifecycles —
	// CREATE, per-segment readiness, swaps, Pauli corrections, delivered
	// pairs and the final OK/TIMEOUT — as spans in the flight recorder's
	// network-layer ring (track = request ID). Usually the same tracer as
	// netsim.Config.Trace. Nil disables recording at zero cost.
	Trace *obs.Tracer
	// Metrics, when non-nil, publishes end-to-end counters and per-class
	// time-to-pair histograms ("e2e.ttp_ns.<class>").
	Metrics *obs.Registry
}

// DefaultConfig returns the policies used by the end-to-end experiments:
// shortest-path routing, ideal BSM, twirled link pairs, NL priority.
func DefaultConfig() Config {
	return Config{SwapGateFidelity: 1, TwirlLinkPairs: true, LinkPriority: egp.PriorityNL}
}

// hopKey identifies one link-layer CREATE issued by the service: the link,
// the role of the originating endpoint and its CreateID.
type hopKey struct {
	link       netsim.LinkID
	originRole string
	createID   uint16
}

// requestState is the per-request bookkeeping of the service.
type requestState struct {
	id   RequestID
	req  CreateRequest
	path Path
	// pos maps a path node to its index in path.Nodes, for hop-by-hop frame
	// forwarding.
	pos         map[int]int
	linkFloor   float64
	pairsLeft   int
	segs        []*segment
	submittedAt sim.Time
	// lastPairAt is when the previous pair was delivered (submission time
	// until the first delivery); it feeds the per-pair production-time
	// (time-to-pair) series.
	lastPairAt sim.Time
	timeout    sim.EventID
	hasTimeout bool
	done       bool
	failed     bool
	// hopOKCount counts down the link-layer OKs still expected per hop
	// CREATE (two per pair, one from each endpoint); a hop whose CREATE has
	// delivered them all retires its hopOwner entry, and once the request is
	// finished and every hop retired the whole request state is forgotten
	// (see maybeForget). openHops counts unretired hop CREATEs, including
	// replacements issued for abandoned pairs.
	hopOKCount map[hopKey]int
	openHops   int
	// agg is the per-path stats bucket the request was accounted against at
	// submission; rerouted requests keep reporting into their original bucket
	// (path churn is visible through the reroute counters instead).
	agg *pathAgg
	// stale marks hop CREATEs abandoned by a reroute: their link-layer OKs
	// still count down the retirement bookkeeping, but their pairs are
	// released on arrival instead of feeding the swap engine.
	stale map[hopKey]bool
	// reroutes counts completed re-paths, retries counts backoff attempts
	// (including ones that then found no path), rerouting guards against
	// scheduling two concurrent repath timers.
	reroutes  uint64
	retries   uint64
	rerouting bool
}

func (r *requestState) finished() bool { return r.done || r.failed }

// Service is the network layer of one netsim network: router, per-node swap
// engines and the end-to-end request table.
type Service struct {
	nw     *netsim.Network
	cfg    Config
	router *Router

	nextID   RequestID
	requests map[RequestID]*requestState
	hopOwner map[hopKey]RequestID
	// pendingLink holds link segments whose two endpoint OKs have not both
	// arrived yet, keyed by the shared pair object.
	pendingLink map[*nv.EntangledPair]*segment
	// nodeSegs[n] holds the ready segments terminating at node n, per
	// request, in arrival order.
	nodeSegs []map[RequestID][]*segment

	collector *metrics.Collector
	aggs      map[string]*pathAgg
	aggOrder  []string

	swaps      uint64
	framesSent uint64
	// noPathRejects counts CREATEs rejected synchronously because no route
	// existed at all (no path bucket to account them against).
	noPathRejects uint64

	// Flight-recorder ring and metric handles; all nil when observability is
	// off (every use is nil-safe).
	trace     *obs.Ring
	ttp       *obs.ClassHistograms
	cOKs      *obs.Counter
	cFails    *obs.Counter
	cSwapCnt  *obs.Counter
	cReroutes *obs.Counter
	cNoRoute  *obs.Counter

	// OnOK and OnError observe deliveries and failures.
	OnOK    func(OKEvent)
	OnError func(ErrorEvent)
}

// NewService builds the network layer over a netsim network. The network
// must be configured with HoldPairs (the swap engine owns delivered
// create-and-keep qubits until it consumes them) and must not have another
// OnLinkOK consumer installed.
func NewService(nw *netsim.Network, cfg Config) (*Service, error) {
	if nw.Sharded() != nil {
		// The service's request/segment/hop state is global (one map set
		// spanning every node), and its link-OK handlers fire on whichever
		// shard owns the link — running it sharded would race and break
		// determinism. Keeping routing/state dissemination shard-local is
		// ROADMAP future work; until then the end-to-end layer requires the
		// serial engine.
		return nil, fmt.Errorf("network: the end-to-end service requires the serial engine (netsim.Config.Shards ≤ 1); its request state is network-global")
	}
	if !nw.Config.HoldPairs {
		return nil, fmt.Errorf("network: netsim must run with HoldPairs for the swap engine to consume pairs")
	}
	if cfg.SwapGateFidelity <= 0 || cfg.SwapGateFidelity > 1 {
		return nil, fmt.Errorf("network: swap gate fidelity %g out of (0,1]", cfg.SwapGateFidelity)
	}
	if cfg.LinkPriority < 0 || cfg.LinkPriority >= egp.NumQueues {
		cfg.LinkPriority = egp.PriorityNL
	}
	s := &Service{
		nw:          nw,
		cfg:         cfg,
		router:      NewRouter(nw, cfg.Cost),
		requests:    make(map[RequestID]*requestState),
		hopOwner:    make(map[hopKey]RequestID),
		pendingLink: make(map[*nv.EntangledPair]*segment),
		nodeSegs:    make([]map[RequestID][]*segment, len(nw.Nodes)),
		collector:   metrics.NewCollector(0),
		aggs:        make(map[string]*pathAgg),
	}
	for i := range s.nodeSegs {
		s.nodeSegs[i] = make(map[RequestID][]*segment)
	}
	// The service only runs on the serial engine (checked above), so all its
	// records go to shard 0's network-layer ring.
	s.trace = cfg.Trace.Ring(0, obs.LayerNetwork)
	if cfg.Metrics != nil {
		s.ttp = obs.NewClassHistograms(cfg.Metrics, "e2e.ttp_ns")
		s.cOKs = cfg.Metrics.Counter("e2e.oks")
		s.cFails = cfg.Metrics.Counter("e2e.fails")
		s.cSwapCnt = cfg.Metrics.Counter("e2e.swaps")
		s.cReroutes = cfg.Metrics.Counter("e2e.reroutes")
		s.cNoRoute = cfg.Metrics.Counter("e2e.noroute")
	}
	nw.OnLinkOK = s.handleLinkOK
	nw.OnLinkError = s.handleLinkError
	nw.OnLinkStateChange = s.handleLinkStateChange
	for i := range nw.Nodes {
		node := i
		nw.RegisterNetworkHandler(node, func(m classical.Message) { s.handleFrame(node, m) })
	}
	return s, nil
}

// Router exposes the service's router (for CLIs printing chosen paths).
func (s *Service) Router() *Router { return s.router }

// Collector exposes the end-to-end metrics collector.
func (s *Service) Collector() *metrics.Collector { return s.collector }

// Swaps returns how many entanglement swaps the engine has performed.
func (s *Service) Swaps() uint64 { return s.swaps }

// FramesSent returns how many network-layer frame transmissions (including
// per-hop forwards) the service has issued.
func (s *Service) FramesSent() uint64 { return s.framesSent }

// Create submits an end-to-end entanglement request. It returns the assigned
// request ID and an immediate error code: ErrNone when the request was
// accepted, ErrNoRoute when no usable route exists or the fidelity floor is
// infeasible on every route, ErrUnsupported when the deadline cannot be met
// even in expectation. Synchronous no-route rejects are counted separately
// (PathStats.NoRoute) from asynchronous failures.
func (s *Service) Create(req CreateRequest) (RequestID, wire.EGPError) {
	id := s.nextID
	s.nextID++
	if req.NumPairs <= 0 {
		req.NumPairs = 1
	}
	if req.Priority <= 0 || req.Priority >= egp.NumQueues {
		req.Priority = s.cfg.LinkPriority
	}
	now := s.nw.Sim.Now()

	path, err := s.router.Path(req.SrcNode, req.DstNode)
	if err != nil {
		// No resolvable path (disconnected, or every route crosses a down
		// link), so no per-path bucket to account this against; the reject is
		// counted in the aggregate row's NoRoute column.
		s.noPathRejects++
		s.cNoRoute.Inc()
		s.emitError(id, req, wire.ErrNoRoute, now)
		return id, wire.ErrNoRoute
	}
	// Synchronous rejects on a resolved path count as offered in that path's
	// statistics, so rejected traffic is visible in the tables; no-route
	// rejects (fidelity floor infeasible) have their own column, distinct
	// from asynchronous failures.
	linkFloor := PerHopFidelityFloor(req.MinFidelity, path.Hops(), s.cfg.SwapGateFidelity)
	for _, l := range path.Links {
		if _, ok := l.EGPA.FEU().AlphaForFidelity(linkFloor); !ok {
			agg := s.aggFor(path)
			agg.requests++
			agg.noRoute++
			s.cNoRoute.Inc()
			s.emitError(id, req, wire.ErrNoRoute, now)
			return id, wire.ErrNoRoute
		}
	}
	if req.MaxTime > 0 {
		est := EstimatePathSeconds(path, req.NumPairs, linkFloor)
		if math.IsInf(est, 1) || est > req.MaxTime.Seconds() {
			agg := s.aggFor(path)
			agg.requests++
			agg.failed++
			s.emitError(id, req, wire.ErrUnsupported, now)
			return id, wire.ErrUnsupported
		}
	}

	r := &requestState{
		id:          id,
		req:         req,
		path:        path,
		pos:         make(map[int]int, len(path.Nodes)),
		linkFloor:   linkFloor,
		pairsLeft:   req.NumPairs,
		submittedAt: now,
		lastPairAt:  now,
		hopOKCount:  make(map[hopKey]int, path.Hops()),
	}
	for i, n := range path.Nodes {
		r.pos[n] = i
	}
	r.agg = s.aggFor(path)
	s.requests[id] = r
	s.trace.Record(now, obs.KindE2ECreate, uint64(id), int64(req.SrcNode), int64(req.DstNode))
	s.collector.RequestSubmitted(uint64(id), req.Priority, fmt.Sprintf("n%d", req.SrcNode), req.NumPairs, now)
	r.agg.requests++

	// One link-layer CREATE per hop, originated at the hop's path-upstream
	// endpoint. The per-hop requests have no own deadline; the service-level
	// timeout below owns request expiry.
	for i, l := range path.Links {
		if code := s.submitHopCreate(r, l, path.Nodes[i], req.NumPairs); code != wire.ErrNone {
			s.failRequest(r, code)
			return id, code
		}
	}
	if req.MaxTime > 0 {
		r.hasTimeout = true
		r.timeout = sim.Schedule(s.nw.Sim, req.MaxTime, func() { s.failRequest(r, wire.ErrTimeout) })
	}
	return id, wire.ErrNone
}

// submitHopCreate issues one link-layer create-and-keep CREATE for a hop of
// the request (numPairs pairs, originated at the hop's path-upstream
// endpoint) and registers its ownership bookkeeping.
func (s *Service) submitHopCreate(r *requestState, l *netsim.Link, upNode, numPairs int) wire.EGPError {
	role := roleOf(l, upNode)
	createID, code := s.nw.Submit(l, role, egp.CreateRequest{
		NumPairs:    numPairs,
		Keep:        true,
		MinFidelity: r.linkFloor,
		Priority:    r.req.Priority,
		PurposeID:   NetworkPurposeID,
	})
	if code != wire.ErrNone {
		return code
	}
	key := hopKey{link: l.ID, originRole: role, createID: createID}
	s.hopOwner[key] = r.id
	r.hopOKCount[key] = 2 * numPairs
	r.openHops++
	return wire.ErrNone
}

// roleOf maps a link endpoint node to its per-link protocol role.
func roleOf(l *netsim.Link, node int) string {
	if node == l.Edge.B {
		return "B"
	}
	return "A"
}

// emitError reports a request failure to the subscriber and the metrics.
func (s *Service) emitError(id RequestID, req CreateRequest, code wire.EGPError, at sim.Time) {
	s.collector.RequestFailed(uint64(id), code.String(), at)
	if s.OnError != nil {
		s.OnError(ErrorEvent{RequestID: id, Src: req.SrcNode, Dst: req.DstNode, Code: code, At: at})
	}
}

// failRequest terminates a request: every held qubit of its live segments is
// released, its engine state is dropped, and the failure is reported. Pairs
// still in flight at the link layer are released as their OKs arrive.
func (s *Service) failRequest(r *requestState, code wire.EGPError) {
	if r.finished() {
		return
	}
	r.failed = true
	if r.hasTimeout {
		r.timeout.Cancel()
	}
	for _, sg := range r.segs {
		if sg.consumed || sg.delivered {
			continue
		}
		// Release both ends; Release is a no-op on devices that never stored
		// (or already dropped) this pair.
		sg.devA.Release(sg.pair)
		sg.devB.Release(sg.pair)
	}
	for _, n := range r.path.Nodes {
		delete(s.nodeSegs[n], r.id)
	}
	agg := s.pathAggFor(r)
	agg.failed++
	agg.reroutes += r.reroutes
	agg.retries += r.retries
	s.trace.Record(s.nw.Sim.Now(), obs.KindE2EFail, uint64(r.id), int64(r.req.NumPairs-r.pairsLeft), int64(code))
	s.cFails.Inc()
	s.emitError(r.id, r.req, code, s.nw.Sim.Now())
	s.maybeForget(r)
}

// maybeForget garbage-collects a request once it is finished AND every hop
// CREATE has delivered (and thereby retired) all its link-layer OKs: only
// then can no further event reference the request through the lookup maps.
// This keeps requests/hopOwner/pendingLink bounded over long runs and, more
// importantly, retires hopOwner keys before the link layer's uint16 CreateID
// counter can wrap around onto them. Hops whose REPLYs were lost (under
// classical loss) retire late or never; those entries are the price of
// releasing their pairs whenever they do straggle in.
func (s *Service) maybeForget(r *requestState) {
	if !r.finished() || r.openHops != 0 {
		return
	}
	delete(s.requests, r.id)
	for _, sg := range r.segs {
		delete(s.pendingLink, sg.pair)
	}
}

// deliver hands a src–dst segment to the requester: decoherence is advanced
// to now at both ends, the delivered fidelity is read out, the qubits are
// released and the metrics updated.
func (s *Service) deliver(sg *segment) {
	r := sg.req
	if r.finished() || sg.delivered {
		return
	}
	now := s.nw.Sim.Now()
	sg.devA.ApplyDecoherence(sg.pair, sg.sideA, now)
	sg.devB.ApplyDecoherence(sg.pair, sg.sideB, now)
	fid := sg.pair.Fidelity()
	sg.devA.Release(sg.pair)
	sg.devB.Release(sg.pair)
	sg.delivered = true

	if r.pairsLeft > 0 {
		r.pairsLeft--
	}
	done := r.pairsLeft == 0
	s.trace.Record(now, obs.KindE2EOK, uint64(r.id), int64(r.req.NumPairs-r.pairsLeft), int64(r.req.NumPairs))
	s.cOKs.Inc()
	s.ttp.Observe(r.req.Priority, now.Sub(r.submittedAt))
	s.collector.PairDelivered(uint64(r.id), r.req.Priority, fmt.Sprintf("n%d", r.req.SrcNode), fid, now)
	agg := s.pathAggFor(r)
	agg.pairs++
	agg.fidelity.Add(fid)
	agg.predicted.Add(sg.predicted)
	agg.swapLatency.Add(now.Sub(sg.linkReadyAt).Seconds())
	agg.pairLatency.Add(now.Sub(r.submittedAt).Seconds())
	agg.ttp.Add(now.Sub(r.lastPairAt).Seconds())
	r.lastPairAt = now
	if done {
		r.done = true
		if r.hasTimeout {
			r.timeout.Cancel()
		}
		s.trace.Record(now, obs.KindE2EDone, uint64(r.id), int64(r.req.NumPairs), 0)
		s.collector.RequestCompleted(uint64(r.id), now)
		agg.completed++
		agg.reroutes += r.reroutes
		agg.retries += r.retries
		for _, n := range r.path.Nodes {
			delete(s.nodeSegs[n], r.id)
		}
		s.maybeForget(r)
	}
	if s.OnOK != nil {
		s.OnOK(OKEvent{
			RequestID:      r.id,
			Src:            r.req.SrcNode,
			Dst:            r.req.DstNode,
			Hops:           r.path.Hops(),
			Fidelity:       fid,
			Predicted:      sg.predicted,
			SwapLatency:    now.Sub(sg.linkReadyAt),
			PairLatency:    now.Sub(r.submittedAt),
			PairsRemaining: r.pairsLeft,
			RequestDone:    done,
			At:             now,
		})
	}
}

// FinishAt closes the measurement interval of the service's collectors.
func (s *Service) FinishAt(t sim.Time) { s.collector.Finish(t) }
