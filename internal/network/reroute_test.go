package network

import (
	"fmt"
	"testing"

	"repro/internal/netsim"
	"repro/internal/nv"
	"repro/internal/quantum"
	"repro/internal/sim"
	"repro/internal/wire"
)

// buildServiceSpec wires a network + service over an arbitrary topology,
// with optional netsim config tweaks (backend, queue discipline, ...).
func buildServiceSpec(t *testing.T, spec netsim.Spec, seed int64, platform *nv.Platform, tweak func(*netsim.Config), cfg Config) (*netsim.Network, *Service) {
	t.Helper()
	ncfg := netsim.DefaultConfig(spec, nv.ScenarioLab)
	ncfg.Seed = seed
	ncfg.HoldPairs = true
	ncfg.Platform = platform
	if tweak != nil {
		tweak(&ncfg)
	}
	nw, err := netsim.NewNetwork(ncfg)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return nw, svc
}

// ring4 is the smallest topology with path diversity: two disjoint 2-hop
// routes between every antipodal pair.
func ring4() netsim.Spec {
	s := netsim.FromEdges([]netsim.Edge{{A: 0, B: 1}, {A: 1, B: 2}, {A: 2, B: 3}, {A: 3, B: 0}})
	s.Name = "ring-4"
	return s
}

// checkNoLeaks asserts the failure left nothing behind: every device memory
// slot free and every request-tracking map drained.
func checkNoLeaks(t *testing.T, nw *netsim.Network, svc *Service) {
	t.Helper()
	for _, l := range nw.Links {
		if n := len(l.DeviceA.OccupiedPairs()) + len(l.DeviceB.OccupiedPairs()); n != 0 {
			t.Errorf("link %s leaks %d stored pairs", l.Name, n)
		}
	}
	if n := len(svc.requests); n != 0 {
		t.Errorf("%d request states never garbage-collected", n)
	}
	if n := len(svc.pendingLink); n != 0 {
		t.Errorf("%d pending link segments leaked", n)
	}
	if n := len(svc.hopOwner); n != 0 {
		t.Errorf("%d hop CREATE registrations never retired", n)
	}
}

// TestRerouteDeliversAfterOutage is the robustness acceptance check: a
// request in flight on a ring loses a path link mid-run, reroutes onto the
// surviving side and still delivers within its original deadline — counting
// the reroute, not an error.
func TestRerouteDeliversAfterOutage(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol-level outage experiment in short mode")
	}
	nw, svc := buildServiceSpec(t, ring4(), 7, idealMemoryPlatform(), nil, DefaultConfig())
	initial := mustPath(t, svc, 0, 2)
	if initial.Hops() != 2 {
		t.Fatalf("ring path 0-2 has %d hops, want 2", initial.Hops())
	}
	// Take down the first link of the route the router will pick, well
	// before the ~hundreds-of-ms expected completion, and never repair it.
	nw.ScheduleLinkState(initial.Links[0], sim.Time(0).Add(50*sim.Millisecond), netsim.LinkDown, nil)

	var oks []OKEvent
	var errs []ErrorEvent
	svc.OnOK = func(ev OKEvent) { oks = append(oks, ev) }
	svc.OnError = func(ev ErrorEvent) { errs = append(errs, ev) }

	deadline := sim.DurationSeconds(3)
	if _, code := svc.Create(CreateRequest{SrcNode: 0, DstNode: 2, NumPairs: 1,
		MinFidelity: 0.4, MaxTime: deadline}); code != wire.ErrNone {
		t.Fatalf("Create returned %v", code)
	}
	nw.Run(sim.DurationSeconds(4))

	if len(errs) != 0 {
		t.Fatalf("request failed with %v instead of reroute-and-deliver", errs[0].Code)
	}
	if len(oks) != 1 || !oks[0].RequestDone {
		t.Fatalf("delivered %d pairs, want 1 completing the request", len(oks))
	}
	if oks[0].Hops != 2 {
		t.Errorf("rerouted delivery crossed %d hops, want 2 (other ring side)", oks[0].Hops)
	}
	if oks[0].PairLatency > deadline {
		t.Errorf("delivery took %v, past the original deadline %v", oks[0].PairLatency, deadline)
	}
	perPath, agg := svc.Stats()
	if agg.Completed != 1 || agg.Reroutes < 1 || agg.Retries < 1 {
		t.Errorf("reroute not accounted: %+v", agg)
	}
	// Stats stay pinned to the original path bucket, so churn is visible in
	// the reroute counters rather than as a phantom second path.
	if len(perPath) != 1 {
		t.Errorf("rerouted request opened %d path buckets, want 1", len(perPath))
	}
	// The repaths must have avoided the dead link.
	if down := initial.Links[0]; down.State() != netsim.LinkDown {
		t.Fatalf("test invariant broken: dead link repaired")
	}
	nw.Run(sim.DurationSeconds(2))
	checkNoLeaks(t, nw, svc)
}

// TestRerouteFailsFastNoRoute: on a chain there is no alternative route, so
// an outage must fail the in-flight request with NOROUTE within the retry
// backoff — milliseconds, not the request deadline — and release everything.
func TestRerouteFailsFastNoRoute(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol-level outage experiment in short mode")
	}
	nw, svc := buildService(t, 3, 11, idealMemoryPlatform(), DefaultConfig())
	outageAt := sim.Time(0).Add(40 * sim.Millisecond)
	nw.ScheduleLinkState(nw.LinkBetween(1, 2), outageAt, netsim.LinkDown, nil)

	var oks []OKEvent
	var errs []ErrorEvent
	svc.OnOK = func(ev OKEvent) { oks = append(oks, ev) }
	svc.OnError = func(ev ErrorEvent) { errs = append(errs, ev) }
	if _, code := svc.Create(CreateRequest{SrcNode: 0, DstNode: 2, NumPairs: 1,
		MinFidelity: 0.4, MaxTime: sim.DurationSeconds(3)}); code != wire.ErrNone {
		t.Fatalf("Create returned %v", code)
	}
	nw.Run(sim.DurationSeconds(2))

	if len(oks) != 0 {
		t.Fatalf("request completed despite the severed chain")
	}
	if len(errs) != 1 || errs[0].Code != wire.ErrNoRoute {
		t.Fatalf("want one NOROUTE failure, got %+v", errs)
	}
	// Fail-fast: the verdict arrives within the first retry backoff after
	// the outage, far ahead of the 3s deadline.
	if limit := outageAt.Add(sim.DurationSeconds(0.5)); errs[0].At > limit {
		t.Errorf("NOROUTE at %v, want fail-fast before %v", errs[0].At, limit)
	}
	_, agg := svc.Stats()
	if agg.Failed != 1 {
		t.Errorf("severed request not counted as failed: %+v", agg)
	}
	nw.Run(sim.DurationSeconds(2))
	checkNoLeaks(t, nw, svc)
}

// TestOutageReleasesResources sweeps both pair-state backends and both event
// queue disciplines: several concurrent requests lose a path link mid-run,
// and whatever mix of reroute/complete/fail results, every request must
// terminate and no memory slot, segment or hop registration may leak.
func TestOutageReleasesResources(t *testing.T) {
	if testing.Short() {
		t.Skip("backend×queue outage sweep in short mode")
	}
	for _, backend := range []quantum.Backend{quantum.BackendDense, quantum.BackendBellDiagonal} {
		for _, queue := range []sim.QueueKind{sim.QueueHeap, sim.QueueWheel} {
			backend, queue := backend, queue
			t.Run(fmt.Sprintf("%s/%s", backend, queue), func(t *testing.T) {
				t.Parallel()
				nw, svc := buildServiceSpec(t, ring4(), 13, idealMemoryPlatform(),
					func(c *netsim.Config) { c.Backend = backend; c.Queue = queue }, DefaultConfig())
				initial := mustPath(t, svc, 0, 2)
				nw.ScheduleLinkState(initial.Links[0], sim.Time(0).Add(60*sim.Millisecond), netsim.LinkDown, nil)

				outcomes := 0
				svc.OnOK = func(ev OKEvent) {
					if ev.RequestDone {
						outcomes++
					}
				}
				svc.OnError = func(ev ErrorEvent) { outcomes++ }
				const n = 3
				for i := 0; i < n; i++ {
					if _, code := svc.Create(CreateRequest{SrcNode: 0, DstNode: 2, NumPairs: 1,
						MinFidelity: 0.4, MaxTime: sim.DurationSeconds(3)}); code != wire.ErrNone {
						t.Fatalf("Create %d returned %v", i, code)
					}
				}
				nw.Run(sim.DurationSeconds(5))
				if outcomes != n {
					t.Fatalf("%d of %d requests terminated after the outage (must not hang)", outcomes, n)
				}
				// Let straggling link-layer OKs drain, then audit for leaks.
				nw.Run(sim.DurationSeconds(2))
				checkNoLeaks(t, nw, svc)
			})
		}
	}
}
