package network

import (
	"repro/internal/classical"
	"repro/internal/egp"
	"repro/internal/netsim"
	"repro/internal/nv"
	"repro/internal/obs"
	"repro/internal/quantum"
	"repro/internal/sim"
	"repro/internal/wire"
)

// segment is one entangled pair spanning a contiguous stretch of a request's
// path: initially a single link pair, then — swap by swap — longer stretches
// until one spans src to dst. Endpoint a is the path-upstream end (closer to
// the request's source). Each end records the device physically holding its
// qubit and which side of the shared pair object that qubit is.
type segment struct {
	req          *requestState
	a, b         int
	pair         *nv.EntangledPair
	devA, devB   *nv.Device
	sideA, sideB nv.PairSide
	// predicted is the closed-form Werner composition of the consumed link
	// fidelities and swap-gate factors.
	predicted float64
	// linkReadyAt is the moment the last constituent link pair became
	// usable; delivery minus this is the pure swap overhead.
	linkReadyAt sim.Time
	// aReady/bReady track which ends know about the segment. For link
	// segments they mark the endpoint EGP OKs; for swapped segments, the
	// arrival of the swap-notify frames.
	aReady, bReady bool
	// corrected marks that the b end applied (or absorbed) the Pauli frame
	// correction.
	corrected bool
	placed    bool // handed to the engine (or delivered); guards duplicate placement
	consumed  bool // joined into a longer segment by a swap
	delivered bool // handed to the requester
}

// Swap-notify frames ride the lossy classical channels, so the swapping node
// retransmits them until both ends acknowledge by becoming ready (observed
// centrally; handleFrame is idempotent, so duplicates are harmless). A
// request whose frames keep vanishing is failed after the retry budget so
// its held qubits are released instead of leaking forever.
const (
	swapRetryInterval = 2 * sim.Millisecond
	swapRetryLimit    = 8
)

// pendingPairDeadline bounds how long a link pair may sit with only one
// endpoint OK. The two OKs arrive within roughly one midpoint round trip of
// each other (≲300 µs on QL2020), so a pair still half-acknowledged after
// this deadline lost its REPLY: the stored side is released and a
// replacement link CREATE is issued for the hop.
const pendingPairDeadline = 25 * sim.Millisecond

// handleLinkOK consumes link-layer OK events: create-and-keep pairs whose
// CREATE the service issued become link segments once both endpoint EGPs
// have delivered their OK (the swap engine must not touch a qubit before
// that node's EGP has stored it).
func (s *Service) handleLinkOK(l *netsim.Link, ev egp.OKEvent) {
	if !ev.Keep || ev.Pair == nil {
		return
	}
	originRole := ev.Node
	if !ev.OriginIsLocal {
		originRole = netsim.OtherRole(ev.Node)
	}
	key := hopKey{link: l.ID, originRole: originRole, createID: ev.CreateID}
	id, owned := s.hopOwner[key]
	if !owned {
		return // foreign (non network-layer) traffic on a shared link
	}
	r := s.requests[id]
	if r == nil {
		return
	}
	// Count down this hop CREATE's expected OKs (two per pair, one per
	// endpoint); a fully delivered hop retires its lookup entry so the link
	// layer's CreateID counter can never wrap onto a stale key.
	if r.hopOKCount[key]--; r.hopOKCount[key] == 0 {
		delete(s.hopOwner, key)
		delete(r.hopOKCount, key)
		r.openHops--
		defer s.maybeForget(r)
	}
	if r.finished() || r.stale[key] {
		// Late pair for a completed or failed request, or a pair from a hop
		// CREATE a reroute abandoned: free this endpoint's qubit immediately.
		l.DeviceFor(ev.Node).Release(ev.Pair)
		return
	}
	sg := s.pendingLink[ev.Pair]
	if sg == nil {
		sg = s.newLinkSegment(r, l, ev.Pair)
		s.pendingLink[ev.Pair] = sg
		r.segs = append(r.segs, sg)
		sim.Schedule(s.nw.Sim, pendingPairDeadline, func() { s.abandonIfStuck(sg) })
	}
	if l.NodeIndex(ev.Node) == sg.a {
		sg.aReady = true
	} else {
		sg.bReady = true
	}
	if sg.aReady && sg.bReady {
		delete(s.pendingLink, ev.Pair)
		s.activateLinkSegment(sg)
	}
}

// handleLinkError fails the owning end-to-end request when one of its hop
// CREATEs errors at the link layer (queue rejection, expiry, ...) — except
// for LINKDOWN, where the request survives the outage by re-pathing around
// the dead link instead. Error events are emitted at the originating
// endpoint, so ev.Node is the origin role.
func (s *Service) handleLinkError(l *netsim.Link, ev egp.ErrorEvent) {
	id, owned := s.hopOwner[hopKey{link: l.ID, originRole: ev.Node, createID: ev.CreateID}]
	if !owned {
		return
	}
	r := s.requests[id]
	if r == nil {
		return
	}
	if ev.Code == wire.ErrLinkDown {
		s.rerouteRequest(r, l)
		return
	}
	s.failRequest(r, ev.Code)
}

// abandonIfStuck reaps a link pair that never collected its second endpoint
// OK (a lost REPLY strands the pair: the acknowledged side holds a qubit the
// other side will never swap against). The stored side is released and a
// one-pair replacement CREATE re-offers the hop, so classical frame loss
// costs retries instead of stranded memory.
func (s *Service) abandonIfStuck(sg *segment) {
	if sg.placed || s.pendingLink[sg.pair] != sg {
		return // both OKs arrived (or the request already cleaned it up)
	}
	delete(s.pendingLink, sg.pair)
	sg.consumed = true // dead; failRequest must not release it again
	if sg.aReady {
		sg.devA.Release(sg.pair)
	}
	if sg.bReady {
		sg.devB.Release(sg.pair)
	}
	r := sg.req
	if r.finished() {
		return
	}
	l := s.nw.LinkBetween(sg.a, sg.b)
	if l == nil {
		return
	}
	if code := s.submitHopCreate(r, l, sg.a, 1); code != wire.ErrNone {
		s.failRequest(r, code)
	}
}

// newLinkSegment orients a fresh link pair along the request's path.
func (s *Service) newLinkSegment(r *requestState, l *netsim.Link, pair *nv.EntangledPair) *segment {
	// The hop index of this link on the path gives the orientation: the
	// path-upstream endpoint is Nodes[i].
	var up, down int
	for i := range r.path.Links {
		if r.path.Links[i] == l {
			up, down = r.path.Nodes[i], r.path.Nodes[i+1]
			break
		}
	}
	sideAt := func(node int) nv.PairSide {
		if node == l.Edge.B {
			return nv.SideB
		}
		return nv.SideA
	}
	return &segment{
		req:   r,
		a:     up,
		b:     down,
		pair:  pair,
		devA:  l.DeviceFor(roleOf(l, up)),
		devB:  l.DeviceFor(roleOf(l, down)),
		sideA: sideAt(up),
		sideB: sideAt(down),
	}
}

// activateLinkSegment makes a both-ends-ready link pair available to the
// swap engine: decoherence is advanced to now at both ends, the pair is
// (optionally) twirled onto Werner form, and its fidelity at this moment
// seeds the closed-form prediction.
func (s *Service) activateLinkSegment(sg *segment) {
	now := s.nw.Sim.Now()
	sg.devA.ApplyDecoherence(sg.pair, sg.sideA, now)
	sg.devB.ApplyDecoherence(sg.pair, sg.sideB, now)
	if s.cfg.TwirlLinkPairs {
		sg.predicted = sg.pair.State.Twirl(sg.pair.HeraldedAs)
	} else {
		sg.predicted = sg.pair.Fidelity()
	}
	sg.linkReadyAt = now
	sg.corrected = true // link pairs are delivered in the |Ψ+⟩ frame
	s.trace.Record(now, obs.KindE2ESegment, uint64(sg.req.id), int64(sg.a), int64(sg.b))
	s.placeSegment(sg)
}

// placeSegment routes a usable segment: src–dst spans deliver, everything
// else registers at both end nodes and triggers the swap engine there.
func (s *Service) placeSegment(sg *segment) {
	if sg.placed {
		return // duplicate (retransmitted) readiness; already handed over
	}
	sg.placed = true
	r := sg.req
	if r.finished() {
		sg.devA.Release(sg.pair)
		sg.devB.Release(sg.pair)
		return
	}
	if sg.a == r.req.SrcNode && sg.b == r.req.DstNode {
		s.deliver(sg)
		return
	}
	s.nodeSegs[sg.a][r.id] = append(s.nodeSegs[sg.a][r.id], sg)
	s.nodeSegs[sg.b][r.id] = append(s.nodeSegs[sg.b][r.id], sg)
	for s.trySwap(sg.a, r) {
	}
	for s.trySwap(sg.b, r) {
	}
}

// trySwap performs one swap at node n for the request if n currently holds
// both a segment ending there and one starting there (swap-as-soon-as-
// possible scheduling). It reports whether a swap happened.
func (s *Service) trySwap(n int, r *requestState) bool {
	segs := s.nodeSegs[n][r.id]
	li, ri := -1, -1
	for i, sg := range segs {
		if sg.b == n && li < 0 {
			li = i
		}
		if sg.a == n && ri < 0 {
			ri = i
		}
	}
	if li < 0 || ri < 0 {
		return false
	}
	segL, segR := segs[li], segs[ri]
	s.unregisterSegment(segL)
	s.unregisterSegment(segR)
	s.performSwap(n, segL, segR)
	return true
}

// unregisterSegment removes a segment from both end-node registries.
func (s *Service) unregisterSegment(sg *segment) {
	for _, n := range [2]int{sg.a, sg.b} {
		list := s.nodeSegs[n][sg.req.id]
		for i, x := range list {
			if x == sg {
				s.nodeSegs[n][sg.req.id] = append(list[:i:i], list[i+1:]...)
				break
			}
		}
	}
}

// performSwap joins two adjacent segments at node n: a Bell-state
// measurement on n's two qubits (through the configured BSM gate noise)
// produces the composed far-end pair; n's qubits are freed, the far devices
// are rebound onto the new pair, and the outcome's Pauli correction is
// signalled to the new segment's ends over the classical channels.
func (s *Service) performSwap(n int, segL, segR *segment) {
	now := s.nw.Sim.Now()
	devL, devR := segL.devB, segR.devA
	devL.ApplyDecoherence(segL.pair, segL.sideB, now)
	devR.ApplyDecoherence(segR.pair, segR.sideA, now)

	u := s.nw.Sim.RNG().Float64()
	reduced, outcome := segL.pair.State.SwapWith(segR.pair.State,
		int(segL.sideB), int(segR.sideA), s.cfg.SwapGateFidelity, u)
	label := quantum.SwappedBell(segL.pair.HeraldedAs, segR.pair.HeraldedAs, outcome)
	newPair := nv.NewSwappedPair(reduced, label, segL.pair, segL.sideA, segR.pair, segR.sideB, now)

	devL.Release(segL.pair)
	devR.Release(segR.pair)
	_ = segL.devA.Rebind(segL.pair, newPair, nv.SideA)
	_ = segR.devB.Rebind(segR.pair, newPair, nv.SideB)
	segL.consumed, segR.consumed = true, true
	s.swaps++
	s.trace.Record(now, obs.KindE2ESwap, uint64(segL.req.id), int64(n), int64(label))
	s.cSwapCnt.Inc()

	r := segL.req
	sg := &segment{
		req:       r,
		a:         segL.a,
		b:         segR.b,
		pair:      newPair,
		devA:      segL.devA,
		devB:      segR.devB,
		sideA:     nv.SideA,
		sideB:     nv.SideB,
		predicted: quantum.SwapPredictFidelity(segL.predicted, segR.predicted, s.cfg.SwapGateFidelity),
	}
	if sg.linkReadyAt = segL.linkReadyAt; segR.linkReadyAt > sg.linkReadyAt {
		sg.linkReadyAt = segR.linkReadyAt
	}
	r.segs = append(r.segs, sg)

	// Inform the a end, and ship the Pauli frame to the b end (which applies
	// the correction). The segment becomes usable when both frames arrived;
	// lost frames are retransmitted until then.
	fa := swapFrame{ReqID: r.id, Dst: sg.a, Seg: sg, End: nv.SideA}
	fb := swapFrame{ReqID: r.id, Dst: sg.b, Seg: sg, End: nv.SideB, Label: label}
	s.sendFrame(n, fa)
	s.sendFrame(n, fb)
	s.scheduleFrameRetry(n, sg, fa, fb, 0)
}

// scheduleFrameRetry re-sends a swap's notify frames until both segment ends
// are informed, failing the request (and releasing its qubits) once the
// retry budget is exhausted — a permanently partitioned control channel must
// not strand memory qubits forever.
func (s *Service) scheduleFrameRetry(n int, sg *segment, fa, fb swapFrame, retries int) {
	sim.Schedule(s.nw.Sim, swapRetryInterval, func() {
		if sg.placed || sg.consumed || sg.req.finished() {
			// consumed covers segments torn down by a reroute: their qubits
			// are already released, retrying (or failing the request over
			// them) would be wrong.
			return
		}
		if retries >= swapRetryLimit {
			s.failRequest(sg.req, wire.ErrTimeout)
			return
		}
		if !sg.aReady {
			s.sendFrame(n, fa)
		}
		if !sg.bReady {
			s.sendFrame(n, fb)
		}
		s.scheduleFrameRetry(n, sg, fa, fb, retries+1)
	})
}

// swapFrame is the network-layer message announcing a swap result to one end
// of the new segment. Frames are forwarded hop by hop along the request's
// path; Seg is an in-memory reference (see the package comment on frame
// encoding).
type swapFrame struct {
	ReqID RequestID
	Dst   int
	Seg   *segment
	End   nv.PairSide
	// Label is the pre-correction Bell label; the b end rotates the pair
	// back into the |Ψ+⟩ frame on receipt.
	Label quantum.BellState
}

// sendFrame forwards a frame one hop from node towards its destination.
func (s *Service) sendFrame(from int, f swapFrame) {
	r := s.requests[f.ReqID]
	if r == nil {
		return
	}
	pf, okF := r.pos[from]
	pd, okD := r.pos[f.Dst]
	if !okF || !okD || pf == pd {
		return
	}
	next := r.path.Nodes[pf+1]
	if pd < pf {
		next = r.path.Nodes[pf-1]
	}
	port, ok := s.nw.NetworkPort(from, next)
	if !ok {
		return
	}
	s.framesSent++
	port.Send(f)
}

// handleFrame processes a network-layer frame arriving at a node: transit
// frames are forwarded along the path, terminal frames update the segment
// (applying the Pauli correction at the b end) and hand it to the engine
// once both ends are informed.
func (s *Service) handleFrame(node int, msg classical.Message) {
	f, ok := msg.Payload.(swapFrame)
	if !ok {
		return
	}
	if f.Dst != node {
		s.sendFrame(node, f)
		return
	}
	sg := f.Seg
	r := sg.req
	if r.finished() {
		// The request died while the frame was in flight; free this end.
		if f.End == nv.SideA {
			sg.devA.Release(sg.pair)
		} else {
			sg.devB.Release(sg.pair)
		}
		return
	}
	if sg.consumed {
		// A reroute tore this segment down while the frame was in flight; its
		// qubits are already released.
		return
	}
	if f.End == nv.SideA {
		sg.aReady = true
	} else {
		if !sg.corrected {
			sg.corrected = true
			s.trace.Record(s.nw.Sim.Now(), obs.KindE2ECorrection, uint64(r.id), int64(node), int64(f.Label))
			// Advance decoherence to the correction moment first — Pauli
			// rotations do not commute with amplitude damping.
			sg.devB.ApplyDecoherence(sg.pair, sg.sideB, s.nw.Sim.Now())
			if !quantum.CorrectionIsIdentity(f.Label, quantum.PsiPlus) {
				// The b end's qubit is qubit 1 (side B) of the pair state.
				sg.pair.State.ApplyPauli(1, quantum.CorrectionPauliOp(f.Label, quantum.PsiPlus))
			}
			sg.pair.HeraldedAs = quantum.PsiPlus
		}
		sg.bReady = true
	}
	if sg.aReady && sg.bReady {
		s.placeSegment(sg)
	}
}
