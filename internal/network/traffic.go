package network

import (
	"repro/internal/sim"
	"repro/internal/workload"
)

// TrafficConfig describes a Poisson stream of end-to-end requests.
type TrafficConfig struct {
	// Pairs are the candidate (src, dst) node pairs; every pair runs its own
	// independent Poisson arrival process.
	Pairs [][2]int
	// Load scales each pair's request rate: the offered end-to-end pair rate
	// is Load times the path's bottleneck link pair rate (swaps consume one
	// link pair per hop, and hops generate concurrently, so the slowest hop
	// bounds the sustainable rate).
	Load float64
	// MaxPairs is k_max: each request asks for a uniform random number of
	// pairs in [1, MaxPairs].
	MaxPairs int
	// MinFidelity is the end-to-end delivered fidelity floor.
	MinFidelity float64
	// MaxTime is the per-request deadline (0 = none).
	MaxTime sim.Duration
}

// Traffic drives a Service with Poisson end-to-end requests, one shared
// workload.PoissonStream per (src, dst) pair.
type Traffic struct {
	svc     *Service
	cfg     TrafficConfig
	streams []*workload.PoissonStream
	pairs   [][2]int
}

// Pairs returns the configured (src, dst) node pairs in stream order.
func (t *Traffic) Pairs() [][2]int { return t.pairs }

// AttachTraffic builds a traffic generator over the service. Pairs whose
// path cannot reach the required per-hop fidelity get rate 0 (no arrivals),
// mirroring the link-layer generator's handling of infeasible requests.
func (s *Service) AttachTraffic(cfg TrafficConfig) *Traffic {
	if cfg.MaxPairs <= 0 {
		cfg.MaxPairs = 1
	}
	t := &Traffic{svc: s, cfg: cfg}
	meanPairs := (1 + float64(cfg.MaxPairs)) / 2
	for _, pr := range cfg.Pairs {
		pr := pr
		rate := 0.0
		if path, err := s.router.Path(pr[0], pr[1]); err == nil && cfg.Load > 0 {
			floor := PerHopFidelityFloor(cfg.MinFidelity, path.Hops(), s.cfg.SwapGateFidelity)
			rate = cfg.Load * PathPairRate(s.nw, path, floor) / meanPairs
		}
		t.pairs = append(t.pairs, pr)
		t.streams = append(t.streams, workload.NewPoissonStream(s.nw.Sim, rate, func() { t.fire(pr) }))
	}
	return t
}

// Start schedules the first arrival of every stream.
func (t *Traffic) Start() {
	for _, s := range t.streams {
		s.Start()
	}
}

// Stop halts future arrivals.
func (t *Traffic) Stop() {
	for _, s := range t.streams {
		s.Stop()
	}
}

// Submitted returns how many requests the generator has issued.
func (t *Traffic) Submitted() uint64 {
	var n uint64
	for _, s := range t.streams {
		n += s.Arrivals()
	}
	return n
}

// Rate returns pair i's request arrival rate in requests per second.
func (t *Traffic) Rate(i int) float64 { return t.streams[i].Rate() }

// fire submits one end-to-end request for the pair.
func (t *Traffic) fire(pr [2]int) {
	k := 1
	if t.cfg.MaxPairs > 1 {
		k = 1 + t.svc.nw.Sim.RNG().Intn(t.cfg.MaxPairs)
	}
	t.svc.Create(CreateRequest{
		SrcNode:     pr[0],
		DstNode:     pr[1],
		NumPairs:    k,
		MinFidelity: t.cfg.MinFidelity,
		MaxTime:     t.cfg.MaxTime,
	})
}
