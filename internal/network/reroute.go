package network

import (
	"slices"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Failure-aware re-routing: when a link on an in-flight request's path goes
// administratively down, the request releases its partially built segments,
// abandons its outstanding hop CREATEs, recomputes a path that avoids the
// dead link and resubmits — with bounded exponential backoff between
// attempts, under the request's ORIGINAL deadline (the timeout scheduled at
// Create keeps running across reroutes). A request that exhausts the retry
// budget fails with LINKDOWN; one whose endpoints become unreachable (or
// whose fidelity floor no surviving path can meet) fails fast with NOROUTE.
const (
	// rerouteBackoffBase is the delay before the first re-path attempt;
	// successive attempts double it up to rerouteBackoffMax. The base is a
	// couple of MHP cycles — long enough for the drain triggered by the fault
	// to finish, short enough to not eat into the deadline.
	rerouteBackoffBase = 2 * sim.Millisecond
	rerouteBackoffMax  = 64 * sim.Millisecond
	// rerouteLimit bounds re-path attempts per request; the original deadline
	// usually fires first, this bounds deadline-less requests.
	rerouteLimit = 8
)

// rerouteBackoff is the exponential backoff before the n-th re-path attempt
// (0-based), capped at rerouteBackoffMax.
func rerouteBackoff(n uint64) sim.Duration {
	d := rerouteBackoffBase
	for ; n > 0 && d < rerouteBackoffMax; n-- {
		d *= 2
	}
	if d > rerouteBackoffMax {
		d = rerouteBackoffMax
	}
	return d
}

// handleLinkStateChange is the service's fault-injection hook: every
// transition invalidates the route cache, and a transition to Down reroutes
// every in-flight request whose live path crosses the dead link. It fires
// after the link itself has drained (EGP errors for queued hop CREATEs have
// already arrived through handleLinkError), so this pass catches requests
// whose hops on the link were past the queue — mid-swap or fully delivered.
func (s *Service) handleLinkStateChange(l *netsim.Link, old, st netsim.LinkState) {
	s.router.Invalidate()
	if st != netsim.LinkDown {
		return
	}
	ids := make([]RequestID, 0, len(s.requests))
	for id := range s.requests {
		ids = append(ids, id)
	}
	slices.Sort(ids) // deterministic order over the request map
	for _, id := range ids {
		r := s.requests[id]
		if r == nil || r.finished() || !slices.Contains(r.path.Links, l) {
			continue
		}
		s.rerouteRequest(r, l)
	}
}

// rerouteRequest tears down a request's progress after the given link died
// under it and schedules a re-path attempt. It is idempotent per fault: a
// second trigger for the same outage (link-error and state-change hooks can
// both fire) only repeats the no-op cleanup.
func (s *Service) rerouteRequest(r *requestState, dead *netsim.Link) {
	if r.finished() {
		return
	}
	// Release every partially built segment — single-link pairs and swapped
	// multi-hop stretches alike. Progress under a changed path cannot be
	// trusted to compose, so the request restarts from zero pairs-in-build
	// (delivered pairs of course remain delivered).
	for _, sg := range r.segs {
		if sg.consumed || sg.delivered {
			continue
		}
		sg.consumed = true
		sg.devA.Release(sg.pair)
		sg.devB.Release(sg.pair)
		delete(s.pendingLink, sg.pair)
	}
	for _, n := range r.path.Nodes {
		delete(s.nodeSegs[n], r.id)
	}
	// Hop CREATEs on the dead link will never emit again (the EGP drained
	// them), so retire their bookkeeping now; hops on surviving links keep
	// producing until their NumPairs are done — mark them stale so their
	// pairs are released on arrival instead of feeding the swap engine.
	if r.stale == nil {
		r.stale = make(map[hopKey]bool)
	}
	for key := range r.hopOKCount {
		if key.link == dead.ID {
			delete(s.hopOwner, key)
			delete(r.hopOKCount, key)
			r.openHops--
			continue
		}
		r.stale[key] = true
	}
	if r.rerouting {
		return // a re-path attempt is already pending; it will see fresh state
	}
	if r.retries >= rerouteLimit {
		s.failRequest(r, wire.ErrLinkDown)
		return
	}
	backoff := rerouteBackoff(r.retries)
	r.retries++
	r.rerouting = true
	s.trace.Record(s.nw.Sim.Now(), obs.KindReroute, uint64(r.id), int64(r.reroutes), int64(backoff))
	sim.Schedule(s.nw.Sim, backoff, func() { s.repath(r) })
}

// repath recomputes a request's path against the current link states and
// resubmits its remaining pairs on it. No usable path — disconnected, or
// fidelity floor infeasible on every survivor — fails the request fast with
// NOROUTE rather than letting it idle out its deadline.
func (s *Service) repath(r *requestState) {
	r.rerouting = false
	if r.finished() {
		return
	}
	path, err := s.router.Path(r.req.SrcNode, r.req.DstNode)
	if err != nil {
		s.cNoRoute.Inc()
		s.failRequest(r, wire.ErrNoRoute)
		return
	}
	linkFloor := PerHopFidelityFloor(r.req.MinFidelity, path.Hops(), s.cfg.SwapGateFidelity)
	for _, l := range path.Links {
		if _, ok := l.EGPA.FEU().AlphaForFidelity(linkFloor); !ok {
			s.cNoRoute.Inc()
			s.failRequest(r, wire.ErrNoRoute)
			return
		}
	}
	r.path = path
	r.pos = make(map[int]int, len(path.Nodes))
	for i, n := range path.Nodes {
		r.pos[n] = i
	}
	r.linkFloor = linkFloor
	r.reroutes++
	s.cReroutes.Inc()
	for i, l := range path.Links {
		if code := s.submitHopCreate(r, l, path.Nodes[i], r.pairsLeft); code != wire.ErrNone {
			s.failRequest(r, code)
			return
		}
	}
}
