package network

import (
	"math"
	"testing"

	"repro/internal/egp"
	"repro/internal/netsim"
	"repro/internal/nv"
	"repro/internal/quantum"
	"repro/internal/sim"
	"repro/internal/wire"
)

// idealMemoryPlatform returns the Lab hardware with infinite memory
// coherence and no attempt dephasing: generation and gate noise stay, but
// stored qubits do not decay. Used to validate the swap engine against the
// closed-form composition rule, which assumes noiseless storage.
func idealMemoryPlatform() *nv.Platform {
	p := nv.LabPlatform()
	p.Gates.ElectronT1 = math.Inf(1)
	p.Gates.ElectronT2 = math.Inf(1)
	p.Gates.CarbonT1 = math.Inf(1)
	p.Gates.CarbonT2 = math.Inf(1)
	p.CarbonCoupling = nv.CarbonCoupling{} // no per-attempt dephasing
	return p
}

// buildService wires a network + service over a chain with the given config
// tweaks applied.
func buildService(t *testing.T, nodes int, seed int64, platform *nv.Platform, cfg Config) (*netsim.Network, *Service) {
	t.Helper()
	ncfg := netsim.DefaultConfig(netsim.Chain(nodes), nv.ScenarioLab)
	ncfg.Seed = seed
	ncfg.HoldPairs = true
	ncfg.Platform = platform
	nw, err := netsim.NewNetwork(ncfg)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return nw, svc
}

// TestEndToEndClosedFormFidelity is the subsystem's acceptance check: over a
// 4-hop chain with idealised memories, twirled link pairs and an ideal BSM,
// every delivered end-to-end pair's true fidelity must equal the closed-form
// Werner composition of its consumed link fidelities to numerical precision.
func TestEndToEndClosedFormFidelity(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol-level experiment in short mode")
	}
	nw, svc := buildService(t, 5, 7, idealMemoryPlatform(), DefaultConfig())
	var oks []OKEvent
	svc.OnOK = func(ev OKEvent) { oks = append(oks, ev) }

	const fmin = 0.35
	id, code := svc.Create(CreateRequest{SrcNode: 0, DstNode: 4, NumPairs: 2, MinFidelity: fmin})
	if code != wire.ErrNone {
		t.Fatalf("Create returned %v", code)
	}
	nw.Run(sim.DurationSeconds(4))
	svc.FinishAt(nw.Sim.Now())

	if len(oks) != 2 {
		t.Fatalf("delivered %d end-to-end pairs, want 2", len(oks))
	}
	for i, ev := range oks {
		if ev.RequestID != id || ev.Src != 0 || ev.Dst != 4 || ev.Hops != 4 {
			t.Errorf("OK %d has wrong coordinates: %+v", i, ev)
		}
		if math.Abs(ev.Fidelity-ev.Predicted) > 1e-9 {
			t.Errorf("OK %d: delivered fidelity %.12f != closed-form prediction %.12f", i, ev.Fidelity, ev.Predicted)
		}
		if ev.Fidelity < fmin {
			t.Errorf("OK %d: delivered fidelity %.4f below the requested floor %.2f", i, ev.Fidelity, fmin)
		}
		if ev.SwapLatency < 0 || ev.PairLatency <= 0 {
			t.Errorf("OK %d: nonsense latencies %+v", i, ev)
		}
	}
	if !oks[len(oks)-1].RequestDone {
		t.Errorf("last OK does not complete the request")
	}
	// 4 hops need 3 swaps per pair.
	if svc.Swaps() != 2*3 {
		t.Errorf("engine performed %d swaps, want 6", svc.Swaps())
	}
	// Completed requests must not leak qubits: with no outstanding requests
	// every link device ends empty.
	for _, l := range nw.Links {
		if n := len(l.DeviceA.OccupiedPairs()) + len(l.DeviceB.OccupiedPairs()); n != 0 {
			t.Errorf("link %s leaks %d stored pairs after completion", l.Name, n)
		}
	}
	perPath, agg := svc.Stats()
	if len(perPath) != 1 || perPath[0].Pairs != 2 || perPath[0].Completed != 1 {
		t.Errorf("path stats wrong: %+v", perPath)
	}
	if agg.Pairs != 2 || agg.OKRate <= 0 {
		t.Errorf("aggregate stats wrong: %+v", agg)
	}
}

// TestEndToEndRealisticMemoryDelivers runs the same chain on the unmodified
// Lab hardware: storage decoherence now erodes fidelity below the
// prediction, but pairs must still be delivered and accounted.
func TestEndToEndRealisticMemoryDelivers(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol-level experiment in short mode")
	}
	nw, svc := buildService(t, 4, 5, nil, DefaultConfig())
	delivered := 0
	svc.OnOK = func(ev OKEvent) {
		delivered++
		if ev.Fidelity < 0 || ev.Fidelity > 1 || ev.Predicted < 0 || ev.Predicted > 1 {
			t.Errorf("fidelity out of range: %+v", ev)
		}
	}
	if _, code := svc.Create(CreateRequest{SrcNode: 0, DstNode: 3, NumPairs: 1, MinFidelity: 0.45}); code != wire.ErrNone {
		t.Fatalf("Create returned %v", code)
	}
	nw.Run(sim.DurationSeconds(4))
	if delivered != 1 {
		t.Fatalf("delivered %d pairs on realistic hardware, want 1", delivered)
	}
}

// TestSingleHopDelivery checks the degenerate path: adjacent nodes deliver
// the link pair directly, with zero swaps.
func TestSingleHopDelivery(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol-level experiment in short mode")
	}
	nw, svc := buildService(t, 3, 2, idealMemoryPlatform(), DefaultConfig())
	var oks []OKEvent
	svc.OnOK = func(ev OKEvent) { oks = append(oks, ev) }
	if _, code := svc.Create(CreateRequest{SrcNode: 1, DstNode: 2, NumPairs: 1, MinFidelity: 0.6}); code != wire.ErrNone {
		t.Fatalf("Create returned %v", code)
	}
	nw.Run(sim.DurationSeconds(2))
	if len(oks) != 1 || oks[0].Hops != 1 {
		t.Fatalf("single-hop delivery broken: %+v", oks)
	}
	if svc.Swaps() != 0 {
		t.Fatalf("single hop performed %d swaps", svc.Swaps())
	}
	if math.Abs(oks[0].Fidelity-oks[0].Predicted) > 1e-9 {
		t.Fatalf("single-hop fidelity %.12f != prediction %.12f", oks[0].Fidelity, oks[0].Predicted)
	}
}

// TestCreateRejectsInfeasible covers the synchronous reject paths of the
// request API: unreachable fidelity floors, disconnected and out-of-range
// node pairs fail fast with NOROUTE, impossible deadlines with UNSUPP.
func TestCreateRejectsInfeasible(t *testing.T) {
	nw, svc := buildService(t, 4, 3, nil, DefaultConfig())
	var errs []ErrorEvent
	svc.OnError = func(ev ErrorEvent) { errs = append(errs, ev) }
	cases := []struct {
		req  CreateRequest
		want wire.EGPError
	}{
		{CreateRequest{SrcNode: 0, DstNode: 3, NumPairs: 1, MinFidelity: 0.95}, wire.ErrNoRoute},                              // floor unreachable across 3 hops
		{CreateRequest{SrcNode: 0, DstNode: 3, NumPairs: 4, MinFidelity: 0.5, MaxTime: sim.Millisecond}, wire.ErrUnsupported}, // deadline below any expected completion
		{CreateRequest{SrcNode: 0, DstNode: 9, NumPairs: 1, MinFidelity: 0.5}, wire.ErrNoRoute},                               // out of range
		{CreateRequest{SrcNode: 2, DstNode: 2, NumPairs: 1, MinFidelity: 0.5}, wire.ErrNoRoute},                               // trivial pair
	}
	for i, c := range cases {
		if _, code := svc.Create(c.req); code != c.want {
			t.Errorf("case %d: Create returned %v, want %v", i, code, c.want)
		}
	}
	if len(errs) != len(cases) {
		t.Errorf("expected %d error events, got %d", len(cases), len(errs))
	}
	_ = nw
}

// TestTimeoutReleasesResources submits a request whose deadline passes
// feasibility but expires mid-flight for the pinned seed, and checks the
// TIMEOUT failure plus that no qubits stay held afterwards.
func TestTimeoutReleasesResources(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol-level experiment in short mode")
	}
	nw, svc := buildService(t, 5, 4, idealMemoryPlatform(), DefaultConfig())
	var errs []ErrorEvent
	done := 0
	svc.OnError = func(ev ErrorEvent) { errs = append(errs, ev) }
	svc.OnOK = func(ev OKEvent) {
		if ev.RequestDone {
			done++
		}
	}
	// The expected completion for 1 pair is a few hundred ms; a deadline just
	// above it fails for this seed while passing the feasibility check.
	est := EstimatePathSeconds(mustPath(t, svc, 0, 4), 1, PerHopFidelityFloor(0.5, 4, 1))
	if _, code := svc.Create(CreateRequest{SrcNode: 0, DstNode: 4, NumPairs: 1, MinFidelity: 0.5,
		MaxTime: sim.DurationSeconds(est * 1.01)}); code != wire.ErrNone {
		t.Fatalf("Create returned %v", code)
	}
	nw.Run(sim.DurationSeconds(4))
	if done == 0 && len(errs) == 0 {
		t.Fatalf("request neither completed nor failed")
	}
	if len(errs) > 0 && errs[0].Code != wire.ErrTimeout {
		t.Fatalf("failure code %v, want TIMEOUT", errs[0].Code)
	}
	// Whether it completed or timed out, nothing may stay held once the
	// remaining link-layer pairs drained.
	nw.Run(sim.DurationSeconds(2))
	for _, l := range nw.Links {
		if n := len(l.DeviceA.OccupiedPairs()) + len(l.DeviceB.OccupiedPairs()); n != 0 {
			t.Errorf("link %s leaks %d stored pairs after timeout", l.Name, n)
		}
	}
}

func mustPath(t *testing.T, svc *Service, src, dst int) Path {
	t.Helper()
	p, err := svc.Router().Path(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestServiceDeterminism runs the same traffic-driven configuration twice
// and requires identical delivery sequences and statistics.
func TestServiceDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol-level experiment in short mode")
	}
	run := func() ([]OKEvent, PathStats) {
		nw, svc := buildService(t, 5, 21, idealMemoryPlatform(), DefaultConfig())
		var oks []OKEvent
		svc.OnOK = func(ev OKEvent) { oks = append(oks, ev) }
		tr := svc.AttachTraffic(TrafficConfig{
			Pairs:       [][2]int{{0, 4}, {1, 3}},
			Load:        0.5,
			MaxPairs:    2,
			MinFidelity: 0.4,
		})
		tr.Start()
		nw.Run(sim.DurationSeconds(3))
		svc.FinishAt(nw.Sim.Now())
		_, agg := svc.Stats()
		return oks, agg
	}
	oks1, agg1 := run()
	oks2, agg2 := run()
	if len(oks1) == 0 {
		t.Fatalf("traffic-driven run delivered nothing")
	}
	if len(oks1) != len(oks2) {
		t.Fatalf("non-deterministic delivery count: %d vs %d", len(oks1), len(oks2))
	}
	for i := range oks1 {
		if oks1[i] != oks2[i] {
			t.Fatalf("OK %d differs between runs:\n%+v\n%+v", i, oks1[i], oks2[i])
		}
	}
	if agg1 != agg2 {
		t.Fatalf("aggregate stats differ:\n%+v\n%+v", agg1, agg2)
	}
}

// TestRouterCosts checks path choice under the three cost functions on a
// topology with a short noisy detour vs a longer path, plus the floor
// inversion round trip.
func TestRouterCosts(t *testing.T) {
	ncfg := netsim.DefaultConfig(netsim.Chain(4), nv.ScenarioLab)
	ncfg.HoldPairs = true
	nw, err := netsim.NewNetwork(ncfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"hops", "fidelity", "rate", ""} {
		cost, ok := CostByName(nw, name)
		if !ok {
			t.Fatalf("CostByName(%q) failed", name)
		}
		r := NewRouter(nw, cost)
		p, err := r.Path(0, 3)
		if err != nil {
			t.Fatalf("cost %q: %v", name, err)
		}
		if p.Hops() != 3 || p.Nodes[0] != 0 || p.Nodes[3] != 3 {
			t.Errorf("cost %q: wrong chain path %v", name, p.Nodes)
		}
	}
	if _, ok := CostByName(nw, "bogus"); ok {
		t.Errorf("CostByName accepted bogus name")
	}
	// Floor inversion: composing hops copies of the per-hop floor recovers
	// the end-to-end floor.
	for _, hops := range []int{2, 3, 4} {
		floor := PerHopFidelityFloor(0.55, hops, 1)
		fids := make([]float64, hops)
		for i := range fids {
			fids[i] = floor
		}
		if got := quantum.ComposedSwapFidelity(fids...); math.Abs(got-0.55) > 1e-9 {
			t.Errorf("hops=%d: floor inversion yields %.6f, want 0.55", hops, got)
		}
	}
	// egp import anchor: the NL lane is the network layer's default.
	if DefaultConfig().LinkPriority != egp.PriorityNL {
		t.Errorf("default link priority is not NL")
	}
}

// TestLossyChannelsBoundedResources pins the loss-handling behaviour: under
// classical frame loss a deadlined request must terminate (complete or fail
// with TIMEOUT) instead of hanging, and once the link layer drains, no
// device may still hold a qubit — lost REPLYs cost retries, not stranded
// memory.
func TestLossyChannelsBoundedResources(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol-level experiment in short mode")
	}
	ncfg := netsim.DefaultConfig(netsim.Chain(5), nv.ScenarioLab)
	ncfg.Seed = 9
	ncfg.HoldPairs = true
	ncfg.ClassicalLossProb = 0.01
	nw, err := netsim.NewNetwork(ncfg)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(nw, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	outcomes := 0
	svc.OnOK = func(ev OKEvent) {
		if ev.RequestDone {
			outcomes++
		}
	}
	svc.OnError = func(ev ErrorEvent) { outcomes++ }
	for i := 0; i < 3; i++ {
		if _, code := svc.Create(CreateRequest{SrcNode: 0, DstNode: 4, NumPairs: 1, MinFidelity: 0.35,
			MaxTime: sim.DurationSeconds(1.5)}); code != wire.ErrNone {
			t.Fatalf("Create %d returned %v", i, code)
		}
	}
	nw.Run(sim.DurationSeconds(4))
	if outcomes != 3 {
		t.Fatalf("under loss, %d of 3 deadlined requests terminated (must not hang)", outcomes)
	}
	// Let straggling link-layer pairs drain, then verify nothing is held.
	nw.Run(sim.DurationSeconds(3))
	for _, l := range nw.Links {
		if n := len(l.DeviceA.OccupiedPairs()) + len(l.DeviceB.OccupiedPairs()); n != 0 {
			t.Errorf("link %s still holds %d pairs after drain", l.Name, n)
		}
	}
}

// TestNoisyGateFloorRejection pins the gate-fidelity edge of the floor
// inversion: a BSM at or below fidelity 1/4 destroys all entanglement, so
// multi-hop requests with a positive floor must be rejected rather than
// silently served without the gate adjustment. Synchronously rejected
// requests must also show up as offered-and-no-route in the path statistics.
func TestNoisyGateFloorRejection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SwapGateFidelity = 0.2
	nw, svc := buildService(t, 4, 6, nil, cfg)
	if floor := PerHopFidelityFloor(0.5, 3, 0.2); floor != 1 {
		t.Fatalf("PerHopFidelityFloor(0.5, 3, gate=0.2) = %g, want unreachable 1", floor)
	}
	if _, code := svc.Create(CreateRequest{SrcNode: 0, DstNode: 3, NumPairs: 1, MinFidelity: 0.5}); code != wire.ErrNoRoute {
		t.Fatalf("Create with destructive BSM returned %v, want NOROUTE", code)
	}
	perPath, agg := svc.Stats()
	if len(perPath) != 1 || perPath[0].Requests != 1 || perPath[0].NoRoute != 1 || perPath[0].Failed != 0 {
		t.Errorf("synchronous no-route reject missing from path stats: %+v", perPath)
	}
	if agg.Requests != 1 || agg.NoRoute != 1 || agg.Failed != 0 {
		t.Errorf("synchronous no-route reject missing from aggregate: %+v", agg)
	}
	_ = nw
}
