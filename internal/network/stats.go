package network

import (
	"math"

	"repro/internal/metrics"
)

// pathAgg accumulates the per-path observations of one run.
type pathAgg struct {
	path        string
	hops        int
	requests    uint64
	completed   uint64
	failed      uint64
	noRoute     uint64
	reroutes    uint64
	retries     uint64
	pairs       int
	fidelity    metrics.Series
	predicted   metrics.Series
	swapLatency metrics.Series
	pairLatency metrics.Series
	ttp         metrics.Series
}

// aggFor returns (creating on first use) the aggregate bucket of a path,
// keeping first-seen order for deterministic reporting.
func (s *Service) aggFor(p Path) *pathAgg {
	key := p.String()
	agg, ok := s.aggs[key]
	if !ok {
		agg = &pathAgg{path: key, hops: p.Hops()}
		s.aggs[key] = agg
		s.aggOrder = append(s.aggOrder, key)
	}
	return agg
}

// pathAggFor is the stats bucket a request reports into: the bucket of the
// path it was submitted on, even after reroutes changed the live path.
func (s *Service) pathAggFor(r *requestState) *pathAgg {
	if r.agg != nil {
		return r.agg
	}
	return s.aggFor(r.path)
}

// PathStats summarises one path's delivered end-to-end performance (or the
// pooled aggregate when Path is "aggregate").
type PathStats struct {
	Path      string
	Hops      int
	Requests  uint64
	Completed uint64
	Failed    uint64
	// NoRoute counts synchronous no-route rejects (request never admitted:
	// disconnected under outages, or fidelity floor infeasible), separately
	// from asynchronous Failed requests. The aggregate row also folds in
	// rejects that resolved no path at all.
	NoRoute uint64
	// Reroutes counts completed re-paths of admitted requests; Retries counts
	// backoff attempts (including ones that then found no path).
	Reroutes  uint64
	Retries   uint64
	Pairs     int
	OKRate    float64 // delivered end-to-end pairs per simulated second
	Fidelity  float64 // mean delivered fidelity
	Predicted float64 // mean closed-form prediction
	// Swap latency percentiles: delivery minus last constituent link pair,
	// in seconds.
	SwapP50, SwapP90, SwapP99 float64
	// End-to-end per-pair latency percentiles: delivery minus submission.
	E2EP50, E2EP99 float64
	// Time-to-pair p99: the per-pair production time (delivery minus the
	// previous delivery of the same request; the first pair counts from
	// submission), in seconds. Unlike E2EP99 it does not accumulate across
	// a request's earlier pairs, so it is the per-class SLO signal.
	TTPP99 float64
}

// statsFrom summarises one aggregate bucket over the given interval.
func statsFrom(agg *pathAgg, seconds float64) PathStats {
	return PathStats{
		Path:      agg.path,
		Hops:      agg.hops,
		Requests:  agg.requests,
		Completed: agg.completed,
		Failed:    agg.failed,
		NoRoute:   agg.noRoute,
		Reroutes:  agg.reroutes,
		Retries:   agg.retries,
		Pairs:     agg.pairs,
		OKRate:    metrics.SafeRate(float64(agg.pairs), seconds),
		Fidelity:  agg.fidelity.Mean(),
		Predicted: agg.predicted.Mean(),
		SwapP50:   agg.swapLatency.Percentile(50),
		SwapP90:   agg.swapLatency.Percentile(90),
		SwapP99:   agg.swapLatency.Percentile(99),
		E2EP50:    agg.pairLatency.Percentile(50),
		E2EP99:    agg.pairLatency.Percentile(99),
		TTPP99:    agg.ttp.Quantile(0.99),
	}
}

// Stats returns the per-path summaries in first-seen order plus the pooled
// aggregate row, whose percentiles are true percentiles over the pooled raw
// observations (not averages of per-path percentiles).
func (s *Service) Stats() (perPath []PathStats, aggregate PathStats) {
	seconds := s.collector.DurationSeconds()
	var fid, pred, swapLat, e2eLat, ttp metrics.Series
	maxHops := 0
	for _, key := range s.aggOrder {
		agg := s.aggs[key]
		perPath = append(perPath, statsFrom(agg, seconds))
		aggregate.Requests += agg.requests
		aggregate.Completed += agg.completed
		aggregate.Failed += agg.failed
		aggregate.NoRoute += agg.noRoute
		aggregate.Reroutes += agg.reroutes
		aggregate.Retries += agg.retries
		aggregate.Pairs += agg.pairs
		if agg.hops > maxHops {
			maxHops = agg.hops
		}
		for _, v := range agg.fidelity.Values() {
			fid.Add(v)
		}
		for _, v := range agg.predicted.Values() {
			pred.Add(v)
		}
		for _, v := range agg.swapLatency.Values() {
			swapLat.Add(v)
		}
		for _, v := range agg.pairLatency.Values() {
			e2eLat.Add(v)
		}
		for _, v := range agg.ttp.Values() {
			ttp.Add(v)
		}
	}
	aggregate.Path = "aggregate"
	aggregate.Hops = maxHops
	// Rejects that resolved no path at all belong to no per-path row; they
	// are offered traffic, so the aggregate row carries them.
	aggregate.Requests += s.noPathRejects
	aggregate.NoRoute += s.noPathRejects
	aggregate.OKRate = metrics.SafeRate(float64(aggregate.Pairs), seconds)
	aggregate.Fidelity = fid.Mean()
	aggregate.Predicted = pred.Mean()
	aggregate.SwapP50 = swapLat.Percentile(50)
	aggregate.SwapP90 = swapLat.Percentile(90)
	aggregate.SwapP99 = swapLat.Percentile(99)
	aggregate.E2EP50 = e2eLat.Percentile(50)
	aggregate.E2EP99 = e2eLat.Percentile(99)
	aggregate.TTPP99 = ttp.Quantile(0.99)
	return perPath, aggregate
}

// MeanPathStats averages the same path's stats across trials in trial order,
// mirroring netsim.MeanStats: fidelity and prediction weight by delivered
// pairs, latency percentiles average only over delivering trials, and the
// helper is total on empty input (no NaN).
func MeanPathStats(rows []PathStats) PathStats {
	var out PathStats
	if len(rows) == 0 {
		return out
	}
	out.Path = rows[0].Path
	for _, r := range rows {
		if r.Hops > out.Hops {
			out.Hops = r.Hops
		}
	}
	n := float64(len(rows))
	var requests, completed, failed, noRoute, reroutes, retries, pairs, fidW, latTrials float64
	for _, r := range rows {
		requests += float64(r.Requests)
		completed += float64(r.Completed)
		failed += float64(r.Failed)
		noRoute += float64(r.NoRoute)
		reroutes += float64(r.Reroutes)
		retries += float64(r.Retries)
		pairs += float64(r.Pairs)
		out.OKRate += r.OKRate / n
		if r.Pairs > 0 {
			w := float64(r.Pairs)
			out.Fidelity += r.Fidelity * w
			out.Predicted += r.Predicted * w
			fidW += w
			out.SwapP50 += r.SwapP50
			out.SwapP90 += r.SwapP90
			out.SwapP99 += r.SwapP99
			out.E2EP50 += r.E2EP50
			out.E2EP99 += r.E2EP99
			out.TTPP99 += r.TTPP99
			latTrials++
		}
	}
	if fidW > 0 {
		out.Fidelity /= fidW
		out.Predicted /= fidW
	}
	if latTrials > 0 {
		out.SwapP50 /= latTrials
		out.SwapP90 /= latTrials
		out.SwapP99 /= latTrials
		out.E2EP50 /= latTrials
		out.E2EP99 /= latTrials
		out.TTPP99 /= latTrials
	}
	out.Requests = uint64(math.Round(requests / n))
	out.Completed = uint64(math.Round(completed / n))
	out.Failed = uint64(math.Round(failed / n))
	out.NoRoute = uint64(math.Round(noRoute / n))
	out.Reroutes = uint64(math.Round(reroutes / n))
	out.Retries = uint64(math.Round(retries / n))
	out.Pairs = int(math.Round(pairs / n))
	return out
}
