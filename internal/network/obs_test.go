package network

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/netsim"
	"repro/internal/nv"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/wire"
)

// TestE2ETraceSpans is the end-to-end acceptance check of the flight
// recorder at the network layer: a delivered 4-hop request must leave a
// CREATE-opened span containing its segment activations, swaps, corrections
// and pair deliveries in sim-time order, closed by a final OK, and the
// Chrome export of the whole trace must be valid JSON.
func TestE2ETraceSpans(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol-level experiment in short mode")
	}
	ncfg := netsim.DefaultConfig(netsim.Chain(5), nv.ScenarioLab)
	ncfg.Seed = 7
	ncfg.HoldPairs = true
	ncfg.Platform = idealMemoryPlatform()
	tracer := obs.NewTracer(1, 1<<16)
	registry := obs.NewRegistry()
	ncfg.Trace = tracer
	ncfg.Metrics = registry
	nw, err := netsim.NewNetwork(ncfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Trace = tracer
	cfg.Metrics = registry
	svc, err := NewService(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}

	id, code := svc.Create(CreateRequest{SrcNode: 0, DstNode: 4, NumPairs: 2, MinFidelity: 0.35})
	if code != wire.ErrNone {
		t.Fatalf("Create returned %v", code)
	}
	nw.Run(sim.DurationSeconds(4))
	svc.FinishAt(nw.Sim.Now())

	var span []obs.Record
	for _, r := range tracer.Records() {
		if r.Layer == obs.LayerNetwork && r.Track == uint64(id) {
			span = append(span, r)
		}
	}
	if len(span) == 0 {
		t.Fatal("request left no network-layer trace records")
	}
	if span[0].Kind != obs.KindE2ECreate || span[0].A != 0 || span[0].B != 4 {
		t.Fatalf("span does not open with CREATE(0,4): %+v", span[0])
	}
	last := span[len(span)-1]
	if last.Kind != obs.KindE2EDone {
		t.Fatalf("span does not close with OK: %+v", last)
	}
	counts := map[obs.Kind]int{}
	for i, r := range span {
		if i > 0 && r.At < span[i-1].At {
			t.Fatalf("span records out of sim-time order at %d: %+v after %+v", i, r, span[i-1])
		}
		counts[r.Kind]++
	}
	// 2 pairs over 4 hops: 4 segment activations and 3 swaps per pair, at
	// least one correction per delivered pair, one pair_ok each.
	if counts[obs.KindE2ESegment] < 8 {
		t.Errorf("span has %d segment_ok records, want >= 8", counts[obs.KindE2ESegment])
	}
	if counts[obs.KindE2ESwap] != 6 {
		t.Errorf("span has %d swap records, want 6", counts[obs.KindE2ESwap])
	}
	if counts[obs.KindE2ECorrection] < 2 {
		t.Errorf("span has %d correction records, want >= 2", counts[obs.KindE2ECorrection])
	}
	if counts[obs.KindE2EOK] != 2 {
		t.Errorf("span has %d pair_ok records, want 2", counts[obs.KindE2EOK])
	}

	// The registry must agree with the span.
	if got := registry.Counter("e2e.oks").Value(); got != 2 {
		t.Errorf("e2e.oks = %d, want 2", got)
	}
	if got := registry.Counter("e2e.swaps").Value(); got != 6 {
		t.Errorf("e2e.swaps = %d, want 6", got)
	}
	if got := registry.Counter("e2e.fails").Value(); got != 0 {
		t.Errorf("e2e.fails = %d, want 0", got)
	}
	if got := registry.Histogram("e2e.ttp_ns.nl").Count(); got != 2 {
		t.Errorf("e2e.ttp_ns.nl count = %d, want 2", got)
	}

	var buf bytes.Buffer
	if err := tracer.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("exported trace is not valid JSON")
	}
	for _, want := range []string{`"ph":"b"`, `"ph":"e"`, `"request"`, `"swap"`, `"correction"`, `"pair_ok"`} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("trace export is missing %s", want)
		}
	}
}

// TestE2ETraceTimeoutSpan: a request that expires must close its span with a
// TIMEOUT record carrying the link-layer error code, and the registry must
// count the failure.
func TestE2ETraceTimeoutSpan(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol-level experiment in short mode")
	}
	ncfg := netsim.DefaultConfig(netsim.Chain(5), nv.ScenarioLab)
	ncfg.Seed = 4
	ncfg.HoldPairs = true
	ncfg.Platform = idealMemoryPlatform()
	tracer := obs.NewTracer(1, 1<<14)
	registry := obs.NewRegistry()
	ncfg.Trace = tracer
	ncfg.Metrics = registry
	nw, err := netsim.NewNetwork(ncfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Trace = tracer
	cfg.Metrics = registry
	svc, err := NewService(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var failed bool
	svc.OnError = func(ErrorEvent) { failed = true }
	// A deadline just above the completion estimate passes the feasibility
	// check but expires for this seed (same setup as the deadline test in
	// network_test.go).
	est := EstimatePathSeconds(mustPath(t, svc, 0, 4), 1, PerHopFidelityFloor(0.5, 4, 1))
	id, code := svc.Create(CreateRequest{SrcNode: 0, DstNode: 4, NumPairs: 1, MinFidelity: 0.5,
		MaxTime: sim.DurationSeconds(est * 1.01)})
	if code != wire.ErrNone {
		t.Fatalf("Create returned %v", code)
	}
	nw.Run(sim.DurationSeconds(4))
	if !failed {
		t.Skip("request completed before its deadline under this seed; timeout path not exercised")
	}

	var span []obs.Record
	for _, r := range tracer.Records() {
		if r.Layer == obs.LayerNetwork && r.Track == uint64(id) {
			span = append(span, r)
		}
	}
	if len(span) < 2 {
		t.Fatalf("timed-out request left %d trace records, want >= 2", len(span))
	}
	if span[0].Kind != obs.KindE2ECreate {
		t.Fatalf("span does not open with CREATE: %+v", span[0])
	}
	last := span[len(span)-1]
	if last.Kind != obs.KindE2EFail {
		t.Fatalf("span does not close with TIMEOUT: %+v", last)
	}
	if wire.EGPError(last.B) != wire.ErrTimeout {
		t.Errorf("TIMEOUT record carries code %v, want %v", wire.EGPError(last.B), wire.ErrTimeout)
	}
	if got := registry.Counter("e2e.fails").Value(); got != 1 {
		t.Errorf("e2e.fails = %d, want 1", got)
	}
}
