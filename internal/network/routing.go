package network

import (
	"container/heap"
	"fmt"
	"math"
	"slices"

	"repro/internal/netsim"
	"repro/internal/quantum"
	"repro/internal/workload"
)

// CostFunc assigns a traversal cost to one link; path costs add. Costs must
// be positive so Dijkstra's invariants hold.
type CostFunc func(*netsim.Link) float64

// CostHops is the shortest-path baseline: every link costs 1.
func CostHops(*netsim.Link) float64 { return 1 }

// referenceAlpha is the bright-state population at which link quality is
// probed for routing costs: small enough to be near the hardware's best
// fidelity, large enough to generate at a useful rate.
const referenceAlpha = 0.1

// LinkQuality estimates a link's achievable fidelity and create-and-keep
// pair rate (pairs per second) at the reference generation setting, from the
// link's own fidelity estimation unit and platform constants. Both are
// deterministic functions of the hardware model, so every node computing
// routes sees identical values.
func LinkQuality(nw *netsim.Network, l *netsim.Link) (fidelity, rate float64) {
	feu := l.EGPA.FEU()
	fidelity = feu.BaseEstimate(referenceAlpha)
	seconds := feu.EstimateCompletionSeconds(1, referenceAlpha, true)
	if seconds > 0 && !math.IsInf(seconds, 1) {
		rate = 1 / seconds
	}
	return fidelity, rate
}

// CostFidelity favours high-fidelity paths: the cost is −log of the link's
// estimated Werner weight, so minimising the path sum maximises the composed
// end-to-end fidelity under the swap composition rule. Links too noisy to
// swap at all (weight ≤ 0) are effectively unusable.
func CostFidelity(nw *netsim.Network) CostFunc {
	return func(l *netsim.Link) float64 {
		f, _ := LinkQuality(nw, l)
		w := quantum.WernerWeight(f)
		if w <= 0 {
			return math.Inf(1)
		}
		return -math.Log(w)
	}
}

// CostRate favours high-throughput paths: the cost of a link is the expected
// seconds per create-and-keep pair, so minimising the path sum minimises the
// serial generation time of one end-to-end pair.
func CostRate(nw *netsim.Network) CostFunc {
	return func(l *netsim.Link) float64 {
		_, r := LinkQuality(nw, l)
		if r <= 0 {
			return math.Inf(1)
		}
		return 1 / r
	}
}

// CostByName resolves a cost-function name ("hops", "fidelity" or "rate")
// for CLI flag parsing.
func CostByName(nw *netsim.Network, name string) (CostFunc, bool) {
	switch name {
	case "", "hops":
		return CostHops, true
	case "fidelity":
		return CostFidelity(nw), true
	case "rate":
		return CostRate(nw), true
	default:
		return nil, false
	}
}

// Path is a loop-free route through the network: the node sequence and the
// link of every hop (Links[i] connects Nodes[i] and Nodes[i+1]).
type Path struct {
	Nodes []int
	Links []*netsim.Link
	Cost  float64
}

// Hops returns the number of links on the path.
func (p Path) Hops() int { return len(p.Links) }

// String renders the path as "n0>n1>n2".
func (p Path) String() string {
	s := ""
	for i, n := range p.Nodes {
		if i > 0 {
			s += ">"
		}
		s += fmt.Sprintf("n%d", n)
	}
	return s
}

// degradedCostFactor re-weights links in the Degraded admin state so routing
// prefers healthy alternatives but still crosses a degraded link when it is
// the only way through.
const degradedCostFactor = 8

// Router computes paths over a netsim topology with a pluggable link cost.
// Routes are computed once per (src, dst) pair and cached; the cost function
// is evaluated at construction so route choice is stable over a run. Link
// admin state modulates the static costs at search time — Down links are
// excluded, Degraded links re-weighted — and the fault injector's state
// transitions invalidate the cache (see Invalidate), so recomputed routes
// steer around failures.
type Router struct {
	nw    *netsim.Network
	costs []float64 // by LinkID
	// adjacency[n] lists (neighbour, link) in deterministic neighbour order.
	adjacency [][]adjEntry
	cache     map[[2]int]Path
}

type adjEntry struct {
	to   int
	link *netsim.Link
}

// NewRouter builds a router over the network with the given cost function
// (nil means CostHops).
func NewRouter(nw *netsim.Network, cost CostFunc) *Router {
	if cost == nil {
		cost = CostHops
	}
	r := &Router{
		nw:        nw,
		costs:     make([]float64, len(nw.Links)),
		adjacency: make([][]adjEntry, len(nw.Nodes)),
		cache:     make(map[[2]int]Path),
	}
	for i, l := range nw.Links {
		c := cost(l)
		if c <= 0 {
			c = 1e-12
		}
		r.costs[i] = c
		r.adjacency[l.Edge.A] = append(r.adjacency[l.Edge.A], adjEntry{to: l.Edge.B, link: l})
		r.adjacency[l.Edge.B] = append(r.adjacency[l.Edge.B], adjEntry{to: l.Edge.A, link: l})
	}
	return r
}

// Invalidate drops every cached route. The service calls it on each link
// admin-state transition so the next Path query sees the current topology.
func (r *Router) Invalidate() { clear(r.cache) }

// linkCost is a link's static cost modulated by its admin state.
func (r *Router) linkCost(l *netsim.Link) float64 {
	c := r.costs[l.ID]
	if l.State() == netsim.LinkDegraded {
		c *= degradedCostFactor
	}
	return c
}

// pqItem is one Dijkstra frontier entry; ties break on node index so the
// chosen paths are deterministic.
type pqItem struct {
	node int
	dist float64
}

type pq []pqItem

func (q pq) Len() int { return len(q) }
func (q pq) Less(i, j int) bool {
	if q[i].dist != q[j].dist {
		return q[i].dist < q[j].dist
	}
	return q[i].node < q[j].node
}
func (q pq) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)   { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any     { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// Path returns the minimum-cost route from src to dst, or an error when the
// nodes are disconnected or out of range.
func (r *Router) Path(src, dst int) (Path, error) {
	n := len(r.nw.Nodes)
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return Path{}, fmt.Errorf("network: node pair %d-%d out of range for %d nodes", src, dst, n)
	}
	if src == dst {
		return Path{}, fmt.Errorf("network: trivial path %d-%d", src, dst)
	}
	if p, ok := r.cache[[2]int{src, dst}]; ok {
		return p, nil
	}
	dist := make([]float64, n)
	prevNode := make([]int, n)
	prevLink := make([]*netsim.Link, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prevNode[i] = -1
	}
	dist[src] = 0
	frontier := &pq{{node: src}}
	for frontier.Len() > 0 {
		it := heap.Pop(frontier).(pqItem)
		if done[it.node] {
			continue
		}
		done[it.node] = true
		if it.node == dst {
			break
		}
		for _, e := range r.adjacency[it.node] {
			if e.link.State() == netsim.LinkDown {
				continue
			}
			if c := dist[it.node] + r.linkCost(e.link); c < dist[e.to] {
				dist[e.to] = c
				prevNode[e.to] = it.node
				prevLink[e.to] = e.link
				heap.Push(frontier, pqItem{node: e.to, dist: c})
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return Path{}, fmt.Errorf("network: nodes %d and %d are disconnected", src, dst)
	}
	p := Path{Cost: dist[dst]}
	for at := dst; at != -1; at = prevNode[at] {
		p.Nodes = append(p.Nodes, at)
		if prevLink[at] != nil {
			p.Links = append(p.Links, prevLink[at])
		}
	}
	slices.Reverse(p.Nodes)
	slices.Reverse(p.Links)
	r.cache[[2]int{src, dst}] = p
	return p, nil
}

// PerHopFidelityFloor inverts the end-to-end fidelity floor of a request
// into the per-link floor every hop must meet: the end-to-end Werner weight
// is the product of the per-hop weights (and the swap-gate factors), so each
// hop needs the hops-th root.
func PerHopFidelityFloor(e2eFloor float64, hops int, swapGateFidelity float64) float64 {
	if hops <= 1 {
		return e2eFloor
	}
	w := quantum.WernerWeight(e2eFloor)
	if w <= 0 {
		return e2eFloor
	}
	// hops-1 swaps contribute two gate factors each. A BSM at or below
	// fidelity 1/4 destroys all entanglement, so no per-hop floor can meet a
	// positive end-to-end floor: report the unreachable floor 1 and let
	// Create reject the request instead of silently dropping the gate term.
	g := quantum.DepolarizingWeightFactor(swapGateFidelity)
	if g <= 0 {
		return 1
	}
	w /= math.Pow(g, 2*float64(hops-1))
	if w >= 1 {
		return 1 // unreachable floor; Create will reject it
	}
	return quantum.WernerFidelity(math.Pow(w, 1/float64(hops)))
}

// EstimatePathSeconds returns a lower bound on the time to deliver numPairs
// end-to-end pairs over the path: the slowest hop's expected link-layer
// completion time at the per-hop fidelity floor (hops generate in parallel,
// so the bottleneck dominates). +Inf when any hop cannot reach the floor.
func EstimatePathSeconds(p Path, numPairs int, linkFloor float64) float64 {
	worst := 0.0
	for _, l := range p.Links {
		feu := l.EGPA.FEU()
		alpha, ok := feu.AlphaForFidelity(linkFloor)
		if !ok {
			return math.Inf(1)
		}
		if s := feu.EstimateCompletionSeconds(numPairs, alpha, true); s > worst {
			worst = s
		}
	}
	return worst
}

// PathPairRate estimates the end-to-end pair rate of a path at the given
// per-link fidelity floor: the bottleneck hop's create-and-keep pair rate
// (swapping consumes one pair per hop, and hops generate concurrently).
func PathPairRate(nw *netsim.Network, p Path, linkFloor float64) float64 {
	rate := math.Inf(1)
	for _, l := range p.Links {
		r := workload.RatePerSecond(l.EGPA.FEU(), nw.Platform, true, 1, linkFloor, 1)
		if r < rate {
			rate = r
		}
	}
	if math.IsInf(rate, 1) {
		return 0
	}
	return rate
}
