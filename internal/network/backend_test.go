package network

import (
	"math"
	"testing"

	"repro/internal/netsim"
	"repro/internal/nv"
	"repro/internal/quantum"
	"repro/internal/sim"
	"repro/internal/wire"
)

// runBackendChain drives the ideal-memory 4-hop repeater chain on the given
// backend and returns the delivered OK events in order.
func runBackendChain(t *testing.T, backend quantum.Backend) []OKEvent {
	t.Helper()
	ncfg := netsim.DefaultConfig(netsim.Chain(5), nv.ScenarioLab)
	ncfg.Seed = 11
	ncfg.HoldPairs = true
	ncfg.Platform = idealMemoryPlatform()
	ncfg.Backend = backend
	nw, err := netsim.NewNetwork(ncfg)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(nw, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var oks []OKEvent
	svc.OnOK = func(ev OKEvent) { oks = append(oks, ev) }
	if _, code := svc.Create(CreateRequest{SrcNode: 0, DstNode: 4, NumPairs: 2, MinFidelity: 0.35}); code != wire.ErrNone {
		t.Fatalf("Create returned %v", code)
	}
	nw.Run(sim.DurationSeconds(4))
	svc.FinishAt(nw.Sim.Now())
	return oks
}

// The Bell-diagonal backend must reproduce the dense backend's end-to-end
// deliveries on the twirled ideal-memory platform: same number of pairs at
// the same simulated times with the same closed-form predictions, and true
// fidelities matching to the 1e-9 equivalence bound (twirled link pairs are
// Werner, so the fast path is exact there).
func TestBackendEquivalenceEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol-level experiment in short mode")
	}
	dense := runBackendChain(t, quantum.BackendDense)
	bell := runBackendChain(t, quantum.BackendBellDiagonal)
	if len(dense) == 0 || len(dense) != len(bell) {
		t.Fatalf("delivery counts differ: dense %d belldiag %d", len(dense), len(bell))
	}
	for i := range dense {
		d, b := dense[i], bell[i]
		if d.At != b.At || d.Hops != b.Hops || d.RequestID != b.RequestID {
			t.Errorf("OK %d coordinates differ: dense %+v belldiag %+v", i, d, b)
		}
		if math.Abs(d.Predicted-b.Predicted) > 1e-9 {
			t.Errorf("OK %d: predicted fidelity differs: dense %.12f belldiag %.12f", i, d.Predicted, b.Predicted)
		}
		if math.Abs(d.Fidelity-b.Fidelity) > 1e-9 {
			t.Errorf("OK %d: delivered fidelity differs: dense %.12f belldiag %.12f", i, d.Fidelity, b.Fidelity)
		}
	}
}
