package egp

import (
	"fmt"
)

// Scheduler selects which ready request the link layer should serve next
// (Section 5.2.4). Implementations must be deterministic functions of the
// shared queue state so that both nodes select the same request without
// extra communication.
type Scheduler interface {
	// Next returns the item to serve at the given MHP cycle from the ready
	// items of the distributed queue, or nil when nothing is ready.
	Next(q *DistributedQueue, cycle uint64) *QueueItem
	// Stamp assigns scheduler-specific metadata (e.g. the WFQ virtual finish
	// time) to a new item before it is enqueued. Only the queue master
	// stamps items; the value travels to the peer inside the ADD frame.
	Stamp(item *QueueItem)
	// Name identifies the strategy in experiment output.
	Name() string
}

// isReady reports whether an item may be served at the cycle. Schedulers run
// once per MHP cycle, so they iterate the lanes in place instead of
// materialising ready-item slices.
func isReady(it *QueueItem, cycle uint64) bool {
	return it.Ready(cycle) && it.PairsLeft > 0
}

// firstReady returns the first servable item of one lane in queue order, or
// nil when none is ready.
func firstReady(q *DistributedQueue, priority int, cycle uint64) *QueueItem {
	for _, it := range q.Items(priority) {
		if isReady(it, cycle) {
			return it
		}
	}
	return nil
}

// FCFSScheduler serves requests strictly in arrival order across all
// priority lanes (a single logical queue), the baseline strategy of
// Section 6.3.
type FCFSScheduler struct{}

// NewFCFS returns the first-come-first-serve scheduler.
func NewFCFS() *FCFSScheduler { return &FCFSScheduler{} }

// Name implements Scheduler.
func (s *FCFSScheduler) Name() string { return "FCFS" }

// Stamp implements Scheduler; FCFS orders by schedule cycle so no extra
// metadata is needed.
func (s *FCFSScheduler) Stamp(item *QueueItem) {}

// Next picks the ready item that was scheduled earliest, breaking ties by
// (queue, sequence) so both nodes agree.
func (s *FCFSScheduler) Next(q *DistributedQueue, cycle uint64) *QueueItem {
	var best *QueueItem
	for priority := 0; priority < NumQueues; priority++ {
		for _, it := range q.Items(priority) {
			if isReady(it, cycle) && (best == nil || lessFCFS(it, best)) {
				best = it
			}
		}
	}
	return best
}

func lessFCFS(a, b *QueueItem) bool {
	if a.ScheduleCycle != b.ScheduleCycle {
		return a.ScheduleCycle < b.ScheduleCycle
	}
	if a.ID.QueueID != b.ID.QueueID {
		return a.ID.QueueID < b.ID.QueueID
	}
	return a.ID.QueueSeq < b.ID.QueueSeq
}

// WFQScheduler gives strict priority to the NL lane and arbitrates between
// the CK and MD lanes with weighted fair queuing (Section 6.3, "LowerWFQ"
// with CK weight 2 and "HigherWFQ" with CK weight 10 in Appendix C.2).
type WFQScheduler struct {
	// WeightCK and WeightMD are the WFQ weights of the CK and MD lanes.
	WeightCK float64
	WeightMD float64

	// virtualTime advances as pairs are served; virtual finish times are
	// stamped from it at enqueue.
	virtualTime    float64
	lastFinish     [NumQueues]float64
	strictPriority bool
	name           string
}

// NewHigherWFQ returns the paper's HigherWFQ strategy: NL strict priority,
// CK weight 10, MD weight 1.
func NewHigherWFQ() *WFQScheduler {
	return &WFQScheduler{WeightCK: 10, WeightMD: 1, strictPriority: true, name: "HigherWFQ"}
}

// NewLowerWFQ returns the paper's LowerWFQ strategy: NL strict priority, CK
// weight 2, MD weight 1.
func NewLowerWFQ() *WFQScheduler {
	return &WFQScheduler{WeightCK: 2, WeightMD: 1, strictPriority: true, name: "LowerWFQ"}
}

// Name implements Scheduler.
func (s *WFQScheduler) Name() string {
	if s.name != "" {
		return s.name
	}
	return fmt.Sprintf("WFQ(%g:%g)", s.WeightCK, s.WeightMD)
}

// Stamp assigns the item's virtual finish time: the maximum of the current
// virtual time and the lane's previous finish time, plus the item's service
// demand (pairs × expected cycles) divided by the lane weight.
func (s *WFQScheduler) Stamp(item *QueueItem) {
	lane := int(item.Priority)
	weight := 1.0
	switch lane {
	case PriorityCK:
		weight = s.WeightCK
	case PriorityMD:
		weight = s.WeightMD
	case PriorityNL:
		// NL is served with strict priority; its stamp is only used to
		// order NL items among themselves.
		weight = 1
	}
	demand := float64(item.NumPairs) * float64(maxU32(item.EstCyclesPerPair, 1))
	start := s.virtualTime
	if s.lastFinish[lane] > start {
		start = s.lastFinish[lane]
	}
	finish := start + demand/weight
	s.lastFinish[lane] = finish
	item.VirtualFinish = uint64(finish)
}

func maxU32(v uint32, min uint32) uint32 {
	if v < min {
		return min
	}
	return v
}

// Next implements Scheduler: NL first (in queue order), then the CK/MD item
// with the smallest virtual finish time.
func (s *WFQScheduler) Next(q *DistributedQueue, cycle uint64) *QueueItem {
	if s.strictPriority {
		if nl := firstReady(q, PriorityNL, cycle); nl != nil {
			return nl
		}
	}
	var best *QueueItem
	for _, priority := range [...]int{PriorityCK, PriorityMD} {
		for _, it := range q.Items(priority) {
			if isReady(it, cycle) && (best == nil || lessWFQ(it, best)) {
				best = it
			}
		}
	}
	if best == nil && !s.strictPriority {
		if nl := firstReady(q, PriorityNL, cycle); nl != nil {
			return nl
		}
	}
	// Advance virtual time to the served item's stamp so later arrivals do
	// not start in the past.
	if best != nil && float64(best.VirtualFinish) > s.virtualTime {
		s.virtualTime = float64(best.VirtualFinish)
	}
	return best
}

func lessWFQ(a, b *QueueItem) bool {
	if a.VirtualFinish != b.VirtualFinish {
		return a.VirtualFinish < b.VirtualFinish
	}
	if a.ID.QueueID != b.ID.QueueID {
		return a.ID.QueueID < b.ID.QueueID
	}
	return a.ID.QueueSeq < b.ID.QueueSeq
}

// NewScheduler returns a scheduler by its experiment name ("FCFS",
// "LowerWFQ", "HigherWFQ").
func NewScheduler(name string) Scheduler {
	switch name {
	case "FCFS", "fcfs", "":
		return NewFCFS()
	case "LowerWFQ", "lowerwfq":
		return NewLowerWFQ()
	case "HigherWFQ", "higherwfq", "WFQ", "wfq":
		return NewHigherWFQ()
	default:
		panic("egp: unknown scheduler " + name)
	}
}
