package egp

import (
	"math"

	"repro/internal/metrics"
	"repro/internal/nv"
	"repro/internal/photonics"
)

// FidelityEstimationUnit (FEU, Section 5.2.3) converts a requested minimum
// fidelity into generation parameters (the bright-state population α) and a
// minimum completion-time estimate, and maintains a running estimate of the
// link quality from interspersed test rounds (Appendix B).
type FidelityEstimationUnit struct {
	platform *nv.Platform
	sampler  *photonics.LinkSampler

	// alphaCap bounds the bright-state population from above; α close to 1
	// produces almost no entanglement, and hardware control typically limits
	// it to ≈0.5.
	alphaCap float64

	// storageMargin is the fidelity head-room reserved for storage and
	// post-processing noise when inverting Fmin to α.
	storageMargin float64

	// Test-round machinery: a window of QBER samples from measured pairs.
	testWindow   int
	testCounter  *metrics.QBERCounter
	testRecorded int

	// cache of Fmin → α solutions.
	alphaCache map[float64]float64
}

// NewFEU builds a fidelity estimation unit for a platform.
func NewFEU(platform *nv.Platform, sampler *photonics.LinkSampler) *FidelityEstimationUnit {
	return &FidelityEstimationUnit{
		platform:      platform,
		sampler:       sampler,
		alphaCap:      0.5,
		storageMargin: 0.0,
		testWindow:    1000,
		testCounter:   metrics.NewQBERCounterPsiPlus(),
		alphaCache:    make(map[float64]float64),
	}
}

// SetStorageMargin reserves head-room in the α inversion for downstream
// storage noise (used by tests and by K-heavy configurations).
func (f *FidelityEstimationUnit) SetStorageMargin(m float64) { f.storageMargin = m }

// AlphaForFidelity returns the largest bright-state population whose
// expected heralded-state fidelity still meets Fmin (plus the storage
// margin). The second return value is false when even the smallest usable α
// cannot reach the target.
func (f *FidelityEstimationUnit) AlphaForFidelity(fmin float64) (float64, bool) {
	if cached, ok := f.alphaCache[fmin]; ok {
		return cached, cached > 0
	}
	target := fmin + f.storageMargin
	if target > 1 {
		f.alphaCache[fmin] = 0
		return 0, false
	}
	// The expected fidelity is monotone decreasing in α, so binary search
	// for the largest α meeting the target.
	const minAlpha = 1e-3
	if f.sampler.ExpectedSuccessFidelity(minAlpha, minAlpha) < target {
		f.alphaCache[fmin] = 0
		return 0, false
	}
	lo, hi := minAlpha, f.alphaCap
	if f.sampler.ExpectedSuccessFidelity(hi, hi) >= target {
		f.alphaCache[fmin] = hi
		return hi, true
	}
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if f.sampler.ExpectedSuccessFidelity(mid, mid) >= target {
			lo = mid
		} else {
			hi = mid
		}
	}
	f.alphaCache[fmin] = lo
	return lo, true
}

// SuccessProbability returns the per-attempt herald success probability for
// a bright-state population.
func (f *FidelityEstimationUnit) SuccessProbability(alpha float64) float64 {
	return f.platform.SuccessProbability(f.sampler, alpha)
}

// EstimateCompletionCycles estimates how many MHP cycles are needed to
// deliver numPairs pairs at the given α for the given request type: the
// expected cycles per attempt E divided by the per-attempt success
// probability, times the number of pairs.
func (f *FidelityEstimationUnit) EstimateCompletionCycles(numPairs int, alpha float64, keep bool) float64 {
	p := f.SuccessProbability(alpha)
	if p <= 0 {
		return math.Inf(1)
	}
	rt := nv.RequestMeasure
	if keep {
		rt = nv.RequestKeep
	}
	e := f.platform.ExpectedCyclesPerAttempt[rt]
	if e < 1 {
		e = 1
	}
	return float64(numPairs) * e / p
}

// EstimateCompletionSeconds converts EstimateCompletionCycles into seconds
// using the platform's base MHP cycle time.
func (f *FidelityEstimationUnit) EstimateCompletionSeconds(numPairs int, alpha float64, keep bool) float64 {
	cycles := f.EstimateCompletionCycles(numPairs, alpha, keep)
	if math.IsInf(cycles, 1) {
		return math.Inf(1)
	}
	return cycles * f.platform.CycleTime[nv.RequestMeasure].Seconds()
}

// BaseEstimate returns the a-priori fidelity estimate for pairs generated at
// the given α (before test-round refinement): the heralded-state fidelity of
// the optical model.
func (f *FidelityEstimationUnit) BaseEstimate(alpha float64) float64 {
	return f.sampler.ExpectedSuccessFidelity(alpha, alpha)
}

// RecordTestOutcome feeds one measured correlation (from a test round or an
// MD pair) into the estimator. basis is 0=Z, 1=X, 2=Y.
func (f *FidelityEstimationUnit) RecordTestOutcome(basis int, outcomeA, outcomeB int) {
	if f.testRecorded >= f.testWindow {
		// Start a fresh window so the estimate tracks drift.
		f.testCounter = metrics.NewQBERCounterPsiPlus()
		f.testRecorded = 0
	}
	f.testCounter.Record(basis, outcomeA, outcomeB)
	f.testRecorded++
}

// TestRoundSamples returns how many outcomes the current window holds.
func (f *FidelityEstimationUnit) TestRoundSamples() int { return f.testCounter.Samples() }

// Goodness returns the fidelity estimate attached to OK messages: the
// test-round estimate once enough samples exist, otherwise the base
// estimate for the α in use.
func (f *FidelityEstimationUnit) Goodness(alpha float64) float64 {
	const minSamples = 30
	if f.testCounter.Samples() >= minSamples {
		return f.testCounter.FidelityEstimate()
	}
	return f.BaseEstimate(alpha)
}

// QBEREstimate returns the current measured QBER per basis (Z, X, Y).
func (f *FidelityEstimationUnit) QBEREstimate() (z, x, y float64) { return f.testCounter.Rates() }
