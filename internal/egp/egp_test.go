package egp

import (
	"math"
	"testing"

	"repro/internal/classical"
	"repro/internal/mhp"
	"repro/internal/nv"
	"repro/internal/photonics"
	"repro/internal/quantum"
	"repro/internal/sim"
	"repro/internal/wire"
)

// egpFixture wires a single EGP against stub channels so unit tests can
// exercise the protocol logic without the full network.
type egpFixture struct {
	s          *sim.Simulator
	egp        *EGP
	device     *nv.Device
	registry   *mhp.PairRegistry
	sentToPeer [][]byte
	oks        []OKEvent
	errs       []ErrorEvent
	expires    []ExpireEvent
}

func newEGPFixture(t *testing.T, keepMultiplex bool) *egpFixture {
	t.Helper()
	f := &egpFixture{s: sim.New(5)}
	platform := nv.LabPlatform()
	f.device = nv.NewDevice("A", platform.Gates, platform.CarbonCoupling, platform.MemoryQubits)
	f.registry = mhp.NewPairRegistry()
	sampler := photonics.NewLinkSampler(platform.Optics)
	// The peer channel records sent frames without delivering them anywhere.
	toPeer := classical.NewChannel("a->b", f.s, 10*sim.Microsecond, 0, func(classical.Message) {})
	f.egp = New(Config{
		NodeName:             "A",
		NodeID:               1,
		PeerID:               2,
		IsMaster:             true,
		Sim:                  f.s,
		Platform:             platform,
		Device:               f.device,
		Sampler:              sampler,
		Registry:             f.registry,
		Side:                 nv.SideA,
		Scheduler:            NewFCFS(),
		ToPeer:               toPeer,
		OnOK:                 func(ev OKEvent) { f.oks = append(f.oks, ev) },
		OnError:              func(ev ErrorEvent) { f.errs = append(f.errs, ev) },
		OnExpire:             func(ev ExpireEvent) { f.expires = append(f.expires, ev) },
		EmissionMultiplexing: keepMultiplex,
		AutoRelease:          true,
	})
	return f
}

// confirmAll marks every queue item as confirmed, bypassing the DQP
// handshake (which has its own tests).
func (f *egpFixture) confirmAll() {
	for _, it := range f.egp.Queue().AllItems() {
		it.confirmed = true
	}
}

func (f *egpFixture) registerPair(seq uint16, bell quantum.BellState) *nv.EntangledPair {
	pair := nv.NewEntangledPair(quantum.NewBellState(bell), bell, f.s.Now())
	f.registry.Put(seq, pair)
	return pair
}

func TestCreateAcceptsAndQueues(t *testing.T) {
	f := newEGPFixture(t, true)
	id, code := f.egp.Create(CreateRequest{NumPairs: 2, Keep: true, MinFidelity: 0.6, Priority: PriorityCK})
	if code != wire.ErrNone {
		t.Fatalf("expected acceptance, got %v", code)
	}
	if f.egp.Queue().TotalLen() != 1 {
		t.Fatal("request should be queued")
	}
	item := f.egp.Queue().AllItems()[0]
	if item.CreateID != id || item.NumPairs != 2 || !item.Keep {
		t.Fatalf("queued item fields wrong: %+v", item)
	}
	if item.Alpha <= 0 || item.Alpha > 0.5 {
		t.Fatalf("generation parameter alpha not derived: %v", item.Alpha)
	}
	if item.ScheduleCycle == 0 {
		t.Fatal("min_time schedule cycle should be set")
	}
}

func TestCreateUnsupportedFidelity(t *testing.T) {
	f := newEGPFixture(t, true)
	_, code := f.egp.Create(CreateRequest{NumPairs: 1, Keep: true, MinFidelity: 0.999, Priority: PriorityCK})
	if code != wire.ErrUnsupported {
		t.Fatalf("expected UNSUPP, got %v", code)
	}
	if len(f.errs) != 1 || f.errs[0].Code != wire.ErrUnsupported {
		t.Fatal("UNSUPP error event should be emitted")
	}
	if f.egp.Queue().TotalLen() != 0 {
		t.Fatal("unsupported request must not be queued")
	}
}

func TestCreateImpossibleDeadline(t *testing.T) {
	f := newEGPFixture(t, true)
	_, code := f.egp.Create(CreateRequest{NumPairs: 50, Keep: true, MinFidelity: 0.6, MaxTime: sim.Microsecond, Priority: PriorityCK})
	if code != wire.ErrUnsupported {
		t.Fatalf("expected UNSUPP for impossible deadline, got %v", code)
	}
}

func TestCreateAtomicTooLarge(t *testing.T) {
	f := newEGPFixture(t, true)
	_, code := f.egp.Create(CreateRequest{NumPairs: 5, Keep: true, Atomic: true, MinFidelity: 0.6, Priority: PriorityCK})
	if code != wire.ErrMemExceeded {
		t.Fatalf("expected MEMEXCEEDED, got %v", code)
	}
}

func TestPollTriggersAfterMinTime(t *testing.T) {
	f := newEGPFixture(t, true)
	f.egp.Create(CreateRequest{NumPairs: 1, Keep: true, MinFidelity: 0.6, Priority: PriorityCK})
	f.confirmAll()
	item := f.egp.Queue().AllItems()[0]
	// Before min_time: no attempt.
	if d := f.egp.PollTrigger(item.ScheduleCycle - 1); d.Attempt {
		t.Fatal("attempt before min_time")
	}
	// After min_time (and outside the periodic carbon re-initialisation
	// window, which blocks K attempts): attempt with the request's
	// parameters.
	d := f.egp.PollTrigger(item.ScheduleCycle + 50)
	if !d.Attempt || !d.Keep {
		t.Fatalf("expected a K attempt, got %+v", d)
	}
	if d.QueueID != item.ID {
		t.Fatal("attempt should reference the queue item")
	}
	if math.Abs(d.Alpha-item.Alpha) > 1e-12 {
		t.Fatal("attempt should use the item's alpha")
	}
	if d.StorageQubit == nv.CommQubitID {
		t.Fatal("with a free memory qubit the pair should be scheduled for storage")
	}
	// While the K attempt is outstanding, no further attempts are triggered.
	if d2 := f.egp.PollTrigger(item.ScheduleCycle + 51); d2.Attempt {
		t.Fatal("no second K attempt while one is outstanding")
	}
}

func TestKeepSuccessDeliversOK(t *testing.T) {
	f := newEGPFixture(t, true)
	f.egp.Create(CreateRequest{NumPairs: 1, Keep: true, MinFidelity: 0.6, Priority: PriorityCK})
	f.confirmAll()
	item := f.egp.Queue().AllItems()[0]
	d := f.egp.PollTrigger(item.ScheduleCycle + 50)
	if !d.Attempt {
		t.Fatal("expected attempt")
	}
	pair := f.registerPair(1, quantum.PsiPlus)
	f.egp.HandleResult(mhp.Result{
		Outcome: wire.OutcomeStateOne, MHPSeq: 1, QueueID: item.ID,
		Keep: true, StorageQubit: d.StorageQubit, Alpha: d.Alpha, Pair: pair,
	})
	if len(f.oks) != 1 {
		t.Fatalf("expected 1 OK, got %d", len(f.oks))
	}
	ok := f.oks[0]
	if !ok.Keep || !ok.RequestDone || ok.PairsRemaining != 0 {
		t.Fatalf("OK fields wrong: %+v", ok)
	}
	if ok.Fidelity < 0.9 {
		t.Fatalf("a perfect registered pair should deliver high fidelity, got %v", ok.Fidelity)
	}
	if f.egp.Queue().TotalLen() != 0 {
		t.Fatal("completed request should leave the queue")
	}
	if f.egp.ExpectedSeq() != 2 {
		t.Fatalf("expected sequence should advance to 2, got %d", f.egp.ExpectedSeq())
	}
}

func TestPsiMinusCorrectionAtOrigin(t *testing.T) {
	f := newEGPFixture(t, true)
	f.egp.Create(CreateRequest{NumPairs: 1, Keep: true, MinFidelity: 0.6, Priority: PriorityCK})
	f.confirmAll()
	item := f.egp.Queue().AllItems()[0]
	d := f.egp.PollTrigger(item.ScheduleCycle + 50)
	pair := f.registerPair(1, quantum.PsiMinus)
	f.egp.HandleResult(mhp.Result{
		Outcome: wire.OutcomeStateTwo, MHPSeq: 1, QueueID: item.ID,
		Keep: true, StorageQubit: d.StorageQubit, Alpha: d.Alpha, Pair: pair,
	})
	if pair.HeraldedAs != quantum.PsiPlus {
		t.Fatal("origin should convert the heralded Ψ− into Ψ+")
	}
	if f := pair.State.BellFidelity(quantum.PsiPlus); f < 0.9 {
		t.Fatalf("corrected pair fidelity too low: %v", f)
	}
}

func TestMeasureSuccessDeliversOutcome(t *testing.T) {
	f := newEGPFixture(t, true)
	f.egp.Create(CreateRequest{NumPairs: 2, Keep: false, MinFidelity: 0.6, Priority: PriorityMD})
	f.confirmAll()
	item := f.egp.Queue().AllItems()[0]
	d := f.egp.PollTrigger(item.ScheduleCycle + 1)
	if !d.Attempt || d.Keep {
		t.Fatalf("expected an M attempt, got %+v", d)
	}
	pair := f.registerPair(1, quantum.PsiPlus)
	f.egp.HandleResult(mhp.Result{
		Outcome: wire.OutcomeStateOne, MHPSeq: 1, QueueID: item.ID,
		Keep: false, MeasureBasis: d.MeasureBasis, Alpha: d.Alpha, Pair: pair,
	})
	if len(f.oks) != 1 {
		t.Fatalf("expected 1 OK, got %d", len(f.oks))
	}
	ok := f.oks[0]
	if ok.Keep || ok.RequestDone || ok.PairsRemaining != 1 {
		t.Fatalf("OK fields wrong for the first of two pairs: %+v", ok)
	}
	if ok.MeasureOutcome != 0 && ok.MeasureOutcome != 1 {
		t.Fatal("invalid measurement outcome")
	}
	// The device must be free again (the measurement is destructive).
	if !f.device.CommFree() {
		t.Fatal("communication qubit should be released after measurement")
	}
}

func TestEmissionMultiplexingAllowsOverlappingAttempts(t *testing.T) {
	f := newEGPFixture(t, true)
	f.egp.Create(CreateRequest{NumPairs: 5, Keep: false, MinFidelity: 0.6, Priority: PriorityMD})
	f.confirmAll()
	item := f.egp.Queue().AllItems()[0]
	attempts := 0
	for c := item.ScheduleCycle + 1; c < item.ScheduleCycle+10; c++ {
		if f.egp.PollTrigger(c).Attempt {
			attempts++
		}
	}
	if attempts < 5 {
		t.Fatalf("multiplexing should allow many outstanding M attempts, got %d", attempts)
	}

	// Without multiplexing only one attempt may be outstanding.
	f2 := newEGPFixture(t, false)
	f2.egp.Create(CreateRequest{NumPairs: 5, Keep: false, MinFidelity: 0.6, Priority: PriorityMD})
	f2.confirmAll()
	item2 := f2.egp.Queue().AllItems()[0]
	attempts2 := 0
	for c := item2.ScheduleCycle + 1; c < item2.ScheduleCycle+10; c++ {
		if f2.egp.PollTrigger(c).Attempt {
			attempts2++
		}
	}
	if attempts2 != 1 {
		t.Fatalf("without multiplexing exactly one attempt should be outstanding, got %d", attempts2)
	}
}

func TestSequenceGapTriggersExpire(t *testing.T) {
	f := newEGPFixture(t, true)
	f.egp.Create(CreateRequest{NumPairs: 3, Keep: false, MinFidelity: 0.6, Priority: PriorityMD})
	f.confirmAll()
	item := f.egp.Queue().AllItems()[0]
	d := f.egp.PollTrigger(item.ScheduleCycle + 1)
	// The midpoint's sequence number jumps to 3: replies 1 and 2 were lost.
	pair := f.registerPair(3, quantum.PsiPlus)
	f.egp.HandleResult(mhp.Result{
		Outcome: wire.OutcomeStateOne, MHPSeq: 3, QueueID: item.ID,
		Keep: false, MeasureBasis: d.MeasureBasis, Alpha: d.Alpha, Pair: pair,
	})
	if len(f.expires) == 0 {
		t.Fatal("a sequence gap should trigger an EXPIRE")
	}
	_, _, _, expSent, _ := f.egp.Stats()
	if expSent != 1 {
		t.Fatalf("one EXPIRE should be sent, got %d", expSent)
	}
	if f.egp.ExpectedSeq() != 4 {
		t.Fatalf("expected sequence should resynchronise to 4, got %d", f.egp.ExpectedSeq())
	}
	// No OK is issued for the out-of-order reply (Protocol 2 step 3(iii)A).
	if len(f.oks) != 0 {
		t.Fatal("no OK should be issued when the gap is detected")
	}
}

func TestStaleSequenceIgnored(t *testing.T) {
	f := newEGPFixture(t, true)
	f.egp.Create(CreateRequest{NumPairs: 2, Keep: false, MinFidelity: 0.6, Priority: PriorityMD})
	f.confirmAll()
	item := f.egp.Queue().AllItems()[0]
	d := f.egp.PollTrigger(item.ScheduleCycle + 1)
	pair := f.registerPair(1, quantum.PsiPlus)
	f.egp.HandleResult(mhp.Result{Outcome: wire.OutcomeStateOne, MHPSeq: 1, QueueID: item.ID, Keep: false, MeasureBasis: d.MeasureBasis, Alpha: d.Alpha, Pair: pair})
	oksBefore := len(f.oks)
	// A duplicate/stale reply with the same sequence number must be ignored.
	f.egp.HandleResult(mhp.Result{Outcome: wire.OutcomeStateOne, MHPSeq: 1, QueueID: item.ID, Keep: false, MeasureBasis: d.MeasureBasis, Alpha: d.Alpha, Pair: pair})
	if len(f.oks) != oksBefore {
		t.Fatal("stale reply should not produce another OK")
	}
}

func TestExpireMessageHandling(t *testing.T) {
	f := newEGPFixture(t, true)
	frame := wire.ExpireFrame{QueueID: wire.AbsoluteQueueID{QueueID: 2, QueueSeq: 0}, OriginNodeID: 2, ExpectedSeq: 10}
	f.egp.HandlePeerMessage(classical.Message{Payload: frame.Encode()})
	if f.egp.ExpectedSeq() != 10 {
		t.Fatalf("EXPIRE should resynchronise the expected sequence, got %d", f.egp.ExpectedSeq())
	}
	_, _, _, _, expRecv := f.egp.Stats()
	if expRecv != 1 {
		t.Fatal("expire received counter should increment")
	}
	if len(f.expires) != 1 {
		t.Fatal("an expire event should be surfaced to the higher layer")
	}
}

func TestTimeoutReaping(t *testing.T) {
	f := newEGPFixture(t, true)
	f.egp.Create(CreateRequest{NumPairs: 1, Keep: false, MinFidelity: 0.6, MaxTime: 500 * sim.Millisecond, Priority: PriorityMD})
	f.confirmAll()
	item := f.egp.Queue().AllItems()[0]
	if item.TimeoutCycle == 0 {
		t.Fatal("timeout cycle should be set")
	}
	// Poll far past the timeout cycle: the item is reaped and TIMEOUT issued.
	f.egp.PollTrigger(item.TimeoutCycle + 10)
	if f.egp.Queue().TotalLen() != 0 {
		t.Fatal("timed-out item should be removed")
	}
	found := false
	for _, e := range f.errs {
		if e.Code == wire.ErrTimeout {
			found = true
		}
	}
	if !found {
		t.Fatal("TIMEOUT error should be reported to the higher layer")
	}
}

func TestMemoryAdvertisement(t *testing.T) {
	f := newEGPFixture(t, true)
	req := wire.MemoryFrame{IsAck: false, CommQubits: 0, StorageQubits: 0}
	f.egp.HandlePeerMessage(classical.Message{Payload: req.Encode()})
	comm, storage, known := f.egp.PeerResources()
	if !known || comm != 0 || storage != 0 {
		t.Fatalf("peer resources not recorded: %d %d %v", comm, storage, known)
	}
	// With the peer advertising no free communication qubit, K attempts are
	// withheld (flow control).
	f.egp.Create(CreateRequest{NumPairs: 1, Keep: true, MinFidelity: 0.6, Priority: PriorityCK})
	f.confirmAll()
	item := f.egp.Queue().AllItems()[0]
	if d := f.egp.PollTrigger(item.ScheduleCycle + 50); d.Attempt {
		t.Fatal("flow control should withhold K attempts when the peer has no free qubits")
	}
	// Once the peer frees resources, generation resumes.
	ack := wire.MemoryFrame{IsAck: true, CommQubits: 1, StorageQubits: 1}
	f.egp.HandlePeerMessage(classical.Message{Payload: ack.Encode()})
	if d := f.egp.PollTrigger(item.ScheduleCycle + 51); !d.Attempt {
		t.Fatal("attempts should resume after the peer advertises free qubits")
	}
}

func TestSharedBasisDeterministic(t *testing.T) {
	id := wire.AbsoluteQueueID{QueueID: 2, QueueSeq: 7}
	seen := map[quantum.BasisLabel]bool{}
	for cycle := uint64(0); cycle < 300; cycle++ {
		b1 := sharedBasisForCycle(id, cycle)
		b2 := sharedBasisForCycle(id, cycle)
		if b1 != b2 {
			t.Fatal("basis derivation must be deterministic")
		}
		seen[b1] = true
	}
	if len(seen) != 3 {
		t.Fatalf("all three bases should occur, got %v", seen)
	}
}

func TestSeqArithmetic(t *testing.T) {
	if !seqAfter(5, 3) || seqAfter(3, 5) || seqAfter(4, 4) {
		t.Fatal("seqAfter wrong")
	}
	if !seqBefore(3, 5) || seqBefore(5, 3) {
		t.Fatal("seqBefore wrong")
	}
	// Wrap-around: 2 is "after" 65530.
	if !seqAfter(2, 65530) || !seqBefore(65530, 2) {
		t.Fatal("wrap-around comparison wrong")
	}
}

func TestFEUAlphaInversion(t *testing.T) {
	f := newEGPFixture(t, true)
	feu := f.egp.FEU()
	alpha, ok := feu.AlphaForFidelity(0.7)
	if !ok || alpha <= 0 || alpha > 0.5 {
		t.Fatalf("alpha inversion failed: %v %v", alpha, ok)
	}
	// Higher fidelity targets require smaller alpha.
	alphaHigh, ok := feu.AlphaForFidelity(0.8)
	if !ok || alphaHigh >= alpha {
		t.Fatalf("higher Fmin should give smaller alpha: %v vs %v", alphaHigh, alpha)
	}
	// Unreachable fidelity.
	if _, ok := feu.AlphaForFidelity(0.999); ok {
		t.Fatal("unreachable fidelity should be reported")
	}
	// The base estimate at the returned alpha meets the target.
	if feu.BaseEstimate(alpha) < 0.7-1e-6 {
		t.Fatal("base estimate at inverted alpha should meet the target")
	}
	// Completion estimate is finite and scales with the pair count.
	one := feu.EstimateCompletionSeconds(1, alpha, true)
	ten := feu.EstimateCompletionSeconds(10, alpha, true)
	if math.IsInf(one, 1) || ten < 9*one {
		t.Fatalf("completion estimates wrong: %v %v", one, ten)
	}
}

func TestFEUTestRounds(t *testing.T) {
	f := newEGPFixture(t, true)
	feu := f.egp.FEU()
	// Feed perfect Ψ+ correlations: anti-correlated Z, correlated X/Y.
	for i := 0; i < 60; i++ {
		feu.RecordTestOutcome(0, i%2, 1-i%2)
		feu.RecordTestOutcome(1, i%2, i%2)
		feu.RecordTestOutcome(2, i%2, i%2)
	}
	if g := feu.Goodness(0.3); g < 0.99 {
		t.Fatalf("perfect test rounds should give goodness ≈ 1, got %v", g)
	}
	z, x, y := feu.QBEREstimate()
	if z != 0 || x != 0 || y != 0 {
		t.Fatalf("QBER should be zero: %v %v %v", z, x, y)
	}
	if feu.TestRoundSamples() == 0 {
		t.Fatal("test round samples should be recorded")
	}
}

func TestQMMReservations(t *testing.T) {
	f := newEGPFixture(t, true)
	qmm := f.egp.QMM()
	if !qmm.CommAvailable() {
		t.Fatal("communication qubit should start free")
	}
	if !qmm.ReserveComm() {
		t.Fatal("first reservation should succeed")
	}
	if qmm.ReserveComm() {
		t.Fatal("double reservation should fail")
	}
	qmm.ReleaseComm()
	if !qmm.CommAvailable() {
		t.Fatal("release should free the qubit")
	}
	if qmm.StorageAvailable() != 1 {
		t.Fatal("one memory qubit should be free")
	}
	ever, now := qmm.CanSatisfyAtomic(2)
	if !ever || !now {
		t.Fatal("two pairs fit in comm + memory")
	}
	ever, _ = qmm.CanSatisfyAtomic(3)
	if ever {
		t.Fatal("three pairs cannot ever fit")
	}
	if qmm.LogicalToPhysical(1) != 1 {
		t.Fatal("logical mapping should be identity")
	}
	allocs, releases := qmm.Stats()
	if allocs != 1 || releases != 1 {
		t.Fatalf("allocation stats wrong: %d %d", allocs, releases)
	}
}
