package egp

import (
	"math"

	"repro/internal/classical"
	"repro/internal/mhp"
	"repro/internal/nv"
	"repro/internal/obs"
	"repro/internal/photonics"
	"repro/internal/quantum"
	"repro/internal/sim"
	"repro/internal/wire"
)

// CreateRequest is the link layer service interface of Section 4.1.1: the
// parameters a higher layer passes with a CREATE call.
type CreateRequest struct {
	RemoteNodeID uint32
	NumPairs     int
	Keep         bool // true = create-and-keep (K), false = measure-directly (M)
	MinFidelity  float64
	MaxTime      sim.Duration // 0 = no timeout
	PurposeID    uint16
	Priority     int // PriorityNL, PriorityCK or PriorityMD
	Atomic       bool
	Consecutive  bool
}

// OKEvent is delivered to the higher layer for every successfully generated
// pair (Section 4.1.2).
type OKEvent struct {
	Node     string
	CreateID uint16
	QueueID  wire.AbsoluteQueueID
	// EntanglementID is the network-unique identifier (origin, peer, MHP
	// sequence number).
	EntanglementID uint16
	Keep           bool
	Priority       int
	OriginIsLocal  bool
	LogicalQubit   nv.QubitID
	// Fidelity is the true delivered fidelity of the pair (simulation
	// ground truth, used by the evaluation); Goodness is the FEU estimate
	// reported in the OK message.
	Fidelity float64
	Goodness float64
	// MeasureOutcome/MeasureBasis are set for M-type pairs.
	MeasureOutcome int
	MeasureBasis   quantum.BasisLabel
	// HeraldedPsiMinus records that the midpoint announced |Ψ−⟩ (rather
	// than |Ψ+⟩) for this pair; consumers of measure-directly outcomes use
	// it to apply the classical correction when comparing correlations.
	HeraldedPsiMinus bool
	// Pair is the delivered entangled pair, set for create-and-keep requests
	// when AutoRelease is off: the higher layer (e.g. the network layer's
	// swap engine) owns the stored qubit until it releases it from the
	// device. Nil for measure-directly pairs and auto-released ones.
	Pair           *nv.EntangledPair
	PairsRemaining int
	RequestDone    bool
	CreateTime     sim.Time
	At             sim.Time
}

// ErrorEvent reports request failures to the higher layer.
type ErrorEvent struct {
	Node     string
	CreateID uint16
	QueueID  wire.AbsoluteQueueID
	Code     wire.EGPError
	Priority int
	At       sim.Time
}

// ExpireEvent reports that previously issued OKs were revoked.
type ExpireEvent struct {
	Node    string
	QueueID wire.AbsoluteQueueID
	SeqLow  uint16
	SeqHigh uint16
	At      sim.Time
}

// Config collects the dependencies of one node's EGP instance.
type Config struct {
	NodeName string
	NodeID   uint32
	PeerID   uint32
	IsMaster bool

	Sim      sim.Engine
	Platform *nv.Platform
	Device   *nv.Device
	Sampler  *photonics.LinkSampler
	Registry *mhp.PairRegistry
	Side     nv.PairSide

	Scheduler Scheduler
	// ToPeer carries DQP/EGP frames to the peer EGP of the same link. Any
	// classical.Port works: a direct Channel in the two-node network, or a
	// TagPort over a shared node-to-node channel in the multi-link network.
	ToPeer classical.Port

	OnOK     func(OKEvent)
	OnError  func(ErrorEvent)
	OnExpire func(ExpireEvent)

	// MaxQueueLen bounds each priority lane (256 in the paper's overload
	// study).
	MaxQueueLen int
	// QueueWindow is the DQP fairness window.
	QueueWindow int
	// EmissionMultiplexing allows M-type attempts to be triggered before the
	// previous attempt's REPLY has arrived (Section 5.2.5).
	EmissionMultiplexing bool
	// MaxOutstandingM caps the number of in-flight multiplexed M attempts.
	MaxOutstandingM int
	// AutoRelease frees the local qubit as soon as the OK is issued,
	// modelling a higher layer that consumes pairs immediately.
	AutoRelease bool
	// MinTimeMarginCycles is added to the propagation-derived minimum start
	// cycle of new requests.
	MinTimeMarginCycles uint64
	// AcceptPolicy gates remotely originated requests by purpose ID.
	AcceptPolicy AcceptPolicy

	// Trace, when non-nil, records the OK/error/expiry lifecycle into the
	// flight recorder under track TraceID (the link ID). Nil disables
	// recording at the cost of one branch per lifecycle event.
	Trace   *obs.Ring
	TraceID uint64
	// Metrics, when non-nil, publishes lifecycle counters. Handles are
	// nil-safe, so a nil bundle field costs nothing.
	Metrics *obs.EGPMetrics
}

// EGP is one node's link layer protocol instance. It implements
// mhp.Generator so the physical layer can poll it every cycle.
type EGP struct {
	cfg Config

	queue *DistributedQueue
	qmm   *QuantumMemoryManager
	feu   *FidelityEstimationUnit

	cycle       uint64
	createSeq   uint16
	expectedSeq uint16

	// Outstanding attempt bookkeeping. Deadlines guard against lost REPLY
	// frames permanently blocking generation.
	outstandingK  bool
	kDeadline     sim.Time
	outstandingM  int
	mAttemptTimes []sim.Time
	busyUntil     sim.Time
	// kResumeCycle is the earliest cycle at which the next create-and-keep
	// attempt may be triggered after a success; it is computed identically
	// at both nodes (from the attempt cycle and platform constants) so they
	// stay aligned on the K attempt grid without extra communication.
	kResumeCycle uint64

	// Completed or expired queue IDs we may still receive replies for.
	retired map[wire.AbsoluteQueueID]bool

	// reapScratch is the reusable expired-item collection buffer of
	// reapExpired, which runs every MHP cycle.
	reapScratch []*QueueItem

	// Pending EXPIRE exchanges awaiting acknowledgement.
	pendingExpires map[wire.AbsoluteQueueID]sim.EventID

	// Peer resource view from REQ(E)/ACK(E) advertisements.
	peerComm    int
	peerStorage int
	peerKnown   bool

	// Statistics.
	creates, okCount, errCount, expiresSent, expiresReceived uint64
	attemptsRequested                                        uint64
}

// New constructs an EGP instance.
func New(cfg Config) *EGP {
	if cfg.Sim == nil || cfg.Platform == nil || cfg.Device == nil || cfg.Sampler == nil || cfg.Registry == nil || cfg.ToPeer == nil {
		panic("egp: incomplete configuration")
	}
	// ToPeer is an interface; a nil *classical.Channel inside it would slip
	// past the nil check above and only crash at the first send.
	if ch, ok := cfg.ToPeer.(*classical.Channel); ok && ch == nil {
		panic("egp: nil ToPeer channel")
	}
	if cfg.Scheduler == nil {
		cfg.Scheduler = NewFCFS()
	}
	if cfg.MaxOutstandingM <= 0 {
		cfg.MaxOutstandingM = 64
	}
	e := &EGP{
		cfg:            cfg,
		qmm:            NewQMM(cfg.Device),
		feu:            NewFEU(cfg.Platform, cfg.Sampler),
		expectedSeq:    1,
		retired:        make(map[wire.AbsoluteQueueID]bool),
		pendingExpires: make(map[wire.AbsoluteQueueID]sim.EventID),
	}
	e.queue = NewDistributedQueue(QueueConfig{
		NodeName: cfg.NodeName,
		IsMaster: cfg.IsMaster,
		Sim:      cfg.Sim,
		ToPeer:   cfg.ToPeer,
		MaxLen:   cfg.MaxQueueLen,
		Window:   cfg.QueueWindow,
		OnConfirmed: func(item *QueueItem) {
			// Requests that arrived from the peer carry only the requested
			// minimum fidelity; each node queries its own FEU for the
			// generation parameters (Section 5.2.5), which is deterministic
			// and therefore consistent across the two nodes.
			if item.Alpha == 0 {
				if alpha, ok := e.feu.AlphaForFidelity(item.MinFidelity); ok {
					item.Alpha = alpha
				}
			}
		},
		OnRejected: func(item *QueueItem, code wire.EGPError) {
			e.errCount++
			e.emitError(item, code)
		},
	})
	e.queue.SetAcceptPolicy(cfg.AcceptPolicy)
	e.queue.SetStampFunc(cfg.Scheduler.Stamp)
	return e
}

// Queue exposes the distributed queue (read-mostly; used by experiments to
// sample queue length).
func (e *EGP) Queue() *DistributedQueue { return e.queue }

// FEU exposes the fidelity estimation unit.
func (e *EGP) FEU() *FidelityEstimationUnit { return e.feu }

// QMM exposes the quantum memory manager.
func (e *EGP) QMM() *QuantumMemoryManager { return e.qmm }

// Stats returns protocol counters: CREATE calls, OKs, errors, EXPIREs sent
// and received.
func (e *EGP) Stats() (creates, oks, errs, expSent, expRecv uint64) {
	return e.creates, e.okCount, e.errCount, e.expiresSent, e.expiresReceived
}

// Cycle returns the last MHP cycle this EGP was polled at.
func (e *EGP) Cycle() uint64 { return e.cycle }

// minTimeCycles returns the number of MHP cycles to wait before a new
// request may start: enough for the ADD/ACK handshake to complete at both
// nodes.
func (e *EGP) minTimeCycles() uint64 {
	rtt := 2 * e.cfg.ToPeer.Delay()
	cycleTime := e.cfg.Platform.CycleTime[nv.RequestMeasure]
	cycles := uint64(rtt/cycleTime) + 2
	return cycles + e.cfg.MinTimeMarginCycles
}

// Create submits a new entanglement request from the higher layer at this
// node (Section 5.2.5). It returns the CreateID assigned to the request and
// an immediate error code (ErrNone when the request was accepted into the
// distributed queue).
func (e *EGP) Create(req CreateRequest) (uint16, wire.EGPError) {
	e.creates++
	createID := e.createSeq
	e.createSeq++

	if req.NumPairs <= 0 {
		req.NumPairs = 1
	}
	if req.Priority < 0 || req.Priority >= NumQueues {
		req.Priority = PriorityMD
	}

	// Fidelity feasibility (UNSUPP).
	alpha, ok := e.feu.AlphaForFidelity(req.MinFidelity)
	if !ok {
		e.errCount++
		e.emitErrorRaw(createID, req.Priority, wire.ErrUnsupported)
		return createID, wire.ErrUnsupported
	}
	// Completion-time feasibility (UNSUPP).
	if req.MaxTime > 0 {
		est := e.feu.EstimateCompletionSeconds(req.NumPairs, alpha, req.Keep)
		if math.IsInf(est, 1) || est > req.MaxTime.Seconds() {
			e.errCount++
			e.emitErrorRaw(createID, req.Priority, wire.ErrUnsupported)
			return createID, wire.ErrUnsupported
		}
	}
	// Atomic feasibility (MEMEXCEEDED).
	if req.Atomic && req.Keep {
		ever, _ := e.qmm.CanSatisfyAtomic(req.NumPairs)
		if !ever {
			e.errCount++
			e.emitErrorRaw(createID, req.Priority, wire.ErrMemExceeded)
			return createID, wire.ErrMemExceeded
		}
	}

	scheduleCycle := e.cycle + e.minTimeCycles()
	var timeoutCycle uint64
	if req.MaxTime > 0 {
		cycleTime := e.cfg.Platform.CycleTime[nv.RequestMeasure]
		timeoutCycle = scheduleCycle + uint64(req.MaxTime/cycleTime) + 1
	}
	estPerPair := e.feu.EstimateCompletionCycles(1, alpha, req.Keep)
	if math.IsInf(estPerPair, 1) || estPerPair > math.MaxUint32 {
		estPerPair = math.MaxUint32
	}

	item := &QueueItem{
		CreateID:         createID,
		PurposeID:        req.PurposeID,
		Priority:         uint8(req.Priority),
		NumPairs:         uint16(req.NumPairs),
		PairsLeft:        uint16(req.NumPairs),
		Keep:             req.Keep,
		Atomic:           req.Atomic,
		Consecutive:      req.Consecutive,
		MinFidelity:      req.MinFidelity,
		Alpha:            alpha,
		CreateTime:       e.cfg.Sim.Now(),
		ScheduleCycle:    scheduleCycle,
		TimeoutCycle:     timeoutCycle,
		EstCyclesPerPair: uint32(estPerPair),
	}
	if err := e.queue.Add(item); err != nil {
		e.errCount++
		e.emitErrorRaw(createID, req.Priority, wire.ErrOutOfMemory)
		return createID, wire.ErrOutOfMemory
	}
	return createID, wire.ErrNone
}

// emitError reports a request-level failure for a queue item.
func (e *EGP) emitError(item *QueueItem, code wire.EGPError) {
	e.cfg.Trace.Record(e.cfg.Sim.Now(), obs.KindEGPError, e.cfg.TraceID, int64(item.CreateID), int64(code))
	if e.cfg.Metrics != nil {
		e.cfg.Metrics.Errors.Inc()
	}
	if e.cfg.OnError == nil {
		return
	}
	e.cfg.OnError(ErrorEvent{
		Node:     e.cfg.NodeName,
		CreateID: item.CreateID,
		QueueID:  item.ID,
		Code:     code,
		Priority: int(item.Priority),
		At:       e.cfg.Sim.Now(),
	})
}

func (e *EGP) emitErrorRaw(createID uint16, priority int, code wire.EGPError) {
	e.cfg.Trace.Record(e.cfg.Sim.Now(), obs.KindEGPError, e.cfg.TraceID, int64(createID), int64(code))
	if e.cfg.Metrics != nil {
		e.cfg.Metrics.Errors.Inc()
	}
	if e.cfg.OnError == nil {
		return
	}
	e.cfg.OnError(ErrorEvent{
		Node:     e.cfg.NodeName,
		CreateID: createID,
		Code:     code,
		Priority: priority,
		At:       e.cfg.Sim.Now(),
	})
}

// localOrigin reports whether a queue item was created at this node.
func (e *EGP) localOrigin(item *QueueItem) bool { return item.OriginMaster == e.cfg.IsMaster }

// reapExpired removes timed-out queue items, emitting TIMEOUT errors for
// locally originated requests. It runs every MHP cycle, so the scan iterates
// the lanes in place and only collects into the reusable scratch slice when
// something actually expired — the common case allocates nothing.
func (e *EGP) reapExpired() {
	e.reapScratch = e.reapScratch[:0]
	for p := 0; p < NumQueues; p++ {
		for _, it := range e.queue.Items(p) {
			if it.Expired(e.cycle) {
				e.reapScratch = append(e.reapScratch, it)
			}
		}
	}
	for _, it := range e.reapScratch {
		e.queue.Remove(it.ID)
		e.retired[it.ID] = true
		if e.localOrigin(it) {
			e.errCount++
			e.emitError(it, wire.ErrTimeout)
		}
	}
}

// FailAll drains the whole request queue with per-request errors of the
// given code and releases every piece of in-flight attempt bookkeeping —
// the link-down path of the fault injection subsystem. Errors are emitted
// for locally originated requests only (mirroring reapExpired: the peer EGP
// drains its own queue and reports to its own origin), remote items are
// silently retired, and pending DQP handshakes and EXPIRE retransmissions
// are cancelled so no timer outlives the outage.
func (e *EGP) FailAll(code wire.EGPError) {
	e.queue.FailPending(code)
	items := append([]*QueueItem(nil), e.queue.AllItems()...)
	for _, it := range items {
		e.queue.Remove(it.ID)
		e.retired[it.ID] = true
		if e.localOrigin(it) {
			e.errCount++
			e.emitError(it, code)
		}
	}
	if e.outstandingK {
		e.outstandingK = false
		e.qmm.ReleaseComm()
	}
	e.outstandingM = 0
	e.mAttemptTimes = e.mAttemptTimes[:0]
	// Cancelling an event has no observable trajectory effect, so plain map
	// iteration is fine here.
	for id, ev := range e.pendingExpires {
		ev.Cancel()
		delete(e.pendingExpires, id)
	}
}

// inCarbonReinitWindow reports whether the hardware is busy re-initialising
// its carbon memory at the given cycle (Appendix D.3.3: 330 µs every
// 3500 µs), which blocks create-and-keep attempts.
func (e *EGP) inCarbonReinitWindow(cycle uint64) bool {
	p := e.cfg.Platform
	if p.CarbonReinitPeriod <= 0 || p.CarbonReinitDuration <= 0 {
		return false
	}
	cycleTime := p.CycleTime[nv.RequestMeasure]
	periodCycles := uint64(p.CarbonReinitPeriod / cycleTime)
	busyCycles := uint64(p.CarbonReinitDuration / cycleTime)
	if periodCycles == 0 {
		return false
	}
	return cycle%periodCycles < busyCycles
}

// PollTrigger implements mhp.Generator: it is called by the physical layer
// at every MHP cycle and decides whether (and how) to attempt entanglement
// generation.
func (e *EGP) PollTrigger(cycle uint64) mhp.PollDecision {
	e.cycle = cycle
	e.reapExpired()
	e.reapLostAttempts()

	if e.cfg.Sim.Now() < e.busyUntil {
		return mhp.PollDecision{}
	}
	item := e.cfg.Scheduler.Next(e.queue, cycle)
	if item == nil {
		return mhp.PollDecision{}
	}
	if item.Keep {
		// Create-and-keep attempts are paced on a shared deterministic grid:
		// only every kAttemptStride-th cycle may trigger one (the hardware's
		// 1/r_attempt for K), and after a success both nodes wait until the
		// same resume cycle. This keeps the two nodes triggering in the same
		// MHP cycle even though their midpoint replies arrive at different
		// times over asymmetric fibre arms.
		if cycle%e.kAttemptStride() != 0 {
			return mhp.PollDecision{}
		}
		if cycle < e.kResumeCycle {
			return mhp.PollDecision{}
		}
		if e.outstandingK || e.outstandingM > 0 {
			return mhp.PollDecision{}
		}
		if e.inCarbonReinitWindow(cycle) {
			return mhp.PollDecision{}
		}
		if !e.qmm.CommAvailable() {
			return mhp.PollDecision{}
		}
		if e.peerKnown && e.peerComm == 0 {
			// Flow control: the peer advertised no free communication qubit.
			return mhp.PollDecision{}
		}
		storage, haveStorage := e.qmm.PickStorage()
		if !haveStorage {
			storage = nv.CommQubitID
		}
		if !e.qmm.ReserveComm() {
			return mhp.PollDecision{}
		}
		e.outstandingK = true
		e.kDeadline = e.cfg.Sim.Now().Add(e.replyDeadline())
		e.attemptsRequested++
		return mhp.PollDecision{
			Attempt:      true,
			QueueID:      item.ID,
			Keep:         true,
			Alpha:        item.Alpha,
			StorageQubit: storage,
		}
	}
	// Measure-directly attempt.
	if e.outstandingK {
		return mhp.PollDecision{}
	}
	if !e.cfg.EmissionMultiplexing && e.outstandingM > 0 {
		return mhp.PollDecision{}
	}
	if e.outstandingM >= e.cfg.MaxOutstandingM {
		return mhp.PollDecision{}
	}
	e.outstandingM++
	e.mAttemptTimes = append(e.mAttemptTimes, e.cfg.Sim.Now())
	e.attemptsRequested++
	return mhp.PollDecision{
		Attempt:      true,
		QueueID:      item.ID,
		Keep:         false,
		Alpha:        item.Alpha,
		MeasureBasis: sharedBasisForCycle(item.ID, cycle),
	}
}

// kAttemptStride is the number of base (M-type) MHP cycles between permitted
// create-and-keep attempts: the K cycle time expressed in base cycles
// (rounded to the nearest integer), at least 1. On the Lab hardware the two
// cycle times nearly coincide so the stride is 1; on QL2020 the K attempt
// rate of ≈165 µs yields a stride of 16 base cycles.
func (e *EGP) kAttemptStride() uint64 {
	base := e.cfg.Platform.CycleTime[nv.RequestMeasure]
	keep := e.cfg.Platform.CycleTime[nv.RequestKeep]
	if base <= 0 || keep <= base {
		return 1
	}
	stride := uint64((keep + base/2) / base)
	if stride < 1 {
		return 1
	}
	return stride
}

// kResumeAfterSuccess computes the first cycle at which a new K attempt may
// start after a success in attemptCycle: both nodes must have received their
// reply and completed the move to memory. It only uses shared platform
// constants, so both nodes compute the same value.
func (e *EGP) kResumeAfterSuccess(attemptCycle uint64, moved bool) uint64 {
	p := e.cfg.Platform
	base := p.CycleTime[nv.RequestMeasure]
	maxRTT := p.MidpointRoundTrip("A")
	if rtt := p.MidpointRoundTrip("B"); rtt > maxRTT {
		maxRTT = rtt
	}
	wait := maxRTT
	if moved {
		wait += p.Gates.MoveToCarbon.Duration
	}
	return attemptCycle + uint64(wait/base) + 2
}

// replyDeadline is how long an attempt may wait for its REPLY before the EGP
// declares the reply lost and releases the attempt bookkeeping.
func (e *EGP) replyDeadline() sim.Duration {
	rtt := e.cfg.Platform.MidpointRoundTrip(e.cfg.NodeName)
	d := 8*rtt + 2*sim.Millisecond
	return d
}

// reapLostAttempts releases attempt bookkeeping whose REPLY is long overdue
// (lost classical frames), preventing deadlock under inflated loss rates.
func (e *EGP) reapLostAttempts() {
	now := e.cfg.Sim.Now()
	if e.outstandingK && now > e.kDeadline {
		e.outstandingK = false
		e.qmm.ReleaseComm()
	}
	deadline := e.replyDeadline()
	for len(e.mAttemptTimes) > 0 && now.Sub(e.mAttemptTimes[0]) > deadline {
		e.mAttemptTimes = e.mAttemptTimes[1:]
		if e.outstandingM > 0 {
			e.outstandingM--
		}
	}
}

// sharedBasisForCycle derives a pseudo-random measurement basis that both
// nodes compute identically from shared state (the queue item and the cycle
// number), standing in for the pre-agreed random basis string of Appendix B.
func sharedBasisForCycle(id wire.AbsoluteQueueID, cycle uint64) quantum.BasisLabel {
	h := cycle*2654435761 + uint64(id.QueueSeq)*40503 + uint64(id.QueueID)*97
	h ^= h >> 13
	return quantum.BasisLabel(h % 3)
}

// HandleResult implements mhp.Generator: it processes the outcome of an
// attempt reported by the physical layer.
func (e *EGP) HandleResult(r mhp.Result) {
	// Release attempt bookkeeping first.
	if r.Keep {
		e.outstandingK = false
		e.qmm.ReleaseComm()
	} else if e.outstandingM > 0 {
		e.outstandingM--
		if len(e.mAttemptTimes) > 0 {
			e.mAttemptTimes = e.mAttemptTimes[1:]
		}
	}

	if r.Outcome == wire.ErrGeneralFailure || r.Outcome.IsError() {
		// Local failure or midpoint protocol error: nothing was produced.
		return
	}
	if r.Outcome == wire.OutcomeFailure {
		return
	}

	// Heralded success: sequence-number bookkeeping (Protocol 2 step 3).
	seq := r.MHPSeq
	switch {
	case seqAfter(seq, e.expectedSeq):
		// We missed one or more earlier successes (lost REPLYs). Expire the
		// missing range and resynchronise.
		e.sendExpire(r.QueueID, e.expectedSeq, seq-1)
		e.expectedSeq = seq + 1
		return
	case seqBefore(seq, e.expectedSeq):
		// Stale reply; ignore.
		return
	default:
		e.expectedSeq = seq + 1
	}

	item := e.queue.Find(r.QueueID)
	if item == nil {
		// The request timed out, completed, or was never known here: free
		// resources and move on (the peer may issue an EXPIRE for its OK).
		return
	}
	pair := r.Pair
	if pair == nil {
		return
	}

	if r.Keep {
		e.handleKeepSuccess(item, pair, r)
	} else {
		e.handleMeasureSuccess(item, pair, r)
	}
}

// seqAfter reports whether a > b in circular uint16 arithmetic.
func seqAfter(a, b uint16) bool { return a != b && a-b < 0x8000 }

// seqBefore reports whether a < b in circular uint16 arithmetic.
func seqBefore(a, b uint16) bool { return a != b && b-a < 0x8000 }

// handleKeepSuccess completes one pair of a create-and-keep request.
func (e *EGP) handleKeepSuccess(item *QueueItem, pair *nv.EntangledPair, r mhp.Result) {
	now := e.cfg.Sim.Now()
	device := e.cfg.Device
	side := e.cfg.Side

	if err := device.StorePair(pair, side); err != nil {
		// The communication qubit is unexpectedly busy; treat as a failure.
		return
	}
	// Convert |Ψ−⟩ to |Ψ+⟩ at the request origin (Protocol 2 step 3(iv)).
	if r.Outcome == wire.OutcomeStateTwo && e.localOrigin(item) {
		device.ApplyCorrection(pair, side)
	}
	logical := nv.CommQubitID
	moved := false
	if r.StorageQubit != nv.CommQubitID {
		if err := device.MoveToMemory(pair, side, e.qmm.LogicalToPhysical(r.StorageQubit), now); err == nil {
			logical = r.StorageQubit
			moved = true
			e.busyUntil = now.Add(device.Gates.MoveToCarbon.Duration)
		}
	}
	if resume := e.kResumeAfterSuccess(r.AttemptCycle, moved); resume > e.kResumeCycle {
		e.kResumeCycle = resume
	}
	// Apply storage decoherence up to "now" so the recorded fidelity reflects
	// the delivery moment.
	device.ApplyDecoherence(pair, side, now)
	fidelity := pair.Fidelity()
	goodness := e.feu.Goodness(r.Alpha)

	ev := OKEvent{
		Keep:         true,
		LogicalQubit: logical,
		Fidelity:     fidelity,
		Goodness:     goodness,
	}
	if !e.cfg.AutoRelease {
		ev.Pair = pair
	}
	e.completePair(item, r, ev)

	if e.cfg.AutoRelease {
		device.Release(pair)
	}
}

// handleMeasureSuccess completes one pair of a measure-directly request.
func (e *EGP) handleMeasureSuccess(item *QueueItem, pair *nv.EntangledPair, r mhp.Result) {
	now := e.cfg.Sim.Now()
	device := e.cfg.Device
	side := e.cfg.Side

	// The delivered fidelity is the pair fidelity before either node's
	// destructive measurement; the first node to process its REPLY caches it
	// on the shared pair so the peer's OK reports the same quantity.
	if pair.DeliveredFidelity == 0 {
		pair.DeliveredFidelity = pair.Fidelity()
	}
	fidelityBefore := pair.DeliveredFidelity
	if err := device.StorePair(pair, side); err != nil {
		return
	}
	res := device.Measure(pair, side, r.MeasureBasis, now, e.cfg.Sim.RNG())
	goodness := e.feu.Goodness(r.Alpha)

	e.completePair(item, r, OKEvent{
		Keep:             false,
		Fidelity:         fidelityBefore,
		Goodness:         goodness,
		MeasureOutcome:   res.Outcome,
		MeasureBasis:     res.Basis,
		HeraldedPsiMinus: r.Outcome == wire.OutcomeStateTwo,
	})
}

// completePair fills the common OK fields, decrements the request's pair
// count and removes completed requests from the queue.
func (e *EGP) completePair(item *QueueItem, r mhp.Result, ev OKEvent) {
	now := e.cfg.Sim.Now()
	if item.PairsLeft > 0 {
		item.PairsLeft--
	}
	done := item.PairsLeft == 0
	if done {
		e.queue.Remove(item.ID)
		e.retired[item.ID] = true
	}
	e.okCount++
	ev.Node = e.cfg.NodeName
	ev.CreateID = item.CreateID
	ev.QueueID = item.ID
	ev.EntanglementID = r.MHPSeq
	ev.Priority = int(item.Priority)
	ev.OriginIsLocal = e.localOrigin(item)
	ev.PairsRemaining = int(item.PairsLeft)
	ev.RequestDone = done
	ev.CreateTime = item.CreateTime
	ev.At = now
	e.cfg.Trace.Record(now, obs.KindEGPOK, e.cfg.TraceID, int64(item.CreateID), int64(item.PairsLeft))
	if e.cfg.Metrics != nil {
		e.cfg.Metrics.OKs.Inc()
	}
	if e.cfg.OnOK != nil {
		e.cfg.OnOK(ev)
	}
}

// sendExpire notifies the peer that OKs for the given MHP sequence range
// must be revoked, and schedules retransmission until acknowledged.
func (e *EGP) sendExpire(id wire.AbsoluteQueueID, low, high uint16) {
	e.expiresSent++
	e.cfg.Trace.Record(e.cfg.Sim.Now(), obs.KindEGPExpire, e.cfg.TraceID, int64(high), 0)
	if e.cfg.Metrics != nil {
		e.cfg.Metrics.Expires.Inc()
	}
	frame := wire.ExpireFrame{
		QueueID:      id,
		OriginNodeID: e.cfg.NodeID,
		ExpectedSeq:  high + 1,
	}
	send := func() { e.cfg.ToPeer.Send(frame.Encode()) }
	send()
	if e.cfg.OnExpire != nil {
		e.cfg.OnExpire(ExpireEvent{Node: e.cfg.NodeName, QueueID: id, SeqLow: low, SeqHigh: high, At: e.cfg.Sim.Now()})
	}
	// Retransmit a few times unless acknowledged.
	var retries int
	var schedule func()
	schedule = func() {
		ev := sim.Schedule(e.cfg.Sim, 10*sim.Millisecond, func() {
			if _, pending := e.pendingExpires[id]; !pending {
				return
			}
			if retries >= 5 {
				delete(e.pendingExpires, id)
				return
			}
			retries++
			send()
			schedule()
		})
		e.pendingExpires[id] = ev
	}
	schedule()
}

// HandlePeerMessage demultiplexes frames arriving from the peer EGP: DQP
// frames, EXPIRE/EXPIRE-ACK and memory advertisements.
func (e *EGP) HandlePeerMessage(msg classical.Message) {
	raw, ok := msg.Payload.([]byte)
	if !ok {
		return
	}
	ft, err := wire.PeekType(raw)
	if err != nil {
		return
	}
	switch ft {
	case wire.FrameDQPAdd, wire.FrameDQPAck, wire.FrameDQPRej:
		e.queue.HandleMessage(msg)
	case wire.FrameExpire:
		e.handleExpire(raw)
	case wire.FrameExpireAck:
		e.handleExpireAck(raw)
	case wire.FrameMemReq, wire.FrameMemAck:
		e.handleMemory(raw)
	}
}

// handleExpire processes a peer's EXPIRE: revoke local state for the
// sequence range, resynchronise the expected sequence number and
// acknowledge.
func (e *EGP) handleExpire(raw []byte) {
	frame, err := wire.DecodeExpire(raw)
	if err != nil {
		return
	}
	e.expiresReceived++
	e.cfg.Trace.Record(e.cfg.Sim.Now(), obs.KindEGPExpire, e.cfg.TraceID, int64(frame.ExpectedSeq-1), 1)
	if seqAfter(frame.ExpectedSeq, e.expectedSeq) {
		e.expectedSeq = frame.ExpectedSeq
	}
	if e.cfg.OnExpire != nil {
		e.cfg.OnExpire(ExpireEvent{Node: e.cfg.NodeName, QueueID: frame.QueueID, SeqHigh: frame.ExpectedSeq - 1, At: e.cfg.Sim.Now()})
	}
	ack := wire.ExpireAckFrame{QueueID: frame.QueueID, ExpectedSeq: e.expectedSeq}
	e.cfg.ToPeer.Send(ack.Encode())
}

// handleExpireAck completes a pending EXPIRE exchange.
func (e *EGP) handleExpireAck(raw []byte) {
	frame, err := wire.DecodeExpireAck(raw)
	if err != nil {
		return
	}
	if ev, ok := e.pendingExpires[frame.QueueID]; ok {
		ev.Cancel()
		delete(e.pendingExpires, frame.QueueID)
	}
	if seqAfter(frame.ExpectedSeq, e.expectedSeq) {
		e.expectedSeq = frame.ExpectedSeq
	}
}

// AdvertiseMemory sends the peer a REQ(E) with this node's free qubit
// counts (Section E.3, memory advertisement).
func (e *EGP) AdvertiseMemory() {
	comm := 0
	if e.qmm.CommAvailable() {
		comm = 1
	}
	frame := wire.MemoryFrame{CommQubits: uint8(comm), StorageQubits: uint8(e.qmm.StorageAvailable())}
	e.cfg.ToPeer.Send(frame.Encode())
}

// handleMemory stores the peer's advertised resources and acknowledges
// REQ(E) frames.
func (e *EGP) handleMemory(raw []byte) {
	frame, err := wire.DecodeMemory(raw)
	if err != nil {
		return
	}
	e.peerComm = int(frame.CommQubits)
	e.peerStorage = int(frame.StorageQubits)
	e.peerKnown = true
	if !frame.IsAck {
		comm := 0
		if e.qmm.CommAvailable() {
			comm = 1
		}
		ack := wire.MemoryFrame{IsAck: true, CommQubits: uint8(comm), StorageQubits: uint8(e.qmm.StorageAvailable())}
		e.cfg.ToPeer.Send(ack.Encode())
	}
}

// PeerResources returns the most recently advertised peer resource counts
// and whether any advertisement has been received.
func (e *EGP) PeerResources() (comm, storage int, known bool) {
	return e.peerComm, e.peerStorage, e.peerKnown
}

// ExpectedSeq returns the next expected MHP sequence number (for tests).
func (e *EGP) ExpectedSeq() uint16 { return e.expectedSeq }
