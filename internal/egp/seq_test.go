package egp

import "testing"

// TestSeqAfterBefore pins down the circular uint16 comparison helpers used
// for MHP sequence-number resynchronisation, including the ambiguous
// half-range boundary at 0x8000 where neither order holds.
func TestSeqAfterBefore(t *testing.T) {
	cases := []struct {
		name          string
		a, b          uint16
		after, before bool
	}{
		{"equal", 5, 5, false, false},
		{"equal zero", 0, 0, false, false},
		{"successor", 6, 5, true, false},
		{"predecessor", 5, 6, false, true},
		{"far ahead within half range", 0x4000, 1, true, false},
		{"just inside half range", 0x8000, 1, true, false}, // distance 0x7fff
		{"exactly half range", 0x8001, 1, false, false},    // distance 0x8000: ambiguous, neither holds
		{"just past half range", 0x8002, 1, false, true},   // wraps: b is "after" a
		{"wraparound ahead", 2, 0xfffe, true, false},       // 2 is 4 steps after 0xfffe
		{"wraparound behind", 0xfffe, 2, false, true},
		{"zero after max", 0, 0xffff, true, false},
		{"max before zero", 0xffff, 0, false, true},
		{"boundary from zero", 0x8000, 0, false, false}, // distance exactly 0x8000
		{"one short of boundary from zero", 0x7fff, 0, true, false},
	}
	for _, c := range cases {
		if got := seqAfter(c.a, c.b); got != c.after {
			t.Errorf("%s: seqAfter(%#x, %#x) = %v, want %v", c.name, c.a, c.b, got, c.after)
		}
		if got := seqBefore(c.a, c.b); got != c.before {
			t.Errorf("%s: seqBefore(%#x, %#x) = %v, want %v", c.name, c.a, c.b, got, c.before)
		}
	}
}

// TestSeqOrderingAntisymmetry sweeps distances around the boundary and
// checks seqAfter/seqBefore are mutually exclusive everywhere and mirror
// each other under argument swap.
func TestSeqOrderingAntisymmetry(t *testing.T) {
	base := uint16(0xfff0) // force wraparound in the sweep
	for d := uint16(0); d < 16; d++ {
		a := base + d
		for e := uint16(0); e < 16; e++ {
			b := base + e
			after, before := seqAfter(a, b), seqBefore(a, b)
			if after && before {
				t.Fatalf("seqAfter and seqBefore both true for a=%#x b=%#x", a, b)
			}
			if after != seqBefore(b, a) || before != seqAfter(b, a) {
				t.Fatalf("swap asymmetry for a=%#x b=%#x", a, b)
			}
		}
	}
}
