package egp

import (
	"testing"

	"repro/internal/classical"
	"repro/internal/sim"
	"repro/internal/wire"
)

// queuePair wires a master and a slave distributed queue over lossy duplex
// channels on one simulator.
type queuePair struct {
	s      *sim.Simulator
	master *DistributedQueue
	slave  *DistributedQueue
}

func newQueuePair(t *testing.T, loss float64, window int) *queuePair {
	t.Helper()
	s := sim.New(3)
	qp := &queuePair{s: s}
	var toSlave, toMaster *classical.Channel
	toSlave = classical.NewChannel("m->s", s, 50*sim.Microsecond, loss, func(m classical.Message) {
		qp.slave.HandleMessage(m)
	})
	toMaster = classical.NewChannel("s->m", s, 50*sim.Microsecond, loss, func(m classical.Message) {
		qp.master.HandleMessage(m)
	})
	qp.master = NewDistributedQueue(QueueConfig{
		NodeName: "A", IsMaster: true, Sim: s, ToPeer: toSlave, MaxLen: 8, Window: window,
		RetransmitDelay: 1 * sim.Millisecond, MaxRetries: 5,
	})
	qp.slave = NewDistributedQueue(QueueConfig{
		NodeName: "B", IsMaster: false, Sim: s, ToPeer: toMaster, MaxLen: 8, Window: window,
		RetransmitDelay: 1 * sim.Millisecond, MaxRetries: 5,
	})
	return qp
}

func newItem(priority uint8, createID uint16) *QueueItem {
	return &QueueItem{
		CreateID:    createID,
		Priority:    priority,
		NumPairs:    1,
		PairsLeft:   1,
		MinFidelity: 0.64,
	}
}

func TestMasterAddPropagatesToSlave(t *testing.T) {
	qp := newQueuePair(t, 0, 4)
	item := newItem(PriorityMD, 1)
	sim.Schedule(qp.s, 0, func() {
		if err := qp.master.Add(item); err != nil {
			t.Errorf("Add: %v", err)
		}
	})
	_ = qp.s.RunFor(10 * sim.Millisecond)

	if qp.master.Len(PriorityMD) != 1 || qp.slave.Len(PriorityMD) != 1 {
		t.Fatalf("both queues should hold the item: master=%d slave=%d", qp.master.Len(PriorityMD), qp.slave.Len(PriorityMD))
	}
	if !item.Confirmed() {
		t.Fatal("master's item should be confirmed after ACK")
	}
	remote := qp.slave.Find(item.ID)
	if remote == nil {
		t.Fatal("slave cannot find the item by its absolute queue ID")
	}
	if remote.CreateID != item.CreateID || remote.Priority != item.Priority {
		t.Fatal("request fields not carried to the slave")
	}
}

func TestSlaveAddGetsMasterAssignedSequence(t *testing.T) {
	qp := newQueuePair(t, 0, 4)
	// Master enqueues one item first so the next sequence number is 1.
	first := newItem(PriorityMD, 1)
	slaveItem := newItem(PriorityMD, 2)
	sim.Schedule(qp.s, 0, func() { _ = qp.master.Add(first) })
	sim.Schedule(qp.s, 1*sim.Millisecond, func() { _ = qp.slave.Add(slaveItem) })
	_ = qp.s.RunFor(20 * sim.Millisecond)

	if slaveItem.ID.QueueSeq != 1 {
		t.Fatalf("slave item should get master-assigned sequence 1, got %v", slaveItem.ID)
	}
	if qp.master.Len(PriorityMD) != 2 || qp.slave.Len(PriorityMD) != 2 {
		t.Fatalf("both queues should hold 2 items: %d, %d", qp.master.Len(PriorityMD), qp.slave.Len(PriorityMD))
	}
	// Queue order must be identical on both sides.
	mItems := qp.master.Items(PriorityMD)
	sItems := qp.slave.Items(PriorityMD)
	for i := range mItems {
		if mItems[i].ID != sItems[i].ID {
			t.Fatalf("queue order differs at %d: %v vs %v", i, mItems[i].ID, sItems[i].ID)
		}
	}
}

func TestQueueSurvivesFrameLoss(t *testing.T) {
	// With 30% frame loss the retransmission machinery must still converge.
	qp := newQueuePair(t, 0.3, 4)
	items := make([]*QueueItem, 6)
	sim.Schedule(qp.s, 0, func() {
		for i := range items {
			items[i] = newItem(PriorityMD, uint16(i))
			if i%2 == 0 {
				_ = qp.master.Add(items[i])
			} else {
				_ = qp.slave.Add(items[i])
			}
		}
	})
	_ = qp.s.RunFor(200 * sim.Millisecond)
	if qp.master.Len(PriorityMD) != qp.slave.Len(PriorityMD) {
		t.Fatalf("queues diverged under loss: master=%d slave=%d", qp.master.Len(PriorityMD), qp.slave.Len(PriorityMD))
	}
	if qp.master.Len(PriorityMD) == 0 {
		t.Fatal("no items survived")
	}
	_, _, _, retransmits := qp.master.Stats()
	_, _, _, retransmitsSlave := qp.slave.Stats()
	if retransmits+retransmitsSlave == 0 {
		t.Fatal("expected retransmissions under 30% loss")
	}
}

func TestQueueRejectionByPolicy(t *testing.T) {
	qp := newQueuePair(t, 0, 4)
	// The slave only accepts purpose ID 42.
	qp.slave.SetAcceptPolicy(func(f wire.DQPFrame) bool { return f.PurposeID == 42 })
	rejected := false
	qp.master.onRejected = func(item *QueueItem, code wire.EGPError) {
		if code == wire.ErrRejected {
			rejected = true
		}
	}
	bad := newItem(PriorityMD, 1)
	bad.PurposeID = 7
	good := newItem(PriorityMD, 2)
	good.PurposeID = 42
	sim.Schedule(qp.s, 0, func() {
		_ = qp.master.Add(bad)
		_ = qp.master.Add(good)
	})
	_ = qp.s.RunFor(20 * sim.Millisecond)
	if !rejected {
		t.Fatal("disallowed purpose ID should be rejected (DENIED)")
	}
	if qp.master.Find(bad.ID) != nil {
		t.Fatal("rejected item should be removed from the master queue")
	}
	if qp.slave.Len(PriorityMD) != 1 || qp.master.Len(PriorityMD) != 1 {
		t.Fatal("only the allowed item should remain")
	}
}

func TestQueueFullRejectsLocally(t *testing.T) {
	qp := newQueuePair(t, 0, 4)
	sim.Schedule(qp.s, 0, func() {
		for i := 0; i < 8; i++ {
			if err := qp.master.Add(newItem(PriorityMD, uint16(i))); err != nil {
				t.Errorf("Add %d: %v", i, err)
			}
		}
		if err := qp.master.Add(newItem(PriorityMD, 99)); err == nil {
			t.Error("9th item should overflow the 8-item lane")
		}
	})
	_ = qp.s.RunFor(20 * sim.Millisecond)
	if qp.master.Full(PriorityMD) != true {
		t.Fatal("lane should report full")
	}
}

func TestQueueRemoveAndFind(t *testing.T) {
	qp := newQueuePair(t, 0, 4)
	item := newItem(PriorityCK, 5)
	sim.Schedule(qp.s, 0, func() { _ = qp.master.Add(item) })
	_ = qp.s.RunFor(10 * sim.Millisecond)
	if qp.master.Find(item.ID) == nil {
		t.Fatal("item should be findable")
	}
	if !qp.master.Remove(item.ID) {
		t.Fatal("remove should succeed")
	}
	if qp.master.Remove(item.ID) {
		t.Fatal("second remove should fail")
	}
	if qp.master.TotalLen() != 0 {
		t.Fatal("queue should be empty after removal")
	}
	if qp.master.Find(wire.AbsoluteQueueID{QueueID: 9, QueueSeq: 0}) != nil {
		t.Fatal("out-of-range lane lookup should return nil")
	}
}

func TestQueueItemReadiness(t *testing.T) {
	it := newItem(PriorityNL, 1)
	it.ScheduleCycle = 100
	it.TimeoutCycle = 200
	it.confirmed = true
	if it.Ready(50) {
		t.Fatal("item should not be ready before its schedule cycle")
	}
	if !it.Ready(150) {
		t.Fatal("item should be ready between schedule and timeout")
	}
	if it.Ready(201) || !it.Expired(201) {
		t.Fatal("item should be expired after its timeout cycle")
	}
	it.confirmed = false
	if it.Ready(150) {
		t.Fatal("unconfirmed items are never ready")
	}
}

func TestQueueAddGivesUpWithoutPeer(t *testing.T) {
	// A master whose ADDs are all lost must eventually report ERR_NOTIME and
	// clean up its local copy.
	qp := newQueuePair(t, 1.0, 4)
	var failedCode wire.EGPError
	qp.master.onRejected = func(item *QueueItem, code wire.EGPError) { failedCode = code }
	item := newItem(PriorityMD, 1)
	sim.Schedule(qp.s, 0, func() { _ = qp.master.Add(item) })
	_ = qp.s.RunFor(500 * sim.Millisecond)
	if failedCode != wire.ErrNoTime {
		t.Fatalf("expected ERR_NOTIME after retransmissions exhausted, got %v", failedCode)
	}
	if qp.master.TotalLen() != 0 {
		t.Fatal("failed item should be removed from the master queue")
	}
}

func TestInvalidPriorityRejected(t *testing.T) {
	qp := newQueuePair(t, 0, 4)
	item := newItem(0, 1)
	item.Priority = 9
	if err := qp.master.Add(item); err == nil {
		t.Fatal("out-of-range priority should be rejected")
	}
}
