package egp

import (
	"repro/internal/nv"
)

// QuantumMemoryManager (QMM) is the node-global component of Section 4.5
// deciding which physical qubits to use for which purpose. The link layer
// asks it to reserve a communication qubit for an attempt and, for
// create-and-keep requests, to pick the storage qubit the fresh pair should
// be moved to. It also translates logical qubit IDs to physical ones, which
// on the single-NV platform of the evaluation is the identity map.
type QuantumMemoryManager struct {
	device *nv.Device

	// reservedComm marks the communication qubit as promised to an ongoing
	// attempt that has not yet stored a pair into it.
	reservedComm bool

	allocations uint64
	releases    uint64
}

// NewQMM builds a memory manager over one device.
func NewQMM(device *nv.Device) *QuantumMemoryManager {
	return &QuantumMemoryManager{device: device}
}

// Device returns the managed device.
func (m *QuantumMemoryManager) Device() *nv.Device { return m.device }

// CommAvailable reports whether the communication qubit can host a new
// entanglement attempt right now.
func (m *QuantumMemoryManager) CommAvailable() bool {
	return !m.reservedComm && m.device.CommFree()
}

// ReserveComm marks the communication qubit as in use by an attempt. It
// returns false when it is already reserved or occupied.
func (m *QuantumMemoryManager) ReserveComm() bool {
	if !m.CommAvailable() {
		return false
	}
	m.reservedComm = true
	m.allocations++
	return true
}

// ReleaseComm releases a previous reservation (after the attempt concluded,
// whether or not it produced a pair).
func (m *QuantumMemoryManager) ReleaseComm() {
	if m.reservedComm {
		m.reservedComm = false
		m.releases++
	}
}

// StorageAvailable reports how many free memory qubits the node has.
func (m *QuantumMemoryManager) StorageAvailable() int { return m.device.FreeMemoryCount() }

// PickStorage selects the memory qubit a create-and-keep pair should be
// moved to. It returns (CommQubitID, false) when no memory qubit is free, in
// which case the pair stays on the communication qubit.
func (m *QuantumMemoryManager) PickStorage() (nv.QubitID, bool) {
	return m.device.FreeMemoryQubit()
}

// CanSatisfyAtomic reports whether an atomic request for n simultaneously
// stored pairs can ever fit in this node's memory (communication qubit plus
// memory qubits), and whether it can fit right now.
func (m *QuantumMemoryManager) CanSatisfyAtomic(n int) (ever bool, now bool) {
	capacity := 1 + m.device.MemoryQubits()
	free := m.device.FreeMemoryCount()
	if m.device.CommFree() && !m.reservedComm {
		free++
	}
	return n <= capacity, n <= free
}

// LogicalToPhysical translates a logical qubit ID to the physical qubit; on
// this platform the mapping is the identity but the indirection point exists
// so multi-qubit logical encodings can be slotted in.
func (m *QuantumMemoryManager) LogicalToPhysical(logical nv.QubitID) nv.QubitID { return logical }

// Stats returns allocation counters.
func (m *QuantumMemoryManager) Stats() (allocations, releases uint64) {
	return m.allocations, m.releases
}
