// Package egp implements the link layer Entanglement Generation Protocol of
// Section 5.2 and Appendix E: the distributed queue protocol (DQP), the
// quantum memory manager (QMM), the fidelity estimation unit (FEU), the
// request schedulers (FCFS and strict-priority + weighted-fair-queuing), and
// the EGP request lifecycle itself (CREATE → OK / ERR / EXPIRE).
package egp

import (
	"fmt"
	"sort"

	"repro/internal/classical"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Priority classes used throughout the evaluation. Lower value = higher
// priority, matching "priority 1 (highest)" for NL in the paper.
const (
	PriorityNL = 0
	PriorityCK = 1
	PriorityMD = 2
	// NumQueues is the number of priority lanes in the distributed queue.
	NumQueues = 3
)

// PriorityName renders the use-case name of a priority class.
func PriorityName(p int) string {
	switch p {
	case PriorityNL:
		return "NL"
	case PriorityCK:
		return "CK"
	case PriorityMD:
		return "MD"
	default:
		return fmt.Sprintf("P%d", p)
	}
}

// QueueItem is one entanglement request together with the metadata the DQP
// attaches to it (Section E.1).
type QueueItem struct {
	ID               wire.AbsoluteQueueID
	CreateID         uint16
	OriginMaster     bool // true when the request originated at the queue master
	PurposeID        uint16
	Priority         uint8
	NumPairs         uint16
	PairsLeft        uint16
	Keep             bool
	Atomic           bool
	Consecutive      bool
	MinFidelity      float64
	Alpha            float64
	CreateTime       sim.Time
	ScheduleCycle    uint64 // min_time: earliest MHP cycle the item may be served
	TimeoutCycle     uint64 // 0 = no timeout
	VirtualFinish    uint64 // WFQ virtual finish time, stamped by the master
	EstCyclesPerPair uint32

	confirmed bool // both nodes are known to hold the item
}

// Confirmed reports whether the peer has acknowledged the item.
func (it *QueueItem) Confirmed() bool { return it.confirmed }

// Expired reports whether the item has passed its timeout cycle.
func (it *QueueItem) Expired(cycle uint64) bool {
	return it.TimeoutCycle != 0 && cycle > it.TimeoutCycle
}

// Ready reports whether the item may be served at the given cycle.
func (it *QueueItem) Ready(cycle uint64) bool {
	return it.confirmed && cycle >= it.ScheduleCycle && !it.Expired(cycle)
}

// DistributedQueue is one node's view of the shared request queue
// (Section E.1). One node is the master and assigns sequence numbers within
// each priority lane; the other (slave) obtains them through the two-way
// handshake.
type DistributedQueue struct {
	nodeName string
	isMaster bool
	simul    sim.Engine
	toPeer   classical.Port

	maxLen int
	window int

	queues  [NumQueues][]*QueueItem
	nextSeq [NumQueues]uint16

	// Pending outgoing ADDs awaiting an ACK, keyed by communication sequence
	// number.
	pendingAdds map[uint8]*pendingAdd
	nextCommSeq uint8

	// seenAdds remembers already-processed peer CSEQs so retransmissions are
	// acknowledged idempotently; it maps peer CSEQ to the assigned queue ID.
	seenAdds map[uint8]wire.AbsoluteQueueID

	// consecutiveLocal counts how many items in a row were enqueued by this
	// node; used with the fairness window.
	consecutiveLocal int

	// Callbacks.
	onConfirmed func(*QueueItem)
	onRejected  func(*QueueItem, wire.EGPError)

	// acceptPolicy gates remotely originated requests (purpose-ID rules).
	acceptPolicy AcceptPolicy

	// stampFunc lets the master's scheduler assign scheduling metadata
	// (e.g. WFQ virtual finish times) to items as they are enqueued.
	stampFunc func(*QueueItem)

	retransmitDelay sim.Duration
	maxRetries      int

	// Statistics.
	addsSent, acksSent, rejectsSent, retransmissions uint64
}

type pendingAdd struct {
	item    *QueueItem
	retries int
	timer   sim.EventID
}

// QueueConfig collects DistributedQueue construction parameters.
type QueueConfig struct {
	NodeName        string
	IsMaster        bool
	Sim             sim.Engine
	ToPeer          classical.Port
	MaxLen          int // maximum items per priority lane (256 in the paper)
	Window          int // fairness window W (maximum consecutive local enqueues)
	RetransmitDelay sim.Duration
	MaxRetries      int
	OnConfirmed     func(*QueueItem)
	OnRejected      func(*QueueItem, wire.EGPError)
}

// NewDistributedQueue builds one node's end of the distributed queue.
func NewDistributedQueue(cfg QueueConfig) *DistributedQueue {
	if cfg.Sim == nil || cfg.ToPeer == nil {
		panic("egp: incomplete queue configuration")
	}
	if cfg.MaxLen <= 0 {
		cfg.MaxLen = 256
	}
	if cfg.Window <= 0 {
		cfg.Window = 8
	}
	if cfg.RetransmitDelay <= 0 {
		cfg.RetransmitDelay = 10 * sim.Millisecond
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 5
	}
	return &DistributedQueue{
		nodeName:        cfg.NodeName,
		isMaster:        cfg.IsMaster,
		simul:           cfg.Sim,
		toPeer:          cfg.ToPeer,
		maxLen:          cfg.MaxLen,
		window:          cfg.Window,
		pendingAdds:     make(map[uint8]*pendingAdd),
		seenAdds:        make(map[uint8]wire.AbsoluteQueueID),
		onConfirmed:     cfg.OnConfirmed,
		onRejected:      cfg.OnRejected,
		retransmitDelay: cfg.RetransmitDelay,
		maxRetries:      cfg.MaxRetries,
	}
}

// IsMaster reports whether this node holds the master copy of the queue.
func (q *DistributedQueue) IsMaster() bool { return q.isMaster }

// Len returns the number of items currently in the given priority lane.
func (q *DistributedQueue) Len(priority int) int { return len(q.queues[priority]) }

// TotalLen returns the number of items across all lanes.
func (q *DistributedQueue) TotalLen() int {
	n := 0
	for i := range q.queues {
		n += len(q.queues[i])
	}
	return n
}

// Full reports whether the given lane has reached its maximum length.
func (q *DistributedQueue) Full(priority int) bool { return len(q.queues[priority]) >= q.maxLen }

// Items returns the items of a lane in queue order (shared slice; callers
// must not mutate).
func (q *DistributedQueue) Items(priority int) []*QueueItem { return q.queues[priority] }

// AllItems returns every queued item across lanes, ordered by lane then
// position.
func (q *DistributedQueue) AllItems() []*QueueItem {
	var out []*QueueItem
	for i := range q.queues {
		out = append(out, q.queues[i]...)
	}
	return out
}

// Find returns the item with the given absolute queue ID, or nil.
func (q *DistributedQueue) Find(id wire.AbsoluteQueueID) *QueueItem {
	if int(id.QueueID) >= NumQueues {
		return nil
	}
	for _, it := range q.queues[id.QueueID] {
		if it.ID == id {
			return it
		}
	}
	return nil
}

// Remove deletes the item with the given ID from the queue, returning true
// when it was present.
func (q *DistributedQueue) Remove(id wire.AbsoluteQueueID) bool {
	if int(id.QueueID) >= NumQueues {
		return false
	}
	lane := q.queues[id.QueueID]
	for i, it := range lane {
		if it.ID == id {
			q.queues[id.QueueID] = append(lane[:i], lane[i+1:]...)
			return true
		}
	}
	return false
}

// Add enqueues a locally originated request. On the master the item receives
// its sequence number immediately and an ADD is sent to the slave; on the
// slave the ADD is sent to the master, which assigns the sequence number
// echoed in the ACK. The item is reported through OnConfirmed once both
// sides hold it, or OnRejected on failure.
func (q *DistributedQueue) Add(item *QueueItem) error {
	priority := int(item.Priority)
	if priority < 0 || priority >= NumQueues {
		return fmt.Errorf("egp: priority %d out of range", item.Priority)
	}
	if q.Full(priority) {
		return fmt.Errorf("egp: queue %d full", priority)
	}
	item.OriginMaster = q.isMaster
	cseq := q.nextCommSeq
	q.nextCommSeq++
	if q.isMaster {
		item.ID = wire.AbsoluteQueueID{QueueID: uint8(priority), QueueSeq: q.nextSeq[priority]}
		q.nextSeq[priority]++
		if q.stampFunc != nil {
			q.stampFunc(item)
		}
		q.queues[priority] = append(q.queues[priority], item)
		q.consecutiveLocal++
	}
	pa := &pendingAdd{item: item}
	q.pendingAdds[cseq] = pa
	q.sendAdd(cseq, item)
	q.scheduleRetransmit(cseq)
	return nil
}

func (q *DistributedQueue) sendAdd(cseq uint8, item *QueueItem) {
	q.addsSent++
	frame := wire.DQPFrame{
		Kind:             wire.DQPAdd,
		CommSeq:          cseq,
		QueueID:          item.ID,
		ScheduleCycle:    item.ScheduleCycle,
		TimeoutCycle:     item.TimeoutCycle,
		MinFidelity:      item.MinFidelity,
		PurposeID:        item.PurposeID,
		CreateID:         item.CreateID,
		NumPairs:         item.NumPairs,
		Priority:         item.Priority,
		VirtualFinish:    item.VirtualFinish,
		EstCyclesPerPair: item.EstCyclesPerPair,
		Flags: wire.RequestFlags{
			Store:         item.Keep,
			Atomic:        item.Atomic,
			MeasureDirect: !item.Keep,
			MasterRequest: item.OriginMaster,
			Consecutive:   item.Consecutive,
		},
	}
	q.toPeer.Send(frame.Encode())
}

func (q *DistributedQueue) scheduleRetransmit(cseq uint8) {
	pa, ok := q.pendingAdds[cseq]
	if !ok {
		return
	}
	pa.timer = sim.Schedule(q.simul, q.retransmitDelay, func() {
		cur, still := q.pendingAdds[cseq]
		if !still || cur != pa {
			return
		}
		if pa.retries >= q.maxRetries {
			delete(q.pendingAdds, cseq)
			// Give up: remove the local copy (master) and report failure.
			if q.isMaster {
				q.Remove(pa.item.ID)
			}
			if q.onRejected != nil {
				q.onRejected(pa.item, wire.ErrNoTime)
			}
			return
		}
		pa.retries++
		q.retransmissions++
		q.sendAdd(cseq, pa.item)
		q.scheduleRetransmit(cseq)
	})
}

// AcceptPolicy decides whether a remotely originated request is allowed
// (e.g. purpose-ID based rules). A nil policy accepts everything.
type AcceptPolicy func(frame wire.DQPFrame) bool

// SetAcceptPolicy installs the policy consulted before acknowledging remote
// ADDs; a nil policy accepts every request.
func (q *DistributedQueue) SetAcceptPolicy(p AcceptPolicy) { q.acceptPolicy = p }

// SetStampFunc installs the scheduler stamping hook applied by the master to
// every item entering the queue.
func (q *DistributedQueue) SetStampFunc(f func(*QueueItem)) { q.stampFunc = f }

// HandleMessage processes an encoded DQP frame received from the peer.
func (q *DistributedQueue) HandleMessage(msg classical.Message) {
	raw, ok := msg.Payload.([]byte)
	if !ok {
		return
	}
	frame, err := wire.DecodeDQP(raw)
	if err != nil {
		return
	}
	switch frame.Kind {
	case wire.DQPAdd:
		q.handleAdd(frame)
	case wire.DQPAck:
		q.handleAck(frame)
	case wire.DQPRej:
		q.handleRej(frame)
	}
}

// handleAdd processes a peer's ADD: validate, enqueue, and acknowledge.
func (q *DistributedQueue) handleAdd(frame wire.DQPFrame) {
	// Idempotent handling of retransmissions.
	if id, seen := q.seenAdds[frame.CommSeq]; seen {
		q.sendAckFor(frame.CommSeq, id, frame)
		return
	}
	if q.acceptPolicy != nil && !q.acceptPolicy(frame) {
		q.rejectsSent++
		reply := frame
		reply.Kind = wire.DQPRej
		q.toPeer.Send(reply.Encode())
		return
	}
	priority := int(frame.Priority)
	if priority < 0 || priority >= NumQueues || q.Full(priority) {
		q.rejectsSent++
		reply := frame
		reply.Kind = wire.DQPRej
		q.toPeer.Send(reply.Encode())
		return
	}
	item := &QueueItem{
		CreateID:         frame.CreateID,
		OriginMaster:     frame.Flags.MasterRequest,
		PurposeID:        frame.PurposeID,
		Priority:         frame.Priority,
		NumPairs:         frame.NumPairs,
		PairsLeft:        frame.NumPairs,
		Keep:             frame.Flags.Store,
		Atomic:           frame.Flags.Atomic,
		Consecutive:      frame.Flags.Consecutive,
		MinFidelity:      frame.MinFidelity,
		CreateTime:       q.simul.Now(),
		ScheduleCycle:    frame.ScheduleCycle,
		TimeoutCycle:     frame.TimeoutCycle,
		VirtualFinish:    frame.VirtualFinish,
		EstCyclesPerPair: frame.EstCyclesPerPair,
		confirmed:        true,
	}
	if q.isMaster {
		// The master assigns the authoritative sequence number and stamps
		// scheduler metadata; both travel back to the slave in the ACK.
		item.ID = wire.AbsoluteQueueID{QueueID: uint8(priority), QueueSeq: q.nextSeq[priority]}
		q.nextSeq[priority]++
		if q.stampFunc != nil {
			q.stampFunc(item)
		}
		q.consecutiveLocal = 0
	} else {
		// The slave adopts the master's assignment.
		item.ID = frame.QueueID
		if int(item.ID.QueueID) != priority {
			return
		}
		if item.ID.QueueSeq >= q.nextSeq[priority] {
			q.nextSeq[priority] = item.ID.QueueSeq + 1
		}
	}
	q.queues[priority] = append(q.queues[priority], item)
	q.sortLane(priority)
	q.seenAdds[frame.CommSeq] = item.ID
	ack := frame
	ack.VirtualFinish = item.VirtualFinish
	q.sendAckFor(frame.CommSeq, item.ID, ack)
	if q.onConfirmed != nil {
		q.onConfirmed(item)
	}
}

func (q *DistributedQueue) sendAckFor(cseq uint8, id wire.AbsoluteQueueID, orig wire.DQPFrame) {
	q.acksSent++
	ack := orig
	ack.Kind = wire.DQPAck
	ack.CommSeq = cseq
	ack.QueueID = id
	q.toPeer.Send(ack.Encode())
}

// handleAck completes a pending local ADD.
func (q *DistributedQueue) handleAck(frame wire.DQPFrame) {
	pa, ok := q.pendingAdds[frame.CommSeq]
	if !ok {
		return
	}
	delete(q.pendingAdds, frame.CommSeq)
	pa.timer.Cancel()
	item := pa.item
	if !q.isMaster {
		// Adopt the master-assigned queue ID and scheduling stamp, then
		// enqueue locally.
		item.ID = frame.QueueID
		item.VirtualFinish = frame.VirtualFinish
		priority := int(item.Priority)
		if int(item.ID.QueueID) == priority {
			if item.ID.QueueSeq >= q.nextSeq[priority] {
				q.nextSeq[priority] = item.ID.QueueSeq + 1
			}
			item.confirmed = true
			q.queues[priority] = append(q.queues[priority], item)
			q.sortLane(priority)
		}
	} else {
		item.confirmed = true
	}
	if q.onConfirmed != nil {
		q.onConfirmed(item)
	}
}

// handleRej aborts a pending local ADD.
func (q *DistributedQueue) handleRej(frame wire.DQPFrame) {
	pa, ok := q.pendingAdds[frame.CommSeq]
	if !ok {
		return
	}
	delete(q.pendingAdds, frame.CommSeq)
	pa.timer.Cancel()
	if q.isMaster {
		q.Remove(pa.item.ID)
	}
	if q.onRejected != nil {
		q.onRejected(pa.item, wire.ErrRejected)
	}
}

// FailPending cancels every outgoing ADD handshake still awaiting an ACK —
// the link-down path, where no reply will ever arrive. Items the master
// already enqueued locally are left for the caller's queue sweep to fail
// (avoiding a double error); slave-side items that exist only as a pending
// handshake are reported rejected with the given code. Handshakes are
// visited in communication-sequence order so the emitted errors are
// deterministic.
func (q *DistributedQueue) FailPending(code wire.EGPError) {
	for cseq := 0; cseq < 256; cseq++ {
		pa, ok := q.pendingAdds[uint8(cseq)]
		if !ok {
			continue
		}
		delete(q.pendingAdds, uint8(cseq))
		pa.timer.Cancel()
		if !q.isMaster && q.onRejected != nil {
			q.onRejected(pa.item, code)
		}
	}
}

// sortLane keeps a lane ordered by queue sequence number so both nodes agree
// on queue order regardless of message arrival interleaving.
func (q *DistributedQueue) sortLane(priority int) {
	lane := q.queues[priority]
	sort.SliceStable(lane, func(i, j int) bool { return lane[i].ID.QueueSeq < lane[j].ID.QueueSeq })
}

// Stats returns DQP message counters.
func (q *DistributedQueue) Stats() (adds, acks, rejects, retransmits uint64) {
	return q.addsSent, q.acksSent, q.rejectsSent, q.retransmissions
}

// WindowExceeded reports whether this node has enqueued more than the
// fairness window of consecutive items without the peer enqueuing any.
func (q *DistributedQueue) WindowExceeded() bool { return q.consecutiveLocal > q.window }
