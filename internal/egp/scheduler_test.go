package egp

import (
	"testing"

	"repro/internal/wire"
)

// schedulerQueue builds a local-only queue pre-populated with confirmed
// items, bypassing the DQP handshake.
func schedulerQueue(items ...*QueueItem) *DistributedQueue {
	q := &DistributedQueue{maxLen: 256, window: 8}
	for i, it := range items {
		if it.ID == (wire.AbsoluteQueueID{}) {
			it.ID = wire.AbsoluteQueueID{QueueID: it.Priority, QueueSeq: q.nextSeq[it.Priority]}
		}
		q.nextSeq[it.Priority]++
		it.confirmed = true
		if it.PairsLeft == 0 {
			it.PairsLeft = it.NumPairs
		}
		q.queues[it.Priority] = append(q.queues[it.Priority], it)
		_ = i
	}
	return q
}

func item(priority uint8, schedule uint64, pairs uint16) *QueueItem {
	return &QueueItem{Priority: priority, ScheduleCycle: schedule, NumPairs: pairs, PairsLeft: pairs, EstCyclesPerPair: 100}
}

func TestFCFSOrdersByScheduleCycle(t *testing.T) {
	s := NewFCFS()
	late := item(PriorityNL, 200, 1)
	early := item(PriorityMD, 100, 1)
	q := schedulerQueue(late, early)
	got := s.Next(q, 500)
	if got != early {
		t.Fatalf("FCFS should pick the earliest-scheduled item regardless of priority, got %+v", got)
	}
	if s.Name() != "FCFS" {
		t.Fatal("name wrong")
	}
}

func TestFCFSSkipsNotReadyItems(t *testing.T) {
	s := NewFCFS()
	future := item(PriorityMD, 1000, 1)
	ready := item(PriorityMD, 100, 1)
	q := schedulerQueue(future, ready)
	if got := s.Next(q, 500); got != ready {
		t.Fatal("items before their min_time must not be served")
	}
	if got := s.Next(q, 50); got != nil {
		t.Fatal("nothing is ready at cycle 50")
	}
}

func TestFCFSSkipsUnconfirmedAndDrained(t *testing.T) {
	s := NewFCFS()
	unconfirmed := item(PriorityMD, 10, 1)
	drained := item(PriorityMD, 10, 1)
	q := schedulerQueue(unconfirmed, drained)
	unconfirmed.confirmed = false
	drained.PairsLeft = 0
	if got := s.Next(q, 100); got != nil {
		t.Fatalf("neither item is servable, got %+v", got)
	}
}

func TestWFQStrictPriorityForNL(t *testing.T) {
	s := NewHigherWFQ()
	nl := item(PriorityNL, 100, 1)
	ck := item(PriorityCK, 10, 1)
	md := item(PriorityMD, 10, 1)
	s.Stamp(ck)
	s.Stamp(md)
	s.Stamp(nl)
	q := schedulerQueue(nl, ck, md)
	if got := s.Next(q, 500); got != nl {
		t.Fatalf("NL must be served first under strict priority, got priority %d", got.Priority)
	}
	if s.Name() != "HigherWFQ" || NewLowerWFQ().Name() != "LowerWFQ" {
		t.Fatal("scheduler names wrong")
	}
}

func TestWFQWeightsFavourCK(t *testing.T) {
	// With CK weight 10 vs MD weight 1, equal demands give CK the smaller
	// virtual finish time.
	s := NewHigherWFQ()
	ck := item(PriorityCK, 10, 2)
	md := item(PriorityMD, 10, 2)
	s.Stamp(ck)
	s.Stamp(md)
	if ck.VirtualFinish >= md.VirtualFinish {
		t.Fatalf("CK should finish earlier in virtual time: %d vs %d", ck.VirtualFinish, md.VirtualFinish)
	}
	q := schedulerQueue(ck, md)
	if got := s.Next(q, 500); got != ck {
		t.Fatal("WFQ should serve the smaller virtual finish time first")
	}
}

func TestWFQInterleavesProportionally(t *testing.T) {
	// Ten small MD requests and one large CK budget: with weight 10:1 the
	// CK item keeps winning until its share is consumed.
	s := NewLowerWFQ()
	var items []*QueueItem
	for i := 0; i < 6; i++ {
		it := item(PriorityMD, 10, 1)
		s.Stamp(it)
		items = append(items, it)
	}
	ck := item(PriorityCK, 10, 1)
	s.Stamp(ck)
	items = append(items, ck)
	q := schedulerQueue(items...)
	serveOrder := []uint8{}
	for i := 0; i < 4; i++ {
		next := s.Next(q, 100)
		if next == nil {
			break
		}
		serveOrder = append(serveOrder, next.Priority)
		next.PairsLeft = 0 // mark served
	}
	// CK (weight 2) should be served before the later MD arrivals even
	// though it was stamped last.
	foundCK := false
	for _, p := range serveOrder[:2] {
		if p == PriorityCK {
			foundCK = true
		}
	}
	if !foundCK {
		t.Fatalf("CK should be among the first served, order %v", serveOrder)
	}
}

func TestNewSchedulerByName(t *testing.T) {
	if NewScheduler("FCFS").Name() != "FCFS" {
		t.Fatal("FCFS lookup failed")
	}
	if NewScheduler("HigherWFQ").Name() != "HigherWFQ" {
		t.Fatal("HigherWFQ lookup failed")
	}
	if NewScheduler("LowerWFQ").Name() != "LowerWFQ" {
		t.Fatal("LowerWFQ lookup failed")
	}
	if NewScheduler("").Name() != "FCFS" {
		t.Fatal("default should be FCFS")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown scheduler should panic")
		}
	}()
	NewScheduler("bogus")
}

func TestPriorityNames(t *testing.T) {
	if PriorityName(PriorityNL) != "NL" || PriorityName(PriorityCK) != "CK" || PriorityName(PriorityMD) != "MD" {
		t.Fatal("priority names wrong")
	}
	if PriorityName(7) != "P7" {
		t.Fatal("unknown priority should render generically")
	}
}
