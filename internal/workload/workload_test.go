package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/egp"
	"repro/internal/nv"
	"repro/internal/sim"
)

func TestLoadNames(t *testing.T) {
	if LoadName(LoadLow) != "Low" || LoadName(LoadHigh) != "High" || LoadName(LoadUltra) != "Ultra" {
		t.Fatal("load level names wrong")
	}
	if LoadName(LoadLevel(0.42)) != "f=0.42" {
		t.Fatal("custom load should render its fraction")
	}
}

func TestOriginString(t *testing.T) {
	if OriginA.String() != "A" || OriginB.String() != "B" || OriginRandom.String() != "random" {
		t.Fatal("origin names wrong")
	}
}

func TestSingleKindClasses(t *testing.T) {
	classes := SingleKind(egp.PriorityNL, LoadHigh, 3)
	if len(classes) != 1 {
		t.Fatalf("expected one class, got %d", len(classes))
	}
	c := classes[0]
	if c.Priority != egp.PriorityNL || c.Fraction != 0.99 || c.MaxPairs != 3 || c.MinFidelity != 0.64 {
		t.Fatalf("class fields wrong: %+v", c)
	}
	if !c.Keep() {
		t.Fatal("NL requests are create-and-keep")
	}
	if SingleKind(egp.PriorityMD, LoadLow, 1)[0].Keep() {
		t.Fatal("MD requests are measure-directly")
	}
}

func TestMixedPatternsMatchTable2(t *testing.T) {
	for _, p := range AllPatterns() {
		classes := Mixed(p)
		if len(classes) != 3 {
			t.Fatalf("%s: expected 3 classes", p)
		}
		totalFraction := 0.0
		for _, c := range classes {
			totalFraction += c.Fraction
		}
		if totalFraction > 1.0 || totalFraction < 0.9 {
			t.Errorf("%s: total load fraction %v out of range", p, totalFraction)
		}
	}
	// Spot-check specific Table 2 entries.
	moreNL := Mixed(PatternMoreNL)
	if moreNL[0].Fraction != 0.99*4/6 || moreNL[0].MaxPairs != 3 {
		t.Fatalf("MoreNL NL class wrong: %+v", moreNL[0])
	}
	if moreNL[2].MaxPairs != 256 {
		t.Fatal("MoreNL MD class should allow up to 256 pairs")
	}
	noNL := Mixed(PatternNoNLMoreMD)
	if noNL[0].Fraction != 0 {
		t.Fatal("NoNLMoreMD should have no NL load")
	}
	if noNL[2].Fraction != 0.99*4/5 {
		t.Fatal("NoNLMoreMD MD fraction wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown pattern should panic")
		}
	}()
	Mixed(Pattern("bogus"))
}

func TestTable1Patterns(t *testing.T) {
	uniform := Table1Pattern(true)
	if len(uniform) != 3 {
		t.Fatal("uniform pattern should have 3 classes")
	}
	if uniform[0].FixedPairs != 2 || uniform[2].FixedPairs != 10 {
		t.Fatal("Table 1 pair counts wrong (2/2/10)")
	}
	noNL := Table1Pattern(false)
	if len(noNL) != 2 {
		t.Fatal("pattern (ii) should have only CK and MD classes")
	}
	if noNL[1].Fraction != 0.99*4/5 {
		t.Fatal("pattern (ii) MD fraction wrong")
	}
}

func TestGeneratorIssuesRequests(t *testing.T) {
	cfg := core.DefaultConfig(nv.ScenarioLab)
	cfg.Seed = 3
	net := core.NewNetwork(cfg)
	gen := NewGenerator(net, OriginRandom, SingleKind(egp.PriorityMD, LoadUltra, 3))
	net.Start()
	gen.Start()
	net.Run(2 * sim.Second)
	gen.Stop()

	submitted := gen.Submitted()[egp.PriorityMD]
	if submitted == 0 {
		t.Fatal("the generator should issue requests at Ultra load within 2 s")
	}
	if net.Collector.OKCount(egp.PriorityMD) == 0 {
		t.Fatal("generated requests should produce pairs")
	}
	// The arrival rate should be of the same order as the service rate: with
	// f = 1.5 the queue grows, so submissions should at least match
	// completed requests.
	completed := net.Collector.RequestLatency(egp.PriorityMD).Count()
	if submitted < completed {
		t.Fatalf("bookkeeping inconsistent: %d submitted < %d completed", submitted, completed)
	}
}

func TestGeneratorOriginPolicy(t *testing.T) {
	cfg := core.DefaultConfig(nv.ScenarioLab)
	cfg.Seed = 5
	net := core.NewNetwork(cfg)
	gen := NewGenerator(net, OriginB, SingleKind(egp.PriorityMD, LoadUltra, 1))
	net.Start()
	gen.Start()
	net.Run(1 * sim.Second)
	gen.Stop()
	byOrigin := net.Collector.PairsByOrigin()
	if byOrigin[core.NodeA] != 0 {
		t.Fatalf("origin policy B should never submit from A: %v", byOrigin)
	}
	if byOrigin[core.NodeB] == 0 {
		t.Fatal("origin policy B should deliver pairs attributed to B")
	}
}

func TestGeneratorStopHaltsArrivals(t *testing.T) {
	cfg := core.DefaultConfig(nv.ScenarioLab)
	cfg.Seed = 7
	net := core.NewNetwork(cfg)
	gen := NewGenerator(net, OriginA, SingleKind(egp.PriorityMD, LoadUltra, 1))
	net.Start()
	stop := gen.Start()
	net.Run(500 * sim.Millisecond)
	stop()
	before := gen.Submitted()[egp.PriorityMD]
	net.Run(500 * sim.Millisecond)
	if gen.Submitted()[egp.PriorityMD] != before {
		t.Fatal("no requests should arrive after Stop")
	}
}
